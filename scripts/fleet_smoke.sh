#!/bin/sh
# Multi-process fleet smoke test: three cosim-farm processes in -farmd
# mode serve the fleet control protocol, cosim-farmctl enrolls them and
# drives 24 mixed sessions through the coordinator, and one host is
# kill -9'd mid-run — every session must still complete via
# re-placement on the survivors. The in-repo tests cover the same logic
# with in-process hosts; this script is where the control plane runs
# across real process boundaries, exactly as an operator would launch
# it (see docs/FLEET.md).
#
# Usage: scripts/fleet_smoke.sh   (from the repository root)
set -eu

dir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/cosim-farm" ./cmd/cosim-farm
go build -o "$dir/cosim-farmctl" ./cmd/cosim-farmctl

# Start three host agents on ephemeral control ports and harvest the
# bound addresses from their logs.
addrs=""
for i in 1 2 3; do
    "$dir/cosim-farm" -farmd 127.0.0.1:0 -name "host-$i" -workers 2 -queue 8 \
        >"$dir/host$i.log" 2>&1 &
    pid=$!
    pids="$pids $pid"
    eval "host${i}_pid=$pid"
done
for i in 1 2 3; do
    j=0
    while ! grep -q 'serving fleet control on' "$dir/host$i.log"; do
        j=$((j + 1))
        if [ "$j" -gt 100 ]; then
            echo "fleet smoke: host $i never announced its control address" >&2
            cat "$dir/host$i.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    addr=$(sed -n 's/.*serving fleet control on \(.*\)$/\1/p' "$dir/host$i.log" | head -1)
    addrs="$addrs $addr"
done

fleet="$dir/fleet.json"
# shellcheck disable=SC2086
"$dir/cosim-farmctl" -fleet "$fleet" enroll $addrs
"$dir/cosim-farmctl" -fleet "$fleet" status

# Drive 24 sessions through the fleet in the background, then take out
# host 1 once at least 4 sessions have completed — mid-run, with work
# in flight everywhere.
"$dir/cosim-farmctl" -fleet "$fleet" -sessions 24 -concurrency 6 -n 24 -tsync 500 -v submit \
    >"$dir/submit.log" 2>&1 &
submit=$!
pids="$pids $submit"

j=0
while [ "$(grep -c '^session ' "$dir/submit.log" || true)" -lt 4 ]; do
    j=$((j + 1))
    if [ "$j" -gt 600 ]; then
        echo "fleet smoke: submissions never started completing" >&2
        cat "$dir/submit.log" >&2
        exit 1
    fi
    if ! kill -0 "$submit" 2>/dev/null; then
        echo "fleet smoke: submit exited before the kill" >&2
        cat "$dir/submit.log" >&2
        exit 1
    fi
    sleep 0.1
done

kill -9 "$host1_pid"
echo "fleet smoke: killed host-1 (pid $host1_pid) mid-run"

if ! wait "$submit"; then
    echo "fleet smoke: submit failed after the host kill" >&2
    cat "$dir/submit.log" >&2
    exit 1
fi
if ! grep -q '24/24 sessions completed' "$dir/submit.log"; then
    echo "fleet smoke: not all sessions completed" >&2
    cat "$dir/submit.log" >&2
    exit 1
fi
if ! grep -q 'failed:.*host-1' "$dir/submit.log" && ! grep -q 'host-1' "$dir/submit.log"; then
    echo "fleet smoke: host-1 never appeared in the run (kill landed too late to matter)" >&2
fi

# The survivors drain cleanly; the dead host is reported, not fatal.
"$dir/cosim-farmctl" -fleet "$fleet" drain || true
echo "fleet smoke: OK (24/24 sessions survived a kill -9 of one of three hosts)"
