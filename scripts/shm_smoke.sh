#!/bin/sh
# Cross-process shared-memory smoke test: cosim-hw creates the link file
# (-shm-path, CreateShm), cosim-board attaches to it from a second
# process (OpenShm), and the run must report 100% packet accuracy.
# The in-repo tests cover NewShmPair inside one process; this script is
# the only place the creator/opener rendezvous runs across a real
# process boundary, exactly as a user would launch it.
#
# Usage: scripts/shm_smoke.sh   (from the repository root)
set -eu

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
path="$dir/link.shm"

go build -o "$dir/cosim-hw" ./cmd/cosim-hw
go build -o "$dir/cosim-board" ./cmd/cosim-board

"$dir/cosim-hw" -shm-path "$path" -n 40 -tsync 500 >"$dir/hw.log" 2>&1 &
hw=$!

# Wait for the link file to appear before attaching. The board also
# retries internally while the segment header is being stamped, so this
# loop only bounds how long we wait for cosim-hw to start at all.
i=0
while [ ! -e "$path" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "shm smoke: link file never appeared" >&2
        cat "$dir/hw.log" >&2
        kill "$hw" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done

"$dir/cosim-board" -shm-path "$path" >"$dir/board.log" 2>&1
wait "$hw"

if ! grep -q "accuracy=100.0%" "$dir/hw.log"; then
    echo "shm smoke: hw side did not report 100% accuracy" >&2
    cat "$dir/hw.log" "$dir/board.log" >&2
    exit 1
fi
echo "shm smoke: OK (cross-process CreateShm/OpenShm link verified)"
