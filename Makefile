# Build, test, and fuzz entry points. `make ci` is the full gate.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all vet build test race fuzz-smoke ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short deterministic shake of both native fuzz targets: new coverage is
# explored for FUZZTIME each, then the corpus properties are re-checked.
fuzz-smoke:
	$(GO) test ./internal/cosim/ -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cosim/ -run '^$$' -fuzz '^FuzzMsgRoundTrip$$' -fuzztime $(FUZZTIME)

ci: vet build race fuzz-smoke
