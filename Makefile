# Build, test, and fuzz entry points. `make ci` is the full gate.

GO      ?= go
FUZZTIME ?= 10s
BENCH_RUNS ?= 3
FARM_SOAK_COUNT ?= 3

# The zero-copy claim the bench gate asserts on every fresh run: the shm
# transport must beat tcp by this factor at the sync-dominated Fig.5
# point (and allocate no more per quantum). CI runners are multi-core,
# where the rendezvous turnaround favors shm even more than the 1-core
# worst case this floor was set on.
SHM_SPEEDUP ?= Transport/Fig5/N=20/tcp:Transport/Fig5/N=20/shm:3

# Lint tools are pinned by module path + version and run via `go run`,
# so CI is reproducible without committing tool binaries or deps.
STATICCHECK_MOD := honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK_MOD := golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: all vet build test race fuzz-smoke farm-soak transport-matrix federation-matrix fleet-matrix shm-smoke fleet-smoke bench-json bench-gate bench-adaptive staticcheck govulncheck cosim-lint lint lint-fix-check ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short deterministic shake of the native fuzz targets: new coverage is
# explored for FUZZTIME each, then the corpus properties are re-checked.
fuzz-smoke:
	$(GO) test ./internal/cosim/ -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cosim/ -run '^$$' -fuzz '^FuzzMsgRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cosim/ -run '^$$' -fuzz '^FuzzBatchRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cosim/ -run '^$$' -fuzz '^FuzzShmRing$$' -fuzztime $(FUZZTIME)

# farm-soak repeats the multi-session farm suite under the race detector
# — the concurrency gate for the session manager and the mux listener.
# FARM_SOAK_COUNT=10 is the nightly deep-soak sizing.
farm-soak:
	$(GO) test ./internal/farm/ ./internal/cosim/ -race -count=$(FARM_SOAK_COUNT) -run 'Farm|Mux'

# transport-matrix proves every transport kind produces bit-identical
# simulations: the root determinism matrix plus the per-transport
# conformance, soak, and kind-reporting suites, under the race detector.
transport-matrix:
	$(GO) test -race -run 'TransportMatrix|TestCoSimEndToEnd|ReportedKind|MultiRunReports' . ./internal/router/
	$(GO) test -race -run 'Shm|UDS' ./internal/cosim/ ./internal/farm/

# federation-matrix proves the N-party hierarchical time manager: K=2
# federations bit-identical to the pairwise engine (same sync/elision
# counts) across every transport, multi-board and pulse-device
# topologies deterministic, and the manager's lookahead edge cases —
# all under the race detector.
federation-matrix:
	$(GO) test -race -run 'TestFederation|TestRunDispatchesFederation|TestMultiBoard' ./internal/router/
	$(GO) test -race -run 'TestFarmRunsFederatedSessions' ./internal/farm/
	$(GO) test -race ./internal/cosim/federation/

# fleet-matrix proves the multi-host control plane under the race
# detector: M sessions placed across K in-process hosts bit-identical to
# the single-farm baseline, a host kill mid-run re-placed to completion,
# tenancy admission, and the spec-first farm API it all rides on.
fleet-matrix:
	$(GO) test -race ./internal/fleet/ ./internal/farm/
	$(GO) test -race -run 'TestFarmAcceptance' .

# fleet-smoke launches three cosim-farm processes in -farmd mode and
# drives 24 sessions through cosim-farmctl, kill -9'ing one host mid-run
# — the cross-process control-plane rendezvous the in-repo tests cannot
# cover (see docs/FLEET.md).
fleet-smoke:
	./scripts/fleet_smoke.sh

# shm-smoke launches cosim-hw and cosim-board as two real processes
# joined by a -shm-path link file — the cross-process rendezvous of
# CreateShm/OpenShm that in-process tests cannot cover.
shm-smoke:
	./scripts/shm_smoke.sh

# bench-json regenerates the miniature Fig.5/6/7 evaluation and writes
# the machine-readable BENCH_cosim.json artifact CI gates against.
bench-json:
	$(GO) run ./cmd/cosim-bench -runs $(BENCH_RUNS) -v -out BENCH_cosim.json

# bench-gate fails when any Fig.5, Farm, Adaptive, Transport, or
# Federation benchmark regressed >25% vs the committed baseline — in wall clock
# (ns_per_op) or in steady-state allocation rate (allocs_per_quantum) —
# or when the shm transport no longer clears its speedup floor over tcp
# on the fresh run. Skips cleanly when no baseline is committed.
bench-gate: bench-json
	$(GO) run ./cmd/cosim-benchcmp -baseline BENCH_baseline.json -current BENCH_cosim.json -speedup '$(SHM_SPEEDUP)'

# bench-adaptive proves the adaptive-quantum speedup claim in isolation:
# the determinism soak plus the Fig.5 adaptive sweep (quick sizing).
bench-adaptive:
	$(GO) test -run 'TestAdaptive' -v .
	$(GO) run ./cmd/cosim-experiments -fig 5a -quick

staticcheck:
	$(GO) run $(STATICCHECK_MOD) ./...

govulncheck:
	$(GO) run $(GOVULNCHECK_MOD) ./...

# cosim-lint runs the in-repo analyzer suite (pooled-buffer ownership,
# simulation determinism, obs-handle hygiene — see docs/STATIC_ANALYSIS.md).
# It is pure stdlib and needs no network, so it always runs.
cosim-lint:
	$(GO) run ./cmd/cosim-lint ./...

# lint-fix-check produces the machine-readable findings artifact CI
# uploads (cosim-lint.json) alongside the per-file console summary.
lint-fix-check:
	$(GO) run ./cmd/cosim-lint -json -out cosim-lint.json ./...

# lint always runs the in-repo suite, then the pinned external linters
# when they are fetchable (CI) — skipping those cleanly offline: the
# repository must keep building and testing with no network at all.
lint: cosim-lint
	@if $(GO) run $(STATICCHECK_MOD) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK_MOD) ./...; \
	else \
		echo "lint: staticcheck unavailable (offline); skipped"; \
	fi
	@if $(GO) run $(GOVULNCHECK_MOD) -version >/dev/null 2>&1; then \
		$(GO) run $(GOVULNCHECK_MOD) ./...; \
	else \
		echo "lint: govulncheck unavailable (offline); skipped"; \
	fi

ci: vet build race fuzz-smoke farm-soak bench-adaptive lint
