package repro

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cosim"
	"repro/internal/router"
)

// TestCoSimDeterminismProperty is the repository's headline property: for
// randomly drawn (seed, T_sync, workload, error-rate, mode) configurations
// the co-simulation produces bit-identical router statistics and board
// time on every execution and on both transports. This is what makes the
// framework usable for regression debugging ("debug the device under
// design with the precision of the target hardware simulator").
func TestCoSimDeterminismProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run property; skipped in -short")
	}
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 8; trial++ {
		rc := router.DefaultRunConfig()
		rc.TB.PacketsPerPort = 3 + rng.Intn(10)
		rc.TB.Period = uint64(200 + rng.Intn(1200))
		rc.TB.DataWords = 1 + rng.Intn(12)
		rc.TB.ErrRate = float64(rng.Intn(4)) * 0.1
		rc.TB.Seed = rng.Int63()
		rc.TSync = uint64(50 + rng.Intn(4000))
		if rng.Intn(2) == 0 {
			rc.Mode = cosim.SyncPipelined
		}

		type outcome struct {
			r      router.Stats
			cycles uint64
			ticks  uint64
		}
		run := func(tr router.TransportKind) outcome {
			cfg := rc
			cfg.Transport = tr
			res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(cfg))
			if err != nil {
				t.Fatalf("trial %d (%+v): %v", trial, rc.TB, err)
			}
			if res.Conservation != nil {
				t.Fatalf("trial %d: %v", trial, res.Conservation)
			}
			return outcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks}
		}
		first := run(router.TransportInProc)
		again := run(router.TransportInProc)
		overTCP := run(router.TransportTCP)
		if first != again {
			t.Fatalf("trial %d: same-transport runs differ:\n%+v\n%+v", trial, first, again)
		}
		if first != overTCP {
			t.Fatalf("trial %d: transports differ:\n%+v\n%+v", trial, first, overTCP)
		}
	}
}

// TestTransportMatrixDeterminism extends the headline property to the
// full transport matrix: for randomly drawn configurations, inproc,
// tcp, uds, and shm runs produce bit-identical router statistics, board
// time, AND rendezvous counts — the transport moves the same frames in
// the same order no matter what carries them. Each run must also report
// the transport kind that actually carried it.
func TestTransportMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run matrix; skipped in -short")
	}
	kinds := []router.TransportKind{
		router.TransportInProc, router.TransportTCP, router.TransportUDS,
	}
	if cosim.ShmSupported() {
		kinds = append(kinds, router.TransportShm)
	} else {
		t.Log("shm transport unsupported on this platform; matrix covers 3 kinds")
	}

	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 4; trial++ {
		rc := router.DefaultRunConfig()
		rc.TB.PacketsPerPort = 3 + rng.Intn(8)
		rc.TB.Period = uint64(200 + rng.Intn(1200))
		rc.TB.DataWords = 1 + rng.Intn(12)
		rc.TB.Seed = rng.Int63()
		rc.TSync = uint64(50 + rng.Intn(2000))
		if rng.Intn(2) == 0 {
			rc.Mode = cosim.SyncPipelined
		}

		type outcome struct {
			r      router.Stats
			cycles uint64
			ticks  uint64
			syncs  uint64
		}
		var want outcome
		for i, tk := range kinds {
			cfg := rc
			cfg.Transport = tk
			res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(cfg))
			if err != nil {
				t.Fatalf("trial %d over %v: %v", trial, tk, err)
			}
			if res.Conservation != nil {
				t.Fatalf("trial %d over %v: %v", trial, tk, res.Conservation)
			}
			if res.TransportKind != tk {
				t.Errorf("trial %d: result reports %v, ran over %v", trial, res.TransportKind, tk)
			}
			got := outcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks, syncs: res.HW.SyncEvents}
			if i == 0 {
				want = got
			} else if got != want {
				t.Errorf("trial %d: %v diverged from %v:\n%v %+v\n%v %+v",
					trial, tk, kinds[0], tk, got, kinds[0], want)
			}
		}
	}
}

// TestTransportChaosSoakDeterminism runs the full resilience stack —
// frame batching over the session layer over a seeded-chaos link — on
// the uds and shm transports, requiring each injured run to reproduce
// the clean in-process run's bits. This is the soak that proves the new
// local transports compose under the same ownership and ordering
// contracts as tcp (which TestCoSimChaosSoakDeterminism covers).
func TestTransportChaosSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak; skipped in -short")
	}
	rc := router.DefaultRunConfig()
	rc.TSync = 25 // >1000 quanta over the default workload

	type outcome struct {
		r      router.Stats
		cycles uint64
		ticks  uint64
	}
	run := func(tk router.TransportKind, chaos bool) (outcome, cosim.LinkStats) {
		cfg := rc
		cfg.Transport = tk
		if chaos {
			cfg.Batch = true
			sc := cosim.UniformScenario(20260806, cosim.FaultProfile{
				Drop: 0.01, Duplicate: 0.01, Reorder: 0.015, Corrupt: 0.01,
			})
			cfg.Chaos = &sc
			rcfg := cosim.DefaultSessionConfig()
			rcfg.RetransmitTimeout = 10 * time.Millisecond
			cfg.Resilience = &rcfg
		}
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(cfg))
		if err != nil {
			t.Fatalf("%v chaos=%v: %v", tk, chaos, err)
		}
		if res.Conservation != nil {
			t.Fatalf("%v chaos=%v: %v", tk, chaos, res.Conservation)
		}
		return outcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks}, res.Link.Link
	}

	clean, _ := run(router.TransportInProc, false)
	kinds := []router.TransportKind{router.TransportUDS}
	if cosim.ShmSupported() {
		kinds = append(kinds, router.TransportShm)
	}
	for _, tk := range kinds {
		dirty, link := run(tk, true)
		if clean != dirty {
			t.Errorf("%v: batch+session over chaos changed the result:\nclean %+v\ndirty %+v", tk, clean, dirty)
		}
		if link.FramesInjured == 0 {
			t.Errorf("%v: chaos injected nothing: %+v", tk, link)
		}
		if link.Retransmits == 0 {
			t.Errorf("%v: session repaired nothing despite %d injuries: %+v", tk, link.FramesInjured, link)
		}
	}
}

// TestCoSimChaosSoakDeterminism is the resilience property: a long
// co-simulation whose link is injured by seeded chaos (drops, duplicates,
// reordering, corruption) but protected by the session layer produces a
// final state bit-identical to the clean run — the faults cost wall-clock
// time, never virtual-time accuracy. Two chaos runs with the same seed
// must also agree with each other.
func TestCoSimChaosSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak; skipped in -short")
	}
	rc := router.DefaultRunConfig()
	rc.TSync = 25 // >1000 quanta over the default workload

	type outcome struct {
		r      router.Stats
		cycles uint64
		ticks  uint64
	}
	run := func(withChaos bool) (outcome, cosim.LinkStats) {
		cfg := rc
		if withChaos {
			sc := cosim.UniformScenario(20260804, cosim.FaultProfile{
				Drop: 0.01, Duplicate: 0.01, Reorder: 0.015, Corrupt: 0.01,
			})
			cfg.Chaos = &sc
			rcfg := cosim.DefaultSessionConfig()
			rcfg.RetransmitTimeout = 10 * time.Millisecond
			cfg.Resilience = &rcfg
		}
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(cfg))
		if err != nil {
			t.Fatalf("chaos=%v: %v", withChaos, err)
		}
		if res.Conservation != nil {
			t.Fatalf("chaos=%v: %v", withChaos, res.Conservation)
		}
		if res.HW.SyncEvents < 1000 {
			t.Fatalf("only %d quanta; the soak wants ≥1000", res.HW.SyncEvents)
		}
		return outcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks}, res.Link.Link
	}

	clean, cleanLink := run(false)
	dirty, link := run(true)
	again, _ := run(true)

	if clean != dirty {
		t.Fatalf("chaos changed the virtual-time result:\nclean %+v\ndirty %+v", clean, dirty)
	}
	if dirty != again {
		t.Fatalf("same-seed chaos runs differ:\n%+v\n%+v", dirty, again)
	}
	if cleanLink.FramesInjured != 0 {
		t.Fatalf("clean run reports injuries: %+v", cleanLink)
	}
	if link.FramesInjured == 0 {
		t.Fatalf("chaos injected nothing at these probabilities: %+v", link)
	}
	if link.Retransmits == 0 {
		t.Fatalf("session repaired nothing despite %d injuries: %+v", link.FramesInjured, link)
	}
}
