package repro

import (
	"math/rand"
	"testing"

	"repro/internal/cosim"
	"repro/internal/router"
)

// TestCoSimDeterminismProperty is the repository's headline property: for
// randomly drawn (seed, T_sync, workload, error-rate, mode) configurations
// the co-simulation produces bit-identical router statistics and board
// time on every execution and on both transports. This is what makes the
// framework usable for regression debugging ("debug the device under
// design with the precision of the target hardware simulator").
func TestCoSimDeterminismProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run property; skipped in -short")
	}
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 8; trial++ {
		rc := router.DefaultRunConfig()
		rc.TB.PacketsPerPort = 3 + rng.Intn(10)
		rc.TB.Period = uint64(200 + rng.Intn(1200))
		rc.TB.DataWords = 1 + rng.Intn(12)
		rc.TB.ErrRate = float64(rng.Intn(4)) * 0.1
		rc.TB.Seed = rng.Int63()
		rc.TSync = uint64(50 + rng.Intn(4000))
		if rng.Intn(2) == 0 {
			rc.Mode = cosim.SyncPipelined
		}

		type outcome struct {
			r      router.Stats
			cycles uint64
			ticks  uint64
		}
		run := func(tr router.TransportKind) outcome {
			cfg := rc
			cfg.Transport = tr
			res, err := router.RunCoSim(cfg)
			if err != nil {
				t.Fatalf("trial %d (%+v): %v", trial, rc.TB, err)
			}
			if res.Conservation != nil {
				t.Fatalf("trial %d: %v", trial, res.Conservation)
			}
			return outcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks}
		}
		first := run(router.TransportInProc)
		again := run(router.TransportInProc)
		overTCP := run(router.TransportTCP)
		if first != again {
			t.Fatalf("trial %d: same-transport runs differ:\n%+v\n%+v", trial, first, again)
		}
		if first != overTCP {
			t.Fatalf("trial %d: transports differ:\n%+v\n%+v", trial, first, overTCP)
		}
	}
}
