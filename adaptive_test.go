package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/cosim"
	"repro/internal/router"
)

// adaptiveOutcome is the bit-compared virtual-time result of a run. It
// deliberately includes every field the paper's evaluation reports:
// router statistics, the board's cycle/tick clock, and the HDL cycle
// count.
type adaptiveOutcome struct {
	r      router.Stats
	cycles uint64
	ticks  uint64
	sim    uint64
}

// TestAdaptiveSyncDeterminism is the tentpole property of the adaptive
// quantum: over a ≥1000-quantum workload, enabling lookahead-driven grant
// elongation plus wire-frame batching changes only the wall-clock cost —
// the virtual-time result is bit-identical to the plain TSync stepping,
// and the elided boundaries exactly account for the missing sync events.
func TestAdaptiveSyncDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak; skipped in -short")
	}
	base := router.DefaultRunConfig()
	base.TSync = 25 // >1000 quanta over the default workload

	run := func(adaptive bool) router.RunResult {
		rc := base
		rc.Adaptive = adaptive
		rc.Batch = adaptive
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
		if err != nil {
			t.Fatalf("adaptive=%v: %v", adaptive, err)
		}
		if res.Conservation != nil {
			t.Fatalf("adaptive=%v: %v", adaptive, res.Conservation)
		}
		return res
	}

	plain := run(false)
	adpt := run(true)
	again := run(true)

	if plain.HW.SyncEvents < 1000 {
		t.Fatalf("only %d quanta; the soak wants ≥1000", plain.HW.SyncEvents)
	}
	if plain.HW.SyncsElided != 0 {
		t.Fatalf("plain run elided %d boundaries", plain.HW.SyncsElided)
	}
	if adpt.HW.SyncsElided == 0 {
		t.Fatalf("adaptive run elided nothing: %+v", adpt.HW)
	}

	out := func(r router.RunResult) adaptiveOutcome {
		return adaptiveOutcome{r: r.Router, cycles: r.BoardCycles, ticks: r.BoardSWTicks, sim: r.SimCycles}
	}
	if out(plain) != out(adpt) {
		t.Fatalf("adaptive sync changed the virtual-time result:\nplain    %+v\nadaptive %+v", out(plain), out(adpt))
	}
	if out(adpt) != out(again) {
		t.Fatalf("adaptive runs differ between executions:\n%+v\n%+v", out(adpt), out(again))
	}

	// Every TSync boundary is either a rendezvous or an elision; the
	// positions are identical across modes, so the counts must balance.
	if plain.HW.SyncEvents != adpt.HW.SyncEvents+adpt.HW.SyncsElided {
		t.Fatalf("boundary accounting broken: plain %d syncs, adaptive %d syncs + %d elided",
			plain.HW.SyncEvents, adpt.HW.SyncEvents, adpt.HW.SyncsElided)
	}
}

// TestAdaptiveChaosSoakDeterminism layers the adaptive quantum and frame
// batching on top of an injured link healed by the session layer: the
// full stack (batch over session over chaos) must still produce the
// clean plain run's bits.
func TestAdaptiveChaosSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak; skipped in -short")
	}
	rc := router.DefaultRunConfig()
	rc.TSync = 25

	run := func(adaptive, chaos bool) (adaptiveOutcome, cosim.LinkStats) {
		cfg := rc
		cfg.Adaptive = adaptive
		cfg.Batch = adaptive
		if chaos {
			sc := cosim.UniformScenario(20260805, cosim.FaultProfile{
				Drop: 0.01, Duplicate: 0.01, Reorder: 0.015, Corrupt: 0.01,
			})
			cfg.Chaos = &sc
			rcfg := cosim.DefaultSessionConfig()
			rcfg.RetransmitTimeout = 10 * time.Millisecond
			cfg.Resilience = &rcfg
		}
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(cfg))
		if err != nil {
			t.Fatalf("adaptive=%v chaos=%v: %v", adaptive, chaos, err)
		}
		if res.Conservation != nil {
			t.Fatalf("adaptive=%v chaos=%v: %v", adaptive, chaos, res.Conservation)
		}
		return adaptiveOutcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks, sim: res.SimCycles}, res.Link.Link
	}

	clean, _ := run(false, false)
	dirty, link := run(true, true)
	again, _ := run(true, true)

	if clean != dirty {
		t.Fatalf("adaptive+batch over chaos changed the result:\nclean %+v\ndirty %+v", clean, dirty)
	}
	if dirty != again {
		t.Fatalf("same-seed adaptive chaos runs differ:\n%+v\n%+v", dirty, again)
	}
	if link.FramesInjured == 0 {
		t.Fatalf("chaos injected nothing: %+v", link)
	}
	if link.Retransmits == 0 {
		t.Fatalf("session repaired nothing despite %d injuries: %+v", link.FramesInjured, link)
	}
}
