// Homogeneous co-simulation example: hardware AND software in a single
// simulation engine — the style of the authors' "Native ISS-SystemC
// Integration" (the paper's ref [20]) and the baseline the DATE'05
// paper's heterogeneous simulator↔board coupling improves on for virtual
// prototyping.
//
// An RV32 CPU core (internal/cpucore) sits on a simulated SoC bus next to
// a RAM and a doorbell/result register block. An HDL producer drops a
// message into the RAM and rings the doorbell; the software polls it,
// computes CRC-16 over the message — every byte fetched as a real bus
// transaction — and stores the result for an HDL checker to verify.
//
// There is no socket, no RTOS and no T_sync: hardware/software timing
// alignment is exact to the cycle, which is this approach's strength.
// Its weakness is the reason the paper exists: nothing here runs on the
// real board, so OS effects and real-time behaviour are invisible.
//
//	go run ./examples/homogeneous
package main

import (
	"fmt"
	"log"

	"repro/internal/checksum"
	"repro/internal/cpucore"
	"repro/internal/hdlsim"
	"repro/internal/iss"
	"repro/internal/sim"
)

// SoC map (byte addresses inside the core's MMIO window).
const (
	ramBytes   = 0x8000_0000 // message RAM
	doorbell   = 0x8000_0100 // producer → CPU: message length in bytes
	resultReg  = 0x8000_0104 // CPU → checker: the CRC
	ramWords   = 64
	msgLen     = 24
	socLatency = 2 // bus cycles per transaction
)

const program = `
    li   t0, 0x80000100    # doorbell
poll:
    lw   a1, 0(t0)         # message length
    beqz a1, poll
    li   a0, 0x80000000    # message base
    li   t0, 0xffff        # crc
    li   t3, 0x1021
    li   t4, 0x8000
    li   t5, 0xffff
byteloop:
    beqz a1, done
    lbu  t1, 0(a0)         # bus transaction per byte
    slli t1, t1, 8
    xor  t0, t0, t1
    li   t2, 8
bitloop:
    and  t6, t0, t4
    slli t0, t0, 1
    beqz t6, nopoly
    xor  t0, t0, t3
nopoly:
    and  t0, t0, t5
    addi t2, t2, -1
    bnez t2, bitloop
    addi a0, a0, 1
    addi a1, a1, -1
    j    byteloop
done:
    li   a2, 0x80000104    # result register
    sw   t0, 0(a2)
    mv   a0, t0
    ecall
`

func main() {
	s := hdlsim.NewSimulator("soc")
	clk := s.NewClock("clk", sim.NS(10))
	bus := hdlsim.NewBus(s, clk, "soc-bus", socLatency)

	ram := hdlsim.NewRAM(ramBytes>>2, ramWords)
	regs := hdlsim.NewRAM(doorbell>>2, 2)
	if err := bus.Map(ramBytes>>2, ramWords, ram); err != nil {
		log.Fatal(err)
	}
	if err := bus.Map(doorbell>>2, 2, regs); err != nil {
		log.Fatal(err)
	}

	core := cpucore.New(s, clk, bus, cpucore.DefaultConfig())
	words, _, err := iss.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.CPU.LoadProgram(words, 0); err != nil {
		log.Fatal(err)
	}

	// HDL producer: deliver the message at cycle 50, ring the doorbell.
	msg := make([]byte, msgLen)
	for i := range msg {
		msg[i] = byte(0x30 + i)
	}
	s.Thread("producer", func(c *hdlsim.Ctx) {
		c.WaitCycles(clk, 50)
		for i := 0; i < msgLen; i += 4 {
			var w uint32
			for b := 0; b < 4 && i+b < msgLen; b++ {
				w |= uint32(msg[i+b]) << (8 * b)
			}
			if err := ram.BusWrite(uint32((ramBytes+i)>>2), w); err != nil {
				panic(err)
			}
		}
		if err := regs.BusWrite(doorbell>>2, msgLen); err != nil {
			panic(err)
		}
		fmt.Printf("[hw] cycle %5d: message delivered, doorbell rung\n", clk.Cycles())
	})

	// HDL checker: verify the result when the core halts.
	var pass bool
	var doneCycle uint64
	s.Method("checker", func() {
		doneCycle = clk.Cycles()
		got, err := regs.BusRead(resultReg >> 2)
		if err != nil {
			panic(err)
		}
		want := uint32(checksum.CRC16CCITT(msg))
		pass = got == want
		fmt.Printf("[hw] cycle %5d: CPU halted; result=%#04x want=%#04x\n", doneCycle, got, want)
		s.Stop()
	}, core.Done()).DontInitialize()

	if err := s.Run(sim.MS(10)); err != nil {
		log.Fatal(err)
	}
	halt, err := core.Halted()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-engine co-simulation: halt=%v\n", halt)
	fmt.Printf("  %d instructions, %d CPU cycles, %d bus transactions\n",
		core.CPU.Steps, core.CPU.Cycles, core.BusOps())
	fmt.Printf("  HDL time at completion: %d cycles — software and hardware share one clock,\n", doneCycle)
	fmt.Println("  exact to the cycle; contrast with the heterogeneous board coupling where")
	fmt.Println("  timing is quantized to T_sync but the software runs on the real target stack.")
	if !pass {
		log.Fatal("CRC mismatch")
	}
}
