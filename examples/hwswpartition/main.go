// HW/SW partitioning example: should the CRC move into the FPGA?
//
// The paper's introduction motivates the framework with exactly this kind
// of question: a factory-automation vendor wants to extend an existing
// board with new hardware and must take early architectural decisions "by
// measuring the expected performance on the models". Here the candidate
// hardware is the CRC-16 accelerator (internal/accel), co-simulated
// against the real alternative: computing the CRC in software on the
// board's CPU (the RV32 ISS kernel).
//
// For each message size the example measures, in board CPU cycles:
//
//   - SW: cycles the CPU spends in the bitwise CRC kernel;
//
//   - HW busy: cycles the CPU spends feeding the accelerator over the bus;
//
//   - HW elapsed: request-to-result latency, which includes the
//     co-simulation quantum — offload latency depends on T_sync, so the
//     crossover point is itself a function of the synchronization interval.
//
//     go run ./examples/hwswpartition
//     go run ./examples/hwswpartition -tsync 200
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/accel"
	"repro/internal/board"
	"repro/internal/checksum"
	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/iss"
	"repro/internal/rtos"
	"repro/internal/sim"
)

const (
	accelBase = 0x100
	accelIRQ  = 9
)

type sample struct {
	size              int
	swCycles          uint64
	hwBusy, hwElapsed uint64
	swCRC, hwCRC      uint16
}

func main() {
	tsync := flag.Uint64("tsync", 50, "synchronization interval in clock cycles")
	flag.Parse()

	// Hardware side: the accelerator under design.
	s := hdlsim.NewSimulator("partition")
	clk := s.NewClock("clk", sim.NS(10))
	accel.New(s, clk, accelBase, accelIRQ, 4)

	// Board side.
	brd := board.New(board.DefaultConfig())
	dev, err := brd.NewRemoteDev("/dev/crc", accelBase, accel.WindowWords, nil)
	if err != nil {
		log.Fatal(err)
	}
	done := brd.K.NewSemaphore("crc.done", 0)
	brd.K.AttachInterrupt(accelIRQ, nil, func() { done.Post() })

	sizes := []int{8, 32, 64, 128, 256}
	var samples []sample
	finished := false
	brd.K.CreateThread("partition-study", 10, func(c *rtos.ThreadCtx) {
		for _, n := range sizes {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(i*7 + n)
			}
			smp := sample{size: n}

			// Software path: run the kernel on the ISS, charge its cycles.
			crc, cycles, err := iss.RunCRC16(data)
			if err != nil {
				panic(err)
			}
			c.Charge(cycles)
			smp.swCycles = cycles
			smp.swCRC = crc

			// Hardware path: marshal, start, wait for the interrupt.
			words, err := accel.PackBytes(data)
			if err != nil {
				panic(err)
			}
			busy0 := c.Thread().CyclesUsed()
			t0 := brd.K.Cycles()
			if _, err := dev.Write(c, accel.RegData, words); err != nil {
				panic(err)
			}
			if _, err := dev.Write(c, accel.RegLen, []uint32{uint32(n)}); err != nil {
				panic(err)
			}
			if _, err := dev.Write(c, accel.RegCtrl, []uint32{1}); err != nil {
				panic(err)
			}
			done.Wait(c)
			buf := make([]uint32, 1)
			if _, err := dev.Read(c, accel.RegResult, buf); err != nil {
				panic(err)
			}
			smp.hwBusy = c.Thread().CyclesUsed() - busy0
			smp.hwElapsed = brd.K.Cycles() - t0
			smp.hwCRC = uint16(buf[0])

			samples = append(samples, smp)
		}
		finished = true
		c.Exit()
	})

	// Link and run.
	hwT, boardT := cosim.NewInProcPair(256)
	hw := cosim.NewHWEndpoint(hwT, cosim.SyncAlternating)
	bep := cosim.NewBoardEndpoint(boardT)
	dev.Attach(bep)
	boardDone := make(chan error, 1)
	go func() { boardDone <- brd.Run(bep) }()
	if _, err := s.DriverSimulate(clk, hw, hdlsim.DriverConfig{
		TSync:       *tsync,
		TotalCycles: 2_000_000,
		StopEarly:   func() bool { return finished },
	}); err != nil {
		log.Fatal(err)
	}
	hwT.Close()
	<-boardDone

	fmt.Printf("CRC-16 partitioning study (Tsync = %d cycles, offload latency ≈ 1–2 quanta)\n\n", *tsync)
	fmt.Printf("%8s  %12s  %12s  %12s  %s\n", "bytes", "SW [cycles]", "HW busy", "HW elapsed", "latency winner")
	for _, smp := range samples {
		if smp.swCRC != checksum.CRC16CCITT(makeMsg(smp.size)) || smp.swCRC != smp.hwCRC {
			log.Fatalf("CRC mismatch at %d bytes: sw=%#04x hw=%#04x", smp.size, smp.swCRC, smp.hwCRC)
		}
		winner := "software"
		if smp.hwElapsed < smp.swCycles {
			winner = "accelerator"
		}
		fmt.Printf("%8d  %12d  %12d  %12d  %s\n",
			smp.size, smp.swCycles, smp.hwBusy, smp.hwElapsed, winner)
	}
	fmt.Println("\nreading: the accelerator always frees the CPU (HW busy ≪ SW), but its")
	fmt.Println("request-to-result latency is dominated by the synchronization quantum —")
	fmt.Println("rerun with a different -tsync and watch the crossover move.")
}

func makeMsg(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*7 + n)
	}
	return data
}
