// Debugging example: the observability tools in one place.
//
// The same tiny adder co-simulation as examples/quickstart, but with the
// protocol trace enabled on the simulator side and the design/kernel
// inventories dumped at the end — what you would reach for when a
// co-simulation misbehaves: which messages crossed, in what order, what
// every process/thread was doing when the run stopped.
//
//	go run ./examples/debugging
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/rtos"
	"repro/internal/sim"
)

const (
	regOps    = 0x00
	regResult = 0x10
	irqDone   = 1
)

func main() {
	// Hardware: a 1-cycle adder.
	s := hdlsim.NewSimulator("debug-demo")
	clk := s.NewClock("clk", sim.NS(10))
	din := s.NewDriverIn("adder.ops", regOps, 2)
	dout := s.NewDriverOut("adder.result", regResult, 1)
	var a, b uint32
	got := 0
	s.DriverProcess("adder.driver", func() {
		for {
			w, ok := din.Pop()
			if !ok {
				return
			}
			if w.Addr == regOps {
				a = w.Val
				got++
			} else {
				b = w.Val
				got++
			}
			if got == 2 {
				got = 0
				sum := a + b
				dout.Set(regResult, sum)
				dout.Post(regResult, []uint32{sum})
				s.RaiseDriverInterrupt(irqDone)
			}
		}
	}, din)

	// Board: one request, then park.
	brd := board.New(board.DefaultConfig())
	dev, err := brd.NewRemoteDev("/dev/adder", regOps, 0x20, nil)
	if err != nil {
		log.Fatal(err)
	}
	done := brd.K.NewSemaphore("done", 0)
	brd.K.AttachInterrupt(irqDone, nil, func() { done.Post() })
	var result uint32
	finished := false
	brd.K.CreateThread("adder-app", 10, func(c *rtos.ThreadCtx) {
		if _, err := dev.Write(c, regOps, []uint32{1000, 234}); err != nil {
			panic(err)
		}
		done.Wait(c)
		buf := make([]uint32, 1)
		if _, err := dev.Read(c, regResult, buf); err != nil {
			panic(err)
		}
		result = buf[0]
		finished = true
		c.Exit()
	})

	// Link with the protocol trace on the simulator side.
	hwT, boardT := cosim.NewInProcPair(64)
	fmt.Println("── protocol trace (simulator side) ──────────────────────────")
	traced := cosim.NewTraceTransport(hwT, os.Stdout)
	hw := cosim.NewHWEndpoint(traced, cosim.SyncAlternating)
	bep := cosim.NewBoardEndpoint(boardT)
	dev.Attach(bep)
	boardDone := make(chan error, 1)
	go func() { boardDone <- brd.Run(bep) }()
	if _, err := s.DriverSimulate(clk, hw, hdlsim.DriverConfig{
		TSync:       25,
		TotalCycles: 500,
		StopEarly:   func() bool { return finished },
	}); err != nil {
		log.Fatal(err)
	}
	hwT.Close()
	<-boardDone

	fmt.Println("\n── design inventory (hdlsim.Describe) ───────────────────────")
	if err := s.Describe(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n── board kernel snapshot (rtos.Describe) ────────────────────")
	if err := brd.K.Describe(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresult: 1000 + 234 = %d\n", result)
	if result != 1234 {
		log.Fatal("wrong result")
	}
}
