// Design-space exploration example: the paper's closing remark made
// executable. When the device's timing constraints leave T_sync free
// within a range, sweep it, measure accuracy (deterministic, in-process)
// and speed (wall-clock), and pick the value maximizing accuracy × speedup
// — virtual prototyping used for an early architectural decision.
//
//	go run ./examples/dse
//	go run ./examples/dse -min 500 -max 20000 -n 100
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/router"
)

func main() {
	minTS := flag.Uint64("min", 1000, "lowest Tsync to consider")
	maxTS := flag.Uint64("max", 20000, "highest Tsync to consider")
	n := flag.Int("n", 100, "workload size in packets")
	useTCP := flag.Bool("tcp", false, "use loopback TCP (real sync cost on the speed axis)")
	delay := flag.Duration("linkdelay", 0, "emulated link latency per message (e.g. 500us)")
	flag.Parse()

	var grid []uint64
	for ts := *minTS; ts <= *maxTS; ts = ts * 3 / 2 {
		grid = append(grid, ts)
	}

	fmt.Printf("exploring Tsync in [%d, %d] over %d points (N=%d)\n\n", *minTS, *maxTS, len(grid), *n)
	fmt.Printf("%10s  %9s  %9s  %9s  %8s\n", "Tsync", "accuracy", "wall[ms]", "speedup", "quality")

	var refWall float64
	bestQ, bestTS := 0.0, uint64(0)
	for i, ts := range grid {
		rc := router.DefaultRunConfig()
		rc.TB.PacketsPerPort = *n / rc.TB.Ports
		rc.TSync = ts
		if *useTCP {
			rc.Transport = router.TransportTCP
		}
		rc.LinkDelay = *delay
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
		if err != nil {
			log.Fatal(err)
		}
		wall := float64(res.Wall.Microseconds()) / 1000
		if i == 0 {
			refWall = wall
		}
		speedup := refWall / wall
		quality := res.Accuracy * speedup
		marker := ""
		if quality > bestQ {
			bestQ, bestTS = quality, ts
			marker = "  <-"
		}
		fmt.Printf("%10d  %8.1f%%  %9.1f  %9.2f  %8.2f%s\n",
			ts, 100*res.Accuracy, wall, speedup, quality, marker)
	}
	fmt.Printf("\nrecommended Tsync = %d (accuracy x speedup = %.2f)\n", bestTS, bestQ)
	fmt.Println("(the paper, §6: \"there is a value of Tsync which maximizes the product\";")
	fmt.Println(" if it falls in the allowed range, use it as the synchronization interval)")
}
