// Quickstart: co-simulate a tiny hardware adder with software on the
// virtual board, in one process over the in-memory transport.
//
// The hardware side is an HDL model with the paper's driver ports: a
// driver_in receives two operands from the board, the adder computes for
// two clock cycles, then posts the result to a driver_out register and
// raises an interrupt. The software side is an RTOS thread that writes
// the operands through the remote device driver, sleeps on a semaphore
// until the driver's DSR signals completion, and reads the result from
// the device window.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Device register map (word addresses).
const (
	regOpA    = 0x00 // board → adder
	regOpB    = 0x01
	regResult = 0x10 // adder → board
	irqDone   = 1
	winSize   = 0x20
)

func main() {
	// ---- hardware side: the adder model -------------------------------
	s := hdlsim.NewSimulator("quickstart")
	clk := s.NewClock("clk", sim.NS(10))
	din := s.NewDriverIn("adder.ops", regOpA, 2)
	dout := s.NewDriverOut("adder.result", regResult, 1)

	var a, b uint32
	var haveA, haveB bool
	busy := s.NewEvent("adder.start")
	s.DriverProcess("adder.driver", func() {
		for {
			w, ok := din.Pop()
			if !ok {
				return
			}
			switch w.Addr {
			case regOpA:
				a, haveA = w.Val, true
			case regOpB:
				b, haveB = w.Val, true
			}
			if haveA && haveB {
				haveA, haveB = false, false
				busy.Notify()
			}
		}
	}, din)
	s.Thread("adder.compute", func(c *hdlsim.Ctx) {
		for {
			c.Wait(busy)
			c.WaitCycles(clk, 2) // the adder "takes" two cycles
			sum := a + b
			dout.Set(regResult, sum)
			dout.Post(regResult, []uint32{sum})
			s.RaiseDriverInterrupt(irqDone)
			fmt.Printf("[hw   ] %v: computed %d + %d = %d, raising IRQ\n", c.Now(), a, b, sum)
		}
	})

	// ---- board side: RTOS, driver, application ------------------------
	brd := board.New(board.DefaultConfig())
	dev, err := brd.NewRemoteDev("/dev/adder", regOpA, winSize, nil)
	if err != nil {
		log.Fatal(err)
	}
	done := brd.K.NewSemaphore("adder.done", 0)
	brd.K.AttachInterrupt(irqDone, nil, func() { done.Post() })

	var results []uint32
	brd.K.CreateThread("adder-app", 10, func(c *rtos.ThreadCtx) {
		pairs := [][2]uint32{{2, 3}, {100, 23}, {40000, 2}}
		for _, p := range pairs {
			if _, err := dev.Write(c, regOpA, []uint32{p[0], p[1]}); err != nil {
				panic(err)
			}
			fmt.Printf("[board] tick %d: requested %d + %d\n", brd.K.SWTick(), p[0], p[1])
			done.Wait(c)
			buf := make([]uint32, 1)
			if _, err := dev.Read(c, regResult, buf); err != nil {
				panic(err)
			}
			fmt.Printf("[board] tick %d: result = %d\n", brd.K.SWTick(), buf[0])
			results = append(results, buf[0])
		}
		c.Exit()
	})

	// ---- link the two sides and run ------------------------------------
	hwT, boardT := cosim.NewInProcPair(256)
	hw := cosim.NewHWEndpoint(hwT, cosim.SyncAlternating)
	bep := cosim.NewBoardEndpoint(boardT)
	dev.Attach(bep)

	boardDone := make(chan error, 1)
	go func() { boardDone <- brd.Run(bep) }()

	stats, err := s.DriverSimulate(clk, hw, hdlsim.DriverConfig{
		TSync:       50,
		TotalCycles: 2000,
		StopEarly:   func() bool { return len(results) == 3 },
	})
	if err != nil {
		log.Fatal(err)
	}
	hwT.Close()
	<-boardDone

	fmt.Printf("\nco-simulation finished: %d cycles, %d syncs, %d interrupts\n",
		stats.Cycles, stats.SyncEvents, stats.Interrupts)
	fmt.Printf("results: %v (want [5 123 40002])\n", results)
	if len(results) != 3 || results[0] != 5 || results[1] != 123 || results[2] != 40002 {
		log.Fatal("quickstart: wrong results")
	}
}
