// Chaos: the paper's router co-simulation over a deliberately injured
// link. The same workload runs twice — once clean, once with a seeded
// chaos layer dropping, duplicating, reordering, and corrupting frames
// beneath the resilient session layer — and the two virtual-time results
// are compared bit for bit. The faults cost wall-clock time (visible in
// the retransmission counters), never accuracy.
//
//	go run ./examples/chaos [-seed N] [-drop P] [-reorder P] [-corrupt P]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cosim"
	"repro/internal/router"
)

func main() {
	seed := flag.Int64("seed", 20260804, "fault-schedule seed")
	drop := flag.Float64("drop", 0.01, "per-frame drop probability")
	reorder := flag.Float64("reorder", 0.015, "per-frame reorder probability")
	corrupt := flag.Float64("corrupt", 0.01, "per-frame bit-flip probability")
	flag.Parse()

	ctx := context.Background()

	type outcome struct {
		r      router.Stats
		cycles uint64
		ticks  uint64
	}
	run := func(label string, chaotic bool) (outcome, cosim.LinkStats) {
		opts := []router.Option{router.WithTSync(25)}
		if chaotic {
			sc := cosim.UniformScenario(*seed, cosim.FaultProfile{
				Drop: *drop, Duplicate: *drop, Reorder: *reorder, Corrupt: *corrupt,
			})
			rcfg := cosim.DefaultSessionConfig()
			rcfg.RetransmitTimeout = 10 * time.Millisecond
			opts = append(opts, router.WithStack(cosim.StackConfig{Chaos: &sc, Session: &rcfg}))
		}
		res, err := router.Run(ctx, router.Transports{}, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %s run: %v\n", label, err)
			os.Exit(1)
		}
		fmt.Printf("%-6s forwarded=%d/%d syncs=%d boardTime=%d cycles/%d ticks wall=%v\n",
			label, res.Router.Forwarded, res.Generated, res.HW.SyncEvents,
			res.BoardCycles, res.BoardSWTicks, res.Wall.Round(time.Millisecond))
		return outcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks}, res.Link.Link
	}

	clean, _ := run("clean", false)
	dirty, link := run("chaos", true)
	fmt.Printf("link   injured=%d retransmits=%d crcDropped=%d dupsDropped=%d gaps=%d\n",
		link.FramesInjured, link.Retransmits, link.CrcDropped, link.DupsDropped, link.GapsSeen)

	if clean != dirty {
		fmt.Fprintf(os.Stderr, "chaos: DIVERGED:\n  clean %+v\n  chaos %+v\n", clean, dirty)
		os.Exit(1)
	}

	// Third run: the same chaotic stack, but wired by hand. BuildStack
	// composes the layers (chaos beneath the healing session) over
	// caller-owned base transports, and router.Run executes the testbench
	// on them — the farm's code path, here in miniature. The run carries
	// no layer options of its own: the stack is ours.
	sc := cosim.UniformScenario(*seed, cosim.FaultProfile{
		Drop: *drop, Duplicate: *drop, Reorder: *reorder, Corrupt: *corrupt,
	})
	rcfg := cosim.DefaultSessionConfig()
	rcfg.RetransmitTimeout = 10 * time.Millisecond
	stack := cosim.StackConfig{Chaos: &sc, Session: &rcfg}
	hwBase, boardBase := cosim.NewInProcPair(4096)
	hwT, hwClose := cosim.BuildStack(hwBase, stack)
	boardT, boardClose := cosim.BuildStack(boardBase, stack.Peer())
	defer hwClose()
	defer boardClose()
	res, err := router.Run(ctx, router.Transports{HW: hwT, Board: boardT}, router.WithTSync(25))
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: hand-wired run: %v\n", err)
		os.Exit(1)
	}
	hand := outcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks}
	fmt.Printf("%-6s forwarded=%d/%d syncs=%d boardTime=%d cycles/%d ticks wall=%v\n",
		"manual", res.Router.Forwarded, res.Generated, res.HW.SyncEvents,
		res.BoardCycles, res.BoardSWTicks, res.Wall.Round(time.Millisecond))
	if hand != dirty {
		fmt.Fprintf(os.Stderr, "chaos: hand-wired stack DIVERGED:\n  auto   %+v\n  manual %+v\n", dirty, hand)
		os.Exit(1)
	}
	fmt.Println("result bit-identical to the clean run: faults cost time, not accuracy")
}
