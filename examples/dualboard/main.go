// Dual-board example: the multi-processor extension of the framework
// (the direction of the authors' MPSoC co-simulation work). When the
// verification software is compute-heavy, a single board cannot keep up
// with the router's packet rate inside its granted quanta: its mailbox
// backs up and packets drop even at a T_sync that is timing-wise safe.
// Splitting the checksum engines across two boards — each with its own
// DATA/INT/CLOCK link and device window — restores full accuracy.
//
//	go run ./examples/dualboard
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/router"
)

func main() {
	n := flag.Int("n", 200, "total packets")
	tsync := flag.Uint64("tsync", 2000, "synchronization interval")
	cost := flag.Uint64("cost", 40000, "per-packet verification cost in CPU cycles")
	flag.Parse()

	base := router.DefaultRunConfig()
	base.TB.PacketsPerPort = *n / base.TB.Ports
	base.TSync = *tsync
	// A heavyweight verification kernel (think DPI + signature check, not
	// just a checksum): modelled analytically so the cost is a dial.
	base.AppCfg.Timing = router.TimingAnnotated
	base.AppCfg.AnnotatedBase = *cost
	base.AppCfg.AnnotatedPerWord = 16

	fmt.Printf("workload: N=%d packets, Tsync=%d, verification cost ≈ %d cycles/packet\n\n",
		*n, *tsync, *cost)

	single, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(base))
	if err != nil {
		log.Fatal(err)
	}
	dual, err := router.RunCoSimMulti(base, 2)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, acc float64, fwd, drops, mbox uint64) {
		fmt.Printf("%-12s accuracy=%5.1f%%  forwarded=%3d  fifoDrops=%3d  mboxDrops=%d\n",
			name, 100*acc, fwd, drops, mbox)
	}
	report("one board:", single.Accuracy, single.Router.Forwarded,
		single.Router.DroppedFull, single.App.MboxDrops)
	var mbox uint64
	for _, a := range dual.Apps {
		mbox += a.MboxDrops
	}
	report("two boards:", dual.Accuracy, dual.Router.Forwarded,
		dual.Router.DroppedFull, mbox)
	fmt.Printf("\nper-board load split: %d / %d packets verified\n",
		dual.Apps[0].Delivered, dual.Apps[1].Delivered)

	if dual.Accuracy <= single.Accuracy {
		fmt.Println("\n(no win at these parameters — raise -cost or -n to saturate one board)")
	} else {
		fmt.Printf("\nsplitting the verification engines across two boards recovered %.1f%% of the traffic\n",
			100*(dual.Accuracy-single.Accuracy))
	}
}
