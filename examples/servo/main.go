// Servo example: closed-loop motion control across the co-simulation
// boundary — the factory-automation workload of the paper's introduction.
// The HDL side models a motor axis with a sampling position sensor; the
// board runs a PI controller as application software behind the remote
// device driver. The synchronization quantum is real control delay, so
// the step response visibly degrades as T_sync grows.
//
//	go run ./examples/servo                 # tight loop: clean step
//	go run ./examples/servo -tsync 2000     # delayed loop: ringing
//	go run ./examples/servo -tsync 6000     # unstable
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/servo"
)

func main() {
	tsync := flag.Uint64("tsync", 250, "synchronization interval in clock cycles")
	flag.Parse()

	rc := servo.DefaultRunConfig()
	rc.TSync = *tsync
	q, trace, err := servo.RunWithTrace(rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("step response, setpoint %.0f, Tsync=%d (sample period %d cycles)\n\n",
		rc.Control.Setpoint, *tsync, rc.Plant.SampleCycles)
	plot(trace, rc.Control.Setpoint)
	fmt.Printf("\nquality: %v (%d control updates)\n", q, q.Updates)
	if !q.Settled {
		fmt.Println("the loop did NOT settle — this Tsync adds more delay than the design tolerates")
	}
}

// plot renders the trace as a rotated ASCII chart: one output line per
// sample bucket, amplitude along the line.
func plot(trace []float64, setpoint float64) {
	if len(trace) == 0 {
		return
	}
	const width = 64
	maxV := setpoint * 2
	minV := -setpoint / 2
	clamp := func(v float64) float64 {
		if v > maxV {
			return maxV
		}
		if v < minV {
			return minV
		}
		return v
	}
	col := func(v float64) int {
		return int((clamp(v) - minV) / (maxV - minV) * float64(width-1))
	}
	setCol := col(setpoint)
	step := (len(trace) + 39) / 40 // at most 40 lines
	for i := 0; i < len(trace); i += step {
		line := []byte(strings.Repeat(" ", width))
		line[setCol] = '|'
		c := col(trace[i])
		line[c] = '*'
		fmt.Printf("%6d %s %8.0f\n", i, string(line), trace[i])
	}
}
