// Router example: the paper's full evaluation testbench — 4-port router
// with random traffic, checksum verification offloaded to software on the
// virtual board — in one process, with a VCD waveform of the router's
// activity written next to the binary.
//
//	go run ./examples/router -tsync 1000 -n 100
//	go run ./examples/router -tsync 20000 -n 100     # loose coupling: drops
//	go run ./examples/router -transport tcp -errrate 0.2
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/hdlsim"
	"repro/internal/router"
	"repro/internal/vcd"
)

func main() {
	tsync := flag.Uint64("tsync", 1000, "synchronization interval in clock cycles")
	n := flag.Int("n", 100, "total packets")
	errRate := flag.Float64("errrate", 0, "fraction of corrupted packets")
	transport := flag.String("transport", "inproc", "inproc|tcp")
	vcdPath := flag.String("vcd", "router.vcd", "waveform output file (empty to disable)")
	flag.Parse()

	rc := router.DefaultRunConfig()
	rc.TB.PacketsPerPort = *n / rc.TB.Ports
	rc.TB.ErrRate = *errRate
	rc.TSync = *tsync
	if *transport == "tcp" {
		rc.Transport = router.TransportTCP
	}

	// For the waveform we rebuild the testbench by hand so we can attach
	// monitor signals before the run (router.Run hides the testbench).
	tb := router.BuildTestbench(rc.TB)
	fwd := hdlsim.NewSignal[uint32](tb.Sim, "forwarded")
	for i, out := range tb.Router.Out {
		i := i
		tb.Sim.Method(fmt.Sprintf("mon%d", i), func() {
			if out.Read() != nil {
				fwd.Write(fwd.Read() + 1)
			}
		}, out.Changed()).DontInitialize()
	}
	var vw *vcd.Writer
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		vw = vcd.NewWriter(f, "router_tb")
		vw.AddClock("clk", tb.Clk)
		vcd.AddWord(vw, "forwarded", 32, fwd)
		if err := vw.Begin(); err != nil {
			log.Fatal(err)
		}
		defer vw.Close()
	}

	res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
	if err != nil {
		log.Fatal(err)
	}
	// Replay the same workload on the handmade testbench against the
	// instant loopback verifier to produce the waveform.
	if vw != nil {
		ep := router.NewLoopbackEndpoint()
		if _, err := tb.Sim.DriverSimulate(tb.Clk, ep, hdlsim.DriverConfig{
			TSync:       1000,
			TotalCycles: rc.TB.WorkCycles() + 20000,
			StopEarly:   tb.Finished,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("waveform written to %s (%d packets traced)\n", *vcdPath, fwd.Read())
	}

	fmt.Println(res)
	rs := res.Router
	fmt.Printf("  forwarded=%d droppedFull=%d droppedChecksum=%d\n",
		rs.Forwarded, rs.DroppedFull, rs.DroppedChecksum)
	fmt.Printf("  board app: delivered=%d verified=%d corrupt=%d (ISS: %dk cycles)\n",
		res.App.Delivered, res.App.Verified, res.App.Corrupt, res.App.ISSCycles/1000)
	fmt.Printf("  consumers: received=%d integrityErrors=%d misrouted=%d\n",
		res.Consumers.Received, res.Consumers.IntegrityError, res.Consumers.Misrouted)
	fmt.Printf("  board time: %d cycles / %d sw ticks; link: %d B, sync wait %v\n",
		res.BoardCycles, res.BoardSWTicks, res.Link.BytesSent, res.Link.SyncWait)
	if res.Conservation != nil {
		log.Fatalf("packet conservation violated: %v", res.Conservation)
	}
}
