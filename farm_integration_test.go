package repro

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/router"
)

var (
	farmActiveRe    = regexp.MustCompile(`farm_active_sessions (\d+)`)
	farmCompletedRe = regexp.MustCompile(`farm_sessions_completed_total (\d+)`)
)

// scrapeFarm GETs /metrics and returns the farm's active-session gauge
// and completed counter (0, 0 when not yet exposed).
func scrapeFarm(t *testing.T, url string) (active, completed uint64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	parse := func(re *regexp.Regexp) uint64 {
		m := re.FindSubmatch(body)
		if m == nil {
			return 0
		}
		n, err := strconv.ParseUint(string(m[1]), 10, 64)
		if err != nil {
			t.Fatalf("scrape: parsing %q: %v", m[1], err)
		}
		return n
	}
	return parse(farmActiveRe), parse(farmCompletedRe)
}

// farmAcceptanceSpec is one session of the acceptance workload: TCP
// through the shared mux listener, an emulated link latency to stretch
// wall time (so mid-run scrapes land), and chaos+resilience on every
// second session.
func farmAcceptanceSpec(idx int) farm.SessionSpec {
	spec := farm.SessionSpec{
		Transport:   "tcp",
		TSync:       500,
		LinkDelayUS: 200,
		TB:          &farm.TBSpec{PacketsPerPort: 12, Seed: int64(idx + 1)},
	}
	if idx%2 == 1 {
		spec.Chaos = &farm.ChaosSpec{Seed: int64(2000 + idx), Drop: 0.01, Duplicate: 0.01, Corrupt: 0.01}
		spec.Resilience = &farm.ResilienceSpec{RetransmitTimeoutMS: 10}
	}
	return spec
}

// virtualTime is the simulated-time fingerprint of a run; two runs with
// equal fingerprints behaved identically in virtual time.
type virtualTime struct {
	router router.Stats
	cycles uint64
	ticks  uint64
	syncs  uint64
}

func virtualTimeOf(res router.RunResult) virtualTime {
	return virtualTime{router: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks, syncs: res.HW.SyncEvents}
}

// TestFarmAcceptance is the PR's acceptance criterion: 8 concurrent TCP
// sessions (chaos+resilience on half) run on one farm while an HTTP
// scraper polls /metrics and sees farm_active_sessions and
// farm_sessions_completed_total move mid-run, and every session's
// simulated-time results come out bit-identical to the equivalent solo
// router.Run.
func TestFarmAcceptance(t *testing.T) {
	const sessions = 8

	// Solo reference runs, one per spec, through the same lowering the
	// farm applies at admission.
	want := make([]virtualTime, sessions)
	for i := range want {
		rc, err := farmAcceptanceSpec(i).RunConfig()
		if err != nil {
			t.Fatalf("lowering spec %d: %v", i, err)
		}
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
		if err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
		if res.Conservation != nil {
			t.Fatalf("solo run %d: %v", i, res.Conservation)
		}
		want[i] = virtualTimeOf(res)
	}

	reg := obs.NewRegistry()
	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()

	f, err := farm.New(farm.WithWorkers(4), farm.WithQueueDepth(sessions), farm.WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	handles := make([]*farm.Session, sessions)
	for i := range handles {
		s, err := f.Submit(ctx, farmAcceptanceSpec(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[i] = s
	}

	// Scrape while the farm works: concurrency (active > 1) and progress
	// (completed counting up while sessions are still active) must both
	// be visible to an external observer.
	allDone := make(chan struct{})
	go func() {
		for _, s := range handles {
			<-s.Done()
		}
		close(allDone)
	}()
	var maxActive uint64
	sawProgressMidRun := false
poll:
	for {
		select {
		case <-allDone:
			break poll
		case <-ctx.Done():
			t.Fatal("farm did not finish in time")
		case <-time.After(2 * time.Millisecond):
			active, completed := scrapeFarm(t, srv.URL)
			if active > maxActive {
				maxActive = active
			}
			if active >= 1 && completed >= 1 {
				sawProgressMidRun = true
			}
		}
	}
	if maxActive < 2 {
		t.Errorf("never scraped >1 active session (max %d); farm did not run concurrently", maxActive)
	}
	if !sawProgressMidRun {
		t.Error("never scraped farm_sessions_completed_total >= 1 while sessions were active")
	}

	for i, s := range handles {
		res, err := s.Result()
		if err != nil {
			t.Fatalf("farm session %d: %v", i, err)
		}
		if res.Conservation != nil {
			t.Fatalf("farm session %d: %v", i, res.Conservation)
		}
		if got := virtualTimeOf(res); got != want[i] {
			t.Errorf("session %d diverged from solo run:\nfarm %+v\nsolo %+v", i, got, want[i])
		}
	}

	// After the fact the counter must account for every session.
	_, completed := scrapeFarm(t, srv.URL)
	if completed != sessions {
		t.Errorf("farm_sessions_completed_total = %d after the run, want %d", completed, sessions)
	}
}
