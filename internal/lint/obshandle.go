package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsHandle guards the two ways the metrics layer has actually been
// misused:
//
//  1. Handles constructed in hot paths. (*obs.Registry).Counter and
//     friends take a lock and hash the name on every call; the intended
//     pattern is to resolve the handle once (a struct field, a package
//     var) and call Inc/Add/Observe on it per event. Constructing one
//     inside a loop, or chaining the constructor straight into a use
//     (`reg.Counter("x").Inc()`), re-resolves per event and is flagged.
//
//  2. Transport wrappers that swallow the stack. PR 2's zeroed-stats bug:
//     a decorator held an inner Transport but did not expose it, so
//     observeTransportStack could not find the instrumented layer below
//     and every counter read zero. Any named struct type that implements
//     cosim.Transport and stores another Transport must also implement
//     `Unwrap() Transport`.
var ObsHandle = &Analyzer{
	Name: "obshandle",
	Doc:  "require hoisted obs metric handles and Unwrap on wrapping transports",
	Run:  runObsHandle,
}

// registryMethods are the handle constructors on *obs.Registry.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

func runObsHandle(pass *Pass) error {
	o := &obsAnalysis{pass: pass}
	o.checkWrappers()
	for _, file := range pass.Files {
		o.file(file)
	}
	return nil
}

type obsAnalysis struct {
	pass     *Pass
	reported map[token.Pos]bool
}

func (o *obsAnalysis) reportOnce(pos token.Pos, format string, args ...interface{}) {
	if o.reported == nil {
		o.reported = make(map[token.Pos]bool)
	}
	if o.reported[pos] {
		return
	}
	o.reported[pos] = true
	o.pass.Reportf(pos, format, args...)
}

// checkWrappers enforces rule 2 on every named struct type declared in
// the package.
func (o *obsAnalysis) checkWrappers() {
	transportNamed := lookupTransportInterface(o.pass.Pkg)
	if transportNamed == nil {
		return
	}
	transport := transportNamed.Underlying().(*types.Interface)
	unwrapper := types.NewInterfaceType([]*types.Func{
		types.NewFunc(0, nil, "Unwrap", types.NewSignatureType(nil, nil, nil,
			types.NewTuple(),
			types.NewTuple(types.NewVar(0, nil, "", transportNamed)), false)),
	}, nil)
	unwrapper.Complete()

	scope := o.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, transport) && !types.Implements(ptr, transport) {
			continue
		}
		wraps := false
		for i := 0; i < st.NumFields(); i++ {
			ft := st.Field(i).Type()
			if types.Implements(ft, transport) || types.Identical(ft, transport) {
				wraps = true
				break
			}
			if p, ok := ft.(*types.Pointer); ok && types.Implements(p, transport) {
				wraps = true
				break
			}
		}
		if !wraps {
			continue
		}
		if types.Implements(named, unwrapper) || types.Implements(ptr, unwrapper) {
			continue
		}
		if o.pass.HasDirective(tn.Pos(), DirIgnore) {
			continue
		}
		o.pass.Reportf(tn.Pos(), "transport wrapper %s stores an inner Transport but has no Unwrap() Transport method: observeTransportStack cannot see through it and wrapped-layer stats read zero", name)
	}
}

// file enforces rule 1: registry handle constructors must not run per
// event.
func (o *obsAnalysis) file(f *ast.File) {
	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			for _, s := range loopBody(n).List {
				ast.Inspect(s, walk)
			}
			loopDepth--
			return false
		case *ast.CallExpr:
			// Chained immediate use: reg.Counter("x").Inc() resolves the
			// handle and uses it in one breath — the constructor result
			// was never hoisted.
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok {
				if inner, ok := unparen(sel.X).(*ast.CallExpr); ok && o.isRegistryConstructor(inner) {
					o.reportOnce(inner.Pos(), "obs handle %s is constructed and used in one chained expression: the lookup re-runs per event — construct it once and hoist it to a struct field", constructorName(inner))
				}
			}
			o.checkRegistryCall(n, loopDepth > 0)
		}
		return true
	}
	ast.Inspect(f, walk)
}

func constructorName(call *ast.CallExpr) string {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "?"
}

func (o *obsAnalysis) isRegistryConstructor(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return false
	}
	return o.isRegistryRecv(sel)
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return &ast.BlockStmt{}
}

// checkRegistryCall flags a handle constructor either inside a loop or
// immediately chained into a use (`reg.Counter("x").Inc()`), both of
// which re-resolve the handle per event instead of hoisting it.
func (o *obsAnalysis) checkRegistryCall(call *ast.CallExpr, inLoop bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return
	}
	if !o.isRegistryRecv(sel) {
		return
	}
	if inLoop {
		o.reportOnce(call.Pos(), "obs handle %s constructed inside a loop: each call locks the registry and hashes the name — construct it once and hoist it to a struct field", sel.Sel.Name)
	}
}

// isRegistryRecv reports whether sel.X has type *obs.Registry (or
// obs.Registry), matching by package name so testdata fakes work.
func (o *obsAnalysis) isRegistryRecv(sel *ast.SelectorExpr) bool {
	tv, ok := o.pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}
