package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// ListedPackage is the subset of `go list -json` output the loader needs.
type ListedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// AnalyzedPkg is one typechecked target package.
type AnalyzedPkg struct {
	List  *ListedPackage
	Files []*ast.File
	Src   map[string][]byte
	Types *types.Package
	Info  *types.Info
}

// Loaded is the result of Load: every package matched by the patterns,
// parsed and typechecked, plus the shared FileSet.
type Loaded struct {
	Fset *token.FileSet
	Pkgs []*AnalyzedPkg
}

// Load resolves the patterns with `go list -deps -export` (run in dir),
// parses each matched package from source, and typechecks it against the
// export data of its dependencies. Export data comes from the Go build
// cache, so repeated runs — and CI runs behind an actions/cache of
// ~/.cache/go-build — re-typecheck only what changed; no network access
// is ever needed.
func Load(dir string, patterns []string) (*Loaded, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (is it listed by go list -deps?)", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	loaded := &Loaded{Fset: fset}
	for _, p := range targets {
		pkg, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		loaded.Pkgs = append(loaded.Pkgs, pkg)
	}
	return loaded, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, p *ListedPackage) (*AnalyzedPkg, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	src := make(map[string][]byte, len(p.GoFiles))
	for _, name := range p.GoFiles {
		path := filepath.Join(p.Dir, name)
		content, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, content, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
		src[path] = content
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", p.ImportPath, err)
	}
	return &AnalyzedPkg{List: p, Files: files, Src: src, Types: tpkg, Info: info}, nil
}
