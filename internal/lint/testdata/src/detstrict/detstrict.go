// Package detstrict is the determinism analyzer's strict-mode golden
// corpus (the test config lists it as a strict package).
package detstrict

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the host clock in a simulated-time package"
}

func sleeps() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock in a simulated-time package"
}

func unseeded() int {
	return rand.Int() // want "rand.Int draws from the global host-seeded source"
}

func spawn(fn func()) {
	go fn() // want "goroutine spawned in a simulated-time package"
}

func orderDependent(m map[string]int) string {
	s := ""
	for k := range m { // want "map iteration order is randomized"
		s = s + k
	}
	return s
}

// ---- escape hatches and negative cases ----

func annotatedWallclock() time.Time {
	return time.Now() //cosim:wallclock -- golden corpus: host-side timestamp
}

//cosim:wallclock -- golden corpus: whole function is host-side plumbing
func annotatedFunc() {
	time.Sleep(time.Millisecond)
	go func() {}()
}

func annotatedRange(m map[string]int) string {
	s := ""
	for k := range m { //cosim:ignore determinism -- golden corpus: order accepted here
		s = s + k
	}
	return s
}

func seededOK(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}

func durationMathOK(d time.Duration) time.Duration {
	return d * 2
}

func countOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func collectSortedOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func perKeyWriteOK(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func sliceRangeOK(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
