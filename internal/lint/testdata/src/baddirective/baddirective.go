// Package baddirective holds directives the suite must reject: an escape
// hatch with no justification is itself a finding.
package baddirective

import "time"

func noReason() time.Time {
	return time.Now() //cosim:wallclock
}

func noAnalyzer() {
	_ = 1 //cosim:ignore -- a reason without naming the analyzer it silences
}
