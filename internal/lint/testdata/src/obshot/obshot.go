// Package obshot is the obshandle analyzer's golden corpus: hot-path
// handle construction, wrapper Unwrap coverage, and their escape hatches.
package obshot

import (
	"repro/internal/lint/testdata/src/cosim"
	"repro/internal/lint/testdata/src/obs"
)

func chained(reg *obs.Registry) {
	reg.Counter("events_total").Inc() // want "obs handle Counter is constructed and used in one chained expression"
}

func chainedGauge(reg *obs.Registry) {
	reg.Gauge("depth").Set(3) // want "obs handle Gauge is constructed and used in one chained expression"
}

func inForLoop(reg *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		c := reg.Counter("loop_total") // want "obs handle Counter constructed inside a loop"
		c.Add(1)
	}
}

func inRangeLoop(reg *obs.Registry, xs []int) {
	for range xs {
		g := reg.Gauge("range_depth") // want "obs handle Gauge constructed inside a loop"
		g.Add(1)
	}
}

// ---- escape hatches and negative cases ----

func hoistedOK(reg *obs.Registry, n int) {
	c := reg.Counter("ok_total")
	for i := 0; i < n; i++ {
		c.Add(1)
	}
}

type worker struct {
	hits *obs.Counter
}

func newWorker(reg *obs.Registry) *worker {
	return &worker{hits: reg.Counter("worker_hits_total")}
}

func (w *worker) handleOK() {
	w.hits.Inc()
}

func registrationOK(reg *obs.Registry, depth func() float64) {
	reg.GaugeFunc("queue_depth", depth)
	reg.CounterFunc("pulls_total", func() uint64 { return 0 })
}

func annotatedChainOK(reg *obs.Registry, id string) {
	reg.Gauge("session_" + id).Set(1) //cosim:ignore obshandle -- golden corpus: the name is per-session
}

// opaqueWrapper decorates a Transport without exposing the chain.
type opaqueWrapper struct { // want "transport wrapper opaqueWrapper stores an inner Transport but has no Unwrap"
	inner cosim.Transport
}

func (w *opaqueWrapper) Send(ch cosim.Channel, m cosim.Msg) error { return w.inner.Send(ch, m) }
func (w *opaqueWrapper) Recv(ch cosim.Channel) (cosim.Msg, error) { return w.inner.Recv(ch) }
func (w *opaqueWrapper) TryRecv(ch cosim.Channel) (cosim.Msg, bool, error) {
	return w.inner.TryRecv(ch)
}
func (w *opaqueWrapper) Close() error { return w.inner.Close() }

// unwrappable decorates a Transport and exposes the chain.
type unwrappable struct {
	inner cosim.Transport
}

func (w *unwrappable) Send(ch cosim.Channel, m cosim.Msg) error { return w.inner.Send(ch, m) }
func (w *unwrappable) Recv(ch cosim.Channel) (cosim.Msg, error) { return w.inner.Recv(ch) }
func (w *unwrappable) TryRecv(ch cosim.Channel) (cosim.Msg, bool, error) {
	return w.inner.TryRecv(ch)
}
func (w *unwrappable) Close() error            { return w.inner.Close() }
func (w *unwrappable) Unwrap() cosim.Transport { return w.inner }

// leaf implements Transport without wrapping one; no Unwrap required.
type leaf struct {
	closed bool
}

func (l *leaf) Send(ch cosim.Channel, m cosim.Msg) error          { return nil }
func (l *leaf) Recv(ch cosim.Channel) (cosim.Msg, error)          { return cosim.Msg{}, nil }
func (l *leaf) TryRecv(ch cosim.Channel) (cosim.Msg, bool, error) { return cosim.Msg{}, false, nil }
func (l *leaf) Close() error                                      { l.closed = true; return nil }

// annotatedWrapper hides its inner transport on purpose.
//
//cosim:ignore obshandle -- golden corpus: deliberately opaque decorator
type annotatedWrapper struct {
	inner cosim.Transport
}

func (w *annotatedWrapper) Send(ch cosim.Channel, m cosim.Msg) error { return w.inner.Send(ch, m) }
func (w *annotatedWrapper) Recv(ch cosim.Channel) (cosim.Msg, error) { return w.inner.Recv(ch) }
func (w *annotatedWrapper) TryRecv(ch cosim.Channel) (cosim.Msg, bool, error) {
	return w.inner.TryRecv(ch)
}
func (w *annotatedWrapper) Close() error { return w.inner.Close() }
