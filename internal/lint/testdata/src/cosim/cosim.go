// Package cosim is a miniature stand-in for repro/internal/cosim: just
// enough surface (Msg, Transport, the pooled-payload verbs) for the
// analyzer golden tests, which match these types by package name.
package cosim

import "io"

// Channel selects one of the protocol's logical lanes.
type Channel uint8

// The three lanes of the real protocol.
const (
	ChanClock Channel = iota
	ChanData
	ChanInt
)

// Msg mirrors the real message: scalars plus pooled payload slices.
type Msg struct {
	Type  uint8
	Addr  uint32
	Seq   uint64
	Words []uint32
	Raw   []byte
}

// Release returns pooled payloads; at most once per received message.
func (m *Msg) Release() {}

// Encode writes the framed wire format.
func (m *Msg) Encode(w io.Writer) error { return nil }

// Transport is the three-lane message link.
type Transport interface {
	Send(ch Channel, m Msg) error
	Recv(ch Channel) (Msg, error)
	TryRecv(ch Channel) (Msg, bool, error)
	Close() error
}

// Decode reads one framed message.
func Decode(r io.Reader) (Msg, error) { return Msg{}, nil }
