// Package obs is a miniature stand-in for repro/internal/obs, matched by
// the obshandle golden tests through its package and type names.
package obs

// Registry hands out metric handles by name.
type Registry struct{}

// Counter returns the named counter handle.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge returns the named gauge handle.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns the named histogram handle.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram { return &Histogram{} }

// CounterFunc registers a pull-style counter.
func (r *Registry) CounterFunc(name string, fn func() uint64) {}

// GaugeFunc registers a pull-style gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64) {}

// Counter is a monotonic count.
type Counter struct{}

// Inc adds one.
func (c *Counter) Inc() {}

// Add adds n.
func (c *Counter) Add(n uint64) {}

// Gauge is a point-in-time value.
type Gauge struct{}

// Set stores v.
func (g *Gauge) Set(v float64) {}

// Add offsets by v.
func (g *Gauge) Add(v float64) {}

// Histogram is a bucketed distribution.
type Histogram struct{}

// Observe records v.
func (h *Histogram) Observe(v float64) {}
