// Package clean is the suite's negative control: idiomatic code that
// honors the ownership contract, stays on virtual time, and hoists its
// metric handles. Every analyzer must stay silent here.
package clean

import (
	"sort"

	"repro/internal/lint/testdata/src/cosim"
	"repro/internal/lint/testdata/src/obs"
)

type pump struct {
	tr     cosim.Transport
	frames *obs.Counter
}

func newPump(tr cosim.Transport, reg *obs.Registry) *pump {
	return &pump{tr: tr, frames: reg.Counter("pump_frames_total")}
}

func (p *pump) drain(budget int) (uint32, error) {
	var last uint32
	for i := 0; i < budget; i++ {
		m, ok, err := p.tr.TryRecv(cosim.ChanData)
		if err != nil {
			return last, err
		}
		if !ok {
			return last, nil
		}
		last = m.Addr
		p.frames.Inc()
		m.Release()
	}
	return last, nil
}

func (p *pump) forward(ch cosim.Channel) error {
	m, err := p.tr.Recv(ch)
	if err != nil {
		return err
	}
	return p.tr.Send(ch, m)
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func totals(m map[string]uint64) uint64 {
	var n uint64
	for _, v := range m {
		n += v
	}
	return n
}
