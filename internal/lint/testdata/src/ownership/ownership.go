// Package ownership is msgownership's golden corpus: each `want`
// comment pins one diagnostic, everything else must stay silent.
package ownership

import (
	"repro/internal/lint/testdata/src/cosim"
)

func useAfterRelease(tr cosim.Transport) {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return
	}
	m.Release()
	_ = m.Words // want "payload field Words read after Release"
}

func doubleRelease(tr cosim.Transport) {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return
	}
	m.Release()
	m.Release() // want "double Release of the same message on one path"
}

func releaseAfterSend(tr cosim.Transport) {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return
	}
	if err := tr.Send(cosim.ChanInt, m); err != nil {
		return
	}
	m.Release() // want "Release after Send"
}

func writeAfterSend(tr cosim.Transport) {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return
	}
	if err := tr.Send(cosim.ChanInt, m); err != nil {
		return
	}
	m.Words = nil // want "payload field Words written after the message was sent"
}

func leak(tr cosim.Transport) {
	m, err := tr.Recv(cosim.ChanData) // want "not released, sent, returned"
	if err != nil {
		return
	}
	_ = m.Addr
}

//cosim:borrows
func borrowerReleases(m cosim.Msg) {
	m.Release() // want "annotated //cosim:borrows but releases"
}

// ---- negative cases: correct code the analyzer must accept ----

func releasedOK(tr cosim.Transport) {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return
	}
	_ = m.Words
	m.Release()
}

func deferredReleaseOK(tr cosim.Transport) uint32 {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return 0
	}
	defer m.Release()
	return m.Addr
}

func sentOK(tr cosim.Transport) error {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return err
	}
	return tr.Send(cosim.ChanInt, m)
}

func returnedOK(tr cosim.Transport) (cosim.Msg, error) {
	return tr.Recv(cosim.ChanData)
}

func scalarAfterReleaseOK(tr cosim.Transport) uint32 {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return 0
	}
	m.Release()
	// Release clears only the payload slices; scalar fields survive.
	return m.Addr
}

func okGuardOK(tr cosim.Transport) {
	m, ok, err := tr.TryRecv(cosim.ChanData)
	if err != nil {
		return
	}
	if !ok {
		return
	}
	m.Release()
}

//cosim:borrows
func borrowerPeeksOK(m cosim.Msg) uint32 {
	return m.Addr
}

//cosim:owns -- the golden corpus's stand-in for a layer that retains the payload
func ownsDirectiveOK(tr cosim.Transport) {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return
	}
	_ = m.Addr
}

func branchesMergeOK(tr cosim.Transport, fwd bool) error {
	m, err := tr.Recv(cosim.ChanData)
	if err != nil {
		return err
	}
	if fwd {
		return tr.Send(cosim.ChanInt, m)
	}
	m.Release()
	return nil
}
