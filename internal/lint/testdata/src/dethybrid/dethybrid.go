// Package dethybrid is the determinism analyzer's hybrid-mode golden
// corpus: wall-clock reads are still flagged, but goroutines and map
// ranges are host-side business as usual.
package dethybrid

import "time"

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the host clock in a simulated-time package"
}

func spawnOK(fn func()) {
	go fn()
}

func rangeOK(m map[string]int) string {
	s := ""
	for k := range m {
		s = s + k
	}
	return s
}
