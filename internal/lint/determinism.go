package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismConfig selects which packages the determinism analyzer
// treats as simulated-time code.
type DeterminismConfig struct {
	// Strict packages advance only on the virtual clock: wall-clock
	// reads, unseeded randomness, goroutine spawns, and map-order
	// iteration are all forbidden.
	Strict []string
	// Hybrid packages host both simulated logic and host-side transport
	// machinery (the cosim endpoint quantum loops): wall-clock and
	// unseeded-randomness rules apply, but goroutines and map ranges are
	// legitimate on the transport side and are not flagged.
	Hybrid []string
}

// DefaultDeterminismConfig matches the repo layout: the simulators,
// board model, and the hierarchical time manager are strict;
// internal/cosim is hybrid. The federation package is strict rather
// than hybrid like its parent: the time manager IS the rendezvous
// schedule, so any host observation there skews every party at once.
func DefaultDeterminismConfig() DeterminismConfig {
	return DeterminismConfig{
		Strict: []string{
			"repro/internal/hdlsim",
			"repro/internal/rtos",
			"repro/internal/iss",
			"repro/internal/sim",
			"repro/internal/board",
			"repro/internal/cosim/federation",
		},
		Hybrid: []string{"repro/internal/cosim"},
	}
}

// NewDeterminism builds the determinism analyzer for a package set.
//
// The paper's core claim is a bit-identical timed co-simulation: two
// runs with the same seed must produce the same rendezvous sequence on
// every host. That dies silently the moment simulated state observes
// the host — a wall-clock read, an unseeded random draw, a goroutine
// race, or Go's randomized map iteration order. This analyzer forbids
// those inside the simulated-time packages; genuinely host-side code
// (heartbeat timers, RTO clocks, metrics timestamps) is annotated
// `//cosim:wallclock -- <why>` with a justification.
func NewDeterminism(cfg DeterminismConfig) *Analyzer {
	strict := make(map[string]bool, len(cfg.Strict))
	for _, p := range cfg.Strict {
		strict[p] = true
	}
	hybrid := make(map[string]bool, len(cfg.Hybrid))
	for _, p := range cfg.Hybrid {
		hybrid[p] = true
	}
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, unseeded randomness, goroutines, and map-order iteration in simulated-time packages",
		Run: func(pass *Pass) error {
			isStrict := matchPkg(strict, pass)
			isHybrid := matchPkg(hybrid, pass)
			if !isStrict && !isHybrid {
				return nil
			}
			d := &detAnalysis{pass: pass, strict: isStrict}
			for _, file := range pass.Files {
				ast.Inspect(file, d.inspect)
			}
			return nil
		},
	}
}

// Determinism is the analyzer under the repo's default configuration.
var Determinism = NewDeterminism(DefaultDeterminismConfig())

// matchPkg reports whether the pass's package is in the set, matching
// the import path exactly or any path suffix entry (so tests can list
// testdata directories without knowing their absolute import path).
func matchPkg(set map[string]bool, pass *Pass) bool {
	path := pass.Pkg.Path()
	if set[path] {
		return true
	}
	for p := range set {
		if strings.HasSuffix(path, "/"+p) || path == p {
			return true
		}
	}
	return false
}

// wallClockFuncs are the time-package entry points that read or schedule
// against the host clock. time.Duration arithmetic, time.Unix
// construction, and formatting are fine — only host-clock observation is
// nondeterministic.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are math/rand package-level functions, which draw from
// the shared, host-seeded global source. rand.New(rand.NewSource(seed))
// is the deterministic alternative and is allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

type detAnalysis struct {
	pass   *Pass
	strict bool
}

// reportWallclock emits a diagnostic unless the line (or enclosing
// function) carries the //cosim:wallclock escape hatch.
func (d *detAnalysis) reportWallclock(pos token.Pos, format string, args ...any) {
	if d.pass.HasDirective(pos, DirWallclock) {
		return
	}
	d.pass.Reportf(pos, format, args...)
}

func (d *detAnalysis) inspect(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		d.checkCall(n)
	case *ast.GoStmt:
		if d.strict {
			d.reportWallclock(n.Pos(), "goroutine spawned in a simulated-time package: scheduling order is host-dependent; annotate host-side mechanisms with //cosim:wallclock -- <why>")
		}
	case *ast.RangeStmt:
		if d.strict {
			d.checkMapRange(n)
		}
	}
	return true
}

func (d *detAnalysis) checkCall(call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgName, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := d.pass.Info.Uses[pkgName].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			d.reportWallclock(call.Pos(), "time.%s reads the host clock in a simulated-time package: simulated state must advance only on virtual time; annotate genuinely host-side uses with //cosim:wallclock -- <why>", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] {
			d.pass.Reportf(call.Pos(), "rand.%s draws from the global host-seeded source: use rand.New(rand.NewSource(seed)) so runs replay bit-identically", sel.Sel.Name)
		}
	}
}

// checkMapRange flags `for ... := range m` over a map whose body feeds
// simulated state: Go randomizes map iteration order, so any
// order-dependent effect diverges between runs. Bodies that are provably
// commutative (pure counting, per-key deletes, per-key map writes) are
// allowed; anything else needs a sorted-key loop or an
// `//cosim:ignore determinism -- <why>` annotation.
func (d *detAnalysis) checkMapRange(rng *ast.RangeStmt) {
	tv, ok := d.pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if commutativeBody(rng.Body) {
		return
	}
	d.pass.Reportf(rng.Pos(), "map iteration order is randomized: an order-dependent body diverges between runs; iterate sorted keys, or annotate a commutative use with //cosim:ignore determinism -- <why>")
}

// commutativeBody conservatively recognizes loop bodies whose effect is
// independent of iteration order: counters (x++, x += k), per-key map
// writes/deletes, and bare continue/if wrappers around those. Anything
// it does not recognize — appends, sends, calls, assignments to plain
// variables — is treated as order-dependent.
func commutativeBody(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if !commutativeStmt(s) {
			return false
		}
	}
	return true
}

func commutativeStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		// Compound assignments commute (+=, -=, |=, &=, ^=) as long as
		// the RHS is not itself order-dependent; plain = only commutes
		// when the target is indexed by the loop key (per-key writes),
		// which we approximate by requiring an index expression target.
		switch s.Tok.String() {
		case "+=", "-=", "|=", "&=", "^=":
			return true
		case "=":
			// `names = append(names, k)` is the first half of the
			// collect-then-sort idiom this check's message recommends;
			// treat a self-append as commutative (the collected slice is
			// a set until something orders it).
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 && isSelfAppend(s.Lhs[0], s.Rhs[0]) {
				return true
			}
			for _, lhs := range s.Lhs {
				if _, ok := unparen(lhs).(*ast.IndexExpr); !ok {
					return false
				}
			}
			return true
		}
		return false
	case *ast.ExprStmt:
		call, ok := unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
			return true
		}
		return false
	case *ast.IfStmt:
		if s.Else != nil {
			return false
		}
		return commutativeBody(s.Body)
	case *ast.BranchStmt:
		return s.Tok.String() == "continue"
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// isSelfAppend reports whether lhs/rhs form `x = append(x, ...)` for a
// plain identifier x.
func isSelfAppend(lhs, rhs ast.Expr) bool {
	target, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	fn, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	first, ok := unparen(call.Args[0]).(*ast.Ident)
	return ok && first.Name == target.Name
}
