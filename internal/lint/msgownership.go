package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MsgOwnership enforces the pooled-buffer ownership contract documented
// on cosim.Transport (and in docs/PROTOCOL.md):
//
//   - Send transfers ownership of a message's payloads to the transport
//     stack: Release after Send, or writing payload fields after Send,
//     is flagged.
//   - Release may be called at most once per message along any path.
//   - A payload field (Words, Raw) read after Release may alias a later
//     decode and is flagged, as is re-encoding a released message.
//   - A message obtained from Recv/TryRecv/RecvTimeout/Decode owns its
//     payloads and must, on every path, be Released, Sent, returned, or
//     handed onward (a call, a channel, a field) before it goes out of
//     scope; one dropped on the floor leaks its pooled buffers.
//
// Intentional retentions are annotated `//cosim:owns -- <why>` on the
// receiving line or the function's doc comment. `//cosim:borrows` on a
// function declares that its Msg parameters stay owned by the caller, so
// releasing or sending one from inside is flagged.
//
// The analysis is intraprocedural and path-sensitive across if/else,
// switch, and select arms (states merge at join points); a call that
// takes a message as an argument is conservatively assumed to consume it
// per the callee's own contract.
var MsgOwnership = &Analyzer{
	Name: "msgownership",
	Doc:  "enforce the pooled Msg Send/Recv/Release ownership contract",
	Run:  runMsgOwnership,
}

// mstate is a bitset of the states a tracked message may be in across
// the paths explored so far.
type mstate uint8

const (
	sOwned    mstate = 1 << iota // may hold pooled payloads; needs a terminal consumer
	sReleased                    // Release was called
	sSent                        // ownership handed to a transport Send
	sConsumed                    // handed off: call argument, store, return, closure
	sVoid                        // known zero value (error-guarded receive)
)

// cell is the shared ownership state of one message value; aliased
// variables (m2 := m) point at the same cell.
type cell struct {
	state       mstate
	recvOrigin  bool // produced by Recv/TryRecv/RecvTimeout/Decode here
	paramOrigin bool
	originPos   token.Pos
	declDepth   int
	deferRel    bool
	reported    bool
}

// ownEnv maps variables to their state cells.
type ownEnv struct {
	vars map[*types.Var]*cell
}

func newOwnEnv() *ownEnv { return &ownEnv{vars: make(map[*types.Var]*cell)} }

// clone copies the environment, preserving aliasing between variables.
func (e *ownEnv) clone() *ownEnv {
	n := newOwnEnv()
	remap := make(map[*cell]*cell, len(e.vars))
	for v, c := range e.vars {
		nc, ok := remap[c]
		if !ok {
			cc := *c
			nc = &cc
			remap[c] = nc
		}
		n.vars[v] = nc
	}
	return n
}

// merge folds other into e by the product construction: each variable's
// merged cell carries the union of its per-path states, and two
// variables share a merged cell iff they were aliased by the SAME pair
// of cells on both paths. Aliases formed before the branch stay shared;
// an alias formed on only one path gets its own merged cell (its states
// still union, so no spurious double-release arises from the split).
func (e *ownEnv) merge(other *ownEnv) {
	type pair struct{ a, b *cell }
	memo := make(map[pair]*cell)
	out := make(map[*types.Var]*cell, len(e.vars))
	for v, c := range e.vars {
		oc, ok := other.vars[v]
		if !ok || oc == c {
			out[v] = c
			continue
		}
		key := pair{c, oc}
		mc, ok := memo[key]
		if !ok {
			cc := *c
			mc = &cc
			mc.state |= oc.state
			mc.deferRel = c.deferRel || oc.deferRel
			mc.reported = c.reported || oc.reported
			if oc.recvOrigin && !mc.recvOrigin {
				mc.recvOrigin = true
				mc.originPos = oc.originPos
			}
			memo[key] = mc
		}
		out[v] = mc
	}
	for v, oc := range other.vars {
		if _, ok := e.vars[v]; !ok {
			out[v] = oc
		}
	}
	e.vars = out
}

// term describes how a statement list left its block.
type term int

const (
	tFallthrough term = iota // ran off the end
	tTerminated              // return / panic / break / continue / goto
)

type ownAnalysis struct {
	pass      *Pass
	fn        *ast.FuncDecl
	ownsFn    bool // //cosim:owns on the function: waive leak checks
	borrowsFn bool // //cosim:borrows: parameters must not be released/sent
	depth     int
	// errGuard maps an error variable to the message variable whose
	// receive produced it, for `if err != nil { ... }` void-tracking.
	errGuard map[*types.Var]*types.Var
	// okGuard does the same for comma-ok receives (TryRecv): on the
	// `!ok` side the message is the zero value.
	okGuard map[*types.Var]*types.Var
	// reportedLeaks dedups leak reports by origin: each explored path
	// clones the environment, so the same unreleased receive would
	// otherwise be reported once per exit.
	reportedLeaks map[token.Pos]bool
}

func runMsgOwnership(pass *Pass) error {
	if !pkgMentionsMsg(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			a := &ownAnalysis{
				pass:          pass,
				fn:            fn,
				ownsFn:        pass.FuncHasDirective(fn, DirOwns),
				borrowsFn:     pass.FuncHasDirective(fn, DirBorrows),
				errGuard:      make(map[*types.Var]*types.Var),
				okGuard:       make(map[*types.Var]*types.Var),
				reportedLeaks: make(map[token.Pos]bool),
			}
			env := newOwnEnv()
			a.bindParams(env, fn)
			if t := a.stmts(env, fn.Body.List); t == tFallthrough {
				a.checkExit(env)
			}
		}
	}
	return nil
}

// pkgMentionsMsg reports whether the package defines or imports a
// package named cosim (the only way cosim.Msg can appear).
func pkgMentionsMsg(pkg *types.Package) bool {
	if pkg.Name() == "cosim" {
		return true
	}
	for _, imp := range pkg.Imports() {
		if imp.Name() == "cosim" {
			return true
		}
	}
	return false
}

func (a *ownAnalysis) bindParams(env *ownEnv, fn *ast.FuncDecl) {
	bind := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				obj, ok := a.pass.Info.Defs[name].(*types.Var)
				if !ok || !typeIsMsg(obj.Type()) {
					continue
				}
				env.vars[obj] = &cell{state: sOwned, paramOrigin: true, originPos: name.Pos(), declDepth: 0}
			}
		}
	}
	bind(fn.Recv)
	bind(fn.Type.Params)
}

// lookup resolves an expression to a tracked variable's cell, if the
// expression is a plain identifier (possibly parenthesized or &x).
func (a *ownAnalysis) lookup(env *ownEnv, e ast.Expr) (*types.Var, *cell) {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj, ok := a.pass.Info.Uses[id].(*types.Var)
	if !ok {
		if obj, ok = a.pass.Info.Defs[id].(*types.Var); !ok {
			return nil, nil
		}
	}
	c := env.vars[obj]
	return obj, c
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// stmts processes a statement list at the current depth, returning how
// the list terminated. Vars declared at this depth are leak-checked and
// dropped when the list falls through.
func (a *ownAnalysis) stmts(env *ownEnv, list []ast.Stmt) term {
	a.depth++
	defer func() { a.depth-- }()
	for _, s := range list {
		if t := a.stmt(env, s); t == tTerminated {
			return tTerminated
		}
	}
	a.closeDepth(env, a.depth)
	return tFallthrough
}

// closeDepth leak-checks and removes variables declared at depth d.
func (a *ownAnalysis) closeDepth(env *ownEnv, d int) {
	refs := make(map[*cell]int)
	for _, c := range env.vars {
		refs[c]++
	}
	for v, c := range env.vars {
		if c.declDepth < d {
			continue
		}
		if refs[c] == 1 {
			a.checkLeak(c)
		}
		refs[c]--
		delete(env.vars, v)
	}
}

// checkExit runs the leak check over everything still live (used at
// returns and at the end of the function body).
func (a *ownAnalysis) checkExit(env *ownEnv) {
	seen := make(map[*cell]bool)
	for _, c := range env.vars {
		if !seen[c] {
			seen[c] = true
			a.checkLeak(c)
		}
	}
}

func (a *ownAnalysis) checkLeak(c *cell) {
	if a.ownsFn || c.reported || c.deferRel || !c.recvOrigin {
		return
	}
	if c.state&sOwned == 0 {
		return
	}
	if a.reportedLeaks[c.originPos] {
		return
	}
	if a.pass.HasDirective(c.originPos, DirOwns) {
		return
	}
	c.reported = true
	a.reportedLeaks[c.originPos] = true
	a.pass.Reportf(c.originPos, "message received here is not released, sent, returned, or handed off on every path (pooled payload leak); annotate an intentional retention with //cosim:owns -- <why>")
}

func (a *ownAnalysis) stmt(env *ownEnv, s ast.Stmt) term {
	switch s := s.(type) {
	case *ast.AssignStmt:
		a.assign(env, s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					a.expr(env, val)
				}
				for _, name := range vs.Names {
					if obj, ok := a.pass.Info.Defs[name].(*types.Var); ok && typeIsMsg(obj.Type()) {
						env.vars[obj] = &cell{state: sOwned, originPos: name.Pos(), declDepth: a.depth}
					}
				}
			}
		}
	case *ast.ExprStmt:
		a.expr(env, s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if _, c := a.lookup(env, r); c != nil {
				c.state = sConsumed
			} else {
				a.expr(env, r)
			}
		}
		a.checkExit(env)
		return tTerminated
	case *ast.DeferStmt:
		a.deferStmt(env, s)
	case *ast.GoStmt:
		a.expr(env, s.Call)
	case *ast.SendStmt:
		a.expr(env, s.Chan)
		if _, c := a.lookup(env, s.Value); c != nil {
			c.state = sConsumed
		} else {
			a.expr(env, s.Value)
		}
	case *ast.IfStmt:
		return a.ifStmt(env, s)
	case *ast.SwitchStmt:
		return a.switchStmt(env, s)
	case *ast.TypeSwitchStmt:
		return a.typeSwitchStmt(env, s)
	case *ast.SelectStmt:
		return a.selectStmt(env, s)
	case *ast.ForStmt:
		a.forStmt(env, s)
	case *ast.RangeStmt:
		a.rangeStmt(env, s)
	case *ast.BlockStmt:
		return a.stmts(env, s.List)
	case *ast.LabeledStmt:
		return a.stmt(env, s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto: drop the path (mildly under-reports at
		// loop joins, never over-reports).
		return tTerminated
	case *ast.IncDecStmt:
		a.expr(env, s.X)
	case *ast.EmptyStmt:
	}
	return tFallthrough
}

// assign handles ownership transfer through assignments: receive-call
// results become owned cells, copying a tracked variable aliases its
// cell, and overwritten cells are left to scope-exit checks.
func (a *ownAnalysis) assign(env *ownEnv, s *ast.AssignStmt) {
	// Receive-shaped RHS: m, err := tr.Recv(ch) / RecvTimeout / Decode.
	if len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok && a.isRecvCall(call) {
			a.expr(env, call)
			if len(s.Lhs) >= 1 {
				if obj := a.defOrUse(s.Lhs[0]); obj != nil && typeIsMsg(obj.Type()) {
					env.vars[obj] = &cell{state: sOwned, recvOrigin: true, originPos: call.Pos(), declDepth: a.depth}
					for _, lhs := range s.Lhs[1:] {
						guard := a.defOrUse(lhs)
						if guard == nil {
							continue
						}
						switch {
						case isErrorVar(guard):
							a.errGuard[guard] = obj
						case isBoolVar(guard):
							a.okGuard[guard] = obj
						}
					}
				}
			}
			return
		}
	}
	// General case: scan RHS, then bind LHS.
	for i, rhs := range s.Rhs {
		var srcCell *cell
		if _, c := a.lookup(env, rhs); c != nil {
			srcCell = c
		} else {
			a.expr(env, rhs)
		}
		if i < len(s.Lhs) {
			lhs := unparen(s.Lhs[i])
			if obj := a.defOrUse(lhs); obj != nil && typeIsMsg(obj.Type()) {
				if srcCell != nil {
					env.vars[obj] = srcCell // alias
				} else {
					env.vars[obj] = &cell{state: sOwned, originPos: lhs.Pos(), declDepth: a.depth}
				}
				continue
			}
			// Storing a tracked value into a field/index/map hands it off.
			if srcCell != nil {
				srcCell.state = sConsumed
			}
			a.expr(env, lhs)
			// Writing payload fields after Send violates the transfer.
			if sel, ok := lhs.(*ast.SelectorExpr); ok && isPayloadField(sel.Sel.Name) {
				if _, c := a.lookup(env, sel.X); c != nil && definitely(c, sSent) {
					a.pass.Reportf(lhs.Pos(), "payload field %s written after the message was sent (ownership already transferred to the transport)", sel.Sel.Name)
				}
			}
		}
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Multi-value call: bind each Msg-typed LHS as an owned unknown.
		for _, lhs := range s.Lhs {
			if obj := a.defOrUse(lhs); obj != nil && typeIsMsg(obj.Type()) {
				if _, exists := env.vars[obj]; !exists {
					env.vars[obj] = &cell{state: sOwned, originPos: lhs.Pos(), declDepth: a.depth}
				}
			}
		}
	}
}

func (a *ownAnalysis) defOrUse(e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := a.pass.Info.Defs[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := a.pass.Info.Uses[id].(*types.Var); ok {
		return obj
	}
	return nil
}

func isErrorVar(v *types.Var) bool {
	named, ok := v.Type().(*types.Named)
	if !ok {
		return v.Type().String() == "error"
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isBoolVar(v *types.Var) bool {
	basic, ok := v.Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

func isPayloadField(name string) bool { return name == "Words" || name == "Raw" }

// isRecvCall recognizes producers of owned messages: Recv/TryRecv
// methods, the RecvTimeout helper, and the Decode/decodeBody codec entry
// points — anything whose first result is a cosim.Msg drawn from the
// payload pools.
func (a *ownAnalysis) isRecvCall(call *ast.CallExpr) bool {
	var name string
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	switch name {
	case "Recv", "TryRecv", "RecvTimeout", "recvTimeout", "Decode", "decodeBody":
	default:
		return false
	}
	tv, ok := a.pass.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && typeIsMsg(t.At(0).Type())
	default:
		return typeIsMsg(t)
	}
}

// expr scans an expression for ownership-relevant operations.
func (a *ownAnalysis) expr(env *ownEnv, e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		a.call(env, e)
	case *ast.SelectorExpr:
		// Payload reads after Release alias a later decode.
		if isPayloadField(e.Sel.Name) {
			if _, c := a.lookup(env, e.X); c != nil && definitely(c, sReleased) {
				a.pass.Reportf(e.Pos(), "payload field %s read after Release (the buffer may already be reused by a later decode)", e.Sel.Name)
				return
			}
		}
		a.expr(env, e.X)
	case *ast.FuncLit:
		// Captured tracked vars are handed to the closure.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, ok := a.pass.Info.Uses[id].(*types.Var); ok {
					if c := env.vars[obj]; c != nil {
						c.state = sConsumed
					}
				}
			}
			return true
		})
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, c := a.lookup(env, e.X); c != nil {
				c.state = sConsumed // address escapes
				return
			}
		}
		a.expr(env, e.X)
	case *ast.BinaryExpr:
		a.expr(env, e.X)
		a.expr(env, e.Y)
	case *ast.ParenExpr:
		a.expr(env, e.X)
	case *ast.IndexExpr:
		a.expr(env, e.X)
		a.expr(env, e.Index)
	case *ast.SliceExpr:
		a.expr(env, e.X)
		a.expr(env, e.Low)
		a.expr(env, e.High)
		a.expr(env, e.Max)
	case *ast.StarExpr:
		a.expr(env, e.X)
	case *ast.TypeAssertExpr:
		a.expr(env, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if _, c := a.lookup(env, el); c != nil {
				c.state = sConsumed // stored in a composite
				continue
			}
			a.expr(env, el)
		}
	case *ast.KeyValueExpr:
		a.expr(env, e.Value)
	}
}

// call classifies one call expression.
func (a *ownAnalysis) call(env *ownEnv, call *ast.CallExpr) {
	fun := unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if _, c := a.lookup(env, sel.X); c != nil {
			// Method call on a tracked message value.
			switch sel.Sel.Name {
			case "Release":
				a.release(c, call.Pos())
				return
			case "disown":
				c.state = sConsumed
				return
			case "Encode", "WireSize", "appendBody":
				if definitely(c, sReleased) {
					a.pass.Reportf(call.Pos(), "%s called on a released message (its payload may alias a later decode)", sel.Sel.Name)
				}
				for _, arg := range call.Args {
					a.expr(env, arg)
				}
				return
			}
		}
		// Transport-style Send: every Msg-typed argument changes owner.
		if sel.Sel.Name == "Send" {
			a.expr(env, sel.X)
			for _, arg := range call.Args {
				if _, c := a.lookup(env, arg); c != nil && typeIsMsg(a.argType(arg)) {
					if definitely(c, sReleased) {
						a.pass.Reportf(call.Pos(), "message sent after Release (a released payload may alias a later decode)")
					}
					if a.borrowsFn && c.paramOrigin {
						a.pass.Reportf(call.Pos(), "function is annotated //cosim:borrows but sends its message parameter (ownership is the caller's)")
					}
					c.state = sSent
					continue
				}
				a.expr(env, arg)
			}
			return
		}
	}
	// Ordinary call: tracked arguments are handed off to the callee.
	a.expr(env, fun)
	for _, arg := range call.Args {
		if _, c := a.lookup(env, arg); c != nil && typeIsMsg(a.argType(arg)) {
			c.state = sConsumed
			continue
		}
		a.expr(env, arg)
	}
}

func (a *ownAnalysis) argType(arg ast.Expr) types.Type {
	if tv, ok := a.pass.Info.Types[arg]; ok {
		return tv.Type
	}
	return nil
}

// definitely reports whether the cell is in state s on EVERY merged
// path: the bit is set and no path still owns the value. A merged
// released|owned cell means "released on one branch only", which is
// normal branching code, not a double release.
func definitely(c *cell, s mstate) bool {
	return c.state&s != 0 && c.state&sOwned == 0
}

func (a *ownAnalysis) release(c *cell, pos token.Pos) {
	if definitely(c, sReleased) || c.deferRel {
		a.pass.Reportf(pos, "double Release of the same message on one path (the pooled buffer would be recycled twice)")
	}
	if definitely(c, sSent) {
		a.pass.Reportf(pos, "Release after Send: ownership was already transferred to the transport stack")
	}
	if a.borrowsFn && c.paramOrigin {
		a.pass.Reportf(pos, "function is annotated //cosim:borrows but releases its message parameter (ownership is the caller's)")
	}
	c.state = sReleased
}

func (a *ownAnalysis) deferStmt(env *ownEnv, s *ast.DeferStmt) {
	if sel, ok := unparen(s.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
		if _, c := a.lookup(env, sel.X); c != nil {
			if c.deferRel {
				a.pass.Reportf(s.Pos(), "double Release of the same message on one path (the pooled buffer would be recycled twice)")
			}
			c.deferRel = true
			return
		}
	}
	a.expr(env, s.Call)
}

// ifStmt analyzes both branches on cloned environments and merges the
// survivors; `if err != nil` guards mark the guarded message void on the
// failing side (a failed receive returns the zero Msg).
func (a *ownAnalysis) ifStmt(env *ownEnv, s *ast.IfStmt) term {
	if s.Init != nil {
		a.stmt(env, s.Init)
	}
	a.expr(env, s.Cond)

	thenEnv := env.clone()
	elseEnv := env.clone()
	if errObj, eq := errNilCond(a.pass.Info, s.Cond); errObj != nil {
		if msgObj, ok := a.errGuard[errObj]; ok {
			if eq { // err == nil: failing side is the else branch
				markVoid(elseEnv, msgObj)
			} else { // err != nil: failing side is the then branch
				markVoid(thenEnv, msgObj)
			}
		}
	}
	if okObj, positive := okCond(a.pass.Info, s.Cond); okObj != nil {
		if msgObj, ok := a.okGuard[okObj]; ok {
			if positive { // if ok: the message is void on the else side
				markVoid(elseEnv, msgObj)
			} else { // if !ok: the message is void on the then side
				markVoid(thenEnv, msgObj)
			}
		}
	}

	tThen := a.stmts(thenEnv, s.Body.List)
	tElse := tFallthrough
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		tElse = a.stmts(elseEnv, e.List)
	case *ast.IfStmt:
		tElse = a.ifStmt(elseEnv, e)
	case nil:
	}

	switch {
	case tThen == tFallthrough && tElse == tFallthrough:
		*env = *thenEnv
		env.merge(elseEnv)
	case tThen == tFallthrough:
		*env = *thenEnv
	case tElse == tFallthrough:
		*env = *elseEnv
	default:
		return tTerminated
	}
	return tFallthrough
}

// markVoid clears ownership of msgObj's cell: the guarded path saw a
// failed receive, which returns the zero Msg.
func markVoid(env *ownEnv, msgObj *types.Var) {
	if c := env.vars[msgObj]; c != nil {
		cc := *c
		cc.state = sVoid
		env.vars[msgObj] = &cc
	}
}

// errNilCond recognizes `err == nil` / `err != nil`, returning the error
// variable and whether the operator was ==.
func errNilCond(info *types.Info, cond ast.Expr) (*types.Var, bool) {
	be, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := unparen(be.X), unparen(be.Y)
	if isNilIdent(y) {
	} else if isNilIdent(x) {
		x = y
	} else {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || !isErrorVar(obj) {
		return nil, false
	}
	return obj, be.Op == token.EQL
}

// okCond recognizes `ok` / `!ok` conditions on a comma-ok receive,
// returning the bool variable and whether the test is positive.
func okCond(info *types.Info, cond ast.Expr) (*types.Var, bool) {
	positive := true
	e := unparen(cond)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		positive = false
		e = unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || !isBoolVar(obj) {
		return nil, false
	}
	return obj, positive
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func (a *ownAnalysis) switchStmt(env *ownEnv, s *ast.SwitchStmt) term {
	if s.Init != nil {
		a.stmt(env, s.Init)
	}
	a.expr(env, s.Tag)
	return a.mergeClauses(env, s.Body.List, true)
}

func (a *ownAnalysis) typeSwitchStmt(env *ownEnv, s *ast.TypeSwitchStmt) term {
	if s.Init != nil {
		a.stmt(env, s.Init)
	}
	a.stmt(env, s.Assign)
	return a.mergeClauses(env, s.Body.List, true)
}

func (a *ownAnalysis) selectStmt(env *ownEnv, s *ast.SelectStmt) term {
	return a.mergeClauses(env, s.Body.List, false)
}

// mergeClauses analyzes each case/comm clause on a cloned environment
// and merges the non-terminated ones. When withoutDefaultFallsThrough
// is true (expression switches) a missing default keeps the entry
// environment alive as one more path.
func (a *ownAnalysis) mergeClauses(env *ownEnv, clauses []ast.Stmt, withoutDefaultFallsThrough bool) term {
	var survivors []*ownEnv
	hasDefault := false
	for _, cl := range clauses {
		ce := env.clone()
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, x := range cl.List {
				a.expr(ce, x)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				a.stmt(ce, cl.Comm)
			}
			body = cl.Body
		}
		if t := a.stmts(ce, body); t == tFallthrough {
			survivors = append(survivors, ce)
		}
	}
	if withoutDefaultFallsThrough && !hasDefault {
		survivors = append(survivors, env.clone())
	}
	if len(survivors) == 0 {
		if len(clauses) == 0 {
			return tFallthrough
		}
		return tTerminated
	}
	*env = *survivors[0]
	for _, s := range survivors[1:] {
		env.merge(s)
	}
	return tFallthrough
}

// forStmt analyzes the loop body twice: once from the entry state and
// once from the merged entry∪exit state, so releases that survive a
// back edge surface as cross-iteration double releases.
func (a *ownAnalysis) forStmt(env *ownEnv, s *ast.ForStmt) {
	if s.Init != nil {
		a.stmt(env, s.Init)
	}
	a.expr(env, s.Cond)
	first := env.clone()
	if t := a.stmts(first, s.Body.List); t == tFallthrough {
		if s.Post != nil {
			a.stmt(first, s.Post)
		}
		env.merge(first)
		second := env.clone()
		a.stmts(second, s.Body.List)
		env.merge(second)
	}
}

func (a *ownAnalysis) rangeStmt(env *ownEnv, s *ast.RangeStmt) {
	a.expr(env, s.X)
	// Each iteration binds fresh loop variables, so rebind before every
	// body pass: a Release in pass one must not read as a double release
	// of the "same" value in pass two.
	bindLoopVars := func(e *ownEnv) {
		if s.Tok != token.DEFINE && s.Tok != token.ASSIGN {
			return
		}
		for _, x := range []ast.Expr{s.Key, s.Value} {
			if x == nil {
				continue
			}
			if obj := a.defOrUse(x); obj != nil && typeIsMsg(obj.Type()) {
				e.vars[obj] = &cell{state: sOwned, originPos: x.Pos(), declDepth: a.depth}
			}
		}
	}
	first := env.clone()
	bindLoopVars(first)
	if t := a.stmts(first, s.Body.List); t == tFallthrough {
		env.merge(first)
		second := env.clone()
		bindLoopVars(second)
		a.stmts(second, s.Body.List)
		env.merge(second)
	}
}
