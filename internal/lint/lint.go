// Package lint is the repository's static-analysis framework: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis that loads
// packages with `go list -export`, typechecks them from source against
// build-cache export data, and runs the cosim analyzer suite
// (msgownership, determinism, obshandle) over the ASTs.
//
// The framework is stdlib-only on purpose: the repository must build,
// test, and lint with no network access at all, so the usual
// multichecker dependency is replaced by this package plus the
// cmd/cosim-lint driver. The analyzer surface mirrors go/analysis
// closely enough that porting to the real framework later is mechanical.
//
// # Directives
//
// Analyzers honour machine-readable comment directives, each carrying a
// justification after " -- ":
//
//	//cosim:owns -- <why>       msgownership: the function (doc comment)
//	                            or the message received on this line is
//	                            an intentional retention / terminal
//	                            consumer; the leak check is waived.
//	//cosim:borrows -- <why>    msgownership: the function's Msg
//	                            parameters remain owned by the caller;
//	                            releasing or sending one is flagged.
//	//cosim:wallclock -- <why>  determinism: this line (or function) is
//	                            genuinely host-side code — heartbeat
//	                            timers, RTO clocks, metrics — and may
//	                            read the wall clock.
//	//cosim:ignore <analyzer> -- <why>  suppress one analyzer's
//	                            diagnostics on this line.
//
// A directive trailing a statement applies to that line; a directive
// alone on a line applies to the next line; a directive in a function's
// doc comment applies to the whole function. wallclock and ignore
// require a justification; a bare one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//cosim:ignore <name>` directives.
	Name string
	// Doc is a one-paragraph description (shown by cosim-lint -help).
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one typechecked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Src maps filenames to their raw bytes (for directive placement).
	Src map[string][]byte

	dirs   *directiveIndex
	report func(Diagnostic)
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos unless an `//cosim:ignore` directive
// for this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.ignored(pos) {
		return
	}
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) ignored(pos token.Pos) bool {
	for _, d := range p.DirectivesAt(pos) {
		if d.Kind == DirIgnore && d.Analyzer == p.Analyzer.Name {
			return true
		}
	}
	if fd := p.enclosingFuncDirectives(pos); fd != nil {
		for _, d := range fd {
			if d.Kind == DirIgnore && d.Analyzer == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// DirectiveKind enumerates the recognized //cosim: directives.
type DirectiveKind string

const (
	DirOwns      DirectiveKind = "owns"
	DirBorrows   DirectiveKind = "borrows"
	DirWallclock DirectiveKind = "wallclock"
	DirIgnore    DirectiveKind = "ignore"
)

// Directive is one parsed //cosim: comment.
type Directive struct {
	Kind     DirectiveKind
	Analyzer string // for DirIgnore: the analyzer it silences
	Reason   string // text after " -- "
	Pos      token.Pos
	Line     int
	// standalone is true when the comment is alone on its line, in which
	// case it governs the following line instead of its own.
	standalone bool
}

// directiveIndex holds the parsed directives of one package.
type directiveIndex struct {
	// byFileLine maps filename -> governed line -> directives.
	byFileLine map[string]map[int][]Directive
	// funcs maps each annotated function's body range to its directives.
	funcs []funcDirectives
	// malformed directives (unknown kind, missing justification).
	bad []Diagnostic
}

type funcDirectives struct {
	start, end token.Pos
	dirs       []Directive
}

// DirectivesAt returns the directives governing pos's line.
func (p *Pass) DirectivesAt(pos token.Pos) []Directive {
	position := p.Fset.Position(pos)
	lines := p.dirs.byFileLine[position.Filename]
	if lines == nil {
		return nil
	}
	return lines[position.Line]
}

// enclosingFuncDirectives returns the directives from the doc comment of
// the function whose body contains pos, if any.
func (p *Pass) enclosingFuncDirectives(pos token.Pos) []Directive {
	for i := range p.dirs.funcs {
		f := &p.dirs.funcs[i]
		if f.start <= pos && pos <= f.end {
			return f.dirs
		}
	}
	return nil
}

// HasDirective reports whether pos's line, or its enclosing function's
// doc comment, carries a directive of the given kind.
func (p *Pass) HasDirective(pos token.Pos, kind DirectiveKind) bool {
	for _, d := range p.DirectivesAt(pos) {
		if d.Kind == kind {
			return true
		}
	}
	for _, d := range p.enclosingFuncDirectives(pos) {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// FuncHasDirective reports whether the function declaration's doc comment
// carries a directive of the given kind.
func (p *Pass) FuncHasDirective(fn *ast.FuncDecl, kind DirectiveKind) bool {
	if fn.Body == nil {
		return false
	}
	for _, d := range p.enclosingFuncDirectives(fn.Body.Pos()) {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// parseDirective parses one comment's text; ok is false for comments that
// are not //cosim: directives at all.
func parseDirective(text string) (kind DirectiveKind, analyzer, reason string, ok bool) {
	const prefix = "//cosim:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", "", false
	}
	body := strings.TrimPrefix(text, prefix)
	if i := strings.Index(body, " -- "); i >= 0 {
		reason = strings.TrimSpace(body[i+4:])
		body = strings.TrimSpace(body[:i])
	} else {
		body = strings.TrimSpace(body)
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", "", reason, true
	}
	kind = DirectiveKind(fields[0])
	if kind == DirIgnore && len(fields) > 1 {
		analyzer = fields[1]
	}
	return kind, analyzer, reason, true
}

// buildDirectiveIndex scans every comment of the package's files.
func buildDirectiveIndex(fset *token.FileSet, files []*ast.File, src map[string][]byte) *directiveIndex {
	idx := &directiveIndex{byFileLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		filename := fset.Position(f.Pos()).Filename
		content := src[filename]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, analyzer, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := Directive{
					Kind: kind, Analyzer: analyzer, Reason: reason,
					Pos: c.Pos(), Line: pos.Line,
					standalone: commentIsAlone(content, pos),
				}
				switch kind {
				case DirOwns, DirBorrows, DirWallclock, DirIgnore:
					if reason == "" && (kind == DirWallclock || kind == DirIgnore) {
						idx.bad = append(idx.bad, Diagnostic{
							Analyzer: "directive", File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("//cosim:%s requires a justification: //cosim:%s -- <why>", kind, kind),
						})
					}
					if kind == DirIgnore && analyzer == "" {
						idx.bad = append(idx.bad, Diagnostic{
							Analyzer: "directive", File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: "//cosim:ignore requires an analyzer name: //cosim:ignore <analyzer> -- <why>",
						})
					}
				default:
					idx.bad = append(idx.bad, Diagnostic{
						Analyzer: "directive", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("unknown directive //cosim:%s (known: owns, borrows, wallclock, ignore)", kind),
					})
					continue
				}
				governed := d.Line
				if d.standalone {
					governed = d.Line + 1
				}
				lines := idx.byFileLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					idx.byFileLine[pos.Filename] = lines
				}
				lines[governed] = append(lines[governed], d)
			}
		}
		// Function-doc directives govern the whole function body.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			var dirs []Directive
			for _, c := range fn.Doc.List {
				kind, analyzer, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				switch kind {
				case DirOwns, DirBorrows, DirWallclock, DirIgnore:
					dirs = append(dirs, Directive{Kind: kind, Analyzer: analyzer, Reason: reason, Pos: c.Pos()})
				}
			}
			if len(dirs) > 0 {
				idx.funcs = append(idx.funcs, funcDirectives{start: fn.Body.Pos(), end: fn.Body.End(), dirs: dirs})
			}
		}
	}
	return idx
}

// commentIsAlone reports whether the comment at pos is the first
// non-whitespace content of its source line.
func commentIsAlone(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	// pos.Offset is the comment start; walk back to the line start.
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}

// RunAnalyzers executes the analyzers over every target package of l and
// returns the findings sorted by position. Malformed directives are
// reported once per package under the pseudo-analyzer "directive".
func RunAnalyzers(l *Loaded, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range l.Pkgs {
		idx := buildDirectiveIndex(l.Fset, pkg.Files, pkg.Src)
		out = append(out, idx.bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Src:      pkg.Src,
				dirs:     idx,
				report:   func(d Diagnostic) { out = append(out, d) },
			}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s: %s: %w", pkg.List.ImportPath, a.Name, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// typeIsMsg reports whether t is (a pointer to) the cosim message struct:
// a named type `Msg` declared in a package named "cosim". Matching by
// package *name* rather than import path keeps the analyzers testable
// against golden packages that declare their own miniature cosim.
func typeIsMsg(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Msg" && obj.Pkg() != nil && obj.Pkg().Name() == "cosim"
}

// lookupTransportInterface finds the cosim Transport interface visible
// from pkg: in pkg itself when pkg is named "cosim", else in a directly
// imported package named "cosim". It returns the *named* type so that
// synthesized method signatures (Unwrap() Transport) compare identical
// to real declarations.
func lookupTransportInterface(pkg *types.Package) *types.Named {
	probe := func(p *types.Package) *types.Named {
		if p.Name() != "cosim" {
			return nil
		}
		obj, ok := p.Scope().Lookup("Transport").(*types.TypeName)
		if !ok {
			return nil
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return nil
		}
		if _, isIface := named.Underlying().(*types.Interface); !isIface {
			return nil
		}
		return named
	}
	if i := probe(pkg); i != nil {
		return i
	}
	for _, imp := range pkg.Imports() {
		if i := probe(imp); i != nil {
			return i
		}
	}
	return nil
}
