package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the golden corpus's expectation comments:
//
//	expr // want "substring or regexp" "another"
//
// Each quoted pattern must match one diagnostic reported on that line.
var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)$`)

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// loadExpectations scans every .go file under dir for want comments.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[1], -1) {
				pat := q[1 : len(q)-1]
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, pat, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, re: re, raw: pat})
			}
		}
	}
	return wants
}

// runGolden analyzes one testdata package and diffs the diagnostics
// against its want comments, in both directions.
func runGolden(t *testing.T, pkg string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	loaded, err := Load(".", []string{"./" + filepath.ToSlash(dir)})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := RunAnalyzers(loaded, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := loadExpectations(t, dir)

	var unexpected []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.File) && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, d.String())
		}
	}
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic: %s", u)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func TestMsgOwnershipGolden(t *testing.T) {
	runGolden(t, "ownership", []*Analyzer{MsgOwnership})
}

func TestDeterminismGolden(t *testing.T) {
	det := NewDeterminism(DeterminismConfig{
		Strict: []string{"detstrict"},
		Hybrid: []string{"dethybrid"},
	})
	runGolden(t, "detstrict", []*Analyzer{det})
	runGolden(t, "dethybrid", []*Analyzer{det})
}

func TestObsHandleGolden(t *testing.T) {
	runGolden(t, "obshot", []*Analyzer{ObsHandle})
}

// TestCleanPackageIsSilent is the suite's negative control: a correct
// package must produce zero findings under every analyzer at once.
func TestCleanPackageIsSilent(t *testing.T) {
	det := NewDeterminism(DeterminismConfig{Strict: []string{"clean"}})
	loaded, err := Load(".", []string{"./testdata/src/clean"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(loaded, []*Analyzer{MsgOwnership, det, ObsHandle})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("clean package produced: %s", d)
	}
}

// TestMalformedDirectivesReported: a wallclock directive without a
// reason, and an ignore without an analyzer, are findings themselves.
func TestMalformedDirectivesReported(t *testing.T) {
	loaded, err := Load(".", []string{"./testdata/src/baddirective"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(loaded, []*Analyzer{MsgOwnership})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("want 2 malformed-directive findings, got %d", len(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "directive" {
			t.Errorf("finding attributed to %q, want \"directive\": %s", d.Analyzer, d)
		}
	}
}

// TestDiagnosticString pins the file:line:col rendering make lint's
// output depends on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "determinism", File: "x.go", Line: 3, Col: 7, Message: "boom"}
	if got, want := d.String(), "x.go:3:7: boom [determinism]"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
