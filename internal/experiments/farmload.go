package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/farm"
)

// FarmLoadResult aggregates one multi-session farm load.
type FarmLoadResult struct {
	Sessions        int
	Workers         int
	Failed          int
	Wall            time.Duration
	SessionsPerSec  float64
	MeanSessionWall time.Duration
	Retransmits     uint64
	// SyncEvents is the total quantum boundaries simulated across all
	// sessions (elided boundaries included — they advance virtual time),
	// the denominator for per-quantum rates such as allocs_per_quantum.
	SyncEvents uint64
}

// FarmSessionSpec builds the load generator's per-session workload as a
// serializable spec: every session dials the shared mux listener over
// TCP, and sessions flagged chaotic run under seeded link faults healed
// by the resilience layer. The sweep-wide obs registry rides on the
// farm itself (farm sessions inherit the farm's registry), not on the
// spec.
func FarmSessionSpec(opt Options, idx int, chaos bool) farm.SessionSpec {
	spec := farm.SessionSpec{
		Transport: "tcp",
		TB:        &farm.TBSpec{PacketsPerPort: 10, Seed: int64(idx + 1)},
	}
	if opt.Quick {
		spec.TB.PacketsPerPort = 5
	}
	if chaos {
		spec.Chaos = &farm.ChaosSpec{Seed: int64(1000 + idx), Drop: 0.01, Duplicate: 0.01, Corrupt: 0.01}
		spec.Resilience = &farm.ResilienceSpec{RetransmitTimeoutMS: 10}
	}
	return spec
}

// RunFarmLoad drives `sessions` concurrent co-simulations — chaos plus
// resilience on every second one — through one farm of `workers` workers
// and reports the aggregate throughput.
func RunFarmLoad(opt Options, sessions, workers int) (FarmLoadResult, error) {
	f, err := farm.New(farm.WithWorkers(workers), farm.WithQueueDepth(sessions), farm.WithObs(opt.Obs))
	if err != nil {
		return FarmLoadResult{}, err
	}
	defer f.Close()

	start := time.Now()
	handles := make([]*farm.Session, 0, sessions)
	for i := 0; i < sessions; i++ {
		s, err := f.Submit(context.Background(), FarmSessionSpec(opt, i, i%2 == 1))
		if err != nil {
			return FarmLoadResult{}, fmt.Errorf("farm load: submit %d: %w", i, err)
		}
		handles = append(handles, s)
	}
	out := FarmLoadResult{Sessions: sessions, Workers: workers}
	var totalSessionWall time.Duration
	for i, s := range handles {
		res, err := s.Result()
		if err == nil && res.Conservation != nil {
			err = res.Conservation
		}
		if err != nil {
			out.Failed++
			opt.log("farm: session %d failed: %v", i, err)
			continue
		}
		totalSessionWall += res.Wall
		out.Retransmits += res.Link.Link.Retransmits
		out.SyncEvents += res.HW.SyncEvents + res.HW.SyncsElided
		opt.log("farm: session %d: %v", i, res)
	}
	out.Wall = time.Since(start)
	if n := sessions - out.Failed; n > 0 {
		out.MeanSessionWall = totalSessionWall / time.Duration(n)
		out.SessionsPerSec = float64(n) / out.Wall.Seconds()
	}
	if out.Failed > 0 {
		return out, fmt.Errorf("farm load: %d of %d sessions failed", out.Failed, sessions)
	}
	return out, nil
}

// FarmLoad is the load generator behind cosim-experiments' -farm mode:
// a fixed count of concurrent sessions pushed through worker pools of
// doubling size up to maxWorkers, tabulating the throughput scaling.
func FarmLoad(opt Options, sessions, maxWorkers int) (*Table, error) {
	if sessions < 1 || maxWorkers < 1 {
		return nil, fmt.Errorf("farm load: need ≥1 session and ≥1 worker (got %d, %d)", sessions, maxWorkers)
	}
	var pool []int
	for w := 1; w < maxWorkers; w *= 2 {
		pool = append(pool, w)
	}
	pool = append(pool, maxWorkers)
	t := &Table{
		Title:  fmt.Sprintf("Farm load: %d concurrent TCP sessions, throughput vs worker-pool size", sessions),
		Header: []string{"workers", "wall_s", "sessions_per_sec", "mean_session_s", "retransmits"},
	}
	for _, w := range pool {
		r, err := RunFarmLoad(opt, sessions, w)
		if err != nil {
			return nil, fmt.Errorf("farm load: workers=%d: %w", w, err)
		}
		t.Append(w,
			fmt.Sprintf("%.3f", r.Wall.Seconds()),
			fmt.Sprintf("%.1f", r.SessionsPerSec),
			fmt.Sprintf("%.3f", r.MeanSessionWall.Seconds()),
			r.Retransmits)
	}
	t.Note("every session dials the shared mux listener over TCP; every second session runs under seeded link chaos healed by the session layer")
	t.Note("results stay bit-identical to solo runs regardless of worker count — only wall clock scales")
	return t, nil
}
