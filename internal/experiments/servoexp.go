package experiments

import (
	"fmt"

	"repro/internal/servo"
)

// ExpServoQuality (E2) is the second-scenario experiment: the closed-loop
// servo's control quality versus T_sync. It demonstrates the paper's
// actual use case ("early architectural and design decisions can be taken
// by measuring the expected performance on the models") on the
// factory-automation workload the framework was built for: the designer
// reads off the largest synchronization interval — hence the fastest
// co-simulation — at which the control loop still meets its spec.
func ExpServoQuality(opt Options) (*Table, error) {
	tsyncs := []uint64{100, 250, 500, 1000, 2000, 4000, 6000}
	if opt.Quick {
		tsyncs = []uint64{250, 1000, 2000, 6000}
	}
	t := &Table{
		Title:  "Experiment E2: closed-loop servo quality vs Tsync",
		Header: []string{"Tsync", "IAE", "overshoot%", "settled", "updates", "wall[ms]"},
	}
	for _, ts := range tsyncs {
		rc := servo.DefaultRunConfig()
		rc.TSync = ts
		q, err := servo.Run(rc)
		if err != nil {
			return nil, fmt.Errorf("servo at Tsync=%d: %w", ts, err)
		}
		opt.log("E2: Tsync=%d %v", ts, q)
		t.Append(ts,
			fmt.Sprintf("%.0f", q.IAE),
			fmt.Sprintf("%.1f", 100*q.Overshoot),
			q.Settled,
			q.Updates,
			fmt.Sprintf("%.1f", float64(q.Wall.Microseconds())/1000))
	}
	t.Note("sensor sample period 500 cycles; control delay ≈ one quantum")
	t.Note("quality is flat while Tsync < sample period, degrades as the delay grows,")
	t.Note("and the loop destabilizes past the design's delay margin — the designer")
	t.Note("picks the largest Tsync that still meets spec (paper §6 closing remark)")
	return t, nil
}
