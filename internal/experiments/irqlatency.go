package experiments

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// AblationIRQLatency (A6) characterizes the framework's core timing
// artifact directly: the latency from a hardware interrupt pulse to the
// board's deferred service routine, in clock cycles, as a function of
// T_sync. Cross-traffic moves at quantum boundaries, so the latency is
// quantized: at most ~2·T_sync, about 1.5·T_sync on average — the number
// that drives every accuracy effect in Figure 7.
func AblationIRQLatency(opt Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A6: interrupt service latency vs Tsync (cycles, 20 IRQs each)",
		Header: []string{"Tsync", "min", "mean", "max", "max/Tsync"},
	}
	for _, ts := range []uint64{100, 500, 1000, 5000} {
		lat, err := measureIRQLatency(ts, 20)
		if err != nil {
			return nil, err
		}
		var minL, maxL, sum uint64
		for i, l := range lat {
			if i == 0 || l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
			sum += l
		}
		mean := float64(sum) / float64(len(lat))
		opt.log("A6: Tsync=%d mean=%.0f max=%d", ts, mean, maxL)
		t.Append(ts, minL, fmt.Sprintf("%.0f", mean), maxL,
			fmt.Sprintf("%.2f", float64(maxL)/float64(ts)))
		if maxL > ts+ts/2 {
			return nil, fmt.Errorf("experiments: IRQ latency %d exceeds the Tsync bound at Tsync=%d", maxL, ts)
		}
	}
	t.Note("alternating mode: a pulse at cycle c of quantum k is serviced while the")
	t.Note("simulator waits at boundary k·Tsync, and the response is visible one cycle")
	t.Note("later — latency ∈ (0, Tsync], the mechanism behind Figure 7's knee at B·P")
	return t, nil
}

// measureIRQLatency raises count interrupts at cycles spaced far enough
// apart to avoid coalescing, and measures the full service loop as the
// hardware sees it: raise → board DSR → service thread → echo write back
// to the simulator, in HDL clock cycles. (The DSR alone is not a
// meaningful timestamp: the board's local clock lags the simulator by up
// to one quantum when the grant is delivered.)
func measureIRQLatency(tsync uint64, count int) ([]uint64, error) {
	const (
		irqLine     = 2
		stampReg    = 0x00 // HW posts the raise cycle here before the IRQ
		echoReg     = 0x10 // board echoes the stamp here when serviced
		cyclesPerTk = 100
	)
	s := hdlsim.NewSimulator("irq-lat")
	clk := s.NewClock("clk", sim.NS(10))
	dout := s.NewDriverOut("stamp", stampReg, 1)
	din := s.NewDriverIn("echo", echoReg, 1)

	var latencies []uint64
	s.DriverProcess("latency-meter", func() {
		for {
			w, ok := din.Pop()
			if !ok {
				return
			}
			latencies = append(latencies, clk.Cycles()-uint64(w.Val))
		}
	}, din)

	spacing := 3*tsync + 17 // > 2·Tsync: no coalescing; odd offset de-phases
	s.Thread("pulser", func(c *hdlsim.Ctx) {
		for i := 0; i < count; i++ {
			c.WaitCycles(clk, spacing)
			cyc := clk.Cycles()
			dout.Set(stampReg, uint32(cyc))
			dout.Post(stampReg, []uint32{uint32(cyc)})
			s.RaiseDriverInterrupt(irqLine)
		}
	})

	bcfg := board.DefaultConfig()
	bcfg.RTOS = rtos.Config{CyclesPerTick: cyclesPerTk, HWTicksPerSWTick: 1}
	bcfg.CyclesPerGrantTick = cyclesPerTk
	brd := board.New(bcfg)
	dev, err := brd.NewRemoteDev("/dev/stamp", stampReg, echoReg+1, nil)
	if err != nil {
		return nil, err
	}
	sem := brd.K.NewSemaphore("irq", 0)
	brd.K.AttachInterrupt(irqLine, nil, func() { sem.Post() })
	brd.K.CreateThread("service", 5, func(c *rtos.ThreadCtx) {
		for {
			sem.Wait(c)
			stamp := dev.PeekShadow(stampReg)
			if _, err := dev.Write(c, echoReg, []uint32{stamp}); err != nil {
				panic(err)
			}
		}
	})

	hwT, boardT := cosim.NewInProcPair(256)
	hw := cosim.NewHWEndpoint(hwT, cosim.SyncAlternating)
	bep := cosim.NewBoardEndpoint(boardT)
	dev.Attach(bep)
	done := make(chan error, 1)
	go func() { done <- brd.Run(bep) }()
	_, err = s.DriverSimulate(clk, hw, hdlsim.DriverConfig{
		TSync:       tsync,
		TotalCycles: spacing*uint64(count) + 6*tsync + 1000,
		StopEarly:   func() bool { return len(latencies) >= count },
	})
	hwT.Close()
	<-done
	if err != nil {
		return nil, err
	}
	if len(latencies) < count {
		return nil, fmt.Errorf("experiments: only %d of %d interrupts serviced", len(latencies), count)
	}
	return latencies[:count], nil
}
