package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cosim"
	"repro/internal/obs"
	"repro/internal/router"
)

// Options tunes the experiment sweeps.
type Options struct {
	// Quick shrinks sweeps for CI-time runs.
	Quick bool
	// LinkDelay emulates the paper's host↔board Ethernet latency for the
	// wall-clock figures (F5 always uses a delay; F6 uses this value,
	// default 0 = plain loopback TCP).
	LinkDelay time.Duration
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Obs, when non-nil, receives live metrics from every co-simulation
	// run of the sweep (see router.RunConfig.Obs); cosim-experiments
	// wires it to the -debug-addr server.
	Obs *obs.Registry
}

func (o Options) log(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// runConfig is DefaultRunConfig with the sweep-wide observability
// registry attached.
func (o Options) runConfig() router.RunConfig {
	rc := router.DefaultRunConfig()
	rc.Obs = o.Obs
	return rc
}

// run executes one configured co-simulation through the router.Run entry
// point; the sweeps never need cancellation, so the background context is
// fine.
func run(rc router.RunConfig) (router.RunResult, error) {
	return router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
}

// fig5Delay is the emulated link latency for Figure 5. The overhead
// figures only make sense when per-sync cost dominates per-cycle cost, as
// on the paper's physical network.
const fig5Delay = 2 * time.Millisecond

// Fig5TSyncs are the synchronization intervals of Figure 5's curves.
var Fig5TSyncs = []uint64{1000, 2000, 5000, 10000}

// Fig5 reproduces "Co-Simulation Overhead": total co-simulation wall time
// as a function of the number of exchanged packets N, one curve per
// T_sync. Expected shape: linear in N for every T_sync; slope decreasing
// with T_sync; time ratio between T_sync=1000 and T_sync=10000 roughly
// constant in N.
func Fig5(opt Options) (*Table, error) {
	ns := []int{20, 40, 60, 80, 100}
	period := uint64(50000)
	delay := fig5Delay
	if opt.Quick {
		ns = []int{20, 40, 60}
		period = 20000
		delay = 500 * time.Microsecond
	}
	t := &Table{
		Title:  "Figure 5: co-simulation wall time [s] vs exchanged packets N",
		Header: append([]string{"N"}, tsyncHeaders(Fig5TSyncs)...),
	}
	var ratioSum float64
	for _, n := range ns {
		cells := []any{n}
		var first, last time.Duration
		for i, ts := range Fig5TSyncs {
			rc := opt.runConfig()
			rc.TB.PacketsPerPort = n / rc.TB.Ports
			rc.TB.Period = period
			rc.TSync = ts
			rc.Transport = router.TransportTCP
			rc.LinkDelay = delay
			res, err := run(rc)
			if err != nil {
				return nil, fmt.Errorf("fig5 N=%d Tsync=%d: %w", n, ts, err)
			}
			opt.log("fig5: %v", res)
			cells = append(cells, fmt.Sprintf("%.3f", res.Wall.Seconds()))
			if i == 0 {
				first = res.Wall
			}
			last = res.Wall
		}
		ratio := first.Seconds() / last.Seconds()
		ratioSum += ratio
		cells = append(cells, fmt.Sprintf("%.2f", ratio))
		t.Append(cells...)
	}
	t.Header = append(t.Header, "ratio(1000/10000)")
	t.Note("emulated link latency %v per message; packet period %d cycles", delay, period)
	t.Note("paper: linear in N; ratio time(Tsync=1000)/time(Tsync=10000) ≈ 8, constant in N; measured mean ratio %.2f", ratioSum/float64(len(ns)))
	return t, nil
}

// Fig5Adaptive extends Figure 5 with the adaptive-synchronization sweep:
// the same latency-dominated workload, once with plain quantum stepping
// and once with lookahead-negotiated elongation plus wire-frame batching.
// The simulated-time results must match bit for bit (the sweep fails
// otherwise); only the rendezvous count — and with it the wall time —
// drops.
func Fig5Adaptive(opt Options) (*Table, error) {
	ns := []int{20, 40, 60, 80, 100}
	period := uint64(50000)
	delay := fig5Delay
	const tsync = 1000
	if opt.Quick {
		ns = []int{20, 40, 60}
		period = 20000
		delay = 500 * time.Microsecond
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 5 (adaptive): plain vs adaptive+batch quantum, Tsync=%d", tsync),
		Header: []string{"N", "wall_plain[s]", "wall_adpt[s]", "syncs_plain", "syncs_adpt", "elided", "speedup"},
	}
	mk := func(n int, adaptive bool) router.RunConfig {
		rc := opt.runConfig()
		rc.TB.PacketsPerPort = n / rc.TB.Ports
		rc.TB.Period = period
		rc.TSync = tsync
		rc.Transport = router.TransportTCP
		rc.LinkDelay = delay
		rc.Adaptive = adaptive
		rc.Batch = adaptive
		return rc
	}
	for _, n := range ns {
		plain, err := run(mk(n, false))
		if err != nil {
			return nil, fmt.Errorf("fig5a N=%d plain: %w", n, err)
		}
		adpt, err := run(mk(n, true))
		if err != nil {
			return nil, fmt.Errorf("fig5a N=%d adaptive: %w", n, err)
		}
		opt.log("fig5a: plain %v", plain)
		opt.log("fig5a: adaptive %v (elided %d)", adpt, adpt.HW.SyncsElided)
		if plain.BoardCycles != adpt.BoardCycles || plain.BoardSWTicks != adpt.BoardSWTicks ||
			plain.SimCycles != adpt.SimCycles || plain.Router != adpt.Router {
			return nil, fmt.Errorf("fig5a N=%d: adaptive run diverged from plain: board %d/%d vs %d/%d, hw %d vs %d",
				n, plain.BoardCycles, plain.BoardSWTicks, adpt.BoardCycles, adpt.BoardSWTicks,
				plain.SimCycles, adpt.SimCycles)
		}
		t.Append(n,
			fmt.Sprintf("%.3f", plain.Wall.Seconds()),
			fmt.Sprintf("%.3f", adpt.Wall.Seconds()),
			plain.HW.SyncEvents, adpt.HW.SyncEvents, adpt.HW.SyncsElided,
			fmt.Sprintf("%.2f", plain.Wall.Seconds()/adpt.Wall.Seconds()))
	}
	t.Note("emulated link latency %v per message; packet period %d cycles", delay, period)
	t.Note("every row's simulated-time result is verified bit-identical between the two runs:")
	t.Note("elongation only skips rendezvous the lookahead negotiation proves unobservable")
	return t, nil
}

func tsyncHeaders(ts []uint64) []string {
	h := make([]string, len(ts))
	for i, v := range ts {
		h[i] = fmt.Sprintf("Tsync=%d", v)
	}
	return h
}

// Fig6TSyncs is the sweep of Figure 6 (log-spaced, as in the paper's
// log-log plot; the paper calls out T_sync = 1 and T_sync = 360).
var Fig6TSyncs = []uint64{1, 2, 5, 10, 36, 100, 360, 1000, 3600, 10000}

// Fig6 reproduces "Co-Simulation Overhead vs T_sync": the ratio between
// timed co-simulation wall time and the wall time of the same workload
// with no synchronization (the loopback run, T_sync=∞). Expected shape:
// monotone decay, near-identical curves for N=100 and N=1000.
func Fig6(opt Options) (*Table, error) {
	ns := []int{100, 1000}
	tsyncs := Fig6TSyncs
	if opt.Quick {
		ns = []int{100}
		tsyncs = []uint64{1, 10, 100, 1000, 10000}
	}
	t := &Table{
		Title:  "Figure 6: co-simulation overhead ratio vs Tsync (baseline: unsynchronized simulation)",
		Header: append([]string{"Tsync"}, nHeaders(ns)...),
	}
	base := make(map[int]time.Duration)
	for _, n := range ns {
		tbc := router.DefaultTBConfig()
		tbc.PacketsPerPort = n / tbc.Ports
		// Run the baseline three times and keep the minimum: it is the
		// denominator of every ratio, so noise here skews the whole table.
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			res, err := router.RunLoopback(tbc)
			if err != nil {
				return nil, fmt.Errorf("fig6 baseline N=%d: %w", n, err)
			}
			if best == 0 || res.Wall < best {
				best = res.Wall
			}
		}
		base[n] = best
		opt.log("fig6: baseline N=%d: %v", n, best)
	}
	for _, ts := range tsyncs {
		cells := []any{ts}
		for _, n := range ns {
			rc := opt.runConfig()
			rc.TB.PacketsPerPort = n / rc.TB.Ports
			rc.TSync = ts
			rc.Transport = router.TransportTCP
			rc.LinkDelay = opt.LinkDelay
			res, err := run(rc)
			if err != nil {
				return nil, fmt.Errorf("fig6 N=%d Tsync=%d: %w", n, ts, err)
			}
			opt.log("fig6: %v", res)
			cells = append(cells, fmt.Sprintf("%.1f", res.Wall.Seconds()/base[n].Seconds()))
		}
		t.Append(cells...)
	}
	t.Note("TCP loopback, extra link delay %v per message", opt.LinkDelay)
	t.Note("paper (100Mb host↔board Ethernet): ~1000x at Tsync=1 decaying to ~100x at Tsync=360;")
	t.Note("the decay shape reproduces; absolute ratios scale with link-RTT/simulator-speed (see EXPERIMENTS.md)")
	return t, nil
}

func nHeaders(ns []int) []string {
	h := make([]string, len(ns))
	for i, n := range ns {
		h[i] = fmt.Sprintf("N=%d", n)
	}
	return h
}

// Fig7TSyncs is the accuracy sweep.
var Fig7TSyncs = []uint64{1000, 2000, 3000, 4000, 5000, 6000, 8000, 10000, 15000, 20000, 40000}

// Fig7 reproduces "Simulation Accuracy vs T_sync": the percentage of
// packets the system handles, for N=100 and N=1000. Expected shape: 100%
// plateau up to T_sync ≈ 5000, then progressive decline, with N=1000
// slightly below N=100 past the knee.
func Fig7(opt Options) (*Table, error) {
	ns := []int{100, 1000}
	tsyncs := Fig7TSyncs
	if opt.Quick {
		tsyncs = []uint64{1000, 4000, 6000, 10000, 20000}
	}
	t := &Table{
		Title:  "Figure 7: simulation accuracy [% packets handled] vs Tsync",
		Header: append([]string{"Tsync"}, nHeaders(ns)...),
	}
	for _, ts := range tsyncs {
		cells := []any{ts}
		for _, n := range ns {
			res, err := accuracyRun(opt, n, ts)
			if err != nil {
				return nil, fmt.Errorf("fig7 N=%d Tsync=%d: %w", n, ts, err)
			}
			opt.log("fig7: %v", res)
			if res.Conservation != nil {
				return nil, fmt.Errorf("fig7 N=%d Tsync=%d: %w", n, ts, res.Conservation)
			}
			cells = append(cells, fmt.Sprintf("%.1f", 100*res.Accuracy))
		}
		t.Append(cells...)
	}
	t.Note("deterministic in-process transport; FIFO capacity 4 packets/port, period 1250 cycles/port")
	t.Note("paper: 100%% up to Tsync≈5000, then decline; N=1000 marginally below N=100 past the knee")
	return t, nil
}

// accuracyRun executes one deterministic accuracy point.
func accuracyRun(opt Options, n int, tsync uint64) (router.RunResult, error) {
	rc := opt.runConfig()
	rc.TB.PacketsPerPort = n / rc.TB.Ports
	rc.TSync = tsync
	rc.Transport = router.TransportInProc
	return run(rc)
}

// Fig8 reproduces the paper's closing design-exploration remark: because
// overhead falls and inaccuracy rises with T_sync, the product
// accuracy × speedup has a maximum; a designer free to choose T_sync in a
// range should pick that point.
func Fig8(opt Options) (*Table, error) {
	tsyncs := []uint64{1000, 2000, 3000, 4000, 5000, 6000, 8000, 10000, 15000, 20000}
	if opt.Quick {
		tsyncs = []uint64{1000, 3000, 5000, 8000, 15000}
	}
	const n = 100
	t := &Table{
		Title:  "Figure 8 (derived): accuracy × speedup — optimal Tsync selection",
		Header: []string{"Tsync", "accuracy", "wall[s]", "speedup_vs_lockstep", "quality=acc*speedup"},
	}
	// Lockstep reference for the speedup axis.
	ref, err := wallRun(opt, n, 1, opt.LinkDelay)
	if err != nil {
		return nil, err
	}
	opt.log("fig8: lockstep ref %v", ref)
	bestQ, bestTS := 0.0, uint64(0)
	for _, ts := range tsyncs {
		acc, err := accuracyRun(opt, n, ts)
		if err != nil {
			return nil, err
		}
		wall, err := wallRun(opt, n, ts, opt.LinkDelay)
		if err != nil {
			return nil, err
		}
		opt.log("fig8: %v / %v", acc, wall)
		speedup := ref.Wall.Seconds() / wall.Wall.Seconds()
		q := acc.Accuracy * speedup
		if q > bestQ {
			bestQ, bestTS = q, ts
		}
		t.Append(ts, fmt.Sprintf("%.3f", acc.Accuracy), fmt.Sprintf("%.3f", wall.Wall.Seconds()),
			fmt.Sprintf("%.1f", speedup), fmt.Sprintf("%.1f", q))
	}
	t.Note("optimal Tsync by accuracy×speedup: %d (quality %.1f)", bestTS, bestQ)
	t.Note("paper §6: \"there is a value of Tsync which maximizes the product (accuracy x overhead)\"")
	return t, nil
}

func wallRun(opt Options, n int, tsync uint64, delay time.Duration) (router.RunResult, error) {
	rc := opt.runConfig()
	rc.TB.PacketsPerPort = n / rc.TB.Ports
	rc.TSync = tsync
	rc.Transport = router.TransportTCP
	rc.LinkDelay = delay
	return run(rc)
}

// AblationPolicies compares the coupling disciplines the paper situates
// itself against: lockstep (tightest timed coupling), the paper's quantum
// scheme at several T_sync, and the unsynchronized functional baseline.
func AblationPolicies(opt Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A1: synchronization policies (N=100)",
		Header: []string{"policy", "accuracy", "wall[s]", "sync events"},
	}
	const n = 100
	lock, err := wallRun(opt, n, 1, opt.LinkDelay)
	if err != nil {
		return nil, err
	}
	t.Append("lockstep (Tsync=1)", fmt.Sprintf("%.3f", lock.Accuracy),
		fmt.Sprintf("%.3f", lock.Wall.Seconds()), lock.HW.SyncEvents)
	for _, ts := range []uint64{1000, 5000, 20000} {
		r, err := wallRun(opt, n, ts, opt.LinkDelay)
		if err != nil {
			return nil, err
		}
		t.Append(fmt.Sprintf("quantum Tsync=%d", ts), fmt.Sprintf("%.3f", r.Accuracy),
			fmt.Sprintf("%.3f", r.Wall.Seconds()), r.HW.SyncEvents)
	}
	tbc := router.DefaultTBConfig()
	tbc.PacketsPerPort = n / tbc.Ports
	free, err := router.RunLoopback(tbc)
	if err != nil {
		return nil, err
	}
	t.Append("unsynchronized (functional)", fmt.Sprintf("%.3f", free.Accuracy),
		fmt.Sprintf("%.3f", free.Wall.Seconds()), 0)
	t.Note("rollback (optimistic) is deliberately absent: the board's free-running watchdog")
	t.Note("cannot be rolled back — the same argument the paper makes in §2")
	return t, nil
}

// AblationTiming compares the ISS-measured software timing model against
// analytic annotation (paper refs [14,15]) at the accuracy knee.
func AblationTiming(opt Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A2: software timing model (N=100)",
		Header: []string{"Tsync", "accuracy(ISS)", "accuracy(annotated)", "ISS kcycles"},
	}
	for _, ts := range []uint64{2000, 5000, 8000, 15000} {
		rcI := opt.runConfig()
		rcI.TB.PacketsPerPort = 25
		rcI.TSync = ts
		resI, err := run(rcI)
		if err != nil {
			return nil, err
		}
		rcA := rcI
		rcA.AppCfg.Timing = router.TimingAnnotated
		resA, err := run(rcA)
		if err != nil {
			return nil, err
		}
		opt.log("A2: Tsync=%d iss=%.3f annotated=%.3f", ts, resI.Accuracy, resA.Accuracy)
		t.Append(ts, fmt.Sprintf("%.3f", resI.Accuracy), fmt.Sprintf("%.3f", resA.Accuracy),
			resI.App.ISSCycles/1000)
	}
	t.Note("the annotated model approximates the ISS measurement; divergence at the knee")
	t.Note("quantifies the value of instruction-accurate software timing")
	return t, nil
}

// AblationTransport quantifies per-sync cost across transports.
func AblationTransport(opt Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A3: transport cost per synchronization event (N=20, Tsync=1)",
		Header: []string{"transport", "sync events", "wall[s]", "us/sync"},
	}
	for _, tr := range []router.TransportKind{router.TransportInProc, router.TransportTCP} {
		rc := opt.runConfig()
		rc.TB.PacketsPerPort = 5
		rc.TSync = 1
		rc.Transport = tr
		res, err := run(rc)
		if err != nil {
			return nil, err
		}
		t.Append(tr.String(), res.HW.SyncEvents, fmt.Sprintf("%.3f", res.Wall.Seconds()),
			fmt.Sprintf("%.2f", float64(res.Wall.Microseconds())/float64(res.HW.SyncEvents)))
	}
	t.Note("the gap is the socket round trip — the cost the virtual tick amortizes over Tsync cycles")
	return t, nil
}

// AblationMultiBoard scales the number of boards serving the router's
// verification load with a compute-heavy kernel — the multi-processor
// extension (paper refs [19],[20]). A single board saturates its granted
// quanta and loses packets; splitting the engines restores accuracy.
func AblationMultiBoard(opt Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A5: boards serving verification (N=200, Tsync=2000, heavy kernel)",
		Header: []string{"boards", "accuracy", "fifo drops", "per-board packets"},
	}
	mkCfg := func() router.RunConfig {
		rc := opt.runConfig()
		rc.TB.PacketsPerPort = 50
		rc.TSync = 2000
		rc.AppCfg.Timing = router.TimingAnnotated
		rc.AppCfg.AnnotatedBase = 40000
		rc.AppCfg.AnnotatedPerWord = 16
		return rc
	}
	single, err := run(mkCfg())
	if err != nil {
		return nil, err
	}
	t.Append(1, fmt.Sprintf("%.3f", single.Accuracy), single.Router.DroppedFull,
		fmt.Sprint(single.App.Delivered))
	for _, boards := range []int{2, 4} {
		res, err := router.RunCoSimMulti(mkCfg(), boards)
		if err != nil {
			return nil, err
		}
		var per []string
		for _, a := range res.Apps {
			per = append(per, fmt.Sprint(a.Delivered))
		}
		t.Append(boards, fmt.Sprintf("%.3f", res.Accuracy), res.Router.DroppedFull,
			strings.Join(per, "/"))
		opt.log("A5: boards=%d acc=%.3f", boards, res.Accuracy)
	}
	t.Note("each board has its own DATA/INT/CLOCK link and device window; grants fan out")
	t.Note("to all boards before any acknowledgement is awaited (concurrent quanta)")
	return t, nil
}

// AblationSyncMode compares alternating and pipelined quantum scheduling.
func AblationSyncMode(opt Options) (*Table, error) {
	t := &Table{
		Title:  "Ablation A4: quantum scheduling (N=100, TCP)",
		Header: []string{"Tsync", "mode", "accuracy", "wall[s]"},
	}
	for _, ts := range []uint64{1000, 4000, 8000} {
		for _, mode := range []cosim.SyncMode{cosim.SyncAlternating, cosim.SyncPipelined} {
			rc := opt.runConfig()
			rc.TB.PacketsPerPort = 25
			rc.TSync = ts
			rc.Transport = router.TransportTCP
			rc.LinkDelay = opt.LinkDelay
			rc.Mode = mode
			res, err := run(rc)
			if err != nil {
				return nil, err
			}
			t.Append(ts, mode.String(), fmt.Sprintf("%.3f", res.Accuracy),
				fmt.Sprintf("%.3f", res.Wall.Seconds()))
		}
	}
	t.Note("pipelined overlaps board and simulator execution (the paper's concurrent quanta)")
	t.Note("at the cost of one extra quantum of board→HW latency, shifting the accuracy knee down")
	return t, nil
}
