package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestEveryExperimentRuns exercises each figure/ablation generator in its
// quick form and sanity-checks the headline property of each table. It is
// the regression net for cmd/cosim-experiments.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short")
	}
	opt := quickOpt()

	t.Run("Fig5", func(t *testing.T) {
		tbl, err := Fig5(opt)
		if err != nil {
			t.Fatal(err)
		}
		// Wall time grows with N within each Tsync column (allowing one
		// inversion for machine noise).
		inversions := 0
		for col := 1; col < len(tbl.Header)-1; col++ {
			for row := 1; row < len(tbl.Rows); row++ {
				if cell(t, tbl, row, col) < cell(t, tbl, row-1, col) {
					inversions++
				}
			}
		}
		if inversions > 2 {
			t.Fatalf("fig5 not monotone in N (%d inversions):\n%v", inversions, tbl.Rows)
		}
		// The tightest coupling is slower than the loosest at max N.
		last := len(tbl.Rows) - 1
		if cell(t, tbl, last, 1) <= cell(t, tbl, last, len(tbl.Header)-2) {
			t.Fatalf("fig5: Tsync=1000 not slower than Tsync=10000: %v", tbl.Rows[last])
		}
	})

	t.Run("Fig8", func(t *testing.T) {
		tbl, err := Fig8(opt)
		if err != nil {
			t.Fatal(err)
		}
		// The optimum note names a Tsync from the sweep.
		if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "optimal Tsync") {
			t.Fatalf("fig8 notes: %v", tbl.Notes)
		}
	})

	t.Run("A1", func(t *testing.T) {
		tbl, err := AblationPolicies(opt)
		if err != nil {
			t.Fatal(err)
		}
		// Lockstep is 100% accurate and has the most sync events.
		if tbl.Rows[0][1] != "1.000" {
			t.Fatalf("lockstep accuracy %s", tbl.Rows[0][1])
		}
		lock, _ := strconv.Atoi(tbl.Rows[0][3])
		q1000, _ := strconv.Atoi(tbl.Rows[1][3])
		if lock <= q1000 {
			t.Fatalf("lockstep syncs %d not above quantum %d", lock, q1000)
		}
	})

	t.Run("A4", func(t *testing.T) {
		tbl, err := AblationSyncMode(opt)
		if err != nil {
			t.Fatal(err)
		}
		// At Tsync=4000 pipelined must be less accurate than alternating
		// (one extra quantum of latency halves the knee).
		var alt, pipe float64
		for _, row := range tbl.Rows {
			if row[0] == "4000" && row[1] == "alternating" {
				alt, _ = strconv.ParseFloat(row[2], 64)
			}
			if row[0] == "4000" && row[1] == "pipelined" {
				pipe, _ = strconv.ParseFloat(row[2], 64)
			}
		}
		if pipe >= alt {
			t.Fatalf("pipelined accuracy %.3f not below alternating %.3f at the knee", pipe, alt)
		}
	})

	t.Run("A5", func(t *testing.T) {
		tbl, err := AblationMultiBoard(opt)
		if err != nil {
			t.Fatal(err)
		}
		one, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
		two, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
		if two <= one {
			t.Fatalf("two boards (%.3f) did not beat one (%.3f)", two, one)
		}
	})

	t.Run("A6", func(t *testing.T) {
		tbl, err := AblationIRQLatency(opt)
		if err != nil {
			t.Fatal(err)
		}
		// Latency never exceeds one quantum (the generator itself enforces
		// the bound; verify a row's max/Tsync ratio here as well).
		for _, row := range tbl.Rows {
			ratio, _ := strconv.ParseFloat(row[4], 64)
			if ratio > 1.05 {
				t.Fatalf("IRQ latency ratio %s at Tsync=%s exceeds one quantum", row[4], row[0])
			}
		}
	})

	t.Run("E2", func(t *testing.T) {
		tbl, err := ExpServoQuality(opt)
		if err != nil {
			t.Fatal(err)
		}
		// First row settled, last row not.
		if tbl.Rows[0][3] != "true" || tbl.Rows[len(tbl.Rows)-1][3] != "false" {
			t.Fatalf("servo quality shape wrong: %v", tbl.Rows)
		}
	})

	t.Run("RenderAll", func(t *testing.T) {
		tbl := &Table{Title: "x", Header: []string{"a"}}
		tbl.Append(1)
		var buf bytes.Buffer
		if err := tbl.Write(&buf); err != nil {
			t.Fatal(err)
		}
	})
}
