package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickOpt() Options { return Options{Quick: true} }

// cell parses a numeric table cell.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "bee"}}
	tbl.Append(1, 2.5)
	tbl.Append("x", "y")
	tbl.Note("note %d", 7)
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a  bee", "1  2.500", "# note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "a,bee\n1,2.500\n") {
		t.Fatalf("CSV:\n%s", csv.String())
	}
}

func TestFig7QuickShape(t *testing.T) {
	tbl, err := Fig7(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Column 1 = N=100 accuracy. Must start at 100 and be non-increasing,
	// ending clearly below 100.
	prev := 101.0
	for i := range tbl.Rows {
		acc := cell(t, tbl, i, 1)
		if acc > prev+0.2 {
			t.Fatalf("accuracy not monotone: row %d %.1f after %.1f", i, acc, prev)
		}
		prev = acc
	}
	if first := cell(t, tbl, 0, 1); first != 100.0 {
		t.Fatalf("accuracy at Tsync=1000 is %.1f, want 100", first)
	}
	last := cell(t, tbl, len(tbl.Rows)-1, 1)
	if last > 60 {
		t.Fatalf("accuracy at loosest coupling is %.1f, want clear degradation", last)
	}
}

func TestFig6QuickShape(t *testing.T) {
	tbl, err := Fig6(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tbl, 0, 1)              // Tsync=1
	last := cell(t, tbl, len(tbl.Rows)-1, 1) // Tsync=10000
	if first < 2 {
		t.Fatalf("lockstep overhead ratio %.1f, want ≫ 1", first)
	}
	if last >= first/2 {
		t.Fatalf("overhead did not decay: %.1f → %.1f", first, last)
	}
}

func TestAblationTransportGap(t *testing.T) {
	tbl, err := AblationTransport(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	inproc := cell(t, tbl, 0, 3)
	tcp := cell(t, tbl, 1, 3)
	if tcp <= inproc {
		t.Fatalf("TCP per-sync cost %.2fus not above in-proc %.2fus", tcp, inproc)
	}
}

func TestAblationTimingAgreement(t *testing.T) {
	tbl, err := AblationTiming(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Both models must agree at tight coupling (first row, Tsync=2000).
	iss := cell(t, tbl, 0, 1)
	ann := cell(t, tbl, 0, 2)
	if iss != 1.0 || ann != 1.0 {
		t.Fatalf("tight coupling accuracy: iss=%.3f annotated=%.3f, want 1.0", iss, ann)
	}
}
