// Package experiments regenerates every figure of the paper's evaluation
// section (Figures 5, 6 and 7, plus the derived optimal-T_sync analysis
// the paper closes with) and the ablations DESIGN.md calls out, as text
// tables. cmd/cosim-experiments is the CLI front end; bench_test.go wraps
// the same entry points as benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Append adds a row, formatting each cell with %v.
func (t *Table) Append(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note records a caption line printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, line(t.Header))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

// CSV renders the table as comma-separated values (for plotting).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
