package board

import (
	"testing"

	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/rtos"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.RTOS.ISRCost = 0
	cfg.RTOS.DSRCost = 0
	cfg.RTOS.CtxSwitchCost = 0
	cfg.RTOS.IdleSwitchCost = 0
	return cfg
}

// hwScript drives the HW side of an in-proc link with a simple script.
type hwScript struct {
	hw *cosim.HWEndpoint
}

func newLinked(t *testing.T, b *Board) (*hwScript, chan error) {
	t.Helper()
	hwT, boardT := cosim.NewInProcPair(256)
	hw := cosim.NewHWEndpoint(hwT, cosim.SyncAlternating)
	bep := cosim.NewBoardEndpoint(boardT)
	for _, d := range b.devs {
		d.Attach(bep)
	}
	done := make(chan error, 1)
	go func() { done <- b.Run(bep) }()
	return &hwScript{hw: hw}, done
}

func TestBoardAdvancesOnGrants(t *testing.T) {
	b := New(testCfg())
	ticksSeen := []uint64{}
	b.K.CreateThread("obs", 10, func(c *rtos.ThreadCtx) {
		for {
			c.Sleep(1)
			ticksSeen = append(ticksSeen, b.K.SWTick())
		}
	})
	hs, done := newLinked(t, b)
	var hwCycle uint64
	for q := 0; q < 4; q++ {
		hwCycle += 10
		bc, err := hs.hw.Sync(10, hwCycle)
		if err != nil {
			t.Fatal(err)
		}
		// 10 ticks × 100 cycles/tick each quantum.
		if bc != (uint64(q)+1)*1000 {
			t.Fatalf("quantum %d: board cycle %d, want %d", q, bc, (q+1)*1000)
		}
	}
	if err := hs.hw.Finish(hwCycle); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// SW tick advances once per 100 cycles (default): 40 ticks total. The
	// observer wakes once per tick, except the final one: the tick-40
	// alarm fires on the last cycle of the last quantum, so the readied
	// thread would only run in a 41st-tick quantum that never arrives.
	if len(ticksSeen) != 39 {
		t.Fatalf("observer woke %d times, want 39", len(ticksSeen))
	}
	if b.Stats().Grants != 4 || b.Stats().TicksGranted != 40 {
		t.Fatalf("stats %+v", b.Stats())
	}
}

func TestBoardTimeFrozenBetweenGrants(t *testing.T) {
	b := New(testCfg())
	hs, done := newLinked(t, b)
	if _, err := hs.hw.Sync(5, 5); err != nil {
		t.Fatal(err)
	}
	c1, _ := hs.hw.BoardTime()
	// No grant: no time may pass regardless of wall-clock.
	c2, _ := hs.hw.BoardTime()
	if c1 != c2 || c1 != 500 {
		t.Fatalf("board time moved without grant: %d → %d", c1, c2)
	}
	hs.hw.Finish(5)
	<-done
}

func TestRemoteDevShadowAndPostedWrites(t *testing.T) {
	b := New(testCfg())
	dev, err := b.NewRemoteDev("/dev/fake", 0x100, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	var readBack []uint32
	b.K.CreateThread("app", 10, func(c *rtos.ThreadCtx) {
		// Wait for the device update to land (arrives with grant 2).
		c.Sleep(12)
		buf := make([]uint32, 3)
		if _, err := dev.Read(c, 4, buf); err != nil {
			t.Errorf("Read: %v", err)
		}
		readBack = buf
		if _, err := dev.Write(c, 0, []uint32{0xcafe}); err != nil {
			t.Errorf("Write: %v", err)
		}
		c.Exit()
	})
	hs, done := newLinked(t, b)
	// Quantum 1: plain.
	if _, err := hs.hw.Sync(10, 10); err != nil {
		t.Fatal(err)
	}
	// Quantum 2: carry a register update.
	if err := hs.hw.SendData(toDM(0x104, []uint32{7, 8, 9})); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.hw.Sync(10, 20); err != nil {
		t.Fatal(err)
	}
	// The app read the shadow and posted 0xcafe; it arrives at HW with
	// this or the next ack.
	var got []uint32
	for q := 0; q < 3 && got == nil; q++ {
		for _, m := range hs.hw.PollData() {
			got = m.Words
		}
		if got == nil {
			if _, err := hs.hw.Sync(10, 30+uint64(q)*10); err != nil {
				t.Fatal(err)
			}
		}
	}
	hs.hw.Finish(99)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(readBack) != 3 || readBack[0] != 7 || readBack[2] != 9 {
		t.Fatalf("shadow read %v", readBack)
	}
	if len(got) != 1 || got[0] != 0xcafe {
		t.Fatalf("posted write %v", got)
	}
}

func TestRemoteDevInterruptDelivery(t *testing.T) {
	b := New(testCfg())
	dev, err := b.NewRemoteDev("/dev/irqdev", 0, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dsrData []uint32
	b.K.AttachInterrupt(3, nil, func() {
		dsrData = append(dsrData, dev.PeekShadow(0))
	})
	hs, done := newLinked(t, b)
	// Write then interrupt within the same quantum: DSR must see the data.
	if err := hs.hw.SendData(toDM(0, []uint32{0x55})); err != nil {
		t.Fatal(err)
	}
	if err := hs.hw.SendInterrupt(3); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.hw.Sync(10, 10); err != nil {
		t.Fatal(err)
	}
	hs.hw.Finish(10)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(dsrData) != 1 || dsrData[0] != 0x55 {
		t.Fatalf("DSR observed %v, want the write that preceded the IRQ", dsrData)
	}
	if b.Stats().IRQsDelivered != 1 {
		t.Fatalf("stats %+v", b.Stats())
	}
}

func TestRemoteDevSplitPhaseRead(t *testing.T) {
	b := New(testCfg())
	dev, err := b.NewRemoteDev("/dev/rd", 0x200, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	var resp []uint32
	b.K.CreateThread("reader", 10, func(c *rtos.ThreadCtx) {
		if err := dev.PostReadReq(c, 2, 2); err != nil {
			t.Errorf("PostReadReq: %v", err)
		}
		for {
			if r, ok := dev.TakeReadResp(); ok {
				resp = r
				c.Exit()
			}
			c.Sleep(1)
		}
	})
	hs, done := newLinked(t, b)
	if _, err := hs.hw.Sync(5, 5); err != nil { // board posts the request
		t.Fatal(err)
	}
	reqs := hs.hw.PollData()
	if len(reqs) != 1 || reqs[0].Addr != 0x202 || reqs[0].Count != 2 {
		t.Fatalf("HW saw requests %+v", reqs)
	}
	if err := hs.hw.SendData(respDM(0x202, []uint32{0xaa, 0xbb})); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.hw.Sync(5, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.hw.Sync(5, 15); err != nil {
		t.Fatal(err)
	}
	hs.hw.Finish(15)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(resp) != 2 || resp[0] != 0xaa || resp[1] != 0xbb {
		t.Fatalf("split-phase read returned %v", resp)
	}
}

func TestRemoteDevBounds(t *testing.T) {
	b := New(testCfg())
	dev, err := b.NewRemoteDev("/dev/b", 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.NewRemoteDev("/dev/overlap", 2, 4, nil); err == nil {
		t.Fatal("overlapping windows accepted")
	}
	var errs int
	b.K.CreateThread("t", 10, func(c *rtos.ThreadCtx) {
		if _, err := dev.Read(c, 2, make([]uint32, 3)); err != nil {
			errs++
		}
		if _, err := dev.Write(c, 4, []uint32{1}); err != nil {
			errs++
		}
		if err := dev.PostReadReq(c, 3, 2); err != nil {
			errs++
		}
		c.Exit()
	})
	b.K.Advance(10000)
	if errs != 3 {
		t.Fatalf("%d bounds errors, want 3", errs)
	}
	b.K.Shutdown()
}

func TestWatchdogBarksWithoutKicks(t *testing.T) {
	b := New(testCfg())
	w := b.NewWatchdog(10, -1)
	b.K.Advance(100 * 35) // 35 HW ticks, no kick
	if w.Barks() != 3 {
		t.Fatalf("barks = %d, want 3 (ticks 10,20,30)", w.Barks())
	}
}

func TestWatchdogStaysQuietWhenKicked(t *testing.T) {
	b := New(testCfg())
	w := b.NewWatchdog(10, -1)
	b.K.CreateThread("petter", 5, func(c *rtos.ThreadCtx) {
		for {
			c.Sleep(5)
			w.Kick()
		}
	})
	b.K.Advance(100 * 100)
	if w.Barks() != 0 {
		t.Fatalf("watchdog barked %d times despite kicks: %s", w.Barks(), w)
	}
	b.K.Shutdown()
}

func TestWatchdogImmuneToWallClockFreeze(t *testing.T) {
	// The rollback-impossibility argument inverted: with virtual ticks,
	// an arbitrarily long wall-clock gap between grants must not age the
	// watchdog, because the timer only advances on granted ticks.
	b := New(testCfg())
	w := b.NewWatchdog(10, -1)
	b.K.Advance(100 * 5)
	// (a real-time gap would be here)
	b.K.Advance(100 * 4)
	if w.Barks() != 0 {
		t.Fatalf("watchdog aged across the freeze: %d barks", w.Barks())
	}
}

func toDM(addr uint32, words []uint32) hdlsim.DataMsg {
	return hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: addr, Words: words}
}

func respDM(addr uint32, words []uint32) hdlsim.DataMsg {
	return hdlsim.DataMsg{Kind: hdlsim.DataReadResp, Addr: addr, Words: words}
}
