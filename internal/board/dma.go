package board

import (
	"fmt"

	"repro/internal/rtos"
)

// DMA is an on-board copy engine, the kind of ASIC block the SCM2x0-class
// SoC offloads bulk transfers to: software programs a source window in a
// remote device's shadow registers, a destination buffer and a length;
// the engine then moves WordsPerTick words per HW timer tick in the
// background and raises its interrupt on completion. Like the watchdog it
// is free-running hardware synchronized to the timer — more of the board
// state that makes rollback-based synchronization impossible.
type DMA struct {
	b            *Board
	irq          int
	wordsPerTick int

	src    *RemoteDev
	srcOff uint32
	dst    []uint32
	pos    int
	busy   bool

	completed uint64
	moved     uint64
}

// NewDMA installs a DMA engine. irq is raised at each completion (attach
// a handler before the first Advance); wordsPerTick sets throughput.
func (b *Board) NewDMA(irq, wordsPerTick int) *DMA {
	if wordsPerTick < 1 {
		panic("board: DMA wordsPerTick must be ≥ 1")
	}
	d := &DMA{b: b, irq: irq, wordsPerTick: wordsPerTick}
	b.K.OnTick(func(uint64) { d.tick() })
	// Adaptive-sync wake source: a busy engine raises its completion
	// interrupt a computable number of ticks from now; an idle engine
	// can only be started by a thread, which zeroes the lookahead by
	// being runnable.
	b.K.RegisterWakeSource(func() uint64 {
		if !d.busy {
			return rtos.WakeNever
		}
		rem := len(d.dst) - d.pos
		return uint64((rem + d.wordsPerTick - 1) / d.wordsPerTick)
	})
	return d
}

// Start programs a transfer of len(dst) words from the device window at
// word offset off into dst. It fails when the engine is already busy or
// the source range overruns the window.
func (d *DMA) Start(src *RemoteDev, off uint32, dst []uint32) error {
	if d.busy {
		return fmt.Errorf("board: DMA busy")
	}
	if int(off)+len(dst) > int(src.size) {
		return fmt.Errorf("board: DMA source [%d,+%d) outside %s window", off, len(dst), src.name)
	}
	if len(dst) == 0 {
		return fmt.Errorf("board: DMA zero-length transfer")
	}
	d.src, d.srcOff, d.dst, d.pos = src, off, dst, 0
	d.busy = true
	return nil
}

// Busy reports whether a transfer is in progress.
func (d *DMA) Busy() bool { return d.busy }

// Completed returns the number of finished transfers.
func (d *DMA) Completed() uint64 { return d.completed }

// WordsMoved returns the total words copied.
func (d *DMA) WordsMoved() uint64 { return d.moved }

func (d *DMA) tick() {
	if !d.busy {
		return
	}
	n := d.wordsPerTick
	if rem := len(d.dst) - d.pos; n > rem {
		n = rem
	}
	block := d.src.PeekShadowBlock(d.srcOff+uint32(d.pos), uint32(n))
	copy(d.dst[d.pos:], block)
	d.pos += n
	d.moved += uint64(n)
	if d.pos == len(d.dst) {
		d.busy = false
		d.completed++
		d.b.K.PostIRQ(d.irq)
	}
}
