package board

import (
	"testing"

	"repro/internal/cosim"
	"repro/internal/rtos"
)

// dmaBoard builds a board with a 64-word device window pre-filled via the
// shadow path and a DMA engine.
func dmaBoard(t *testing.T, wordsPerTick int) (*Board, *RemoteDev, *DMA) {
	t.Helper()
	b := New(testCfg())
	dev, err := b.NewRemoteDev("/dev/buf", 0, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 64; i++ {
		if err := dev.applyWrite(cosim.RegBlock{Addr: i, Words: []uint32{i * 3}}); err != nil {
			t.Fatal(err)
		}
	}
	return b, dev, b.NewDMA(7, wordsPerTick)
}

func TestDMACopiesInBackground(t *testing.T) {
	b, dev, dma := dmaBoard(t, 4)
	done := b.K.NewSemaphore("dma", 0)
	b.K.AttachInterrupt(7, nil, func() { done.Post() })

	dst := make([]uint32, 32)
	var cpuWorkDone bool
	var startTick, endTick uint64
	b.K.CreateThread("app", 10, func(c *rtos.ThreadCtx) {
		startTick = b.K.HWTick()
		if err := dma.Start(dev, 8, dst); err != nil {
			t.Errorf("Start: %v", err)
		}
		// The CPU is free while the DMA runs.
		c.Charge(300)
		cpuWorkDone = true
		done.Wait(c)
		endTick = b.K.HWTick()
		c.Exit()
	})
	b.K.Advance(100 * 40)
	if !cpuWorkDone {
		t.Fatal("CPU work did not overlap the transfer")
	}
	if dma.Busy() || dma.Completed() != 1 {
		t.Fatalf("dma state: busy=%v completed=%d", dma.Busy(), dma.Completed())
	}
	for i, v := range dst {
		if want := uint32(8+i) * 3; v != want {
			t.Fatalf("dst[%d] = %d, want %d", i, v, want)
		}
	}
	// 32 words at 4/tick = 8 ticks.
	if ticks := endTick - startTick; ticks < 8 || ticks > 10 {
		t.Fatalf("transfer took %d ticks, want ≈8", ticks)
	}
	if dma.WordsMoved() != 32 {
		t.Fatalf("moved %d words", dma.WordsMoved())
	}
}

func TestDMARejectsBadPrograms(t *testing.T) {
	b, dev, dma := dmaBoard(t, 4)
	b.K.AttachInterrupt(7, nil, nil)
	if err := dma.Start(dev, 60, make([]uint32, 8)); err == nil {
		t.Fatal("overrun accepted")
	}
	if err := dma.Start(dev, 0, nil); err == nil {
		t.Fatal("zero-length accepted")
	}
	if err := dma.Start(dev, 0, make([]uint32, 8)); err != nil {
		t.Fatal(err)
	}
	if err := dma.Start(dev, 0, make([]uint32, 8)); err == nil {
		t.Fatal("double start accepted")
	}
	b.K.Advance(1000)
	if dma.Completed() != 1 {
		t.Fatalf("completed %d", dma.Completed())
	}
}

func TestDMAZeroThroughputPanics(t *testing.T) {
	b := New(testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("wordsPerTick 0 accepted")
		}
	}()
	b.NewDMA(1, 0)
}
