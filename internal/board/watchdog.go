package board

import (
	"fmt"

	"repro/internal/rtos"
)

// Watchdog is a free-running on-board ASIC synchronized to the hardware
// timer: if software does not kick it within Timeout HW ticks it records a
// bark (and optionally raises an interrupt). Its existence is the paper's
// argument for why rollback-based optimistic synchronization cannot be
// used with a real board — "the board may include some hardware devices
// which synchronize their work by exploiting the timer value, thus
// rollback cannot be implemented" — and its tests pin down that our
// virtual-tick scheme keeps it healthy while arbitrary-length freezes
// between quanta never age it (the timer only advances on granted ticks).
type Watchdog struct {
	b       *Board
	timeout uint64
	lastPet uint64 // HW tick of the last kick
	barks   uint64
	irq     int // -1: none
}

// NewWatchdog installs a watchdog with the given timeout in HW ticks.
// irq ≥ 0 raises that interrupt on each bark (the handler must be attached
// by the application); pass -1 to only count barks.
func (b *Board) NewWatchdog(timeoutTicks uint64, irq int) *Watchdog {
	if timeoutTicks == 0 {
		panic("board: watchdog timeout must be ≥ 1 tick")
	}
	w := &Watchdog{b: b, timeout: timeoutTicks, irq: irq}
	b.K.OnTick(func(hwTick uint64) {
		if hwTick-w.lastPet >= w.timeout {
			w.barks++
			w.lastPet = hwTick // rearm so a dead app barks once per timeout
			if w.irq >= 0 {
				b.K.PostIRQ(w.irq)
			}
		}
	})
	// Adaptive-sync wake source: the next bark is a scheduled interrupt
	// the lookahead must not elongate over. Bark-only watchdogs never
	// wake a thread, so they don't bound the lookahead (their bark
	// counter advances identically however the quanta are partitioned).
	b.K.RegisterWakeSource(func() uint64 {
		if w.irq < 0 {
			return rtos.WakeNever
		}
		due := w.lastPet + w.timeout
		if h := w.b.K.HWTick(); due > h {
			return due - h
		}
		return 0
	})
	return w
}

// Kick resets the watchdog countdown; call it from application threads.
func (w *Watchdog) Kick() { w.lastPet = w.b.K.HWTick() }

// Barks returns how many times the watchdog expired.
func (w *Watchdog) Barks() uint64 { return w.barks }

// String implements fmt.Stringer.
func (w *Watchdog) String() string {
	return fmt.Sprintf("watchdog{timeout=%d ticks, barks=%d}", w.timeout, w.barks)
}
