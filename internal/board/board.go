// Package board implements the virtual embedded board that stands in for
// the paper's Ultimodule SCM2x0: a CPU clock domain running the rtos
// kernel, a hardware timer, on-board peripherals (a free-running watchdog
// ASIC), and — the paper's key OS modification — the *remote device
// driver* through which application software reaches hardware that only
// exists inside the simulator on the other end of the co-simulation link.
//
// The board's main loop (Run) is the slave side of the virtual-tick
// protocol: it freezes in the OS idle state until the simulator grants a
// quantum, applies the tunnelled device traffic, advances the kernel by
// the granted virtual ticks, and reports its local time back.
package board

import (
	"fmt"

	"repro/internal/cosim"
	"repro/internal/rtos"
)

// Config parameterizes the board.
type Config struct {
	// RTOS is the kernel timing configuration.
	RTOS rtos.Config
	// CyclesPerGrantTick converts one granted virtual tick (one HDL clock
	// cycle on the simulator side) into board CPU cycles. With the default
	// of 100 and the default rtos CyclesPerTick of 100, one virtual tick
	// equals one HW timer tick — the paper's "the SystemC device
	// determines the advance of time" in its tightest form.
	CyclesPerGrantTick uint64
	// MMIORead/MMIOWriteCost are the bus cycles charged per word for
	// remote-device register access from application threads.
	MMIOReadCost, MMIOWriteCost uint64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		RTOS:               rtos.DefaultConfig(),
		CyclesPerGrantTick: 100,
		MMIOReadCost:       4,
		MMIOWriteCost:      4,
	}
}

// Stats aggregates board-side co-simulation counters.
type Stats struct {
	Grants        uint64
	TicksGranted  uint64
	IRQsDelivered uint64
	WriteBlocks   uint64
	ReadResps     uint64
}

// Board is one virtual SCM2x0-class board.
type Board struct {
	K   *rtos.Kernel
	cfg Config

	devs  []*RemoteDev
	stats Stats
}

// New creates a board and boots its kernel.
func New(cfg Config) *Board {
	if cfg.CyclesPerGrantTick == 0 {
		cfg.CyclesPerGrantTick = 1
	}
	return &Board{K: rtos.NewKernel(cfg.RTOS), cfg: cfg}
}

// Cfg returns the board configuration.
func (b *Board) Cfg() Config { return b.cfg }

// Stats returns the co-simulation counters.
func (b *Board) Stats() Stats { return b.stats }

// findDev returns the remote device whose window covers addr.
func (b *Board) findDev(addr uint32) *RemoteDev {
	for _, d := range b.devs {
		if addr >= d.base && addr < d.base+d.size {
			return d
		}
	}
	return nil
}

// applyGrant routes the grant's tunnelled traffic: posted writes update
// device shadow windows, read responses complete split-phase reads, and
// interrupts are latched on the kernel's controller. Writes are applied
// before interrupts so a DSR triggered by an IRQ observes the data that
// accompanied it — the same ordering a real bus guarantees between a DMA
// completion write and its interrupt.
func (b *Board) applyGrant(g cosim.Grant) error {
	for _, w := range g.Writes {
		d := b.findDev(w.Addr)
		if d == nil {
			return fmt.Errorf("board: simulator wrote unmapped address %#x", w.Addr)
		}
		if err := d.applyWrite(w); err != nil {
			return err
		}
		b.stats.WriteBlocks++
	}
	for _, r := range g.ReadResps {
		d := b.findDev(r.Addr)
		if d == nil {
			return fmt.Errorf("board: read response for unmapped address %#x", r.Addr)
		}
		d.deliverReadResp(r)
		b.stats.ReadResps++
	}
	for _, irq := range g.Interrupts {
		b.K.PostIRQ(int(irq))
		b.stats.IRQsDelivered++
	}
	return nil
}

// Lookahead returns the board's promise for the adaptive-sync
// negotiation: the number of whole grant ticks that can elapse before
// anything can become runnable on the board without simulator input.
// It floors the kernel's cycle bound (conservative) and passes
// cosim.UnboundedLookahead through when nothing is scheduled at all.
func (b *Board) Lookahead() uint64 {
	bound := b.K.NextEventBound()
	if bound == rtos.WakeNever {
		return cosim.UnboundedLookahead
	}
	return bound / b.cfg.CyclesPerGrantTick
}

// Run executes the board side of the co-simulation until the simulator
// finishes (or a protocol error occurs). It owns the calling goroutine.
func (b *Board) Run(ep *cosim.BoardEndpoint) error {
	defer b.K.Shutdown()
	for {
		g, err := ep.WaitGrant()
		if err != nil {
			return err
		}
		if g.Finished {
			return ep.FinishAck(b.K.Cycles(), b.K.SWTick())
		}
		if err := b.applyGrant(g); err != nil {
			return err
		}
		b.stats.Grants++
		b.stats.TicksGranted += g.Ticks
		b.K.Advance(g.Ticks * b.cfg.CyclesPerGrantTick)
		if err := ep.Ack(b.K.Cycles(), b.K.SWTick(), b.Lookahead()); err != nil {
			return err
		}
	}
}
