package board

import (
	"fmt"

	"repro/internal/cosim"
	"repro/internal/rtos"
)

// RemoteDev is the paper's new device driver (section 5.3): it makes the
// device simulated on the host look like a memory-mapped peripheral. Its
// register window is a posted-write bridge:
//
//   - simulator→board register updates arrive as DATA-channel writes at
//     quantum boundaries and land in a local *shadow* copy, so application
//     reads are serviced locally at bus cost;
//   - board→simulator writes are posted immediately on the DATA channel
//     and take effect in the simulator's next quantum;
//   - true remote reads (bypassing the shadow) are split-phase: the
//     request is posted and the response arrives in a later grant.
//
// Interrupts from the device arrive over the INT channel and are latched
// on the kernel's interrupt controller by Board.applyGrant; the
// application attaches its ISR/DSR pair with Kernel.AttachInterrupt as for
// any physical device.
// DevLink is the outbound half of the co-simulation link a RemoteDev
// posts through: immediate posted writes and split-phase read requests.
// *cosim.BoardEndpoint implements it for a wire-attached board; a
// federated in-process board (see Federate) substitutes a local buffer
// that the time manager exchanges at quantum boundaries.
type DevLink interface {
	PostWrite(addr uint32, words []uint32) error
	PostReadReq(addr, count uint32) error
}

var _ DevLink = (*cosim.BoardEndpoint)(nil)

type RemoteDev struct {
	name string
	base uint32
	size uint32

	b      *Board
	ep     DevLink
	shadow []uint32

	respQ [][]uint32 // completed split-phase reads, FIFO

	inited bool
}

// NewRemoteDev creates the driver for a simulated device whose registers
// occupy [base, base+size) word addresses, registers it with the kernel,
// and returns it. ep may be set later with Attach (the standalone board
// binary connects after boot).
func (b *Board) NewRemoteDev(name string, base, size uint32, ep DevLink) (*RemoteDev, error) {
	for _, d := range b.devs {
		if base < d.base+d.size && d.base < base+size {
			return nil, fmt.Errorf("board: device %q overlaps %q", name, d.name)
		}
	}
	d := &RemoteDev{name: name, base: base, size: size, b: b, ep: ep, shadow: make([]uint32, size)}
	if err := b.K.RegisterDriver(d); err != nil {
		return nil, err
	}
	b.devs = append(b.devs, d)
	return d, nil
}

// Attach connects the driver to the co-simulation link.
func (d *RemoteDev) Attach(ep DevLink) { d.ep = ep }

// Name implements rtos.Driver.
func (d *RemoteDev) Name() string { return d.name }

// Init implements rtos.Driver; the driver is initialized at system boot
// and passively listens for the device's interrupt (attached separately by
// the application, which owns the service semantics).
func (d *RemoteDev) Init(k *rtos.Kernel) error {
	d.inited = true
	return nil
}

// Base returns the first word address of the device window.
func (d *RemoteDev) Base() uint32 { return d.base }

// Read implements rtos.Driver: it copies from the shadow window, charging
// bus cost per word to the calling thread.
func (d *RemoteDev) Read(c *rtos.ThreadCtx, off uint32, buf []uint32) (int, error) {
	if int(off)+len(buf) > int(d.size) {
		return 0, fmt.Errorf("board: %s: read [%d,%d) outside window", d.name, off, int(off)+len(buf))
	}
	c.Charge(d.b.cfg.MMIOReadCost * uint64(len(buf)))
	copy(buf, d.shadow[off:int(off)+len(buf)])
	return len(buf), nil
}

// Write implements rtos.Driver: it posts the words to the simulated device
// (visible there next quantum), charging bus cost per word.
func (d *RemoteDev) Write(c *rtos.ThreadCtx, off uint32, buf []uint32) (int, error) {
	if int(off)+len(buf) > int(d.size) {
		return 0, fmt.Errorf("board: %s: write [%d,%d) outside window", d.name, off, int(off)+len(buf))
	}
	if d.ep == nil {
		return 0, fmt.Errorf("board: %s: not attached to a co-simulation endpoint", d.name)
	}
	c.Charge(d.b.cfg.MMIOWriteCost * uint64(len(buf)))
	if err := d.ep.PostWrite(d.base+off, buf); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// PostReadReq issues a split-phase remote read (bypassing the shadow); the
// response is retrieved later with TakeReadResp.
func (d *RemoteDev) PostReadReq(c *rtos.ThreadCtx, off, count uint32) error {
	if off+count > d.size {
		return fmt.Errorf("board: %s: remote read outside window", d.name)
	}
	if d.ep == nil {
		return fmt.Errorf("board: %s: not attached", d.name)
	}
	c.Charge(d.b.cfg.MMIOWriteCost)
	return d.ep.PostReadReq(d.base+off, count)
}

// TakeReadResp pops the oldest completed split-phase read, if any.
func (d *RemoteDev) TakeReadResp() ([]uint32, bool) {
	if len(d.respQ) == 0 {
		return nil, false
	}
	r := d.respQ[0]
	d.respQ = d.respQ[1:]
	return r, true
}

// PeekShadow reads a shadow register without charging (ISR/DSR context,
// where cost is covered by the configured ISR/DSR charges).
func (d *RemoteDev) PeekShadow(off uint32) uint32 {
	if off >= d.size {
		panic(fmt.Sprintf("board: %s: PeekShadow(%d) outside window", d.name, off))
	}
	return d.shadow[off]
}

// PeekShadowBlock copies count shadow words starting at off (DSR context).
func (d *RemoteDev) PeekShadowBlock(off, count uint32) []uint32 {
	return d.AppendShadowBlock(make([]uint32, 0, count), off, count)
}

// AppendShadowBlock appends count shadow words starting at off to dst; the
// allocation-free form for DSRs that reuse a scratch buffer.
func (d *RemoteDev) AppendShadowBlock(dst []uint32, off, count uint32) []uint32 {
	if off+count > d.size {
		panic(fmt.Sprintf("board: %s: PeekShadowBlock outside window", d.name))
	}
	return append(dst, d.shadow[off:off+count]...)
}

func (d *RemoteDev) applyWrite(w cosim.RegBlock) error {
	off := w.Addr - d.base
	if int(off)+len(w.Words) > int(d.size) {
		return fmt.Errorf("board: %s: simulator write [%#x,+%d) overflows window", d.name, w.Addr, len(w.Words))
	}
	copy(d.shadow[off:], w.Words)
	return nil
}

func (d *RemoteDev) deliverReadResp(r cosim.RegBlock) {
	cp := make([]uint32, len(r.Words))
	copy(cp, r.Words)
	d.respQ = append(d.respQ, cp)
}
