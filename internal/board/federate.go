package board

import (
	"fmt"

	"repro/internal/cosim"
)

// Federate adapts a Board to cosim.Federate: the in-process board engine
// of a federation. Instead of blocking on a wire endpoint for grants
// (Board.Run), the board advances when the time manager steps it:
// inbound events staged by Exchange are applied in the same bus order as
// a wire grant (writes, then read responses, then interrupts), the
// kernel runs the granted ticks, and the traffic its remote device
// drivers posted during the advance is collected by the next Exchange.
type Federate struct {
	name string
	b    *Board
	link fedLink
	cur  cosim.SimTime

	// staged inbound, applied at the next Step
	writes []cosim.RegBlock
	reads  []cosim.RegBlock
	irqs   []uint8

	out []cosim.FedMsg // reused collection buffer
}

// NewFederate wraps the board as a federate and attaches its local link
// to every remote device registered so far, replacing any wire endpoint;
// devices created later must Attach the federate's Link themselves.
func NewFederate(name string, b *Board) *Federate {
	f := &Federate{name: name, b: b}
	for _, d := range b.devs {
		d.Attach(&f.link)
	}
	return f
}

// Link returns the DevLink remote devices post through.
func (f *Federate) Link() DevLink { return &f.link }

// Name implements cosim.Federate.
func (f *Federate) Name() string { return f.name }

// Exchange implements cosim.Federate: inbound events are staged for the
// next Step, outbound posted traffic since the last call is returned.
// The returned slice is reused by the next Exchange.
func (f *Federate) Exchange(in []cosim.FedMsg) ([]cosim.FedMsg, error) {
	for _, m := range in {
		switch m.Kind {
		case cosim.FedWrite:
			f.writes = append(f.writes, cosim.RegBlock{Addr: m.Addr, Words: m.Words})
		case cosim.FedReadResp:
			f.reads = append(f.reads, cosim.RegBlock{Addr: m.Addr, Words: m.Words})
		case cosim.FedInt:
			f.irqs = append(f.irqs, m.IRQ)
		default:
			return nil, fmt.Errorf("board: %s: board federate cannot accept %v", f.name, m.Kind)
		}
	}
	f.out = f.out[:0]
	for _, p := range f.link.posted {
		f.out = append(f.out, p)
	}
	f.link.posted = f.link.posted[:0]
	return f.out, nil
}

// Step implements cosim.Federate: apply the staged grant traffic, then
// advance the kernel by the granted ticks (scaled by CyclesPerGrantTick,
// as for a wire grant).
func (f *Federate) Step(until cosim.SimTime) (cosim.SimTime, error) {
	if until < f.cur {
		return f.cur, fmt.Errorf("board: %s: step backwards (%d < %d)", f.name, until, f.cur)
	}
	g := cosim.Grant{Ticks: uint64(until - f.cur), Writes: f.writes, ReadResps: f.reads, Interrupts: f.irqs}
	if err := f.b.applyGrant(g); err != nil {
		return f.cur, err
	}
	f.writes, f.reads, f.irqs = f.writes[:0], f.reads[:0], f.irqs[:0]
	f.b.stats.Grants++
	f.b.stats.TicksGranted += g.Ticks
	f.b.K.Advance(g.Ticks * f.b.cfg.CyclesPerGrantTick)
	f.cur = until
	return f.cur, nil
}

// Lookahead implements cosim.Federate via the kernel's wake bound.
func (f *Federate) Lookahead() uint64 { return f.b.Lookahead() }

// Done implements cosim.Federate: a board never ends the run on its own.
func (f *Federate) Done() bool { return false }

// Finish implements cosim.Federate.
func (f *Federate) Finish(at cosim.SimTime) error {
	f.b.K.Shutdown()
	return nil
}

// BoardTime implements cosim.BoardClock.
func (f *Federate) BoardTime() (cycle, swTick uint64) {
	return f.b.K.Cycles(), f.b.K.SWTick()
}

// fedLink buffers the board's outbound posted traffic between exchanges.
type fedLink struct {
	posted []cosim.FedMsg
}

// PostWrite implements DevLink; like the wire endpoint, it takes
// ownership of words (the slice stays in flight until the peer's next
// quantum).
func (l *fedLink) PostWrite(addr uint32, words []uint32) error {
	l.posted = append(l.posted, cosim.FedMsg{Kind: cosim.FedWrite, Addr: addr, Words: words})
	return nil
}

// PostReadReq implements DevLink.
func (l *fedLink) PostReadReq(addr, count uint32) error {
	l.posted = append(l.posted, cosim.FedMsg{Kind: cosim.FedReadReq, Addr: addr, Count: count})
	return nil
}

var _ cosim.Federate = (*Federate)(nil)
var _ cosim.BoardClock = (*Federate)(nil)
var _ DevLink = (*fedLink)(nil)
