package checksum

import (
	"testing"
	"testing/quick"
)

func TestInternetKnownVectors(t *testing.T) {
	// Classic RFC 1071 worked example: the checksum of this sequence is
	// such that summing data+checksum gives 0xffff.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	cks := Internet(data)
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	sum += uint32(cks)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if sum != 0xffff {
		t.Fatalf("data+checksum folded to %#04x, want 0xffff", sum)
	}
}

func TestInternetEmptyAndOdd(t *testing.T) {
	if got := Internet(nil); got != 0xffff {
		t.Fatalf("checksum of empty = %#04x, want 0xffff", got)
	}
	// Odd-length input pads with zero: {0xab} ≡ {0xab, 0x00}.
	if Internet([]byte{0xab}) != Internet([]byte{0xab, 0x00}) {
		t.Fatal("odd-length padding mismatch")
	}
}

func TestVerifyInternetRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return VerifyInternet(data, Internet(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInternetDetectsSingleBitFlips(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	cks := Internet(data)
	for byteIdx := range data {
		for bit := 0; bit < 8; bit++ {
			mut := make([]byte, len(data))
			copy(mut, data)
			mut[byteIdx] ^= 1 << bit
			if VerifyInternet(mut, cks) {
				t.Fatalf("single-bit flip at byte %d bit %d undetected", byteIdx, bit)
			}
		}
	}
}

func TestInternetWordsMatchesByteForm(t *testing.T) {
	f := func(words []uint16) bool {
		bytes := make([]byte, 0, 2*len(words))
		for _, w := range words {
			bytes = append(bytes, byte(w>>8), byte(w))
		}
		return InternetWords(words) == Internet(bytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCRC16CCITTKnownVector(t *testing.T) {
	// The canonical check value for CRC-16/CCITT-FALSE is 0x29B1 over
	// "123456789".
	if got := CRC16CCITT([]byte("123456789")); got != 0x29b1 {
		t.Fatalf("CRC16CCITT(123456789) = %#04x, want 0x29b1", got)
	}
}

func TestCRC16TableMatchesBitwise(t *testing.T) {
	f := func(data []byte) bool {
		return CRC16CCITT(data) == CRC16CCITTTable(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCRC16DetectsCorruption(t *testing.T) {
	data := []byte("router packet payload")
	crc := CRC16CCITT(data)
	mut := append([]byte(nil), data...)
	mut[3] ^= 0x40
	if CRC16CCITT(mut) == crc {
		t.Fatal("CRC16 failed to detect corruption")
	}
}

func BenchmarkInternet64B(b *testing.B) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Internet(data)
	}
}

func BenchmarkCRC16Bitwise64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		CRC16CCITT(data)
	}
}

func BenchmarkCRC16Table64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		CRC16CCITTTable(data)
	}
}
