// Package checksum implements the 16-bit error-detection codes used by the
// router testbench: the ones-complement Internet checksum (RFC 1071),
// which is what the paper's "16 bit field used for error detection"
// corresponds to in the packet layout, and CRC-16/CCITT as an alternative
// for the accelerator example. The same algorithms exist in three places
// in this repository — here (reference), in the board's C-equivalent
// application, and as an RV32 assembly kernel for the instruction-set
// simulator — and cross-checking them against each other is part of the
// test suite.
package checksum

// Internet computes the RFC 1071 ones-complement checksum over data. An
// odd trailing byte is padded with zero, as in IP/UDP/TCP.
func Internet(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// VerifyInternet reports whether data followed by its checksum sums to the
// all-ones pattern, i.e. the data is intact.
func VerifyInternet(data []byte, cks uint16) bool {
	return Internet(data) == cks
}

// InternetWords computes the same checksum over 16-bit words directly;
// used by the ISS kernel and the HDL consumer, which see the payload as
// words rather than bytes.
func InternetWords(words []uint16) uint16 {
	var sum uint32
	for _, w := range words {
		sum += uint32(w)
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// CRC16CCITT computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), the
// variant used by the accelerator example.
func CRC16CCITT(data []byte) uint16 {
	crc := uint16(0xffff)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// crcTable is the byte-at-a-time lookup table for CRC16CCITT, built lazily
// by CRC16CCITTTable.
var crcTable [256]uint16
var crcTableReady bool

func buildTable() {
	for b := 0; b < 256; b++ {
		crc := uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		crcTable[b] = crc
	}
	crcTableReady = true
}

// CRC16CCITTTable is the table-driven equivalent of CRC16CCITT; it exists
// so the benchmark suite can quantify the classic table-vs-bitwise
// hardware/software design trade-off in the accelerator example.
func CRC16CCITTTable(data []byte) uint16 {
	if !crcTableReady {
		buildTable()
	}
	crc := uint16(0xffff)
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}
