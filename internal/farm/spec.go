package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cosim"
	"repro/internal/router"
)

// SessionSpec is the serializable description of one co-simulation
// session: everything a submitter may choose, as plain data. It is the
// farm's submission format (Submit/TrySubmit) and the payload the fleet
// control plane carries between a coordinator and its hosts — a spec
// written as JSON on one machine lowers to the identical router.RunConfig
// on any other, which is what makes fleet-placed runs bit-identical to
// local ones.
//
// Zero fields keep the corresponding DefaultRunConfig value, so the zero
// SessionSpec is the default in-process run. Durations are explicit
// integer fields with a unit suffix (_us, _ms) rather than opaque
// nanosecond counts, because specs are meant to be written by hand.
//
// Deliberately not expressible as a spec: Obs (attached by the executing
// farm), Trace (an io.Writer), and Federation topologies (submit those
// via SubmitConfig). A spec describes a session; the host decides how to
// observe it.
type SessionSpec struct {
	// Tenant names the submitting tenant for fleet admission control and
	// per-tenant metrics. The farm itself ignores it; "" is the default
	// tenant.
	Tenant string `json:"tenant,omitempty"`
	// Transport selects the link kind: "inproc" (default), "tcp", "uds"
	// or "shm".
	Transport string `json:"transport,omitempty"`
	// TSync is the synchronization interval in cycles (0 = default 1000).
	TSync uint64 `json:"tsync,omitempty"`
	// Mode is the rendezvous scheduling mode: "alternating" (default) or
	// "pipelined".
	Mode string `json:"mode,omitempty"`
	// Adaptive enables lookahead-negotiated quantum elongation;
	// MaxQuantum caps the elongated quantum (0 = 64×TSync).
	Adaptive   bool   `json:"adaptive,omitempty"`
	MaxQuantum uint64 `json:"max_quantum,omitempty"`
	// Batch enables wire-frame coalescing (one MTBatch per channel flush).
	Batch bool `json:"batch,omitempty"`
	// MaxCycles bounds the run explicitly (0 derives a budget).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// LinkDelayUS adds an emulated per-message link latency, in
	// microseconds, in each direction.
	LinkDelayUS int64 `json:"link_delay_us,omitempty"`
	// Chaos, when non-nil, injects seeded link faults; pair it with
	// Resilience or validation fails.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
	// Resilience, when non-nil, wraps the link in the session layer
	// (seq/ack/nack, CRC, retransmission).
	Resilience *ResilienceSpec `json:"resilience,omitempty"`
	// TB tunes the hardware testbench workload.
	TB *TBSpec `json:"tb,omitempty"`
	// Board tunes the virtual board timing.
	Board *BoardSpec `json:"board,omitempty"`
	// App tunes the board application.
	App *AppSpec `json:"app,omitempty"`
}

// ChaosSpec is a serializable cosim.Scenario with one uniform
// FaultProfile across all three channels — the shape every caller in the
// repo actually uses. Probabilities are per frame.
type ChaosSpec struct {
	Seed       int64   `json:"seed"`
	Drop       float64 `json:"drop,omitempty"`
	Duplicate  float64 `json:"duplicate,omitempty"`
	Reorder    float64 `json:"reorder,omitempty"`
	Corrupt    float64 `json:"corrupt,omitempty"`
	Truncate   float64 `json:"truncate,omitempty"`
	Delay      float64 `json:"delay,omitempty"`
	MaxDelayUS int64   `json:"max_delay_us,omitempty"`
}

// ResilienceSpec tunes the session layer. Zero fields keep the
// cosim.DefaultSessionConfig value.
type ResilienceSpec struct {
	AckEvery            int   `json:"ack_every,omitempty"`
	RetransmitTimeoutMS int64 `json:"retransmit_timeout_ms,omitempty"`
	HeartbeatIntervalMS int64 `json:"heartbeat_interval_ms,omitempty"`
	HeartbeatMiss       int   `json:"heartbeat_miss,omitempty"`
	MaxRedials          int   `json:"max_redials,omitempty"`
	RedialBackoffMS     int64 `json:"redial_backoff_ms,omitempty"`
}

// TBSpec tunes the router testbench workload. Zero fields keep the
// DefaultTBConfig value (so Seed 0 keeps the default seed 1; use an
// explicit non-zero seed to decorrelate sessions).
type TBSpec struct {
	Ports          int     `json:"ports,omitempty"`
	FIFOCap        int     `json:"fifo_cap,omitempty"`
	PacketsPerPort int     `json:"packets_per_port,omitempty"`
	Period         uint64  `json:"period,omitempty"`
	DataWords      int     `json:"data_words,omitempty"`
	ErrRate        float64 `json:"err_rate,omitempty"`
	MulticastRate  float64 `json:"multicast_rate,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
}

// BoardSpec tunes the virtual board. Zero fields keep the
// board.DefaultConfig value.
type BoardSpec struct {
	CyclesPerGrantTick uint64 `json:"cycles_per_grant_tick,omitempty"`
	MMIOReadCost       uint64 `json:"mmio_read_cost,omitempty"`
	MMIOWriteCost      uint64 `json:"mmio_write_cost,omitempty"`
}

// AppSpec tunes the board application. Zero fields keep the
// DefaultAppConfig value.
type AppSpec struct {
	// Timing selects the software timing model: "iss" (default) or
	// "annotated".
	Timing          string `json:"timing,omitempty"`
	MailboxCap      int    `json:"mailbox_cap,omitempty"`
	Priority        int    `json:"priority,omitempty"`
	Engine          int    `json:"engine,omitempty"`
	WatchdogTimeout uint64 `json:"watchdog_timeout,omitempty"`
}

// ParseTransportKind maps a spec transport name to its TransportKind.
func ParseTransportKind(name string) (router.TransportKind, error) {
	switch name {
	case "", "inproc":
		return router.TransportInProc, nil
	case "tcp":
		return router.TransportTCP, nil
	case "uds", "unix":
		return router.TransportUDS, nil
	case "shm":
		return router.TransportShm, nil
	default:
		return 0, fmt.Errorf("farm: invalid SessionSpec: unknown transport %q (want inproc, tcp, uds or shm)", name)
	}
}

// RunConfig lowers the spec onto router.DefaultRunConfig and validates
// the result: the returned config is exactly what router.Run will see.
// Lowering is pure data — two lowerings of the same spec, on any two
// hosts, produce identical configs, which is the foundation of the
// fleet's bit-identical placement guarantee.
func (s SessionSpec) RunConfig() (router.RunConfig, error) {
	rc := router.DefaultRunConfig()
	kind, err := ParseTransportKind(s.Transport)
	if err != nil {
		return rc, err
	}
	rc.Transport = kind
	switch s.Mode {
	case "", "alternating":
		rc.Mode = cosim.SyncAlternating
	case "pipelined":
		rc.Mode = cosim.SyncPipelined
	default:
		return rc, fmt.Errorf("farm: invalid SessionSpec: unknown mode %q (want alternating or pipelined)", s.Mode)
	}
	if s.TSync != 0 {
		rc.TSync = s.TSync
	}
	rc.Adaptive = s.Adaptive
	rc.MaxQuantum = s.MaxQuantum
	rc.Batch = s.Batch
	rc.MaxCycles = s.MaxCycles
	if s.LinkDelayUS < 0 {
		return rc, fmt.Errorf("farm: invalid SessionSpec: link_delay_us %d is negative", s.LinkDelayUS)
	}
	rc.LinkDelay = time.Duration(s.LinkDelayUS) * time.Microsecond

	if c := s.Chaos; c != nil {
		sc := cosim.UniformScenario(c.Seed, cosim.FaultProfile{
			Drop:      c.Drop,
			Duplicate: c.Duplicate,
			Reorder:   c.Reorder,
			Corrupt:   c.Corrupt,
			Truncate:  c.Truncate,
			Delay:     c.Delay,
			MaxDelay:  time.Duration(c.MaxDelayUS) * time.Microsecond,
		})
		rc.Chaos = &sc
	}
	if r := s.Resilience; r != nil {
		sess := cosim.DefaultSessionConfig()
		if r.AckEvery != 0 {
			sess.AckEvery = r.AckEvery
		}
		if r.RetransmitTimeoutMS != 0 {
			sess.RetransmitTimeout = time.Duration(r.RetransmitTimeoutMS) * time.Millisecond
		}
		if r.HeartbeatIntervalMS != 0 {
			sess.HeartbeatInterval = time.Duration(r.HeartbeatIntervalMS) * time.Millisecond
		}
		if r.HeartbeatMiss != 0 {
			sess.HeartbeatMiss = r.HeartbeatMiss
		}
		if r.MaxRedials != 0 {
			sess.MaxRedials = r.MaxRedials
		}
		if r.RedialBackoffMS != 0 {
			sess.RedialBackoff = time.Duration(r.RedialBackoffMS) * time.Millisecond
		}
		rc.Resilience = &sess
	}
	if tb := s.TB; tb != nil {
		if tb.Ports != 0 {
			rc.TB.Ports = tb.Ports
		}
		if tb.FIFOCap != 0 {
			rc.TB.FIFOCap = tb.FIFOCap
		}
		if tb.PacketsPerPort != 0 {
			rc.TB.PacketsPerPort = tb.PacketsPerPort
		}
		if tb.Period != 0 {
			rc.TB.Period = tb.Period
		}
		if tb.DataWords != 0 {
			rc.TB.DataWords = tb.DataWords
		}
		if tb.ErrRate != 0 {
			rc.TB.ErrRate = tb.ErrRate
		}
		if tb.MulticastRate != 0 {
			rc.TB.MulticastRate = tb.MulticastRate
		}
		if tb.Seed != 0 {
			rc.TB.Seed = tb.Seed
		}
	}
	if b := s.Board; b != nil {
		if b.CyclesPerGrantTick != 0 {
			rc.BoardCfg.CyclesPerGrantTick = b.CyclesPerGrantTick
		}
		if b.MMIOReadCost != 0 {
			rc.BoardCfg.MMIOReadCost = b.MMIOReadCost
		}
		if b.MMIOWriteCost != 0 {
			rc.BoardCfg.MMIOWriteCost = b.MMIOWriteCost
		}
	}
	if a := s.App; a != nil {
		switch a.Timing {
		case "", "iss":
			rc.AppCfg.Timing = router.TimingISS
		case "annotated":
			rc.AppCfg.Timing = router.TimingAnnotated
		default:
			return rc, fmt.Errorf("farm: invalid SessionSpec: unknown app timing %q (want iss or annotated)", a.Timing)
		}
		if a.MailboxCap != 0 {
			rc.AppCfg.MailboxCap = a.MailboxCap
		}
		if a.Priority != 0 {
			rc.AppCfg.Priority = a.Priority
		}
		if a.Engine != 0 {
			rc.AppCfg.Engine = a.Engine
		}
		if a.WatchdogTimeout != 0 {
			rc.AppCfg.WatchdogTimeout = a.WatchdogTimeout
		}
	}
	if err := rc.Validate(); err != nil {
		return rc, err
	}
	return rc, nil
}

// ParseSpec decodes one SessionSpec from JSON, rejecting unknown fields
// — a typo in a hand-written spec file should fail submission, not
// silently run the default workload.
func ParseSpec(data []byte) (SessionSpec, error) {
	var s SessionSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("farm: parsing SessionSpec: %w", err)
	}
	return s, nil
}
