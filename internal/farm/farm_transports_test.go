package farm

import (
	"context"
	"testing"
	"time"

	"repro/internal/cosim"
	"repro/internal/router"
)

// TestFarmUnixFrontDoor runs a farm whose mux front door is a
// Unix-domain socket: UDS sessions rendezvous over it exactly as TCP
// sessions do over a tcp listener, with bit-identical virtual time.
func TestFarmUnixFrontDoor(t *testing.T) {
	const n = 4
	cfgs := make([]router.RunConfig, n)
	want := make([]outcome, n)
	for i := range cfgs {
		rc := quickConfig(i)
		rc.Transport = router.TransportUDS
		cfgs[i] = rc
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
		if err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
		want[i] = fingerprint(res)
	}

	f, err := New(Config{Workers: 2, QueueDepth: n, ListenNetwork: "unix"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sessions := make([]*Session, n)
	for i, rc := range cfgs {
		s, err := f.Submit(ctx, rc)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sessions[i] = s
	}
	for i, s := range sessions {
		res, err := s.Wait(ctx)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if got := fingerprint(res); got != want[i] {
			t.Errorf("session %d diverged from solo run:\nfarm %+v\nsolo %+v", i, got, want[i])
		}
		if res.TransportKind != router.TransportUDS {
			t.Errorf("session %d TransportKind = %v, want uds", i, res.TransportKind)
		}
	}
}

// TestFarmShmSessions runs shared-memory sessions through the worker
// pool; each session gets its own private ring pair, no front door
// involved.
func TestFarmShmSessions(t *testing.T) {
	if !cosim.ShmSupported() {
		t.Skip("shm transport unsupported on this platform")
	}
	const n = 4
	f, err := New(Config{Workers: 2, QueueDepth: n})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < n; i++ {
		rc := quickConfig(i)
		rc.Transport = router.TransportShm
		want, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
		if err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
		s, err := f.Submit(ctx, rc)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		res, err := s.Wait(ctx)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if fingerprint(res) != fingerprint(want) {
			t.Errorf("session %d diverged from solo run:\nfarm %+v\nsolo %+v", i, fingerprint(res), fingerprint(want))
		}
		if res.TransportKind != router.TransportShm {
			t.Errorf("session %d TransportKind = %v, want shm", i, res.TransportKind)
		}
	}
}
