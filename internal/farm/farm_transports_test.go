package farm

import (
	"context"
	"testing"
	"time"

	"repro/internal/cosim"
	"repro/internal/router"
)

// TestFarmUnixFrontDoor runs a farm whose mux front door is a
// Unix-domain socket: UDS sessions rendezvous over it exactly as TCP
// sessions do over a tcp listener, with bit-identical virtual time.
func TestFarmUnixFrontDoor(t *testing.T) {
	const n = 4
	specs := make([]SessionSpec, n)
	want := make([]outcome, n)
	for i := range specs {
		s := quickSpec(i)
		s.Transport = "uds"
		specs[i] = s
		want[i] = fingerprint(soloRun(t, s))
	}

	f, err := New(WithWorkers(2), WithQueueDepth(n), WithListen("unix", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Network() != "unix" {
		t.Fatalf("front door network %q, want unix", f.Network())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sessions := make([]*Session, n)
	for i, s := range specs {
		sess, err := f.Submit(ctx, s)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sessions[i] = sess
	}
	for i, s := range sessions {
		res, err := s.Wait(ctx)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if got := fingerprint(res); got != want[i] {
			t.Errorf("session %d diverged from solo run:\nfarm %+v\nsolo %+v", i, got, want[i])
		}
		if res.TransportKind != router.TransportUDS {
			t.Errorf("session %d TransportKind = %v, want uds", i, res.TransportKind)
		}
	}
}

// TestFarmShmSessions runs shared-memory sessions through the worker
// pool; each session gets its own private ring pair, no front door
// involved.
func TestFarmShmSessions(t *testing.T) {
	if !cosim.ShmSupported() {
		t.Skip("shm transport unsupported on this platform")
	}
	const n = 4
	f, err := New(WithWorkers(2), WithQueueDepth(n))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < n; i++ {
		spec := quickSpec(i)
		spec.Transport = "shm"
		want := soloRun(t, spec)
		s, err := f.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		res, err := s.Wait(ctx)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if fingerprint(res) != fingerprint(want) {
			t.Errorf("session %d diverged from solo run:\nfarm %+v\nsolo %+v", i, fingerprint(res), fingerprint(want))
		}
		if res.TransportKind != router.TransportShm {
			t.Errorf("session %d TransportKind = %v, want shm", i, res.TransportKind)
		}
	}
}
