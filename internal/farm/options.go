package farm

import "repro/internal/obs"

// Option mutates the Config a New starts from (the zero Config, whose
// defaults are 4 workers, a queue of twice that, a tcp loopback front
// door, no metrics). Options are applied in order, so later options win;
// WithConfig replaces the whole configuration and is typically first
// when present — the same contract as router.Run's options.
type Option func(*Config)

// WithConfig replaces the entire configuration. Use it to start a farm
// from a fully assembled Config value; construction through
// New(WithConfig(cfg)) is equivalent to struct-literal construction.
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// WithWorkers bounds the number of sessions running concurrently.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithQueueDepth bounds the accepted-but-not-yet-running sessions; a
// full queue pushes back on submitters.
func WithQueueDepth(n int) Option { return func(c *Config) { c.QueueDepth = n } }

// WithListen sets the mux front door: network is "tcp" or "unix", addr
// the listen address (a host:port, or a socket path — "" picks a
// loopback port for tcp and a farm-owned temp socket for unix).
func WithListen(network, addr string) Option {
	return func(c *Config) {
		c.ListenNetwork = network
		c.ListenAddr = addr
	}
}

// WithObs publishes the farm's aggregate metrics (and each session's
// endpoint metrics) into reg.
func WithObs(reg *obs.Registry) Option { return func(c *Config) { c.Obs = reg } }

// WithPerSessionMetrics additionally publishes one labelled gauge per
// completed session. Metric cardinality grows with every session; leave
// it off for long-lived farms scraped by a real Prometheus.
func WithPerSessionMetrics() Option { return func(c *Config) { c.PerSessionMetrics = true } }
