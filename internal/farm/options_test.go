package farm

import (
	"testing"

	"repro/internal/obs"
)

// TestOptionsEquivalentToConfig: functional-option construction is
// field-for-field equivalent to struct-literal construction through
// WithConfig, and later options win.
func TestOptionsEquivalentToConfig(t *testing.T) {
	reg := obs.NewRegistry()
	lit := Config{
		Workers:           3,
		QueueDepth:        9,
		ListenNetwork:     "tcp",
		ListenAddr:        "127.0.0.1:0",
		Obs:               reg,
		PerSessionMetrics: true,
	}

	viaConfig, err := New(WithConfig(lit))
	if err != nil {
		t.Fatal(err)
	}
	defer viaConfig.Close()
	viaOptions, err := New(
		WithWorkers(3),
		WithQueueDepth(9),
		WithListen("tcp", "127.0.0.1:0"),
		WithObs(reg),
		WithPerSessionMetrics(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer viaOptions.Close()

	// Compare the resolved configurations, not the bound addresses (both
	// asked for :0 and got distinct ports).
	a, b := viaConfig.cfg, viaOptions.cfg
	a.ListenAddr, b.ListenAddr = "", ""
	if a != b {
		t.Errorf("construction paths diverged:\nconfig  %+v\noptions %+v", a, b)
	}

	// Later options win.
	f, err := New(WithWorkers(1), WithWorkers(5))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.cfg.Workers != 5 {
		t.Errorf("later WithWorkers did not win: %d", f.cfg.Workers)
	}

	// WithConfig replaces everything applied before it.
	g, err := New(WithWorkers(7), WithConfig(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.cfg.Workers != 4 { // the zero Config's default
		t.Errorf("WithConfig did not reset Workers: %d", g.cfg.Workers)
	}

	// Zero-argument New is the zero Config with defaults.
	z, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer z.Close()
	if z.cfg.Workers != 4 || z.cfg.QueueDepth != 8 || z.cfg.ListenNetwork != "tcp" {
		t.Errorf("New() defaults wrong: %+v", z.cfg)
	}
}
