package farm

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/router"
)

// TestSpecLowersToDefaults: the zero spec is the default run.
func TestSpecLowersToDefaults(t *testing.T) {
	rc, err := SessionSpec{}.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	want := router.DefaultRunConfig()
	if rc.TSync != want.TSync || rc.Transport != want.Transport || rc.Mode != want.Mode ||
		rc.TB != want.TB || rc.BoardCfg != want.BoardCfg || rc.AppCfg != want.AppCfg {
		t.Errorf("zero spec did not lower to DefaultRunConfig:\ngot  %+v\nwant %+v", rc, want)
	}
}

// TestSpecLowering checks every field group crosses the lowering, with
// zero fields keeping defaults.
func TestSpecLowering(t *testing.T) {
	spec := SessionSpec{
		Tenant:      "acme",
		Transport:   "tcp",
		TSync:       500,
		Mode:        "pipelined",
		Batch:       true,
		MaxCycles:   123456,
		LinkDelayUS: 200,
		Chaos:       &ChaosSpec{Seed: 7, Drop: 0.01, Corrupt: 0.02, MaxDelayUS: 1500},
		Resilience:  &ResilienceSpec{RetransmitTimeoutMS: 10, HeartbeatMiss: 5},
		TB:          &TBSpec{PacketsPerPort: 3, Period: 700, Seed: 9, ErrRate: 0.25},
		Board:       &BoardSpec{CyclesPerGrantTick: 50},
		App:         &AppSpec{Timing: "annotated", MailboxCap: 8},
	}
	rc, err := spec.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Transport != router.TransportTCP || rc.TSync != 500 || rc.Batch != true {
		t.Errorf("headline fields lost: %+v", rc)
	}
	if rc.LinkDelay != 200*time.Microsecond {
		t.Errorf("LinkDelay = %v, want 200µs", rc.LinkDelay)
	}
	if rc.Chaos == nil || rc.Chaos.Seed != 7 || rc.Chaos.Profile[0].Drop != 0.01 ||
		rc.Chaos.Profile[2].Corrupt != 0.02 || rc.Chaos.Profile[1].MaxDelay != 1500*time.Microsecond {
		t.Errorf("chaos lost: %+v", rc.Chaos)
	}
	if rc.Resilience == nil || rc.Resilience.RetransmitTimeout != 10*time.Millisecond ||
		rc.Resilience.HeartbeatMiss != 5 {
		t.Errorf("resilience lost: %+v", rc.Resilience)
	}
	// Zero resilience fields keep the defaults.
	if rc.Resilience.AckEvery != 1 || rc.Resilience.MaxRedials != 8 {
		t.Errorf("resilience defaults not kept: %+v", rc.Resilience)
	}
	if rc.TB.PacketsPerPort != 3 || rc.TB.Period != 700 || rc.TB.Seed != 9 || rc.TB.ErrRate != 0.25 {
		t.Errorf("tb lost: %+v", rc.TB)
	}
	if rc.TB.Ports != 4 || rc.TB.FIFOCap != 4 {
		t.Errorf("tb defaults not kept: %+v", rc.TB)
	}
	if rc.BoardCfg.CyclesPerGrantTick != 50 || rc.BoardCfg.MMIOReadCost != 4 {
		t.Errorf("board knobs wrong: %+v", rc.BoardCfg)
	}
	if rc.AppCfg.Timing != router.TimingAnnotated || rc.AppCfg.MailboxCap != 8 || rc.AppCfg.Priority != 10 {
		t.Errorf("app knobs wrong: %+v", rc.AppCfg)
	}
}

// TestSpecValidation: bad enum values and incoherent combinations fail
// at lowering with actionable errors.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec SessionSpec
		want string
	}{
		{"unknown transport", SessionSpec{Transport: "pigeon"}, "unknown transport"},
		{"unknown mode", SessionSpec{Mode: "psychic"}, "unknown mode"},
		{"unknown timing", SessionSpec{App: &AppSpec{Timing: "vibes"}}, "unknown app timing"},
		{"negative delay", SessionSpec{LinkDelayUS: -1}, "negative"},
		{"chaos without resilience", SessionSpec{Chaos: &ChaosSpec{Seed: 1, Drop: 0.1}}, "Chaos without Resilience"},
		{"adaptive pipelined", SessionSpec{Adaptive: true, Mode: "pipelined"}, "Adaptive with SyncPipelined"},
	}
	for _, tc := range cases {
		if _, err := tc.spec.RunConfig(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestSpecJSONRoundTrip: a spec survives the wire byte-exactly, and its
// lowering on the far side matches the near side's — the property the
// fleet control plane rests on.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := SessionSpec{
		Tenant:     "acme",
		Transport:  "uds",
		TSync:      321,
		Adaptive:   true,
		MaxQuantum: 4096,
		Chaos:      &ChaosSpec{Seed: 11, Drop: 0.01},
		Resilience: &ResilienceSpec{RetransmitTimeoutMS: 15},
		TB:         &TBSpec{PacketsPerPort: 5, Seed: 3},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	rcA, err := spec.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	rcB, err := back.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	// Pointer fields compare by value (Resilience holds a func field, so
	// compare its scalars).
	if *rcA.Chaos != *rcB.Chaos {
		t.Errorf("chaos diverged across the wire")
	}
	if rcA.Resilience.RetransmitTimeout != rcB.Resilience.RetransmitTimeout ||
		rcA.Resilience.AckEvery != rcB.Resilience.AckEvery ||
		rcA.Resilience.HeartbeatMiss != rcB.Resilience.HeartbeatMiss {
		t.Errorf("resilience diverged across the wire")
	}
	rcA.Chaos, rcB.Chaos = nil, nil
	rcA.Resilience, rcB.Resilience = nil, nil
	if rcA != rcB {
		t.Errorf("lowering diverged across the wire:\nnear %+v\nfar  %+v", rcA, rcB)
	}
}

// TestParseSpecRejectsUnknownFields: a typo in a hand-written spec file
// is a submission error, not a silent default run.
func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"tysnc": 100}`)); err == nil {
		t.Fatal("misspelled field accepted")
	}
}

// TestSpecSubmitMatchesConfigSubmit: the same workload submitted as a
// spec and as its lowered raw config produce identical virtual time.
func TestSpecSubmitMatchesConfigSubmit(t *testing.T) {
	f, err := New(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	spec := quickSpec(3)
	rc, err := spec.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := f.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	viaConfig, err := f.SubmitConfig(ctx, rc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := viaSpec.Result()
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaConfig.Result()
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Errorf("spec and config submissions diverged:\nspec   %+v\nconfig %+v", fingerprint(a), fingerprint(b))
	}
}
