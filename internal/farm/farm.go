// Package farm is the multi-session co-simulation manager: where
// router.Run runs one simulator↔board pair, a Farm runs many
// independent sessions concurrently — a bounded worker pool fed by a
// submission queue with backpressure, one TCP front door (a
// cosim.MuxListener) multiplexing every board, per-session IDs and
// cancellation, graceful drain, and aggregate plus per-session metrics
// in an obs.Registry.
//
// The paper's setup is one simulator talking to one board over three
// sockets; the farm is that setup at production scale: N testbenches in
// flight, each with its own deterministic virtual time, sharing nothing
// but the listener and the metrics registry.
package farm

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cosim"
	"repro/internal/obs"
	"repro/internal/router"
)

// ErrQueueFull is returned by TrySubmit when the submission queue is at
// capacity — the backpressure signal.
var ErrQueueFull = errors.New("farm: submission queue full")

// ErrDraining is returned by Submit/TrySubmit after Drain began: the
// farm finishes what it has but accepts nothing new.
var ErrDraining = errors.New("farm: draining, not accepting new sessions")

// ErrClosed is returned by operations on a closed farm, and is the
// terminal error of sessions that were still queued when the farm shut
// down.
var ErrClosed = errors.New("farm: closed")

// Config tunes a Farm. The zero value is usable: 4 workers, a queue of
// twice that, a loopback listener, no metrics.
type Config struct {
	// Workers bounds the number of sessions running concurrently.
	Workers int
	// QueueDepth bounds the number of accepted-but-not-yet-running
	// sessions; a full queue pushes back on submitters.
	QueueDepth int
	// ListenAddr is the multiplexing listener's address, the front door
	// every socket session's board dials (default "127.0.0.1:0" over
	// "tcp"; a filesystem path when ListenNetwork is "unix").
	ListenAddr string
	// ListenNetwork selects the front door's stream network: "tcp"
	// (default) or "unix". Sessions submitted with
	// router.TransportUDS rendezvous over a unix front door exactly as
	// TCP ones do over a tcp front door; the mux attach handshake is
	// byte-identical.
	ListenNetwork string
	// Obs, when non-nil, receives the farm's aggregate metrics and each
	// session's endpoint metrics (see docs/OBSERVABILITY.md).
	Obs *obs.Registry
	// PerSessionMetrics additionally publishes one labelled gauge per
	// completed session (rendezvous latency, wall time). Metric
	// cardinality grows with every session; leave it off for long-lived
	// farms scraped by a real Prometheus.
	PerSessionMetrics bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.ListenNetwork == "" {
		c.ListenNetwork = "tcp"
	}
	if c.ListenAddr == "" && c.ListenNetwork == "tcp" {
		c.ListenAddr = "127.0.0.1:0"
	}
	return c
}

// SessionState is the lifecycle position of one session.
type SessionState int32

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued SessionState = iota
	// StateRunning: a worker is executing the co-simulation.
	StateRunning
	// StateDone: finished; Result is valid.
	StateDone
)

// String implements fmt.Stringer.
func (s SessionState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("SessionState(%d)", int32(s))
	}
}

// errCancelled is the cancellation cause recorded by Session.Cancel,
// distinguishing a caller's abort from a farm-wide shutdown (ErrClosed).
var errCancelled = errors.New("cancelled by caller")

// Session is the handle of one submitted co-simulation run.
type Session struct {
	id     uint64
	cfg    router.RunConfig
	ctx    context.Context
	cancel context.CancelCauseFunc

	state atomic.Int32
	done  chan struct{}
	res   router.RunResult
	err   error
}

// ID returns the farm-unique session ID — the value a TCP board attaches
// with on the mux listener.
func (s *Session) ID() uint64 { return s.id }

// State returns the session's current lifecycle state.
func (s *Session) State() SessionState { return SessionState(s.state.Load()) }

// Done returns a channel closed when the session has finished.
func (s *Session) Done() <-chan struct{} { return s.done }

// Cancel aborts the session: a queued session fails without running, a
// running one has its link torn down and fails promptly.
func (s *Session) Cancel() { s.cancel(errCancelled) }

// Result returns the run's outcome. It blocks until the session is done.
func (s *Session) Result() (router.RunResult, error) {
	<-s.done
	return s.res, s.err
}

// Wait blocks until the session finishes or ctx ends.
func (s *Session) Wait(ctx context.Context) (router.RunResult, error) {
	select {
	case <-s.done:
		return s.res, s.err
	case <-ctx.Done():
		return router.RunResult{}, ctx.Err()
	}
}

func (s *Session) finish(res router.RunResult, err error) {
	s.res, s.err = res, err
	s.state.Store(int32(StateDone))
	close(s.done)
}

// Farm runs co-simulation sessions on a bounded worker pool.
type Farm struct {
	cfg Config
	ln  *cosim.MuxListener
	// sockDir, when non-empty, is a farm-owned temp directory holding the
	// unix front-door socket; Close removes it.
	sockDir string

	ctx    context.Context
	cancel context.CancelCauseFunc
	queue  chan *Session
	wg     sync.WaitGroup // workers
	sessWG sync.WaitGroup // accepted-but-unfinished sessions

	mu       sync.Mutex
	draining bool
	closed   bool

	nextID    atomic.Uint64
	active    atomic.Int64
	completed atomic.Uint64
	failed    atomic.Uint64
	rejected  atomic.Uint64
	started   time.Time

	// Metric handles resolved once at registration: registry lookups
	// lock and hash the name, so per-event paths use these fields.
	mSubmitted     *obs.Counter
	mSessionWall   *obs.Histogram
	mRendezvous    *obs.Histogram
	mRetransmits   *obs.Counter
	mFramesInjured *obs.Counter
}

// New starts a farm configured by applying opts to the zero Config: the
// mux listener and the workers come up immediately. Call Close (or
// Drain, then Close) when done with it.
func New(opts ...Option) (*Farm, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg = cfg.withDefaults()
	var sockDir string
	if cfg.ListenNetwork == "unix" && cfg.ListenAddr == "" {
		dir, err := os.MkdirTemp("", "cosim-farm-*")
		if err != nil {
			return nil, fmt.Errorf("farm: socket dir: %w", err)
		}
		sockDir = dir
		cfg.ListenAddr = filepath.Join(dir, "s")
	}
	ln, err := cosim.ListenMuxNet(cfg.ListenNetwork, cfg.ListenAddr)
	if err != nil {
		if sockDir != "" {
			os.RemoveAll(sockDir)
		}
		return nil, fmt.Errorf("farm: listen: %w", err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	f := &Farm{
		cfg:     cfg,
		ln:      ln,
		sockDir: sockDir,
		ctx:     ctx,
		cancel:  cancel,
		queue:   make(chan *Session, cfg.QueueDepth),
		started: time.Now(),
	}
	f.registerMetrics()
	for i := 0; i < cfg.Workers; i++ {
		f.wg.Add(1)
		go f.worker()
	}
	return f, nil
}

// Addr returns the mux listener's address — where external boards dial
// in with cosim.DialTCPSession.
func (f *Farm) Addr() string { return f.ln.Addr() }

// Network returns the front door's stream network ("tcp" or "unix").
func (f *Farm) Network() string { return f.ln.Network() }

// Snapshot is a point-in-time view of the farm's aggregate state — what
// a fleet host agent reports in its health heartbeats and cosim-farmctl
// prints for `status`.
type Snapshot struct {
	Workers       int    `json:"workers"`
	QueueCapacity int    `json:"queue_capacity"`
	Active        int64  `json:"active"`
	Queued        int    `json:"queued"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	Rejected      uint64 `json:"rejected"`
	Draining      bool   `json:"draining"`
	Closed        bool   `json:"closed"`
}

// Snapshot returns the farm's current aggregate counters.
func (f *Farm) Snapshot() Snapshot {
	f.mu.Lock()
	draining, closed := f.draining, f.closed
	f.mu.Unlock()
	return Snapshot{
		Workers:       f.cfg.Workers,
		QueueCapacity: f.cfg.QueueDepth,
		Active:        f.active.Load(),
		Queued:        len(f.queue),
		Completed:     f.completed.Load(),
		Failed:        f.failed.Load(),
		Rejected:      f.rejected.Load(),
		Draining:      draining,
		Closed:        closed,
	}
}

// registerMetrics publishes the aggregate farm instruments. Counters are
// registered eagerly so a scrape sees them (at zero) from the first
// moment of the farm's life.
func (f *Farm) registerMetrics() {
	reg := f.cfg.Obs
	if reg == nil {
		return
	}
	reg.GaugeFunc("farm_active_sessions", func() float64 { return float64(f.active.Load()) })
	reg.GaugeFunc("farm_queue_depth", func() float64 { return float64(len(f.queue)) })
	qcap := reg.Gauge("farm_queue_capacity")
	qcap.Set(float64(f.cfg.QueueDepth))
	workers := reg.Gauge("farm_workers")
	workers.Set(float64(f.cfg.Workers))
	reg.CounterFunc("farm_sessions_completed_total", f.completed.Load)
	reg.CounterFunc("farm_sessions_failed_total", f.failed.Load)
	reg.CounterFunc("farm_sessions_rejected_total", f.rejected.Load)
	reg.CounterFunc("farm_listener_rejects_total", f.ln.Rejected)
	f.mSubmitted = reg.Counter("farm_sessions_submitted_total")
	f.mSessionWall = reg.Histogram("farm_session_wall_seconds", nil)
	f.mRendezvous = reg.Histogram("farm_session_rendezvous_seconds", nil)
	f.mRetransmits = reg.Counter("farm_link_retransmits_total")
	f.mFramesInjured = reg.Counter("farm_link_frames_injured_total")
	reg.GaugeFunc("farm_sessions_per_sec", func() float64 {
		elapsed := time.Since(f.started).Seconds()
		if elapsed <= 0 {
			return 0
		}
		return float64(f.completed.Load()) / elapsed
	})
}

// newSession allocates the handle; the session context descends from the
// farm's so Close cancels every run.
func (f *Farm) newSession(rc router.RunConfig) *Session {
	ctx, cancel := context.WithCancelCause(f.ctx)
	if rc.Obs == nil {
		rc.Obs = f.cfg.Obs
	}
	return &Session{
		id:     f.nextID.Add(1),
		cfg:    rc,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
	}
}

// admit validates the config and the farm's acceptance state.
func (f *Farm) admit(rc router.RunConfig) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.draining {
		return ErrDraining
	}
	return nil
}

// Submit queues one co-simulation described by a serializable
// SessionSpec, blocking while the queue is full (backpressure) until
// space frees, ctx ends, or the farm shuts down. The spec is lowered
// and validated first; an invalid spec is rejected without queueing.
func (f *Farm) Submit(ctx context.Context, spec SessionSpec) (*Session, error) {
	rc, err := spec.RunConfig()
	if err != nil {
		return nil, err
	}
	return f.SubmitConfig(ctx, rc)
}

// TrySubmit is Submit without the wait: a full queue returns
// ErrQueueFull immediately.
func (f *Farm) TrySubmit(spec SessionSpec) (*Session, error) {
	rc, err := spec.RunConfig()
	if err != nil {
		return nil, err
	}
	return f.TrySubmitConfig(rc)
}

// SubmitConfig queues one co-simulation from a raw router.RunConfig —
// the escape hatch for sessions a SessionSpec cannot express (federated
// topologies, trace writers, caller-owned registries). Prefer Submit.
func (f *Farm) SubmitConfig(ctx context.Context, rc router.RunConfig) (*Session, error) {
	if err := f.admit(rc); err != nil {
		return nil, err
	}
	s := f.newSession(rc)
	f.sessWG.Add(1)
	select {
	case f.queue <- s:
		f.countSubmitted()
		return s, nil
	case <-ctx.Done():
		f.sessWG.Done()
		f.rejected.Add(1)
		return nil, ctx.Err()
	case <-f.ctx.Done():
		f.sessWG.Done()
		return nil, ErrClosed
	}
}

// TrySubmitConfig is SubmitConfig without the wait: a full queue
// returns ErrQueueFull immediately.
func (f *Farm) TrySubmitConfig(rc router.RunConfig) (*Session, error) {
	if err := f.admit(rc); err != nil {
		return nil, err
	}
	s := f.newSession(rc)
	f.sessWG.Add(1)
	select {
	case f.queue <- s:
		f.countSubmitted()
		return s, nil
	default:
		f.sessWG.Done()
		f.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

func (f *Farm) countSubmitted() {
	if f.mSubmitted != nil {
		f.mSubmitted.Inc()
	}
}

// Drain stops admission and waits until every accepted session has
// finished (or ctx ends). The farm stays alive for metric scrapes; call
// Close afterwards to release the listener and workers.
func (f *Farm) Drain(ctx context.Context) error {
	f.mu.Lock()
	f.draining = true
	f.mu.Unlock()
	done := make(chan struct{})
	go func() {
		f.sessWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts the farm down: admission stops, running sessions are
// cancelled (their links are torn down), queued sessions fail with
// ErrClosed, workers exit, and the listener closes. Idempotent.
func (f *Farm) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.draining = true
	f.mu.Unlock()

	f.cancel(ErrClosed)
	f.wg.Wait()
	// Workers are gone; whatever is still queued never ran.
	for {
		select {
		case s := <-f.queue:
			s.finish(router.RunResult{}, ErrClosed)
			f.failed.Add(1)
			f.sessWG.Done()
		default:
			err := f.ln.Close()
			if f.sockDir != "" {
				os.RemoveAll(f.sockDir)
			}
			return err
		}
	}
}

func (f *Farm) worker() {
	defer f.wg.Done()
	for {
		select {
		case <-f.ctx.Done():
			return
		case s := <-f.queue:
			f.runSession(s)
			f.sessWG.Done()
		}
	}
}

// sessionErr maps a cancelled session's context to its terminal error:
// a farm-wide shutdown surfaces ErrClosed, a caller's Cancel names the
// session and its cause.
func sessionErr(s *Session) error {
	cause := context.Cause(s.ctx)
	if errors.Is(cause, ErrClosed) {
		return ErrClosed
	}
	return fmt.Errorf("farm: session %d cancelled: %w", s.id, cause)
}

// runSession executes one session on the calling worker goroutine.
func (f *Farm) runSession(s *Session) {
	if s.ctx.Err() != nil {
		// Cancelled (or farm closed) while queued.
		s.finish(router.RunResult{}, sessionErr(s))
		f.failed.Add(1)
		return
	}
	s.state.Store(int32(StateRunning))
	f.active.Add(1)
	start := time.Now()
	res, err := f.execute(s)
	if err != nil && s.ctx.Err() != nil {
		// Any failure after cancellation is reported as the cancellation,
		// whether it surfaced in the rendezvous or mid-run.
		err = sessionErr(s)
	}
	wall := time.Since(start)
	f.active.Add(-1)
	if err != nil {
		f.failed.Add(1)
	} else {
		f.completed.Add(1)
	}
	f.observeSession(s, res, err, wall)
	s.finish(res, err)
}

// execute establishes the session's base transports and hands them to
// the shared run entry point.
func (f *Farm) execute(s *Session) (router.RunResult, error) {
	if fc := s.cfg.Federation; fc != nil && (fc.InProcBoards || fc.Boards != 1) {
		// A federated session with several boards (or in-process board
		// hosting) establishes its own link per board; the farm's single
		// mux link cannot carry it, so hand the run a zero Transports
		// value and let the time manager wire the topology itself.
		return router.Run(s.ctx, router.Transports{}, router.WithConfig(s.cfg))
	}
	var hwB, boardB cosim.Transport
	switch s.cfg.Transport {
	case router.TransportTCP, router.TransportUDS:
		// The hw side registers the session ID on the shared listener
		// first, then the board dials in and is routed back to it — the
		// same rendezvous an external board would perform against
		// cmd/cosim-farm. The front door's network (tcp or unix) decides
		// what actually carries the frames; the handshake is identical.
		pend, err := f.ln.Expect(s.id)
		if err != nil {
			return router.RunResult{}, err
		}
		type dialed struct {
			tr  cosim.Transport
			err error
		}
		dc := make(chan dialed, 1)
		go func() {
			tr, derr := cosim.DialSession(f.ln.Network(), f.ln.Addr(), s.id)
			dc <- dialed{tr, derr}
		}()
		hwB, err = pend.Accept(s.ctx)
		d := <-dc
		if err != nil {
			if d.tr != nil {
				d.tr.Close()
			}
			return router.RunResult{}, err
		}
		if d.err != nil {
			hwB.Close()
			return router.RunResult{}, d.err
		}
		boardB = d.tr
	case router.TransportShm:
		var err error
		hwB, boardB, err = cosim.NewShmPair(cosim.ShmConfig{})
		if err != nil {
			return router.RunResult{}, err
		}
	default:
		hwB, boardB = cosim.NewInProcPair(4096)
	}

	// Cancellation is router.Run's job: it watches s.ctx and tears the
	// transport stacks down, aborting both sides promptly.
	return router.Run(s.ctx, router.Transports{HW: hwB, Board: boardB}, router.WithConfig(s.cfg))
}

// observeSession records one finished session in the registry.
func (f *Farm) observeSession(s *Session, res router.RunResult, err error, wall time.Duration) {
	reg := f.cfg.Obs
	if reg == nil || err != nil {
		return
	}
	f.mSessionWall.ObserveDuration(wall)
	var rendezvous float64
	if res.HW.SyncEvents > 0 {
		rendezvous = res.Link.SyncWait.Seconds() / float64(res.HW.SyncEvents)
		f.mRendezvous.Observe(rendezvous)
	}
	f.mRetransmits.Add(res.Link.Link.Retransmits)
	f.mFramesInjured.Add(res.Link.Link.FramesInjured)
	if f.cfg.PerSessionMetrics {
		id := fmt.Sprintf("%d", s.id)
		// The metric name embeds the session id, so these handles cannot be
		// hoisted to registration time.
		reg.Gauge(obs.Name("farm_session_rendezvous_avg_seconds", "session", id)).Set(rendezvous) //cosim:ignore obshandle -- per-session gauge names are dynamic
		reg.Gauge(obs.Name("farm_session_wall_seconds_last", "session", id)).Set(wall.Seconds())  //cosim:ignore obshandle -- per-session gauge names are dynamic
	}
}
