package farm

import (
	"context"
	"testing"

	"repro/internal/router"
)

// TestFarmRunsFederatedSessions: a RunConfig carrying a federation
// topology flows through SubmitConfig (the raw-config escape hatch —
// federation topologies are deliberately not expressible as a
// SessionSpec) like any other session — a single-board wire federation
// rides the farm's mux link, a multi-board federation wires its own
// links — and both match the equivalent direct run.
func TestFarmRunsFederatedSessions(t *testing.T) {
	f, err := New(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Single wire board over the farm's TCP front door: the degenerate
	// K=2 federation must match the solo pairwise run bit-for-bit.
	spec := quickSpec(0)
	spec.Transport = "tcp"
	solo := soloRun(t, spec)
	rc, err := spec.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	rc.Federation = &router.FederationConfig{Boards: 1}
	s, err := f.SubmitConfig(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("federated session: %v", err)
	}
	if fingerprint(res) != fingerprint(solo) {
		t.Errorf("farm federation diverged from solo run:\nsolo %+v\nfarm %+v", fingerprint(solo), fingerprint(res))
	}

	// A two-board federation cannot ride the single mux link; the farm
	// must hand it a zero Transports value and still complete it.
	rc, err = quickSpec(1).RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	rc.Federation = &router.FederationConfig{Boards: 2}
	s, err = f.SubmitConfig(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if res, err = s.Result(); err != nil {
		t.Fatalf("multi-board federated session: %v", err)
	}
	if res.Conservation != nil {
		t.Errorf("conservation: %v", res.Conservation)
	}
	if res.Accuracy != 1.0 {
		t.Errorf("accuracy %.3f", res.Accuracy)
	}
}
