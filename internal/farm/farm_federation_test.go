package farm

import (
	"context"
	"testing"

	"repro/internal/router"
)

// TestFarmRunsFederatedSessions: a RunConfig carrying a federation
// topology flows through Submit like any other session — a single-board
// wire federation rides the farm's mux link, a multi-board federation
// wires its own links — and both match the equivalent direct run.
func TestFarmRunsFederatedSessions(t *testing.T) {
	f, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Single wire board over the farm's TCP front door: the degenerate
	// K=2 federation must match the solo pairwise run bit-for-bit.
	rc := quickConfig(0)
	rc.Transport = router.TransportTCP
	solo, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	rc.Federation = &router.FederationConfig{Boards: 1}
	s, err := f.Submit(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatalf("federated session: %v", err)
	}
	if fingerprint(res) != fingerprint(solo) {
		t.Errorf("farm federation diverged from solo run:\nsolo %+v\nfarm %+v", fingerprint(solo), fingerprint(res))
	}

	// A two-board federation cannot ride the single mux link; the farm
	// must hand it a zero Transports value and still complete it.
	rc = quickConfig(1)
	rc.Federation = &router.FederationConfig{Boards: 2}
	s, err = f.Submit(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if res, err = s.Result(); err != nil {
		t.Fatalf("multi-board federated session: %v", err)
	}
	if res.Conservation != nil {
		t.Errorf("conservation: %v", res.Conservation)
	}
	if res.Accuracy != 1.0 {
		t.Errorf("accuracy %.3f", res.Accuracy)
	}
}
