package farm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cosim"
	"repro/internal/obs"
	"repro/internal/router"
)

// outcome is the virtual-time fingerprint of one run: identical
// fingerprints mean identical simulated behaviour.
type outcome struct {
	r      router.Stats
	cycles uint64
	ticks  uint64
}

func fingerprint(res router.RunResult) outcome {
	return outcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks}
}

// quickConfig builds a small, fast workload variant; idx decorrelates
// the traffic so different sessions do genuinely different work.
func quickConfig(idx int) router.RunConfig {
	rc := router.DefaultRunConfig()
	rc.TB.PacketsPerPort = 2 + idx%3
	rc.TB.Period = uint64(400 + 100*(idx%4))
	rc.TB.Seed = int64(idx + 1)
	rc.TSync = uint64(200 + 150*(idx%3))
	return rc
}

func withChaos(rc router.RunConfig, seed int64) router.RunConfig {
	sc := cosim.UniformScenario(seed, cosim.FaultProfile{
		Drop: 0.01, Duplicate: 0.01, Reorder: 0.01, Corrupt: 0.01,
	})
	rc.Chaos = &sc
	sess := cosim.DefaultSessionConfig()
	sess.RetransmitTimeout = 10 * time.Millisecond
	rc.Resilience = &sess
	return rc
}

// TestFarmSessionsMatchSolo is the farm's headline property: N sessions
// with mixed transports, half of them under chaos+resilience, all
// running concurrently on one farm, each produce virtual-time results
// bit-identical to the equivalent solo router.Run.
func TestFarmSessionsMatchSolo(t *testing.T) {
	const n = 8
	cfgs := make([]router.RunConfig, n)
	want := make([]outcome, n)
	for i := range cfgs {
		rc := quickConfig(i)
		if i%2 == 0 {
			rc.Transport = router.TransportTCP
		}
		if i%2 == 1 {
			rc = withChaos(rc, int64(1000+i))
		}
		cfgs[i] = rc
		res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
		if err != nil {
			t.Fatalf("solo run %d: %v", i, err)
		}
		if res.Conservation != nil {
			t.Fatalf("solo run %d: %v", i, res.Conservation)
		}
		want[i] = fingerprint(res)
	}

	f, err := New(Config{Workers: 4, QueueDepth: n, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sessions := make([]*Session, n)
	for i, rc := range cfgs {
		s, err := f.Submit(ctx, rc)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sessions[i] = s
	}
	for i, s := range sessions {
		res, err := s.Wait(ctx)
		if err != nil {
			t.Fatalf("session %d (%v): %v", i, s.State(), err)
		}
		if res.Conservation != nil {
			t.Fatalf("session %d: %v", i, res.Conservation)
		}
		if got := fingerprint(res); got != want[i] {
			t.Errorf("session %d diverged from solo run:\nfarm %+v\nsolo %+v", i, got, want[i])
		}
		if s.State() != StateDone {
			t.Errorf("session %d state %v after Wait", i, s.State())
		}
	}
}

// slowConfig is a run stretched by an emulated link latency, so a worker
// stays busy long enough for queue assertions to be deterministic.
func slowConfig() router.RunConfig {
	rc := router.DefaultRunConfig()
	rc.TB.PacketsPerPort = 4
	rc.TB.Period = 500
	rc.TSync = 200
	rc.LinkDelay = 500 * time.Microsecond
	return rc
}

func waitState(t *testing.T, s *Session, want SessionState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("session %d never reached %v (at %v)", s.ID(), want, s.State())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFarmQueueBackpressure proves a full queue pushes back: TrySubmit
// fails fast with ErrQueueFull and Submit honours its context.
func TestFarmQueueBackpressure(t *testing.T) {
	f, err := New(Config{Workers: 1, QueueDepth: 1, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	running, err := f.Submit(ctx, slowConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning) // the sole worker is now busy

	queued, err := f.Submit(ctx, slowConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Queue (depth 1) holds `queued`; admission must now push back.
	if _, err := f.TrySubmit(slowConfig()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit on full queue: got %v, want ErrQueueFull", err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	if _, err := f.Submit(shortCtx, slowConfig()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit with expiring ctx: got %v", err)
	}
	cancel()

	for _, s := range []*Session{running, queued} {
		if _, err := s.Result(); err != nil {
			t.Fatalf("session %d: %v", s.ID(), err)
		}
	}
}

// TestFarmDrainDuringActive proves Drain lets every accepted session
// finish cleanly while refusing new work.
func TestFarmDrainDuringActive(t *testing.T) {
	f, err := New(Config{Workers: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	var sessions []*Session
	for i := 0; i < 4; i++ {
		s, err := f.Submit(ctx, slowConfig())
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	waitState(t, sessions[0], StateRunning)

	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := f.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, s := range sessions {
		if s.State() != StateDone {
			t.Fatalf("session %d not done after Drain", i)
		}
		if _, err := s.Result(); err != nil {
			t.Fatalf("session %d failed during drain: %v", i, err)
		}
	}
	if _, err := f.Submit(ctx, slowConfig()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain: got %v, want ErrDraining", err)
	}
}

// TestFarmCancelSession proves one session can be cancelled mid-run
// without disturbing the farm.
func TestFarmCancelSession(t *testing.T) {
	f, err := New(Config{Workers: 2, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	rc := slowConfig()
	rc.Transport = router.TransportTCP
	victim, err := f.Submit(ctx, rc)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, victim, StateRunning)
	victim.Cancel()
	if _, err := victim.Result(); err == nil {
		t.Fatal("cancelled session reported success")
	} else if !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("cancelled session error does not say so: %v", err)
	}

	// The farm keeps serving.
	next, err := f.Submit(ctx, quickConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := next.Result(); err != nil {
		t.Fatalf("session after a cancellation: %v", err)
	}
}

// TestFarmCloseFailsQueued proves Close terminates queued sessions with
// ErrClosed instead of leaving their waiters hanging.
func TestFarmCloseFailsQueued(t *testing.T) {
	f, err := New(Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	running, err := f.Submit(ctx, slowConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := f.Submit(ctx, slowConfig())
	if err != nil {
		t.Fatal(err)
	}

	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := queued.Result(); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued session after Close: got %v, want ErrClosed", err)
	}
	if _, err := running.Result(); err == nil {
		t.Log("running session finished before the teardown reached it (fine)")
	}
	if _, err := f.Submit(ctx, quickConfig(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: got %v, want ErrClosed", err)
	}
}

// TestFarmRejectsInvalidConfig proves admission runs RunConfig.Validate.
func TestFarmRejectsInvalidConfig(t *testing.T) {
	f, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rc := router.DefaultRunConfig()
	sc := cosim.UniformScenario(1, cosim.FaultProfile{Drop: 0.5})
	rc.Chaos = &sc // chaos without resilience
	if _, err := f.Submit(context.Background(), rc); err == nil ||
		!strings.Contains(err.Error(), "Chaos without Resilience") {
		t.Fatalf("farm admitted an incoherent config: %v", err)
	}
}
