package farm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cosim"
	"repro/internal/obs"
	"repro/internal/router"
)

// outcome is the virtual-time fingerprint of one run: identical
// fingerprints mean identical simulated behaviour.
type outcome struct {
	r      router.Stats
	cycles uint64
	ticks  uint64
}

func fingerprint(res router.RunResult) outcome {
	return outcome{r: res.Router, cycles: res.BoardCycles, ticks: res.BoardSWTicks}
}

// quickSpec builds a small, fast workload variant as a serializable
// spec; idx decorrelates the traffic so different sessions do genuinely
// different work.
func quickSpec(idx int) SessionSpec {
	return SessionSpec{
		TSync: uint64(200 + 150*(idx%3)),
		TB: &TBSpec{
			PacketsPerPort: 2 + idx%3,
			Period:         uint64(400 + 100*(idx%4)),
			Seed:           int64(idx + 1),
		},
	}
}

func withChaos(s SessionSpec, seed int64) SessionSpec {
	s.Chaos = &ChaosSpec{Seed: seed, Drop: 0.01, Duplicate: 0.01, Reorder: 0.01, Corrupt: 0.01}
	s.Resilience = &ResilienceSpec{RetransmitTimeoutMS: 10}
	return s
}

// soloRun lowers a spec exactly as Submit would and executes it through
// the plain router.Run entry point — the single-session reference every
// farm test compares against.
func soloRun(t *testing.T, spec SessionSpec) router.RunResult {
	t.Helper()
	rc, err := spec.RunConfig()
	if err != nil {
		t.Fatalf("lowering spec: %v", err)
	}
	res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	if res.Conservation != nil {
		t.Fatalf("solo run: %v", res.Conservation)
	}
	return res
}

// TestFarmSessionsMatchSolo is the farm's headline property: N sessions
// with mixed transports, half of them under chaos+resilience, all
// running concurrently on one farm, each produce virtual-time results
// bit-identical to the equivalent solo router.Run — submitted as
// serializable SessionSpecs, so the same property holds for specs that
// crossed a wire.
func TestFarmSessionsMatchSolo(t *testing.T) {
	const n = 8
	specs := make([]SessionSpec, n)
	want := make([]outcome, n)
	for i := range specs {
		s := quickSpec(i)
		if i%2 == 0 {
			s.Transport = "tcp"
		}
		if i%2 == 1 {
			s = withChaos(s, int64(1000+i))
		}
		specs[i] = s
		want[i] = fingerprint(soloRun(t, s))
	}

	f, err := New(WithWorkers(4), WithQueueDepth(n), WithObs(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	sessions := make([]*Session, n)
	for i, s := range specs {
		sess, err := f.Submit(ctx, s)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sessions[i] = sess
	}
	for i, s := range sessions {
		res, err := s.Wait(ctx)
		if err != nil {
			t.Fatalf("session %d (%v): %v", i, s.State(), err)
		}
		if res.Conservation != nil {
			t.Fatalf("session %d: %v", i, res.Conservation)
		}
		if got := fingerprint(res); got != want[i] {
			t.Errorf("session %d diverged from solo run:\nfarm %+v\nsolo %+v", i, got, want[i])
		}
		if s.State() != StateDone {
			t.Errorf("session %d state %v after Wait", i, s.State())
		}
	}
}

// slowSpec is a run stretched by an emulated link latency, so a worker
// stays busy long enough for queue assertions to be deterministic.
func slowSpec() SessionSpec {
	return SessionSpec{
		TSync:       200,
		LinkDelayUS: 500,
		TB:          &TBSpec{PacketsPerPort: 4, Period: 500},
	}
}

func waitState(t *testing.T, s *Session, want SessionState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("session %d never reached %v (at %v)", s.ID(), want, s.State())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFarmQueueBackpressure proves a full queue pushes back: TrySubmit
// fails fast with ErrQueueFull and Submit honours its context.
func TestFarmQueueBackpressure(t *testing.T) {
	f, err := New(WithWorkers(1), WithQueueDepth(1), WithObs(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	running, err := f.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning) // the sole worker is now busy

	queued, err := f.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Queue (depth 1) holds `queued`; admission must now push back.
	if _, err := f.TrySubmit(slowSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit on full queue: got %v, want ErrQueueFull", err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	if _, err := f.Submit(shortCtx, slowSpec()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit with expiring ctx: got %v", err)
	}
	cancel()

	for _, s := range []*Session{running, queued} {
		if _, err := s.Result(); err != nil {
			t.Fatalf("session %d: %v", s.ID(), err)
		}
	}
}

// TestFarmDrainDuringActive proves Drain lets every accepted session
// finish cleanly while refusing new work.
func TestFarmDrainDuringActive(t *testing.T) {
	f, err := New(WithWorkers(2), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	var sessions []*Session
	for i := 0; i < 4; i++ {
		s, err := f.Submit(ctx, slowSpec())
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	waitState(t, sessions[0], StateRunning)

	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := f.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, s := range sessions {
		if s.State() != StateDone {
			t.Fatalf("session %d not done after Drain", i)
		}
		if _, err := s.Result(); err != nil {
			t.Fatalf("session %d failed during drain: %v", i, err)
		}
	}
	if !f.Snapshot().Draining {
		t.Error("Snapshot does not report draining after Drain")
	}
	if _, err := f.Submit(ctx, slowSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after Drain: got %v, want ErrDraining", err)
	}
}

// TestFarmCancelSession proves one session can be cancelled mid-run
// without disturbing the farm.
func TestFarmCancelSession(t *testing.T) {
	f, err := New(WithWorkers(2), WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ctx := context.Background()

	spec := slowSpec()
	spec.Transport = "tcp"
	victim, err := f.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, victim, StateRunning)
	victim.Cancel()
	if _, err := victim.Result(); err == nil {
		t.Fatal("cancelled session reported success")
	} else if !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("cancelled session error does not say so: %v", err)
	}

	// The farm keeps serving.
	next, err := f.Submit(ctx, quickSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := next.Result(); err != nil {
		t.Fatalf("session after a cancellation: %v", err)
	}
}

// TestFarmCloseFailsQueued proves Close terminates queued sessions with
// ErrClosed instead of leaving their waiters hanging.
func TestFarmCloseFailsQueued(t *testing.T) {
	f, err := New(WithWorkers(1), WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	running, err := f.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := f.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}

	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := queued.Result(); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued session after Close: got %v, want ErrClosed", err)
	}
	if _, err := running.Result(); err == nil {
		t.Log("running session finished before the teardown reached it (fine)")
	}
	if _, err := f.Submit(ctx, quickSpec(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: got %v, want ErrClosed", err)
	}
}

// TestFarmRejectsInvalidSpec proves admission validates before queueing:
// an incoherent spec fails at Submit, and the raw-config escape hatch
// runs RunConfig.Validate the same way.
func TestFarmRejectsInvalidSpec(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	spec := quickSpec(0)
	spec.Chaos = &ChaosSpec{Seed: 1, Drop: 0.5} // chaos without resilience
	if _, err := f.Submit(context.Background(), spec); err == nil ||
		!strings.Contains(err.Error(), "Chaos without Resilience") {
		t.Fatalf("farm admitted an incoherent spec: %v", err)
	}
	spec.Chaos = nil
	spec.Transport = "carrier-pigeon"
	if _, err := f.Submit(context.Background(), spec); err == nil ||
		!strings.Contains(err.Error(), "unknown transport") {
		t.Fatalf("farm admitted an unknown transport: %v", err)
	}

	rc := router.DefaultRunConfig()
	sc := cosim.UniformScenario(1, cosim.FaultProfile{Drop: 0.5})
	rc.Chaos = &sc // chaos without resilience, raw-config path
	if _, err := f.SubmitConfig(context.Background(), rc); err == nil ||
		!strings.Contains(err.Error(), "Chaos without Resilience") {
		t.Fatalf("farm admitted an incoherent config: %v", err)
	}
}
