// Package cpucore integrates the RV32 instruction-set simulator into the
// HDL simulation kernel as a cycle-timed CPU module: instructions retire
// in simulated time and loads/stores inside a memory-mapped I/O window
// become transactions on an hdlsim.Bus, blocking for bus latency like any
// hardware initiator.
//
// This is the *homogeneous* co-simulation style of the paper's related
// work — one simulation engine for hardware and software, the approach of
// the authors' own "Native ISS-SystemC Integration" (paper ref [20]) —
// provided here as the in-framework baseline to the paper's main
// contribution (the heterogeneous simulator↔board coupling): no sockets,
// no T_sync, perfect timing alignment, but also no real board, no RTOS
// and no real-time behaviour.
package cpucore

import (
	"fmt"

	"repro/internal/hdlsim"
	"repro/internal/iss"
)

// Config parameterizes a core.
type Config struct {
	// MemSize is the private memory size in bytes.
	MemSize int
	// MMIOBase/MMIOSize delimit the byte-address window routed to the bus
	// (word-aligned).
	MMIOBase, MMIOSize uint32
	// Batch is the number of instructions executed between simulated-time
	// charges: 1 is fully cycle-stepped; larger values trade timing
	// granularity inside the core for speed (the intra-core analogue of
	// the co-simulation's T_sync). Default 16.
	Batch int
	// MaxSteps bounds total executed instructions (0 = 100 million).
	MaxSteps uint64
}

// DefaultConfig returns a 64 KiB core with a 4 KiB MMIO window at
// 0x8000_0000.
func DefaultConfig() Config {
	return Config{MemSize: 64 * 1024, MMIOBase: 0x8000_0000, MMIOSize: 4096, Batch: 16}
}

// Core is the CPU module.
type Core struct {
	hdlsim.BaseModule
	CPU *iss.CPU

	cfg Config
	bus *hdlsim.Bus
	clk *hdlsim.Clock

	ctx    *hdlsim.Ctx // valid while the core's thread is executing
	halt   iss.HaltReason
	err    error
	done   *hdlsim.Event
	busOps uint64
}

// New instantiates a core on the simulator, connected to bus for its MMIO
// window. Load a program with Core.CPU.LoadProgram before running.
func New(s *hdlsim.Simulator, clk *hdlsim.Clock, bus *hdlsim.Bus, cfg Config) *Core {
	if cfg.Batch < 1 {
		cfg.Batch = 16
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 100_000_000
	}
	if cfg.MMIOBase%4 != 0 || cfg.MMIOSize%4 != 0 {
		panic("cpucore: MMIO window must be word-aligned")
	}
	c := &Core{
		BaseModule: hdlsim.BaseModule{Name: "cpu0"},
		CPU:        iss.New(cfg.MemSize),
		cfg:        cfg,
		bus:        bus,
		clk:        clk,
		done:       s.NewEvent("cpu0.done"),
	}
	c.CPU.MMIO = c
	s.Thread("cpu0.pipeline", c.run)
	return c
}

// Done returns the event notified when the program halts (ECALL/EBREAK,
// error, or step budget).
func (c *Core) Done() *hdlsim.Event { return c.done }

// Halted returns the final halt reason and error once Done has fired.
func (c *Core) Halted() (iss.HaltReason, error) { return c.halt, c.err }

// BusOps returns the number of MMIO transactions issued.
func (c *Core) BusOps() uint64 { return c.busOps }

func (c *Core) inWindow(addr uint32) bool {
	return addr >= c.cfg.MMIOBase && addr < c.cfg.MMIOBase+c.cfg.MMIOSize
}

// MMIOLoad implements iss.MMIOHandler: a blocking bus read.
func (c *Core) MMIOLoad(addr uint32) (uint32, bool, error) {
	if !c.inWindow(addr) {
		return 0, false, nil
	}
	if c.ctx == nil {
		return 0, false, fmt.Errorf("cpucore: MMIO access outside the core's thread")
	}
	c.busOps++
	v, err := c.bus.Read(c.ctx, addr>>2)
	return v, true, err
}

// MMIOStore implements iss.MMIOHandler: a blocking bus write.
// Sub-word stores are widened read-modify-write transactions.
func (c *Core) MMIOStore(addr uint32, size int, val uint32) (bool, error) {
	if !c.inWindow(addr) {
		return false, nil
	}
	if c.ctx == nil {
		return false, fmt.Errorf("cpucore: MMIO access outside the core's thread")
	}
	word := addr >> 2
	c.busOps++
	if size == 4 {
		return true, c.bus.Write(c.ctx, word, val)
	}
	cur, err := c.bus.Read(c.ctx, word)
	if err != nil {
		return true, err
	}
	c.busOps++
	shift := 8 * (addr & 3)
	var mask uint32
	if size == 1 {
		mask = 0xff << shift
	} else {
		shift = 8 * (addr & 2)
		mask = 0xffff << shift
	}
	merged := (cur &^ mask) | ((val << shift) & mask)
	return true, c.bus.Write(c.ctx, word, merged)
}

// run is the pipeline thread: execute a batch of instructions, then let
// simulated time advance by their cost-model cycles.
func (c *Core) run(ctx *hdlsim.Ctx) {
	c.ctx = ctx
	defer func() { c.ctx = nil }()
	var steps uint64
	for {
		before := c.CPU.Cycles
		for i := 0; i < c.cfg.Batch; i++ {
			halt, err := c.CPU.Step()
			steps++
			if err != nil || halt != iss.HaltNone {
				c.halt, c.err = halt, err
				if cycles := c.CPU.Cycles - before; cycles > 0 {
					ctx.WaitCycles(c.clk, cycles)
				}
				c.done.Notify()
				return
			}
			if steps >= c.cfg.MaxSteps {
				c.halt = iss.HaltMaxSteps
				c.done.Notify()
				return
			}
		}
		if cycles := c.CPU.Cycles - before; cycles > 0 {
			ctx.WaitCycles(c.clk, cycles)
		}
	}
}
