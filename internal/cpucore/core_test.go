package cpucore

import (
	"testing"

	"repro/internal/hdlsim"
	"repro/internal/iss"
	"repro/internal/sim"
)

// fixture builds a simulator with a core, a bus, and a RAM mapped into the
// MMIO window.
func fixture(t *testing.T, src string, batch int) (*hdlsim.Simulator, *hdlsim.Clock, *Core, *hdlsim.RAM) {
	t.Helper()
	s := hdlsim.NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	bus := hdlsim.NewBus(s, clk, "soc", 3)
	cfg := DefaultConfig()
	cfg.Batch = batch
	// Map 1 KiB of RAM at the start of the MMIO window (word addresses).
	ramBase := cfg.MMIOBase >> 2
	ram := hdlsim.NewRAM(ramBase, 256)
	if err := bus.Map(ramBase, 256, ram); err != nil {
		t.Fatal(err)
	}
	core := New(s, clk, bus, cfg)
	words, _, err := iss.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.CPU.LoadProgram(words, 0); err != nil {
		t.Fatal(err)
	}
	return s, clk, core, ram
}

const mmioProg = `
    li   t0, 0x80000000    # MMIO window base
    li   t1, 0xdeadbeef
    sw   t1, 0(t0)         # word write over the bus
    lw   a0, 0(t0)         # read it back over the bus
    li   t2, 0x55
    sb   t2, 5(t0)         # byte write: read-modify-write transaction
    lw   a1, 4(t0)
    ecall
`

func TestCoreMMIOThroughBus(t *testing.T) {
	s, _, core, ram := fixture(t, mmioProg, 4)
	fired := false
	s.Method("watch", func() { fired = true }, core.Done()).DontInitialize()
	if err := s.Run(sim.MS(1)); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("done event never fired")
	}
	halt, err := core.Halted()
	if err != nil || halt != iss.HaltECall {
		t.Fatalf("halt=%v err=%v", halt, err)
	}
	if core.CPU.X[10] != 0xdeadbeef {
		t.Fatalf("a0 = %#x, want the bus round trip", core.CPU.X[10])
	}
	if core.CPU.X[11] != 0x5500 {
		t.Fatalf("a1 = %#x, want byte-lane merge 0x5500", core.CPU.X[11])
	}
	// The RAM (a real bus target) holds the data.
	if v, err := ram.BusRead(0x80000000 >> 2); err != nil || v != 0xdeadbeef {
		t.Fatalf("ram word 0: %#x %v", v, err)
	}
	if core.BusOps() < 5 {
		t.Fatalf("bus ops %d, want ≥ 5", core.BusOps())
	}
}

func TestCoreTimingChargesInstructionsAndBus(t *testing.T) {
	// A pure-compute program: HDL time advanced ≈ CPU cost-model cycles.
	src := `
    li   t0, 0
    li   t1, 200
loop:
    addi t0, t0, 1
    blt  t0, t1, loop
    ecall`
	s, clk, core, _ := fixture(t, src, 1)
	var cyclesAtDone uint64
	s.Method("stopper", func() {
		cyclesAtDone = clk.Cycles()
		s.Stop()
	}, core.Done()).DontInitialize()
	if err := s.Run(sim.MS(1)); err != nil {
		t.Fatal(err)
	}
	if halt, err := core.Halted(); err != nil || halt != iss.HaltECall {
		t.Fatalf("halt=%v err=%v", halt, err)
	}
	cpuCycles := core.CPU.Cycles
	if cyclesAtDone < cpuCycles-2 || cyclesAtDone > cpuCycles+8 {
		t.Fatalf("HDL advanced %d cycles for %d CPU cycles", cyclesAtDone, cpuCycles)
	}
}

func TestCoreBatchTradesGranularityNotResult(t *testing.T) {
	run := func(batch int) (uint32, uint64) {
		s, clk, core, _ := fixture(t, mmioProg, batch)
		if err := s.Run(sim.MS(1)); err != nil {
			t.Fatal(err)
		}
		return core.CPU.X[10], clk.Cycles()
	}
	a1, _ := run(1)
	a16, _ := run(16)
	if a1 != a16 {
		t.Fatalf("results differ across batch sizes: %#x vs %#x", a1, a16)
	}
}

func TestCoreInteractsWithHDLPeripheral(t *testing.T) {
	// A register file target whose value an HDL process updates while the
	// program polls it: software spinning on hardware in one engine.
	src := `
    li   t0, 0x80000400    # peripheral register (word 0x20000100)
poll:
    lw   a0, 0(t0)
    beqz a0, poll
    ecall`
	s := hdlsim.NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	bus := hdlsim.NewBus(s, clk, "soc", 2)
	reg := hdlsim.NewRAM(0x80000400>>2, 1)
	if err := bus.Map(0x80000400>>2, 1, reg); err != nil {
		t.Fatal(err)
	}
	core := New(s, clk, bus, DefaultConfig())
	words, _, err := iss.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	core.CPU.LoadProgram(words, 0)
	// The "peripheral" raises the flag at cycle 300.
	s.Thread("peripheral", func(c *hdlsim.Ctx) {
		c.WaitCycles(clk, 300)
		if err := reg.BusWrite(0x80000400>>2, 7); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(sim.MS(1)); err != nil {
		t.Fatal(err)
	}
	if halt, err := core.Halted(); err != nil || halt != iss.HaltECall {
		t.Fatalf("halt=%v err=%v", halt, err)
	}
	if core.CPU.X[10] != 7 {
		t.Fatalf("a0 = %d", core.CPU.X[10])
	}
	if clk.Cycles() < 300 {
		t.Fatalf("program finished at cycle %d, before the peripheral fired", clk.Cycles())
	}
}

func TestCoreBusErrorSurfaces(t *testing.T) {
	// Access inside the MMIO window but outside any mapping: the bus
	// error must halt the core with an error, not crash the simulator.
	src := `
    li  t0, 0x80000800
    lw  a0, 0(t0)
    ecall`
	s, _, core, _ := fixture(t, src, 1)
	if err := s.Run(sim.MS(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Halted(); err == nil {
		t.Fatal("unmapped bus access did not error")
	}
}

func TestCoreMisalignedWindowPanics(t *testing.T) {
	s := hdlsim.NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	bus := hdlsim.NewBus(s, clk, "b", 1)
	cfg := DefaultConfig()
	cfg.MMIOBase = 0x80000001
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned window accepted")
		}
	}()
	New(s, clk, bus, cfg)
}
