package cpucore

import (
	"testing"

	"repro/internal/hdlsim"
	"repro/internal/iss"
	"repro/internal/sim"
)

// BenchmarkCoreComputeThroughput measures instructions/second of the
// cycle-timed core on a pure-compute loop (no bus traffic).
func BenchmarkCoreComputeThroughput(b *testing.B) {
	src := `
    li   t0, 0
    li   t1, 1000000000
loop:
    addi t0, t0, 1
    blt  t0, t1, loop
    ecall`
	s := hdlsim.NewSimulator("b")
	clk := s.NewClock("clk", sim.NS(10))
	bus := hdlsim.NewBus(s, clk, "b", 1)
	cfg := DefaultConfig()
	cfg.Batch = 64
	core := New(s, clk, bus, cfg)
	words, _, err := iss.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	core.CPU.LoadProgram(words, 0)
	if err := s.Elaborate(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	// One benchmark iteration ≈ one clock cycle of the SoC; instructions
	// retire inside.
	if err := s.RunCycles(clk, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(core.CPU.Steps)/float64(b.N), "instr/cycle")
}

// BenchmarkCoreMMIORoundTrip measures a load+store pair over the bus.
func BenchmarkCoreMMIORoundTrip(b *testing.B) {
	src := `
    li   t0, 0x80000000
loop:
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
    j    loop`
	s := hdlsim.NewSimulator("b")
	clk := s.NewClock("clk", sim.NS(10))
	bus := hdlsim.NewBus(s, clk, "b", 2)
	ram := hdlsim.NewRAM(0x80000000>>2, 4)
	if err := bus.Map(0x80000000>>2, 4, ram); err != nil {
		b.Fatal(err)
	}
	core := New(s, clk, bus, DefaultConfig())
	words, _, err := iss.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	core.CPU.LoadProgram(words, 0)
	if err := s.Elaborate(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := s.RunCycles(clk, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(core.BusOps())/float64(b.N), "busops/cycle")
}
