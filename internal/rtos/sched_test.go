package rtos

import (
	"math/rand"
	"testing"
)

func TestJoinWaitsForExit(t *testing.T) {
	k := NewKernel(testCfg())
	var order []string
	worker := k.CreateThread("worker", 12, func(c *ThreadCtx) {
		c.Charge(700)
		order = append(order, "worker-done")
		c.Exit()
	})
	k.CreateThread("parent", 5, func(c *ThreadCtx) {
		c.Join(worker)
		order = append(order, "parent-resumed")
		c.Exit()
	})
	k.Advance(10000)
	if len(order) != 2 || order[0] != "worker-done" || order[1] != "parent-resumed" {
		t.Fatalf("order %v", order)
	}
}

func TestJoinExitedThreadReturnsImmediately(t *testing.T) {
	k := NewKernel(testCfg())
	quick := k.CreateThread("quick", 3, func(c *ThreadCtx) { c.Exit() })
	joined := false
	k.CreateThread("late", 10, func(c *ThreadCtx) {
		c.Charge(500) // let quick exit first
		c.Join(quick)
		joined = true
		c.Exit()
	})
	k.Advance(10000)
	if !joined {
		t.Fatal("join on exited thread blocked")
	}
}

func TestJoinBodyReturnAlsoWakes(t *testing.T) {
	k := NewKernel(testCfg())
	// Worker returns from its body instead of calling Exit.
	worker := k.CreateThread("w", 12, func(c *ThreadCtx) { c.Charge(300) })
	resumed := false
	k.CreateThread("j", 5, func(c *ThreadCtx) {
		c.Join(worker)
		resumed = true
		c.Exit()
	})
	k.Advance(10000)
	if !resumed {
		t.Fatal("joiner never woke after body return")
	}
}

func TestJoinSelfPanics(t *testing.T) {
	k := NewKernel(testCfg())
	panicked := false
	k.CreateThread("narcissist", 5, func(c *ThreadCtx) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		c.Join(c.Thread())
	})
	k.Advance(1000)
	if !panicked {
		t.Fatal("self-join accepted")
	}
}

func TestSetPriorityRequeues(t *testing.T) {
	cfg := testCfg()
	cfg.TimesliceTicks = 0
	k := NewKernel(cfg)
	var order []string
	mk := func(name string, prio int) *Thread {
		return k.CreateThread(name, prio, func(c *ThreadCtx) {
			c.Charge(200)
			order = append(order, name)
			c.Exit()
		})
	}
	a := mk("a", 20)
	mk("b", 10)
	// Promote a above b before anything runs.
	k.SetPriority(a, 2)
	k.Advance(10000)
	if len(order) != 2 || order[0] != "a" {
		t.Fatalf("order %v, want a first after promotion", order)
	}
	// Validation.
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range priority accepted")
		}
	}()
	k.SetPriority(a, NumPriorities)
}

// TestSchedulerPriorityProperty: with timeslicing off and no blocking,
// threads complete in strict priority order regardless of creation order.
func TestSchedulerPriorityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		cfg := testCfg()
		cfg.TimesliceTicks = 0
		k := NewKernel(cfg)
		n := 2 + rng.Intn(8)
		prios := rng.Perm(NumPriorities)[:n]
		var completions []int
		for i := 0; i < n; i++ {
			prio := prios[i]
			charge := uint64(100 + rng.Intn(900))
			k.CreateThread("t", prio, func(c *ThreadCtx) {
				c.Charge(charge)
				completions = append(completions, prio)
				c.Exit()
			})
		}
		k.Advance(1_000_000)
		if len(completions) != n {
			t.Fatalf("trial %d: %d of %d completed", trial, len(completions), n)
		}
		for i := 1; i < len(completions); i++ {
			if completions[i] < completions[i-1] {
				t.Fatalf("trial %d: priority inversion in completion order %v (prios %v)",
					trial, completions, prios)
			}
		}
	}
}

// TestTickAccountingProperty: the SW tick advances by exactly
// granted-cycles / CyclesPerTick / divider, whatever the quantum slicing.
func TestTickAccountingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		cfg := testCfg()
		cfg.CyclesPerTick = uint64(10 + rng.Intn(200))
		cfg.HWTicksPerSWTick = uint64(1 + rng.Intn(4))
		k := NewKernel(cfg)
		var total uint64
		for q := 0; q < 10; q++ {
			grant := uint64(1 + rng.Intn(5000))
			k.Advance(grant)
			total += grant
		}
		wantHW := total / cfg.CyclesPerTick
		if k.HWTick() != wantHW {
			t.Fatalf("trial %d: hw ticks %d, want %d (total %d cycles / %d)",
				trial, k.HWTick(), wantHW, total, cfg.CyclesPerTick)
		}
		if k.SWTick() != wantHW/cfg.HWTicksPerSWTick {
			t.Fatalf("trial %d: sw ticks %d, want %d", trial, k.SWTick(), wantHW/cfg.HWTicksPerSWTick)
		}
		if k.Cycles() != total {
			t.Fatalf("trial %d: cycles %d, want %d", trial, k.Cycles(), total)
		}
	}
}
