package rtos

import "testing"

// BenchmarkAdvanceIdle measures the cost of pure virtual-time advance with
// nothing runnable — the floor every co-simulation quantum pays.
func BenchmarkAdvanceIdle(b *testing.B) {
	k := NewKernel(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Advance(1000) // 10 ticks
	}
	b.ReportMetric(float64(k.Cycles())/float64(b.N), "cycles/op")
}

// BenchmarkAdvanceBusyThread measures a quantum spent charging one thread.
func BenchmarkAdvanceBusyThread(b *testing.B) {
	k := NewKernel(DefaultConfig())
	k.CreateThread("spin", 10, func(c *ThreadCtx) {
		for {
			c.Charge(1000)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Advance(1000)
	}
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkContextSwitchPingPong measures mailbox handoff between two
// threads: the kernel's rendezvous fast path.
func BenchmarkContextSwitchPingPong(b *testing.B) {
	k := NewKernel(DefaultConfig())
	ping := k.NewMailbox("ping", 1)
	pong := k.NewMailbox("pong", 1)
	k.CreateThread("a", 10, func(c *ThreadCtx) {
		for {
			ping.Put(c, []uint32{1})
			pong.Get(c)
		}
	})
	k.CreateThread("b", 10, func(c *ThreadCtx) {
		for {
			ping.Get(c)
			c.Charge(10)
			pong.Put(c, []uint32{2})
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Advance(1000)
	}
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkInterruptDispatch measures the ISR+DSR path.
func BenchmarkInterruptDispatch(b *testing.B) {
	k := NewKernel(DefaultConfig())
	served := 0
	k.AttachInterrupt(1, nil, func() { served++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PostIRQ(1)
		k.Advance(100)
	}
	if served != b.N {
		b.Fatalf("served %d of %d", served, b.N)
	}
}
