package rtos

// Flag is an event-flag group, the eCos cyg_flag equivalent: a 32-bit mask
// threads can wait on with AND/OR semantics. Device DSRs set bits; service
// threads wait for combinations.
type Flag struct {
	k    *Kernel
	name string
	bits uint32
	wq   waitQueue

	// waiters' conditions, keyed by thread, checked on every Set.
	conds map[*Thread]flagCond
}

type flagCond struct {
	mask  uint32
	all   bool
	clear bool
}

// NewFlag creates an empty flag group.
func (k *Kernel) NewFlag(name string) *Flag {
	return &Flag{k: k, name: name, conds: make(map[*Thread]flagCond)}
}

// Peek returns the current bits without blocking.
func (f *Flag) Peek() uint32 { return f.bits }

// Set ORs bits into the group and wakes every waiter whose condition now
// holds. Safe from DSR context.
func (f *Flag) Set(bits uint32) {
	f.bits |= bits
	// Wake satisfied waiters in FIFO wait order. Ranging over the conds
	// map here would ready equal-priority threads in a randomized order
	// and diverge the schedule between runs. Walk a snapshot of the wait
	// queue since wakes mutate it.
	waiters := append([]*Thread(nil), f.wq.q...)
	for _, th := range waiters {
		cond, ok := f.conds[th]
		if !ok || !f.satisfied(cond) {
			continue
		}
		delete(f.conds, th)
		if th.state == ThreadBlocked && f.wq.remove(th) {
			f.k.ready(th)
		}
	}
}

// Clear ANDs-NOT bits out of the group.
func (f *Flag) Clear(bits uint32) { f.bits &^= bits }

func (f *Flag) satisfied(c flagCond) bool {
	if c.all {
		return f.bits&c.mask == c.mask
	}
	return f.bits&c.mask != 0
}

// WaitAny blocks until any bit of mask is set; returns the bits observed.
// If clear is true the observed mask bits are cleared atomically on wake
// (consume semantics).
func (f *Flag) WaitAny(c *ThreadCtx, mask uint32, clear bool) uint32 {
	return f.wait(c, flagCond{mask: mask, all: false, clear: clear})
}

// WaitAll blocks until every bit of mask is set.
func (f *Flag) WaitAll(c *ThreadCtx, mask uint32, clear bool) uint32 {
	return f.wait(c, flagCond{mask: mask, all: true, clear: clear})
}

func (f *Flag) wait(c *ThreadCtx, cond flagCond) uint32 {
	for !f.satisfied(cond) {
		f.conds[c.t] = cond
		c.block(&f.wq)
	}
	got := f.bits & cond.mask
	if cond.clear {
		f.bits &^= cond.mask
	}
	return got
}
