package rtos

import "fmt"

// Mutex is a blocking mutual-exclusion lock with FIFO handoff and
// optional priority inheritance (eCos's cyg_mutex with the inheritance
// protocol): while a higher-priority thread waits, the owner is boosted
// to the highest waiting priority, so a medium-priority thread cannot
// starve the critical section — the classic Mars-Pathfinder scenario.
type Mutex struct {
	k       *Kernel
	name    string
	owner   *Thread
	wq      waitQueue
	inherit bool
	basePri int // owner's original priority while boosted
	boosted bool
}

// NewMutex creates a mutex without priority inheritance.
func (k *Kernel) NewMutex(name string) *Mutex { return &Mutex{k: k, name: name} }

// NewMutexPI creates a mutex with the priority-inheritance protocol.
func (k *Kernel) NewMutexPI(name string) *Mutex {
	return &Mutex{k: k, name: name, inherit: true}
}

// Lock acquires the mutex, blocking while another thread holds it.
func (m *Mutex) Lock(c *ThreadCtx) {
	for m.owner != nil && m.owner != c.t {
		if m.inherit && c.t.prio < m.owner.prio {
			if !m.boosted {
				m.boosted = true
				m.basePri = m.owner.prio
			}
			m.k.SetPriority(m.owner, c.t.prio)
		}
		c.block(&m.wq)
	}
	if m.owner == c.t {
		panic(fmt.Sprintf("rtos: mutex %q: recursive lock by %q", m.name, c.t.name))
	}
	m.owner = c.t
}

// Unlock releases the mutex, restores an inherited priority, and readies
// the oldest waiter.
func (m *Mutex) Unlock(c *ThreadCtx) {
	if m.owner != c.t {
		panic(fmt.Sprintf("rtos: mutex %q: unlock by non-owner %q", m.name, c.t.name))
	}
	if m.boosted {
		m.boosted = false
		m.k.SetPriority(c.t, m.basePri)
	}
	m.owner = nil
	m.wq.wakeOne(m.k)
	if m.inherit {
		// The releasing thread may have been deprioritized below a woken
		// waiter; force a scheduling decision at the next safe point.
		m.k.needResched = true
	}
}

// TryLock acquires the mutex without blocking; reports success.
func (m *Mutex) TryLock(c *ThreadCtx) bool {
	if m.owner != nil {
		return false
	}
	m.owner = c.t
	return true
}

// Owner returns the current holder (nil if free).
func (m *Mutex) Owner() *Thread { return m.owner }

// Semaphore is a counting semaphore.
type Semaphore struct {
	k     *Kernel
	name  string
	count int
	wq    waitQueue
}

// NewSemaphore creates a semaphore with an initial count.
func (k *Kernel) NewSemaphore(name string, initial int) *Semaphore {
	return &Semaphore{k: k, name: name, count: initial}
}

// Wait decrements the count, blocking while it is zero.
func (s *Semaphore) Wait(c *ThreadCtx) {
	for s.count == 0 {
		c.block(&s.wq)
	}
	s.count--
}

// TryWait decrements without blocking; reports success.
func (s *Semaphore) TryWait() bool {
	if s.count == 0 {
		return false
	}
	s.count--
	return true
}

// Post increments the count and readies one waiter. Post is safe from DSR
// context (it never blocks), which is how device drivers signal their
// service threads.
func (s *Semaphore) Post() {
	s.count++
	s.wq.wakeOne(s.k)
}

// Count returns the current count.
func (s *Semaphore) Count() int { return s.count }

// Mailbox is a bounded FIFO of word payloads, the eCos cyg_mbox
// equivalent used by drivers to hand data to application threads.
type Mailbox struct {
	k        *Kernel
	name     string
	cap      int
	q        [][]uint32
	notEmpty waitQueue
	notFull  waitQueue
	dropped  uint64
}

// NewMailbox creates a mailbox holding at most capacity messages.
func (k *Kernel) NewMailbox(name string, capacity int) *Mailbox {
	if capacity < 1 {
		panic(fmt.Sprintf("rtos: mailbox %q: capacity must be ≥ 1", name))
	}
	return &Mailbox{k: k, name: name, cap: capacity}
}

// Put delivers msg, blocking while the mailbox is full.
func (mb *Mailbox) Put(c *ThreadCtx, msg []uint32) {
	for len(mb.q) >= mb.cap {
		c.block(&mb.notFull)
	}
	mb.q = append(mb.q, msg)
	mb.notEmpty.wakeOne(mb.k)
}

// TryPut delivers msg without blocking; reports success. Safe from DSR
// context.
func (mb *Mailbox) TryPut(msg []uint32) bool {
	if len(mb.q) >= mb.cap {
		mb.dropped++
		return false
	}
	mb.q = append(mb.q, msg)
	mb.notEmpty.wakeOne(mb.k)
	return true
}

// Get removes the oldest message, blocking while the mailbox is empty.
func (mb *Mailbox) Get(c *ThreadCtx) []uint32 {
	for len(mb.q) == 0 {
		c.block(&mb.notEmpty)
	}
	msg := mb.q[0]
	mb.q = mb.q[1:]
	mb.notFull.wakeOne(mb.k)
	return msg
}

// GetTimeout is Get with a bound of n SW ticks; ok is false on timeout.
func (mb *Mailbox) GetTimeout(c *ThreadCtx, n uint64) ([]uint32, bool) {
	for len(mb.q) == 0 {
		if !c.blockTimeout(&mb.notEmpty, n) {
			return nil, false
		}
	}
	msg := mb.q[0]
	mb.q = mb.q[1:]
	mb.notFull.wakeOne(mb.k)
	return msg, true
}

// TryGet removes the oldest message without blocking.
func (mb *Mailbox) TryGet() ([]uint32, bool) {
	if len(mb.q) == 0 {
		return nil, false
	}
	msg := mb.q[0]
	mb.q = mb.q[1:]
	mb.notFull.wakeOne(mb.k)
	return msg, true
}

// Len returns the number of queued messages.
func (mb *Mailbox) Len() int { return len(mb.q) }

// Dropped returns how many TryPut deliveries were refused because the
// mailbox was full.
func (mb *Mailbox) Dropped() uint64 { return mb.dropped }
