package rtos

import (
	"bytes"
	"strings"
	"testing"
)

func TestDescribeListsThreads(t *testing.T) {
	k := NewKernel(testCfg())
	k.CreateThread("app", 10, func(c *ThreadCtx) {
		c.Charge(500)
		k.NewSemaphore("park", 0).Wait(c)
	})
	k.CreateThread("chan", 25, func(c *ThreadCtx) {
		for {
			c.Charge(10)
			c.Yield()
		}
	}, Comm())
	if err := k.RegisterDriver(&stubDriver{name: "/dev/x"}); err != nil {
		t.Fatal(err)
	}
	k.Advance(2000)
	var buf bytes.Buffer
	if err := k.Describe(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"state=idle",
		"app", "blocked",
		"chan", "comm",
		"/dev/x",
		"threads (2):",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
	k.Shutdown()
}
