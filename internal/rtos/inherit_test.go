package rtos

import "testing"

// priorityInversionScenario builds the classic three-thread setup:
// low acquires the lock, high then needs it, medium runs CPU-bound in
// between. Returns the completion order.
func priorityInversionScenario(t *testing.T, pi bool) []string {
	t.Helper()
	cfg := testCfg()
	cfg.TimesliceTicks = 0
	k := NewKernel(cfg)
	var mu *Mutex
	if pi {
		mu = k.NewMutexPI("m")
	} else {
		mu = k.NewMutex("m")
	}
	var order []string

	// Low starts first (phase 0), grabs the lock, then computes a while.
	low := k.CreateThread("low", 20, func(c *ThreadCtx) {
		mu.Lock(c)
		c.Charge(3000) // long critical section
		mu.Unlock(c)
		order = append(order, "low")
		c.Exit()
	})
	_ = low
	// High wakes shortly after and contends for the lock.
	k.CreateThread("high", 2, func(c *ThreadCtx) {
		c.Sleep(2) // let low grab the lock
		mu.Lock(c)
		mu.Unlock(c)
		order = append(order, "high")
		c.Exit()
	})
	// Medium wakes at the same time as high and is pure CPU: without
	// inheritance it preempts low (priority 10 < 20) and starves the
	// critical section, delaying high.
	k.CreateThread("medium", 10, func(c *ThreadCtx) {
		c.Sleep(2)
		c.Charge(20000)
		order = append(order, "medium")
		c.Exit()
	})
	k.Advance(1_000_000)
	if len(order) != 3 {
		t.Fatalf("only %d threads completed: %v", len(order), order)
	}
	return order
}

func TestPriorityInversionWithoutInheritance(t *testing.T) {
	order := priorityInversionScenario(t, false)
	// The inversion: medium finishes before high even though high
	// outranks it, because low (holding the lock) cannot run.
	if order[0] != "medium" {
		t.Fatalf("expected the inversion (medium first), got %v", order)
	}
}

func TestPriorityInheritanceBreaksInversion(t *testing.T) {
	order := priorityInversionScenario(t, true)
	// With inheritance, low is boosted to high's priority, finishes the
	// critical section, high takes the lock — both before medium's long
	// compute completes.
	if order[len(order)-1] != "medium" {
		t.Fatalf("inheritance failed to break the inversion: %v", order)
	}
	if order[0] != "high" && order[1] != "high" {
		t.Fatalf("high did not finish promptly: %v", order)
	}
}

func TestInheritanceRestoresPriority(t *testing.T) {
	cfg := testCfg()
	cfg.TimesliceTicks = 0
	k := NewKernel(cfg)
	mu := k.NewMutexPI("m")
	var lowPrioDuring, lowPrioAfter int
	low := k.CreateThread("low", 20, func(c *ThreadCtx) {
		mu.Lock(c)
		c.Charge(1000)
		lowPrioDuring = c.Thread().Priority()
		mu.Unlock(c)
		c.Charge(10)
		lowPrioAfter = c.Thread().Priority()
		c.Exit()
	})
	_ = low
	k.CreateThread("high", 2, func(c *ThreadCtx) {
		c.Sleep(1)
		mu.Lock(c)
		mu.Unlock(c)
		c.Exit()
	})
	k.Advance(1_000_000)
	if lowPrioDuring != 2 {
		t.Fatalf("owner priority during contention = %d, want boosted 2", lowPrioDuring)
	}
	if lowPrioAfter != 20 {
		t.Fatalf("owner priority after unlock = %d, want restored 20", lowPrioAfter)
	}
}
