package rtos

import (
	"testing"
)

func TestMutexExclusionAndFIFO(t *testing.T) {
	k := NewKernel(testCfg())
	mu := k.NewMutex("m")
	var order []string
	inCritical := 0
	worker := func(name string) func(*ThreadCtx) {
		return func(c *ThreadCtx) {
			mu.Lock(c)
			inCritical++
			if inCritical != 1 {
				t.Errorf("%s: %d threads in critical section", name, inCritical)
			}
			c.Charge(300)
			inCritical--
			order = append(order, name)
			mu.Unlock(c)
			c.Exit()
		}
	}
	// Same priority: the first to run grabs the lock; others queue FIFO.
	k.CreateThread("w1", 10, worker("w1"))
	k.CreateThread("w2", 10, worker("w2"))
	k.CreateThread("w3", 10, worker("w3"))
	k.Advance(10000)
	if len(order) != 3 {
		t.Fatalf("completions %v", order)
	}
	if mu.Owner() != nil {
		t.Fatal("mutex still owned at end")
	}
}

func TestMutexTryLock(t *testing.T) {
	k := NewKernel(testCfg())
	mu := k.NewMutex("m")
	var got []bool
	// Equal priorities so the 5-tick timeslice interleaves them: a locks
	// and burns its slice; b then observes the held lock; once a's next
	// slice releases it, b's second TryLock succeeds.
	k.CreateThread("a", 5, func(c *ThreadCtx) {
		mu.Lock(c)
		c.Charge(500)
		mu.Unlock(c)
		c.Exit()
	})
	k.CreateThread("b", 5, func(c *ThreadCtx) {
		c.Charge(100) // a holds the lock now
		got = append(got, mu.TryLock(c))
		c.Charge(1000) // a released by now
		got = append(got, mu.TryLock(c))
		mu.Unlock(c)
		c.Exit()
	})
	k.Advance(10000)
	if len(got) != 2 || got[0] || !got[1] {
		t.Fatalf("TryLock results %v, want [false true]", got)
	}
}

func TestMutexErrors(t *testing.T) {
	k := NewKernel(testCfg())
	mu := k.NewMutex("m")
	var recovered []string
	k.CreateThread("bad", 5, func(c *ThreadCtx) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					recovered = append(recovered, "unlock-unowned")
				}
			}()
			mu.Unlock(c)
		}()
		mu.Lock(c)
		func() {
			defer func() {
				if r := recover(); r != nil {
					recovered = append(recovered, "recursive")
				}
			}()
			mu.Lock(c)
		}()
		mu.Unlock(c)
		c.Exit()
	})
	k.Advance(1000)
	if len(recovered) != 2 {
		t.Fatalf("recovered %v, want both error panics", recovered)
	}
}

func TestSemaphoreCounting(t *testing.T) {
	k := NewKernel(testCfg())
	sem := k.NewSemaphore("s", 2)
	acquired := 0
	k.CreateThread("c", 5, func(c *ThreadCtx) {
		sem.Wait(c)
		acquired++
		sem.Wait(c)
		acquired++
		sem.Wait(c) // blocks: count exhausted
		acquired++
		c.Exit()
	})
	k.Advance(500)
	if acquired != 2 {
		t.Fatalf("acquired %d with initial count 2, want 2", acquired)
	}
	sem.Post()
	k.Advance(500)
	if acquired != 3 {
		t.Fatalf("acquired %d after post, want 3", acquired)
	}
	if !sem.TryWait() == true && sem.Count() != 0 {
		t.Fatal("count bookkeeping wrong")
	}
}

func TestSemaphoreWakesHighestPriorityEventually(t *testing.T) {
	k := NewKernel(testCfg())
	sem := k.NewSemaphore("s", 0)
	var order []string
	mk := func(name string, prio int) {
		k.CreateThread(name, prio, func(c *ThreadCtx) {
			sem.Wait(c)
			order = append(order, name)
			c.Exit()
		})
	}
	mk("first", 10)
	mk("second", 10)
	k.Advance(200) // both blocked now
	sem.Post()
	sem.Post()
	k.Advance(500)
	// FIFO wake order.
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("wake order %v", order)
	}
}

func TestMailboxProducerConsumer(t *testing.T) {
	k := NewKernel(testCfg())
	mb := k.NewMailbox("mb", 4)
	var got []uint32
	k.CreateThread("producer", 8, func(c *ThreadCtx) {
		for i := uint32(0); i < 10; i++ {
			c.Charge(50)
			mb.Put(c, []uint32{i})
		}
		c.Exit()
	})
	k.CreateThread("consumer", 9, func(c *ThreadCtx) {
		for i := 0; i < 10; i++ {
			msg := mb.Get(c)
			c.Charge(20)
			got = append(got, msg[0])
		}
		c.Exit()
	})
	k.Advance(100000)
	if len(got) != 10 {
		t.Fatalf("consumed %d messages: %v", len(got), got)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestMailboxBackpressure(t *testing.T) {
	k := NewKernel(testCfg())
	mb := k.NewMailbox("mb", 2)
	puts := 0
	k.CreateThread("producer", 5, func(c *ThreadCtx) {
		for i := uint32(0); i < 5; i++ {
			mb.Put(c, []uint32{i})
			puts++
		}
		c.Exit()
	})
	k.Advance(1000)
	// Nothing consumes: producer must be stuck after filling capacity 2
	// (it blocks inside the 3rd Put, so puts==2).
	if puts != 2 {
		t.Fatalf("producer completed %d puts with capacity 2 and no consumer", puts)
	}
	if mb.Len() != 2 {
		t.Fatalf("mailbox holds %d", mb.Len())
	}
	k.Shutdown()
}

func TestMailboxTryPutDropsWhenFull(t *testing.T) {
	k := NewKernel(testCfg())
	mb := k.NewMailbox("mb", 2)
	if !mb.TryPut([]uint32{1}) || !mb.TryPut([]uint32{2}) {
		t.Fatal("TryPut failed below capacity")
	}
	if mb.TryPut([]uint32{3}) {
		t.Fatal("TryPut succeeded beyond capacity")
	}
	if mb.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", mb.Dropped())
	}
	if m, ok := mb.TryGet(); !ok || m[0] != 1 {
		t.Fatalf("TryGet = %v %v", m, ok)
	}
}

func TestMailboxGetTimeout(t *testing.T) {
	k := NewKernel(testCfg())
	mb := k.NewMailbox("mb", 2)
	var gotOK, gotTimeout bool
	var timeoutTick uint64
	k.CreateThread("c", 5, func(c *ThreadCtx) {
		_, ok := mb.GetTimeout(c, 5)
		gotTimeout = !ok
		timeoutTick = k.SWTick()
		msg, ok := mb.GetTimeout(c, 100)
		gotOK = ok && msg[0] == 42
		c.Exit()
	})
	k.AlarmAfter(10, func() { mb.TryPut([]uint32{42}) })
	k.Advance(100 * 100)
	if !gotTimeout {
		t.Fatal("first GetTimeout did not time out")
	}
	if timeoutTick != 5 {
		t.Fatalf("timeout at tick %d, want 5", timeoutTick)
	}
	if !gotOK {
		t.Fatal("second GetTimeout missed the message")
	}
}

func TestMailboxZeroCapacityPanics(t *testing.T) {
	k := NewKernel(testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity mailbox accepted")
		}
	}()
	k.NewMailbox("bad", 0)
}

func TestDriverRegistry(t *testing.T) {
	k := NewKernel(testCfg())
	d := &stubDriver{name: "/dev/null0"}
	if err := k.RegisterDriver(d); err != nil {
		t.Fatal(err)
	}
	if !d.inited {
		t.Fatal("Init not called at registration")
	}
	if err := k.RegisterDriver(&stubDriver{name: "/dev/null0"}); err == nil {
		t.Fatal("duplicate driver name accepted")
	}
	got, err := k.Lookup("/dev/null0")
	if err != nil || got != d {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	if _, err := k.Lookup("/dev/missing"); err == nil {
		t.Fatal("Lookup of missing driver succeeded")
	}
	if k.Drivers() != 1 {
		t.Fatalf("driver count %d", k.Drivers())
	}
	k.Advance(10)
	if err := k.RegisterDriver(&stubDriver{name: "/dev/late"}); err == nil {
		t.Fatal("registration after boot accepted")
	}
}

type stubDriver struct {
	name   string
	inited bool
}

func (d *stubDriver) Name() string         { return d.name }
func (d *stubDriver) Init(k *Kernel) error { d.inited = true; return nil }
func (d *stubDriver) Read(c *ThreadCtx, off uint32, buf []uint32) (int, error) {
	return len(buf), nil
}
func (d *stubDriver) Write(c *ThreadCtx, off uint32, buf []uint32) (int, error) {
	return len(buf), nil
}
