package rtos

import "container/heap"

// alarm is one pending SW-tick-scheduled callback.
type alarm struct {
	at  uint64 // absolute SW tick
	seq uint64
	fn  func()
}

type alarmHeap []*alarm

func (h alarmHeap) Len() int { return len(h) }
func (h alarmHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h alarmHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *alarmHeap) Push(x any)   { *h = append(*h, x.(*alarm)) }
func (h *alarmHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return a
}

// alarmQueue is the kernel's alarm list, keyed by absolute SW tick, with
// FIFO ordering among alarms for the same tick (deterministic expiry).
type alarmQueue struct {
	h   alarmHeap
	seq uint64
}

func (q *alarmQueue) add(atTick uint64, fn func()) {
	heap.Push(&q.h, &alarm{at: atTick, seq: q.seq, fn: fn})
	q.seq++
}

func (q *alarmQueue) len() int { return len(q.h) }

// peek returns the earliest pending alarm's absolute SW tick.
func (q *alarmQueue) peek() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// expire runs every alarm due at or before tick. Alarm callbacks run in
// timer-ISR context: they may ready threads but must not block.
func (q *alarmQueue) expire(k *Kernel, tick uint64) {
	for len(q.h) > 0 && q.h[0].at <= tick {
		a := heap.Pop(&q.h).(*alarm)
		a.fn()
	}
}

// AlarmAfter schedules fn to run in timer context after n SW ticks; the
// public form used by board services and tests.
func (k *Kernel) AlarmAfter(n uint64, fn func()) {
	k.alarms.add(k.swTick+n, fn)
}
