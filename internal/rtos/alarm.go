package rtos

import "container/heap"

// alarm is one pending SW-tick-scheduled callback. Records are recycled
// through the queue's freelist after expiry, so the steady-state tick loop
// does not allocate. The common sleep case carries the thread to wake
// directly in wake instead of a closure (one less allocation per Sleep).
type alarm struct {
	at   uint64 // absolute SW tick
	seq  uint64
	fn   func()
	wake *Thread // when non-nil: ready this thread if still sleeping
}

type alarmHeap []*alarm

func (h alarmHeap) Len() int { return len(h) }
func (h alarmHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h alarmHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *alarmHeap) Push(x any)   { *h = append(*h, x.(*alarm)) }
func (h *alarmHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return a
}

// alarmQueue is the kernel's alarm list, keyed by absolute SW tick, with
// FIFO ordering among alarms for the same tick (deterministic expiry).
type alarmQueue struct {
	h    alarmHeap
	seq  uint64
	free []*alarm // recycled records; bounded by peak outstanding alarms
}

func (q *alarmQueue) get() *alarm {
	if n := len(q.free); n > 0 {
		a := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return a
	}
	return &alarm{}
}

func (q *alarmQueue) recycle(a *alarm) {
	a.fn = nil
	a.wake = nil
	q.free = append(q.free, a)
}

func (q *alarmQueue) add(atTick uint64, fn func()) {
	a := q.get()
	a.at, a.seq, a.fn = atTick, q.seq, fn
	heap.Push(&q.h, a)
	q.seq++
}

// addWake schedules a closure-free sleep expiry: at atTick, t is readied
// if it is still sleeping.
func (q *alarmQueue) addWake(atTick uint64, t *Thread) {
	a := q.get()
	a.at, a.seq, a.wake = atTick, q.seq, t
	heap.Push(&q.h, a)
	q.seq++
}

func (q *alarmQueue) len() int { return len(q.h) }

// peek returns the earliest pending alarm's absolute SW tick.
func (q *alarmQueue) peek() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// expire runs every alarm due at or before tick. Alarm callbacks run in
// timer-ISR context: they may ready threads but must not block.
func (q *alarmQueue) expire(k *Kernel, tick uint64) {
	for len(q.h) > 0 && q.h[0].at <= tick {
		a := heap.Pop(&q.h).(*alarm)
		fn, wake := a.fn, a.wake
		q.recycle(a) // fields saved; fn may schedule new alarms reusing this record
		if wake != nil {
			if wake.state == ThreadSleeping {
				k.ready(wake)
			}
			continue
		}
		fn()
	}
}

// AlarmAfter schedules fn to run in timer context after n SW ticks; the
// public form used by board services and tests.
func (k *Kernel) AlarmAfter(n uint64, fn func()) {
	k.alarms.add(k.swTick+n, fn)
}
