package rtos

import (
	"fmt"
	"testing"
)

func TestFlagWaitAnyAndConsume(t *testing.T) {
	k := NewKernel(testCfg())
	f := k.NewFlag("ev")
	var got []uint32
	k.CreateThread("waiter", 5, func(c *ThreadCtx) {
		got = append(got, f.WaitAny(c, 0x0f, true))
		got = append(got, f.WaitAny(c, 0x0f, true))
		c.Exit()
	})
	k.AlarmAfter(2, func() { f.Set(0x05) })
	k.AlarmAfter(4, func() { f.Set(0x02) })
	k.Advance(1000)
	if len(got) != 2 || got[0] != 0x05 || got[1] != 0x02 {
		t.Fatalf("observed %#v, want [0x05 0x02]", got)
	}
	if f.Peek() != 0 {
		t.Fatalf("consume semantics left bits %#x", f.Peek())
	}
}

func TestFlagWaitAllBlocksUntilComplete(t *testing.T) {
	k := NewKernel(testCfg())
	f := k.NewFlag("ev")
	done := false
	k.CreateThread("waiter", 5, func(c *ThreadCtx) {
		f.WaitAll(c, 0x3, false)
		done = true
		c.Exit()
	})
	k.AlarmAfter(1, func() { f.Set(0x1) })
	k.Advance(500)
	if done {
		t.Fatal("WaitAll returned with only one bit set")
	}
	f.Set(0x2)
	k.Advance(500)
	if !done {
		t.Fatal("WaitAll never returned")
	}
	if f.Peek() != 0x3 {
		t.Fatalf("non-consuming wait cleared bits: %#x", f.Peek())
	}
}

func TestFlagAlreadySatisfiedDoesNotBlock(t *testing.T) {
	k := NewKernel(testCfg())
	f := k.NewFlag("ev")
	f.Set(0xf0)
	var got uint32
	k.CreateThread("w", 5, func(c *ThreadCtx) {
		got = f.WaitAny(c, 0xff, false)
		c.Exit()
	})
	k.Advance(200)
	if got != 0xf0 {
		t.Fatalf("got %#x", got)
	}
}

func TestFlagClear(t *testing.T) {
	k := NewKernel(testCfg())
	f := k.NewFlag("ev")
	f.Set(0xff)
	f.Clear(0x0f)
	if f.Peek() != 0xf0 {
		t.Fatalf("Clear left %#x", f.Peek())
	}
}

func TestFlagMultipleWaitersSelectiveWake(t *testing.T) {
	k := NewKernel(testCfg())
	f := k.NewFlag("ev")
	var woke []string
	mk := func(name string, mask uint32) {
		k.CreateThread(name, 5, func(c *ThreadCtx) {
			f.WaitAny(c, mask, true)
			woke = append(woke, name)
			c.Exit()
		})
	}
	mk("a", 0x1)
	mk("b", 0x2)
	k.Advance(200) // both blocked
	f.Set(0x2)     // only b's condition holds
	k.Advance(200)
	if len(woke) != 1 || woke[0] != "b" {
		t.Fatalf("woke %v, want only b", woke)
	}
	f.Set(0x1)
	k.Advance(200)
	if len(woke) != 2 {
		t.Fatalf("woke %v, want a too", woke)
	}
	k.Shutdown()
}

// TestFlagSetWakesInFIFOOrder pins the wake order of equal-priority
// waiters to their wait order. Set used to range over the conds map,
// readying threads in Go's randomized map order — two runs of the same
// workload could schedule the woken threads differently.
func TestFlagSetWakesInFIFOOrder(t *testing.T) {
	k := NewKernel(testCfg())
	f := k.NewFlag("ev")
	var woke []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("w%d", i)
		k.CreateThread(name, 5, func(c *ThreadCtx) {
			f.WaitAny(c, 0x1, false)
			woke = append(woke, name)
			c.Exit()
		})
	}
	k.Advance(200) // all eight block, in creation order
	f.Set(0x1)     // every waiter's condition now holds
	k.Advance(400)
	if len(woke) != 8 {
		t.Fatalf("woke %d of 8 waiters: %v", len(woke), woke)
	}
	for i, name := range woke {
		if want := fmt.Sprintf("w%d", i); name != want {
			t.Fatalf("wake order %v is not FIFO (index %d: got %s, want %s)", woke, i, name, want)
		}
	}
	k.Shutdown()
}
