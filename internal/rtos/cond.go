package rtos

// Cond is a condition variable bound to a Mutex (eCos cyg_cond): Wait
// atomically releases the mutex and blocks; Signal/Broadcast wake
// waiters, which re-acquire the mutex before returning. As always with
// condition variables, waiters must re-check their predicate in a loop.
type Cond struct {
	k    *Kernel
	name string
	mu   *Mutex
	wq   waitQueue
}

// NewCond creates a condition variable using mu as its monitor lock.
func (k *Kernel) NewCond(name string, mu *Mutex) *Cond {
	return &Cond{k: k, name: name, mu: mu}
}

// Wait releases the mutex, blocks until signalled, then re-acquires the
// mutex. The caller must hold the mutex.
func (cv *Cond) Wait(c *ThreadCtx) {
	cv.mu.Unlock(c)
	c.block(&cv.wq)
	cv.mu.Lock(c)
}

// WaitTimeout is Wait bounded by n SW ticks; reports false on timeout.
// The mutex is re-acquired either way.
func (cv *Cond) WaitTimeout(c *ThreadCtx, n uint64) bool {
	cv.mu.Unlock(c)
	ok := c.blockTimeout(&cv.wq, n)
	cv.mu.Lock(c)
	return ok
}

// Signal readies the oldest waiter. Safe from DSR context.
func (cv *Cond) Signal() { cv.wq.wakeOne(cv.k) }

// Broadcast readies every waiter. Safe from DSR context.
func (cv *Cond) Broadcast() { cv.wq.wakeAll(cv.k) }
