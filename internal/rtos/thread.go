package rtos

import (
	"fmt"

	"repro/internal/sim"
)

// ThreadState is a thread's scheduling state.
type ThreadState int

const (
	// ThreadReady: on a run queue.
	ThreadReady ThreadState = iota
	// ThreadRunning: currently executing (at most one).
	ThreadRunning
	// ThreadBlocked: waiting on a synchronization primitive.
	ThreadBlocked
	// ThreadSleeping: waiting for an alarm.
	ThreadSleeping
	// ThreadExited: body returned.
	ThreadExited
)

// String implements fmt.Stringer.
func (s ThreadState) String() string {
	switch s {
	case ThreadReady:
		return "ready"
	case ThreadRunning:
		return "running"
	case ThreadBlocked:
		return "blocked"
	case ThreadSleeping:
		return "sleeping"
	case ThreadExited:
		return "exited"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// Thread is one kernel thread.
type Thread struct {
	k     *Kernel
	name  string
	prio  int
	comm  bool // communication thread: may run in the IDLE state
	coro  *sim.Coroutine
	state ThreadState
	slice uint64 // remaining timeslice, in SW ticks

	cyclesUsed uint64
	exitWq     waitQueue // threads joined on this one
}

// ThreadOpt configures thread creation.
type ThreadOpt func(*Thread)

// Comm marks the thread as a communication thread, allowed to run while
// the OS is in the IDLE state (the paper's channel/systemc threads).
func Comm() ThreadOpt { return func(t *Thread) { t.comm = true } }

// CreateThread registers a thread at the given priority (0 = highest,
// NumPriorities-1 = lowest). The body receives a ThreadCtx through which
// all time consumption and blocking happens. The thread starts ready; it
// first runs inside a later Advance.
func (k *Kernel) CreateThread(name string, prio int, body func(*ThreadCtx), opts ...ThreadOpt) *Thread {
	if prio < 0 || prio >= NumPriorities {
		panic(fmt.Sprintf("rtos: thread %q priority %d out of range", name, prio))
	}
	if k.started {
		panic(fmt.Sprintf("rtos: CreateThread(%q) after first Advance", name))
	}
	t := &Thread{k: k, name: name, prio: prio, slice: k.cfg.TimesliceTicks}
	if t.slice == 0 {
		t.slice = ^uint64(0) // timeslicing disabled
	}
	for _, o := range opts {
		o(t)
	}
	ctx := &ThreadCtx{t: t}
	t.coro = sim.NewCoroutine(name, func(*sim.Coroutine) { body(ctx) })
	k.threads = append(k.threads, t)
	k.ready(t)
	return t
}

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Priority returns the thread priority.
func (t *Thread) Priority() int { return t.prio }

// State returns the scheduling state.
func (t *Thread) State() ThreadState { return t.state }

// CyclesUsed returns the CPU cycles charged to this thread.
func (t *Thread) CyclesUsed() uint64 { return t.cyclesUsed }

// ThreadCtx is handed to thread bodies; every kernel service a thread uses
// goes through it. Its methods must only be called from within the owning
// thread's body.
type ThreadCtx struct {
	t *Thread
}

// Kernel returns the owning kernel (for time queries).
func (c *ThreadCtx) Kernel() *Kernel { return c.t.k }

// Thread returns the underlying thread.
func (c *ThreadCtx) Thread() *Thread { return c.t }

// yield suspends the thread body, returning control to the scheduler. The
// thread must have set its state (and enqueued itself on a wait structure,
// if blocking) first.
func (c *ThreadCtx) yield() {
	c.t.coro.Yield()
}

// Charge consumes n CPU cycles of computation. The charge is interleaved
// with timer ticks, interrupt dispatch and preemption at tick-boundary
// granularity; if the granted quantum ends mid-charge the thread is frozen
// and transparently resumed in the next quantum, continuing the remainder.
func (c *ThreadCtx) Charge(n uint64) {
	t := c.t
	k := t.k
	for n > 0 {
		if k.budgetLeft == 0 {
			// Quantum exhausted: stay ready, freeze here; Advance returns
			// and the next grant resumes this loop.
			t.state = ThreadReady
			c.yield()
			continue
		}
		toTick := k.cfg.CyclesPerTick - k.cycles%k.cfg.CyclesPerTick
		step := min(min(n, toTick), k.budgetLeft)
		k.advanceCycles(step, &k.stats.BusyCycles)
		k.consumeBudget(step)
		t.cyclesUsed += step
		n -= step
		if k.needResched {
			k.needResched = false
			t.state = ThreadReady
			c.yield()
			continue
		}
		if k.interruptsPending() {
			// Let the scheduler dispatch the ISR; we stay ready and are
			// resumed afterwards (possibly after a higher-priority thread).
			t.state = ThreadReady
			c.yield()
		}
	}
}

// Yield voluntarily gives up the CPU while remaining ready.
func (c *ThreadCtx) Yield() {
	c.t.state = ThreadReady
	c.yield()
}

// Exit terminates the thread immediately (its body never resumes) and
// wakes any joiners.
func (c *ThreadCtx) Exit() {
	c.t.state = ThreadExited
	c.t.exitWq.wakeAll(c.t.k)
	c.t.coro.Yield() // the scheduler observes Exited and drops the thread
	panic("rtos: exited thread resumed")
}

// Join blocks until the target thread exits. Joining an already-exited
// thread returns immediately; joining yourself panics.
func (c *ThreadCtx) Join(target *Thread) {
	if target == c.t {
		panic(fmt.Sprintf("rtos: thread %q joining itself", c.t.name))
	}
	for target.state != ThreadExited {
		c.block(&target.exitWq)
	}
}

// SetPriority changes a thread's priority. If the thread is currently on
// a run queue it is re-queued at the new level; the change takes effect at
// the next scheduling decision (eCos cyg_thread_set_priority semantics,
// without priority inheritance).
func (k *Kernel) SetPriority(t *Thread, prio int) {
	if prio < 0 || prio >= NumPriorities {
		panic(fmt.Sprintf("rtos: SetPriority(%q, %d) out of range", t.name, prio))
	}
	if t.prio == prio {
		return
	}
	// Remove from its current run queue if enqueued.
	q := k.runq[t.prio]
	for i, x := range q {
		if x == t {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			k.runq[t.prio] = q[:len(q)-1]
			t.prio = prio
			k.runq[prio] = append(k.runq[prio], t)
			return
		}
	}
	t.prio = prio
}

// Sleep blocks the thread for n SW ticks.
func (c *ThreadCtx) Sleep(n uint64) {
	if n == 0 {
		c.Yield()
		return
	}
	t := c.t
	k := t.k
	t.state = ThreadSleeping
	k.alarms.addWake(k.swTick+n, t)
	c.yield()
}

// block parks the thread on a wait queue until woken.
func (c *ThreadCtx) block(q *waitQueue) {
	c.t.state = ThreadBlocked
	q.enqueue(c.t)
	c.yield()
}

// blockTimeout parks the thread on q for at most n SW ticks; reports true
// if woken by the queue, false on timeout.
func (c *ThreadCtx) blockTimeout(q *waitQueue, n uint64) bool {
	t := c.t
	k := t.k
	t.state = ThreadBlocked
	q.enqueue(t)
	timedOut := false
	k.alarms.add(k.swTick+n, func() {
		if t.state == ThreadBlocked && q.remove(t) {
			timedOut = true
			k.ready(t)
		}
	})
	c.yield()
	return !timedOut
}

// waitQueue is a FIFO of blocked threads.
type waitQueue struct {
	q []*Thread
}

func (w *waitQueue) enqueue(t *Thread) { w.q = append(w.q, t) }

func (w *waitQueue) remove(t *Thread) bool {
	for i, x := range w.q {
		if x == t {
			w.q = append(w.q[:i], w.q[i+1:]...)
			return true
		}
	}
	return false
}

// wakeOne readies the oldest waiter; returns false if the queue was empty.
func (w *waitQueue) wakeOne(k *Kernel) bool {
	for len(w.q) > 0 {
		t := w.q[0]
		w.q = w.q[1:]
		if t.state == ThreadBlocked {
			k.ready(t)
			return true
		}
	}
	return false
}

// wakeAll readies every waiter.
func (w *waitQueue) wakeAll(k *Kernel) {
	for w.wakeOne(k) {
	}
}

func (w *waitQueue) len() int { return len(w.q) }
