package rtos

import "testing"

// The lookahead bound is the kernel's half of the adaptive-synchronization
// negotiation; these tests pin its exact arithmetic, because an
// over-promise here would let the HW master elongate a quantum across a
// wakeup and silently change simulated time.

func TestNextEventBoundIdleKernel(t *testing.T) {
	k := NewKernel(testCfg())
	if got := k.NextEventBound(); got != WakeNever {
		t.Fatalf("empty kernel: bound %d, want WakeNever", got)
	}
}

func TestNextEventBoundRunnableThread(t *testing.T) {
	k := NewKernel(testCfg())
	k.CreateThread("worker", 10, func(c *ThreadCtx) {
		c.Charge(1000)
		c.Exit()
	})
	if got := k.NextEventBound(); got != 0 {
		t.Fatalf("runnable thread: bound %d, want 0", got)
	}
}

func TestNextEventBoundSleepingThread(t *testing.T) {
	cfg := testCfg() // CyclesPerTick 100, one HW tick per SW tick
	k := NewKernel(cfg)
	k.CreateThread("sleeper", 10, func(c *ThreadCtx) {
		for {
			c.Sleep(5)
		}
	})
	// The thread sleeps immediately; its wake alarm sits at SW tick 5,
	// i.e. absolute cycle 500.
	k.Advance(250)
	if got := k.NextEventBound(); got != 250 {
		t.Fatalf("mid-sleep: bound %d, want exactly 250 (alarm at cycle 500)", got)
	}
	// One cycle before the wake the bound must still be positive…
	k.Advance(249)
	if got := k.NextEventBound(); got != 1 {
		t.Fatalf("one cycle out: bound %d, want 1", got)
	}
}

func TestNextEventBoundPendingInterrupt(t *testing.T) {
	k := NewKernel(testCfg())
	fired := false
	k.AttachInterrupt(3, nil, func() { fired = true })
	k.PostIRQ(3)
	if got := k.NextEventBound(); got != 0 {
		t.Fatalf("pending interrupt: bound %d, want 0", got)
	}
	k.Advance(100)
	if !fired {
		t.Fatal("interrupt never dispatched")
	}
}

func TestNextEventBoundWakeSources(t *testing.T) {
	cfg := testCfg()
	k := NewKernel(cfg)

	// A source with nothing scheduled does not constrain the bound.
	k.RegisterWakeSource(func() uint64 { return WakeNever })
	if got := k.NextEventBound(); got != WakeNever {
		t.Fatalf("WakeNever source: bound %d, want WakeNever", got)
	}

	// A source n HW ticks out converts to cycles: the partial distance to
	// the next tick boundary plus n-1 whole periods.
	ticks := uint64(3)
	k.RegisterWakeSource(func() uint64 { return ticks })
	if got := k.NextEventBound(); got != 300 {
		t.Fatalf("3-tick source at cycle 0: bound %d, want 300", got)
	}
	k.Advance(30)
	if got := k.NextEventBound(); got != 270 {
		t.Fatalf("3-tick source at cycle 30: bound %d, want 270", got)
	}

	// An imminent source pins the bound to zero.
	ticks = 0
	if got := k.NextEventBound(); got != 0 {
		t.Fatalf("imminent source: bound %d, want 0", got)
	}
}

func TestNextEventBoundTakesEarliest(t *testing.T) {
	cfg := testCfg()
	k := NewKernel(cfg)
	k.AlarmAfter(7, func() {})                       // SW tick 7 → cycle 700
	k.RegisterWakeSource(func() uint64 { return 4 }) // HW tick 4 → cycle 400
	if got := k.NextEventBound(); got != 400 {
		t.Fatalf("bound %d, want 400 (wake source earlier than alarm)", got)
	}
}

func TestNextEventBoundDueAlarm(t *testing.T) {
	k := NewKernel(testCfg())
	k.AlarmAfter(0, func() {}) // due at the current SW tick
	if got := k.NextEventBound(); got != 0 {
		t.Fatalf("due alarm: bound %d, want 0", got)
	}
}
