package rtos

import "fmt"

// NumIRQs is the size of the board's interrupt vector.
const NumIRQs = 32

// irqLine is one interrupt vector entry with eCos's ISR/DSR split: the ISR
// runs with interrupts effectively masked and decides whether to schedule
// the DSR; the DSR runs afterwards and may use kernel services (waking
// threads, posting to mailboxes).
type irqLine struct {
	num       int
	attached  bool
	enabled   bool
	pending   bool
	dsrQueued bool
	isr       func() bool // return true to request the DSR
	dsr       func()
}

type interruptController struct {
	lines   [NumIRQs]irqLine
	dsrq    []*irqLine
	dsrHead int // consumed prefix of dsrq; backing array reused once drained
}

func (ic *interruptController) init() {
	for i := range ic.lines {
		ic.lines[i].num = i
	}
}

func (ic *interruptController) pendingEnabled() bool {
	for i := range ic.lines {
		l := &ic.lines[i]
		if l.pending && l.enabled {
			return true
		}
	}
	return false
}

// nextPending claims the lowest-numbered pending+enabled line (hardware
// priority by vector number) and clears its pending latch.
func (ic *interruptController) nextPending() *irqLine {
	for i := range ic.lines {
		l := &ic.lines[i]
		if l.pending && l.enabled {
			l.pending = false
			return l
		}
	}
	return nil
}

func (ic *interruptController) queueDSR(l *irqLine) {
	if l.dsrQueued {
		return
	}
	l.dsrQueued = true
	ic.dsrq = append(ic.dsrq, l)
}

func (ic *interruptController) nextDSR() *irqLine {
	if ic.dsrHead >= len(ic.dsrq) {
		if len(ic.dsrq) > 0 {
			// Fully drained: rewind so the backing array is reused instead
			// of creeping forward one slice header per DSR.
			ic.dsrq = ic.dsrq[:0]
			ic.dsrHead = 0
		}
		return nil
	}
	l := ic.dsrq[ic.dsrHead]
	ic.dsrq[ic.dsrHead] = nil
	ic.dsrHead++
	if ic.dsrHead == len(ic.dsrq) {
		ic.dsrq = ic.dsrq[:0]
		ic.dsrHead = 0
	}
	l.dsrQueued = false
	return l
}

// AttachInterrupt installs the ISR/DSR pair for a vector and enables it.
// The ISR returns true to request DSR execution (eCos CYG_ISR_CALL_DSR).
// Either handler may be nil: a nil ISR defaults to requesting the DSR; a
// nil DSR is simply skipped.
func (k *Kernel) AttachInterrupt(irq int, isr func() bool, dsr func()) {
	if irq < 0 || irq >= NumIRQs {
		panic(fmt.Sprintf("rtos: IRQ %d out of range", irq))
	}
	l := &k.irq.lines[irq]
	if l.attached {
		panic(fmt.Sprintf("rtos: IRQ %d already attached", irq))
	}
	l.attached = true
	l.enabled = true
	l.isr = isr
	l.dsr = dsr
}

// MaskInterrupt disables delivery for a vector (pending requests are held).
func (k *Kernel) MaskInterrupt(irq int) { k.irq.lines[irq].enabled = false }

// UnmaskInterrupt re-enables delivery.
func (k *Kernel) UnmaskInterrupt(irq int) { k.irq.lines[irq].enabled = true }

// PostIRQ latches an interrupt request on the vector. It is dispatched at
// the next safe point inside Advance (quantum start, tick boundary, or
// thread yield). Posting an unattached vector is a board wiring error.
func (k *Kernel) PostIRQ(irq int) {
	if irq < 0 || irq >= NumIRQs {
		panic(fmt.Sprintf("rtos: IRQ %d out of range", irq))
	}
	l := &k.irq.lines[irq]
	if !l.attached {
		panic(fmt.Sprintf("rtos: IRQ %d posted but no handler attached", irq))
	}
	l.pending = true
}

// IRQPending reports whether the vector is latched (for tests/diagnostics).
func (k *Kernel) IRQPending(irq int) bool { return k.irq.lines[irq].pending }
