package rtos

import "testing"

func TestCondProducerConsumer(t *testing.T) {
	k := NewKernel(testCfg())
	mu := k.NewMutex("m")
	cv := k.NewCond("cv", mu)
	var queue []uint32
	var got []uint32
	k.CreateThread("consumer", 8, func(c *ThreadCtx) {
		for len(got) < 5 {
			mu.Lock(c)
			for len(queue) == 0 {
				cv.Wait(c)
			}
			got = append(got, queue[0])
			queue = queue[1:]
			mu.Unlock(c)
		}
		c.Exit()
	})
	k.CreateThread("producer", 9, func(c *ThreadCtx) {
		for i := uint32(0); i < 5; i++ {
			c.Charge(200)
			mu.Lock(c)
			queue = append(queue, i)
			cv.Signal()
			mu.Unlock(c)
		}
		c.Exit()
	})
	k.Advance(100000)
	if len(got) != 5 {
		t.Fatalf("consumed %v", got)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	k := NewKernel(testCfg())
	mu := k.NewMutex("m")
	cv := k.NewCond("cv", mu)
	ready := false
	woken := 0
	for i := 0; i < 4; i++ {
		k.CreateThread("w", 10, func(c *ThreadCtx) {
			mu.Lock(c)
			for !ready {
				cv.Wait(c)
			}
			woken++
			mu.Unlock(c)
			c.Exit()
		})
	}
	k.CreateThread("kick", 5, func(c *ThreadCtx) {
		c.Sleep(20) // let the waiters park first
		mu.Lock(c)
		ready = true
		cv.Broadcast()
		mu.Unlock(c)
		c.Exit()
	})
	k.Advance(1500) // 15 ticks: waiters parked, kicker still asleep
	if woken != 0 {
		t.Fatalf("%d woke early", woken)
	}
	k.Advance(100000)
	if woken != 4 {
		t.Fatalf("broadcast woke %d of 4", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := NewKernel(testCfg())
	mu := k.NewMutex("m")
	cv := k.NewCond("cv", mu)
	var timedOut, signalled bool
	k.CreateThread("w", 10, func(c *ThreadCtx) {
		mu.Lock(c)
		timedOut = !cv.WaitTimeout(c, 3)
		// Mutex is held again here either way.
		if mu.Owner() != c.Thread() {
			t.Error("mutex not re-acquired after timeout")
		}
		signalled = cv.WaitTimeout(c, 1000)
		mu.Unlock(c)
		c.Exit()
	})
	k.AlarmAfter(20, func() { cv.Signal() })
	k.Advance(100 * 200)
	if !timedOut {
		t.Fatal("first wait did not time out")
	}
	if !signalled {
		t.Fatal("second wait missed the signal")
	}
}
