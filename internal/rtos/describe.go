package rtos

import (
	"fmt"
	"io"
	"sort"
)

// Describe writes a snapshot of the kernel — time counters, OS state, and
// every thread with its priority, state and consumed cycles — the
// equivalent of a shell's `ps` on the virtual board.
func (k *Kernel) Describe(w io.Writer) error {
	st := k.stats
	if _, err := fmt.Fprintf(w, "kernel: %d cycles, hwTick=%d swTick=%d, state=%v\n",
		k.cycles, k.hwTick, k.swTick, k.state); err != nil {
		return err
	}
	fmt.Fprintf(w, "  busy=%d idle=%d kernel=%d cycles; ctxsw=%d isr=%d dsr=%d stateSwitches=%d\n",
		st.BusyCycles, st.IdleCycles, st.KernelCycles,
		st.ContextSwitches, st.ISRs, st.DSRs, st.StateSwitches)
	fmt.Fprintf(w, "threads (%d):\n", len(k.threads))
	for _, t := range k.threads {
		comm := ""
		if t.comm {
			comm = " comm"
		}
		cur := ""
		if t == k.lastRun {
			cur = " *"
		}
		fmt.Fprintf(w, "  %-24s prio=%-2d %-9s cycles=%-10d slice=%d%s%s\n",
			t.name, t.prio, t.state, t.cyclesUsed, t.slice, comm, cur)
	}
	fmt.Fprintf(w, "drivers (%d):", len(k.drivers))
	// Sorted so two runs of the same workload produce byte-identical dumps.
	names := make([]string, 0, len(k.drivers))
	for name := range k.drivers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, " %s", name)
	}
	fmt.Fprintln(w)
	return nil
}
