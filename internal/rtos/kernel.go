// Package rtos implements an eCos-like real-time kernel running in virtual
// time, the software half of the co-simulation framework of Fummi et al.
// (DATE 2005). It provides priority-scheduled threads with timeslicing,
// alarms, ISR/DSR split interrupt handling, synchronization primitives
// (mutex, semaphore, mailbox), and a device-driver registry — plus the
// paper's section 5.3 modifications: the kernel's notion of time is a
// *virtual tick* granted from outside (the hardware simulator), and the OS
// alternates between a NORMAL state, where ordinary scheduling happens,
// and an IDLE state between grants, in which only the communication
// threads may run.
//
// Threads are goroutine-backed coroutines (sim.Coroutine): exactly one
// thread body executes at a time, on the goroutine that calls
// Kernel.Advance, so the kernel needs no internal locking and executions
// are deterministic.
//
// Time model: the kernel counts CPU cycles. A hardware timer interrupt
// fires every CyclesPerTick cycles (one HW tick); every HWTicksPerSWTick
// HW ticks the timer ISR advances the software tick counter, expires
// alarms and performs timeslice accounting — exactly the structure the
// paper describes for the eCos timer path. Cycles only elapse inside
// Advance, i.e. when the simulator has granted virtual time.
package rtos

import (
	"fmt"

	"repro/internal/sim"
)

// OSState is the paper's two-state OS mode.
type OSState int

const (
	// StateIdle: between quanta; only communication threads (and the idle
	// thread) are eligible.
	StateIdle OSState = iota
	// StateNormal: inside a granted quantum; ordinary scheduling.
	StateNormal
)

// String implements fmt.Stringer.
func (s OSState) String() string {
	if s == StateNormal {
		return "normal"
	}
	return "idle"
}

// NumPriorities is the eCos-style priority range: 0 (highest) .. 31
// (lowest, conventionally the idle thread).
const NumPriorities = 32

// Config parameterizes the kernel's timing model.
type Config struct {
	// CyclesPerTick is the hardware timer period in CPU cycles (one HW
	// tick). Must be ≥ 1.
	CyclesPerTick uint64
	// HWTicksPerSWTick is the timer-ISR divider: the SW tick (scheduler
	// tick) advances once per this many HW ticks. Must be ≥ 1.
	HWTicksPerSWTick uint64
	// TimesliceTicks is the round-robin quantum, in SW ticks, for threads
	// of equal priority. 0 disables timeslicing.
	TimesliceTicks uint64
	// ISRCost / DSRCost are the cycle charges for each interrupt service
	// routine and deferred service routine execution.
	ISRCost, DSRCost uint64
	// CtxSwitchCost is the cycle charge applied whenever the scheduler
	// switches between two different threads.
	CtxSwitchCost uint64
	// IdleSwitchCost is the cycle charge for one NORMAL→IDLE→NORMAL round
	// trip, applied at the start of each quantum. It models the cost the
	// paper attributes to "the OS … switching between the running and the
	// idle state".
	IdleSwitchCost uint64
}

// DefaultConfig returns the timing model used by the experiments: a 100 MHz
// CPU with the HW timer at one tick per 100 cycles (1 µs), the SW tick
// equal to one HW tick, and small fixed kernel-path costs.
func DefaultConfig() Config {
	return Config{
		CyclesPerTick:    100,
		HWTicksPerSWTick: 1,
		TimesliceTicks:   5,
		ISRCost:          25,
		DSRCost:          15,
		CtxSwitchCost:    10,
		IdleSwitchCost:   30,
	}
}

// Stats aggregates kernel activity counters.
type Stats struct {
	ContextSwitches uint64
	TimerTicks      uint64 // HW ticks
	SWTicks         uint64
	ISRs            uint64
	DSRs            uint64
	IdleCycles      uint64 // cycles burned with no runnable thread
	BusyCycles      uint64 // cycles charged to threads
	KernelCycles    uint64 // cycles charged to ISRs/DSRs/switches
	StateSwitches   uint64 // NORMAL↔IDLE transitions
}

// Kernel is the RTOS instance.
type Kernel struct {
	cfg Config

	cycles uint64 // CPU cycles elapsed (virtual)
	hwTick uint64
	swTick uint64

	state   OSState
	current *Thread
	lastRun *Thread // for context-switch accounting
	runq    [NumPriorities][]*Thread
	threads []*Thread

	budgetLeft  uint64
	needResched bool

	irq    interruptController
	alarms alarmQueue

	tickHooks []func(hwTick uint64) // on-board devices observe HW ticks

	// wakeSources bound when tick-driven devices can next post an IRQ;
	// consulted by NextEventBound (see lookahead.go).
	wakeSources []func() uint64

	drivers map[string]Driver

	// savedSliceValid/savedSlice implement the paper's context save of the
	// preempted thread's timeslice across the idle state.
	savedThread *Thread
	savedSlice  uint64

	stats    Stats
	started  bool
	spinning int // consecutive resumes with no cycle progress (runaway guard)
}

// NewKernel creates a kernel with the given configuration.
func NewKernel(cfg Config) *Kernel {
	if cfg.CyclesPerTick == 0 {
		cfg.CyclesPerTick = 1
	}
	if cfg.HWTicksPerSWTick == 0 {
		cfg.HWTicksPerSWTick = 1
	}
	k := &Kernel{cfg: cfg, state: StateIdle, drivers: make(map[string]Driver)}
	k.irq.init()
	return k
}

// Cfg returns the kernel configuration.
func (k *Kernel) Cfg() Config { return k.cfg }

// Cycles returns elapsed CPU cycles (board local time).
func (k *Kernel) Cycles() uint64 { return k.cycles }

// HWTick returns the hardware timer tick count.
func (k *Kernel) HWTick() uint64 { return k.hwTick }

// SWTick returns the software (scheduler) tick count — the counter that
// the virtual-tick protocol drives.
func (k *Kernel) SWTick() uint64 { return k.swTick }

// State returns the current OS state.
func (k *Kernel) State() OSState { return k.state }

// Stats returns a snapshot of the activity counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Utilization returns the fraction of elapsed cycles spent in application
// threads (busy / total). It is 0 before any cycle has elapsed.
func (k *Kernel) Utilization() float64 {
	if k.cycles == 0 {
		return 0
	}
	return float64(k.stats.BusyCycles) / float64(k.cycles)
}

// OnTick registers a callback invoked at every HW tick; on-board hardware
// (e.g. the watchdog ASIC) uses this to observe the free-running timer.
func (k *Kernel) OnTick(fn func(hwTick uint64)) {
	k.tickHooks = append(k.tickHooks, fn)
}

// ready puts a thread on its priority run queue. Readying a thread that
// outranks the one currently executing requests preemption at the next
// safe point (the kernel is fully preemptive, like eCos).
func (k *Kernel) ready(t *Thread) {
	if t.state == ThreadExited {
		return
	}
	t.state = ThreadReady
	k.runq[t.prio] = append(k.runq[t.prio], t)
	if k.current != nil && t.prio < k.current.prio {
		k.needResched = true
	}
}

// pickNext dequeues the highest-priority eligible thread. In the IDLE
// state only communication threads are eligible (paper fig. 3: the idle
// thread, channel thread and systemc thread keep running; everything else
// is frozen).
func (k *Kernel) pickNext() *Thread {
	for p := 0; p < NumPriorities; p++ {
		q := k.runq[p]
		for i, t := range q {
			if k.state == StateIdle && !t.comm {
				continue
			}
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			k.runq[p] = q[:len(q)-1]
			return t
		}
	}
	return nil
}

// advanceCycles moves virtual time forward by n cycles, firing the timer
// interrupt path at every HW-tick boundary crossed. It is the only place
// cycles advance.
func (k *Kernel) advanceCycles(n uint64, account *uint64) {
	for n > 0 {
		toTick := k.cfg.CyclesPerTick - k.cycles%k.cfg.CyclesPerTick
		step := min(n, toTick)
		k.cycles += step
		if account != nil {
			*account += step
		}
		n -= step
		if k.cycles%k.cfg.CyclesPerTick == 0 {
			k.timerTick()
		}
	}
}

// timerTick is the hardware timer interrupt service path: it increments
// the HW tick, runs device tick hooks, and every HWTicksPerSWTick ticks
// performs the SW-tick work (alarm expiry, timeslice accounting).
func (k *Kernel) timerTick() {
	k.hwTick++
	k.stats.TimerTicks++
	for _, fn := range k.tickHooks {
		fn(k.hwTick)
	}
	if k.hwTick%k.cfg.HWTicksPerSWTick != 0 {
		return
	}
	k.swTick++
	k.stats.SWTicks++
	k.alarms.expire(k, k.swTick)
	if k.cfg.TimesliceTicks > 0 && k.current != nil {
		if k.current.slice > 0 {
			k.current.slice--
		}
		if k.current.slice == 0 {
			k.current.slice = k.cfg.TimesliceTicks
			// Round-robin only matters if a peer of equal priority waits.
			if len(k.runq[k.current.prio]) > 0 {
				k.needResched = true
			}
		}
	}
}

// interruptsPending reports whether an enabled IRQ awaits dispatch.
func (k *Kernel) interruptsPending() bool { return k.irq.pendingEnabled() }

// dispatchInterrupts runs pending ISRs and then queued DSRs, charging
// their configured costs. It runs in scheduler context (never inside a
// thread body).
func (k *Kernel) dispatchInterrupts() {
	for {
		line := k.irq.nextPending()
		if line == nil {
			break
		}
		cost := k.budgetLeftClamp(k.cfg.ISRCost)
		k.advanceCycles(cost, &k.stats.KernelCycles)
		k.consumeBudget(cost)
		k.stats.ISRs++
		wantDSR := true
		if line.isr != nil {
			wantDSR = line.isr()
		}
		if wantDSR && line.dsr != nil {
			k.irq.queueDSR(line)
		}
	}
	for {
		line := k.irq.nextDSR()
		if line == nil {
			break
		}
		cost := k.budgetLeftClamp(k.cfg.DSRCost)
		k.advanceCycles(cost, &k.stats.KernelCycles)
		k.consumeBudget(cost)
		k.stats.DSRs++
		line.dsr()
	}
}

// budgetLeftClamp limits a kernel-path charge to the remaining quantum
// budget (kernel paths may not overdraw the grant).
func (k *Kernel) budgetLeftClamp(want uint64) uint64 { return min(want, k.budgetLeft) }

func (k *Kernel) consumeBudget(want uint64) {
	k.budgetLeft -= min(want, k.budgetLeft)
}

// Advance runs the board for `cycles` CPU cycles of virtual time — one
// granted quantum. It performs the IDLE→NORMAL transition (restoring the
// preempted thread's saved timeslice), schedules threads until the budget
// is exhausted, then returns to IDLE (saving the context of the thread in
// execution), exactly mirroring the state machine of the paper's figure 4.
func (k *Kernel) Advance(cycles uint64) {
	k.started = true
	k.budgetLeft = cycles
	k.enterNormal()
	for {
		// Interrupts first: device events unblock their service threads.
		k.dispatchInterrupts()
		if k.budgetLeft == 0 {
			break
		}
		t := k.pickNext()
		if t == nil {
			// Nothing runnable: burn idle time to the next tick boundary
			// (the timer may expire an alarm) or to the end of the budget.
			toTick := k.cfg.CyclesPerTick - k.cycles%k.cfg.CyclesPerTick
			step := min(toTick, k.budgetLeft)
			k.advanceCycles(step, &k.stats.IdleCycles)
			k.consumeBudget(step)
			continue
		}
		k.runThread(t)
	}
	k.enterIdle()
}

// runThread resumes one thread until it yields back to the scheduler.
func (k *Kernel) runThread(t *Thread) {
	if k.lastRun != t && k.lastRun != nil {
		k.advanceCycles(k.budgetLeftClamp(k.cfg.CtxSwitchCost), &k.stats.KernelCycles)
		k.consumeBudget(k.cfg.CtxSwitchCost)
		k.stats.ContextSwitches++
	}
	k.lastRun = t
	k.current = t
	t.state = ThreadRunning
	before := k.cycles
	st := t.coro.Resume()
	k.current = nil
	switch st {
	case sim.CoroFinished, sim.CoroKilled:
		t.state = ThreadExited
		t.exitWq.wakeAll(k)
	default:
		if t.state == ThreadExited {
			// ThreadCtx.Exit: unwind the parked coroutine so its
			// goroutine is reclaimed.
			t.coro.Kill()
			break
		}
		// The thread set its own state (Ready/Blocked/Sleeping) before
		// yielding; re-enqueue if it is still ready.
		if t.state == ThreadRunning {
			t.state = ThreadReady
		}
		if t.state == ThreadReady {
			k.ready(t)
		}
	}
	if k.cycles == before && t.state == ThreadReady {
		k.spinning++
		if k.spinning > 100000 {
			panic(fmt.Sprintf("rtos: thread %q yields without consuming time (runaway loop?)", t.name))
		}
	} else {
		k.spinning = 0
	}
}

// enterNormal performs the IDLE→NORMAL switch: clear the freeze flag,
// invoke the scheduler, resume the suspended thread and restore its
// context — in particular the value of its timeslice (paper §5.3).
func (k *Kernel) enterNormal() {
	if k.state == StateNormal {
		return
	}
	k.state = StateNormal
	k.stats.StateSwitches++
	if k.savedThread != nil {
		k.savedThread.slice = k.savedSlice
		k.savedThread = nil
	}
	cost := k.budgetLeftClamp(k.cfg.IdleSwitchCost)
	k.advanceCycles(cost, &k.stats.KernelCycles)
	k.consumeBudget(cost)
}

// enterIdle performs the NORMAL→IDLE switch: set the flag, signal the need
// for rescheduling, save the context (timeslice) of the thread currently
// in execution (paper §5.3), and activate only idle-eligible threads.
func (k *Kernel) enterIdle() {
	if k.state == StateIdle {
		return
	}
	k.state = StateIdle
	k.stats.StateSwitches++
	// The thread most recently in execution has its slice preserved.
	if k.lastRun != nil && k.lastRun.state != ThreadExited {
		k.savedThread = k.lastRun
		k.savedSlice = k.lastRun.slice
	}
}

// RunIdleComm lets communication threads execute while the OS is frozen
// between quanta, without advancing board time beyond kernel costs. The
// paper keeps the channel/systemc threads alive during IDLE so clock and
// interrupt packets are not lost; in this implementation message reception
// is handled by the transport goroutines, so RunIdleComm exists for
// board-side services that need to poll in virtual idle (used by tests and
// the standalone board binary).
func (k *Kernel) RunIdleComm(maxResumes int) {
	for i := 0; i < maxResumes; i++ {
		t := k.pickNext()
		if t == nil {
			return
		}
		k.runThread(t)
	}
}

// DeadlockCheck reports an error when no thread can ever run again: all
// threads blocked or exited with no pending interrupt and no alarm.
func (k *Kernel) DeadlockCheck() error {
	if k.interruptsPending() || k.alarms.len() > 0 {
		return nil
	}
	live := 0
	for _, t := range k.threads {
		switch t.state {
		case ThreadReady, ThreadRunning:
			return nil
		case ThreadBlocked, ThreadSleeping:
			live++
		}
	}
	if live > 0 {
		return fmt.Errorf("rtos: deadlock: %d thread(s) blocked with no wake source", live)
	}
	return nil
}

// Shutdown unwinds every thread that has not exited, reclaiming their
// goroutines. Call it once when the co-simulation finishes; the kernel
// must not be used afterwards.
func (k *Kernel) Shutdown() {
	for _, t := range k.threads {
		if t.state != ThreadExited {
			t.state = ThreadExited
			t.coro.Kill()
		}
	}
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
