package rtos

import "math"

// This file implements the kernel's half of the adaptive-synchronization
// negotiation: a conservative bound on how far virtual time can advance
// before anything schedulable can happen on the board, which the
// co-simulation slave reports to the hardware master in every time
// acknowledgement so the master may elongate the next quantum.

// WakeNever is returned by a wake source with no scheduled event.
const WakeNever = math.MaxUint64

// RegisterWakeSource registers an external tick-driven wake source — an
// on-board device such as a watchdog or DMA engine that may post an
// interrupt from a timer-tick hook. fn must return a lower bound, in HW
// ticks from now, until the source can next post an interrupt (0 when
// one may be imminent, WakeNever when nothing is scheduled). It is
// consulted by NextEventBound between quanta, never concurrently with
// Advance.
func (k *Kernel) RegisterWakeSource(fn func() uint64) {
	k.wakeSources = append(k.wakeSources, fn)
}

// NextEventBound returns a conservative bound, in CPU cycles from now,
// before which no thread can become runnable without outside input: 0
// when work is pending right now (a runnable thread, an undispatched
// interrupt), WakeNever when nothing is scheduled at all, and otherwise
// the exact cycle distance to the earliest alarm expiry or device wake.
// Everything that can ready a thread spontaneously is either an alarm
// (keyed on an absolute SW tick) or a registered wake source (keyed on
// HW ticks); both fire at absolute cycle positions that are independent
// of how the intervening virtual time is partitioned into quanta, which
// is what makes the bound safe to elongate over.
func (k *Kernel) NextEventBound() uint64 {
	if k.interruptsPending() || k.current != nil {
		return 0
	}
	for p := range k.runq {
		if len(k.runq[p]) > 0 {
			return 0
		}
	}
	bound := uint64(WakeNever)
	if at, ok := k.alarms.peek(); ok {
		if at <= k.swTick {
			return 0
		}
		bound = k.cyclesToSWTick(at)
	}
	for _, fn := range k.wakeSources {
		ticks := fn()
		if ticks == 0 {
			return 0
		}
		if ticks != WakeNever {
			if c := k.cyclesToHWTicks(ticks); c < bound {
				bound = c
			}
		}
	}
	return bound
}

// cyclesToHWTicks returns the cycles from now until the n-th future HW
// tick fires (n ≥ 1): the partial distance to the next tick boundary
// plus n-1 whole tick periods.
func (k *Kernel) cyclesToHWTicks(n uint64) uint64 {
	toTick := k.cfg.CyclesPerTick - k.cycles%k.cfg.CyclesPerTick
	return toTick + (n-1)*k.cfg.CyclesPerTick
}

// cyclesToSWTick returns the cycles from now until the SW tick counter
// reaches `at` (at > current). The SW tick advances on every
// HWTicksPerSWTick-th HW tick, so the distance is the partial stretch to
// the next SW-tick boundary plus whole SW-tick periods.
func (k *Kernel) cyclesToSWTick(at uint64) uint64 {
	// HW ticks until the next SW-tick increment.
	hwRem := k.cfg.HWTicksPerSWTick - k.hwTick%k.cfg.HWTicksPerSWTick
	first := k.cyclesToHWTicks(hwRem)
	return first + (at-k.swTick-1)*k.cfg.HWTicksPerSWTick*k.cfg.CyclesPerTick
}
