package rtos

import (
	"testing"
)

func testCfg() Config {
	return Config{
		CyclesPerTick:    100,
		HWTicksPerSWTick: 1,
		TimesliceTicks:   5,
		// Zero kernel costs make arithmetic exact in unit tests; timing
		// tests below re-enable them explicitly.
		ISRCost:        0,
		DSRCost:        0,
		CtxSwitchCost:  0,
		IdleSwitchCost: 0,
	}
}

func TestChargeAdvancesTime(t *testing.T) {
	k := NewKernel(testCfg())
	done := false
	k.CreateThread("worker", 10, func(c *ThreadCtx) {
		c.Charge(250)
		done = true
		c.Exit()
	})
	k.Advance(1000)
	if !done {
		t.Fatal("worker did not complete")
	}
	if k.Cycles() != 1000 {
		t.Fatalf("cycles = %d, want 1000 (budget fully consumed)", k.Cycles())
	}
	st := k.Stats()
	if st.BusyCycles != 250 {
		t.Fatalf("busy cycles = %d, want 250", st.BusyCycles)
	}
	if st.IdleCycles != 750 {
		t.Fatalf("idle cycles = %d, want 750", st.IdleCycles)
	}
}

func TestChargeSpansQuanta(t *testing.T) {
	k := NewKernel(testCfg())
	done := false
	k.CreateThread("long", 10, func(c *ThreadCtx) {
		c.Charge(950) // needs multiple 300-cycle quanta
		done = true
		c.Exit()
	})
	for i := 0; i < 3; i++ {
		k.Advance(300)
		if done {
			t.Fatalf("completed after %d quanta, want 4", i+1)
		}
	}
	k.Advance(300)
	if !done {
		t.Fatal("charge did not resume across quantum boundaries")
	}
	if got := k.Stats().BusyCycles; got != 950 {
		t.Fatalf("busy cycles %d, want 950", got)
	}
}

func TestTimerTicksAndSWTick(t *testing.T) {
	cfg := testCfg()
	cfg.HWTicksPerSWTick = 4
	k := NewKernel(cfg)
	k.Advance(1000) // 10 HW ticks
	if k.HWTick() != 10 {
		t.Fatalf("hw ticks = %d, want 10", k.HWTick())
	}
	if k.SWTick() != 2 {
		t.Fatalf("sw ticks = %d, want 2 (divider 4)", k.SWTick())
	}
}

func TestPriorityScheduling(t *testing.T) {
	k := NewKernel(testCfg())
	var order []string
	mk := func(name string, prio int) {
		k.CreateThread(name, prio, func(c *ThreadCtx) {
			c.Charge(100)
			order = append(order, name)
			c.Exit()
		})
	}
	mk("low", 20)
	mk("high", 2)
	mk("mid", 10)
	k.Advance(10000)
	want := []string{"high", "mid", "low"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
}

func TestSleepAndAlarms(t *testing.T) {
	k := NewKernel(testCfg())
	var wakeTicks []uint64
	k.CreateThread("sleeper", 5, func(c *ThreadCtx) {
		for i := 0; i < 3; i++ {
			c.Sleep(10)
			wakeTicks = append(wakeTicks, k.SWTick())
		}
		c.Exit()
	})
	k.Advance(100 * 100) // 100 ticks
	want := []uint64{10, 20, 30}
	if len(wakeTicks) != 3 {
		t.Fatalf("woke %d times: %v", len(wakeTicks), wakeTicks)
	}
	for i := range want {
		if wakeTicks[i] != want[i] {
			t.Fatalf("wake ticks %v, want %v", wakeTicks, want)
		}
	}
}

func TestAlarmAfterCallback(t *testing.T) {
	k := NewKernel(testCfg())
	fired := uint64(0)
	k.AlarmAfter(7, func() { fired = k.SWTick() })
	k.Advance(2000)
	if fired != 7 {
		t.Fatalf("alarm fired at tick %d, want 7", fired)
	}
}

func TestTimeslicePreemption(t *testing.T) {
	cfg := testCfg()
	cfg.TimesliceTicks = 2 // 200 cycles per slice
	k := NewKernel(cfg)
	var trace []string
	mk := func(name string) {
		k.CreateThread(name, 10, func(c *ThreadCtx) {
			for i := 0; i < 3; i++ {
				c.Charge(200)
				trace = append(trace, name)
			}
			c.Exit()
		})
	}
	mk("a")
	mk("b")
	k.Advance(5000)
	// With equal priority and a 200-cycle slice, completions interleave:
	// strictly alternating a,b,a,b,... rather than a,a,a,b,b,b.
	if len(trace) != 6 {
		t.Fatalf("trace %v", trace)
	}
	sawAlternation := false
	for i := 1; i < len(trace); i++ {
		if trace[i] != trace[i-1] {
			sawAlternation = true
		}
	}
	if !sawAlternation {
		t.Fatalf("no round-robin interleaving: %v", trace)
	}
}

func TestTimeslicingDisabledRunsToBlock(t *testing.T) {
	cfg := testCfg()
	cfg.TimesliceTicks = 0
	k := NewKernel(cfg)
	var trace []string
	mk := func(name string) {
		k.CreateThread(name, 10, func(c *ThreadCtx) {
			c.Charge(600)
			trace = append(trace, name)
			c.Exit()
		})
	}
	mk("first")
	mk("second")
	k.Advance(5000)
	if len(trace) != 2 || trace[0] != "first" || trace[1] != "second" {
		t.Fatalf("without timeslicing want FIFO completion, got %v", trace)
	}
}

func TestInterruptISRDSRAndWake(t *testing.T) {
	cfg := testCfg()
	cfg.ISRCost, cfg.DSRCost = 25, 15
	k := NewKernel(cfg)
	sem := k.NewSemaphore("data", 0)
	var serviced int
	isrRan, dsrRan := 0, 0
	k.AttachInterrupt(4,
		func() bool { isrRan++; return true },
		func() { dsrRan++; sem.Post() },
	)
	k.CreateThread("service", 3, func(c *ThreadCtx) {
		for {
			sem.Wait(c)
			c.Charge(50)
			serviced++
		}
	})
	k.PostIRQ(4)
	k.Advance(1000)
	if isrRan != 1 || dsrRan != 1 || serviced != 1 {
		t.Fatalf("isr=%d dsr=%d serviced=%d, want 1/1/1", isrRan, dsrRan, serviced)
	}
	st := k.Stats()
	if st.ISRs != 1 || st.DSRs != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.KernelCycles < 40 {
		t.Fatalf("kernel cycles %d, want ≥ ISR+DSR cost 40", st.KernelCycles)
	}
}

func TestInterruptMidQuantumPreemptsCharge(t *testing.T) {
	k := NewKernel(testCfg())
	sem := k.NewSemaphore("s", 0)
	var events []string
	k.AttachInterrupt(1, nil, func() { sem.Post() })
	k.CreateThread("hi", 1, func(c *ThreadCtx) {
		sem.Wait(c)
		events = append(events, "hi-serviced")
		c.Exit()
	})
	k.CreateThread("lo", 20, func(c *ThreadCtx) {
		// Post the IRQ from "hardware" at tick 3 via an alarm, then keep
		// computing; the high-priority thread must preempt.
		k.AlarmAfter(3, func() { k.PostIRQ(1) })
		c.Charge(2000)
		events = append(events, "lo-done")
		c.Exit()
	})
	k.Advance(5000)
	if len(events) != 2 || events[0] != "hi-serviced" || events[1] != "lo-done" {
		t.Fatalf("events %v, want hi preempting lo", events)
	}
}

func TestMaskedInterruptHeldPending(t *testing.T) {
	k := NewKernel(testCfg())
	fired := 0
	k.AttachInterrupt(2, nil, func() { fired++ })
	k.MaskInterrupt(2)
	k.PostIRQ(2)
	k.Advance(500)
	if fired != 0 {
		t.Fatal("masked interrupt delivered")
	}
	if !k.IRQPending(2) {
		t.Fatal("pending latch lost while masked")
	}
	k.UnmaskInterrupt(2)
	k.Advance(500)
	if fired != 1 {
		t.Fatalf("after unmask fired=%d, want 1", fired)
	}
}

func TestIdleStateOnlyRunsCommThreads(t *testing.T) {
	k := NewKernel(testCfg())
	var normalRan, commRan int
	k.CreateThread("app", 10, func(c *ThreadCtx) {
		for {
			normalRan++
			c.Charge(10)
			c.Yield()
		}
	})
	// The channel thread sits at low priority (like an idle-adjacent
	// service thread) so it cannot starve the application in NORMAL state.
	k.CreateThread("channel", 25, func(c *ThreadCtx) {
		for {
			commRan++
			c.Charge(10)
			c.Yield()
		}
	}, Comm())
	if k.State() != StateIdle {
		t.Fatalf("initial state %v, want idle", k.State())
	}
	// Between quanta (idle state), only the comm thread may run.
	k.RunIdleComm(3)
	if normalRan != 0 {
		t.Fatalf("application thread ran %d times in idle state", normalRan)
	}
	if commRan == 0 {
		t.Fatal("communication thread did not run in idle state")
	}
	// Inside a quantum both run.
	k.Advance(500)
	if k.State() != StateIdle {
		t.Fatalf("state after Advance = %v, want idle", k.State())
	}
	if normalRan == 0 {
		t.Fatal("application thread did not run in normal state")
	}
	if k.Stats().StateSwitches < 2 {
		t.Fatalf("state switches %d, want ≥ 2", k.Stats().StateSwitches)
	}
	k.Shutdown()
}

func TestTimesliceSavedAcrossIdle(t *testing.T) {
	cfg := testCfg()
	cfg.TimesliceTicks = 5
	k := NewKernel(cfg)
	k.CreateThread("a", 10, func(c *ThreadCtx) {
		c.Charge(100000)
	})
	k.CreateThread("b", 10, func(c *ThreadCtx) {
		c.Charge(100000)
	})
	// Advance by 1.5 ticks: thread a consumed half of a slice tick.
	k.Advance(150)
	aSlice := k.threads[0].slice
	// Crossing the idle state must not reset the remaining timeslice.
	k.Advance(150)
	if k.threads[0].slice > aSlice {
		t.Fatalf("timeslice grew across idle: %d → %d", aSlice, k.threads[0].slice)
	}
	k.Shutdown()
}

func TestContextSwitchAccounting(t *testing.T) {
	cfg := testCfg()
	cfg.CtxSwitchCost = 10
	cfg.TimesliceTicks = 1
	k := NewKernel(cfg)
	for _, n := range []string{"x", "y"} {
		k.CreateThread(n, 10, func(c *ThreadCtx) {
			c.Charge(5000)
		})
	}
	k.Advance(3000)
	st := k.Stats()
	if st.ContextSwitches == 0 {
		t.Fatal("no context switches recorded")
	}
	if st.KernelCycles < st.ContextSwitches*10 {
		t.Fatalf("kernel cycles %d below switch cost × %d", st.KernelCycles, st.ContextSwitches)
	}
	k.Shutdown()
}

func TestIdleSwitchCostCharged(t *testing.T) {
	cfg := testCfg()
	cfg.IdleSwitchCost = 30
	k := NewKernel(cfg)
	for i := 0; i < 10; i++ {
		k.Advance(100)
	}
	if got := k.Stats().KernelCycles; got != 300 {
		t.Fatalf("kernel cycles %d, want 300 (10 quanta × 30)", got)
	}
}

func TestThreadExitAndShutdownReclaim(t *testing.T) {
	k := NewKernel(testCfg())
	k.CreateThread("quick", 5, func(c *ThreadCtx) {
		c.Charge(10)
		c.Exit()
	})
	blocked := k.CreateThread("stuck", 6, func(c *ThreadCtx) {
		s := k.NewSemaphore("never", 0)
		s.Wait(c)
	})
	k.Advance(1000)
	if k.threads[0].State() != ThreadExited {
		t.Fatalf("quick thread state %v", k.threads[0].State())
	}
	if blocked.State() != ThreadBlocked {
		t.Fatalf("stuck thread state %v", blocked.State())
	}
	k.Shutdown()
	if blocked.State() != ThreadExited {
		t.Fatalf("after shutdown stuck thread state %v", blocked.State())
	}
}

func TestDeadlockCheck(t *testing.T) {
	k := NewKernel(testCfg())
	k.CreateThread("d", 5, func(c *ThreadCtx) {
		k.NewSemaphore("never", 0).Wait(c)
	})
	k.Advance(500)
	if err := k.DeadlockCheck(); err == nil {
		t.Fatal("deadlock not detected")
	}
	k.Shutdown()

	k2 := NewKernel(testCfg())
	k2.CreateThread("s", 5, func(c *ThreadCtx) { c.Sleep(1000000) })
	k2.Advance(500)
	if err := k2.DeadlockCheck(); err != nil {
		t.Fatalf("sleeping thread misreported as deadlock: %v", err)
	}
	k2.Shutdown()
}

func TestCreateThreadValidation(t *testing.T) {
	k := NewKernel(testCfg())
	for _, bad := range []int{-1, NumPriorities} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("priority %d accepted", bad)
				}
			}()
			k.CreateThread("bad", bad, func(*ThreadCtx) {})
		}()
	}
	k.Advance(1)
	defer func() {
		if recover() == nil {
			t.Fatal("CreateThread after Advance accepted")
		}
	}()
	k.CreateThread("late", 1, func(*ThreadCtx) {})
}

func TestPostUnattachedIRQPanics(t *testing.T) {
	k := NewKernel(testCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("PostIRQ on unattached vector accepted")
		}
	}()
	k.PostIRQ(9)
}

func TestTickHooks(t *testing.T) {
	k := NewKernel(testCfg())
	var ticks []uint64
	k.OnTick(func(ht uint64) { ticks = append(ticks, ht) })
	k.Advance(350)
	if len(ticks) != 3 {
		t.Fatalf("tick hook ran %d times for 3.5 ticks, want 3", len(ticks))
	}
	for i, ht := range ticks {
		if ht != uint64(i+1) {
			t.Fatalf("tick sequence %v", ticks)
		}
	}
}

func TestUtilization(t *testing.T) {
	k := NewKernel(testCfg())
	if k.Utilization() != 0 {
		t.Fatal("fresh kernel reports nonzero utilization")
	}
	k.CreateThread("half", 10, func(c *ThreadCtx) {
		c.Charge(500)
		c.Exit()
	})
	k.Advance(1000)
	if u := k.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %.3f, want ≈0.5", u)
	}
}

func TestStateStrings(t *testing.T) {
	if StateIdle.String() != "idle" || StateNormal.String() != "normal" {
		t.Fatal("OSState strings")
	}
	for st := ThreadReady; st <= ThreadExited; st++ {
		if st.String() == "" {
			t.Fatalf("no name for thread state %d", st)
		}
	}
	if ThreadState(42).String() == "" {
		t.Fatal("unknown state string empty")
	}
}
