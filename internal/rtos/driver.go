package rtos

import "fmt"

// Driver is the kernel's device-driver interface, modelled on the eCos
// char-device I/O layer: a driver is initialized at boot, exposes
// word-granular read/write entry points, and services its device's
// interrupt through the ISR/DSR pair it attached.
//
// The paper's key OS modification (section 5.3) is "to write a new device
// driver" through which the application reaches the *simulated* device;
// package board provides that driver (the remote device driver), which
// registers here like any physical device's.
type Driver interface {
	// Name returns the device name used for Lookup, e.g. "/dev/router".
	Name() string
	// Init is called once at boot (before the first Advance).
	Init(k *Kernel) error
	// Read fills buf starting at the device-relative word offset and
	// returns the number of words read.
	Read(c *ThreadCtx, off uint32, buf []uint32) (int, error)
	// Write stores buf at the device-relative word offset and returns the
	// number of words written.
	Write(c *ThreadCtx, off uint32, buf []uint32) (int, error)
}

// RegisterDriver installs a driver in the kernel's device table and runs
// its Init hook, as happens at system boot.
func (k *Kernel) RegisterDriver(d Driver) error {
	if k.started {
		return fmt.Errorf("rtos: RegisterDriver(%q) after first Advance", d.Name())
	}
	if _, dup := k.drivers[d.Name()]; dup {
		return fmt.Errorf("rtos: driver %q already registered", d.Name())
	}
	if err := d.Init(k); err != nil {
		return fmt.Errorf("rtos: init of driver %q: %w", d.Name(), err)
	}
	k.drivers[d.Name()] = d
	return nil
}

// Lookup returns the driver registered under name.
func (k *Kernel) Lookup(name string) (Driver, error) {
	d, ok := k.drivers[name]
	if !ok {
		return nil, fmt.Errorf("rtos: no driver %q", name)
	}
	return d, nil
}

// Drivers returns the number of registered drivers.
func (k *Kernel) Drivers() int { return len(k.drivers) }
