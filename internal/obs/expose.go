package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Metrics are sorted by base name then label
// set, with one # TYPE header per base name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names, metrics := r.snapshot()
	lastBase := ""
	for _, name := range names {
		base, labels := splitName(name)
		m := metrics[name]
		if base != lastBase {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, m.promKind()); err != nil {
				return err
			}
			lastBase = base
		}
		var err error
		switch v := m.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s %d\n", name, v.Value())
		case counterFunc:
			_, err = fmt.Fprintf(w, "%s %d\n", name, v.fn())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s %s\n", name, formatFloat(v.Value()))
		case gaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", name, formatFloat(v.fn()))
		case *Histogram:
			err = writePromHistogram(w, base, labels, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram: cumulative _bucket series
// with the le label appended to the metric's own labels, then _sum and
// _count.
func writePromHistogram(w io.Writer, base, labels string, h *Histogram) error {
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", base, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", base, labels, le)
	}
	suffixed := func(suffix string) string {
		if labels == "" {
			return base + suffix
		}
		return base + suffix + "{" + labels + "}"
	}
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", withLE(formatFloat(ub)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.upper)].Load()
	if _, err := fmt.Fprintf(w, "%s %d\n", withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", suffixed("_sum"), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffixed("_count"), cum)
	return err
}

// HistogramJSON is the JSON shape of one histogram snapshot.
type HistogramJSON struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"` // upper bound → cumulative count
}

// SnapshotJSON is the JSON shape of a full registry snapshot.
type SnapshotJSON struct {
	Counters   map[string]uint64        `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramJSON `json:"histograms"`
}

// Snapshot captures every metric's current value. Map keys are the full
// registered names (labels included); encoding/json sorts them, so the
// serialized form is stable.
func (r *Registry) Snapshot() SnapshotJSON {
	names, metrics := r.snapshot()
	out := SnapshotJSON{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramJSON{},
	}
	for _, name := range names {
		switch v := metrics[name].(type) {
		case *Counter:
			out.Counters[name] = v.Value()
		case counterFunc:
			out.Counters[name] = v.fn()
		case *Gauge:
			out.Gauges[name] = v.Value()
		case gaugeFunc:
			out.Gauges[name] = v.fn()
		case *Histogram:
			hj := HistogramJSON{Count: v.Count(), Sum: v.Sum(), Buckets: map[string]uint64{}}
			cum := uint64(0)
			for i, ub := range v.upper {
				cum += v.counts[i].Load()
				hj.Buckets[formatFloat(ub)] = cum
			}
			hj.Buckets["+Inf"] = v.Count()
			out.Histograms[name] = hj
		}
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the Prometheus exposition; it exists for debugging and
// tests.
func (r *Registry) String() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}
