package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestName(t *testing.T) {
	if got := Name("m"); got != "m" {
		t.Fatalf("Name no labels: %q", got)
	}
	if got := Name("m", "a", "1", "b", "x y"); got != `m{a="1",b="x y"}` {
		t.Fatalf("Name labels: %q", got)
	}
	base, labels := splitName(`m{a="1"}`)
	if base != "m" || labels != `a="1"` {
		t.Fatalf("splitName: %q %q", base, labels)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total"); again != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering counter name as gauge")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)              // bucket le=0.001
	h.Observe(0.001)               // le=0.001 (inclusive upper bound)
	h.Observe(0.05)                // le=0.1
	h.ObserveDuration(time.Second) // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if want := 0.0005 + 0.001 + 0.05 + 1; math.Abs(h.Sum()-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	text := r.String()
	for _, line := range []string{
		`h_seconds_bucket{le="0.001"} 2`,
		`h_seconds_bucket{le="0.01"} 2`,
		`h_seconds_bucket{le="0.1"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_count 4`,
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
}

// TestPrometheusGolden pins the full exposition format: ordering, TYPE
// headers, label rendering, histogram suffixes.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("msgs_total", "chan", "data")).Add(3)
	r.Counter(Name("msgs_total", "chan", "clock")).Add(7)
	r.Gauge("active_runs").Set(1)
	r.CounterFunc("harvested_total", func() uint64 { return 11 })
	h := r.Histogram(Name("lat_seconds", "side", "hw"), []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)

	want := `# TYPE active_runs gauge
active_runs 1
# TYPE harvested_total counter
harvested_total 11
# TYPE lat_seconds histogram
lat_seconds_bucket{side="hw",le="0.5"} 1
lat_seconds_bucket{side="hw",le="1"} 1
lat_seconds_bucket{side="hw",le="+Inf"} 2
lat_seconds_sum{side="hw"} 2.25
lat_seconds_count{side="hw"} 2
# TYPE msgs_total counter
msgs_total{chan="clock"} 7
msgs_total{chan="data"} 3
`
	if got := r.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(0.5)
	r.GaugeFunc("gf", func() float64 { return 9 })
	r.Histogram("h", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap SnapshotJSON
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if snap.Counters["c"] != 2 || snap.Gauges["g"] != 0.5 || snap.Gauges["gf"] != 9 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
	hj, ok := snap.Histograms["h"]
	if !ok || hj.Count != 1 || hj.Buckets["1"] != 1 || hj.Buckets["+Inf"] != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", hj)
	}
}

// TestConcurrentHammer exercises every instrument from many goroutines
// while a scraper reads the exposition, and checks the final totals.
// Run under -race it is the registry's thread-safety proof.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.String()
				var sb strings.Builder
				_ = r.WriteJSON(&sb)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_total")
			g := r.Gauge("hammer_gauge")
			h := r.Histogram("hammer_seconds", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) * 1e-4)
			}
		}(w)
	}
	// Unblock the scraper once the workers are done, then join everyone.
	go func() {
		defer close(stop)
		for r.Counter("hammer_total").Value() < workers*iters {
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	if got := r.Counter("hammer_total").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("hammer_gauge").Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("hammer_seconds", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
