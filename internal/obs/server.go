package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler builds the debug mux for a registry:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot of the same registry
//	/healthz        liveness probe ("ok")
//	/debug/pprof/*  the standard net/http/pprof handlers
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug server on addr (e.g. ":6060" or
// "127.0.0.1:0") and returns once it is listening. The server runs on a
// background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
