// Package obs is the repository's live observability layer: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms) with Prometheus text and JSON exposition,
// plus an optional debug HTTP server (see server.go).
//
// The registry is the co-simulation analogue of CHESSY-style
// synchronization instrumentation: endpoints publish per-quantum CLOCK
// rendezvous latencies and live channel counters into it, so a run can
// be observed while it is alive instead of only through the Metrics
// struct read after router.Run returns.
//
// Metric names follow Prometheus conventions; labels are baked into the
// registered name with the Name helper:
//
//	reg.Counter(obs.Name("cosim_msgs_total", "side", "hw", "chan", "data"))
//
// All instrument operations are lock-free on the hot path; registration
// and exposition take the registry mutex.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) promKind() string { return "counter" }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add sums d into the gauge (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) promKind() string { return "gauge" }

// counterFunc exposes a caller-owned monotonic counter, read at scrape
// time. This is how the session layer's resilience counters are
// harvested incrementally: every exposition reads the live atomics.
type counterFunc struct{ fn func() uint64 }

func (counterFunc) promKind() string { return "counter" }

// gaugeFunc exposes a caller-owned instantaneous value at scrape time.
type gaugeFunc struct{ fn func() float64 }

func (gaugeFunc) promKind() string { return "gauge" }

// DefaultLatencyBuckets spans 1µs..2.5s, the plausible range of a CLOCK
// rendezvous from in-process channels to a congested WAN link.
var DefaultLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket histogram (cumulative exposition, like a
// Prometheus classic histogram). Observations are in seconds.
type Histogram struct {
	upper  []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-summed
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records a value in seconds.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values, in seconds.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) promKind() string { return "histogram" }

// metric is any registered instrument.
type metric interface{ promKind() string }

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// Name renders a full metric name with labels: Name("m", "k", "v")
// returns `m{k="v"}`. Label pairs are emitted in the given order.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates `base{labels}` into its two parts.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// register get-or-creates the named metric via mk, panicking on a kind
// clash: registering one name as two different instrument types is a
// programming error, not a runtime condition.
func (r *Registry) register(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter get-or-creates a counter.
func (r *Registry) Counter(name string) *Counter {
	m := r.register(name, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.promKind()))
	}
	return c
}

// Gauge get-or-creates a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.promKind()))
	}
	return g
}

// Histogram get-or-creates a histogram; buckets are upper bounds in
// seconds (nil selects DefaultLatencyBuckets). The bucket layout of an
// already-registered histogram wins.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	m := r.register(name, func() metric { return newHistogram(buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.promKind()))
	}
	return h
}

// CounterFunc registers fn as a scrape-time counter. Re-registering a
// name replaces the function (the session layer re-registers after a
// reconnect-driven transport swap).
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = counterFunc{fn: fn}
}

// GaugeFunc registers fn as a scrape-time gauge, replacing any previous
// registration of the name.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = gaugeFunc{fn: fn}
}

// snapshot returns the registered names sorted for stable exposition:
// primary key base name (so # TYPE headers group), secondary the label
// set.
func (r *Registry) snapshot() (names []string, metrics map[string]metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	metrics = make(map[string]metric, len(r.metrics))
	for k, v := range r.metrics {
		metrics[k] = v
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		bi, li := splitName(names[i])
		bj, lj := splitName(names[j])
		if bi != bj {
			return bi < bj
		}
		return li < lj
	})
	return names, metrics
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
