package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches path from the test server and returns status + body.
func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Name("cosim_msgs_total", "chan", "data")).Add(42)
	reg.Histogram("cosim_sync_rendezvous_seconds", nil).Observe(0.002)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		`cosim_msgs_total{chan="data"} 42`,
		"# TYPE cosim_sync_rendezvous_seconds histogram",
		"cosim_sync_rendezvous_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json: status %d", code)
	}
	var snap SnapshotJSON
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if snap.Counters[`cosim_msgs_total{chan="data"}`] != 42 {
		t.Fatalf("/metrics.json wrong counter: %+v", snap.Counters)
	}

	if code, body := get(t, srv, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
