package iss

import (
	"strings"
	"testing"
)

func TestAssembleLabelsAndComments(t *testing.T) {
	src := `
# leading comment
start:  li a0, 1        // trailing comment
        j end
mid:    li a0, 2
end:    ecall
`
	words, labels, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if labels["start"] != 0 {
		t.Fatalf("start at %#x", labels["start"])
	}
	if labels["mid"] != 8 || labels["end"] != 12 {
		t.Fatalf("labels %v", labels)
	}
	if len(words) != 4 {
		t.Fatalf("assembled %d words, want 4", len(words))
	}
}

func TestAssembleInlineAndStackedLabels(t *testing.T) {
	src := "a: b: c: ecall"
	_, labels, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"a", "b", "c"} {
		if labels[l] != 0 {
			t.Fatalf("label %s at %#x", l, labels[l])
		}
	}
}

func TestAssembleLiExpansion(t *testing.T) {
	// Small immediates take one word; large take two (lui+addi).
	small, _, err := Assemble("li a0, 100\necall")
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 2 {
		t.Fatalf("small li assembled to %d words", len(small))
	}
	large, _, err := Assemble("li a0, 0x12345678\necall")
	if err != nil {
		t.Fatal(err)
	}
	if len(large) != 3 {
		t.Fatalf("large li assembled to %d words", len(large))
	}
	// The %hi rounding case: low half ≥ 0x800 must round the lui up.
	cpu := run(t, "li a0, 0x12345fff\necall", nil)
	if cpu.X[10] != 0x12345fff {
		t.Fatalf("li 0x12345fff = %#x", cpu.X[10])
	}
	cpu2 := run(t, "li a0, 0xFFFFF800\necall", nil)
	if cpu2.X[10] != 0xFFFFF800 {
		t.Fatalf("li 0xFFFFF800 = %#x", cpu2.X[10])
	}
}

func TestAssembleWordDirectiveAndLa(t *testing.T) {
	src := `
    la   t0, table
    lw   a0, 0(t0)
    lw   a1, 4(t0)
    add  a0, a0, a1
    ecall
table:
    .word 40
    .word 2
`
	words, labels, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if labels["table"] == 0 {
		t.Fatal("table label missing")
	}
	cpu := New(4096)
	if err := cpu.LoadProgram(words, 0); err != nil {
		t.Fatal(err)
	}
	halt, err := cpu.Run(100)
	if err != nil || halt != HaltECall {
		t.Fatalf("halt=%v err=%v", halt, err)
	}
	if cpu.X[10] != 42 {
		t.Fatalf("a0 = %d, want 42", cpu.X[10])
	}
}

func TestAssembleABIAndXNames(t *testing.T) {
	a, _, err := Assemble("add a0, t0, s1\necall")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Assemble("add x10, x5, x9\necall")
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("ABI and x-name encodings differ: %#x vs %#x", a[0], b[0])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frobnicate a0, a1",   // unknown mnemonic
		"add a0, a1",          // wrong arity
		"addi a0, a1, 5000",   // imm out of range
		"lw a0, 4(qq)",        // bad register
		"lw a0, 4",            // malformed mem operand
		"beq a0, a1, nowhere", // unknown label
		"dup: nop\ndup: nop",  // duplicate label
		"slli a0, a0, 33",     // shift out of range
		"lui a0, 0x100000",    // 20-bit overflow
		"bad label: nop",      // label with space
		"sw a0, 99999(a1)",    // store offset range
		".word",               // missing operand
		"jalr a0, a1, a2, a3", // arity
		"beq a0, a1, 3",       // odd branch offset
	}
	for _, src := range cases {
		if _, _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleErrorCarriesLineNumber(t *testing.T) {
	_, _, err := Assemble("nop\nnop\nbogus x, y\n")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q lacks line number", err)
	}
}

func TestBranchEncodingRoundTrip(t *testing.T) {
	// Forward and backward branch offsets execute correctly.
	src := `
    li  t0, 0
    li  a0, 0
back:
    addi a0, a0, 1
    addi t0, t0, 1
    li   t1, 3
    blt  t0, t1, back
    ecall`
	cpu := run(t, src, nil)
	if cpu.X[10] != 3 {
		t.Fatalf("loop executed %d times, want 3", cpu.X[10])
	}
}

func TestJalSingleOperandUsesRA(t *testing.T) {
	one, _, err := Assemble("jal target\ntarget: ecall")
	if err != nil {
		t.Fatal(err)
	}
	two, _, err := Assemble("jal ra, target\ntarget: ecall")
	if err != nil {
		t.Fatal(err)
	}
	if one[0] != two[0] {
		t.Fatal("jal label and jal ra,label differ")
	}
}
