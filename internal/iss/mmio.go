package iss

import (
	"encoding/binary"
	"fmt"
)

// load performs a sized load at addr, consulting the MMIO handler first.
// funct3 is the RISC-V load encoding (0=LB 1=LH 2=LW 4=LBU 5=LHU).
func (c *CPU) load(addr, funct3 uint32) (uint32, error) {
	size := 1 << (funct3 & 3)
	if c.MMIO != nil {
		word, handled, err := c.MMIO.MMIOLoad(addr &^ 3)
		if err != nil {
			return 0, err
		}
		if handled {
			lane := addr & 3
			var v uint32
			switch size {
			case 1:
				v = (word >> (8 * lane)) & 0xff
				if funct3 == 0 {
					v = signExtend(v, 8)
				}
			case 2:
				v = (word >> (8 * (lane & 2))) & 0xffff
				if funct3 == 1 {
					v = signExtend(v, 16)
				}
			default:
				v = word
			}
			return v, nil
		}
	}
	if int(addr)+size > len(c.Mem) {
		return 0, fmt.Errorf("iss: %d-byte load at %#x out of memory (pc %#x)", size, addr, c.PC)
	}
	switch size {
	case 1:
		v := uint32(c.Mem[addr])
		if funct3 == 0 {
			v = signExtend(v, 8)
		}
		return v, nil
	case 2:
		v := uint32(binary.LittleEndian.Uint16(c.Mem[addr:]))
		if funct3 == 1 {
			v = signExtend(v, 16)
		}
		return v, nil
	default:
		return binary.LittleEndian.Uint32(c.Mem[addr:]), nil
	}
}

// store performs a sized store at addr, consulting the MMIO handler first.
// funct3 is the RISC-V store encoding (0=SB 1=SH 2=SW).
func (c *CPU) store(addr, funct3, val uint32) error {
	size := 1 << funct3
	if c.MMIO != nil {
		handled, err := c.MMIO.MMIOStore(addr, size, val)
		if err != nil {
			return err
		}
		if handled {
			return nil
		}
	}
	if int(addr)+size > len(c.Mem) {
		return fmt.Errorf("iss: %d-byte store at %#x out of memory (pc %#x)", size, addr, c.PC)
	}
	switch size {
	case 1:
		c.Mem[addr] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(c.Mem[addr:], uint16(val))
	default:
		binary.LittleEndian.PutUint32(c.Mem[addr:], val)
	}
	return nil
}
