package iss

import "fmt"

// The assembler tables map mnemonic → funct encoding; disassembly needs
// the inverse. Each table is injective, so these reverse maps are
// well-defined, and a direct lookup replaces an order-sensitive scan.
var (
	mName      = invert(mFunct)
	iName      = invert(iFunct)
	loadName   = invert(loadFunct)
	storeName  = invert(storeFunct)
	branchName = invert(branchFunct)
	rName      = invertR(rFunct)
)

func invert(m map[string]uint32) map[uint32]string {
	out := make(map[uint32]string, len(m))
	for name, f3 := range m { //cosim:ignore determinism -- per-key write into the inverse of an injective map; result is order-independent
		out[f3] = name
	}
	return out
}

func invertR(m map[string][2]uint32) map[[2]uint32]string {
	out := make(map[[2]uint32]string, len(m))
	for name, f := range m { //cosim:ignore determinism -- per-key write into the inverse of an injective map; result is order-independent
		out[f] = name
	}
	return out
}

// Disasm decodes one machine word into assembler syntax (the same dialect
// Assemble accepts, with x-register names and numeric offsets). Unknown
// encodings render as ".word 0x…" so a full round trip never fails.
func Disasm(inst uint32) string {
	opcode := inst & 0x7f
	rd := (inst >> 7) & 0x1f
	funct3 := (inst >> 12) & 0x7
	rs1 := (inst >> 15) & 0x1f
	rs2 := (inst >> 20) & 0x1f
	funct7 := inst >> 25
	immI := int32(inst) >> 20
	r := func(n uint32) string { return fmt.Sprintf("x%d", n) }

	switch opcode {
	case 0x33:
		if funct7 == 0x01 {
			if name, ok := mName[funct3]; ok {
				return fmt.Sprintf("%s %s, %s, %s", name, r(rd), r(rs1), r(rs2))
			}
			break
		}
		if name, ok := rName[[2]uint32{funct3, funct7}]; ok {
			return fmt.Sprintf("%s %s, %s, %s", name, r(rd), r(rs1), r(rs2))
		}
	case 0x13:
		switch funct3 {
		case 1:
			return fmt.Sprintf("slli %s, %s, %d", r(rd), r(rs1), rs2)
		case 5:
			if funct7 == 0x20 {
				return fmt.Sprintf("srai %s, %s, %d", r(rd), r(rs1), rs2)
			}
			return fmt.Sprintf("srli %s, %s, %d", r(rd), r(rs1), rs2)
		}
		if name, ok := iName[funct3]; ok {
			return fmt.Sprintf("%s %s, %s, %d", name, r(rd), r(rs1), immI)
		}
	case 0x03:
		if name, ok := loadName[funct3]; ok {
			return fmt.Sprintf("%s %s, %d(%s)", name, r(rd), immI, r(rs1))
		}
	case 0x23:
		imm := int32(signExtend(((inst>>25)<<5)|rd, 12))
		if name, ok := storeName[funct3]; ok {
			return fmt.Sprintf("%s %s, %d(%s)", name, r(rs2), imm, r(rs1))
		}
	case 0x63:
		imm := int32(signExtend(
			((inst>>31)<<12)|(((inst>>7)&1)<<11)|(((inst>>25)&0x3f)<<5)|(((inst>>8)&0xf)<<1), 13))
		if name, ok := branchName[funct3]; ok {
			return fmt.Sprintf("%s %s, %s, %d", name, r(rs1), r(rs2), imm)
		}
	case 0x6f:
		imm := int32(signExtend(
			((inst>>31)<<20)|(((inst>>12)&0xff)<<12)|(((inst>>20)&1)<<11)|(((inst>>21)&0x3ff)<<1), 21))
		return fmt.Sprintf("jal %s, %d", r(rd), imm)
	case 0x67:
		if funct3 == 0 {
			return fmt.Sprintf("jalr %s, %d(%s)", r(rd), immI, r(rs1))
		}
	case 0x37:
		return fmt.Sprintf("lui %s, 0x%x", r(rd), inst>>12)
	case 0x17:
		return fmt.Sprintf("auipc %s, 0x%x", r(rd), inst>>12)
	case 0x73:
		switch inst >> 20 {
		case 0:
			return "ecall"
		case 1:
			return "ebreak"
		}
	}
	return fmt.Sprintf(".word 0x%08x", inst)
}

// DisasmProgram renders a whole program with addresses, one instruction
// per line — the format a debugger or trace viewer would show.
func DisasmProgram(words []uint32, base uint32) []string {
	out := make([]string, len(words))
	for i, w := range words {
		out[i] = fmt.Sprintf("%08x:  %08x  %s", base+uint32(4*i), w, Disasm(w))
	}
	return out
}
