package iss

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/checksum"
)

func TestMExtensionArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want uint32
	}{
		{"li a1, 7\nli a2, 6\nmul a0, a1, a2\necall", 42},
		{"li a1, -3\nli a2, 5\nmul a0, a1, a2\necall", uint32(0xfffffff1)},
		{"li a1, 0x10000\nli a2, 0x10000\nmulhu a0, a1, a2\necall", 1},
		{"li a1, -1\nli a2, -1\nmulh a0, a1, a2\necall", 0}, // (-1)*(-1)=1, high word 0
		{"li a1, -8\nli a2, 2\nmulhsu a0, a1, a2\necall", 0xffffffff},
		{"li a1, 100\nli a2, 7\ndiv a0, a1, a2\necall", 14},
		{"li a1, -100\nli a2, 7\ndiv a0, a1, a2\necall", uint32(0xfffffff2)}, // -14
		{"li a1, 100\nli a2, 7\nrem a0, a1, a2\necall", 2},
		{"li a1, -100\nli a2, 7\nrem a0, a1, a2\necall", uint32(0xfffffffe)}, // -2
		{"li a1, 100\nli a2, 7\ndivu a0, a1, a2\necall", 14},
		{"li a1, 100\nli a2, 7\nremu a0, a1, a2\necall", 2},
		// RISC-V division-by-zero semantics (no trap).
		{"li a1, 5\nli a2, 0\ndiv a0, a1, a2\necall", 0xffffffff},
		{"li a1, 5\nli a2, 0\ndivu a0, a1, a2\necall", 0xffffffff},
		{"li a1, 5\nli a2, 0\nrem a0, a1, a2\necall", 5},
		{"li a1, 5\nli a2, 0\nremu a0, a1, a2\necall", 5},
		// Signed overflow case.
		{"li a1, -2147483648\nli a2, -1\ndiv a0, a1, a2\necall", 0x80000000},
		{"li a1, -2147483648\nli a2, -1\nrem a0, a1, a2\necall", 0},
	}
	for _, c := range cases {
		cpu := run(t, c.src, nil)
		if cpu.X[10] != c.want {
			t.Errorf("%q: a0 = %#x, want %#x", c.src, cpu.X[10], c.want)
		}
	}
}

func TestMExtensionDisabled(t *testing.T) {
	words, _, err := Assemble("li a1, 2\nli a2, 3\nmul a0, a1, a2\necall")
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(4096)
	cpu.DisableM = true
	cpu.LoadProgram(words, 0)
	if _, err := cpu.Run(100); err == nil {
		t.Fatal("RV32I-only core executed an M instruction")
	}
}

func TestMExtensionCosts(t *testing.T) {
	mul := run(t, "mul a0, a1, a2\necall", nil)
	div := run(t, "div a0, a1, a2\necall", nil)
	if mul.Cycles != mulCost+1 { // +1 for ecall
		t.Fatalf("mul cycles %d", mul.Cycles)
	}
	if div.Cycles != divCost+1 {
		t.Fatalf("div cycles %d", div.Cycles)
	}
}

func TestDisasmRoundTrip(t *testing.T) {
	src := `
start:
    addi sp, sp, -16
    sw   ra, 12(sp)
    li   t0, 0
    lui  t1, 0xbeef
    auipc t2, 0
loop:
    lhu  a0, 4(t0)
    mul  a1, a0, a0
    div  a2, a1, a0
    blt  t0, t1, loop
    jal  ra, start
    jalr zero, 0(ra)
    ecall
    ebreak
`
	words, _, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	// Disassemble then re-assemble: identical machine code.
	lines := make([]string, len(words))
	for i, w := range words {
		lines[i] = Disasm(w)
		if strings.HasPrefix(lines[i], ".word") {
			t.Fatalf("word %d (%#08x) did not disassemble", i, w)
		}
	}
	re, _, err := Assemble(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, strings.Join(lines, "\n"))
	}
	if len(re) != len(words) {
		t.Fatalf("reassembled to %d words, want %d", len(re), len(words))
	}
	for i := range words {
		if re[i] != words[i] {
			t.Fatalf("word %d: %#08x → %q → %#08x", i, words[i], lines[i], re[i])
		}
	}
}

func TestDisasmUnknownWord(t *testing.T) {
	if got := Disasm(0xffffffff); !strings.HasPrefix(got, ".word") {
		t.Fatalf("garbage decoded as %q", got)
	}
}

func TestDisasmProgramFormat(t *testing.T) {
	lines := DisasmProgram([]uint32{0x00000013, 0x00000073}, 0x100)
	if len(lines) != 2 {
		t.Fatal(lines)
	}
	if !strings.Contains(lines[0], "00000100:") || !strings.Contains(lines[1], "ecall") {
		t.Fatalf("%v", lines)
	}
}

func TestCRC16KernelMatchesReference(t *testing.T) {
	// The canonical vector first.
	crc, cycles, err := RunCRC16([]byte("123456789"))
	if err != nil {
		t.Fatal(err)
	}
	if crc != 0x29b1 {
		t.Fatalf("CRC kernel(123456789) = %#04x, want 0x29b1", crc)
	}
	if cycles == 0 {
		t.Fatal("no cycles charged")
	}
	// Differential against the Go implementation.
	f := func(data []byte) bool {
		if len(data) > 256 {
			data = data[:256]
		}
		got, _, err := RunCRC16(data)
		if err != nil {
			return false
		}
		return got == checksum.CRC16CCITT(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCRC16KernelCostPerByte(t *testing.T) {
	_, c16, err := RunCRC16(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	_, c64, err := RunCRC16(make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	perByte := float64(c64-c16) / 48
	// Bitwise CRC: 8 bit iterations × ~7 instructions ≈ 60–100 cycles/byte.
	if perByte < 40 || perByte > 150 {
		t.Fatalf("CRC cost %.1f cycles/byte outside plausible range", perByte)
	}
}
