package iss

import "fmt"

// The RV32M standard extension (MUL/DIV/REM), decoded from the R-type
// opcode space with funct7 = 0x01. Kept in its own file because it is an
// extension in the ISA sense too: CPUs reject it when DisableM is set,
// which the tests use to pin down the base-ISA/extension boundary.

// mExtCost is the cycle cost of multiply/divide on the modelled pipeline.
const (
	mulCost = 3
	divCost = 16
)

// stepMExt executes one RV32M instruction (funct7 == 0x01 in the R-type
// space). Returns false if funct3 does not decode.
func (c *CPU) stepMExt(funct3, rd, rs1, rs2 uint32) (cost uint64, ok bool, err error) {
	if c.DisableM {
		return 0, false, fmt.Errorf("iss: RV32M instruction at %#x but M extension disabled", c.PC)
	}
	a, b := c.X[rs1], c.X[rs2]
	var v uint32
	cost = mulCost
	switch funct3 {
	case 0: // MUL
		v = a * b
	case 1: // MULH
		v = uint32((int64(int32(a)) * int64(int32(b))) >> 32)
	case 2: // MULHSU
		v = uint32((int64(int32(a)) * int64(b)) >> 32)
	case 3: // MULHU
		v = uint32((uint64(a) * uint64(b)) >> 32)
	case 4: // DIV
		cost = divCost
		switch {
		case b == 0:
			v = ^uint32(0) // RISC-V: division by zero yields all ones
		case int32(a) == -1<<31 && int32(b) == -1:
			v = a // overflow case: result = dividend
		default:
			v = uint32(int32(a) / int32(b))
		}
	case 5: // DIVU
		cost = divCost
		if b == 0 {
			v = ^uint32(0)
		} else {
			v = a / b
		}
	case 6: // REM
		cost = divCost
		switch {
		case b == 0:
			v = a
		case int32(a) == -1<<31 && int32(b) == -1:
			v = 0
		default:
			v = uint32(int32(a) % int32(b))
		}
	case 7: // REMU
		cost = divCost
		if b == 0 {
			v = a
		} else {
			v = a % b
		}
	default:
		return 0, false, nil
	}
	if rd != 0 {
		c.X[rd] = v
	}
	return cost, true, nil
}

var mFunct = map[string]uint32{
	"mul": 0, "mulh": 1, "mulhsu": 2, "mulhu": 3,
	"div": 4, "divu": 5, "rem": 6, "remu": 7,
}
