// Package iss implements a small RV32I-subset instruction-set simulator
// with a two-pass assembler. The board's application software uses it to
// execute its compute kernels (the packet checksum of the paper's
// testbench) as real instructions, so the cycle costs charged to RTOS
// threads are measured rather than guessed — the timing-annotation
// approach of the software timing models the paper cites ([14],[15]).
//
// Supported: the RV32I base integer ISA minus FENCE/CSR (ADD..AND,
// immediates, loads/stores, branches, JAL/JALR, LUI/AUIPC, ECALL/EBREAK).
// ECALL halts the CPU, returning control to the caller — the convention
// our bare-metal kernels use to "return".
package iss

import (
	"encoding/binary"
	"fmt"
)

// HaltReason tells why Run stopped.
type HaltReason int

const (
	// HaltNone: still runnable (only from Step).
	HaltNone HaltReason = iota
	// HaltECall: the program executed ECALL (normal completion).
	HaltECall
	// HaltEBreak: the program executed EBREAK (debugger trap).
	HaltEBreak
	// HaltMaxSteps: the step budget ran out.
	HaltMaxSteps
)

// String implements fmt.Stringer.
func (h HaltReason) String() string {
	switch h {
	case HaltNone:
		return "running"
	case HaltECall:
		return "ecall"
	case HaltEBreak:
		return "ebreak"
	case HaltMaxSteps:
		return "max-steps"
	default:
		return fmt.Sprintf("HaltReason(%d)", int(h))
	}
}

// CostModel assigns a cycle cost to each instruction class; the defaults
// model a simple in-order pipeline with a two-cycle memory and taken-branch
// penalty.
type CostModel struct {
	ALU, Load, Store, BranchTaken, BranchNotTaken, Jump uint64
}

// DefaultCosts returns the standard cost model.
func DefaultCosts() CostModel {
	return CostModel{ALU: 1, Load: 2, Store: 2, BranchTaken: 2, BranchNotTaken: 1, Jump: 2}
}

// CPU is one RV32IM hart with a private little-endian memory.
type CPU struct {
	X      [32]uint32 // x0 hardwired to zero
	PC     uint32
	Mem    []byte
	Cycles uint64 // accumulated cost-model cycles
	Steps  uint64 // retired instructions
	Costs  CostModel
	// DisableM turns the RV32M extension off (RV32I-only core).
	DisableM bool
	// MMIO, when non-nil, is consulted before memory on every load and
	// store; a handled access bypasses Mem entirely. This is the hook
	// that lets the CPU sit on a simulated bus (see internal/cpucore).
	MMIO MMIOHandler
}

// MMIOHandler intercepts loads and stores in memory-mapped I/O regions.
// handled=false passes the access through to the CPU's private memory.
// Byte and half accesses are widened: the handler always moves a 32-bit
// value and the CPU extracts/merges the addressed lane.
type MMIOHandler interface {
	// MMIOLoad returns the word containing byte address addr.
	MMIOLoad(addr uint32) (val uint32, handled bool, err error)
	// MMIOStore writes the sized value at byte address addr.
	MMIOStore(addr uint32, size int, val uint32) (handled bool, err error)
}

// New creates a CPU with memSize bytes of zeroed memory.
func New(memSize int) *CPU {
	return &CPU{Mem: make([]byte, memSize), Costs: DefaultCosts()}
}

// Reset clears registers, counters and the PC (memory is preserved).
func (c *CPU) Reset() {
	c.X = [32]uint32{}
	c.PC = 0
	c.Cycles = 0
	c.Steps = 0
}

// LoadProgram copies machine words into memory at byte address at.
func (c *CPU) LoadProgram(words []uint32, at uint32) error {
	if int(at)+4*len(words) > len(c.Mem) {
		return fmt.Errorf("iss: program of %d words does not fit at %#x", len(words), at)
	}
	for i, w := range words {
		binary.LittleEndian.PutUint32(c.Mem[at+uint32(4*i):], w)
	}
	return nil
}

// WriteHalf stores a 16-bit little-endian value at a byte address.
func (c *CPU) WriteHalf(addr uint32, v uint16) error {
	if int(addr)+2 > len(c.Mem) {
		return fmt.Errorf("iss: half store at %#x out of memory", addr)
	}
	binary.LittleEndian.PutUint16(c.Mem[addr:], v)
	return nil
}

// WriteWord stores a 32-bit little-endian value at a byte address.
func (c *CPU) WriteWord(addr uint32, v uint32) error {
	if int(addr)+4 > len(c.Mem) {
		return fmt.Errorf("iss: word store at %#x out of memory", addr)
	}
	binary.LittleEndian.PutUint32(c.Mem[addr:], v)
	return nil
}

// ReadWord loads a 32-bit value from a byte address.
func (c *CPU) ReadWord(addr uint32) (uint32, error) {
	if int(addr)+4 > len(c.Mem) {
		return 0, fmt.Errorf("iss: word load at %#x out of memory", addr)
	}
	return binary.LittleEndian.Uint32(c.Mem[addr:]), nil
}

func signExtend(v uint32, bits uint) uint32 {
	shift := 32 - bits
	return uint32(int32(v<<shift) >> shift)
}

// Step executes one instruction. It returns the halt reason (HaltNone when
// execution should continue) or an error for illegal instructions and
// memory faults.
func (c *CPU) Step() (HaltReason, error) {
	if int(c.PC)+4 > len(c.Mem) {
		return HaltNone, fmt.Errorf("iss: PC %#x outside memory", c.PC)
	}
	inst := binary.LittleEndian.Uint32(c.Mem[c.PC:])
	opcode := inst & 0x7f
	rd := (inst >> 7) & 0x1f
	funct3 := (inst >> 12) & 0x7
	rs1 := (inst >> 15) & 0x1f
	rs2 := (inst >> 20) & 0x1f
	funct7 := inst >> 25

	nextPC := c.PC + 4
	cost := c.Costs.ALU
	setRd := func(v uint32) {
		if rd != 0 {
			c.X[rd] = v
		}
	}

	switch opcode {
	case 0x33: // R-type ALU
		if funct7 == 0x01 { // RV32M
			mCost, ok, err := c.stepMExt(funct3, rd, rs1, rs2)
			if err != nil {
				return HaltNone, err
			}
			if !ok {
				return HaltNone, fmt.Errorf("iss: illegal M-ext funct3=%d at %#x", funct3, c.PC)
			}
			c.Cycles += mCost
			c.Steps++
			c.PC = nextPC
			return HaltNone, nil
		}
		a, b := c.X[rs1], c.X[rs2]
		var v uint32
		switch {
		case funct3 == 0 && funct7 == 0x00:
			v = a + b
		case funct3 == 0 && funct7 == 0x20:
			v = a - b
		case funct3 == 1 && funct7 == 0x00:
			v = a << (b & 31)
		case funct3 == 2 && funct7 == 0x00: // SLT
			if int32(a) < int32(b) {
				v = 1
			}
		case funct3 == 3 && funct7 == 0x00: // SLTU
			if a < b {
				v = 1
			}
		case funct3 == 4 && funct7 == 0x00:
			v = a ^ b
		case funct3 == 5 && funct7 == 0x00:
			v = a >> (b & 31)
		case funct3 == 5 && funct7 == 0x20:
			v = uint32(int32(a) >> (b & 31))
		case funct3 == 6 && funct7 == 0x00:
			v = a | b
		case funct3 == 7 && funct7 == 0x00:
			v = a & b
		default:
			return HaltNone, fmt.Errorf("iss: illegal R-type funct3=%d funct7=%#x at %#x", funct3, funct7, c.PC)
		}
		setRd(v)
	case 0x13: // I-type ALU
		a := c.X[rs1]
		imm := signExtend(inst>>20, 12)
		shamt := (inst >> 20) & 31
		var v uint32
		switch funct3 {
		case 0:
			v = a + imm
		case 1:
			if funct7 != 0 {
				return HaltNone, fmt.Errorf("iss: illegal SLLI at %#x", c.PC)
			}
			v = a << shamt
		case 2:
			if int32(a) < int32(imm) {
				v = 1
			}
		case 3:
			if a < imm {
				v = 1
			}
		case 4:
			v = a ^ imm
		case 5:
			switch funct7 {
			case 0x00:
				v = a >> shamt
			case 0x20:
				v = uint32(int32(a) >> shamt)
			default:
				return HaltNone, fmt.Errorf("iss: illegal shift at %#x", c.PC)
			}
		case 6:
			v = a | imm
		case 7:
			v = a & imm
		}
		setRd(v)
	case 0x03: // loads
		imm := signExtend(inst>>20, 12)
		addr := c.X[rs1] + imm
		cost = c.Costs.Load
		switch funct3 {
		case 0, 1, 2, 4, 5:
			v, err := c.load(addr, funct3)
			if err != nil {
				return HaltNone, err
			}
			setRd(v)
		default:
			return HaltNone, fmt.Errorf("iss: illegal load funct3=%d at %#x", funct3, c.PC)
		}
	case 0x23: // stores
		imm := signExtend(((inst>>25)<<5)|rd, 12)
		addr := c.X[rs1] + imm
		cost = c.Costs.Store
		switch funct3 {
		case 0, 1, 2:
			if err := c.store(addr, funct3, c.X[rs2]); err != nil {
				return HaltNone, err
			}
		default:
			return HaltNone, fmt.Errorf("iss: illegal store funct3=%d at %#x", funct3, c.PC)
		}
	case 0x63: // branches
		imm := signExtend(
			((inst>>31)<<12)|(((inst>>7)&1)<<11)|(((inst>>25)&0x3f)<<5)|(((inst>>8)&0xf)<<1), 13)
		a, b := c.X[rs1], c.X[rs2]
		var take bool
		switch funct3 {
		case 0:
			take = a == b
		case 1:
			take = a != b
		case 4:
			take = int32(a) < int32(b)
		case 5:
			take = int32(a) >= int32(b)
		case 6:
			take = a < b
		case 7:
			take = a >= b
		default:
			return HaltNone, fmt.Errorf("iss: illegal branch funct3=%d at %#x", funct3, c.PC)
		}
		if take {
			nextPC = c.PC + imm
			cost = c.Costs.BranchTaken
		} else {
			cost = c.Costs.BranchNotTaken
		}
	case 0x6f: // JAL
		imm := signExtend(
			((inst>>31)<<20)|(((inst>>12)&0xff)<<12)|(((inst>>20)&1)<<11)|(((inst>>21)&0x3ff)<<1), 21)
		setRd(c.PC + 4)
		nextPC = c.PC + imm
		cost = c.Costs.Jump
	case 0x67: // JALR
		if funct3 != 0 {
			return HaltNone, fmt.Errorf("iss: illegal JALR funct3=%d at %#x", funct3, c.PC)
		}
		imm := signExtend(inst>>20, 12)
		target := (c.X[rs1] + imm) &^ 1
		setRd(c.PC + 4)
		nextPC = target
		cost = c.Costs.Jump
	case 0x37: // LUI
		setRd(inst & 0xfffff000)
	case 0x17: // AUIPC
		setRd(c.PC + (inst & 0xfffff000))
	case 0x73: // SYSTEM
		c.Cycles += cost
		c.Steps++
		c.PC = nextPC
		switch inst >> 20 {
		case 0:
			return HaltECall, nil
		case 1:
			return HaltEBreak, nil
		default:
			return HaltNone, fmt.Errorf("iss: unsupported SYSTEM instruction %#x at %#x", inst, c.PC-4)
		}
	default:
		return HaltNone, fmt.Errorf("iss: illegal opcode %#02x at %#x (inst %#08x)", opcode, c.PC, inst)
	}
	c.Cycles += cost
	c.Steps++
	c.PC = nextPC
	return HaltNone, nil
}

// Run executes until the program halts or maxSteps instructions retire.
func (c *CPU) Run(maxSteps uint64) (HaltReason, error) {
	for i := uint64(0); i < maxSteps; i++ {
		h, err := c.Step()
		if err != nil {
			return HaltNone, err
		}
		if h != HaltNone {
			return h, nil
		}
	}
	return HaltMaxSteps, nil
}
