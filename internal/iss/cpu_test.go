package iss

import (
	"testing"
	"testing/quick"

	"repro/internal/checksum"
)

// run assembles src, loads it at 0, seeds registers and runs to ECALL.
func run(t *testing.T, src string, seed map[int]uint32) *CPU {
	t.Helper()
	words, _, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cpu := New(16 * 1024)
	if err := cpu.LoadProgram(words, 0); err != nil {
		t.Fatal(err)
	}
	for r, v := range seed {
		cpu.X[r] = v
	}
	halt, err := cpu.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if halt != HaltECall {
		t.Fatalf("halt = %v, want ecall", halt)
	}
	return cpu
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		src  string
		want uint32 // expected a0
	}{
		{"li a0, 5\nli a1, 7\nadd a0, a0, a1\necall", 12},
		{"li a0, 5\nli a1, 7\nsub a0, a0, a1\necall", 0xfffffffe},
		{"li a0, 0b1100\nli a1, 0b1010\nand a0, a0, a1\necall", 0b1000},
		{"li a0, 0b1100\nli a1, 0b1010\nor a0, a0, a1\necall", 0b1110},
		{"li a0, 0b1100\nli a1, 0b1010\nxor a0, a0, a1\necall", 0b0110},
		{"li a0, 1\nli a1, 4\nsll a0, a0, a1\necall", 16},
		{"li a0, -16\nli a1, 2\nsra a0, a0, a1\necall", 0xfffffffc},
		{"li a0, -16\nli a1, 2\nsrl a0, a0, a1\necall", 0x3ffffffc},
		{"li a0, -1\nli a1, 1\nslt a0, a0, a1\necall", 1},
		{"li a0, -1\nli a1, 1\nsltu a0, a0, a1\necall", 0}, // 0xffffffff not < 1
		{"li a0, 100\naddi a0, a0, -1\necall", 99},
		{"li a0, 0xf0\nandi a0, a0, 0x3c\necall", 0x30},
		{"li a0, 3\nslli a0, a0, 4\necall", 48},
		{"li a0, -8\nsrai a0, a0, 1\necall", 0xfffffffc},
		{"lui a0, 0xdead0\nsrli a0, a0, 12\necall", 0xdead0},
		{"li a0, 0x12345678\necall", 0x12345678}, // li expansion
		{"li a0, -1\necall", 0xffffffff},
		{"not a0, zero\necall", 0xffffffff},
		{"li a1, 9\nneg a0, a1\necall", uint32(0xfffffff7)},
		{"li a1, 77\nmv a0, a1\necall", 77},
	}
	for _, c := range cases {
		cpu := run(t, c.src, nil)
		if cpu.X[10] != c.want {
			t.Errorf("program %q: a0 = %#x, want %#x", c.src, cpu.X[10], c.want)
		}
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	cpu := run(t, "li a0, 5\nadd zero, a0, a0\nmv a0, zero\necall", nil)
	if cpu.X[10] != 0 {
		t.Fatalf("x0 was written: a0 = %d", cpu.X[10])
	}
}

func TestLoadsAndStores(t *testing.T) {
	src := `
    li   t0, 0x1000
    li   t1, 0x87654321
    sw   t1, 0(t0)
    lw   a0, 0(t0)      # full word back
    lhu  a1, 0(t0)      # low half zero-extended
    lh   a2, 2(t0)      # high half sign-extended
    lbu  a3, 3(t0)      # top byte
    lb   a4, 3(t0)      # top byte sign-extended
    sh   a1, 8(t0)
    lw   a5, 8(t0)
    sb   a3, 12(t0)
    lbu  a6, 12(t0)
    ecall`
	cpu := run(t, src, nil)
	checks := []struct {
		reg  int
		want uint32
	}{
		{10, 0x87654321},
		{11, 0x4321},
		{12, 0xffff8765},
		{13, 0x87},
		{14, 0xffffff87},
		{15, 0x4321},
		{16, 0x87},
	}
	for _, c := range checks {
		if cpu.X[c.reg] != c.want {
			t.Errorf("x%d = %#x, want %#x", c.reg, cpu.X[c.reg], c.want)
		}
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 with a loop.
	src := `
    li a0, 0
    li t0, 1
    li t1, 11
loop:
    bge t0, t1, done
    add a0, a0, t0
    addi t0, t0, 1
    j loop
done:
    ecall`
	cpu := run(t, src, nil)
	if cpu.X[10] != 55 {
		t.Fatalf("sum = %d, want 55", cpu.X[10])
	}
}

func TestBranchVariants(t *testing.T) {
	src := `
    li a0, 0
    li t0, -1
    li t1, 1
    blt  t0, t1, l1      # signed: taken
    j fail
l1: bltu t1, t0, l2      # unsigned: 1 < 0xffffffff taken
    j fail
l2: bge  t1, t0, l3      # signed: 1 >= -1 taken
    j fail
l3: bgeu t0, t1, l4      # unsigned: taken
    j fail
l4: beq  t0, t0, l5
    j fail
l5: bne  t0, t1, ok
    j fail
fail:
    li a0, 666
ok: ecall`
	cpu := run(t, src, nil)
	if cpu.X[10] != 0 {
		t.Fatal("a branch variant misbehaved")
	}
}

func TestCallRet(t *testing.T) {
	src := `
    li   a0, 20
    call double
    call double
    ecall
double:
    add  a0, a0, a0
    ret`
	cpu := run(t, src, nil)
	if cpu.X[10] != 80 {
		t.Fatalf("a0 = %d, want 80", cpu.X[10])
	}
}

func TestAuipcAndJalr(t *testing.T) {
	src := `
    auipc t0, 0        # t0 = 0
    jalr  ra, 12(t0)   # jump to byte 12 (the ecall below)
    li    a0, 666      # skipped
    ecall`
	cpu := run(t, src, nil)
	if cpu.X[10] == 666 {
		t.Fatal("jalr did not skip the li")
	}
	if cpu.X[1] != 8 {
		t.Fatalf("ra = %d, want 8", cpu.X[1])
	}
}

func TestCycleCosts(t *testing.T) {
	// 3 ALU (li,li,add via addi...) — count explicitly:
	// li a0,5 → addi (1 ALU); li a1,7 → addi (1); add (1); ecall (1 ALU-class).
	cpu := run(t, "li a0, 5\nli a1, 7\nadd a0, a0, a1\necall", nil)
	if cpu.Steps != 4 {
		t.Fatalf("steps = %d, want 4", cpu.Steps)
	}
	if cpu.Cycles != 4 {
		t.Fatalf("cycles = %d, want 4 (all ALU)", cpu.Cycles)
	}
	// Loads cost 2.
	cpu2 := run(t, "li t0, 64\nlw a0, 0(t0)\necall", nil)
	if cpu2.Cycles != 1+2+1 {
		t.Fatalf("cycles = %d, want 4 (ALU+Load+ALU)", cpu2.Cycles)
	}
}

func TestIllegalInstruction(t *testing.T) {
	cpu := New(64)
	cpu.Mem[0] = 0xff // opcode 0x7f: illegal
	if _, err := cpu.Step(); err == nil {
		t.Fatal("illegal opcode executed")
	}
}

func TestMemoryFaults(t *testing.T) {
	for _, src := range []string{
		"li t0, 0x7ffffff0\nlw a0, 0(t0)\necall",
		"li t0, 0x7ffffff0\nsw t0, 0(t0)\necall",
	} {
		words, _, err := Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		cpu := New(4096)
		if err := cpu.LoadProgram(words, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := cpu.Run(100); err == nil {
			t.Fatalf("out-of-range access in %q did not fault", src)
		}
	}
}

func TestMaxStepsHalts(t *testing.T) {
	words, _, err := Assemble("spin: j spin")
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(64)
	if err := cpu.LoadProgram(words, 0); err != nil {
		t.Fatal(err)
	}
	halt, err := cpu.Run(1000)
	if err != nil || halt != HaltMaxSteps {
		t.Fatalf("halt=%v err=%v, want max-steps", halt, err)
	}
}

func TestEBreakHalts(t *testing.T) {
	cpu := New(64)
	words, _, err := Assemble("ebreak")
	if err != nil {
		t.Fatal(err)
	}
	cpu.LoadProgram(words, 0)
	halt, err := cpu.Run(10)
	if err != nil || halt != HaltEBreak {
		t.Fatalf("halt=%v err=%v", halt, err)
	}
}

func TestResetPreservesMemory(t *testing.T) {
	cpu := New(128)
	cpu.WriteWord(64, 0xabcd)
	cpu.X[5] = 99
	cpu.PC = 16
	cpu.Cycles = 7
	cpu.Reset()
	if cpu.X[5] != 0 || cpu.PC != 0 || cpu.Cycles != 0 {
		t.Fatal("Reset did not clear CPU state")
	}
	if v, _ := cpu.ReadWord(64); v != 0xabcd {
		t.Fatal("Reset wiped memory")
	}
}

// The headline differential test: the ISS checksum kernel agrees with the
// Go reference implementation on arbitrary inputs, and its cycle count
// scales linearly with input length.
func TestChecksumKernelMatchesReference(t *testing.T) {
	f := func(words []uint16) bool {
		if len(words) > 512 {
			words = words[:512]
		}
		got, _, err := RunChecksum(words)
		if err != nil {
			t.Logf("RunChecksum: %v", err)
			return false
		}
		return got == checksum.InternetWords(words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKernelCycleScaling(t *testing.T) {
	_, c8, err := RunChecksum(make([]uint16, 8))
	if err != nil {
		t.Fatal(err)
	}
	_, c64, err := RunChecksum(make([]uint16, 64))
	if err != nil {
		t.Fatal(err)
	}
	if c64 <= c8 {
		t.Fatalf("cycles did not grow with input: %d vs %d", c8, c64)
	}
	perWord := float64(c64-c8) / 56
	if perWord < 4 || perWord > 16 {
		t.Fatalf("per-word cost %.1f cycles outside plausible range", perWord)
	}
}

func TestHaltReasonStrings(t *testing.T) {
	for h := HaltNone; h <= HaltMaxSteps; h++ {
		if h.String() == "" {
			t.Fatalf("no name for halt reason %d", h)
		}
	}
	if HaltReason(9).String() == "" {
		t.Fatal("unknown halt reason string empty")
	}
}

func BenchmarkChecksumKernel64Words(b *testing.B) {
	words := make([]uint16, 64)
	for i := range words {
		words[i] = uint16(i * 257)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := RunChecksum(words); err != nil {
			b.Fatal(err)
		}
	}
}
