package iss

import "fmt"

// ChecksumSource is the RV32 assembly for the board application's
// packet-verification kernel: the RFC 1071 ones-complement sum over 16-bit
// words. Calling convention (bare metal):
//
//	a0 = byte address of the first 16-bit word
//	a1 = number of 16-bit words
//	returns the folded complement in a0; halts with ECALL
//
// This is the "C application computing the checksum" of the paper's
// section 6, executed as instructions so its cycle cost is measured.
const ChecksumSource = `
# ones-complement internet checksum over a1 halfwords at a0
checksum:
    li   t0, 0            # running sum
loop:
    beqz a1, fold
    lhu  t1, 0(a0)
    add  t0, t0, t1
    addi a0, a0, 2
    addi a1, a1, -1
    j    loop
fold:                     # fold carries: sum = (sum & 0xffff) + (sum >> 16)
    srli t1, t0, 16
    beqz t1, done
    slli t2, t0, 16
    srli t2, t2, 16
    add  t0, t1, t2
    j    fold
done:
    not  a0, t0
    slli a0, a0, 16       # truncate to 16 bits
    srli a0, a0, 16
    ecall
`

// ChecksumProgram is the assembled checksum kernel, built once at package
// init (the source is a constant; failure to assemble is a programming
// error caught by every test run).
var ChecksumProgram = func() []uint32 {
	words, _, err := Assemble(ChecksumSource)
	if err != nil {
		panic(fmt.Sprintf("iss: checksum kernel does not assemble: %v", err))
	}
	return words
}()

// CRC16Source is the RV32 assembly for the bitwise CRC-16/CCITT-FALSE
// kernel (poly 0x1021, init 0xFFFF) used by the hardware/software
// partitioning example: a0 = byte address of the data, a1 = byte count;
// returns the CRC in a0. Roughly 8 instructions per bit — exactly the
// kind of kernel a designer would consider moving into the FPGA.
const CRC16Source = `
crc16:
    li   t0, 0xffff       # crc
    li   t3, 0x1021       # polynomial
    li   t4, 0x8000
    li   t5, 0xffff
byteloop:
    beqz a1, done
    lbu  t1, 0(a0)
    slli t1, t1, 8
    xor  t0, t0, t1
    li   t2, 8            # bit counter
bitloop:
    and  t6, t0, t4       # crc & 0x8000 ?
    slli t0, t0, 1
    beqz t6, nopoly
    xor  t0, t0, t3
nopoly:
    and  t0, t0, t5       # keep 16 bits
    addi t2, t2, -1
    bnez t2, bitloop
    addi a0, a0, 1
    addi a1, a1, -1
    j    byteloop
done:
    mv   a0, t0
    ecall
`

// CRC16Program is the assembled CRC kernel.
var CRC16Program = func() []uint32 {
	words, _, err := Assemble(CRC16Source)
	if err != nil {
		panic(fmt.Sprintf("iss: CRC16 kernel does not assemble: %v", err))
	}
	return words
}()

// RunCRC16 executes the CRC kernel over data on a fresh CPU and returns
// the CRC with the cycle cost.
func RunCRC16(data []byte) (crc uint16, cycles uint64, err error) {
	memSize := checksumDataBase + len(data) + 64
	if memSize < 4096 {
		memSize = 4096
	}
	cpu := New(memSize)
	if err := cpu.LoadProgram(CRC16Program, 0); err != nil {
		return 0, 0, err
	}
	copy(cpu.Mem[checksumDataBase:], data)
	cpu.X[10] = checksumDataBase
	cpu.X[11] = uint32(len(data))
	halt, err := cpu.Run(1_000_000 + 256*uint64(len(data)))
	if err != nil {
		return 0, 0, err
	}
	if halt != HaltECall {
		return 0, 0, fmt.Errorf("iss: CRC16 kernel halted with %v", halt)
	}
	return uint16(cpu.X[10]), cpu.Cycles, nil
}

// checksumDataBase is where the kernels place their input data,
// comfortably above the kernel text.
const checksumDataBase = 0x400

// ChecksumRunner executes the checksum kernel repeatedly on one persistent
// CPU: the kernel text is loaded once and registers/counters are reset per
// run, so the steady-state verification path stops allocating a CPU and
// several KB of memory per packet. A runner is single-threaded, like the
// RTOS thread that owns it.
type ChecksumRunner struct {
	cpu *CPU
}

// Run executes the checksum kernel over the given 16-bit words, reusing
// the runner's CPU, and returns the checksum together with the cycle cost.
func (r *ChecksumRunner) Run(words []uint16) (cks uint16, cycles uint64, err error) {
	memSize := checksumDataBase + 2*len(words) + 64
	if memSize < 4096 {
		memSize = 4096
	}
	if r.cpu == nil || len(r.cpu.Mem) < memSize {
		r.cpu = New(memSize)
		if err := r.cpu.LoadProgram(ChecksumProgram, 0); err != nil {
			return 0, 0, err
		}
	} else {
		r.cpu.Reset() // registers and counters; kernel text persists in Mem
	}
	cpu := r.cpu
	for i, w := range words {
		if err := cpu.WriteHalf(uint32(checksumDataBase+2*i), w); err != nil {
			return 0, 0, err
		}
	}
	cpu.X[10] = checksumDataBase   // a0
	cpu.X[11] = uint32(len(words)) // a1
	halt, err := cpu.Run(100_000 + 64*uint64(len(words)))
	if err != nil {
		return 0, 0, err
	}
	if halt != HaltECall {
		return 0, 0, fmt.Errorf("iss: checksum kernel halted with %v", halt)
	}
	return uint16(cpu.X[10]), cpu.Cycles, nil
}

// RunChecksum executes the checksum kernel over the given 16-bit words on
// a fresh CPU and returns the checksum together with the cycle cost.
// Callers verifying many packets should hold a ChecksumRunner instead.
func RunChecksum(words []uint16) (cks uint16, cycles uint64, err error) {
	var r ChecksumRunner
	return r.Run(words)
}
