package iss

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates RV32I assembly source into machine words (to be
// loaded at byte address 0 unless the caller relocates). It is a two-pass
// assembler: pass one sizes instructions and collects labels, pass two
// encodes. Supported syntax:
//
//	label:                     # labels, on their own line or inline
//	add  rd, rs1, rs2          # R-type ALU ops
//	addi rd, rs1, imm          # I-type ALU ops (slli/srli/srai shamt)
//	lw   rd, off(rs1)          # loads: lb lh lw lbu lhu
//	sw   rs2, off(rs1)         # stores: sb sh sw
//	beq  rs1, rs2, label       # branches (also numeric byte offsets)
//	jal  rd, label             # jumps; jalr rd, rs1, imm
//	lui/auipc rd, imm20
//	ecall / ebreak
//	.word value                # literal data word
//
// plus the usual pseudo-instructions: nop, mv, li, la, not, neg, j, jr,
// ret, call, beqz, bnez. Comments start with '#' or '//'. Registers accept
// both x-names and ABI names (zero, ra, sp, a0..a7, t0..t6, s0..s11, fp).
func Assemble(src string) ([]uint32, map[string]uint32, error) {
	lines := strings.Split(src, "\n")
	type item struct {
		mnem string
		ops  []string
		line int
	}
	var items []item
	labels := make(map[string]uint32)
	pc := uint32(0)

	// Pass 1: strip comments, peel labels, size every instruction.
	for ln, raw := range lines {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if label == "" || strings.ContainsAny(label, " \t") {
				return nil, nil, fmt.Errorf("iss: line %d: malformed label %q", ln+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, nil, fmt.Errorf("iss: line %d: duplicate label %q", ln+1, label)
			}
			labels[label] = pc
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		mnem := strings.ToLower(fields[0])
		rest := strings.TrimSpace(line[len(fields[0]):])
		var ops []string
		if rest != "" {
			for _, o := range strings.Split(rest, ",") {
				ops = append(ops, strings.TrimSpace(o))
			}
		}
		it := item{mnem: mnem, ops: ops, line: ln + 1}
		items = append(items, it)
		pc += 4 * instWords(mnem, ops)
	}

	// Pass 2: encode.
	var out []uint32
	pc = 0
	enc := &encoder{labels: labels}
	for _, it := range items {
		words, err := enc.encode(it.mnem, it.ops, pc)
		if err != nil {
			return nil, nil, fmt.Errorf("iss: line %d: %w", it.line, err)
		}
		out = append(out, words...)
		pc += 4 * uint32(len(words))
	}
	return out, labels, nil
}

// instWords returns how many machine words a (possibly pseudo)
// instruction expands to.
func instWords(mnem string, ops []string) uint32 {
	switch mnem {
	case "li":
		if len(ops) == 2 {
			if v, err := parseImm(ops[1]); err == nil && fitsI12(v) {
				return 1
			}
		}
		return 2
	case "la":
		return 2
	default:
		return 1
	}
}

func fitsI12(v int64) bool { return v >= -2048 && v <= 2047 }

var regNames = func() map[string]uint32 {
	m := map[string]uint32{
		"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
		"t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
	}
	for i := 0; i <= 7; i++ {
		m[fmt.Sprintf("a%d", i)] = uint32(10 + i)
	}
	for i := 2; i <= 11; i++ {
		m[fmt.Sprintf("s%d", i)] = uint32(16 + i)
	}
	for i := 3; i <= 6; i++ {
		m[fmt.Sprintf("t%d", i)] = uint32(25 + i)
	}
	for i := 0; i < 32; i++ {
		m[fmt.Sprintf("x%d", i)] = uint32(i)
	}
	return m
}()

func parseReg(s string) (uint32, error) {
	r, ok := regNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("unknown register %q", s)
	}
	return r, nil
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	return strconv.ParseInt(s, 0, 64)
}

// parseMem parses "off(reg)" operands.
func parseMem(s string) (imm int64, reg uint32, err error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("malformed memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	imm, err = parseImm(offStr)
	if err != nil {
		return 0, 0, err
	}
	reg, err = parseReg(s[open+1 : close])
	return imm, reg, err
}

type encoder struct {
	labels map[string]uint32
}

// immOrLabel resolves an operand that may be a numeric immediate or a
// label (absolute address).
func (e *encoder) immOrLabel(s string) (int64, error) {
	if v, err := parseImm(s); err == nil {
		return v, nil
	}
	if addr, ok := e.labels[strings.TrimSpace(s)]; ok {
		return int64(addr), nil
	}
	return 0, fmt.Errorf("neither immediate nor label: %q", s)
}

// branchTarget resolves a branch/jump operand to a pc-relative offset.
func (e *encoder) branchTarget(s string, pc uint32) (int64, error) {
	if addr, ok := e.labels[strings.TrimSpace(s)]; ok {
		return int64(addr) - int64(pc), nil
	}
	if v, err := parseImm(s); err == nil {
		return v, nil
	}
	return 0, fmt.Errorf("unknown branch target %q", s)
}

func encR(funct7, rs2, rs1, funct3, rd, opcode uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func encI(imm int64, rs1, funct3, rd, opcode uint32) (uint32, error) {
	if !fitsI12(imm) {
		return 0, fmt.Errorf("immediate %d out of 12-bit range", imm)
	}
	return uint32(imm&0xfff)<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode, nil
}

func encS(imm int64, rs2, rs1, funct3, opcode uint32) (uint32, error) {
	if !fitsI12(imm) {
		return 0, fmt.Errorf("store offset %d out of 12-bit range", imm)
	}
	u := uint32(imm & 0xfff)
	return (u>>5)<<25 | rs2<<20 | rs1<<15 | funct3<<12 | (u&0x1f)<<7 | opcode, nil
}

func encB(off int64, rs2, rs1, funct3, opcode uint32) (uint32, error) {
	if off%2 != 0 || off < -4096 || off > 4094 {
		return 0, fmt.Errorf("branch offset %d invalid", off)
	}
	u := uint32(off) & 0x1fff
	return ((u>>12)&1)<<31 | ((u>>5)&0x3f)<<25 | rs2<<20 | rs1<<15 |
		funct3<<12 | ((u>>1)&0xf)<<8 | ((u>>11)&1)<<7 | opcode, nil
}

func encU(imm int64, rd, opcode uint32) (uint32, error) {
	if imm < 0 || imm > 0xfffff {
		return 0, fmt.Errorf("upper immediate %d out of 20-bit range", imm)
	}
	return uint32(imm)<<12 | rd<<7 | opcode, nil
}

func encJ(off int64, rd, opcode uint32) (uint32, error) {
	if off%2 != 0 || off < -(1<<20) || off >= (1<<20) {
		return 0, fmt.Errorf("jump offset %d invalid", off)
	}
	u := uint32(off) & 0x1fffff
	return ((u>>20)&1)<<31 | ((u>>1)&0x3ff)<<21 | ((u>>11)&1)<<20 |
		((u>>12)&0xff)<<12 | rd<<7 | opcode, nil
}

var rFunct = map[string][2]uint32{ // funct3, funct7
	"add": {0, 0x00}, "sub": {0, 0x20}, "sll": {1, 0x00}, "slt": {2, 0x00},
	"sltu": {3, 0x00}, "xor": {4, 0x00}, "srl": {5, 0x00}, "sra": {5, 0x20},
	"or": {6, 0x00}, "and": {7, 0x00},
}

var iFunct = map[string]uint32{
	"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}

var loadFunct = map[string]uint32{"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
var storeFunct = map[string]uint32{"sb": 0, "sh": 1, "sw": 2}
var branchFunct = map[string]uint32{
	"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7,
}

func (e *encoder) encode(mnem string, ops []string, pc uint32) ([]uint32, error) {
	wantOps := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	if mnem == ".word" {
		if err := wantOps(1); err != nil {
			return nil, err
		}
		v, err := e.immOrLabel(ops[0])
		if err != nil {
			return nil, err
		}
		return []uint32{uint32(v)}, nil
	}

	if f, ok := rFunct[mnem]; ok {
		if err := wantOps(3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(ops[0])
		rs1, err2 := parseReg(ops[1])
		rs2, err3 := parseReg(ops[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return []uint32{encR(f[1], rs2, rs1, f[0], rd, 0x33)}, nil
	}

	if f3, ok := mFunct[mnem]; ok { // RV32M
		if err := wantOps(3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(ops[0])
		rs1, err2 := parseReg(ops[1])
		rs2, err3 := parseReg(ops[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return []uint32{encR(0x01, rs2, rs1, f3, rd, 0x33)}, nil
	}

	if f3, ok := iFunct[mnem]; ok {
		if err := wantOps(3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(ops[0])
		rs1, err2 := parseReg(ops[1])
		imm, err3 := parseImm(ops[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		w, err := encI(imm, rs1, f3, rd, 0x13)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}

	switch mnem {
	case "slli", "srli", "srai":
		if err := wantOps(3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(ops[0])
		rs1, err2 := parseReg(ops[1])
		sh, err3 := parseImm(ops[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		if sh < 0 || sh > 31 {
			return nil, fmt.Errorf("shift amount %d out of range", sh)
		}
		var f3, f7 uint32
		switch mnem {
		case "slli":
			f3, f7 = 1, 0
		case "srli":
			f3, f7 = 5, 0
		case "srai":
			f3, f7 = 5, 0x20
		}
		return []uint32{encR(f7, uint32(sh), rs1, f3, rd, 0x13)}, nil
	}

	if f3, ok := loadFunct[mnem]; ok {
		if len(ops) != 2 {
			return nil, fmt.Errorf("%s expects rd, off(rs1)", mnem)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		imm, rs1, err := parseMem(ops[1])
		if err != nil {
			return nil, err
		}
		w, err := encI(imm, rs1, f3, rd, 0x03)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}

	if f3, ok := storeFunct[mnem]; ok {
		if len(ops) != 2 {
			return nil, fmt.Errorf("%s expects rs2, off(rs1)", mnem)
		}
		rs2, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		imm, rs1, err := parseMem(ops[1])
		if err != nil {
			return nil, err
		}
		w, err := encS(imm, rs2, rs1, f3, 0x23)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}

	if f3, ok := branchFunct[mnem]; ok {
		if err := wantOps(3); err != nil {
			return nil, err
		}
		rs1, err1 := parseReg(ops[0])
		rs2, err2 := parseReg(ops[1])
		off, err3 := e.branchTarget(ops[2], pc)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		w, err := encB(off, rs2, rs1, f3, 0x63)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	}

	switch mnem {
	case "jal":
		if len(ops) == 1 { // jal label ≡ jal ra, label
			ops = []string{"ra", ops[0]}
		}
		if err := wantOps(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		off, err := e.branchTarget(ops[1], pc)
		if err != nil {
			return nil, err
		}
		w, err := encJ(off, rd, 0x6f)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	case "jalr":
		if len(ops) == 2 { // jalr rd, off(rs1)
			rd, err := parseReg(ops[0])
			if err != nil {
				return nil, err
			}
			imm, rs1, err := parseMem(ops[1])
			if err != nil {
				return nil, err
			}
			w, err := encI(imm, rs1, 0, rd, 0x67)
			if err != nil {
				return nil, err
			}
			return []uint32{w}, nil
		}
		if err := wantOps(3); err != nil {
			return nil, err
		}
		rd, err1 := parseReg(ops[0])
		rs1, err2 := parseReg(ops[1])
		imm, err3 := parseImm(ops[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		w, err := encI(imm, rs1, 0, rd, 0x67)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	case "lui", "auipc":
		if err := wantOps(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		imm, err := e.immOrLabel(ops[1])
		if err != nil {
			return nil, err
		}
		op := uint32(0x37)
		if mnem == "auipc" {
			op = 0x17
		}
		w, err := encU(imm, rd, op)
		if err != nil {
			return nil, err
		}
		return []uint32{w}, nil
	case "ecall":
		return []uint32{0x00000073}, nil
	case "ebreak":
		return []uint32{0x00100073}, nil

	// ---- pseudo-instructions ----
	case "nop":
		return []uint32{0x00000013}, nil // addi x0, x0, 0
	case "mv":
		if err := wantOps(2); err != nil {
			return nil, err
		}
		return e.encode("addi", []string{ops[0], ops[1], "0"}, pc)
	case "not":
		if err := wantOps(2); err != nil {
			return nil, err
		}
		return e.encode("xori", []string{ops[0], ops[1], "-1"}, pc)
	case "neg":
		if err := wantOps(2); err != nil {
			return nil, err
		}
		return e.encode("sub", []string{ops[0], "zero", ops[1]}, pc)
	case "li", "la":
		if err := wantOps(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		v, err := e.immOrLabel(ops[1])
		if err != nil {
			return nil, err
		}
		if mnem == "li" && fitsI12(v) {
			w, err := encI(v, 0, 0, rd, 0x13)
			if err != nil {
				return nil, err
			}
			return []uint32{w}, nil
		}
		// lui rd, %hi(v); addi rd, rd, %lo(v)
		u := uint32(v)
		hi := (u + 0x800) >> 12
		lo := int64(int32(u<<20) >> 20)
		wHi, err := encU(int64(hi&0xfffff), rd, 0x37)
		if err != nil {
			return nil, err
		}
		wLo, err := encI(lo, rd, 0, rd, 0x13)
		if err != nil {
			return nil, err
		}
		return []uint32{wHi, wLo}, nil
	case "j":
		if err := wantOps(1); err != nil {
			return nil, err
		}
		return e.encode("jal", []string{"zero", ops[0]}, pc)
	case "jr":
		if err := wantOps(1); err != nil {
			return nil, err
		}
		return e.encode("jalr", []string{"zero", ops[0], "0"}, pc)
	case "ret":
		return e.encode("jalr", []string{"zero", "ra", "0"}, pc)
	case "call":
		if err := wantOps(1); err != nil {
			return nil, err
		}
		return e.encode("jal", []string{"ra", ops[0]}, pc)
	case "beqz":
		if err := wantOps(2); err != nil {
			return nil, err
		}
		return e.encode("beq", []string{ops[0], "zero", ops[1]}, pc)
	case "bnez":
		if err := wantOps(2); err != nil {
			return nil, err
		}
		return e.encode("bne", []string{ops[0], "zero", ops[1]}, pc)
	}
	return nil, fmt.Errorf("unknown mnemonic %q", mnem)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
