package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cosim"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/router"
)

// testHost is one in-process fleet host: a real farm behind a real
// control listener, talked to over real TCP.
type testHost struct {
	farm *farm.Farm
	host *Host
}

func startHost(t *testing.T, name string, workers, queue int) *testHost {
	t.Helper()
	f, err := farm.New(farm.WithWorkers(workers), farm.WithQueueDepth(queue))
	if err != nil {
		t.Fatal(err)
	}
	h, err := ListenHost(f, HostOptions{Name: name})
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	th := &testHost{farm: f, host: h}
	t.Cleanup(th.kill)
	return th
}

// kill takes the host out hard: farm first (in-flight submits answer
// unavailable), then the control listener.
func (th *testHost) kill() {
	th.farm.Close()
	th.host.Close()
}

// testSpec is the idx'th session of the fleet workload: transports
// cycled so the same fleet carries inproc, tcp, and uds sessions at
// once, chaos+resilience on every second session.
func testSpec(idx int) farm.SessionSpec {
	spec := farm.SessionSpec{
		TSync: uint64(200 + 150*(idx%3)),
		TB: &farm.TBSpec{
			PacketsPerPort: 2 + idx%3,
			Period:         uint64(400 + 100*(idx%4)),
			Seed:           int64(idx + 1),
		},
	}
	switch idx % 3 {
	case 1:
		spec.Transport = "tcp"
	case 2:
		spec.Transport = "uds"
	}
	if idx%2 == 1 {
		spec.Chaos = &farm.ChaosSpec{Seed: int64(3000 + idx), Drop: 0.01, Duplicate: 0.01, Corrupt: 0.01}
		spec.Resilience = &farm.ResilienceSpec{RetransmitTimeoutMS: 10}
	}
	return spec
}

// soloFingerprint runs the spec through the plain single-session entry
// point — the baseline every fleet placement must match bit for bit.
func soloFingerprint(t *testing.T, spec farm.SessionSpec) Fingerprint {
	t.Helper()
	rc, err := spec.RunConfig()
	if err != nil {
		t.Fatalf("lowering spec: %v", err)
	}
	res, err := router.Run(context.Background(), router.Transports{}, router.WithConfig(rc))
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	if res.Conservation != nil {
		t.Fatalf("solo run: %v", res.Conservation)
	}
	return ResultOf(res).Fingerprint
}

// rpc sends one raw control frame, for protocol-level assertions.
func rpc(t *testing.T, addr string, req Request) Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHostControlProtocol exercises each control op over a raw
// connection — the wire contract cosim-farmctl and the coordinator
// both build on.
func TestHostControlProtocol(t *testing.T) {
	th := startHost(t, "proto-host", 2, 4)
	addr := th.host.Addr()

	hello := rpc(t, addr, Request{Op: OpHello})
	if !hello.OK || hello.Host == nil {
		t.Fatalf("hello: %+v", hello)
	}
	if hello.Host.Name != "proto-host" || hello.Host.Workers != 2 || hello.Host.Queue != 4 {
		t.Errorf("hello host info: %+v", hello.Host)
	}
	if hello.Host.FarmAddr != th.farm.Addr() || hello.Host.FarmNetwork != th.farm.Network() {
		t.Errorf("hello farm endpoint: %+v", hello.Host)
	}

	health := rpc(t, addr, Request{Op: OpHealth})
	if !health.OK || health.Health == nil || health.Health.Status != "ok" {
		t.Fatalf("health: %+v", health)
	}
	if health.Health.Farm.Workers != 2 {
		t.Errorf("health snapshot: %+v", health.Health.Farm)
	}

	spec := testSpec(0)
	want := soloFingerprint(t, spec)
	sub := rpc(t, addr, Request{Op: OpSubmit, Spec: &spec})
	if !sub.OK || sub.Result == nil {
		t.Fatalf("submit: %+v", sub)
	}
	if sub.Result.Fingerprint != want {
		t.Errorf("submit fingerprint diverged:\nhost %+v\nsolo %+v", sub.Result.Fingerprint, want)
	}

	bad := testSpec(0)
	bad.Transport = "carrier-pigeon"
	resp := rpc(t, addr, Request{Op: OpSubmit, Spec: &bad})
	if resp.OK || resp.Retryable {
		t.Errorf("invalid spec must fail non-retryably: %+v", resp)
	}
	if resp := rpc(t, addr, Request{Op: OpSubmit}); resp.OK {
		t.Error("submit without a spec accepted")
	}
	if resp := rpc(t, addr, Request{Op: "teleport"}); resp.OK {
		t.Error("unknown op accepted")
	}

	// A closed farm behind a live agent reports unhealthy and pushes
	// submits back as unavailable — the routing-around signal.
	th.farm.Close()
	if resp := rpc(t, addr, Request{Op: OpHealth}); resp.Health == nil || resp.Health.Status == "ok" {
		t.Errorf("health after farm close: %+v", resp.Health)
	}
	spec = testSpec(1)
	if resp := rpc(t, addr, Request{Op: OpSubmit, Spec: &spec}); resp.OK || !resp.Retryable || !resp.Unavailable {
		t.Errorf("submit to closed farm: %+v", resp)
	}
}

// TestFleetMatchesSingleFarm is satellite determinism: M sessions
// placed across K hosts produce exactly the fingerprints the same
// specs produce on a single machine.
func TestFleetMatchesSingleFarm(t *testing.T) {
	const hosts, sessions = 3, 12
	reg := obs.NewRegistry()
	c := NewCoordinator(Config{Obs: reg})
	defer c.Close()
	names := map[string]bool{}
	for i := 0; i < hosts; i++ {
		th := startHost(t, string(rune('a'+i))+"-host", 2, 4)
		info, err := c.Enroll(th.host.Addr())
		if err != nil {
			t.Fatal(err)
		}
		names[info.Name] = true
	}

	want := make([]Fingerprint, sessions)
	for i := range want {
		want[i] = soloFingerprint(t, testSpec(i))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got := make([]SessionResult, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.Submit(ctx, testSpec(i))
		}(i)
	}
	wg.Wait()

	used := map[string]bool{}
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if got[i].Fingerprint != want[i] {
			t.Errorf("session %d diverged from single-farm baseline:\nfleet %+v\nsolo  %+v", i, got[i].Fingerprint, want[i])
		}
		if !names[got[i].Host] {
			t.Errorf("session %d ran on unenrolled host %q", i, got[i].Host)
		}
		used[got[i].Host] = true
	}
	if len(used) < 2 {
		t.Errorf("least-loaded placement used %d host(s) for %d concurrent sessions", len(used), sessions)
	}

	placements := reg.Counter("fleet_placements_total").Value()
	if placements < sessions {
		t.Errorf("fleet_placements_total = %d, want >= %d", placements, sessions)
	}
	if up := reg.Counter("fleet_retries_total").Value(); up != placements-sessions {
		t.Errorf("fleet_retries_total = %d with %d placements for %d sessions", up, placements, sessions)
	}
}

// TestFleetSurvivesHostKill is the failure-handling acceptance: a
// 3-host fleet carrying 24 mixed-transport sessions loses one host
// mid-run; every session still completes, the re-placed ones
// bit-identical to the single-farm baseline.
func TestFleetSurvivesHostKill(t *testing.T) {
	const hosts, sessions = 3, 24
	reg := obs.NewRegistry()
	c := NewCoordinator(Config{Obs: reg})
	defer c.Close()
	ths := make([]*testHost, hosts)
	for i := 0; i < hosts; i++ {
		ths[i] = startHost(t, string(rune('a'+i))+"-host", 2, 8)
		if _, err := c.Enroll(ths[i].host.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// Stretch the sessions so the kill lands mid-run.
	spec := func(i int) farm.SessionSpec {
		s := testSpec(i)
		s.LinkDelayUS = 200
		return s
	}
	want := make([]Fingerprint, sessions)
	for i := range want {
		want[i] = soloFingerprint(t, spec(i))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	got := make([]SessionResult, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = c.Submit(ctx, spec(i))
		}(i)
	}

	// Kill the first host once it is demonstrably carrying sessions.
	victim := ths[0]
	deadline := time.Now().Add(time.Minute)
	for victim.farm.Snapshot().Active == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim host never received a session")
		}
		time.Sleep(time.Millisecond)
	}
	victim.kill()
	wg.Wait()

	for i := range got {
		if errs[i] != nil {
			t.Fatalf("session %d did not survive the host kill: %v", i, errs[i])
		}
		if got[i].Fingerprint != want[i] {
			t.Errorf("session %d diverged after re-placement:\nfleet %+v\nsolo  %+v", i, got[i].Fingerprint, want[i])
		}
	}
	snap := reg.Snapshot()
	if retries := snap.Counters["fleet_retries_total"]; retries == 0 {
		t.Error("fleet_retries_total = 0 after killing a host with active sessions")
	}
	if up := snap.Gauges["fleet_hosts_up"]; up != hosts-1 {
		t.Errorf("fleet_hosts_up = %v after the kill, want %d", up, hosts-1)
	}
}

// TestFleetShmSessions routes shared-memory specs through the control
// plane where the platform supports them.
func TestFleetShmSessions(t *testing.T) {
	if !cosim.ShmSupported() {
		t.Skip("shm transport unsupported on this platform")
	}
	th := startHost(t, "shm-host", 2, 4)
	c := NewCoordinator(Config{})
	defer c.Close()
	if _, err := c.Enroll(th.host.Addr()); err != nil {
		t.Fatal(err)
	}
	spec := testSpec(0)
	spec.Transport = "shm"
	want := soloFingerprint(t, spec)
	res, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != want {
		t.Errorf("shm session diverged:\nfleet %+v\nsolo  %+v", res.Fingerprint, want)
	}
	if res.Transport != "shm" {
		t.Errorf("transport = %q, want shm", res.Transport)
	}
}

// TestTenantQuota: MaxInFlight holds a tenant's second session back
// until the first finishes, without limiting other tenants.
func TestTenantQuota(t *testing.T) {
	th := startHost(t, "quota-host", 2, 4)
	c := NewCoordinator(Config{
		Tenants: map[string]TenantPolicy{"capped": {MaxInFlight: 1}},
	})
	defer c.Close()
	if _, err := c.Enroll(th.host.Addr()); err != nil {
		t.Fatal(err)
	}

	slow := farm.SessionSpec{
		Tenant:      "capped",
		TSync:       200,
		LinkDelayUS: 500,
		TB:          &farm.TBSpec{PacketsPerPort: 4, Period: 500},
	}
	first := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), slow)
		first <- err
	}()
	// Give the first submission time to take the quota slot, then prove
	// the second blocks until its context expires.
	time.Sleep(20 * time.Millisecond)
	shortCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Submit(shortCtx, slow); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second capped submission: got %v, want DeadlineExceeded", err)
	}
	// An uncapped tenant is not held back by the capped tenant's quota.
	free := testSpec(0)
	free.Tenant = "free"
	if _, err := c.Submit(context.Background(), free); err != nil {
		t.Fatalf("uncapped tenant blocked: %v", err)
	}
	if err := <-first; err != nil {
		t.Fatalf("first capped submission: %v", err)
	}
	// With the slot free the capped tenant proceeds immediately.
	if _, err := c.Submit(context.Background(), slow); err != nil {
		t.Fatalf("capped tenant after slot freed: %v", err)
	}
}

// TestTenantRateLimit: the token bucket spaces a tenant's admissions.
func TestTenantRateLimit(t *testing.T) {
	th := startHost(t, "rate-host", 4, 8)
	c := NewCoordinator(Config{
		Tenants: map[string]TenantPolicy{"slow": {SessionsPerSec: 5}},
	})
	defer c.Close()
	if _, err := c.Enroll(th.host.Addr()); err != nil {
		t.Fatal(err)
	}
	spec := testSpec(0)
	spec.Tenant = "slow"
	// First admission spends the bucket's single token; the second must
	// wait ~1/5s for the next. A context far shorter than that expires.
	if _, err := c.Submit(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Submit(shortCtx, spec); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("rate-limited submission: got %v, want DeadlineExceeded", err)
	}
	// Waiting long enough, the token accrues and the submission runs.
	longCtx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if _, err := c.Submit(longCtx, spec); err != nil {
		t.Fatalf("rate-limited submission after waiting: %v", err)
	}
}

// TestCoordinatorEdges: no hosts, bad enrollment, duplicate names,
// closed coordinator.
func TestCoordinatorEdges(t *testing.T) {
	c := NewCoordinator(Config{DialTimeout: 200 * time.Millisecond})
	if _, err := c.Submit(context.Background(), testSpec(0)); !errors.Is(err, ErrNoHosts) {
		t.Fatalf("submit with no hosts: got %v, want ErrNoHosts", err)
	}
	if _, err := c.Enroll("127.0.0.1:1"); err == nil {
		t.Fatal("enrolling a dead address succeeded")
	}

	th := startHost(t, "edge-host", 1, 2)
	if _, err := c.Enroll(th.host.Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Enroll(th.host.Addr()); err == nil {
		t.Fatal("duplicate enrollment accepted")
	}

	sts := c.Status()
	if len(sts) != 1 || sts[0].Down || sts[0].Health == nil {
		t.Fatalf("status: %+v", sts)
	}

	c.Close()
	if _, err := c.Submit(context.Background(), testSpec(0)); !errors.Is(err, ErrCoordinatorClosed) {
		t.Fatalf("submit after close: got %v, want ErrCoordinatorClosed", err)
	}
	if _, err := c.Enroll(th.host.Addr()); !errors.Is(err, ErrCoordinatorClosed) {
		t.Fatalf("enroll after close: got %v, want ErrCoordinatorClosed", err)
	}
}

// TestHeartbeatMarksDownAndUp: the probe loop flips a host down when
// its agent dies and (for a surviving farm behind a new agent at the
// same address) back up when it answers again.
func TestHeartbeatMarksDownAndUp(t *testing.T) {
	f, err := farm.New(farm.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := ListenHost(f, HostOptions{Name: "hb-host"})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	c := NewCoordinator(Config{HeartbeatInterval: 10 * time.Millisecond, DialTimeout: 200 * time.Millisecond, Obs: reg})
	defer c.Close()
	if _, err := c.Enroll(h.Addr()); err != nil {
		t.Fatal(err)
	}
	addr := h.Addr()
	hostsUp := func() float64 { return reg.Snapshot().Gauges["fleet_hosts_up"] }

	waitFor := func(want float64, what string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for hostsUp() != want {
			if time.Now().After(deadline) {
				t.Fatalf("heartbeat never saw %s (fleet_hosts_up=%v)", what, hostsUp())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(1, "the host up")

	h.Close()
	waitFor(0, "the dead agent down")

	// Same farm, new agent on the same control address.
	h2, err := ListenHost(f, HostOptions{Name: "hb-host", Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	waitFor(1, "the revived agent up")

	if _, err := c.Submit(context.Background(), testSpec(0)); err != nil {
		t.Fatalf("submit after revival: %v", err)
	}
}
