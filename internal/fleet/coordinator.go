package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/farm"
	"repro/internal/obs"
)

// ErrNoHosts is returned by Submit when no enrolled host is up: the
// session cannot be placed anywhere, now or by waiting.
var ErrNoHosts = errors.New("fleet: no hosts available")

// ErrCoordinatorClosed is returned by operations on a closed
// Coordinator.
var ErrCoordinatorClosed = errors.New("fleet: coordinator closed")

// TenantPolicy bounds one tenant's use of the fleet. The zero value is
// unlimited.
type TenantPolicy struct {
	// MaxInFlight caps the tenant's concurrently placed sessions;
	// submissions beyond it block until a slot frees (0 = unlimited).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// SessionsPerSec rate-limits the tenant's admissions with a token
	// bucket; submissions beyond it block until a token accrues
	// (0 = unlimited).
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
	// Burst is the token bucket's capacity (default 1 when
	// SessionsPerSec is set).
	Burst int `json:"burst,omitempty"`
}

// Config tunes a Coordinator. The zero value is usable: no tenant
// limits, no heartbeat loop, 5s control dials.
type Config struct {
	// Tenants maps tenant names (farm.SessionSpec.Tenant) to their
	// admission policies. Tenants not listed are unlimited.
	Tenants map[string]TenantPolicy
	// HeartbeatInterval, when positive, starts a background loop
	// probing every host's OpHealth; hosts that fail the probe are
	// marked down (skipped by placement) until a later probe succeeds.
	HeartbeatInterval time.Duration
	// DialTimeout bounds control-connection establishment (default 5s).
	DialTimeout time.Duration
	// Obs, when non-nil, receives fleet metrics (docs/OBSERVABILITY.md).
	Obs *obs.Registry
}

// hostState is the coordinator's book on one enrolled host. inflight
// counts sessions this coordinator currently has placed there — the
// placement key — and is bounded by the host's reported capacity.
type hostState struct {
	addr     string
	info     HostInfo
	down     bool
	inflight int
}

// tenantState is one tenant's admission book: the in-flight count for
// the quota and the token bucket for the rate limit.
type tenantState struct {
	policy   TenantPolicy
	inflight int
	tokens   float64
	last     time.Time

	gInflight *obs.Gauge
	cSessions *obs.Counter
}

// Coordinator places sessions across enrolled fleet hosts: admission
// control per tenant, deterministic least-loaded placement, and
// re-placement of sessions lost to a host failure. All methods are safe
// for concurrent use.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond // signalled when placement capacity may have appeared
	hosts   []*hostState
	tenants map[string]*tenantState
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup

	mPlacements *obs.Counter
	mRetries    *obs.Counter
}

// NewCoordinator builds a Coordinator and, when cfg.HeartbeatInterval
// is positive, starts its health-probe loop.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	c := &Coordinator{
		cfg:     cfg,
		tenants: make(map[string]*tenantState),
		stop:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	if reg := cfg.Obs; reg != nil {
		c.mPlacements = reg.Counter("fleet_placements_total")
		c.mRetries = reg.Counter("fleet_retries_total")
		reg.GaugeFunc("fleet_hosts", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.hosts))
		})
		reg.GaugeFunc("fleet_hosts_up", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			up := 0
			for _, h := range c.hosts {
				if !h.down {
					up++
				}
			}
			return float64(up)
		})
	}
	if cfg.HeartbeatInterval > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop()
	}
	return c
}

// Enroll dials addr, performs the hello handshake, and adds the host to
// the placement pool. Enrollment order is the deterministic tiebreak
// for placement.
func (c *Coordinator) Enroll(addr string) (HostInfo, error) {
	resp, err := c.rpc(addr, Request{Op: OpHello})
	if err != nil {
		return HostInfo{}, fmt.Errorf("fleet: enroll %s: %w", addr, err)
	}
	if !resp.OK || resp.Host == nil {
		return HostInfo{}, fmt.Errorf("fleet: enroll %s: %s", addr, resp.Error)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return HostInfo{}, ErrCoordinatorClosed
	}
	for _, h := range c.hosts {
		if h.info.Name == resp.Host.Name {
			return HostInfo{}, fmt.Errorf("fleet: enroll %s: host name %q already enrolled", addr, resp.Host.Name)
		}
	}
	c.hosts = append(c.hosts, &hostState{addr: addr, info: *resp.Host})
	c.cond.Broadcast()
	return *resp.Host, nil
}

// HostStatus is one host's row in Status.
type HostStatus struct {
	Info     HostInfo      `json:"info"`
	Addr     string        `json:"addr"`
	Down     bool          `json:"down"`
	InFlight int           `json:"in_flight"`
	Health   *HealthReport `json:"health,omitempty"`
}

// Status probes every enrolled host's health and returns one row per
// host in enrollment order. Probe failures mark the host down, exactly
// as the heartbeat loop would.
func (c *Coordinator) Status() []HostStatus {
	c.mu.Lock()
	hosts := append([]*hostState(nil), c.hosts...)
	c.mu.Unlock()

	out := make([]HostStatus, len(hosts))
	for i, h := range hosts {
		st := HostStatus{Addr: h.addr}
		resp, err := c.rpc(h.addr, Request{Op: OpHealth})
		healthy := err == nil && resp.OK && resp.Health != nil && resp.Health.Status == "ok"
		c.setDown(h, !healthy)
		c.mu.Lock()
		st.Info, st.Down, st.InFlight = h.info, h.down, h.inflight
		c.mu.Unlock()
		if err == nil && resp.Health != nil {
			st.Health = resp.Health
		}
		out[i] = st
	}
	return out
}

// Submit admits the spec under its tenant's policy, places it on the
// least-loaded up host, and runs it to completion — re-placing it on
// another host if the chosen one dies or pushes back. Blocks while the
// tenant is at quota, the tenant's rate bucket is empty, or every up
// host is at capacity; fails with ErrNoHosts when no host is up.
func (c *Coordinator) Submit(ctx context.Context, spec farm.SessionSpec) (SessionResult, error) {
	release, err := c.admit(ctx, spec.Tenant)
	if err != nil {
		return SessionResult{}, err
	}
	defer release()

	for attempt := 0; ; attempt++ {
		h, err := c.pick(ctx)
		if err != nil {
			return SessionResult{}, err
		}
		if c.mPlacements != nil {
			c.mPlacements.Inc()
		}
		res, retryable, err := c.submitTo(ctx, h, spec)
		c.unplace(h)
		if err == nil {
			res.Host = h.info.Name
			return res, nil
		}
		if ctx.Err() != nil {
			return SessionResult{}, ctx.Err()
		}
		if !retryable {
			return SessionResult{}, err
		}
		if c.mRetries != nil {
			c.mRetries.Inc()
		}
		// A retryable push-back from a live host (e.g. its queue filled
		// from outside the fleet) deserves a beat before re-placement.
		if !c.isDown(h) {
			select {
			case <-time.After(10 * time.Millisecond):
			case <-ctx.Done():
				return SessionResult{}, ctx.Err()
			}
		}
	}
}

// admit applies the tenant's quota and rate limit, blocking until both
// pass or ctx ends. The returned release frees the quota slot.
func (c *Coordinator) admit(ctx context.Context, tenant string) (func(), error) {
	c.mu.Lock()
	ts := c.tenantLocked(tenant)

	// Quota: wait for an in-flight slot.
	for ts.policy.MaxInFlight > 0 && ts.inflight >= ts.policy.MaxInFlight {
		if err := c.waitLocked(ctx); err != nil {
			c.mu.Unlock()
			return nil, err
		}
	}

	// Rate: wait for a token.
	if ts.policy.SessionsPerSec > 0 {
		for {
			now := time.Now()
			if !ts.last.IsZero() {
				ts.tokens += now.Sub(ts.last).Seconds() * ts.policy.SessionsPerSec
			}
			burst := float64(ts.policy.Burst)
			if burst < 1 {
				burst = 1
			}
			if ts.tokens > burst {
				ts.tokens = burst
			}
			ts.last = now
			if ts.tokens >= 1 {
				ts.tokens--
				break
			}
			wait := time.Duration((1 - ts.tokens) / ts.policy.SessionsPerSec * float64(time.Second))
			c.mu.Unlock()
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-c.stop:
				return nil, ErrCoordinatorClosed
			}
			c.mu.Lock()
		}
	}

	ts.inflight++
	if ts.gInflight != nil {
		ts.gInflight.Set(float64(ts.inflight))
	}
	if ts.cSessions != nil {
		ts.cSessions.Inc()
	}
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		ts.inflight--
		if ts.gInflight != nil {
			ts.gInflight.Set(float64(ts.inflight))
		}
		c.mu.Unlock()
		c.cond.Broadcast()
	}, nil
}

// tenantLocked returns (creating on first use) the tenant's admission
// state and its cached metric handles. Caller holds c.mu.
func (c *Coordinator) tenantLocked(tenant string) *tenantState {
	ts, ok := c.tenants[tenant]
	if !ok {
		ts = &tenantState{policy: c.cfg.Tenants[tenant]}
		if ts.policy.SessionsPerSec > 0 {
			// The bucket starts full so a fresh tenant's first burst is
			// admitted immediately.
			ts.tokens = float64(ts.policy.Burst)
			if ts.tokens < 1 {
				ts.tokens = 1
			}
		}
		if reg := c.cfg.Obs; reg != nil {
			label := tenant
			if label == "" {
				label = "default"
			}
			ts.gInflight = reg.Gauge(obs.Name("fleet_tenant_inflight", "tenant", label))
			ts.cSessions = reg.Counter(obs.Name("fleet_tenant_sessions_total", "tenant", label))
		}
		c.tenants[tenant] = ts
	}
	return ts
}

// pick chooses the placement host deterministically: the up host with
// the fewest in-flight sessions, ties broken by enrollment order. It
// blocks while every up host is at its reported capacity, and fails
// with ErrNoHosts when no host is up at all.
func (c *Coordinator) pick(ctx context.Context) (*hostState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil, ErrCoordinatorClosed
		}
		var best *hostState
		anyUp := false
		for _, h := range c.hosts {
			if h.down {
				continue
			}
			anyUp = true
			if h.inflight >= h.info.Workers+h.info.Queue {
				continue
			}
			if best == nil || h.inflight < best.inflight {
				best = h
			}
		}
		if best != nil {
			best.inflight++
			return best, nil
		}
		if !anyUp {
			return nil, ErrNoHosts
		}
		if err := c.waitLocked(ctx); err != nil {
			return nil, err
		}
	}
}

// waitLocked waits on the capacity condition with ctx support. Caller
// holds c.mu; the lock is held again on return.
func (c *Coordinator) waitLocked(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// Taking the lock orders this broadcast after cond.Wait has
			// released it — a bare Broadcast could land in the window
			// before Wait starts and be lost.
			c.mu.Lock()
			c.mu.Unlock() //nolint:staticcheck // empty critical section is the ordering fence
			c.cond.Broadcast()
		case <-done:
		}
	}()
	c.cond.Wait()
	close(done)
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.closed {
		return ErrCoordinatorClosed
	}
	return nil
}

func (c *Coordinator) unplace(h *hostState) {
	c.mu.Lock()
	h.inflight--
	c.mu.Unlock()
	c.cond.Broadcast()
}

func (c *Coordinator) isDown(h *hostState) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return h.down
}

func (c *Coordinator) setDown(h *hostState, down bool) {
	c.mu.Lock()
	changed := h.down != down
	h.down = down
	c.mu.Unlock()
	if changed && !down {
		c.cond.Broadcast() // capacity reappeared
	}
}

// submitTo runs one submit RPC against h, holding the connection open
// until the session completes. Any transport failure marks the host
// down and is retryable: the session is deterministic, so re-running
// the spec elsewhere yields a bit-identical result (at worst the dying
// host also finished it — wasted cycles, never divergent results).
func (c *Coordinator) submitTo(ctx context.Context, h *hostState, spec farm.SessionSpec) (SessionResult, bool, error) {
	conn, err := net.DialTimeout("tcp", h.addr, c.cfg.DialTimeout)
	if err != nil {
		c.setDown(h, true)
		return SessionResult{}, true, fmt.Errorf("fleet: host %s: %w", h.info.Name, err)
	}
	defer conn.Close()
	// ctx cancellation (and coordinator close) surface as a conn error.
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-c.stop:
			conn.Close()
		case <-done:
		}
	}()
	defer close(done)

	if err := json.NewEncoder(conn).Encode(Request{Op: OpSubmit, Spec: &spec}); err != nil {
		c.setDown(h, true)
		return SessionResult{}, true, fmt.Errorf("fleet: host %s: %w", h.info.Name, err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		c.setDown(h, true)
		return SessionResult{}, true, fmt.Errorf("fleet: host %s: %w", h.info.Name, err)
	}
	if !resp.OK {
		if resp.Unavailable {
			c.setDown(h, true)
		}
		return SessionResult{}, resp.Retryable, fmt.Errorf("fleet: host %s: %s", h.info.Name, resp.Error)
	}
	if resp.Result == nil {
		return SessionResult{}, false, fmt.Errorf("fleet: host %s: ok submit response without a result", h.info.Name)
	}
	return *resp.Result, false, nil
}

// DrainAll asks every up host's farm to drain, in enrollment order, and
// joins the failures.
func (c *Coordinator) DrainAll() error {
	c.mu.Lock()
	hosts := append([]*hostState(nil), c.hosts...)
	c.mu.Unlock()
	var errs []error
	for _, h := range hosts {
		if c.isDown(h) {
			continue
		}
		resp, err := c.rpc(h.addr, Request{Op: OpDrain})
		if err == nil && !resp.OK {
			err = errors.New(resp.Error)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("fleet: drain %s: %w", h.info.Name, err))
		}
	}
	return errors.Join(errs...)
}

// Close stops the heartbeat loop and fails blocked submissions with
// ErrCoordinatorClosed. Hosts are not contacted — their farms keep
// running.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.cond.Broadcast()
	c.wg.Wait()
	return nil
}

// heartbeatLoop probes every host each interval, flipping down/up as
// probes fail and recover.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		hosts := append([]*hostState(nil), c.hosts...)
		c.mu.Unlock()
		for _, h := range hosts {
			resp, err := c.rpc(h.addr, Request{Op: OpHealth})
			healthy := err == nil && resp.OK && resp.Health != nil && resp.Health.Status == "ok"
			c.setDown(h, !healthy)
		}
	}
}

// rpc performs one short request/response round trip on a fresh
// connection, bounded end to end by DialTimeout.
func (c *Coordinator) rpc(addr string, req Request) (Response, error) {
	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return Response{}, err
	}
	defer conn.Close()
	if req.Op != OpDrain {
		// Drain legitimately takes as long as the sessions it waits on;
		// everything else must answer within the dial budget.
		conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}
