// Package fleet is the multi-host control plane above the farm: where a
// farm.Farm runs many sessions on one machine, a fleet Coordinator
// places sessions across N machines, each running a farm behind a small
// host agent (Host).
//
// The control protocol is deliberately tiny: newline-delimited JSON
// request/response pairs over a plain stream connection, one operation
// per round trip (docs/FLEET.md). The data plane is untouched — every
// session still runs the three-channel co-simulation protocol against
// its host farm's mux front door, and the determinism contract survives
// distribution: a spec re-placed on a different host after a failure
// produces the same virtual-time fingerprint, because the spec carries
// everything that defines the run and nothing that doesn't.
package fleet

import (
	"repro/internal/farm"
	"repro/internal/router"
)

// Control-protocol operations. Each request names one; each gets
// exactly one response on the same connection.
const (
	// OpHello introduces a coordinator to a host and returns the host's
	// identity and capacity.
	OpHello = "hello"
	// OpHealth returns the host's liveness and a farm counter snapshot;
	// hosts with a debug server configured also probe their own /healthz.
	OpHealth = "health"
	// OpSubmit carries one SessionSpec; the response is held back until
	// the session finishes and carries its result. A dropped connection
	// mid-submit is the coordinator's signal to re-place the spec.
	OpSubmit = "submit"
	// OpDrain asks the host's farm to finish in-flight sessions and
	// refuse new ones; the response waits for the drain to complete.
	OpDrain = "drain"
)

// Request is one coordinator→host control frame.
type Request struct {
	Op string `json:"op"`
	// Spec is the session to run (OpSubmit only).
	Spec *farm.SessionSpec `json:"spec,omitempty"`
}

// Response is one host→coordinator control frame.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Retryable marks a failure as a host-capacity condition (queue
	// full, draining, closed) rather than a property of the spec: the
	// coordinator may re-place the session elsewhere. Deterministic run
	// failures are not retryable — they would fail identically on every
	// host.
	Retryable bool `json:"retryable,omitempty"`
	// Unavailable marks the host as unable to accept sessions now or
	// later (its farm is closed or draining): the coordinator marks it
	// down instead of re-offering it work. Queue-full push-back is
	// Retryable but not Unavailable — that host recovers on its own.
	Unavailable bool           `json:"unavailable,omitempty"`
	Host        *HostInfo      `json:"host,omitempty"`
	Health    *HealthReport  `json:"health,omitempty"`
	Result    *SessionResult `json:"result,omitempty"`
}

// HostInfo identifies one enrolled host.
type HostInfo struct {
	// Name is the operator-chosen host name (default: the control
	// address), the unit of placement and status reporting.
	Name string `json:"name"`
	// FarmNetwork/FarmAddr locate the host farm's mux front door that
	// external boards would dial.
	FarmNetwork string `json:"farm_network"`
	FarmAddr    string `json:"farm_addr"`
	// Workers is the host farm's concurrency bound, reported so
	// operators can see fleet capacity in farmctl status.
	Workers int `json:"workers"`
	// Queue is the host farm's submission-queue capacity. Workers+Queue
	// is the most sessions the coordinator will keep in flight on the
	// host before holding placements back.
	Queue int `json:"queue"`
}

// HealthReport is one host's answer to OpHealth.
type HealthReport struct {
	// Status is "ok", or the failure text when the host's own /healthz
	// probe failed.
	Status string `json:"status"`
	// Farm is the host farm's counter snapshot at report time.
	Farm farm.Snapshot `json:"farm"`
}

// Fingerprint is the virtual-time identity of one run: two runs with
// equal fingerprints behaved identically in simulated time. Wall-clock
// quantities (wall time, retransmit counts) are deliberately excluded —
// they vary run to run without breaking determinism.
type Fingerprint struct {
	Router       router.Stats `json:"router"`
	BoardCycles  uint64       `json:"board_cycles"`
	BoardSWTicks uint64       `json:"board_sw_ticks"`
	SyncEvents   uint64       `json:"sync_events"`
}

// SessionResult is the wire form of a completed session: the
// deterministic fingerprint plus the headline (non-deterministic)
// performance numbers.
type SessionResult struct {
	Fingerprint Fingerprint `json:"fingerprint"`
	Generated   uint64      `json:"generated"`
	Accuracy    float64     `json:"accuracy"`
	WallMS      float64     `json:"wall_ms"`
	Retransmits uint64      `json:"retransmits"`
	Transport   string      `json:"transport"`
	TSync       uint64      `json:"tsync"`
	// Host is the name of the host that ran the session, filled in by
	// the coordinator (the host doesn't know its fleet name is unique).
	Host string `json:"host,omitempty"`
}

// ResultOf projects a router.RunResult onto the wire form.
func ResultOf(res router.RunResult) SessionResult {
	return SessionResult{
		Fingerprint: Fingerprint{
			Router:       res.Router,
			BoardCycles:  res.BoardCycles,
			BoardSWTicks: res.BoardSWTicks,
			SyncEvents:   res.HW.SyncEvents,
		},
		Generated:   res.Generated,
		Accuracy:    res.Accuracy,
		WallMS:      float64(res.Wall.Milliseconds()),
		Retransmits: res.Link.Link.Retransmits,
		Transport:   res.TransportKind.String(),
		TSync:       res.TSync,
	}
}
