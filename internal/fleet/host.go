package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/farm"
	"repro/internal/obs"
)

// HostOptions tunes a fleet host agent. The zero value is usable: an
// ephemeral loopback control port, named after itself, no self-probe.
type HostOptions struct {
	// Addr is the control listener's TCP address (default
	// "127.0.0.1:0").
	Addr string
	// Name is the host's fleet identity (default: the bound control
	// address).
	Name string
	// HealthzURL, when non-empty, is probed on every OpHealth — wire it
	// to the host's own obs debug server (http://addr/healthz) so fleet
	// health reflects the same signal operators scrape.
	HealthzURL string
	// Obs, when non-nil, receives the host agent's control-plane
	// counters.
	Obs *obs.Registry
}

// Host serves the fleet control protocol in front of one farm.Farm.
// One goroutine per connection; operations on a connection are
// sequential request/response pairs, so a coordinator that wants
// concurrent submits opens concurrent connections.
type Host struct {
	farm *farm.Farm
	ln   net.Listener
	name string
	opt  HostOptions

	mSubmits *obs.Counter
	mErrors  *obs.Counter

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ListenHost starts serving the control protocol for f on
// opt.Addr. The caller owns f: closing the host does not close the
// farm.
func ListenHost(f *farm.Farm, opt HostOptions) (*Host, error) {
	if opt.Addr == "" {
		opt.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", opt.Addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: host listen: %w", err)
	}
	h := &Host{farm: f, ln: ln, name: opt.Name, opt: opt}
	if h.name == "" {
		h.name = ln.Addr().String()
	}
	if reg := opt.Obs; reg != nil {
		h.mSubmits = reg.Counter("fleet_host_submits_total")
		h.mErrors = reg.Counter("fleet_host_errors_total")
	}
	h.wg.Add(1)
	go h.serve()
	return h, nil
}

// Addr is the bound control address.
func (h *Host) Addr() string { return h.ln.Addr().String() }

// Name is the host's fleet identity.
func (h *Host) Name() string { return h.name }

// Close stops the control listener and waits for in-flight control
// connections to finish. The farm is left running.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	err := h.ln.Close()
	h.wg.Wait()
	return err
}

func (h *Host) serve() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer conn.Close()
			h.handle(conn)
		}()
	}
}

// handle runs one connection's request/response loop until the peer
// hangs up.
func (h *Host) handle(conn net.Conn) {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				h.countError()
			}
			return
		}
		resp := h.dispatch(req)
		if !resp.OK {
			h.countError()
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (h *Host) dispatch(req Request) Response {
	switch req.Op {
	case OpHello:
		snap := h.farm.Snapshot()
		return Response{OK: true, Host: &HostInfo{
			Name:        h.name,
			FarmNetwork: h.farm.Network(),
			FarmAddr:    h.farm.Addr(),
			Workers:     snap.Workers,
			Queue:       snap.QueueCapacity,
		}}
	case OpHealth:
		return Response{OK: true, Health: h.health()}
	case OpSubmit:
		return h.submit(req.Spec)
	case OpDrain:
		if err := h.farm.Drain(context.Background()); err != nil {
			return Response{OK: false, Error: fmt.Sprintf("drain: %v", err)}
		}
		return Response{OK: true}
	default:
		return Response{OK: false, Error: fmt.Sprintf("fleet: unknown op %q", req.Op)}
	}
}

// health reports liveness: the farm's counter snapshot always, plus the
// host's own /healthz probe when one is configured — so fleet health
// and operator dashboards agree on what "up" means. A farm that can no
// longer accept sessions (closed or draining) reports unhealthy even
// though the agent still answers: placement must route around it.
func (h *Host) health() *HealthReport {
	rep := &HealthReport{Status: "ok", Farm: h.farm.Snapshot()}
	if rep.Farm.Closed {
		rep.Status = "farm closed"
		return rep
	}
	if rep.Farm.Draining {
		rep.Status = "farm draining"
		return rep
	}
	if h.opt.HealthzURL != "" {
		client := http.Client{Timeout: 2 * time.Second}
		resp, err := client.Get(h.opt.HealthzURL)
		if err != nil {
			rep.Status = fmt.Sprintf("healthz probe: %v", err)
			return rep
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			rep.Status = fmt.Sprintf("healthz probe: HTTP %d", resp.StatusCode)
		}
	}
	return rep
}

// submit runs one session to completion and reports its result on the
// same connection — the coordinator's conn is the session's lease, and
// a broken conn (either side) is the re-placement signal.
func (h *Host) submit(spec *farm.SessionSpec) Response {
	if spec == nil {
		return Response{OK: false, Error: "fleet: submit without a spec"}
	}
	if h.mSubmits != nil {
		h.mSubmits.Inc()
	}
	s, err := h.farm.Submit(context.Background(), *spec)
	if err != nil {
		gone := errors.Is(err, farm.ErrDraining) || errors.Is(err, farm.ErrClosed)
		return Response{
			OK:          false,
			Error:       err.Error(),
			Retryable:   gone || errors.Is(err, farm.ErrQueueFull),
			Unavailable: gone,
		}
	}
	res, err := s.Result()
	if err == nil && res.Conservation != nil {
		err = res.Conservation
	}
	if err != nil {
		// The run itself failed. Deterministic failures are not
		// retryable — the same spec fails the same way anywhere — but a
		// farm teardown racing the session is.
		gone := errors.Is(err, farm.ErrClosed)
		return Response{OK: false, Error: err.Error(), Retryable: gone, Unavailable: gone}
	}
	out := ResultOf(res)
	return Response{OK: true, Result: &out}
}

func (h *Host) countError() {
	if h.mErrors != nil {
		h.mErrors.Inc()
	}
}
