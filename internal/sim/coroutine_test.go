package sim

import (
	"testing"
)

func TestCoroutineBasicYieldResume(t *testing.T) {
	var trace []int
	c := NewCoroutine("basic", func(c *Coroutine) {
		trace = append(trace, 1)
		c.Yield()
		trace = append(trace, 2)
		c.Yield()
		trace = append(trace, 3)
	})

	if c.Status() != CoroSuspended {
		t.Fatalf("initial status = %v, want suspended", c.Status())
	}
	if st := c.Resume(); st != CoroSuspended {
		t.Fatalf("after first resume: %v, want suspended", st)
	}
	if len(trace) != 1 || trace[0] != 1 {
		t.Fatalf("trace after first resume: %v", trace)
	}
	c.Resume()
	if st := c.Resume(); st != CoroFinished {
		t.Fatalf("after final resume: %v, want finished", st)
	}
	if len(trace) != 3 {
		t.Fatalf("trace: %v", trace)
	}
	// Resuming a finished coroutine is a no-op.
	if st := c.Resume(); st != CoroFinished {
		t.Fatalf("resume after finish: %v", st)
	}
}

func TestCoroutineInterleavingIsStrict(t *testing.T) {
	// The scheduler and body must never run simultaneously: increments from
	// both sides into an unguarded counter must not race. Run with -race to
	// get the real guarantee; the ordering check below catches logic bugs.
	shared := 0
	c := NewCoroutine("strict", func(c *Coroutine) {
		for i := 0; i < 100; i++ {
			shared++
			c.Yield()
		}
	})
	for i := 0; i < 100; i++ {
		before := shared
		c.Resume()
		if shared != before+1 {
			t.Fatalf("iteration %d: shared=%d, want %d", i, shared, before+1)
		}
	}
	if st := c.Resume(); st != CoroFinished {
		t.Fatalf("status after loop: %v", st)
	}
}

func TestCoroutineKillRunsDefers(t *testing.T) {
	cleaned := false
	c := NewCoroutine("kill", func(c *Coroutine) {
		defer func() { cleaned = true }()
		for {
			c.Yield()
		}
	})
	c.Resume()
	c.Kill()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Kill")
	}
	if c.Status() != CoroKilled {
		t.Fatalf("status = %v, want killed", c.Status())
	}
	// Killing or resuming again is a no-op.
	c.Kill()
	if st := c.Resume(); st != CoroKilled {
		t.Fatalf("resume after kill: %v", st)
	}
}

func TestCoroutineKillBeforeStart(t *testing.T) {
	ran := false
	c := NewCoroutine("neverstarted", func(c *Coroutine) { ran = true })
	c.Kill()
	if ran {
		t.Fatal("body ran despite Kill before first Resume")
	}
	if c.Status() != CoroKilled {
		t.Fatalf("status = %v, want killed", c.Status())
	}
}

func TestCoroutinePanicPropagates(t *testing.T) {
	c := NewCoroutine("boom", func(c *Coroutine) {
		c.Yield()
		panic("exploded")
	})
	c.Resume()
	defer func() {
		r := recover()
		pe, ok := r.(*ErrCoroutinePanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *ErrCoroutinePanic", r, r)
		}
		if pe.Name != "boom" || pe.Value != "exploded" {
			t.Fatalf("panic payload: %+v", pe)
		}
		if pe.Error() == "" {
			t.Fatal("empty error string")
		}
	}()
	c.Resume()
	t.Fatal("resume of panicking coroutine returned normally")
}

func TestCoroutineStatusString(t *testing.T) {
	for st, want := range map[CoroStatus]string{
		CoroSuspended:  "suspended",
		CoroRunning:    "running",
		CoroFinished:   "finished",
		CoroKilled:     "killed",
		CoroStatus(99): "CoroStatus(99)",
	} {
		if got := st.String(); got != want {
			t.Errorf("status %d: %q want %q", int(st), got, want)
		}
	}
}

func TestManyCoroutinesRoundRobin(t *testing.T) {
	const n = 32
	counts := make([]int, n)
	coros := make([]*Coroutine, n)
	for i := 0; i < n; i++ {
		i := i
		coros[i] = NewCoroutine("rr", func(c *Coroutine) {
			for k := 0; k < 10; k++ {
				counts[i]++
				c.Yield()
			}
		})
	}
	live := n
	for live > 0 {
		live = 0
		for _, c := range coros {
			if c.Resume() == CoroSuspended {
				live++
			}
		}
	}
	for i, cnt := range counts {
		if cnt != 10 {
			t.Fatalf("coroutine %d ran %d iterations, want 10", i, cnt)
		}
	}
}
