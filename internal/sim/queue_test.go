package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	q := NewQueue()
	var fired []int
	q.Schedule(NS(30), func() { fired = append(fired, 30) })
	q.Schedule(NS(10), func() { fired = append(fired, 10) })
	q.Schedule(NS(20), func() { fired = append(fired, 20) })

	for {
		_, fn, ok := q.Pop()
		if !ok {
			break
		}
		fn()
	}
	want := []int{10, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestQueueFIFOWithinSameInstant(t *testing.T) {
	q := NewQueue()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(NS(5), func() { order = append(order, i) })
	}
	for {
		_, fn, ok := q.Pop()
		if !ok {
			break
		}
		fn()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of schedule order at %d: %v", i, order[:i+1])
		}
	}
}

func TestQueueCancel(t *testing.T) {
	q := NewQueue()
	ran := false
	h := q.Schedule(NS(1), func() { ran = true })
	if !q.Cancel(h) {
		t.Fatal("Cancel of pending event returned false")
	}
	if q.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("cancelled event still popped")
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after cancel, want 0", q.Len())
	}
}

func TestQueueCancelHead(t *testing.T) {
	q := NewQueue()
	h := q.Schedule(NS(1), func() {})
	q.Schedule(NS(2), func() {})
	q.Cancel(h)
	if nt := q.NextTime(); nt != NS(2) {
		t.Fatalf("NextTime after head cancel = %v, want 2ns", nt)
	}
}

func TestQueueNextTimeEmpty(t *testing.T) {
	q := NewQueue()
	if nt := q.NextTime(); nt != MaxTime {
		t.Fatalf("empty queue NextTime = %v, want MaxTime", nt)
	}
	if !q.Empty() {
		t.Fatal("new queue not Empty")
	}
}

func TestQueuePopCountsStats(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 5; i++ {
		q.Schedule(NS(uint64(i)), func() {})
	}
	for {
		if _, _, ok := q.Pop(); !ok {
			break
		}
	}
	if q.Popped() != 5 {
		t.Fatalf("Popped = %d, want 5", q.Popped())
	}
}

// Property: regardless of insertion order, pops come out sorted by time and,
// within a time, by insertion sequence.
func TestQueuePopMonotonicProperty(t *testing.T) {
	f := func(times []uint16) bool {
		q := NewQueue()
		type stamp struct {
			at  Time
			seq int
		}
		for i, v := range times {
			q.Schedule(Time(v), func() {})
			_ = i
		}
		var popped []Time
		for {
			at, _, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, at)
		}
		if len(popped) != len(times) {
			return false
		}
		sorted := make([]Time, len(times))
		for i, v := range times {
			sorted[i] = Time(v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range popped {
			if popped[i] != sorted[i] {
				return false
			}
		}
		_ = stamp{}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset removes exactly that subset.
func TestQueueCancelSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		q := NewQueue()
		n := 1 + rng.Intn(64)
		handles := make([]Handle, n)
		fired := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = q.Schedule(Time(rng.Intn(10)), func() { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				q.Cancel(handles[i])
			}
		}
		for {
			_, fn, ok := q.Pop()
			if !ok {
				break
			}
			fn()
		}
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				t.Fatalf("trial %d: event %d fired=%v cancelled=%v", trial, i, fired[i], cancelled[i])
			}
		}
	}
}
