package sim

import (
	"errors"
	"fmt"
)

// CoroStatus describes the lifecycle state of a Coroutine.
type CoroStatus int

const (
	// CoroSuspended: created or yielded, waiting to be resumed.
	CoroSuspended CoroStatus = iota
	// CoroRunning: currently executing its body (only observable from
	// within the body itself).
	CoroRunning
	// CoroFinished: body returned normally.
	CoroFinished
	// CoroKilled: unwound by Kill before the body completed.
	CoroKilled
)

// String implements fmt.Stringer.
func (s CoroStatus) String() string {
	switch s {
	case CoroSuspended:
		return "suspended"
	case CoroRunning:
		return "running"
	case CoroFinished:
		return "finished"
	case CoroKilled:
		return "killed"
	default:
		return fmt.Sprintf("CoroStatus(%d)", int(s))
	}
}

// errKilled is the sentinel panic used to unwind a killed coroutine body.
var errKilled = errors.New("sim: coroutine killed")

// ErrCoroutinePanic wraps a panic that escaped a coroutine body; it is
// re-raised on the goroutine that called Resume so simulation kernels see
// failures synchronously.
type ErrCoroutinePanic struct {
	Name  string
	Value any
}

// Error implements the error interface.
func (e *ErrCoroutinePanic) Error() string {
	return fmt.Sprintf("sim: coroutine %q panicked: %v", e.Name, e.Value)
}

// Coroutine implements cooperative, one-at-a-time scheduling of a function
// body on a dedicated goroutine. Exactly one of the scheduler and the body
// runs at any instant: Resume transfers control to the body, and the body
// transfers control back with Yield (or by returning). This is the
// mechanism behind SC_THREAD-style simulation processes and RTOS threads.
//
// A Coroutine must always be resumed from the same "scheduler side"
// discipline: calling Resume concurrently from multiple goroutines is a
// programming error.
type Coroutine struct {
	name    string
	body    func(*Coroutine)
	resume  chan struct{}
	yielded chan CoroStatus
	status  CoroStatus
	killing bool
	started bool
	panicV  any // forwarded panic payload, if any
}

// NewCoroutine creates a suspended coroutine around body. The body does not
// run until the first Resume. The body receives the coroutine itself so it
// can Yield.
func NewCoroutine(name string, body func(*Coroutine)) *Coroutine {
	return &Coroutine{
		name:    name,
		body:    body,
		resume:  make(chan struct{}),
		yielded: make(chan CoroStatus),
		status:  CoroSuspended,
	}
}

// Name returns the diagnostic name given at creation.
func (c *Coroutine) Name() string { return c.name }

// Status returns the current lifecycle state.
func (c *Coroutine) Status() CoroStatus { return c.status }

func (c *Coroutine) run() {
	<-c.resume
	if c.killing {
		c.yielded <- CoroKilled
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if r == errKilled { //nolint:errorlint // sentinel identity
				c.yielded <- CoroKilled
				return
			}
			c.panicV = r
			c.yielded <- CoroFinished
			return
		}
	}()
	c.body(c)
	c.yielded <- CoroFinished
}

// Resume transfers control to the coroutine body until it yields, returns,
// or is killed, and reports the resulting status. Resuming a finished or
// killed coroutine is a no-op that returns the terminal status. If the body
// panicked, Resume re-panics with *ErrCoroutinePanic on the caller's
// goroutine.
func (c *Coroutine) Resume() CoroStatus {
	if c.status == CoroFinished || c.status == CoroKilled {
		return c.status
	}
	if !c.started {
		c.started = true
		go c.run() //cosim:wallclock -- the goroutine is the coroutine's stack, not a concurrent actor: the resume/yield channel handshake admits exactly one runnable goroutine at a time, so scheduling stays deterministic
	}
	c.status = CoroRunning
	c.resume <- struct{}{}
	st := <-c.yielded
	c.status = st
	if c.panicV != nil {
		v := c.panicV
		c.panicV = nil
		panic(&ErrCoroutinePanic{Name: c.name, Value: v})
	}
	return st
}

// Yield suspends the body and returns control to the goroutine that called
// Resume. It must only be called from within the coroutine body. When the
// coroutine is killed while suspended, Yield never returns: it unwinds the
// body by panicking with an internal sentinel (deferred cleanup in the body
// still runs).
func (c *Coroutine) Yield() {
	c.yielded <- CoroSuspended
	<-c.resume
	if c.killing {
		panic(errKilled)
	}
}

// Kill unwinds a suspended coroutine: its body's deferred functions run,
// then the coroutine transitions to CoroKilled. Killing a finished or
// killed coroutine is a no-op. Kill must be called from the scheduler side
// (never from within the body).
func (c *Coroutine) Kill() {
	if c.status == CoroFinished || c.status == CoroKilled {
		return
	}
	c.killing = true
	if !c.started {
		// Never ran: mark it dead without spinning up the goroutine.
		c.status = CoroKilled
		return
	}
	c.resume <- struct{}{}
	st := <-c.yielded
	// A body whose defer recovers the kill sentinel and returns normally
	// still counts as killed for the scheduler's purposes.
	if st == CoroFinished && c.panicV != nil {
		v := c.panicV
		c.panicV = nil
		panic(&ErrCoroutinePanic{Name: c.name, Value: v})
	}
	c.status = CoroKilled
}
