package sim

import "container/heap"

// EventFunc is a callback executed when the simulation reaches the time an
// event was scheduled for.
type EventFunc func()

// scheduledEvent is one pending timed callback. seq breaks ties between
// events scheduled for the same instant so that pop order equals schedule
// order, which keeps simulations deterministic. Events are recycled through
// the queue's freelist once popped; gen distinguishes the current
// incarnation from stale Handles that still point at the same record.
type scheduledEvent struct {
	at    Time
	seq   uint64
	fn    EventFunc
	index int    // heap bookkeeping
	dead  bool   // cancelled in place; skipped on pop
	gen   uint32 // incremented on recycle; stale Handles mismatch
}

// Handle identifies a scheduled event so it can be cancelled. A Handle
// outliving its event (fired or cancelled, record recycled) is harmless:
// Valid reports false and Cancel is a no-op.
type Handle struct {
	ev  *scheduledEvent
	gen uint32
}

// Valid reports whether the handle refers to a still-pending event.
func (h Handle) Valid() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.dead && h.ev.index >= 0
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Queue is a deterministic timed event queue: events pop in non-decreasing
// time order, and events scheduled for the same instant pop in the order
// they were scheduled. Queue is not safe for concurrent use; simulation
// kernels own it from a single goroutine.
type Queue struct {
	h      eventHeap
	seq    uint64
	popped uint64
	free   []*scheduledEvent // recycled records; bounded by peak outstanding events
}

// get takes an event record from the freelist, allocating only when the
// queue has never been this deep before.
func (q *Queue) get() *scheduledEvent {
	if n := len(q.free); n > 0 {
		ev := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return ev
	}
	return &scheduledEvent{}
}

// recycle returns a popped record to the freelist, bumping its generation
// so outstanding Handles to the old incarnation go stale.
func (q *Queue) recycle(ev *scheduledEvent) {
	ev.gen++
	ev.fn = nil
	ev.dead = false
	q.free = append(q.free, ev)
}

// NewQueue returns an empty event queue.
func NewQueue() *Queue { return &Queue{} }

// Len returns the number of pending (non-cancelled) events. Cancelled
// events that have not been popped yet are excluded.
func (q *Queue) Len() int {
	n := 0
	for _, ev := range q.h {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Empty reports whether no live events remain.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Schedule registers fn to run at the absolute time at. It returns a handle
// that can cancel the event before it fires.
func (q *Queue) Schedule(at Time, fn EventFunc) Handle {
	ev := q.get()
	ev.at, ev.seq, ev.fn = at, q.seq, fn
	q.seq++
	heap.Push(&q.h, ev)
	return Handle{ev: ev, gen: ev.gen}
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (q *Queue) Cancel(h Handle) bool {
	if !h.Valid() {
		return false
	}
	h.ev.dead = true
	return true
}

// NextTime returns the timestamp of the earliest live event, or MaxTime if
// the queue is empty.
func (q *Queue) NextTime() Time {
	q.skipDead()
	if len(q.h) == 0 {
		return MaxTime
	}
	return q.h[0].at
}

// Pop removes and returns the earliest live event's callback together with
// its timestamp. ok is false when the queue is empty.
func (q *Queue) Pop() (at Time, fn EventFunc, ok bool) {
	q.skipDead()
	if len(q.h) == 0 {
		return 0, nil, false
	}
	ev := heap.Pop(&q.h).(*scheduledEvent)
	q.popped++
	at, fn = ev.at, ev.fn
	q.recycle(ev)
	return at, fn, true
}

// Popped returns the number of events executed so far; exposed for
// simulator statistics.
func (q *Queue) Popped() uint64 { return q.popped }

func (q *Queue) skipDead() {
	for len(q.h) > 0 && q.h[0].dead {
		q.recycle(heap.Pop(&q.h).(*scheduledEvent))
	}
}
