package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	cases := []struct {
		got, want Time
	}{
		{PS(1), 1},
		{NS(1), 1000},
		{US(1), 1000 * 1000},
		{MS(1), 1000 * 1000 * 1000},
		{Sec(1), 1000 * 1000 * 1000 * 1000},
		{NS(10), 10000},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("unit conversion: got %d want %d", c.got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{PS(7), "7ps"},
		{NS(10), "10ns"},
		{US(3), "3us"},
		{MS(250), "250ms"},
		{Sec(2), "2s"},
		{PS(1500), "1500ps"}, // 1.5ns does not divide evenly by ns
		{MaxTime, "end-of-time"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", uint64(c.t), got, c.want)
		}
	}
}

func TestTimeCycles(t *testing.T) {
	if got := NS(100).Cycles(NS(10)); got != 10 {
		t.Errorf("100ns / 10ns = %d cycles, want 10", got)
	}
	if got := NS(105).Cycles(NS(10)); got != 10 {
		t.Errorf("105ns / 10ns = %d cycles, want 10 (floor)", got)
	}
	if got := NS(100).Cycles(0); got != 0 {
		t.Errorf("zero period must yield 0 cycles, got %d", got)
	}
}

func TestTimeStringRoundTripUnits(t *testing.T) {
	// Property: a time built from whole units prints with that unit or a
	// larger one, never as raw picoseconds (unless it IS sub-ns).
	f := func(n uint16) bool {
		s := NS(uint64(n) * 1).String()
		return len(s) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
