// Package sim provides the discrete-event simulation foundations shared by
// the HDL simulation kernel (package hdlsim) and the virtual-board RTOS
// (package rtos): a simulated-time representation, a deterministic timed
// event queue, and a cooperative coroutine runner used to implement
// thread-style simulation processes on top of goroutines.
package sim

import "fmt"

// Time is a simulated time instant, measured in picoseconds from the start
// of simulation. Picosecond resolution lets a 64-bit value cover more than
// 200 days of simulated time while still resolving sub-nanosecond deltas,
// which is the resolution SystemC uses by default for RTL-level models.
type Time uint64

// Duration units, expressed in Time ticks (picoseconds).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time. It is used as the
// "never" sentinel by schedulers.
const MaxTime Time = ^Time(0)

// PS returns n picoseconds as a Time.
func PS(n uint64) Time { return Time(n) * Picosecond }

// NS returns n nanoseconds as a Time.
func NS(n uint64) Time { return Time(n) * Nanosecond }

// US returns n microseconds as a Time.
func US(n uint64) Time { return Time(n) * Microsecond }

// MS returns n milliseconds as a Time.
func MS(n uint64) Time { return Time(n) * Millisecond }

// Sec returns n seconds as a Time.
func Sec(n uint64) Time { return Time(n) * Second }

// String renders the time using the largest unit that divides it exactly,
// matching the way waveform viewers print timestamps.
func (t Time) String() string {
	if t == MaxTime {
		return "end-of-time"
	}
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", uint64(t/Second))
	case t%Millisecond == 0:
		return fmt.Sprintf("%dms", uint64(t/Millisecond))
	case t%Microsecond == 0:
		return fmt.Sprintf("%dus", uint64(t/Microsecond))
	case t%Nanosecond == 0:
		return fmt.Sprintf("%dns", uint64(t/Nanosecond))
	default:
		return fmt.Sprintf("%dps", uint64(t))
	}
}

// Picoseconds returns the raw picosecond count.
func (t Time) Picoseconds() uint64 { return uint64(t) }

// Cycles returns how many whole periods of the given length fit in t.
// A zero period yields zero to avoid a division trap in callers that have
// not configured a clock yet.
func (t Time) Cycles(period Time) uint64 {
	if period == 0 {
		return 0
	}
	return uint64(t / period)
}
