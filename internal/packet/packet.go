// Package packet defines the router testbench's packet format, following
// the paper's section 6: source address, destination address, an integer
// packet identifier used for debugging, a data field, and a 16-bit
// checksum used for error detection. Packets travel through the HDL model
// whole (one packet per signal transaction) and are serialized to 32-bit
// words when crossing the co-simulation DATA channel to the board.
package packet

import (
	"fmt"
	"math/rand"

	"repro/internal/checksum"
)

// MaxDataWords bounds the payload so a packet always fits the remote
// device's packet window (see board/remote device register map).
const MaxDataWords = 16

// MulticastBit in the destination address marks a multicast packet: the
// low bits of Dst are then a port bitmask rather than a consumer address.
// This mirrors the multicast support of the SystemC example the paper's
// testbench extends (the "Multicast Helix Packet Switch").
const MulticastBit uint16 = 0x8000

// HeaderWords is the number of 32-bit words occupied by the header when a
// packet is serialized: word0 = src|dst, word1 = id, word2 = len|checksum.
const HeaderWords = 3

// Packet is one router packet.
type Packet struct {
	Src      uint16   // address of the producer
	Dst      uint16   // address of the consumer the packet must reach
	ID       uint32   // debugging identifier
	Data     []uint32 // payload words
	Checksum uint16   // 16-bit error-detection field over header+payload
}

// String implements fmt.Stringer for logs and failure messages.
func (p Packet) String() string {
	if p.IsMulticast() {
		return fmt.Sprintf("pkt{id=%d %d→mask:%#x len=%d cks=%#04x}", p.ID, p.Src, p.PortMask(), len(p.Data), p.Checksum)
	}
	return fmt.Sprintf("pkt{id=%d %d→%d len=%d cks=%#04x}", p.ID, p.Src, p.Dst, len(p.Data), p.Checksum)
}

// IsMulticast reports whether Dst is a port bitmask.
func (p Packet) IsMulticast() bool { return p.Dst&MulticastBit != 0 }

// PortMask returns the multicast destination bitmask (meaningless for
// unicast packets).
func (p Packet) PortMask() uint16 { return p.Dst &^ MulticastBit }

// checksumInput flattens the checksummed fields (everything except the
// checksum itself) into 16-bit words.
func (p Packet) checksumInput() []uint16 {
	words := make([]uint16, 0, 4+2*len(p.Data))
	words = append(words, p.Src, p.Dst, uint16(p.ID>>16), uint16(p.ID))
	for _, d := range p.Data {
		words = append(words, uint16(d>>16), uint16(d))
	}
	return words
}

// ComputeChecksum returns the correct checksum for the packet's current
// contents.
func (p Packet) ComputeChecksum() uint16 {
	return checksum.InternetWords(p.checksumInput())
}

// Seal sets the checksum field from the packet contents and returns the
// packet (value semantics, convenient in literals).
func (p Packet) Seal() Packet {
	p.Checksum = p.ComputeChecksum()
	return p
}

// Valid reports whether the stored checksum matches the contents.
func (p Packet) Valid() bool { return p.Checksum == p.ComputeChecksum() }

// CorruptBit flips a single bit of the payload (or the header if the
// payload is empty) without updating the checksum, producing a packet that
// must fail verification. bit selects which bit to flip, modulo the packet
// size.
func (p Packet) CorruptBit(bit int) Packet {
	data := make([]uint32, len(p.Data))
	copy(data, p.Data)
	p.Data = data
	if len(p.Data) > 0 {
		w := bit / 32 % len(p.Data)
		p.Data[w] ^= 1 << (uint(bit) % 32)
	} else {
		p.ID ^= 1 << (uint(bit) % 32)
	}
	return p
}

// Words returns the number of 32-bit words the packet serializes to.
func (p Packet) Words() int { return HeaderWords + len(p.Data) }

// Encode serializes the packet to 32-bit words:
//
//	word0: src<<16 | dst
//	word1: id
//	word2: len(data)<<16 | checksum
//	word3..: data
func (p Packet) Encode() []uint32 {
	out := make([]uint32, 0, p.Words())
	out = append(out,
		uint32(p.Src)<<16|uint32(p.Dst),
		p.ID,
		uint32(len(p.Data))<<16|uint32(p.Checksum),
	)
	return append(out, p.Data...)
}

// Decode parses a packet from words, returning the packet and the number
// of words consumed.
func Decode(words []uint32) (Packet, int, error) {
	if len(words) < HeaderWords {
		return Packet{}, 0, fmt.Errorf("packet: truncated header (%d words)", len(words))
	}
	n := int(words[2] >> 16)
	if n > MaxDataWords {
		return Packet{}, 0, fmt.Errorf("packet: payload length %d exceeds max %d", n, MaxDataWords)
	}
	if len(words) < HeaderWords+n {
		return Packet{}, 0, fmt.Errorf("packet: truncated payload (have %d want %d words)", len(words)-HeaderWords, n)
	}
	p := Packet{
		Src:      uint16(words[0] >> 16),
		Dst:      uint16(words[0]),
		ID:       words[1],
		Checksum: uint16(words[2]),
	}
	if n > 0 {
		p.Data = make([]uint32, n)
		copy(p.Data, words[HeaderWords:HeaderWords+n])
	}
	return p, HeaderWords + n, nil
}

// Generator produces the testbench's random traffic: packets with random
// destination addresses (paper section 6) and random payloads, optionally
// corrupting a fraction of them to exercise the checksum-drop path, and
// optionally emitting a fraction as multicast.
type Generator struct {
	rng       *rand.Rand
	src       uint16
	ports     int
	dataWords int
	errRate   float64 // fraction of packets emitted with a bad checksum
	mcRate    float64 // fraction of packets emitted as multicast
	nextID    uint32
}

// NewGenerator creates a deterministic traffic generator. src names the
// producer; dst addresses are drawn uniformly from [0, ports); dataWords
// is the payload size; errRate in [0,1] corrupts that fraction of packets.
func NewGenerator(seed int64, src uint16, ports, dataWords int, errRate float64) *Generator {
	if dataWords > MaxDataWords {
		panic(fmt.Sprintf("packet: dataWords %d exceeds max %d", dataWords, MaxDataWords))
	}
	return &Generator{
		rng:       rand.New(rand.NewSource(seed)),
		src:       src,
		ports:     ports,
		dataWords: dataWords,
		errRate:   errRate,
	}
}

// SetMulticastRate makes the generator emit that fraction of its packets
// as multicast with a random non-empty port mask.
func (g *Generator) SetMulticastRate(rate float64) { g.mcRate = rate }

// Next produces the next packet.
func (g *Generator) Next() Packet {
	p := Packet{
		Src: g.src,
		Dst: uint16(g.rng.Intn(g.ports)),
		ID:  g.nextID,
	}
	if g.mcRate > 0 && g.rng.Float64() < g.mcRate {
		mask := uint16(1 + g.rng.Intn(1<<g.ports-1)) // non-empty mask
		p.Dst = MulticastBit | mask
	}
	g.nextID++
	p.Data = make([]uint32, g.dataWords)
	for i := range p.Data {
		p.Data[i] = g.rng.Uint32()
	}
	p = p.Seal()
	if g.errRate > 0 && g.rng.Float64() < g.errRate {
		p = p.CorruptBit(g.rng.Intn(32 * (g.dataWords + 1)))
	}
	return p
}

// Generated returns how many packets have been produced.
func (g *Generator) Generated() uint32 { return g.nextID }
