package packet

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Packet{Src: 3, Dst: 1, ID: 0xdeadbeef, Data: []uint32{1, 2, 3, 4}}.Seal()
	words := p.Encode()
	if len(words) != p.Words() {
		t.Fatalf("encoded to %d words, Words() says %d", len(words), p.Words())
	}
	q, n, err := Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(words) {
		t.Fatalf("consumed %d words, want %d", n, len(words))
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip: %+v != %+v", p, q)
	}
}

func TestDecodeRoundTripProperty(t *testing.T) {
	f := func(src, dst uint16, id uint32, raw []uint32) bool {
		if len(raw) > MaxDataWords {
			raw = raw[:MaxDataWords]
		}
		p := Packet{Src: src, Dst: dst, ID: id, Data: raw}.Seal()
		if len(raw) == 0 {
			p.Data = nil
		}
		q, n, err := Decode(p.Encode())
		if err != nil || n != p.Words() {
			return false
		}
		return reflect.DeepEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]uint32{1, 2}); err == nil {
		t.Fatal("truncated header accepted")
	}
	p := Packet{Data: []uint32{1, 2, 3}}.Seal()
	words := p.Encode()
	if _, _, err := Decode(words[:4]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Length field beyond MaxDataWords.
	bad := []uint32{0, 0, uint32(MaxDataWords+1) << 16}
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestSealValidCorrupt(t *testing.T) {
	p := Packet{Src: 1, Dst: 2, ID: 7, Data: []uint32{0xaaaa5555}}.Seal()
	if !p.Valid() {
		t.Fatal("sealed packet invalid")
	}
	for bit := 0; bit < 64; bit += 7 {
		c := p.CorruptBit(bit)
		if c.Valid() {
			t.Fatalf("corruption at bit %d undetected", bit)
		}
		if !p.Valid() {
			t.Fatal("CorruptBit mutated the original packet")
		}
	}
}

func TestCorruptEmptyPayloadHitsHeader(t *testing.T) {
	p := Packet{Src: 1, Dst: 2, ID: 7}.Seal()
	c := p.CorruptBit(5)
	if c.Valid() {
		t.Fatal("header corruption undetected")
	}
	if c.ID == p.ID {
		t.Fatal("CorruptBit on empty payload did not touch the ID")
	}
}

func TestDecodeTrailingWordsIgnored(t *testing.T) {
	p := Packet{Src: 9, Dst: 4, ID: 1, Data: []uint32{5}}.Seal()
	words := append(p.Encode(), 0xffffffff, 0x12345678)
	q, n, err := Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	if n != p.Words() {
		t.Fatalf("consumed %d, want %d", n, p.Words())
	}
	if !q.Valid() {
		t.Fatal("decode with trailing garbage corrupted packet")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(7, 2, 4, 8, 0)
	g2 := NewGenerator(7, 2, 4, 8, 0)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("packet %d differs across same-seed generators:\n%v\n%v", i, a, b)
		}
	}
	if g1.Generated() != 50 {
		t.Fatalf("Generated = %d, want 50", g1.Generated())
	}
}

func TestGeneratorProperties(t *testing.T) {
	g := NewGenerator(11, 1, 4, 6, 0)
	seenDst := map[uint16]bool{}
	for i := 0; i < 200; i++ {
		p := g.Next()
		if !p.Valid() {
			t.Fatalf("errRate=0 produced invalid packet %v", p)
		}
		if p.Src != 1 {
			t.Fatalf("src = %d, want 1", p.Src)
		}
		if int(p.Dst) >= 4 {
			t.Fatalf("dst %d out of range", p.Dst)
		}
		if len(p.Data) != 6 {
			t.Fatalf("payload %d words, want 6", len(p.Data))
		}
		if p.ID != uint32(i) {
			t.Fatalf("ID %d, want sequential %d", p.ID, i)
		}
		seenDst[p.Dst] = true
	}
	if len(seenDst) != 4 {
		t.Fatalf("200 random packets hit %d/4 destinations", len(seenDst))
	}
}

func TestGeneratorErrorRate(t *testing.T) {
	g := NewGenerator(13, 0, 4, 4, 0.3)
	bad := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if !g.Next().Valid() {
			bad++
		}
	}
	if bad < n*20/100 || bad > n*40/100 {
		t.Fatalf("errRate 0.3 produced %d/%d invalid packets", bad, n)
	}
}

func TestGeneratorOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized dataWords accepted")
		}
	}()
	NewGenerator(1, 0, 4, MaxDataWords+1, 0)
}

func TestPacketStringer(t *testing.T) {
	p := Packet{Src: 1, Dst: 2, ID: 3, Data: []uint32{4}}.Seal()
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := Packet{Src: 1, Dst: 2, ID: 3, Data: make([]uint32, 8)}
	for i := range p.Data {
		p.Data[i] = rng.Uint32()
	}
	p = p.Seal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(p.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}
