package hdlsim

import (
	"testing"

	"repro/internal/sim"
)

func TestFIFOProducerConsumer(t *testing.T) {
	s := NewSimulator("t")
	f := NewFIFO[int](s, "f", 2)
	var got []int
	s.Thread("producer", func(c *Ctx) {
		for i := 1; i <= 10; i++ {
			f.Write(c, i)
			c.WaitTime(sim.NS(1))
		}
	})
	s.Thread("consumer", func(c *Ctx) {
		for i := 0; i < 10; i++ {
			got = append(got, f.Read(c))
			c.WaitTime(sim.NS(3)) // slower than the producer: backpressure
		}
	})
	if err := s.Run(sim.NS(100)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("consumed %d items: %v", len(got), got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("out of order: %v", got)
		}
	}
	if f.Reads() != 10 || f.Writes() != 10 {
		t.Fatalf("transfer counts %d/%d", f.Reads(), f.Writes())
	}
}

func TestFIFOWriterBlocksAtCapacity(t *testing.T) {
	s := NewSimulator("t")
	f := NewFIFO[int](s, "f", 3)
	written := 0
	s.Thread("producer", func(c *Ctx) {
		for i := 0; i < 10; i++ {
			f.Write(c, i)
			written++
		}
	})
	if err := s.Run(sim.NS(10)); err != nil {
		t.Fatal(err)
	}
	if written != 3 {
		t.Fatalf("writer completed %d writes with capacity 3 and no reader", written)
	}
	if f.Len() != 3 {
		t.Fatalf("fifo holds %d", f.Len())
	}
}

func TestFIFOTryOps(t *testing.T) {
	s := NewSimulator("t")
	f := NewFIFO[string](s, "f", 1)
	if _, ok := f.TryRead(); ok {
		t.Fatal("TryRead on empty succeeded")
	}
	if !f.TryWrite("a") {
		t.Fatal("TryWrite on empty failed")
	}
	if f.TryWrite("b") {
		t.Fatal("TryWrite beyond capacity succeeded")
	}
	v, ok := f.TryRead()
	if !ok || v != "a" {
		t.Fatalf("TryRead = %q %v", v, ok)
	}
}

func TestFIFOMethodReactsToWrites(t *testing.T) {
	s := NewSimulator("t")
	f := NewFIFO[int](s, "f", 8)
	sum := 0
	s.Method("drain", func() {
		for {
			v, ok := f.TryRead()
			if !ok {
				break
			}
			sum += v
		}
	}, f.DataWritten()).DontInitialize()
	s.Thread("feed", func(c *Ctx) {
		for i := 1; i <= 4; i++ {
			f.TryWrite(i)
			c.WaitTime(sim.NS(1))
		}
	})
	if err := s.Run(sim.NS(10)); err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("drained sum %d, want 10", sum)
	}
}

func TestFIFOZeroCapacityPanics(t *testing.T) {
	s := NewSimulator("t")
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	NewFIFO[int](s, "bad", 0)
}
