package hdlsim

import (
	"testing"

	"repro/internal/sim"
)

func TestMethodInitializationRun(t *testing.T) {
	s := NewSimulator("t")
	runs := 0
	s.Method("init", func() { runs++ })
	noRuns := 0
	s.Method("noinit", func() { noRuns++ }).DontInitialize()
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("initialized method ran %d times, want 1", runs)
	}
	if noRuns != 0 {
		t.Fatalf("dont_initialize method ran %d times, want 0", noRuns)
	}
}

func TestSignalEvaluateUpdateSemantics(t *testing.T) {
	s := NewSimulator("t")
	sig := NewSignal[int](s, "sig")
	ev := s.NewEvent("go")

	var seenDuringWrite, seenAfterUpdate int
	s.Method("writer", func() {
		sig.Write(42)
		seenDuringWrite = sig.Read() // must still be the old value
	}, ev).DontInitialize()
	s.Method("reader", func() {
		seenAfterUpdate = sig.Read()
	}, sig.Changed()).DontInitialize()

	ev.NotifyDelay(sim.NS(1))
	if err := s.Run(sim.NS(2)); err != nil {
		t.Fatal(err)
	}
	if seenDuringWrite != 0 {
		t.Fatalf("read during evaluation saw %d, want pre-update 0", seenDuringWrite)
	}
	if seenAfterUpdate != 42 {
		t.Fatalf("reader after update saw %d, want 42", seenAfterUpdate)
	}
}

func TestSignalLastWriteWinsWithinDelta(t *testing.T) {
	s := NewSimulator("t")
	sig := NewSignal[int](s, "sig")
	s.Method("w", func() {
		sig.Write(1)
		sig.Write(2)
		sig.Write(3)
	})
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if got := sig.Read(); got != 3 {
		t.Fatalf("signal = %d, want last write 3", got)
	}
}

func TestSignalNoChangeNoNotify(t *testing.T) {
	s := NewSimulator("t")
	sig := NewSignalInit(s, "sig", 7)
	ev := s.NewEvent("go")
	wakeups := 0
	s.Method("w", func() { sig.Write(7) }, ev).DontInitialize() // same value
	s.Method("r", func() { wakeups++ }, sig.Changed()).DontInitialize()
	ev.NotifyDelay(sim.NS(1))
	if err := s.Run(sim.NS(2)); err != nil {
		t.Fatal(err)
	}
	if wakeups != 0 {
		t.Fatalf("value-changed fired %d times for a no-op write, want 0", wakeups)
	}
}

func TestDeltaCycleCascade(t *testing.T) {
	// a -> b -> c through signals: three deltas at the same instant.
	s := NewSimulator("t")
	a := NewSignal[int](s, "a")
	b := NewSignal[int](s, "b")
	c := NewSignal[int](s, "c")
	s.Method("pa", func() { b.Write(a.Read() + 1) }, a.Changed()).DontInitialize()
	s.Method("pb", func() { c.Write(b.Read() + 1) }, b.Changed()).DontInitialize()
	start := s.NewEvent("start")
	s.Method("kick", func() { a.Write(10) }, start).DontInitialize()
	start.NotifyDelay(sim.NS(1))
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if s.Now() != sim.NS(1) {
		t.Fatalf("now = %v, want 1ns", s.Now())
	}
	if a.Read() != 10 || b.Read() != 11 || c.Read() != 12 {
		t.Fatalf("cascade: a=%d b=%d c=%d, want 10,11,12", a.Read(), b.Read(), c.Read())
	}
}

func TestEventDeltaNotifyDedup(t *testing.T) {
	s := NewSimulator("t")
	ev := s.NewEvent("e")
	runs := 0
	s.Method("m", func() { runs++ }, ev).DontInitialize()
	s.Method("kick", func() {
		ev.Notify()
		ev.Notify() // duplicate in same delta must coalesce
	})
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("method ran %d times, want 1", runs)
	}
}

func TestEventTimedEarlierWins(t *testing.T) {
	s := NewSimulator("t")
	ev := s.NewEvent("e")
	var firedAt []sim.Time
	s.Method("m", func() { firedAt = append(firedAt, s.Now()) }, ev).DontInitialize()
	ev.NotifyDelay(sim.NS(10))
	ev.NotifyDelay(sim.NS(5)) // earlier overrides
	ev.NotifyDelay(sim.NS(8)) // later is ignored
	if err := s.Run(sim.NS(20)); err != nil {
		t.Fatal(err)
	}
	if len(firedAt) != 1 || firedAt[0] != sim.NS(5) {
		t.Fatalf("fired at %v, want exactly once at 5ns", firedAt)
	}
}

func TestEventCancel(t *testing.T) {
	s := NewSimulator("t")
	ev := s.NewEvent("e")
	runs := 0
	s.Method("m", func() { runs++ }, ev).DontInitialize()
	ev.NotifyDelay(sim.NS(5))
	ev.Cancel()
	if err := s.Run(sim.NS(20)); err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Fatalf("cancelled event still fired %d times", runs)
	}
}

func TestThreadWaitTimeAdvancesClock(t *testing.T) {
	s := NewSimulator("t")
	var stamps []sim.Time
	s.Thread("th", func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.WaitTime(sim.NS(10))
			stamps = append(stamps, c.Now())
		}
	})
	if err := s.Run(sim.NS(100)); err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{sim.NS(10), sim.NS(20), sim.NS(30)}
	if len(stamps) != len(want) {
		t.Fatalf("stamps %v, want %v", stamps, want)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps %v, want %v", stamps, want)
		}
	}
}

func TestThreadWaitEventAndProducerConsumer(t *testing.T) {
	s := NewSimulator("t")
	ev := s.NewEvent("data")
	var got []int
	shared := 0
	s.Thread("producer", func(c *Ctx) {
		for i := 1; i <= 5; i++ {
			c.WaitTime(sim.NS(7))
			shared = i
			ev.Notify()
		}
	})
	s.Thread("consumer", func(c *Ctx) {
		for {
			c.Wait(ev)
			got = append(got, shared)
		}
	})
	if err := s.Run(sim.NS(100)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("consumer got %v, want 5 items", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("consumer got %v", got)
		}
	}
}

func TestThreadWaitAnyReportsCause(t *testing.T) {
	s := NewSimulator("t")
	e1 := s.NewEvent("e1")
	e2 := s.NewEvent("e2")
	var cause string
	s.Thread("th", func(c *Ctx) {
		got := c.WaitAny(e1, e2)
		cause = got.Name()
	})
	e2.NotifyDelay(sim.NS(3))
	if err := s.Run(sim.NS(10)); err != nil {
		t.Fatal(err)
	}
	if cause != "e2" {
		t.Fatalf("wake cause %q, want e2", cause)
	}
}

func TestThreadWaitTimeout(t *testing.T) {
	s := NewSimulator("t")
	ev := s.NewEvent("never")
	var fired, timedOut bool
	s.Thread("th", func(c *Ctx) {
		fired = c.WaitTimeout(ev, sim.NS(5))
		timedOut = !fired
	})
	if err := s.Run(sim.NS(10)); err != nil {
		t.Fatal(err)
	}
	if fired || !timedOut {
		t.Fatalf("WaitTimeout: fired=%v timedOut=%v, want timeout", fired, timedOut)
	}

	// And the converse: event beats timeout.
	s2 := NewSimulator("t2")
	ev2 := s2.NewEvent("soon")
	var fired2 bool
	s2.Thread("th", func(c *Ctx) {
		fired2 = c.WaitTimeout(ev2, sim.NS(50))
	})
	ev2.NotifyDelay(sim.NS(2))
	if err := s2.Run(sim.NS(10)); err != nil {
		t.Fatal(err)
	}
	if !fired2 {
		t.Fatal("WaitTimeout reported timeout although event fired first")
	}
}

func TestClockEdgesAndCycles(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	pos, neg := 0, 0
	s.Method("p", func() { pos++ }, clk.Posedge()).DontInitialize()
	s.Method("n", func() { neg++ }, clk.Negedge()).DontInitialize()
	if err := s.Run(sim.NS(95)); err != nil {
		t.Fatal(err)
	}
	// Edges at 0,5,10,15,...: posedges at 0,10,...,90 → 10; negedges at 5..95 → 10.
	if pos != 10 {
		t.Fatalf("posedges = %d, want 10", pos)
	}
	if neg != 10 {
		t.Fatalf("negedges = %d, want 10", neg)
	}
	if clk.Cycles() != 10 {
		t.Fatalf("clock cycles = %d, want 10", clk.Cycles())
	}
}

func TestRunCyclesCounts(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	hookCalls := uint64(0)
	s.OnCycle(func(cycle uint64) { hookCalls++ })
	if err := s.RunCycles(clk, 25); err != nil {
		t.Fatal(err)
	}
	if clk.Cycles() != 25 {
		t.Fatalf("cycles = %d, want 25", clk.Cycles())
	}
	if hookCalls != 25 {
		t.Fatalf("cycle hooks ran %d times, want 25", hookCalls)
	}
}

func TestRunCyclesStarvationError(t *testing.T) {
	s := NewSimulator("t")
	clk := &Clock{sig: NewBitSignal(s, "fake")} // never started: no edges
	err := s.RunCycles(clk, 1)
	if err == nil {
		t.Fatal("RunCycles on a dead clock must report starvation")
	}
}

func TestStopEndsRun(t *testing.T) {
	s := NewSimulator("t")
	n := 0
	s.Thread("th", func(c *Ctx) {
		for {
			c.WaitTime(sim.NS(1))
			n++
			if n == 5 {
				c.Sim().Stop()
			}
		}
	})
	if err := s.Run(sim.NS(1000)); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("thread iterated %d times, want 5 (Stop ignored?)", n)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestDuplicateProcessNameRejected(t *testing.T) {
	s := NewSimulator("t")
	s.Method("dup", func() {})
	s.Method("dup", func() {})
	if err := s.Elaborate(); err == nil {
		t.Fatal("Elaborate accepted duplicate process names")
	}
}

func TestRegistrationAfterElaborationPanics(t *testing.T) {
	s := NewSimulator("t")
	if err := s.Elaborate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Method after elaboration did not panic")
		}
	}()
	s.Method("late", func() {})
}

func TestBitSignalEdgeEvents(t *testing.T) {
	s := NewSimulator("t")
	b := NewBitSignal(s, "b")
	var edges []string
	s.Method("pos", func() { edges = append(edges, "pos") }, b.Posedge()).DontInitialize()
	s.Method("neg", func() { edges = append(edges, "neg") }, b.Negedge()).DontInitialize()
	s.Thread("drv", func(c *Ctx) {
		b.Write(true)
		c.WaitTime(sim.NS(1))
		b.Write(false)
		c.WaitTime(sim.NS(1))
		b.Write(false) // no edge
		c.WaitTime(sim.NS(1))
		b.Write(true)
	})
	if err := s.Run(sim.NS(10)); err != nil {
		t.Fatal(err)
	}
	want := []string{"pos", "neg", "pos"}
	if len(edges) != len(want) {
		t.Fatalf("edges %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges %v, want %v", edges, want)
		}
	}
}

func TestPortBindingAndUse(t *testing.T) {
	s := NewSimulator("t")
	sig := NewSignal[uint32](s, "wire")
	in := NewIn[uint32]("in")
	out := NewOut[uint32]("out")
	if in.Bound() || out.Bound() {
		t.Fatal("fresh ports claim to be bound")
	}
	in.Bind(sig)
	out.Bind(sig)
	s.Method("drv", func() { out.Write(99) })
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if in.Read() != 99 {
		t.Fatalf("in.Read() = %d, want 99", in.Read())
	}
}

func TestPortDoubleBindPanics(t *testing.T) {
	s := NewSimulator("t")
	sig := NewSignal[int](s, "w")
	in := NewIn[int]("in")
	in.Bind(sig)
	defer func() {
		if recover() == nil {
			t.Fatal("double Bind did not panic")
		}
	}()
	in.Bind(sig)
}

func TestUnboundPortReadPanics(t *testing.T) {
	in := NewIn[int]("in")
	defer func() {
		if recover() == nil {
			t.Fatal("unbound Read did not panic")
		}
	}()
	in.Read()
}

func TestStatsAccumulate(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(2))
	sig := NewSignal[uint64](s, "ctr")
	s.Method("count", func() { sig.Write(sig.Read() + 1) }, clk.Posedge()).DontInitialize()
	if err := s.RunCycles(clk, 10); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ProcessRuns < 10 || st.Deltas < 10 || st.SignalUpdates < 10 || st.EventTriggers < 10 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

func TestThreadPanicSurfacesWithProcessName(t *testing.T) {
	s := NewSimulator("t")
	s.Thread("bad", func(c *Ctx) {
		c.WaitTime(sim.NS(1))
		panic("hw model bug")
	})
	defer func() {
		r := recover()
		pe, ok := r.(*sim.ErrCoroutinePanic)
		if !ok {
			t.Fatalf("recovered %T, want *sim.ErrCoroutinePanic", r)
		}
		if pe.Name != "bad" {
			t.Fatalf("panic attributed to %q, want bad", pe.Name)
		}
	}()
	_ = s.Run(sim.NS(10))
	t.Fatal("Run returned normally despite thread panic")
}

func TestModuleBase(t *testing.T) {
	m := &BaseModule{Name: "dut"}
	var iface Module = m
	if iface.ModuleName() != "dut" {
		t.Fatalf("ModuleName = %q", iface.ModuleName())
	}
}

func TestGenericSignalStructValue(t *testing.T) {
	type flit struct {
		Head bool
		Data uint32
	}
	s := NewSimulator("t")
	sig := NewSignal[flit](s, "flit")
	var got flit
	s.Method("r", func() { got = sig.Read() }, sig.Changed()).DontInitialize()
	s.Method("w", func() { sig.Write(flit{Head: true, Data: 0xabcd}) })
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if !got.Head || got.Data != 0xabcd {
		t.Fatalf("struct signal delivered %+v", got)
	}
}
