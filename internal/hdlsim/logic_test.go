package hdlsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestResolveTableBasics(t *testing.T) {
	cases := []struct{ a, b, want Logic }{
		{L0, L0, L0},
		{L1, L1, L1},
		{L0, L1, LX}, // bus fight
		{L1, L0, LX},
		{LZ, L0, L0}, // Z yields
		{LZ, L1, L1},
		{LZ, LZ, LZ},
		{LX, L0, LX}, // X dominates
		{LX, LZ, LX},
		{LX, LX, LX},
	}
	for _, c := range cases {
		if got := Resolve(c.a, c.b); got != c.want {
			t.Errorf("Resolve(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestResolveAlgebraicProperties(t *testing.T) {
	vals := func(b byte) Logic { return Logic(b % 4) }
	// Commutativity.
	if err := quick.Check(func(a, b byte) bool {
		return Resolve(vals(a), vals(b)) == Resolve(vals(b), vals(a))
	}, nil); err != nil {
		t.Error("commutativity:", err)
	}
	// Associativity.
	if err := quick.Check(func(a, b, c byte) bool {
		x, y, z := vals(a), vals(b), vals(c)
		return Resolve(Resolve(x, y), z) == Resolve(x, Resolve(y, z))
	}, nil); err != nil {
		t.Error("associativity:", err)
	}
	// Idempotence and Z-identity.
	for l := L0; l <= LZ; l++ {
		if Resolve(l, l) != l {
			t.Errorf("Resolve(%v,%v) not idempotent", l, l)
		}
		if Resolve(l, LZ) != l {
			t.Errorf("Z is not identity for %v", l)
		}
	}
}

func TestResolveAllAndConversions(t *testing.T) {
	if ResolveAll(nil) != LZ {
		t.Fatal("empty bus must float")
	}
	if ResolveAll([]Logic{LZ, L1, LZ}) != L1 {
		t.Fatal("single driver must win")
	}
	if ResolveAll([]Logic{L0, LZ, L1}) != LX {
		t.Fatal("fight must produce X")
	}
	if LogicFromBool(true) != L1 || LogicFromBool(false) != L0 {
		t.Fatal("bool conversion")
	}
	if v, ok := L1.Bool(); !ok || !v {
		t.Fatal("L1.Bool")
	}
	if _, ok := LZ.Bool(); ok {
		t.Fatal("Z converted to bool")
	}
	if Resolve(Logic(7), L0) != LX {
		t.Fatal("out-of-range logic must resolve to X")
	}
	for l := L0; l <= LZ; l++ {
		if l.String() == "" {
			t.Fatal("empty logic name")
		}
	}
	if Logic(9).String() == "" {
		t.Fatal("unknown logic name empty")
	}
}

func TestResolvedSignalTriStateBus(t *testing.T) {
	s := NewSimulator("t")
	bus := NewResolvedSignal(s, "sda")
	d1 := bus.NewDriver()
	d2 := bus.NewDriver()
	var history []Logic
	s.Method("mon", func() { history = append(history, bus.Read()) },
		bus.Changed()).DontInitialize()

	s.Thread("drv", func(c *Ctx) {
		d1.Drive(L0) // d1 pulls low
		c.WaitTime(sim.NS(1))
		d1.Release() // floats
		c.WaitTime(sim.NS(1))
		d2.Drive(L1) // d2 drives high
		c.WaitTime(sim.NS(1))
		d1.Drive(L0) // conflict with d2 → X
		c.WaitTime(sim.NS(1))
		d2.Release() // only d1 remains → 0
	})
	if err := s.Run(sim.NS(10)); err != nil {
		t.Fatal(err)
	}
	want := []Logic{L0, LZ, L1, LX, L0}
	if len(history) != len(want) {
		t.Fatalf("bus history %v, want %v", history, want)
	}
	for i := range want {
		if history[i] != want[i] {
			t.Fatalf("bus history %v, want %v", history, want)
		}
	}
}

func TestResolvedSignalLastWriteWinsPerDriver(t *testing.T) {
	s := NewSimulator("t")
	bus := NewResolvedSignal(s, "w")
	d := bus.NewDriver()
	s.Method("kick", func() {
		d.Drive(L1)
		d.Drive(L0) // same delta: last wins
	})
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if bus.Read() != L0 {
		t.Fatalf("bus = %v, want 0", bus.Read())
	}
}

func TestResolvedSignalTraceCallback(t *testing.T) {
	s := NewSimulator("t")
	bus := NewResolvedSignal(s, "w")
	d := bus.NewDriver()
	var traced []Logic
	bus.Trace(func(at sim.Time, v Logic) { traced = append(traced, v) })
	s.Method("kick", func() { d.Drive(L1) })
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 1 || traced[0] != L1 {
		t.Fatalf("traced %v", traced)
	}
}
