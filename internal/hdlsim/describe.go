package hdlsim

import (
	"fmt"
	"io"
)

// Describe writes a human-readable inventory of the elaborated design —
// processes with their kinds and run counts, signals with current values,
// driver ports with their windows — the moral equivalent of a simulator's
// `report` command, for debugging models and co-simulation setups.
func (s *Simulator) Describe(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "design %q @ %v (deltas=%d, process runs=%d)\n",
		s.name, s.now, s.stats.Deltas, s.stats.ProcessRuns); err != nil {
		return err
	}
	fmt.Fprintf(w, "processes (%d):\n", len(s.processes))
	for _, p := range s.processes {
		kind := "method"
		state := ""
		if p.kind == ThreadProcess {
			kind = "thread"
			if p.terminated {
				state = " [terminated]"
			} else if len(p.waitEvents) > 0 {
				state = fmt.Sprintf(" [waiting: %s]", p.waitEvents[0].Name())
			}
		}
		fmt.Fprintf(w, "  %-30s %-6s runs=%d%s\n", p.name, kind, p.triggerRuns, state)
	}
	fmt.Fprintf(w, "signals (%d):\n", len(s.signals))
	for _, sig := range s.signals {
		fmt.Fprintf(w, "  %-30s = %s\n", sig.SignalName(), sig.traceValue())
	}
	if len(s.driverIns)+len(s.driverOuts) > 0 {
		fmt.Fprintf(w, "driver ports (%d in, %d out):\n", len(s.driverIns), len(s.driverOuts))
		for _, d := range s.driverIns {
			fmt.Fprintf(w, "  in  %-26s [%#05x,+%d) pending=%d\n", d.name, d.Base, d.Size, len(d.q))
		}
		for _, d := range s.driverOuts {
			fmt.Fprintf(w, "  out %-26s [%#05x,+%d)\n", d.name, d.Base, d.Size)
		}
	}
	return nil
}
