package hdlsim

import (
	"testing"

	"repro/internal/sim"
)

// fakeEndpoint is a scriptable DriverEndpoint for kernel-level tests.
type fakeEndpoint struct {
	// incoming holds board→HW messages released one batch per PollData call.
	incoming [][]DataMsg
	sent     []DataMsg
	ints     []uint8
	syncs    []uint64 // granted ticks per sync
	boardCy  uint64
	finished bool
}

func (f *fakeEndpoint) PollData() []DataMsg {
	if len(f.incoming) == 0 {
		return nil
	}
	batch := f.incoming[0]
	f.incoming = f.incoming[1:]
	return batch
}

func (f *fakeEndpoint) SendData(m DataMsg) error { f.sent = append(f.sent, m); return nil }
func (f *fakeEndpoint) SendInterrupt(irq uint8) error {
	f.ints = append(f.ints, irq)
	return nil
}
func (f *fakeEndpoint) Sync(ticks, hwCycle uint64) (uint64, error) {
	f.syncs = append(f.syncs, ticks)
	f.boardCy += ticks
	return f.boardCy, nil
}
func (f *fakeEndpoint) Finish(hwCycle uint64) error { f.finished = true; return nil }

func TestDriverInRouting(t *testing.T) {
	s := NewSimulator("t")
	_ = s.NewClock("clk", sim.NS(10))
	din := s.NewDriverIn("cmd", 0x10, 4)

	var got []RegWrite
	s.DriverProcess("drv", func() {
		for {
			w, ok := din.Pop()
			if !ok {
				break
			}
			got = append(got, w)
		}
	}, din)

	ep := &fakeEndpoint{incoming: [][]DataMsg{
		{{Kind: DataWrite, Addr: 0x10, Words: []uint32{7, 8}}},
	}}
	clk := s.clocks[0]
	if _, err := s.DriverSimulate(clk, ep, DriverConfig{TSync: 2, TotalCycles: 4}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (RegWrite{Addr: 0x10, Val: 7}) || got[1] != (RegWrite{Addr: 0x11, Val: 8}) {
		t.Fatalf("driver process received %v", got)
	}
	if !ep.finished {
		t.Fatal("Finish not called")
	}
}

func TestDriverOutReadServing(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	dout := s.NewDriverOut("status", 0x20, 4)
	dout.Set(0x21, 0xdead)
	dout.Set(0x22, 0xbeef)

	ep := &fakeEndpoint{incoming: [][]DataMsg{
		{{Kind: DataReadReq, Addr: 0x21, Count: 2}},
	}}
	if _, err := s.DriverSimulate(clk, ep, DriverConfig{TSync: 4, TotalCycles: 4}); err != nil {
		t.Fatal(err)
	}
	if len(ep.sent) != 1 {
		t.Fatalf("sent %d messages, want 1 read response", len(ep.sent))
	}
	resp := ep.sent[0]
	if resp.Kind != DataReadResp || resp.Addr != 0x21 || len(resp.Words) != 2 ||
		resp.Words[0] != 0xdead || resp.Words[1] != 0xbeef {
		t.Fatalf("read response %+v", resp)
	}
}

func TestDriverUnmappedAccessErrors(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	ep := &fakeEndpoint{incoming: [][]DataMsg{
		{{Kind: DataWrite, Addr: 0x999, Words: []uint32{1}}},
	}}
	if _, err := s.DriverSimulate(clk, ep, DriverConfig{TSync: 1, TotalCycles: 2}); err == nil {
		t.Fatal("write to unmapped address did not error")
	}

	s2 := NewSimulator("t2")
	clk2 := s2.NewClock("clk", sim.NS(10))
	ep2 := &fakeEndpoint{incoming: [][]DataMsg{
		{{Kind: DataReadReq, Addr: 0x999, Count: 1}},
	}}
	if _, err := s2.DriverSimulate(clk2, ep2, DriverConfig{TSync: 1, TotalCycles: 2}); err == nil {
		t.Fatal("read from unmapped address did not error")
	}
}

func TestDriverInterruptEdgeDetection(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	irqSig := NewBitSignal(s, "irq")
	s.WatchInterrupt(irqSig, 3)

	// Raise for 3 cycles then drop then raise again: exactly 2 INT packets.
	s.Thread("drv", func(c *Ctx) {
		c.WaitCycles(clk, 2)
		irqSig.Write(true)
		c.WaitCycles(clk, 3)
		irqSig.Write(false)
		c.WaitCycles(clk, 2)
		irqSig.Write(true)
	})
	ep := &fakeEndpoint{}
	if _, err := s.DriverSimulate(clk, ep, DriverConfig{TSync: 100, TotalCycles: 12}); err != nil {
		t.Fatal(err)
	}
	if len(ep.ints) != 2 {
		t.Fatalf("sent %d interrupts, want 2 (level held high must not retrigger)", len(ep.ints))
	}
	for _, irq := range ep.ints {
		if irq != 3 {
			t.Fatalf("interrupt line %d, want 3", irq)
		}
	}
}

func TestDriverRaiseImperativeInterrupt(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	s.Thread("drv", func(c *Ctx) {
		c.WaitCycles(clk, 1)
		s.RaiseDriverInterrupt(5)
	})
	ep := &fakeEndpoint{}
	if _, err := s.DriverSimulate(clk, ep, DriverConfig{TSync: 10, TotalCycles: 3}); err != nil {
		t.Fatal(err)
	}
	if len(ep.ints) != 1 || ep.ints[0] != 5 {
		t.Fatalf("interrupts %v, want [5]", ep.ints)
	}
}

func TestDriverOutPostedWrites(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	dout := s.NewDriverOut("tx", 0x40, 8)
	s.Thread("drv", func(c *Ctx) {
		c.WaitCycles(clk, 1)
		dout.Post(0x40, []uint32{1, 2, 3})
	})
	ep := &fakeEndpoint{}
	if _, err := s.DriverSimulate(clk, ep, DriverConfig{TSync: 10, TotalCycles: 3}); err != nil {
		t.Fatal(err)
	}
	if len(ep.sent) != 1 || ep.sent[0].Kind != DataWrite || len(ep.sent[0].Words) != 3 {
		t.Fatalf("posted writes: %+v", ep.sent)
	}
}

func TestDriverSyncCadence(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	ep := &fakeEndpoint{}
	st, err := s.DriverSimulate(clk, ep, DriverConfig{TSync: 7, TotalCycles: 20})
	if err != nil {
		t.Fatal(err)
	}
	// 20 cycles at TSync=7 → syncs of 7,7,6.
	want := []uint64{7, 7, 6}
	if len(ep.syncs) != len(want) {
		t.Fatalf("syncs %v, want %v", ep.syncs, want)
	}
	var total uint64
	for i := range want {
		if ep.syncs[i] != want[i] {
			t.Fatalf("syncs %v, want %v", ep.syncs, want)
		}
		total += ep.syncs[i]
	}
	if total != 20 || st.Cycles != 20 || st.SyncEvents != 3 {
		t.Fatalf("stats %+v, granted total %d", st, total)
	}
	if st.LastBoardCy != 20 {
		t.Fatalf("board cycle %d, want 20", st.LastBoardCy)
	}
}

func TestDriverStopEarly(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	ep := &fakeEndpoint{}
	stop := false
	st, err := s.DriverSimulate(clk, ep, DriverConfig{
		TSync:       5,
		TotalCycles: 1000,
		StopEarly: func() bool {
			stop = !stop
			return stop // stops at the first sync boundary
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 5 {
		t.Fatalf("ran %d cycles, want 5 (stop at first boundary)", st.Cycles)
	}
}

func TestDriverOverlapRejected(t *testing.T) {
	s := NewSimulator("t")
	s.NewDriverIn("a", 0x0, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping driver_in ranges did not panic")
		}
	}()
	s.NewDriverIn("b", 0x4, 8)
}

func TestDriverZeroTSyncRejected(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	if _, err := s.DriverSimulate(clk, &fakeEndpoint{}, DriverConfig{TSync: 0, TotalCycles: 1}); err == nil {
		t.Fatal("TSync=0 accepted")
	}
}

func TestDriverOutBoundsChecks(t *testing.T) {
	s := NewSimulator("t")
	d := s.NewDriverOut("d", 0x10, 2)
	for _, fn := range []func(){
		func() { d.Set(0x12, 1) },
		func() { d.Get(0x0f) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range register access did not panic")
				}
			}()
			fn()
		}()
	}
}
