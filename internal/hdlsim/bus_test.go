package hdlsim

import (
	"testing"

	"repro/internal/sim"
)

func busFixture(t *testing.T, latency uint64) (*Simulator, *Clock, *Bus, *RAM) {
	t.Helper()
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	bus := NewBus(s, clk, "axi", latency)
	ram := NewRAM(0x100, 64)
	if err := bus.Map(0x100, 64, ram); err != nil {
		t.Fatal(err)
	}
	return s, clk, bus, ram
}

func TestBusReadWriteRoundTrip(t *testing.T) {
	s, _, bus, _ := busFixture(t, 2)
	var got uint32
	s.Thread("cpu", func(c *Ctx) {
		if err := bus.Write(c, 0x110, 0xfeed); err != nil {
			t.Errorf("write: %v", err)
		}
		v, err := bus.Read(c, 0x110)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got = v
	})
	if err := s.Run(sim.US(1)); err != nil {
		t.Fatal(err)
	}
	if got != 0xfeed {
		t.Fatalf("read back %#x", got)
	}
	r, w, _ := bus.Stats()
	if r != 1 || w != 1 {
		t.Fatalf("stats %d/%d", r, w)
	}
}

func TestBusLatencyCharged(t *testing.T) {
	s, clk, bus, _ := busFixture(t, 5)
	var doneCycle uint64
	s.Thread("cpu", func(c *Ctx) {
		c.WaitCycles(clk, 1) // align to a known cycle
		start := clk.Cycles()
		for i := 0; i < 4; i++ {
			if err := bus.Write(c, 0x100+uint32(i), 1); err != nil {
				t.Error(err)
			}
		}
		doneCycle = clk.Cycles() - start
	})
	if err := s.Run(sim.US(1)); err != nil {
		t.Fatal(err)
	}
	if doneCycle != 20 {
		t.Fatalf("4 writes at latency 5 took %d cycles, want 20", doneCycle)
	}
}

func TestBusArbitrationSerializes(t *testing.T) {
	s, clk, bus, _ := busFixture(t, 4)
	var finish []uint64
	for i := 0; i < 3; i++ {
		name := string(rune('a' + i))
		s.Thread(name, func(c *Ctx) {
			if err := bus.Write(c, 0x100, 1); err != nil {
				t.Error(err)
			}
			finish = append(finish, clk.Cycles())
		})
	}
	if err := s.Run(sim.US(1)); err != nil {
		t.Fatal(err)
	}
	if len(finish) != 3 {
		t.Fatalf("finishes %v", finish)
	}
	// Three 4-cycle transactions through one arbiter must complete ≈ 4
	// cycles apart, not concurrently.
	for i := 1; i < 3; i++ {
		if finish[i] < finish[i-1]+4 {
			t.Fatalf("transactions overlapped: %v", finish)
		}
	}
	if _, _, conflicts := bus.Stats(); conflicts == 0 {
		t.Fatal("no arbitration conflicts recorded")
	}
}

func TestBusUnmappedAndOverlap(t *testing.T) {
	s, _, bus, _ := busFixture(t, 1)
	var rdErr, wrErr error
	s.Thread("cpu", func(c *Ctx) {
		_, rdErr = bus.Read(c, 0x999)
		wrErr = bus.Write(c, 0x0, 1)
	})
	if err := s.Run(sim.US(1)); err != nil {
		t.Fatal(err)
	}
	if rdErr == nil || wrErr == nil {
		t.Fatal("unmapped access succeeded")
	}
	if err := bus.Map(0x120, 8, NewRAM(0x120, 8)); err == nil {
		t.Fatal("overlapping mapping accepted")
	}
	if err := bus.Map(0x200, 0, NewRAM(0x200, 0)); err == nil {
		t.Fatal("empty mapping accepted")
	}
}

func TestBusReadBlockAndRAMBounds(t *testing.T) {
	s, _, bus, ram := busFixture(t, 1)
	s.Thread("cpu", func(c *Ctx) {
		for i := uint32(0); i < 8; i++ {
			if err := bus.Write(c, 0x100+i, i*i); err != nil {
				t.Error(err)
			}
		}
		buf := make([]uint32, 8)
		if err := bus.ReadBlock(c, 0x100, buf); err != nil {
			t.Error(err)
		}
		for i, v := range buf {
			if v != uint32(i*i) {
				t.Errorf("buf[%d] = %d", i, v)
			}
		}
	})
	if err := s.Run(sim.US(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ram.BusRead(0x100 + 64); err == nil {
		t.Fatal("RAM read out of bounds succeeded")
	}
	if err := ram.BusWrite(0x0ff, 1); err == nil {
		t.Fatal("RAM write below base succeeded")
	}
	if ram.Size() != 64 {
		t.Fatalf("ram size %d", ram.Size())
	}
}

func TestBusZeroLatencyPanics(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	defer func() {
		if recover() == nil {
			t.Fatal("latency 0 accepted")
		}
	}()
	NewBus(s, clk, "bad", 0)
}
