package hdlsim

import "fmt"

// FIFO is a bounded blocking channel between thread processes, equivalent
// to sc_fifo<T>: writes block while full, reads block while empty, with
// delta-cycle notification semantics (a reader unblocked by a write runs
// in a later delta of the same instant, not recursively).
type FIFO[T any] struct {
	sim      *Simulator
	name     string
	capacity int
	buf      []T
	readEv   *Event // notified when data becomes available
	writeEv  *Event // notified when space becomes available
	reads    uint64
	writes   uint64
}

// NewFIFO creates a FIFO with the given capacity (≥ 1).
func NewFIFO[T any](s *Simulator, name string, capacity int) *FIFO[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("hdlsim: fifo %q capacity must be ≥ 1", name))
	}
	return &FIFO[T]{
		sim:      s,
		name:     name,
		capacity: capacity,
		readEv:   s.NewEvent(name + ".data_written"),
		writeEv:  s.NewEvent(name + ".data_read"),
	}
}

// Name returns the channel name.
func (f *FIFO[T]) Name() string { return f.name }

// Len returns the number of buffered items.
func (f *FIFO[T]) Len() int { return len(f.buf) }

// Cap returns the capacity.
func (f *FIFO[T]) Cap() int { return f.capacity }

// Reads returns the number of completed read transfers.
func (f *FIFO[T]) Reads() uint64 { return f.reads }

// Writes returns the number of completed write transfers.
func (f *FIFO[T]) Writes() uint64 { return f.writes }

// Write blocks the calling thread until space is available, then stores v.
func (f *FIFO[T]) Write(c *Ctx, v T) {
	for len(f.buf) >= f.capacity {
		c.Wait(f.writeEv)
	}
	f.buf = append(f.buf, v)
	f.writes++
	f.readEv.Notify()
}

// TryWrite stores v without blocking; reports success. Usable from method
// processes.
func (f *FIFO[T]) TryWrite(v T) bool {
	if len(f.buf) >= f.capacity {
		return false
	}
	f.buf = append(f.buf, v)
	f.writes++
	f.readEv.Notify()
	return true
}

// Read blocks the calling thread until data is available, then removes
// and returns the oldest item.
func (f *FIFO[T]) Read(c *Ctx) T {
	for len(f.buf) == 0 {
		c.Wait(f.readEv)
	}
	v := f.buf[0]
	f.buf = f.buf[1:]
	f.reads++
	f.writeEv.Notify()
	return v
}

// TryRead removes the oldest item without blocking.
func (f *FIFO[T]) TryRead() (T, bool) {
	var zero T
	if len(f.buf) == 0 {
		return zero, false
	}
	v := f.buf[0]
	f.buf = f.buf[1:]
	f.reads++
	f.writeEv.Notify()
	return v, true
}

// DataWritten returns the event notified on each write (for method
// processes reacting to arrivals).
func (f *FIFO[T]) DataWritten() *Event { return f.readEv }
