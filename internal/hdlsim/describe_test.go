package hdlsim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDescribeListsDesign(t *testing.T) {
	s := NewSimulator("dut")
	clk := s.NewClock("clk", sim.NS(10))
	sig := NewSignal[int](s, "counter")
	s.Method("count", func() { sig.Write(sig.Read() + 1) }, clk.Posedge()).DontInitialize()
	ev := s.NewEvent("never")
	s.Thread("waiter", func(c *Ctx) { c.Wait(ev) })
	s.NewDriverIn("cmd", 0x10, 4)
	s.NewDriverOut("status", 0x20, 2)
	if err := s.RunCycles(clk, 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Describe(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`design "dut"`,
		"count", "method",
		"waiter", "thread", "[waiting: never]",
		"counter", "= 3",
		"in  cmd", "out status",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
}
