package hdlsim

import (
	"fmt"
	"sort"
)

// This file implements the SystemC kernel modifications of Fummi et al.
// (DATE 2005), section 5.2:
//
//   - two new port classes, driver_in and driver_out, devoted exclusively
//     to communication between a module and the OS running on the board
//     (here: DriverIn receives board→HW register writes, DriverOut exposes
//     the HW registers the board reads and lets the model post writes);
//   - a special process kind, driver_process, triggered when new data is
//     present on a driver_in port (here: a Method sensitive to
//     DriverIn.Data());
//   - a replacement main loop driver_simulate that opens the communication
//     channels and interleaves socket servicing with simulation cycles.

// DataKind discriminates messages on the DATA channel.
type DataKind uint8

const (
	// DataWrite carries register writes (either direction).
	DataWrite DataKind = iota + 1
	// DataReadReq asks the other side for Count words starting at Addr.
	DataReadReq
	// DataReadResp answers a DataReadReq.
	DataReadResp
)

// String implements fmt.Stringer.
func (k DataKind) String() string {
	switch k {
	case DataWrite:
		return "write"
	case DataReadReq:
		return "read-req"
	case DataReadResp:
		return "read-resp"
	default:
		return fmt.Sprintf("DataKind(%d)", uint8(k))
	}
}

// DataMsg is one DATA-channel message as seen by the kernel. Addresses are
// word addresses in the remote device's register space.
type DataMsg struct {
	Kind  DataKind
	Addr  uint32
	Count uint32   // for DataReadReq
	Words []uint32 // for DataWrite / DataReadResp
}

// DriverEndpoint is the kernel's view of the co-simulation link. The cosim
// package provides implementations over TCP and over in-process channels;
// the kernel never sees sockets directly.
type DriverEndpoint interface {
	// PollData returns board→HW DATA messages that are available for this
	// quantum, without blocking.
	PollData() []DataMsg
	// SendData delivers a HW→board DATA message (read responses, posted
	// writes).
	SendData(DataMsg) error
	// SendInterrupt notifies the board of interrupt line irq (INT port).
	SendInterrupt(irq uint8) error
	// Sync performs the CLOCK-port rendezvous: grant the board `ticks`
	// virtual ticks of execution and (eventually) obtain its local time.
	// hwCycle is the kernel's cycle count at the synchronization point.
	Sync(ticks uint64, hwCycle uint64) (boardCycle uint64, err error)
	// Finish tells the board the co-simulation is over.
	Finish(hwCycle uint64) error
}

// RegWrite is one word written by the board into a DriverIn port.
type RegWrite struct {
	Addr uint32
	Val  uint32
}

// DriverIn is the paper's driver_in port: a queue of board-initiated
// register writes targeted at [Base, Base+Size) in the device's word
// address space, with an event that fires when data arrives, so a
// driver_process can react.
type DriverIn struct {
	sim  *Simulator
	name string
	Base uint32
	Size uint32

	q    []RegWrite
	data *Event
}

// NewDriverIn registers a driver_in port covering size words at base.
// Ranges of distinct DriverIns must not overlap.
func (s *Simulator) NewDriverIn(name string, base, size uint32) *DriverIn {
	d := &DriverIn{sim: s, name: name, Base: base, Size: size, data: s.NewEvent(name + ".data")}
	for _, o := range s.driverIns {
		if rangesOverlap(o.Base, o.Size, base, size) {
			panic(fmt.Sprintf("hdlsim: driver_in %q overlaps %q", name, o.name))
		}
	}
	s.driverIns = append(s.driverIns, d)
	sort.Slice(s.driverIns, func(i, j int) bool { return s.driverIns[i].Base < s.driverIns[j].Base })
	return d
}

func rangesOverlap(b1, s1, b2, s2 uint32) bool {
	return b1 < b2+s2 && b2 < b1+s1
}

// Name returns the port name.
func (d *DriverIn) Name() string { return d.name }

// Data returns the event notified when a new board write is queued; a
// DriverProcess is sensitive to it.
func (d *DriverIn) Data() *Event { return d.data }

// Pending returns the number of queued writes.
func (d *DriverIn) Pending() int { return len(d.q) }

// Pop removes and returns the oldest queued write.
func (d *DriverIn) Pop() (RegWrite, bool) {
	if len(d.q) == 0 {
		return RegWrite{}, false
	}
	w := d.q[0]
	d.q = d.q[1:]
	return w, true
}

// push is called by the kernel's driver loop when a board write lands in
// this port's range.
func (d *DriverIn) push(w RegWrite) {
	d.q = append(d.q, w)
	d.data.Notify()
}

// DriverOut is the paper's driver_out port: a register window the board
// can read over the DATA channel, plus a posted-write path for the model
// to push data to the board unsolicited.
type DriverOut struct {
	sim  *Simulator
	name string
	Base uint32
	Size uint32

	regs   []uint32
	posted []DataMsg
}

// NewDriverOut registers a driver_out port exposing size readable words at
// base. Ranges of distinct DriverOuts must not overlap.
func (s *Simulator) NewDriverOut(name string, base, size uint32) *DriverOut {
	d := &DriverOut{sim: s, name: name, Base: base, Size: size, regs: make([]uint32, size)}
	for _, o := range s.driverOuts {
		if rangesOverlap(o.Base, o.Size, base, size) {
			panic(fmt.Sprintf("hdlsim: driver_out %q overlaps %q", name, o.name))
		}
	}
	s.driverOuts = append(s.driverOuts, d)
	return d
}

// Name returns the port name.
func (d *DriverOut) Name() string { return d.name }

// Set updates readable register addr (absolute word address) to val.
func (d *DriverOut) Set(addr, val uint32) {
	if addr < d.Base || addr >= d.Base+d.Size {
		panic(fmt.Sprintf("hdlsim: driver_out %q: Set(%#x) outside [%#x,%#x)", d.name, addr, d.Base, d.Base+d.Size))
	}
	d.regs[addr-d.Base] = val
}

// Get returns the current value of readable register addr.
func (d *DriverOut) Get(addr uint32) uint32 {
	if addr < d.Base || addr >= d.Base+d.Size {
		panic(fmt.Sprintf("hdlsim: driver_out %q: Get(%#x) outside range", d.name, addr))
	}
	return d.regs[addr-d.Base]
}

// Post queues an unsolicited HW→board write (flushed by the driver loop at
// the end of the current cycle).
func (d *DriverOut) Post(addr uint32, words []uint32) {
	cp := make([]uint32, len(words))
	copy(cp, words)
	d.posted = append(d.posted, DataMsg{Kind: DataWrite, Addr: addr, Words: cp})
}

// DriverProcess registers the paper's driver_process: a method process
// sensitive to data arrival on the given driver_in ports.
func (s *Simulator) DriverProcess(name string, fn func(), ins ...*DriverIn) *Process {
	events := make([]*Event, len(ins))
	for i, d := range ins {
		events[i] = d.Data()
	}
	p := s.Method(name, fn, events...)
	p.DontInitialize()
	return p
}

// intWatch is a level-to-edge detector on an interrupt request signal: the
// driver loop checks it after every cycle and sends one INT-port packet per
// rising level, mirroring "the interrupt signal is checked; if it is
// active, a packet is sent to the board via the INT_PORT".
type intWatch struct {
	sig  *BitSignal
	irq  uint8
	prev bool
}

// WatchInterrupt registers sig as the interrupt request line for irq.
func (s *Simulator) WatchInterrupt(sig *BitSignal, irq uint8) {
	s.intWatches = append(s.intWatches, &intWatch{sig: sig, irq: irq})
}

// RaiseDriverInterrupt queues a one-shot interrupt to the board, for models
// that signal completion imperatively instead of via an IRQ wire.
func (s *Simulator) RaiseDriverInterrupt(irq uint8) {
	s.intRaised = append(s.intRaised, irq)
}

// UnboundedLookahead is the lookahead value of a device (or board) with no
// scheduled traffic at all. It mirrors cosim.UnboundedLookahead.
const UnboundedLookahead = ^uint64(0)

// SetInterruptLookahead installs the device model's lookahead oracle for
// adaptive synchronization: fn returns a lower bound, in clock cycles from
// now, before the model can next raise an interrupt or post data to the
// board (0 when one may be imminent, UnboundedLookahead when nothing is
// scheduled). The hook is purely advisory — elongation correctness rests
// on the endpoint's a-posteriori TrafficPending check — so a model that
// breaks its promise costs one extra rendezvous, never wrong results.
// A nil hook (the default) reports UnboundedLookahead.
func (s *Simulator) SetInterruptLookahead(fn func() uint64) {
	s.intLookahead = fn
}

// interruptLookahead evaluates the installed oracle.
func (s *Simulator) interruptLookahead() uint64 {
	if s.intLookahead == nil {
		return UnboundedLookahead
	}
	return s.intLookahead()
}

// AdaptiveEndpoint is the optional extension of DriverEndpoint that a
// transport endpoint implements to support adaptive quantum elongation
// (cosim.HWEndpoint does). DriverSimulate type-asserts for it when
// DriverConfig.Adaptive is set and falls back to plain TSync stepping when
// the endpoint does not provide it.
type AdaptiveEndpoint interface {
	DriverEndpoint
	// TrafficPending reports whether any DATA or INT message was sent
	// since the last grant. A boundary with pending traffic must
	// rendezvous: the traffic is announced by the very next grant.
	TrafficPending() bool
	// PeerLookahead returns the board's promise, in grant ticks, from the
	// most recent acknowledgement: how many ticks can elapse before
	// anything board-side can become runnable without simulator input.
	PeerLookahead() uint64
	// SetLocalLookahead records the device's interrupt-lookahead promise
	// (clock cycles) to be carried on the next grant.
	SetLocalLookahead(cycles uint64)
}

// routeData dispatches one board→HW DATA message: writes land in the
// covering DriverIn; read requests are served from the covering DriverOut.
func (s *Simulator) routeData(ep DriverEndpoint, m DataMsg) error {
	switch m.Kind {
	case DataWrite:
		for i, w := range m.Words {
			addr := m.Addr + uint32(i)
			din := s.findDriverIn(addr)
			if din == nil {
				return fmt.Errorf("hdlsim: board write to unmapped address %#x", addr)
			}
			din.push(RegWrite{Addr: addr, Val: w})
		}
	case DataReadReq:
		words := make([]uint32, m.Count)
		for i := uint32(0); i < m.Count; i++ {
			addr := m.Addr + i
			dout := s.findDriverOut(addr)
			if dout == nil {
				return fmt.Errorf("hdlsim: board read from unmapped address %#x", addr)
			}
			words[i] = dout.Get(addr)
		}
		return ep.SendData(DataMsg{Kind: DataReadResp, Addr: m.Addr, Words: words})
	default:
		return fmt.Errorf("hdlsim: unexpected DATA message kind %v from board", m.Kind)
	}
	return nil
}

func (s *Simulator) findDriverIn(addr uint32) *DriverIn {
	for _, d := range s.driverIns {
		if addr >= d.Base && addr < d.Base+d.Size {
			return d
		}
	}
	return nil
}

func (s *Simulator) findDriverOut(addr uint32) *DriverOut {
	for _, d := range s.driverOuts {
		if addr >= d.Base && addr < d.Base+d.Size {
			return d
		}
	}
	return nil
}

// Driver is the per-cycle core of the modified simulation loop, exported
// so external coordinators (the federation time manager) can drive a
// kernel quantum-by-quantum with exactly the cycle semantics of
// DriverSimulate: per cycle it (1) checks the DATA port and performs the
// required read/write actions, (2) accomplishes a standard simulation
// cycle, and (3) checks the interrupt signals. Synchronization policy —
// when to rendezvous, when to elide a boundary — is the caller's job;
// DriverSimulate is the canonical single-link policy loop on top.
type Driver struct {
	s   *Simulator
	clk *Clock
	ep  DriverEndpoint
	st  DriverStats
}

// NewDriver elaborates the design and returns a stepper over it. The
// endpoint only needs PollData/SendData/SendInterrupt; Sync and Finish
// are never invoked by Cycle.
func (s *Simulator) NewDriver(clk *Clock, ep DriverEndpoint) (*Driver, error) {
	if err := s.Elaborate(); err != nil {
		return nil, err
	}
	return &Driver{s: s, clk: clk, ep: ep}, nil
}

// Cycle performs one driver-loop iteration: route inbound DATA, run one
// clock cycle, scan interrupt lines, and flush posted driver_out writes.
func (d *Driver) Cycle() error {
	// (1) Check for the presence of data on DATA_PORT.
	for _, m := range d.ep.PollData() {
		d.st.DataIn++
		if err := d.s.routeData(d.ep, m); err != nil {
			return err
		}
		if m.Kind == DataReadReq {
			d.st.DataOut++
		}
	}
	// (2) A standard simulation cycle is accomplished.
	if err := d.s.RunCycles(d.clk, 1); err != nil {
		return err
	}
	d.st.Cycles++
	// (3) The interrupt signal is checked.
	for _, w := range d.s.intWatches {
		level := w.sig.Read()
		if level && !w.prev {
			if err := d.ep.SendInterrupt(w.irq); err != nil {
				return err
			}
			d.st.Interrupts++
		}
		w.prev = level
	}
	for _, irq := range d.s.intRaised {
		if err := d.ep.SendInterrupt(irq); err != nil {
			return err
		}
		d.st.Interrupts++
	}
	d.s.intRaised = d.s.intRaised[:0]
	// Flush posted driver_out writes.
	for _, out := range d.s.driverOuts {
		for _, m := range out.posted {
			if err := d.ep.SendData(m); err != nil {
				return err
			}
			d.st.DataOut++
		}
		out.posted = out.posted[:0]
	}
	return nil
}

// Stopped reports whether the simulator ended the run (sc_stop).
func (d *Driver) Stopped() bool { return d.s.stopped }

// Cycles returns the number of cycles stepped so far.
func (d *Driver) Cycles() uint64 { return d.st.Cycles }

// Stats returns the driver-loop counters accumulated so far. SyncEvents,
// SyncsElided and LastBoardCy belong to the synchronization policy, so
// when a Driver is stepped externally they stay zero until the
// coordinator records them with RecordSync/RecordElision.
func (d *Driver) Stats() DriverStats { return d.st }

// InterruptLookahead evaluates the model's lookahead oracle (see
// SetInterruptLookahead).
func (d *Driver) InterruptLookahead() uint64 { return d.s.interruptLookahead() }

// RecordSync accounts one CLOCK rendezvous performed by an external
// coordinator on this kernel's behalf.
func (d *Driver) RecordSync(boardCycle uint64) {
	d.st.SyncEvents++
	d.st.LastBoardCy = boardCycle
}

// RecordElision accounts one TSync boundary an external coordinator
// elided.
func (d *Driver) RecordElision() { d.st.SyncsElided++ }

// EffectiveMaxQuantum resolves a DriverConfig.MaxQuantum value against
// its TSync: 0 defaults to 64×TSync (saturating), and the result is
// clamped up to at least TSync. The federation time manager applies the
// same resolution so elongation caps agree bit-for-bit with
// DriverSimulate.
func EffectiveMaxQuantum(tsync, maxQuantum uint64) uint64 {
	maxQ := maxQuantum
	if maxQ == 0 {
		maxQ = tsync * defaultMaxQuantumFactor
		if maxQ/defaultMaxQuantumFactor != tsync { // overflow
			maxQ = UnboundedLookahead
		}
	}
	if maxQ < tsync {
		maxQ = tsync
	}
	return maxQ
}

// ElideBoundary is the conservative-elision predicate shared by
// DriverSimulate and the federation time manager: a TSync boundary may
// be skipped exactly when (a) no traffic was sent since the last grant —
// the a-posteriori check that guarantees bit-identical results even when
// a lookahead promise was wrong, (b) the accumulated grant acc stays
// within the cap with room for one more quantum, (c) acc is strictly
// inside the peer's promised lookahead (strict, because an event exactly
// at the boundary must see its own rendezvous), (d) the local model does
// not expect to interrupt within the next quantum, and (e) the run is
// not stopping at this boundary.
func ElideBoundary(acc, tsync, maxQ, peerLookahead, localLookahead uint64, trafficPending, stopping bool) bool {
	return !trafficPending &&
		acc <= maxQ-tsync &&
		acc < peerLookahead &&
		localLookahead >= tsync &&
		!stopping
}

// DriverConfig parameterizes DriverSimulate.
type DriverConfig struct {
	// TSync is the synchronization interval in clock cycles: one CLOCK-port
	// rendezvous is performed every TSync cycles. TSync == 1 is lockstep.
	// TSync ≥ TotalCycles degenerates to a single grant (the paper's
	// "simulation without synchronization" normalizer).
	TSync uint64
	// TotalCycles bounds the co-simulation length.
	TotalCycles uint64
	// StopEarly, if non-nil, is polled at every sync boundary; returning
	// true ends the co-simulation before TotalCycles. It must be a pure
	// predicate of simulation state: with Adaptive set it is also polled
	// at elided boundaries so the run ends at the same cycle it would
	// have without elongation.
	StopEarly func() bool
	// Adaptive enables lookahead-negotiated quantum elongation: a TSync
	// boundary is skipped (no CLOCK rendezvous) when no traffic was sent
	// since the last grant, the accumulated grant stays strictly inside
	// the board's promised lookahead, and the device model does not
	// expect to interrupt within the next TSync cycles. Requires an
	// endpoint implementing AdaptiveEndpoint; silently ignored otherwise.
	// Elongated runs produce bit-identical simulated-time results.
	Adaptive bool
	// MaxQuantum caps the accumulated elongated quantum in clock cycles.
	// 0 means 64×TSync. It is clamped up to at least TSync.
	MaxQuantum uint64
}

// defaultMaxQuantumFactor scales TSync into the default MaxQuantum cap.
const defaultMaxQuantumFactor = 64

// DriverStats reports what DriverSimulate did.
type DriverStats struct {
	Cycles      uint64 // clock cycles simulated
	SyncEvents  uint64 // CLOCK-port rendezvous performed
	DataIn      uint64 // board→HW DATA messages routed
	DataOut     uint64 // HW→board DATA messages sent (posted + read resps)
	Interrupts  uint64 // INT-port packets sent
	SyncsElided uint64 // TSync boundaries skipped by adaptive elongation
	LastBoardCy uint64 // board local cycle at the final sync
}

// DriverSimulate is the paper's modified simulation entry point: it
// replaces the plain simulate() loop with one that, per clock cycle,
// (1) checks the DATA port and performs the required read/write actions,
// (2) accomplishes a standard simulation cycle, and (3) checks the
// interrupt signals, sending an INT-port packet when one is active; every
// cfg.TSync cycles it performs the CLOCK-port synchronization rendezvous
// that grants the board its next slice of virtual ticks.
func (s *Simulator) DriverSimulate(clk *Clock, ep DriverEndpoint, cfg DriverConfig) (DriverStats, error) {
	if cfg.TSync == 0 {
		return DriverStats{}, fmt.Errorf("hdlsim: DriverSimulate requires TSync ≥ 1")
	}
	d, err := s.NewDriver(clk, ep)
	if err != nil {
		return DriverStats{}, err
	}
	aep, adaptive := ep.(AdaptiveEndpoint)
	adaptive = adaptive && cfg.Adaptive
	maxQ := EffectiveMaxQuantum(cfg.TSync, cfg.MaxQuantum)
	// pending accumulates the ticks of boundaries elided by adaptive
	// elongation; they are granted in one piece at the next rendezvous.
	pending := uint64(0)
	sinceSync := uint64(0)
	for d.st.Cycles < cfg.TotalCycles && !s.stopped {
		if err := d.Cycle(); err != nil {
			return d.st, err
		}
		sinceSync++
		// CLOCK-port synchronization every TSync cycles. With adaptive
		// elongation a boundary may be elided (see ElideBoundary): the
		// ticks accumulate in `pending` and are granted in one piece
		// later.
		if sinceSync >= cfg.TSync {
			acc := pending + sinceSync
			elide := adaptive && ElideBoundary(acc, cfg.TSync, maxQ,
				aep.PeerLookahead(), s.interruptLookahead(),
				aep.TrafficPending(), cfg.StopEarly != nil && cfg.StopEarly())
			if elide {
				pending = acc
				sinceSync = 0
				d.st.SyncsElided++
			} else {
				if adaptive {
					aep.SetLocalLookahead(s.interruptLookahead())
				}
				bc, err := ep.Sync(acc, d.st.Cycles)
				if err != nil {
					return d.st, err
				}
				d.RecordSync(bc)
				pending, sinceSync = 0, 0
				if cfg.StopEarly != nil && cfg.StopEarly() {
					break
				}
			}
		}
	}
	if pending+sinceSync > 0 {
		if adaptive {
			aep.SetLocalLookahead(s.interruptLookahead())
		}
		bc, err := ep.Sync(pending+sinceSync, d.st.Cycles)
		if err != nil {
			return d.st, err
		}
		d.RecordSync(bc)
	}
	return d.st, ep.Finish(d.st.Cycles)
}
