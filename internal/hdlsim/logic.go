package hdlsim

import (
	"fmt"

	"repro/internal/sim"
)

// Logic is a four-state logic value in the IEEE 1164 tradition: strong 0,
// strong 1, unknown X and high-impedance Z. It is the element type for
// modelling shared buses with multiple drivers (tri-state outputs), which
// single-driver Signal/BitSignal cannot express.
type Logic uint8

const (
	// L0 is a driven strong zero.
	L0 Logic = iota
	// L1 is a driven strong one.
	L1
	// LX is the unknown/conflict value.
	LX
	// LZ is high impedance (not driving).
	LZ
)

// String implements fmt.Stringer with the conventional characters.
func (l Logic) String() string {
	switch l {
	case L0:
		return "0"
	case L1:
		return "1"
	case LX:
		return "X"
	case LZ:
		return "Z"
	default:
		return fmt.Sprintf("Logic(%d)", uint8(l))
	}
}

// LogicFromBool converts a bool to a driven logic level.
func LogicFromBool(b bool) Logic {
	if b {
		return L1
	}
	return L0
}

// Bool converts a logic level to a bool; ok is false for X and Z.
func (l Logic) Bool() (v, ok bool) {
	switch l {
	case L0:
		return false, true
	case L1:
		return true, true
	default:
		return false, false
	}
}

// resolveTable implements the standard wired resolution: Z yields to any
// driver; agreeing drivers keep their value; disagreeing strong drivers
// or any X produce X.
var resolveTable = [4][4]Logic{
	//         0   1   X   Z
	L0: {L0, LX, LX, L0},
	L1: {LX, L1, LX, L1},
	LX: {LX, LX, LX, LX},
	LZ: {L0, L1, LX, LZ},
}

// Resolve combines two simultaneous drive values.
func Resolve(a, b Logic) Logic {
	if a > LZ || b > LZ {
		return LX
	}
	return resolveTable[a][b]
}

// ResolveAll folds a set of drive values; an empty set floats (Z).
func ResolveAll(vals []Logic) Logic {
	out := LZ
	for _, v := range vals {
		out = Resolve(out, v)
	}
	return out
}

// ResolvedSignal is a multi-driver wire: each driver contributes a value
// (LZ when silent) and the committed value is the resolution of all
// contributions, with the usual evaluate/update semantics. It models a
// shared tri-state bus line.
type ResolvedSignal struct {
	sim     *Simulator
	name    string
	drivers []Logic
	pending []bool
	next    []Logic
	cur     Logic
	hasReq  bool
	changed *Event
	tracers []func(at sim.Time, v Logic)
}

// NewResolvedSignal creates a bus line with no drivers attached; the
// initial value is Z.
func NewResolvedSignal(s *Simulator, name string) *ResolvedSignal {
	r := &ResolvedSignal{sim: s, name: name, cur: LZ}
	r.changed = s.NewEvent(name + ".value_changed")
	s.signals = append(s.signals, r)
	return r
}

// SignalName returns the wire name.
func (r *ResolvedSignal) SignalName() string { return r.name }

// NewDriver attaches a driver and returns its handle. Drivers start at Z.
func (r *ResolvedSignal) NewDriver() *LogicDriver {
	id := len(r.drivers)
	r.drivers = append(r.drivers, LZ)
	r.next = append(r.next, LZ)
	r.pending = append(r.pending, false)
	return &LogicDriver{sig: r, id: id}
}

// Read returns the committed resolved value.
func (r *ResolvedSignal) Read() Logic { return r.cur }

// Changed returns the value-changed event.
func (r *ResolvedSignal) Changed() *Event { return r.changed }

// Trace registers a value-change callback.
func (r *ResolvedSignal) Trace(fn func(at sim.Time, v Logic)) {
	r.tracers = append(r.tracers, fn)
}

func (r *ResolvedSignal) update(now sim.Time) {
	if !r.hasReq {
		return
	}
	r.hasReq = false
	for i := range r.drivers {
		if r.pending[i] {
			r.pending[i] = false
			r.drivers[i] = r.next[i]
		}
	}
	v := ResolveAll(r.drivers)
	if v == r.cur {
		return
	}
	r.cur = v
	r.changed.Notify()
	for _, fn := range r.tracers {
		fn(now, v)
	}
}

func (r *ResolvedSignal) traceValue() string { return r.cur.String() }

// LogicDriver is one driver's handle on a resolved wire.
type LogicDriver struct {
	sig *ResolvedSignal
	id  int
}

// Drive requests this driver's contribution for the update phase.
func (d *LogicDriver) Drive(v Logic) {
	if v > LZ {
		v = LX
	}
	r := d.sig
	r.next[d.id] = v
	r.pending[d.id] = true
	if !r.hasReq {
		r.hasReq = true
		r.sim.requestUpdate(r)
	}
}

// Release stops driving (equivalent to Drive(LZ)).
func (d *LogicDriver) Release() { d.Drive(LZ) }
