package hdlsim

import "fmt"

// In is a typed input port: a read-only view of a signal, bound during
// module construction (sc_in).
type In[T comparable] struct {
	name string
	sig  *Signal[T]
}

// NewIn creates an unbound input port.
func NewIn[T comparable](name string) *In[T] { return &In[T]{name: name} }

// Bind connects the port to a signal. Binding twice panics: in a hardware
// netlist every port has exactly one channel.
func (p *In[T]) Bind(sig *Signal[T]) {
	if p.sig != nil {
		panic(fmt.Sprintf("hdlsim: input port %q already bound", p.name))
	}
	p.sig = sig
}

// Bound reports whether the port has been bound.
func (p *In[T]) Bound() bool { return p.sig != nil }

// Read returns the bound signal's committed value.
func (p *In[T]) Read() T {
	p.mustBind()
	return p.sig.Read()
}

// Changed returns the bound signal's value-changed event.
func (p *In[T]) Changed() *Event {
	p.mustBind()
	return p.sig.Changed()
}

func (p *In[T]) mustBind() {
	if p.sig == nil {
		panic(fmt.Sprintf("hdlsim: input port %q used before binding", p.name))
	}
}

// Out is a typed output port: a write-only view of a signal (sc_out).
type Out[T comparable] struct {
	name string
	sig  *Signal[T]
}

// NewOut creates an unbound output port.
func NewOut[T comparable](name string) *Out[T] { return &Out[T]{name: name} }

// Bind connects the port to a signal.
func (p *Out[T]) Bind(sig *Signal[T]) {
	if p.sig != nil {
		panic(fmt.Sprintf("hdlsim: output port %q already bound", p.name))
	}
	p.sig = sig
}

// Bound reports whether the port has been bound.
func (p *Out[T]) Bound() bool { return p.sig != nil }

// Write drives the bound signal.
func (p *Out[T]) Write(v T) {
	if p.sig == nil {
		panic(fmt.Sprintf("hdlsim: output port %q used before binding", p.name))
	}
	p.sig.Write(v)
}

// Module is implemented by structural model components. It exists to give
// testbench builders a uniform way to enumerate design hierarchy; the
// kernel itself schedules processes, not modules.
type Module interface {
	// ModuleName returns the instance name.
	ModuleName() string
}

// BaseModule provides the trivial Module implementation for embedding.
type BaseModule struct {
	Name string
}

// ModuleName implements Module.
func (m *BaseModule) ModuleName() string { return m.Name }
