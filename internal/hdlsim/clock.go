package hdlsim

import (
	"fmt"

	"repro/internal/sim"
)

// Clock is a free-running symmetric clock built on a BitSignal, equivalent
// to sc_clock. The first rising edge occurs at time 0 (immediately after
// elaboration); edges alternate every half period.
type Clock struct {
	sig    *BitSignal
	period sim.Time
	cycles uint64 // completed rising edges
}

// NewClock creates a clock with the given full period. Period must be an
// even number of picoseconds ≥ 2 so both half-periods are representable.
func (s *Simulator) NewClock(name string, period sim.Time) *Clock {
	if period < 2 || period%2 != 0 {
		panic(fmt.Sprintf("hdlsim: clock %q period %v must be even and ≥ 2ps", name, period))
	}
	c := &Clock{sig: NewBitSignal(s, name), period: period}
	s.clocks = append(s.clocks, c)
	return c
}

// start schedules the first edge; called during elaboration.
func (c *Clock) start() {
	s := c.sig.sim
	half := c.period / 2
	var rise, fall func()
	rise = func() {
		c.sig.Write(true)
		c.cycles++
		s.timed.Schedule(s.now+half, fall)
	}
	fall = func() {
		c.sig.Write(false)
		s.timed.Schedule(s.now+half, rise)
	}
	s.timed.Schedule(s.now, rise)
}

// Name returns the clock signal name.
func (c *Clock) Name() string { return c.sig.name }

// Period returns the full clock period.
func (c *Clock) Period() sim.Time { return c.period }

// Cycles returns the number of rising edges produced so far.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Signal returns the underlying bit signal (for port binding / tracing).
func (c *Clock) Signal() *BitSignal { return c.sig }

// Posedge returns the rising-edge event.
func (c *Clock) Posedge() *Event { return c.sig.Posedge() }

// Negedge returns the falling-edge event.
func (c *Clock) Negedge() *Event { return c.sig.Negedge() }

// Read returns the current clock level.
func (c *Clock) Read() bool { return c.sig.Read() }
