package hdlsim

import (
	"fmt"

	"repro/internal/sim"
)

// Ctx is handed to thread process bodies; its Wait* methods suspend the
// thread until a wake-up condition holds. All methods must be called from
// within the owning thread's body.
type Ctx struct {
	p *Process
}

// Sim returns the owning simulator (e.g. to read Now()).
func (c *Ctx) Sim() *Simulator { return c.p.sim }

// Now returns the current simulated time.
func (c *Ctx) Now() sim.Time { return c.p.sim.now }

// Process returns the underlying process (for name/diagnostics).
func (c *Ctx) Process() *Process { return c.p }

func (c *Ctx) suspend() {
	c.p.coro.Yield()
}

// Wait suspends until the event fires.
func (c *Ctx) Wait(e *Event) {
	c.WaitAny(e)
}

// WaitAny suspends until any of the events fires and returns the one that
// did.
func (c *Ctx) WaitAny(events ...*Event) *Event {
	if len(events) == 0 {
		panic(fmt.Sprintf("hdlsim: %s: WaitAny with no events would sleep forever", c.p.name))
	}
	p := c.p
	p.waitEvents = append(p.waitEvents[:0], events...)
	for _, e := range events {
		e.addDynWaiter(p, 1)
	}
	c.suspend()
	return p.wakeCause(events)
}

// wakeCause determines which event woke the process. The kernel clears
// waitEvents on wake; the cause is the event whose dyn list no longer
// contains p and that actually triggered — we track it via timedOut flag
// plus the convention that wakeFromWait removed p from all *other* events.
func (p *Process) wakeCause(events []*Event) *Event {
	if p.timedOut {
		return nil
	}
	// wakeFromWait(cause) removed p from every waited event except cause
	// (cause removed p itself before calling). We cannot distinguish among
	// the originally waited events post-hoc without extra state, so record
	// it at wake time instead.
	return p.lastWakeEvent
}

// WaitTime suspends for d of simulated time.
func (c *Ctx) WaitTime(d sim.Time) {
	p := c.p
	p.waitTimeout = p.sim.timed.Schedule(p.sim.now+d, func() {
		p.waitTimeout = sim.Handle{}
		p.lastWakeEvent = nil
		p.wakeFromWait(nil)
	})
	c.suspend()
}

// WaitTimeout suspends until e fires or d elapses; it returns true if the
// event fired and false on timeout.
func (c *Ctx) WaitTimeout(e *Event, d sim.Time) bool {
	p := c.p
	p.waitEvents = append(p.waitEvents[:0], e)
	e.addDynWaiter(p, 1)
	p.waitTimeout = p.sim.timed.Schedule(p.sim.now+d, func() {
		p.waitTimeout = sim.Handle{}
		p.lastWakeEvent = nil
		p.wakeFromWait(nil)
	})
	c.suspend()
	return !p.timedOut
}

// WaitCycles suspends for n rising edges of the clock. The wait counts
// edges inside the kernel, so it costs one suspend/resume regardless of n.
func (c *Ctx) WaitCycles(clk *Clock, n uint64) {
	if n == 0 {
		return
	}
	p := c.p
	e := clk.Posedge()
	p.waitEvents = append(p.waitEvents[:0], e)
	e.addDynWaiter(p, n)
	c.suspend()
}
