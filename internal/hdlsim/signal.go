package hdlsim

import (
	"fmt"

	"repro/internal/sim"
)

// Signal is a typed hardware signal with SystemC sc_signal semantics:
// writes during the evaluation phase are deferred to the update phase of
// the same delta cycle; reads always observe the last committed value; a
// committed change fires the signal's value-changed event so sensitive
// processes run in the next delta. Within one delta, the last write wins.
type Signal[T comparable] struct {
	sim     *Simulator
	name    string
	cur     T
	next    T
	hasNext bool
	changed *Event
	writes  uint64
	tracers []func(at sim.Time, v T)
}

// NewSignal creates a named signal with the zero value of T.
func NewSignal[T comparable](s *Simulator, name string) *Signal[T] {
	sig := &Signal[T]{sim: s, name: name}
	sig.changed = s.NewEvent(name + ".value_changed")
	s.signals = append(s.signals, sig)
	return sig
}

// NewSignalInit creates a signal with an explicit initial value.
func NewSignalInit[T comparable](s *Simulator, name string, init T) *Signal[T] {
	sig := NewSignal[T](s, name)
	sig.cur = init
	return sig
}

// SignalName returns the signal's hierarchical name.
func (sig *Signal[T]) SignalName() string { return sig.name }

// Read returns the current committed value. During evaluation it never
// observes same-delta writes.
func (sig *Signal[T]) Read() T { return sig.cur }

// Write requests that the signal take value v at the update phase of the
// current delta. Multiple writes in one delta: the last wins.
func (sig *Signal[T]) Write(v T) {
	sig.writes++
	sig.next = v
	if !sig.hasNext {
		sig.hasNext = true
		sig.sim.requestUpdate(sig)
	}
}

// Changed returns the value-changed event (fires in the delta after a
// commit that altered the value).
func (sig *Signal[T]) Changed() *Event { return sig.changed }

// Writes returns the number of Write calls, for kernel statistics.
func (sig *Signal[T]) Writes() uint64 { return sig.writes }

// Trace registers a callback invoked at every committed value change
// (used by the VCD writer).
func (sig *Signal[T]) Trace(fn func(at sim.Time, v T)) {
	sig.tracers = append(sig.tracers, fn)
}

func (sig *Signal[T]) update(now sim.Time) {
	if !sig.hasNext {
		return
	}
	sig.hasNext = false
	if sig.next == sig.cur {
		return
	}
	sig.cur = sig.next
	sig.changed.Notify()
	for _, fn := range sig.tracers {
		fn(now, sig.cur)
	}
}

func (sig *Signal[T]) traceValue() string { return fmt.Sprint(sig.cur) }

// BitSignal is a boolean signal with edge events, the moral equivalent of
// sc_signal<bool> plus posedge_event()/negedge_event().
type BitSignal struct {
	sim     *Simulator
	name    string
	cur     bool
	next    bool
	hasNext bool
	changed *Event
	pos     *Event
	neg     *Event
	tracers []func(at sim.Time, v bool)
	writes  uint64
}

// NewBitSignal creates a boolean signal initialized to false.
func NewBitSignal(s *Simulator, name string) *BitSignal {
	b := &BitSignal{
		sim:     s,
		name:    name,
		changed: s.NewEvent(name + ".value_changed"),
		pos:     s.NewEvent(name + ".posedge"),
		neg:     s.NewEvent(name + ".negedge"),
	}
	s.signals = append(s.signals, b)
	return b
}

// SignalName returns the signal's hierarchical name.
func (b *BitSignal) SignalName() string { return b.name }

// Read returns the committed value.
func (b *BitSignal) Read() bool { return b.cur }

// Write requests the value for the update phase (last write wins).
func (b *BitSignal) Write(v bool) {
	b.writes++
	b.next = v
	if !b.hasNext {
		b.hasNext = true
		b.sim.requestUpdate(b)
	}
}

// Changed returns the value-changed event.
func (b *BitSignal) Changed() *Event { return b.changed }

// Posedge returns the rising-edge event.
func (b *BitSignal) Posedge() *Event { return b.pos }

// Negedge returns the falling-edge event.
func (b *BitSignal) Negedge() *Event { return b.neg }

// Trace registers a value-change callback (VCD).
func (b *BitSignal) Trace(fn func(at sim.Time, v bool)) {
	b.tracers = append(b.tracers, fn)
}

func (b *BitSignal) update(now sim.Time) {
	if !b.hasNext {
		return
	}
	b.hasNext = false
	if b.next == b.cur {
		return
	}
	b.cur = b.next
	b.changed.Notify()
	if b.cur {
		b.pos.Notify()
	} else {
		b.neg.Notify()
	}
	for _, fn := range b.tracers {
		fn(now, b.cur)
	}
}

func (b *BitSignal) traceValue() string {
	if b.cur {
		return "1"
	}
	return "0"
}
