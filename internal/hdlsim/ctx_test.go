package hdlsim

import (
	"testing"

	"repro/internal/sim"
)

func TestWaitCyclesCountsEdgesWithoutResuming(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	var wakes []uint64
	p := s.Thread("waiter", func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.WaitCycles(clk, 5)
			wakes = append(wakes, clk.Cycles())
		}
	})
	if err := s.RunCycles(clk, 20); err != nil {
		t.Fatal(err)
	}
	want := []uint64{5, 10, 15}
	if len(wakes) != len(want) {
		t.Fatalf("wakes %v, want %v", wakes, want)
	}
	for i := range want {
		if wakes[i] != want[i] {
			t.Fatalf("wakes %v, want %v", wakes, want)
		}
	}
	// The thread resumed exactly 4 times: initialization + 3 wakes — the
	// counting wait must not resume it on intermediate edges.
	if p.Runs() != 4 {
		t.Fatalf("process resumed %d times, want 4 (counting wait broken)", p.Runs())
	}
}

func TestWaitCyclesZeroIsNoop(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	ran := false
	s.Thread("z", func(c *Ctx) {
		c.WaitCycles(clk, 0)
		ran = true
	})
	if err := s.RunCycles(clk, 1); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("WaitCycles(0) blocked")
	}
}

func TestTwoCountingWaitersIndependentCounts(t *testing.T) {
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	var a, b uint64
	s.Thread("a", func(c *Ctx) {
		c.WaitCycles(clk, 3)
		a = clk.Cycles()
	})
	s.Thread("b", func(c *Ctx) {
		c.WaitCycles(clk, 7)
		b = clk.Cycles()
	})
	if err := s.RunCycles(clk, 10); err != nil {
		t.Fatal(err)
	}
	if a != 3 || b != 7 {
		t.Fatalf("a woke at %d (want 3), b at %d (want 7)", a, b)
	}
}

func TestWaitAnyMixedWithCountingWaiter(t *testing.T) {
	// A one-shot waiter and a counting waiter on the same event must not
	// disturb each other.
	s := NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	var oneShot, counted uint64
	s.Thread("one", func(c *Ctx) {
		c.Wait(clk.Posedge())
		oneShot = clk.Cycles()
	})
	s.Thread("cnt", func(c *Ctx) {
		c.WaitCycles(clk, 4)
		counted = clk.Cycles()
	})
	if err := s.RunCycles(clk, 6); err != nil {
		t.Fatal(err)
	}
	if oneShot != 1 {
		t.Fatalf("one-shot woke at cycle %d, want 1", oneShot)
	}
	if counted != 4 {
		t.Fatalf("counting waiter woke at cycle %d, want 4", counted)
	}
}

func TestNotifyImmediateRunsSameDelta(t *testing.T) {
	s := NewSimulator("t")
	ev := s.NewEvent("e")
	var order []string
	s.Method("reactor", func() { order = append(order, "reactor") }, ev).DontInitialize()
	s.Method("kicker", func() {
		order = append(order, "kick")
		ev.NotifyImmediate()
	})
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(order) != 2 || order[0] != "kick" || order[1] != "reactor" {
		t.Fatalf("order %v", order)
	}
	// Immediate notification: both ran within one delta.
	if st.Deltas != 1 {
		t.Fatalf("deltas = %d, want 1 for immediate notify", st.Deltas)
	}
}

func TestEventCancelWhileDeltaPending(t *testing.T) {
	s := NewSimulator("t")
	ev := s.NewEvent("e")
	runs := 0
	s.Method("m", func() { runs++ }, ev).DontInitialize()
	s.Method("kick", func() {
		ev.Notify()
		ev.Cancel()
	})
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Fatalf("cancelled delta notification still fired %d times", runs)
	}
}
