package hdlsim

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestAllocsKernelQuantum pins the steady-state allocation cost of the
// clocked kernel: once the event-queue freelist and the wake/notify
// scratch slices are warm, running a quantum's worth of cycles must not
// allocate per cycle — a clock edge costs one recycled timed event, not a
// fresh heap object. This was the dominant term of the pre-arena
// allocs_per_quantum (~2 allocs per clock cycle).
func TestAllocsKernelQuantum(t *testing.T) {
	s := NewSimulator("allocs")
	clk := s.NewClock("clk", sim.NS(10))
	ctr := 0
	for i := 0; i < 4; i++ {
		s.Method(fmt.Sprintf("m%d", i), func() { ctr++ }, clk.Posedge()).DontInitialize()
	}
	if err := s.Elaborate(); err != nil {
		t.Fatal(err)
	}
	// Warm the freelists (and pay one-time elaboration survivors).
	if err := s.RunCycles(clk, 200); err != nil {
		t.Fatal(err)
	}
	const cycles = 100 // one TSync-sized quantum per run
	quantum := func() {
		if err := s.RunCycles(clk, cycles); err != nil {
			t.Fatal(err)
		}
	}
	// Steady state is 0; the budget leaves room for runtime noise while
	// still failing on any per-cycle allocation (which would cost ≥100).
	const budget = 5.0
	if avg := testing.AllocsPerRun(100, quantum); avg > budget {
		t.Errorf("kernel quantum (%d cycles): %.2f allocs/run, budget %.1f", cycles, avg, budget)
	}
	_ = ctr
}
