package hdlsim

import "repro/internal/sim"

// Event is a synchronization primitive equivalent to sc_event. Method
// processes can be statically sensitive to it; thread processes wait on it
// dynamically. An event holds at most one pending notification: immediate
// beats delta, delta beats timed, and of two timed notifications the
// earlier wins (SystemC rule 5.10.8, simplified).
type Event struct {
	sim  *Simulator
	name string

	static []*Process  // statically sensitive methods
	dyn    []dynWaiter // threads currently waiting dynamically

	deltaPending bool
	timedHandle  sim.Handle
	timedAt      sim.Time
	timedFn      sim.EventFunc // reusable timed-fire callback; built on first NotifyDelay
}

// NewEvent creates a named event owned by the simulator.
func (s *Simulator) NewEvent(name string) *Event {
	return &Event{sim: s, name: name}
}

// Name returns the event's diagnostic name.
func (e *Event) Name() string { return e.name }

// Notify schedules a delta notification: all waiters become runnable in the
// next delta cycle of the current instant.
func (e *Event) Notify() {
	e.cancelTimed()
	e.sim.queueDeltaNotify(e)
}

// NotifyImmediate triggers the event within the current evaluation phase:
// waiters run in the *same* delta. Use sparingly; like SystemC's
// notify() with no arguments it can hide nondeterminism in careless models.
func (e *Event) NotifyImmediate() {
	e.cancelTimed()
	e.trigger()
}

// NotifyDelay schedules the event to fire after d of simulated time. If a
// timed notification is already pending, the earlier of the two wins. A
// pending delta notification always wins over a timed one.
func (e *Event) NotifyDelay(d sim.Time) {
	if e.deltaPending {
		return
	}
	at := e.sim.now + d
	if e.timedHandle.Valid() {
		if e.timedAt <= at {
			return
		}
		e.sim.timed.Cancel(e.timedHandle)
	}
	e.timedAt = at
	if e.timedFn == nil {
		e.timedFn = func() {
			e.timedHandle = sim.Handle{}
			e.trigger()
		}
	}
	e.timedHandle = e.sim.timed.Schedule(at, e.timedFn)
}

// Cancel removes any pending (delta or timed) notification.
func (e *Event) Cancel() {
	e.deltaPending = false // queueDeltaNotify entries check this flag lazily
	e.cancelTimed()
}

func (e *Event) cancelTimed() {
	if e.timedHandle.Valid() {
		e.sim.timed.Cancel(e.timedHandle)
		e.timedHandle = sim.Handle{}
	}
}

// dynWaiter is one dynamically waiting thread; remaining counts how many
// further triggers it wants to sleep through (counting waits let a thread
// skip n clock edges without n coroutine round trips).
type dynWaiter struct {
	p         *Process
	remaining uint64
}

// trigger fires the event now: statically sensitive methods and dynamically
// waiting threads become runnable (counting waiters just decrement).
func (e *Event) trigger() {
	e.sim.stats.EventTriggers++
	for _, p := range e.static {
		e.sim.makeRunnable(p)
	}
	if len(e.dyn) > 0 {
		kept := e.dyn[:0]
		// Borrow the simulator's scratch for the woken list; taking it (and
		// nil-ing the field) means a nested trigger falls back to a fresh
		// slice instead of clobbering ours.
		woken := e.sim.wokenSpare[:0]
		e.sim.wokenSpare = nil
		for _, w := range e.dyn {
			if w.remaining > 1 {
				w.remaining--
				kept = append(kept, w)
				continue
			}
			woken = append(woken, w.p)
		}
		e.dyn = kept
		for _, p := range woken {
			p.wakeFromWait(e)
		}
		for i := range woken {
			woken[i] = nil
		}
		e.sim.wokenSpare = woken[:0]
	}
}

// addDynWaiter registers a thread blocked on this event until the count-th
// future trigger.
func (e *Event) addDynWaiter(p *Process, count uint64) {
	e.dyn = append(e.dyn, dynWaiter{p: p, remaining: count})
}

func (e *Event) removeDynWaiter(p *Process) {
	for i := range e.dyn {
		if e.dyn[i].p == p {
			e.dyn = append(e.dyn[:i], e.dyn[i+1:]...)
			return
		}
	}
}

// wakeFromWait clears the process's dynamic wait state and makes it
// runnable. cause is the event that fired (nil for a timeout).
func (p *Process) wakeFromWait(cause *Event) {
	for _, e := range p.waitEvents {
		if e != cause {
			e.removeDynWaiter(p)
		}
	}
	p.waitEvents = nil
	if p.waitTimeout.Valid() {
		p.sim.timed.Cancel(p.waitTimeout)
		p.waitTimeout = sim.Handle{}
	}
	p.timedOut = cause == nil
	p.lastWakeEvent = cause
	p.sim.makeRunnable(p)
}
