package hdlsim

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// BenchmarkKernelClockOnly measures the bare cost of one clock cycle
// through the evaluate/update machinery (two edges, no user processes).
func BenchmarkKernelClockOnly(b *testing.B) {
	s := NewSimulator("b")
	clk := s.NewClock("clk", sim.NS(10))
	if err := s.Elaborate(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := s.RunCycles(clk, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Stats().Deltas)/float64(b.N), "deltas/cycle")
}

// BenchmarkKernelMethodFanout measures cycles with k methods sensitive to
// the clock, the dominant pattern in the router testbench.
func BenchmarkKernelMethodFanout(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("methods=%d", k), func(b *testing.B) {
			s := NewSimulator("b")
			clk := s.NewClock("clk", sim.NS(10))
			ctr := 0
			for i := 0; i < k; i++ {
				s.Method(fmt.Sprintf("m%d", i), func() { ctr++ }, clk.Posedge()).DontInitialize()
			}
			if err := s.Elaborate(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := s.RunCycles(clk, uint64(b.N)); err != nil {
				b.Fatal(err)
			}
			_ = ctr
		})
	}
}

// BenchmarkKernelSignalChain measures a delta-cascade: a write rippling
// through an 8-stage combinational chain each cycle.
func BenchmarkKernelSignalChain(b *testing.B) {
	s := NewSimulator("b")
	clk := s.NewClock("clk", sim.NS(10))
	const depth = 8
	sigs := make([]*Signal[uint64], depth)
	for i := range sigs {
		sigs[i] = NewSignal[uint64](s, fmt.Sprintf("s%d", i))
	}
	s.Method("src", func() { sigs[0].Write(sigs[0].Read() + 1) }, clk.Posedge()).DontInitialize()
	for i := 0; i < depth-1; i++ {
		i := i
		s.Method(fmt.Sprintf("st%d", i), func() { sigs[i+1].Write(sigs[i].Read()) },
			sigs[i].Changed()).DontInitialize()
	}
	if err := s.Elaborate(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := s.RunCycles(clk, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelThreadWaitCycles measures the counting-wait fast path: a
// thread waking every 100 cycles must cost almost nothing per cycle.
func BenchmarkKernelThreadWaitCycles(b *testing.B) {
	s := NewSimulator("b")
	clk := s.NewClock("clk", sim.NS(10))
	wakes := 0
	s.Thread("sleeper", func(c *Ctx) {
		for {
			c.WaitCycles(clk, 100)
			wakes++
		}
	})
	if err := s.Elaborate(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := s.RunCycles(clk, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	_ = wakes
}

// BenchmarkEventNotify measures raw event dispatch. The whole chain runs
// at one instant by construction, so the combinational-loop guard must be
// lifted out of the way.
func BenchmarkEventNotify(b *testing.B) {
	s := NewSimulator("b")
	s.MaxDeltasPerInstant = uint64(b.N) + 10
	ev := s.NewEvent("e")
	n := 0
	s.Method("m", func() {
		n++
		if n < b.N {
			ev.Notify()
		}
	}, ev)
	b.ResetTimer()
	if err := s.Run(sim.NS(1)); err != nil {
		b.Fatal(err)
	}
}
