package hdlsim

import "fmt"

// BusTarget is a memory-mapped slave on a Bus. Addresses passed to the
// callbacks are absolute word addresses (targets that prefer relative
// offsets subtract their base).
type BusTarget interface {
	// BusRead returns the word at addr.
	BusRead(addr uint32) (uint32, error)
	// BusWrite stores val at addr.
	BusWrite(addr, val uint32) error
}

type busMapping struct {
	base, size uint32
	target     BusTarget
}

// Bus is a transaction-level shared bus: word-granular reads and writes
// routed by address map, one transaction at a time (contending initiators
// block on the arbiter), each costing a fixed number of clock cycles.
// It is the glue between thread-process initiators (CPU models, DMA
// models) and register-file/memory targets inside an HDL model.
type Bus struct {
	sim     *Simulator
	clk     *Clock
	name    string
	latency uint64
	maps    []busMapping

	busy bool
	free *Event

	reads, writes, conflicts uint64
}

// NewBus creates a bus clocked by clk, charging `latency` cycles per
// transaction (≥ 1).
func NewBus(s *Simulator, clk *Clock, name string, latency uint64) *Bus {
	if latency < 1 {
		panic(fmt.Sprintf("hdlsim: bus %q latency must be ≥ 1 cycle", name))
	}
	return &Bus{
		sim:     s,
		clk:     clk,
		name:    name,
		latency: latency,
		free:    s.NewEvent(name + ".free"),
	}
}

// Map attaches a target at [base, base+size) word addresses.
func (b *Bus) Map(base, size uint32, t BusTarget) error {
	if size == 0 {
		return fmt.Errorf("hdlsim: bus %q: empty mapping", b.name)
	}
	for _, m := range b.maps {
		if base < m.base+m.size && m.base < base+size {
			return fmt.Errorf("hdlsim: bus %q: mapping [%#x,+%d) overlaps [%#x,+%d)",
				b.name, base, size, m.base, m.size)
		}
	}
	b.maps = append(b.maps, busMapping{base: base, size: size, target: t})
	return nil
}

func (b *Bus) targetFor(addr uint32) (BusTarget, error) {
	for _, m := range b.maps {
		if addr >= m.base && addr < m.base+m.size {
			return m.target, nil
		}
	}
	return nil, fmt.Errorf("hdlsim: bus %q: no target at %#x", b.name, addr)
}

// acquire arbitrates: the calling thread blocks while another transaction
// is in flight, then holds the bus.
func (b *Bus) acquire(c *Ctx) {
	for b.busy {
		b.conflicts++
		c.Wait(b.free)
	}
	b.busy = true
}

func (b *Bus) release() {
	b.busy = false
	b.free.Notify()
}

// Read performs one word read, blocking the calling thread for the bus
// latency (plus any arbitration wait).
func (b *Bus) Read(c *Ctx, addr uint32) (uint32, error) {
	t, err := b.targetFor(addr)
	if err != nil {
		return 0, err
	}
	b.acquire(c)
	defer b.release()
	c.WaitCycles(b.clk, b.latency)
	b.reads++
	return t.BusRead(addr)
}

// Write performs one word write with the same timing as Read.
func (b *Bus) Write(c *Ctx, addr, val uint32) error {
	t, err := b.targetFor(addr)
	if err != nil {
		return err
	}
	b.acquire(c)
	defer b.release()
	c.WaitCycles(b.clk, b.latency)
	b.writes++
	return t.BusWrite(addr, val)
}

// ReadBlock reads count consecutive words (count transactions).
func (b *Bus) ReadBlock(c *Ctx, addr uint32, buf []uint32) error {
	for i := range buf {
		v, err := b.Read(c, addr+uint32(i))
		if err != nil {
			return err
		}
		buf[i] = v
	}
	return nil
}

// Stats returns (reads, writes, arbitration conflicts).
func (b *Bus) Stats() (reads, writes, conflicts uint64) {
	return b.reads, b.writes, b.conflicts
}

// RAM is a word-addressable memory BusTarget.
type RAM struct {
	base  uint32
	words []uint32
}

// NewRAM creates a RAM of `size` words intended to be mapped at base.
func NewRAM(base, size uint32) *RAM {
	return &RAM{base: base, words: make([]uint32, size)}
}

// Size returns the capacity in words.
func (r *RAM) Size() uint32 { return uint32(len(r.words)) }

// BusRead implements BusTarget.
func (r *RAM) BusRead(addr uint32) (uint32, error) {
	off := addr - r.base
	if off >= uint32(len(r.words)) {
		return 0, fmt.Errorf("hdlsim: ram: read at %#x outside [%#x,+%d)", addr, r.base, len(r.words))
	}
	return r.words[off], nil
}

// BusWrite implements BusTarget.
func (r *RAM) BusWrite(addr, val uint32) error {
	off := addr - r.base
	if off >= uint32(len(r.words)) {
		return fmt.Errorf("hdlsim: ram: write at %#x outside [%#x,+%d)", addr, r.base, len(r.words))
	}
	r.words[off] = val
	return nil
}
