// Package hdlsim implements a SystemC-like discrete-event simulation kernel
// for hardware models: evaluate/update signal semantics with delta cycles,
// method and thread processes, clocks, hierarchical modules with typed
// ports, and — following Fummi et al. (DATE 2005) — the co-simulation
// extensions driver_in / driver_out / driver_process / driver_simulate that
// connect a model under simulation to software running on a (virtual)
// embedded board.
//
// The kernel is single-threaded: all processes execute on the goroutine
// that calls Run/RunCycles/DriverSimulate. Thread processes are backed by
// sim.Coroutine, so exactly one process body runs at any instant and
// simulations are fully deterministic.
package hdlsim

import (
	"fmt"

	"repro/internal/sim"
)

// ProcessKind distinguishes the two SystemC process styles.
type ProcessKind int

const (
	// MethodProcess runs to completion each time it is triggered
	// (SC_METHOD). It must not block.
	MethodProcess ProcessKind = iota
	// ThreadProcess has its own control flow and suspends with Wait*
	// (SC_THREAD).
	ThreadProcess
)

// Process is one simulation process registered with a Simulator.
type Process struct {
	sim  *Simulator
	name string
	kind ProcessKind

	fn   func()         // method body
	coro *sim.Coroutine // thread body

	static []*Event // static sensitivity (methods only)

	// Dynamic waiting state (threads only).
	waitEvents    []*Event
	waitTimeout   sim.Handle
	timedOut      bool
	lastWakeEvent *Event

	queued      bool // already in the current runnable set
	terminated  bool
	noInitCall  bool // skip the initialization run
	triggerRuns uint64
}

// Name returns the hierarchical process name.
func (p *Process) Name() string { return p.name }

// Terminated reports whether a thread body has returned.
func (p *Process) Terminated() bool { return p.terminated }

// Runs returns how many times the process has been executed/resumed;
// useful in tests and kernel statistics.
func (p *Process) Runs() uint64 { return p.triggerRuns }

// DontInitialize suppresses the initialization run of the process, like
// SystemC's dont_initialize(). It must be called before Elaborate.
func (p *Process) DontInitialize() *Process {
	p.noInitCall = true
	return p
}

// updater is anything with deferred update semantics (signals).
type updater interface{ update(now sim.Time) }

// Stats aggregates kernel activity counters.
type Stats struct {
	Deltas        uint64 // delta cycles executed
	TimeSteps     uint64 // distinct simulated instants visited
	ProcessRuns   uint64 // process activations
	SignalUpdates uint64 // committed signal updates
	EventTriggers uint64 // event firings
}

// Simulator is the simulation kernel: it owns simulated time, the timed
// event queue, the delta-cycle machinery, and all registered processes,
// signals and events.
type Simulator struct {
	name  string
	now   sim.Time
	timed *sim.Queue

	runnable      []*Process
	updates       []updater
	updatesSpare  []updater // recycled backing array for the update phase
	deltaNotified []*Event
	notifiedSpare []*Event
	wokenSpare    []*Process // recycled scratch for Event.trigger's woken list

	processes []*Process
	signals   []namedSignal
	clocks    []*Clock

	elaborated bool
	running    bool
	stopped    bool
	stats      Stats

	// MaxDeltasPerInstant aborts the simulation when one instant runs
	// more than this many delta cycles — the signature of a combinational
	// loop (two processes re-triggering each other forever). 0 means the
	// default of 100000.
	MaxDeltasPerInstant uint64
	deltaOverflow       error

	// Driver (co-simulation) state; see driver.go.
	driverIns    []*DriverIn
	driverOuts   []*DriverOut
	intWatches   []*intWatch
	intRaised    []uint8
	intLookahead func() uint64 // see SetInterruptLookahead

	// cycleHooks run after every completed clock cycle in RunCycles /
	// DriverSimulate; used by tracing and tests.
	cycleHooks []func(cycle uint64)
}

type namedSignal interface {
	SignalName() string
	traceValue() string
}

// NewSimulator creates an empty kernel.
func NewSimulator(name string) *Simulator {
	return &Simulator{
		name:  name,
		timed: sim.NewQueue(),
	}
}

// Name returns the simulator instance name.
func (s *Simulator) Name() string { return s.name }

// Now returns the current simulated time.
func (s *Simulator) Now() sim.Time { return s.now }

// Stats returns a snapshot of kernel activity counters.
func (s *Simulator) Stats() Stats { return s.stats }

// Stopped reports whether Stop was called.
func (s *Simulator) Stopped() bool { return s.stopped }

// Stop ends the simulation at the current instant: Run and RunCycles return
// after the current delta completes.
func (s *Simulator) Stop() { s.stopped = true }

// OnCycle registers fn to run after every completed clock cycle during
// RunCycles and DriverSimulate.
func (s *Simulator) OnCycle(fn func(cycle uint64)) {
	s.cycleHooks = append(s.cycleHooks, fn)
}

// Method registers a run-to-completion process statically sensitive to the
// given events. The body runs once at initialization (unless
// DontInitialize) and once per delta in which any sensitivity event fires.
func (s *Simulator) Method(name string, fn func(), sensitivity ...*Event) *Process {
	s.mustNotBeElaborated("Method", name)
	p := &Process{sim: s, name: name, kind: MethodProcess, fn: fn, static: sensitivity}
	for _, e := range sensitivity {
		e.static = append(e.static, p)
	}
	s.processes = append(s.processes, p)
	return p
}

// Thread registers a thread-style process. The body receives a Ctx whose
// Wait* methods suspend the thread. The body runs at initialization until
// its first Wait.
func (s *Simulator) Thread(name string, body func(*Ctx)) *Process {
	s.mustNotBeElaborated("Thread", name)
	p := &Process{sim: s, name: name, kind: ThreadProcess}
	ctx := &Ctx{p: p}
	p.coro = sim.NewCoroutine(name, func(*sim.Coroutine) { body(ctx) })
	s.processes = append(s.processes, p)
	return p
}

func (s *Simulator) mustNotBeElaborated(what, name string) {
	if s.elaborated {
		panic(fmt.Sprintf("hdlsim: %s(%q) after elaboration", what, name))
	}
}

// Elaborate finalizes the model: it validates the design and schedules the
// initialization runs. It is called implicitly by Run/RunCycles/
// DriverSimulate if the caller did not.
func (s *Simulator) Elaborate() error {
	if s.elaborated {
		return nil
	}
	seen := make(map[string]bool, len(s.processes))
	for _, p := range s.processes {
		if seen[p.name] {
			return fmt.Errorf("hdlsim: duplicate process name %q", p.name)
		}
		seen[p.name] = true
	}
	for _, c := range s.clocks {
		c.start()
	}
	for _, p := range s.processes {
		if !p.noInitCall {
			s.makeRunnable(p)
		}
	}
	s.elaborated = true
	return nil
}

func (s *Simulator) makeRunnable(p *Process) {
	if p.queued || p.terminated {
		return
	}
	p.queued = true
	s.runnable = append(s.runnable, p)
}

// requestUpdate queues a signal for the update phase of the current delta.
// Callers (signals) guarantee they request at most once per delta (their
// hasNext flag), so no dedup is needed here.
func (s *Simulator) requestUpdate(u updater) {
	s.updates = append(s.updates, u)
}

func (s *Simulator) queueDeltaNotify(e *Event) {
	if e.deltaPending {
		return
	}
	e.deltaPending = true
	s.deltaNotified = append(s.deltaNotified, e)
}

// execute runs one process activation.
func (s *Simulator) execute(p *Process) {
	s.stats.ProcessRuns++
	p.triggerRuns++
	switch p.kind {
	case MethodProcess:
		p.fn()
	case ThreadProcess:
		if p.coro.Resume() == sim.CoroFinished {
			p.terminated = true
		}
	}
}

// deltaLoop runs evaluation/update/delta-notification phases until no
// process is runnable at the current instant.
func (s *Simulator) deltaLoop() {
	limit := s.MaxDeltasPerInstant
	if limit == 0 {
		limit = 100000
	}
	deltasHere := uint64(0)
	for len(s.runnable) > 0 || len(s.updates) > 0 || len(s.deltaNotified) > 0 {
		if s.stopped {
			return
		}
		deltasHere++
		if deltasHere > limit {
			s.deltaOverflow = fmt.Errorf(
				"hdlsim: %d delta cycles at %v without settling (combinational loop?)", deltasHere-1, s.now)
			s.stopped = true
			return
		}
		s.stats.Deltas++
		// Evaluation phase. Immediate notifications may append to
		// s.runnable while we iterate, so index explicitly.
		for i := 0; i < len(s.runnable); i++ {
			p := s.runnable[i]
			p.queued = false
			s.execute(p)
		}
		s.runnable = s.runnable[:0]
		// Update phase: commit signal writes. Changed signals queue
		// delta notifications.
		updates := s.updates
		s.updates = s.updatesSpare[:0]
		for _, u := range updates {
			u.update(s.now)
			s.stats.SignalUpdates++
		}
		s.updatesSpare = updates[:0]
		// Delta notification phase: fire events, making their waiters
		// runnable in the next delta.
		notified := s.deltaNotified
		s.deltaNotified = s.notifiedSpare[:0]
		for _, e := range notified {
			if !e.deltaPending { // cancelled after being queued
				continue
			}
			e.deltaPending = false
			e.trigger()
		}
		s.notifiedSpare = notified[:0]
	}
}

// advanceToNext pops the earliest timed instant, executes its callbacks and
// returns true; returns false when the timed queue is empty.
func (s *Simulator) advanceToNext(limit sim.Time) bool {
	next := s.timed.NextTime()
	if next == sim.MaxTime || next > limit {
		return false
	}
	s.now = next
	s.stats.TimeSteps++
	for {
		at, fn, ok := s.timed.Pop()
		if !ok || at != next {
			if ok {
				// Should not happen: Pop never returns earlier than
				// NextTime. Reschedule defensively.
				s.timed.Schedule(at, fn)
			}
			break
		}
		fn()
		if s.timed.NextTime() != next {
			break
		}
	}
	return true
}

// Run advances simulation by d of simulated time (or until Stop, or until
// no further activity exists). It elaborates on first use.
func (s *Simulator) Run(d sim.Time) error {
	if err := s.Elaborate(); err != nil {
		return err
	}
	limit := s.now + d
	if d == sim.MaxTime || limit < s.now { // overflow ⇒ run forever
		limit = sim.MaxTime
	}
	s.deltaLoop() // pending initialization or leftover activity
	for !s.stopped {
		if !s.advanceToNext(limit) {
			break
		}
		s.deltaLoop()
	}
	if s.deltaOverflow != nil {
		return s.deltaOverflow
	}
	if !s.stopped && limit != sim.MaxTime && s.now < limit {
		s.now = limit
	}
	return nil
}

// RunCycles advances the simulation by n full cycles of clk, invoking the
// per-cycle hooks after each posedge-to-posedge period completes.
func (s *Simulator) RunCycles(clk *Clock, n uint64) error {
	if err := s.Elaborate(); err != nil {
		return err
	}
	for i := uint64(0); i < n && !s.stopped; i++ {
		target := clk.Cycles() + 1
		for clk.Cycles() < target && !s.stopped {
			if !s.advanceToNext(sim.MaxTime) {
				return fmt.Errorf("hdlsim: event starvation at %v waiting for clock %q", s.now, clk.Name())
			}
			s.deltaLoop()
		}
		for _, h := range s.cycleHooks {
			h(clk.Cycles())
		}
	}
	return s.deltaOverflow
}
