package hdlsim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCombinationalLoopDetected(t *testing.T) {
	// Two methods re-triggering each other through two signals: a
	// combinational loop that never settles within the instant.
	s := NewSimulator("t")
	s.MaxDeltasPerInstant = 500
	a := NewSignal[int](s, "a")
	b := NewSignal[int](s, "b")
	s.Method("pa", func() { b.Write(a.Read() + 1) }, a.Changed()).DontInitialize()
	s.Method("pb", func() { a.Write(b.Read() + 1) }, b.Changed()).DontInitialize()
	s.Method("kick", func() { a.Write(1) })
	err := s.Run(sim.NS(1))
	if err == nil {
		t.Fatal("combinational loop not detected")
	}
	if !strings.Contains(err.Error(), "delta cycles") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestCombinationalLoopDetectedUnderRunCycles(t *testing.T) {
	s := NewSimulator("t")
	s.MaxDeltasPerInstant = 500
	clk := s.NewClock("clk", sim.NS(10))
	a := NewSignal[int](s, "a")
	s.Method("osc", func() { a.Write(a.Read() + 1) }, a.Changed()).DontInitialize()
	s.Method("kick", func() { a.Write(1) }, clk.Posedge()).DontInitialize()
	if err := s.RunCycles(clk, 3); err == nil {
		t.Fatal("loop under RunCycles not detected")
	}
}

func TestSettlingDesignUnaffectedByGuard(t *testing.T) {
	// A deep but finite cascade (well below the limit) must still settle.
	s := NewSimulator("t")
	s.MaxDeltasPerInstant = 1000
	const depth = 200
	sigs := make([]*Signal[int], depth)
	for i := range sigs {
		sigs[i] = NewSignal[int](s, "s")
	}
	for i := 0; i < depth-1; i++ {
		i := i
		s.Method(fmt.Sprintf("st%d", i), func() { sigs[i+1].Write(sigs[i].Read() + 1) },
			sigs[i].Changed()).DontInitialize()
	}
	s.Method("kick", func() { sigs[0].Write(1) })
	if err := s.Run(sim.NS(1)); err != nil {
		t.Fatal(err)
	}
	if got := sigs[depth-1].Read(); got != depth {
		t.Fatalf("cascade tail = %d, want %d", got, depth)
	}
}
