package vcd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hdlsim"
	"repro/internal/sim"
)

func TestVCDLogicSignalXZ(t *testing.T) {
	s := hdlsim.NewSimulator("t")
	bus := hdlsim.NewResolvedSignal(s, "sda")
	d1 := bus.NewDriver()
	d2 := bus.NewDriver()
	var buf bytes.Buffer
	w := NewWriter(&buf, "top")
	w.AddLogic("sda", bus)
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	s.Thread("drv", func(c *hdlsim.Ctx) {
		d1.Drive(hdlsim.L1)
		c.WaitTime(sim.NS(1))
		d2.Drive(hdlsim.L0) // conflict → x
		c.WaitTime(sim.NS(1))
		d1.Release()
		d2.Release() // float → z
	})
	if err := s.Run(sim.NS(10)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	out := buf.String()
	// Initial dump is z; then 1, x, z records.
	for _, want := range []string{"z!", "1!", "x!"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
}

func TestVCDAddLogicAfterBeginPanics(t *testing.T) {
	s := hdlsim.NewSimulator("t")
	bus := hdlsim.NewResolvedSignal(s, "w")
	w := NewWriter(&bytes.Buffer{}, "top")
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddLogic after Begin did not panic")
		}
	}()
	w.AddLogic("w", bus)
}
