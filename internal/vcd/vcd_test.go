package vcd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hdlsim"
	"repro/internal/sim"
)

func TestVCDHeaderAndChanges(t *testing.T) {
	s := hdlsim.NewSimulator("t")
	clk := s.NewClock("clk", sim.NS(10))
	ctr := hdlsim.NewSignal[uint32](s, "ctr")
	s.Method("count", func() { ctr.Write(ctr.Read() + 1) }, clk.Posedge()).DontInitialize()

	var buf bytes.Buffer
	w := NewWriter(&buf, "top")
	w.AddClock("clk", clk)
	AddWord(w, "ctr", 32, ctr)
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.RunCycles(clk, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$scope module top $end",
		"$var wire 1 ! clk $end",
		"$var wire 32 \" ctr $end",
		"$enddefinitions $end",
		"$dumpvars",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD output missing %q:\n%s", want, out)
		}
	}
	// Four rising edges produce counter values 1..4; b100 must appear.
	if !strings.Contains(out, "b100 \"") {
		t.Fatalf("VCD missing counter value 4:\n%s", out)
	}
	// Timestamps are monotonically increasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := parseInt(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts <= last {
				t.Fatalf("timestamps not increasing: %d after %d", ts, last)
			}
			last = ts
		}
	}
	if last < 0 {
		t.Fatal("no timestamp records emitted")
	}
}

func parseInt(s string, out *int64) (int, error) {
	var n int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errBad
		}
		n = n*10 + int64(r-'0')
	}
	*out = n
	return len(s), nil
}

var errBad = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "parse error" }

func TestVCDIdentifierCodesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := idCode(i)
		if seen[id] {
			t.Fatalf("duplicate id code %q at %d", id, i)
		}
		seen[id] = true
		for _, r := range id {
			if r < 33 || r > 126 {
				t.Fatalf("id code %q contains non-printable rune", id)
			}
		}
	}
}

func TestVCDNoChangeNoRecord(t *testing.T) {
	s := hdlsim.NewSimulator("t")
	b := hdlsim.NewBitSignal(s, "quiet")
	var buf bytes.Buffer
	w := NewWriter(&buf, "top")
	w.AddBit("quiet", b)
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(sim.NS(100)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if strings.Contains(buf.String()[strings.Index(buf.String(), "$end\n"):], "#") {
		t.Fatalf("records emitted for unchanged signal:\n%s", buf.String())
	}
}

func TestVCDAddAfterBeginPanics(t *testing.T) {
	s := hdlsim.NewSimulator("t")
	b := hdlsim.NewBitSignal(s, "b")
	w := NewWriter(&bytes.Buffer{}, "top")
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddBit after Begin did not panic")
		}
	}()
	w.AddBit("b", b)
}

func TestVCDZeroVector(t *testing.T) {
	if got := vecStr(0, 16); got != "b0 " {
		t.Fatalf("vecStr(0) = %q, want \"b0 \"", got)
	}
	if got := vecStr(5, 8); got != "b101 " {
		t.Fatalf("vecStr(5) = %q", got)
	}
	if got := vecStr(1, 1); got != "1" {
		t.Fatalf("vecStr width 1 = %q", got)
	}
}
