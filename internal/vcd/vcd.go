// Package vcd writes Value Change Dump (IEEE 1364) waveform files from
// hdlsim signals, so co-simulation runs can be inspected in standard
// waveform viewers (GTKWave et al.). Only the subset of VCD needed for
// digital traces is emitted: $timescale/$scope/$var headers, $dumpvars
// initial values, and #time / value-change records.
package vcd

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/hdlsim"
	"repro/internal/sim"
)

// Writer accumulates signal traces and emits a VCD stream. Register all
// signals before the simulation starts; value changes are captured through
// hdlsim trace callbacks.
type Writer struct {
	out     *bufio.Writer
	scope   string
	vars    []*variable
	started bool
	curTime sim.Time
	timeSet bool
	err     error
}

type variable struct {
	id    string
	name  string
	width int
	last  string
}

// NewWriter creates a VCD writer targeting w; scope names the top-level
// $scope module.
func NewWriter(w io.Writer, scope string) *Writer {
	return &Writer{out: bufio.NewWriter(w), scope: scope}
}

// identifier codes per the VCD grammar: printable ASCII 33..126.
func idCode(n int) string {
	const lo, hi = 33, 127
	var b []byte
	for {
		b = append(b, byte(lo+n%(hi-lo)))
		n /= (hi - lo)
		if n == 0 {
			break
		}
		n--
	}
	return string(b)
}

func (w *Writer) newVar(name string, width int, initial string) *variable {
	v := &variable{id: idCode(len(w.vars)), name: name, width: width, last: initial}
	w.vars = append(w.vars, v)
	return v
}

// AddBit traces a 1-bit signal under the given name.
func (w *Writer) AddBit(name string, sig *hdlsim.BitSignal) {
	if w.started {
		panic("vcd: AddBit after Begin")
	}
	v := w.newVar(name, 1, bitStr(sig.Read()))
	sig.Trace(func(at sim.Time, val bool) { w.change(at, v, bitStr(val)) })
}

// AddClock traces a clock signal.
func (w *Writer) AddClock(name string, clk *hdlsim.Clock) {
	w.AddBit(name, clk.Signal())
}

// AddLogic traces a four-state resolved bus line; X and Z render as the
// native VCD 'x' and 'z' values.
func (w *Writer) AddLogic(name string, sig *hdlsim.ResolvedSignal) {
	if w.started {
		panic("vcd: AddLogic after Begin")
	}
	v := w.newVar(name, 1, logicStr(sig.Read()))
	sig.Trace(func(at sim.Time, val hdlsim.Logic) { w.change(at, v, logicStr(val)) })
}

func logicStr(l hdlsim.Logic) string {
	switch l {
	case hdlsim.L0:
		return "0"
	case hdlsim.L1:
		return "1"
	case hdlsim.LZ:
		return "z"
	default:
		return "x"
	}
}

// AddWord traces an unsigned integer signal with the given bit width.
func AddWord[T uint8 | uint16 | uint32 | uint64](w *Writer, name string, width int, sig *hdlsim.Signal[T]) {
	if w.started {
		panic("vcd: AddWord after Begin")
	}
	v := w.newVar(name, width, vecStr(uint64(sig.Read()), width))
	sig.Trace(func(at sim.Time, val T) { w.change(at, v, vecStr(uint64(val), width)) })
}

func bitStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func vecStr(v uint64, width int) string {
	if width <= 1 {
		return bitStr(v&1 == 1)
	}
	return fmt.Sprintf("b%b ", v)
}

// Begin emits the VCD header and the initial $dumpvars block. It must be
// called after all Add* registrations and before the simulation runs (or
// at time zero).
func (w *Writer) Begin() error {
	if w.started {
		return nil
	}
	w.started = true
	fmt.Fprintf(w.out, "$date\n   repro cosim trace\n$end\n")
	fmt.Fprintf(w.out, "$version\n   repro hdlsim VCD writer\n$end\n")
	fmt.Fprintf(w.out, "$timescale 1ps $end\n")
	fmt.Fprintf(w.out, "$scope module %s $end\n", w.scope)
	for _, v := range w.vars {
		kind := "wire"
		fmt.Fprintf(w.out, "$var %s %d %s %s $end\n", kind, v.width, v.id, v.name)
	}
	fmt.Fprintf(w.out, "$upscope $end\n$enddefinitions $end\n")
	fmt.Fprintf(w.out, "$dumpvars\n")
	for _, v := range w.vars {
		w.emit(v, v.last)
	}
	fmt.Fprintf(w.out, "$end\n")
	return w.out.Flush()
}

func (w *Writer) change(at sim.Time, v *variable, val string) {
	if !w.started {
		// Pre-Begin changes just update the initial value.
		v.last = val
		return
	}
	if val == v.last {
		return
	}
	v.last = val
	if !w.timeSet || at != w.curTime {
		w.curTime = at
		w.timeSet = true
		fmt.Fprintf(w.out, "#%d\n", uint64(at))
	}
	w.emit(v, val)
}

func (w *Writer) emit(v *variable, val string) {
	// Vector values already carry their trailing separator space.
	fmt.Fprintf(w.out, "%s%s\n", val, v.id)
}

// Close flushes buffered output. The underlying writer is not closed.
func (w *Writer) Close() error {
	if !w.started {
		if err := w.Begin(); err != nil {
			return err
		}
	}
	return w.out.Flush()
}
