package cosim

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP transport realizes the paper's three TCP/IP ports. To stay
// friendly to test environments (a single well-known address instead of
// three), all three logical channels connect to one listener; the first
// byte each connection sends identifies which logical port it is. Each
// channel then carries framed Msg records (see proto.go).

// tcpTransport is a Transport over three TCP connections. A reader
// goroutine per connection decodes frames into a buffered channel so that
// TryRecv is non-blocking.
type tcpTransport struct {
	conns [numChannels]net.Conn
	wmu   [numChannels]sync.Mutex
	wbuf  [numChannels]*bufio.Writer
	inbox [numChannels]chan Msg
	errs  [numChannels]error
	emu   sync.Mutex
	once  sync.Once
}

const tcpInboxDepth = 4096

func newTCPTransport(conns [numChannels]net.Conn) *tcpTransport {
	t := &tcpTransport{conns: conns}
	for i := range conns {
		t.wbuf[i] = bufio.NewWriter(conns[i])
		t.inbox[i] = make(chan Msg, tcpInboxDepth)
		go t.readLoop(Channel(i))
	}
	return t
}

func (t *tcpTransport) readLoop(ch Channel) {
	r := bufio.NewReader(t.conns[ch])
	for {
		m, err := Decode(r)
		if err != nil {
			t.emu.Lock()
			t.errs[ch] = err
			t.emu.Unlock()
			close(t.inbox[ch])
			return
		}
		t.inbox[ch] <- m
	}
}

func (t *tcpTransport) chanErr(ch Channel) error {
	t.emu.Lock()
	defer t.emu.Unlock()
	if t.errs[ch] != nil {
		return fmt.Errorf("cosim: %v channel: %w", ch, t.errs[ch])
	}
	return ErrClosed
}

func (t *tcpTransport) Send(ch Channel, m Msg) error {
	if ch >= numChannels {
		return fmt.Errorf("cosim: invalid channel %d", ch)
	}
	t.wmu[ch].Lock()
	err := m.Encode(t.wbuf[ch])
	if err == nil {
		err = t.wbuf[ch].Flush()
	}
	t.wmu[ch].Unlock()
	// Encode copied the payloads onto the wire; as the stack's bottom this
	// transport is the terminal consumer of any pooled message (a batch
	// flush or a chaos re-encode), so it releases the buffers.
	m.Release()
	return err
}

func (t *tcpTransport) Recv(ch Channel) (Msg, error) {
	if ch >= numChannels {
		return Msg{}, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	m, ok := <-t.inbox[ch]
	if !ok {
		return Msg{}, t.chanErr(ch)
	}
	return m, nil
}

func (t *tcpTransport) recvTimeout(ch Channel, d time.Duration) (Msg, error) {
	if ch >= numChannels {
		return Msg{}, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	timer := time.NewTimer(d) //cosim:wallclock -- receive timeout bounds host I/O, not simulated time
	defer timer.Stop()
	select {
	case m, ok := <-t.inbox[ch]:
		if !ok {
			return Msg{}, t.chanErr(ch)
		}
		return m, nil
	case <-timer.C:
		return Msg{}, ErrTimeout
	}
}

func (t *tcpTransport) TryRecv(ch Channel) (Msg, bool, error) {
	if ch >= numChannels {
		return Msg{}, false, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	select {
	case m, ok := <-t.inbox[ch]:
		if !ok {
			return Msg{}, false, t.chanErr(ch)
		}
		return m, true, nil
	default:
		return Msg{}, false, nil
	}
}

func (t *tcpTransport) Close() error {
	var first error
	t.once.Do(func() {
		for _, c := range t.conns {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	})
	return first
}

// Listener accepts the three channel connections of one co-simulation
// session on the hardware-simulator side. It is network-agnostic: the
// same framing and handshake run over TCP ("tcp") and Unix-domain
// sockets ("unix").
type Listener struct {
	ln net.Listener
}

// ListenTCP starts listening for a board connection. addr is a TCP address
// such as "127.0.0.1:0".
func ListenTCP(addr string) (*Listener, error) { return ListenNet("tcp", addr) }

// ListenUDS starts listening for a board connection on a Unix-domain
// socket at path. The socket file is created by the listener and removed
// by its Close; the wire protocol is byte-identical to the TCP one, so
// every layer above (session, batch, mux attach) works unchanged.
func ListenUDS(path string) (*Listener, error) { return ListenNet("unix", path) }

// ListenNet starts a listener on an arbitrary stream network ("tcp",
// "unix").
func ListenNet(network, addr string) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the bound address (a host:port for TCP — useful with
// port 0 — or the socket path for UDS).
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Network returns the listener's network ("tcp", "unix").
func (l *Listener) Network() string { return l.ln.Addr().Network() }

// Accept waits for the board to open all three channels and returns the
// assembled transport. The first byte on each accepted connection selects
// its logical channel; a hello message follows on each.
func (l *Listener) Accept() (Transport, error) {
	var conns [numChannels]net.Conn
	seen := 0
	for seen < int(numChannels) {
		c, err := l.ln.Accept()
		if err != nil {
			return nil, err
		}
		var tag [1]byte
		if _, err := c.Read(tag[:]); err != nil {
			c.Close()
			return nil, fmt.Errorf("cosim: reading channel tag: %w", err)
		}
		ch := Channel(tag[0])
		if ch >= numChannels || conns[ch] != nil {
			c.Close()
			return nil, fmt.Errorf("cosim: bad or duplicate channel tag %d", tag[0])
		}
		m, err := Decode(c)
		// Release on every arm: a well-formed hello carries only scalars,
		// and a stray frame may carry pooled payloads.
		if err != nil || m.Type != MTHello {
			m.Release()
			c.Close()
			return nil, fmt.Errorf("cosim: missing hello on %v channel: %v", ch, err)
		}
		if m.Version != ProtocolVersion {
			m.Release()
			c.Close()
			return nil, fmt.Errorf("cosim: protocol version mismatch: board %d, simulator %d", m.Version, ProtocolVersion)
		}
		m.Release() // hello carries only scalars
		conns[ch] = c
		seen++
	}
	return newTCPTransport(conns), nil
}

// Close stops the listener (already-accepted transports stay open).
func (l *Listener) Close() error { return l.ln.Close() }

// Reaccept returns a redial function for SessionConfig.Redial on the
// simulator side: each call waits for the board to re-open all three
// channels on the same listener. The listener must stay open for the
// lifetime of the session.
func (l *Listener) Reaccept() func() (Transport, error) { return l.Accept }

// Redialer returns a redial function for SessionConfig.Redial on the
// board side: each call re-dials the simulator's listener, re-running
// the channel-tag and hello handshakes.
func Redialer(addr string) func() (Transport, error) {
	return func() (Transport, error) { return DialTCP(addr) }
}

// UDSRedialer is Redialer over a Unix-domain socket path.
func UDSRedialer(path string) func() (Transport, error) {
	return func() (Transport, error) { return DialUDS(path) }
}

// DialTCP connects the board side to a listening simulator, opening the
// three channel connections and performing the hello handshake.
func DialTCP(addr string) (Transport, error) { return DialNet("tcp", addr) }

// DialUDS is DialTCP over a Unix-domain socket path.
func DialUDS(path string) (Transport, error) { return DialNet("unix", path) }

// DialNet connects the board side over an arbitrary stream network
// ("tcp", "unix"), opening the three channel connections and performing
// the hello handshake.
func DialNet(network, addr string) (Transport, error) {
	var conns [numChannels]net.Conn
	for ch := Channel(0); ch < numChannels; ch++ {
		c, err := net.Dial(network, addr)
		if err != nil {
			for i := Channel(0); i < ch; i++ {
				conns[i].Close()
			}
			return nil, err
		}
		if _, err := c.Write([]byte{byte(ch)}); err != nil {
			c.Close()
			return nil, err
		}
		hello := Msg{Type: MTHello, Version: ProtocolVersion}
		if err := hello.Encode(c); err != nil {
			c.Close()
			return nil, err
		}
		conns[ch] = c
	}
	return newTCPTransport(conns), nil
}
