// Package cosim implements the co-simulation link of Fummi et al. (DATE
// 2005): three logical communication channels — a DATA port for register
// traffic, an INT port carrying interrupt notifications, and a CLOCK port
// carrying the timing information that keeps the hardware simulator and
// the board synchronized — plus the virtual-tick synchronization protocol
// built on them.
//
// The hardware simulator is the master of simulated time: every T_sync
// clock cycles it sends a clock grant over the CLOCK channel; the board
// advances its software by the granted number of virtual ticks and answers
// with its local time. Cross-traffic (register writes, read requests,
// interrupts) is exchanged at these quantum boundaries, which makes the
// co-simulation deterministic regardless of transport (TCP or in-process)
// and of whether the two sides execute their quanta alternately or
// concurrently.
package cosim

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ProtocolVersion guards against mismatched endpoints.
const ProtocolVersion uint16 = 1

// Channel identifies one of the three logical ports of the link.
type Channel uint8

const (
	// ChanData is the DATA port: register writes, read requests and read
	// responses.
	ChanData Channel = iota
	// ChanInt is the INT port: hardware→board interrupt notifications.
	ChanInt
	// ChanClock is the CLOCK port: grants, time acknowledgements and
	// shutdown.
	ChanClock
	numChannels
)

// String implements fmt.Stringer.
func (c Channel) String() string {
	switch c {
	case ChanData:
		return "DATA"
	case ChanInt:
		return "INT"
	case ChanClock:
		return "CLOCK"
	default:
		return fmt.Sprintf("Channel(%d)", uint8(c))
	}
}

// MsgType discriminates protocol messages.
type MsgType uint8

const (
	// MTHello opens each channel (version handshake).
	MTHello MsgType = iota + 1
	// MTClockGrant (CLOCK, HW→board): run for Ticks virtual ticks; exactly
	// DataCount DATA messages and IntCount INT messages sent during the
	// simulator's preceding quantum must be drained first.
	MTClockGrant
	// MTTimeAck (CLOCK, board→HW): the board finished its quantum at local
	// cycle BoardCycle / software tick SWTick, having sent DataCount DATA
	// messages that the simulator must drain before proceeding.
	MTTimeAck
	// MTFinish (CLOCK, HW→board): co-simulation over.
	MTFinish
	// MTFinishAck (CLOCK, board→HW): board acknowledges shutdown; its
	// final statistics ride along in BoardCycle/SWTick.
	MTFinishAck
	// MTInterrupt (INT, HW→board): interrupt line IRQ fired.
	MTInterrupt
	// MTDataWrite (DATA, either direction): Words written at Addr.
	MTDataWrite
	// MTDataReadReq (DATA, board→HW): read Count words at Addr.
	MTDataReadReq
	// MTDataReadResp (DATA, HW→board): response to a read request.
	MTDataReadResp
	// MTSessionData (any channel, either direction): the resilient-session
	// envelope (see session.go). Raw holds a complete inner message body
	// (type byte + payload), Seq its per-channel sequence number and Crc a
	// CRC-32 over sequence number and body so corruption is detected at
	// the session layer instead of poisoning the endpoint.
	MTSessionData
	// MTSessionAck (any channel, reverse direction): cumulative receipt —
	// every envelope with sequence number ≤ Seq arrived on this channel.
	MTSessionAck
	// MTSessionNack (any channel, reverse direction): a sequence gap was
	// observed; retransmit every unacknowledged envelope from Seq up.
	MTSessionNack
	// MTHeartbeat (CLOCK, either direction): liveness probe carrying a
	// monotonic counter in Seq; never sequenced, never retransmitted.
	MTHeartbeat
	// MTAttach (any channel, board→listener, immediately after the hello):
	// the multiplexing handshake of a farm listener. Version repeats the
	// protocol version; Seq carries the session ID the connection belongs
	// to, so one listener can route many boards to their runs (see
	// MuxListener). A plain Listener never sees this frame.
	MTAttach
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MTHello:
		return "hello"
	case MTClockGrant:
		return "clock-grant"
	case MTTimeAck:
		return "time-ack"
	case MTFinish:
		return "finish"
	case MTFinishAck:
		return "finish-ack"
	case MTInterrupt:
		return "interrupt"
	case MTDataWrite:
		return "data-write"
	case MTDataReadReq:
		return "data-read-req"
	case MTDataReadResp:
		return "data-read-resp"
	case MTSessionData:
		return "session-data"
	case MTSessionAck:
		return "session-ack"
	case MTSessionNack:
		return "session-nack"
	case MTHeartbeat:
		return "heartbeat"
	case MTAttach:
		return "attach"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Msg is one protocol message. It is a tagged union: which fields are
// meaningful depends on Type (see the MsgType constants). A single struct
// keeps the hot path allocation-free and the wire codec simple.
type Msg struct {
	Type MsgType

	// DATA-channel fields.
	Addr  uint32
	Count uint32
	Words []uint32

	// INT-channel fields.
	IRQ uint8

	// CLOCK-channel fields.
	Ticks      uint64
	HWCycle    uint64
	BoardCycle uint64
	SWTick     uint64
	DataCount  uint32
	IntCount   uint32

	// Hello fields.
	Version uint16

	// Session-layer fields (MTSessionData/Ack/Nack, MTHeartbeat).
	Seq uint64 // per-channel sequence / cumulative ack / heartbeat counter
	Crc uint32 // CRC-32 (IEEE): over Seq+Raw for envelopes, Seq+type for control frames
	Raw []byte // complete inner message body (type byte + payload)
}

// MaxWords bounds the Words slice on the wire to keep a corrupted length
// prefix from allocating unbounded memory.
const MaxWords = 1 << 16

// maxFrameBody bounds the body of one frame on the wire. It is sized so a
// session envelope (17 bytes of header) can still carry the largest
// unwrapped message body (a MaxWords data-write).
const maxFrameBody = 4*(MaxWords+8) + 32

// Encode writes the message in its framed wire format:
//
//	uint32  payload length (bytes, excluding this prefix)
//	uint8   type
//	...     type-specific payload, little-endian
func (m *Msg) Encode(w io.Writer) error {
	body := m.appendBody(make([]byte, 4, 64))
	binary.LittleEndian.PutUint32(body[:4], uint32(len(body)-4))
	_, err := w.Write(body)
	return err
}

// appendBody appends the unframed body (starting with the type byte) to b.
func (m *Msg) appendBody(b []byte) []byte {
	b = append(b, byte(m.Type))
	le := binary.LittleEndian
	switch m.Type {
	case MTHello:
		b = le.AppendUint16(b, m.Version)
	case MTClockGrant:
		b = le.AppendUint64(b, m.Ticks)
		b = le.AppendUint64(b, m.HWCycle)
		b = le.AppendUint32(b, m.DataCount)
		b = le.AppendUint32(b, m.IntCount)
	case MTTimeAck, MTFinishAck:
		b = le.AppendUint64(b, m.BoardCycle)
		b = le.AppendUint64(b, m.SWTick)
		b = le.AppendUint32(b, m.DataCount)
	case MTFinish:
		b = le.AppendUint64(b, m.HWCycle)
	case MTInterrupt:
		b = append(b, m.IRQ)
	case MTDataWrite, MTDataReadResp:
		b = le.AppendUint32(b, m.Addr)
		b = le.AppendUint32(b, uint32(len(m.Words)))
		for _, w := range m.Words {
			b = le.AppendUint32(b, w)
		}
	case MTDataReadReq:
		b = le.AppendUint32(b, m.Addr)
		b = le.AppendUint32(b, m.Count)
	case MTSessionData:
		b = le.AppendUint64(b, m.Seq)
		b = le.AppendUint32(b, m.Crc)
		b = le.AppendUint32(b, uint32(len(m.Raw)))
		b = append(b, m.Raw...)
	case MTSessionAck, MTSessionNack, MTHeartbeat:
		b = le.AppendUint64(b, m.Seq)
		b = le.AppendUint32(b, m.Crc)
	case MTAttach:
		b = le.AppendUint16(b, m.Version)
		b = le.AppendUint64(b, m.Seq)
	default:
		panic(fmt.Sprintf("cosim: encode of unknown message type %d", m.Type))
	}
	return b
}

// Decode reads one framed message from r.
func Decode(r io.Reader) (Msg, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Msg{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrameBody {
		return Msg{}, fmt.Errorf("cosim: implausible frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Msg{}, fmt.Errorf("cosim: truncated frame: %w", err)
	}
	return decodeBody(body)
}

func decodeBody(body []byte) (Msg, error) {
	le := binary.LittleEndian
	m := Msg{Type: MsgType(body[0])}
	p := body[1:]
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("cosim: short %v message: %d bytes left, need %d", m.Type, len(p), n)
		}
		return nil
	}
	switch m.Type {
	case MTHello:
		if err := need(2); err != nil {
			return m, err
		}
		m.Version = le.Uint16(p)
	case MTClockGrant:
		if err := need(24); err != nil {
			return m, err
		}
		m.Ticks = le.Uint64(p)
		m.HWCycle = le.Uint64(p[8:])
		m.DataCount = le.Uint32(p[16:])
		m.IntCount = le.Uint32(p[20:])
	case MTTimeAck, MTFinishAck:
		if err := need(20); err != nil {
			return m, err
		}
		m.BoardCycle = le.Uint64(p)
		m.SWTick = le.Uint64(p[8:])
		m.DataCount = le.Uint32(p[16:])
	case MTFinish:
		if err := need(8); err != nil {
			return m, err
		}
		m.HWCycle = le.Uint64(p)
	case MTInterrupt:
		if err := need(1); err != nil {
			return m, err
		}
		m.IRQ = p[0]
	case MTDataWrite, MTDataReadResp:
		if err := need(8); err != nil {
			return m, err
		}
		m.Addr = le.Uint32(p)
		count := le.Uint32(p[4:])
		if count > MaxWords {
			return m, fmt.Errorf("cosim: %v with %d words exceeds limit", m.Type, count)
		}
		if err := need(8 + 4*int(count)); err != nil {
			return m, err
		}
		m.Words = make([]uint32, count)
		for i := range m.Words {
			m.Words[i] = le.Uint32(p[8+4*i:])
		}
	case MTDataReadReq:
		if err := need(8); err != nil {
			return m, err
		}
		m.Addr = le.Uint32(p)
		m.Count = le.Uint32(p[4:])
	case MTSessionData:
		if err := need(16); err != nil {
			return m, err
		}
		m.Seq = le.Uint64(p)
		m.Crc = le.Uint32(p[8:])
		rawLen := le.Uint32(p[12:])
		if rawLen > maxFrameBody {
			return m, fmt.Errorf("cosim: session envelope of %d bytes exceeds limit", rawLen)
		}
		if err := need(16 + int(rawLen)); err != nil {
			return m, err
		}
		m.Raw = append([]byte(nil), p[16:16+rawLen]...)
	case MTSessionAck, MTSessionNack, MTHeartbeat:
		if err := need(12); err != nil {
			return m, err
		}
		m.Seq = le.Uint64(p)
		m.Crc = le.Uint32(p[8:])
	case MTAttach:
		if err := need(10); err != nil {
			return m, err
		}
		m.Version = le.Uint16(p)
		m.Seq = le.Uint64(p[2:])
	default:
		return m, fmt.Errorf("cosim: unknown message type %d", body[0])
	}
	return m, nil
}

// WireSize returns the number of bytes the message occupies on the wire,
// including the frame prefix; used by the metrics counters.
func (m *Msg) WireSize() int {
	return len(m.appendBody(make([]byte, 4, 64)))
}
