// Package cosim implements the co-simulation link of Fummi et al. (DATE
// 2005): three logical communication channels — a DATA port for register
// traffic, an INT port carrying interrupt notifications, and a CLOCK port
// carrying the timing information that keeps the hardware simulator and
// the board synchronized — plus the virtual-tick synchronization protocol
// built on them.
//
// The hardware simulator is the master of simulated time: every T_sync
// clock cycles it sends a clock grant over the CLOCK channel; the board
// advances its software by the granted number of virtual ticks and answers
// with its local time. Cross-traffic (register writes, read requests,
// interrupts) is exchanged at these quantum boundaries, which makes the
// co-simulation deterministic regardless of transport (TCP or in-process)
// and of whether the two sides execute their quanta alternately or
// concurrently.
package cosim

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// ProtocolVersion guards against mismatched endpoints. Version 2 added
// the lookahead fields on clock grants and time acknowledgements and the
// MTBatch coalescing frame.
const ProtocolVersion uint16 = 2

// Channel identifies one of the three logical ports of the link.
type Channel uint8

const (
	// ChanData is the DATA port: register writes, read requests and read
	// responses.
	ChanData Channel = iota
	// ChanInt is the INT port: hardware→board interrupt notifications.
	ChanInt
	// ChanClock is the CLOCK port: grants, time acknowledgements and
	// shutdown.
	ChanClock
	numChannels
)

// String implements fmt.Stringer.
func (c Channel) String() string {
	switch c {
	case ChanData:
		return "DATA"
	case ChanInt:
		return "INT"
	case ChanClock:
		return "CLOCK"
	default:
		return fmt.Sprintf("Channel(%d)", uint8(c))
	}
}

// MsgType discriminates protocol messages.
type MsgType uint8

const (
	// MTHello opens each channel (version handshake).
	MTHello MsgType = iota + 1
	// MTClockGrant (CLOCK, HW→board): run for Ticks virtual ticks; exactly
	// DataCount DATA messages and IntCount INT messages sent during the
	// simulator's preceding quantum must be drained first.
	MTClockGrant
	// MTTimeAck (CLOCK, board→HW): the board finished its quantum at local
	// cycle BoardCycle / software tick SWTick, having sent DataCount DATA
	// messages that the simulator must drain before proceeding.
	MTTimeAck
	// MTFinish (CLOCK, HW→board): co-simulation over.
	MTFinish
	// MTFinishAck (CLOCK, board→HW): board acknowledges shutdown; its
	// final statistics ride along in BoardCycle/SWTick.
	MTFinishAck
	// MTInterrupt (INT, HW→board): interrupt line IRQ fired.
	MTInterrupt
	// MTDataWrite (DATA, either direction): Words written at Addr.
	MTDataWrite
	// MTDataReadReq (DATA, board→HW): read Count words at Addr.
	MTDataReadReq
	// MTDataReadResp (DATA, HW→board): response to a read request.
	MTDataReadResp
	// MTSessionData (any channel, either direction): the resilient-session
	// envelope (see session.go). Raw holds a complete inner message body
	// (type byte + payload), Seq its per-channel sequence number and Crc a
	// CRC-32 over sequence number and body so corruption is detected at
	// the session layer instead of poisoning the endpoint.
	MTSessionData
	// MTSessionAck (any channel, reverse direction): cumulative receipt —
	// every envelope with sequence number ≤ Seq arrived on this channel.
	MTSessionAck
	// MTSessionNack (any channel, reverse direction): a sequence gap was
	// observed; retransmit every unacknowledged envelope from Seq up.
	MTSessionNack
	// MTHeartbeat (CLOCK, either direction): liveness probe carrying a
	// monotonic counter in Seq; never sequenced, never retransmitted.
	MTHeartbeat
	// MTAttach (any channel, board→listener, immediately after the hello):
	// the multiplexing handshake of a farm listener. Version repeats the
	// protocol version; Seq carries the session ID the connection belongs
	// to, so one listener can route many boards to their runs (see
	// MuxListener). A plain Listener never sees this frame.
	MTAttach
	// MTBatch (any channel, either direction): a coalescing envelope that
	// carries every message of one quantum-boundary flush as a single
	// frame. Count holds the number of inner messages; Raw holds their
	// concatenated bodies, each prefixed by its u32 length (the same
	// framing the plain codec uses, minus the outer prefix). One batch
	// costs one transport send — and, above a session layer, one
	// sequenced/CRC'd/acknowledged envelope — instead of Count of them.
	// See BatchTransport.
	MTBatch
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MTHello:
		return "hello"
	case MTClockGrant:
		return "clock-grant"
	case MTTimeAck:
		return "time-ack"
	case MTFinish:
		return "finish"
	case MTFinishAck:
		return "finish-ack"
	case MTInterrupt:
		return "interrupt"
	case MTDataWrite:
		return "data-write"
	case MTDataReadReq:
		return "data-read-req"
	case MTDataReadResp:
		return "data-read-resp"
	case MTSessionData:
		return "session-data"
	case MTSessionAck:
		return "session-ack"
	case MTSessionNack:
		return "session-nack"
	case MTHeartbeat:
		return "heartbeat"
	case MTAttach:
		return "attach"
	case MTBatch:
		return "batch"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Msg is one protocol message. It is a tagged union: which fields are
// meaningful depends on Type (see the MsgType constants). A single struct
// keeps the hot path allocation-free and the wire codec simple.
type Msg struct {
	Type MsgType

	// DATA-channel fields.
	Addr  uint32
	Count uint32
	Words []uint32

	// INT-channel fields.
	IRQ uint8

	// CLOCK-channel fields.
	Ticks      uint64
	HWCycle    uint64
	BoardCycle uint64
	SWTick     uint64
	DataCount  uint32
	IntCount   uint32
	// Lookahead is the adaptive-synchronization bound (see hwendpoint.go).
	// On MTClockGrant it is the simulator's promise, in HDL clock cycles
	// from the grant, before which the device will raise no interrupt; on
	// MTTimeAck it is the board's promise, in grant ticks from the ack,
	// before which no thread can become runnable. NoLookahead (0) makes no
	// promise; UnboundedLookahead means no event is scheduled at all.
	Lookahead uint64

	// Hello fields.
	Version uint16

	// Session-layer fields (MTSessionData/Ack/Nack, MTHeartbeat).
	Seq uint64 // per-channel sequence / cumulative ack / heartbeat counter
	Crc uint32 // CRC-32 (IEEE): over Seq+Raw for envelopes, Seq+type for control frames
	Raw []byte // complete inner message body (type byte + payload)

	// Pool bookkeeping: when decodeBody (or a pooled producer such as the
	// batch flusher) draws Words/Raw from the payload pools, these hold the
	// pool wrappers so Release can return the buffers without allocating.
	// They ride along when a Msg is copied by value; exactly one copy — the
	// terminal consumer — may call Release. See the Transport ownership
	// contract in transport.go.
	wordsRef *[]uint32
	rawRef   *[]byte
}

// Release returns the message's pooled payload buffers (if any) to the
// codec pools and clears the payload fields. It must be called at most
// once per decoded message, by whichever holder consumes it last; after
// Release the Words/Raw contents may be overwritten by a later decode.
// Calling Release on a message without pooled payloads is a no-op, so
// terminal consumers can call it unconditionally.
func (m *Msg) Release() {
	if m.wordsRef != nil {
		*m.wordsRef = m.Words[:0]
		wordsPool.Put(m.wordsRef)
		m.wordsRef = nil
		m.Words = nil
	}
	if m.rawRef != nil {
		*m.rawRef = m.Raw[:0]
		rawPool.Put(m.rawRef)
		m.rawRef = nil
		m.Raw = nil
	}
}

// disown severs the copy's claim on any pooled payloads without returning
// them (they fall to the garbage collector instead). Used by layers that
// duplicate a message (chaos fault injection) so two copies can never
// double-release one buffer, and by tests comparing messages field-wise.
func (m *Msg) disown() {
	m.wordsRef = nil
	m.rawRef = nil
}

// clonePayloads returns a copy of m that owns independent, unpooled payload
// slices. Fault-injection layers use it when a frame is duplicated or
// stashed for later, so no second copy aliases a pooled buffer (or a
// session body that an ack may recycle) the first copy will release.
func clonePayloads(m Msg) Msg {
	m.disown()
	if m.Words != nil {
		m.Words = append([]uint32(nil), m.Words...)
	}
	if m.Raw != nil {
		m.Raw = append([]byte(nil), m.Raw...)
	}
	return m
}

// Lookahead sentinels (see Msg.Lookahead).
const (
	// NoLookahead promises nothing: an event may be imminent, so the
	// master must rendezvous at every TSync boundary.
	NoLookahead uint64 = 0
	// UnboundedLookahead reports that no future event is scheduled at
	// all on the promising side.
	UnboundedLookahead uint64 = math.MaxUint64
)

// MaxWords bounds the Words slice on the wire to keep a corrupted length
// prefix from allocating unbounded memory.
const MaxWords = 1 << 16

// maxFrameBody bounds the body of one frame on the wire. It is sized so a
// session envelope (17 bytes of header) can still carry the largest
// unwrapped message body (a MaxWords data-write).
const maxFrameBody = 4*(MaxWords+8) + 32

// maxBatchMsgs bounds the number of inner messages one MTBatch may carry
// on the wire, so a corrupted count cannot drive an allocation loop.
const maxBatchMsgs = 1 << 14

// bufPool recycles codec scratch buffers: every Encode/WireSize body
// build and every Decode frame read draws from it instead of allocating.
// decodeBody copies variable-length payloads (Words, Raw) out of the
// buffer into pooled payload buffers (see wordsPool/rawPool), so
// returning it after use is safe. A buffer grown for a large frame stays
// grown in the pool, so repeated large frames do not reallocate.
var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; bufPool.Put(b) }

// wordsPool / rawPool recycle variable-length message payloads: decodeBody
// draws from them instead of allocating per message, and Msg.Release
// returns them. Buffers grown for a large payload stay grown when
// recycled, so steady-state traffic converges to zero payload allocation.
var wordsPool = sync.Pool{
	New: func() any { s := make([]uint32, 0, 64); return &s },
}
var rawPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// getPooledWords returns a length-n words buffer and the pool wrapper to
// stash in Msg.wordsRef for release.
func getPooledWords(n int) ([]uint32, *[]uint32) {
	sp := wordsPool.Get().(*[]uint32)
	s := (*sp)[:0]
	if cap(s) < n {
		s = make([]uint32, n)
	} else {
		s = s[:n]
	}
	*sp = s
	return s, sp
}

// getPooledRaw returns a length-n byte buffer and its pool wrapper.
func getPooledRaw(n int) ([]byte, *[]byte) {
	bp := rawPool.Get().(*[]byte)
	b := (*bp)[:0]
	if cap(b) < n {
		b = make([]byte, n)
	} else {
		b = b[:n]
	}
	*bp = b
	return b, bp
}

// getPooledRawCap returns an empty byte buffer with at least capHint
// capacity for incremental building (the batch flusher), plus its wrapper.
func getPooledRawCap(capHint int) ([]byte, *[]byte) {
	bp := rawPool.Get().(*[]byte)
	b := (*bp)[:0]
	if cap(b) < capHint {
		b = make([]byte, 0, capHint)
	}
	*bp = b
	return b, bp
}

// Encode writes the message in its framed wire format:
//
//	uint32  payload length (bytes, excluding this prefix)
//	uint8   type
//	...     type-specific payload, little-endian
func (m *Msg) Encode(w io.Writer) error {
	bp := getBuf()
	body := m.appendBody(append(*bp, 0, 0, 0, 0))
	binary.LittleEndian.PutUint32(body[:4], uint32(len(body)-4))
	_, err := w.Write(body)
	*bp = body
	putBuf(bp)
	return err
}

// appendBody appends the unframed body (starting with the type byte) to b.
func (m *Msg) appendBody(b []byte) []byte {
	b = append(b, byte(m.Type))
	le := binary.LittleEndian
	switch m.Type {
	case MTHello:
		b = le.AppendUint16(b, m.Version)
	case MTClockGrant:
		b = le.AppendUint64(b, m.Ticks)
		b = le.AppendUint64(b, m.HWCycle)
		b = le.AppendUint64(b, m.Lookahead)
		b = le.AppendUint32(b, m.DataCount)
		b = le.AppendUint32(b, m.IntCount)
	case MTTimeAck, MTFinishAck:
		b = le.AppendUint64(b, m.BoardCycle)
		b = le.AppendUint64(b, m.SWTick)
		b = le.AppendUint64(b, m.Lookahead)
		b = le.AppendUint32(b, m.DataCount)
	case MTFinish:
		b = le.AppendUint64(b, m.HWCycle)
	case MTInterrupt:
		b = append(b, m.IRQ)
	case MTDataWrite, MTDataReadResp:
		b = le.AppendUint32(b, m.Addr)
		b = le.AppendUint32(b, uint32(len(m.Words)))
		for _, w := range m.Words {
			b = le.AppendUint32(b, w)
		}
	case MTDataReadReq:
		b = le.AppendUint32(b, m.Addr)
		b = le.AppendUint32(b, m.Count)
	case MTSessionData:
		b = le.AppendUint64(b, m.Seq)
		b = le.AppendUint32(b, m.Crc)
		b = le.AppendUint32(b, uint32(len(m.Raw)))
		b = append(b, m.Raw...)
	case MTSessionAck, MTSessionNack, MTHeartbeat:
		b = le.AppendUint64(b, m.Seq)
		b = le.AppendUint32(b, m.Crc)
	case MTAttach:
		b = le.AppendUint16(b, m.Version)
		b = le.AppendUint64(b, m.Seq)
	case MTBatch:
		b = le.AppendUint32(b, m.Count)
		b = append(b, m.Raw...)
	default:
		panic(fmt.Sprintf("cosim: encode of unknown message type %d", m.Type))
	}
	return b
}

// Decode reads one framed message from r.
func Decode(r io.Reader) (Msg, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Msg{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrameBody {
		return Msg{}, fmt.Errorf("cosim: implausible frame length %d", n)
	}
	bp := getBuf()
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	body := (*bp)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		putBuf(bp)
		return Msg{}, fmt.Errorf("cosim: truncated frame: %w", err)
	}
	m, err := decodeBody(body)
	*bp = body
	putBuf(bp)
	return m, err
}

func decodeBody(body []byte) (Msg, error) {
	le := binary.LittleEndian
	m := Msg{Type: MsgType(body[0])}
	p := body[1:]
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("cosim: short %v message: %d bytes left, need %d", m.Type, len(p), n)
		}
		return nil
	}
	switch m.Type {
	case MTHello:
		if err := need(2); err != nil {
			return m, err
		}
		m.Version = le.Uint16(p)
	case MTClockGrant:
		if err := need(32); err != nil {
			return m, err
		}
		m.Ticks = le.Uint64(p)
		m.HWCycle = le.Uint64(p[8:])
		m.Lookahead = le.Uint64(p[16:])
		m.DataCount = le.Uint32(p[24:])
		m.IntCount = le.Uint32(p[28:])
	case MTTimeAck, MTFinishAck:
		if err := need(28); err != nil {
			return m, err
		}
		m.BoardCycle = le.Uint64(p)
		m.SWTick = le.Uint64(p[8:])
		m.Lookahead = le.Uint64(p[16:])
		m.DataCount = le.Uint32(p[24:])
	case MTFinish:
		if err := need(8); err != nil {
			return m, err
		}
		m.HWCycle = le.Uint64(p)
	case MTInterrupt:
		if err := need(1); err != nil {
			return m, err
		}
		m.IRQ = p[0]
	case MTDataWrite, MTDataReadResp:
		if err := need(8); err != nil {
			return m, err
		}
		m.Addr = le.Uint32(p)
		count := le.Uint32(p[4:])
		if count > MaxWords {
			return m, fmt.Errorf("cosim: %v with %d words exceeds limit", m.Type, count)
		}
		if err := need(8 + 4*int(count)); err != nil {
			return m, err
		}
		m.Words, m.wordsRef = getPooledWords(int(count))
		for i := range m.Words {
			m.Words[i] = le.Uint32(p[8+4*i:])
		}
	case MTDataReadReq:
		if err := need(8); err != nil {
			return m, err
		}
		m.Addr = le.Uint32(p)
		m.Count = le.Uint32(p[4:])
	case MTSessionData:
		if err := need(16); err != nil {
			return m, err
		}
		m.Seq = le.Uint64(p)
		m.Crc = le.Uint32(p[8:])
		rawLen := le.Uint32(p[12:])
		if rawLen > maxFrameBody {
			return m, fmt.Errorf("cosim: session envelope of %d bytes exceeds limit", rawLen)
		}
		if err := need(16 + int(rawLen)); err != nil {
			return m, err
		}
		m.Raw, m.rawRef = getPooledRaw(int(rawLen))
		copy(m.Raw, p[16:16+rawLen])
	case MTSessionAck, MTSessionNack, MTHeartbeat:
		if err := need(12); err != nil {
			return m, err
		}
		m.Seq = le.Uint64(p)
		m.Crc = le.Uint32(p[8:])
	case MTAttach:
		if err := need(10); err != nil {
			return m, err
		}
		m.Version = le.Uint16(p)
		m.Seq = le.Uint64(p[2:])
	case MTBatch:
		if err := need(4); err != nil {
			return m, err
		}
		m.Count = le.Uint32(p)
		if m.Count > maxBatchMsgs {
			return m, fmt.Errorf("cosim: batch of %d messages exceeds limit", m.Count)
		}
		// The inner framing is opaque here; splitBatch validates it when
		// the batch is opened, so a corrupted batch fails loudly there
		// instead of poisoning the codec's closure property.
		m.Raw, m.rawRef = getPooledRaw(len(p) - 4)
		copy(m.Raw, p[4:])
	default:
		return m, fmt.Errorf("cosim: unknown message type %d", body[0])
	}
	return m, nil
}

// WireSize returns the number of bytes the message occupies on the wire,
// including the frame prefix; used by the metrics counters.
func (m *Msg) WireSize() int {
	bp := getBuf()
	*bp = m.appendBody(append(*bp, 0, 0, 0, 0))
	n := len(*bp)
	putBuf(bp)
	return n
}
