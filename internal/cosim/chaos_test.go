package cosim

import (
	"testing"
	"time"
)

// chaosEcho pushes n addressed data-writes through a chaos wrapper and
// returns the Addr sequence the peer observed.
func chaosEcho(t *testing.T, sc Scenario, n int) ([]uint32, ChaosStats) {
	t.Helper()
	a, b := NewInProcPair(4 * n)
	ct := NewChaosTransport(a, sc)
	for i := 0; i < n; i++ {
		if err := ct.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint32
	for {
		m, ok, err := b.TryRecv(ChanData)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, m.Addr)
	}
	stats := ct.ChaosStats()
	ct.Close()
	return got, stats
}

// TestChaosDeterministicSchedule: the same seed injures the same frames
// and yields the same delivered sequence, run after run.
func TestChaosDeterministicSchedule(t *testing.T) {
	sc := UniformScenario(424242, FaultProfile{Drop: 0.1, Duplicate: 0.1, Reorder: 0.1, Corrupt: 0.1, Truncate: 0.05})
	first, fstats := chaosEcho(t, sc, 500)
	second, sstats := chaosEcho(t, sc, 500)
	if fstats != sstats {
		t.Fatalf("same seed, different fault counts:\n%+v\n%+v", fstats, sstats)
	}
	if fstats.Injured() == 0 {
		t.Fatal("scenario injected no faults at these probabilities")
	}
	if len(first) != len(second) {
		t.Fatalf("delivered %d vs %d frames", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("frame %d: %d vs %d", i, first[i], second[i])
		}
	}
	other, _ := chaosEcho(t, sc.WithSeed(7), 500)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if first[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 500-frame schedule")
	}
}

// TestChaosDropAll: probability 1 drops silently lose every frame.
func TestChaosDropAll(t *testing.T) {
	got, stats := chaosEcho(t, UniformScenario(1, FaultProfile{Drop: 1}), 50)
	if len(got) != 0 {
		t.Fatalf("%d frames leaked through Drop=1", len(got))
	}
	if stats.Dropped != 50 {
		t.Fatalf("Dropped = %d, want 50", stats.Dropped)
	}
}

// TestChaosDuplicateAll: every frame arrives exactly twice, in order.
func TestChaosDuplicateAll(t *testing.T) {
	got, stats := chaosEcho(t, UniformScenario(2, FaultProfile{Duplicate: 1}), 20)
	if len(got) != 40 {
		t.Fatalf("delivered %d frames, want 40", len(got))
	}
	for i := 0; i < 20; i++ {
		if got[2*i] != uint32(i) || got[2*i+1] != uint32(i) {
			t.Fatalf("frame %d not duplicated in place: %v", i, got)
		}
	}
	if stats.Duplicated != 20 {
		t.Fatalf("Duplicated = %d, want 20", stats.Duplicated)
	}
}

// TestChaosReorderSwapsAdjacent: with Reorder=1, frames are delivered in
// pairwise-swapped order (1,0,3,2,...): each stashed frame is released
// right after its successor.
func TestChaosReorderSwapsAdjacent(t *testing.T) {
	got, stats := chaosEcho(t, UniformScenario(3, FaultProfile{Reorder: 1}), 10)
	if len(got) != 10 {
		t.Fatalf("delivered %d frames, want 10 (held frame must be flushed)", len(got))
	}
	want := []uint32{1, 0, 3, 2, 5, 4, 7, 6, 9, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if stats.Reordered != 5 {
		t.Fatalf("Reordered = %d, want 5", stats.Reordered)
	}
}

// TestChaosCloseFlushesHeldFrame: a frame stashed by a reorder fault with
// no successor is emitted at Close, not lost.
func TestChaosCloseFlushesHeldFrame(t *testing.T) {
	a, b := NewInProcPair(8)
	ct := NewChaosTransport(a, UniformScenario(4, FaultProfile{Reorder: 1}))
	if err := ct.Send(ChanInt, Msg{Type: MTInterrupt, IRQ: 5}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.TryRecv(ChanInt); ok {
		t.Fatal("stashed frame visible before Close")
	}
	ct.Close()
	m, ok, err := b.TryRecv(ChanInt)
	if err != nil || !ok || m.IRQ != 5 {
		t.Fatalf("held frame not flushed: %+v %v %v", m, ok, err)
	}
}

// TestChaosTamperNeverPanics: corruption and truncation over every
// message type must never panic, whatever they produce.
func TestChaosTamperNeverPanics(t *testing.T) {
	msgs := []Msg{
		{Type: MTHello, Version: 1},
		{Type: MTClockGrant, Ticks: 100, HWCycle: 1, DataCount: 1, IntCount: 1},
		{Type: MTTimeAck, BoardCycle: 5, SWTick: 2, DataCount: 1},
		{Type: MTFinish, HWCycle: 9},
		{Type: MTInterrupt, IRQ: 3},
		{Type: MTDataWrite, Addr: 1, Words: []uint32{1, 2, 3, 4}},
		{Type: MTDataReadReq, Addr: 2, Count: 8},
		{Type: MTSessionData, Seq: 1, Crc: 2, Raw: []byte{7, 1, 2, 3, 4}},
		{Type: MTHeartbeat, Seq: 11},
	}
	a, _ := NewInProcPair(1024)
	ct := NewChaosTransport(a, UniformScenario(5, FaultProfile{Corrupt: 0.7, Truncate: 0.7}))
	for round := 0; round < 50; round++ {
		for _, m := range msgs {
			if err := ct.Send(ChanClock, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	ct.Close()
}

// TestChaosDelayIsWallClockOnly: a delay fault stalls the send but loses
// nothing.
func TestChaosDelayIsWallClockOnly(t *testing.T) {
	a, b := NewInProcPair(64)
	ct := NewChaosTransport(a, UniformScenario(6, FaultProfile{Delay: 1, MaxDelay: 100 * time.Microsecond}))
	for i := 0; i < 10; i++ {
		if err := ct.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := b.Recv(ChanData)
		if err != nil || m.Addr != uint32(i) {
			t.Fatalf("frame %d: %+v %v", i, m, err)
		}
	}
	if st := ct.ChaosStats(); st.Delayed != 10 {
		t.Fatalf("Delayed = %d, want 10", st.Delayed)
	}
	ct.Close()
}
