package cosim

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

func udsPath(t *testing.T) string {
	t.Helper()
	// Unix socket paths are length-limited (~104 bytes); keep them short.
	return filepath.Join(t.TempDir(), "s")
}

func TestUDSTransportConformance(t *testing.T) {
	ln, err := ListenUDS(udsPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if ln.Network() != "unix" {
		t.Fatalf("Network() = %q, want unix", ln.Network())
	}
	var hw Transport
	accepted := make(chan error, 1)
	go func() {
		var err error
		hw, err = ln.Accept()
		accepted <- err
	}()
	board, err := DialUDS(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	if got := BaseTransportName(board); got != "unix" {
		t.Fatalf("BaseTransportName = %q, want unix", got)
	}
	exerciseTransport(t, hw, board)
}

// TestUDSMuxSession proves the mux attach handshake is transport-agnostic:
// the same Expect/DialSession rendezvous the farm uses over TCP works
// unchanged over a unix listener.
func TestUDSMuxSession(t *testing.T) {
	ln, err := ListenMuxUDS(udsPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if ln.Network() != "unix" {
		t.Fatalf("Network() = %q, want unix", ln.Network())
	}

	const sessionID = 42
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Register the session before dialing: an attach for an unknown ID is
	// rejected, so Expect must happen-before the dial (the farm follows
	// the same order).
	p, err := ln.Expect(sessionID)
	if err != nil {
		t.Fatal(err)
	}
	hwc := make(chan Transport, 1)
	errc := make(chan error, 1)
	go func() {
		tr, err := p.Accept(ctx)
		hwc <- tr
		errc <- err
	}()
	board, err := DialUDSSession(ln.Addr(), sessionID)
	if err != nil {
		t.Fatal(err)
	}
	hw := <-hwc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	exerciseTransport(t, hw, board)
}

// TestUDSMuxRejectsUnknownSession mirrors the TCP rejection contract.
func TestUDSMuxRejectsUnknownSession(t *testing.T) {
	ln, err := ListenMuxUDS(udsPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := DialUDSSession(ln.Addr(), 999); err == nil {
		t.Fatal("attach to unregistered session succeeded")
	}
}

// TestUDSRedialer exercises the session layer's redial hook over UDS.
func TestUDSRedialer(t *testing.T) {
	ln, err := ListenUDS(udsPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err != nil {
			t.Error(err)
			accepted <- nil
			return
		}
		accepted <- tr
	}()
	board, err := UDSRedialer(ln.Addr())()
	if err != nil {
		t.Fatal(err)
	}
	hw := <-accepted
	if hw == nil {
		t.FailNow()
	}
	defer hw.Close()
	defer board.Close()
	if err := board.Send(ChanClock, Msg{Type: MTTimeAck, SWTick: 3}); err != nil {
		t.Fatal(err)
	}
	if m, err := hw.Recv(ChanClock); err != nil || m.SWTick != 3 {
		t.Fatalf("recv: %+v %v", m, err)
	}
}
