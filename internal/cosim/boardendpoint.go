package cosim

import (
	"fmt"
	"time"
)

// Grant is one quantum handed to the board: the number of virtual ticks to
// run plus the cross-traffic the simulator emitted during its own quantum,
// already drained from the DATA and INT channels in deterministic order.
type Grant struct {
	// Ticks is the number of virtual ticks the board may advance.
	Ticks uint64
	// HWCycle is the simulator's cycle count at the grant.
	HWCycle uint64
	// Writes are simulator-initiated register writes (posted data).
	Writes []RegBlock
	// ReadResps answer read requests the board posted in an earlier
	// quantum.
	ReadResps []RegBlock
	// Interrupts lists interrupt lines raised during the quantum, in
	// delivery order.
	Interrupts []uint8
	// Lookahead is the simulated device's interrupt lookahead promise in
	// HDL cycles (see Msg.Lookahead); informational on the board side.
	Lookahead uint64
	// Finished is true when the simulator ended the co-simulation; all
	// other fields are zero.
	Finished bool
}

// RegBlock is a contiguous block of register words starting at Addr.
type RegBlock struct {
	Addr  uint32
	Words []uint32
}

// BoardEndpoint is the board side of the link: it consumes clock grants,
// exposes the tunnelled device traffic, and reports board time back. It is
// driven by the board's co-simulation loop (see package board).
type BoardEndpoint struct {
	tr       Transport
	dataSent uint32
	m        Metrics
	lv       *live // optional live instruments, set by Observe
}

// NewBoardEndpoint wraps a transport for the board side.
func NewBoardEndpoint(tr Transport) *BoardEndpoint {
	ep := &BoardEndpoint{tr: tr}
	ep.m.Start()
	return ep
}

// Metrics returns the link counters, harvesting resilience/chaos
// counters from the transport stack.
func (ep *BoardEndpoint) Metrics() *Metrics {
	ep.m.harvestLink(ep.tr)
	return &ep.m
}

// WaitGrant blocks until the simulator issues the next quantum (or ends
// the run), draining exactly the cross-traffic the grant announces.
func (ep *BoardEndpoint) WaitGrant() (Grant, error) {
	t0 := time.Now() //cosim:wallclock -- sync-wait metric measures host blocking, not simulated time
	m, err := ep.tr.Recv(ChanClock)
	wait := time.Since(t0) //cosim:wallclock -- sync-wait metric measures host blocking, not simulated time
	ep.m.SyncWait += wait
	if err != nil {
		return Grant{}, err
	}
	switch m.Type {
	case MTFinish:
		g := Grant{Finished: true, HWCycle: m.HWCycle}
		m.Release() // control frame: Release is the contract's no-op
		return g, nil
	case MTClockGrant:
	default:
		// A stray frame on CLOCK may carry pooled payloads; recycle them
		// before surfacing the protocol error.
		m.Release()
		return Grant{}, fmt.Errorf("cosim: expected clock-grant on CLOCK, got %v", m.Type)
	}
	g := Grant{Ticks: m.Ticks, HWCycle: m.HWCycle, Lookahead: m.Lookahead}
	m.Release() // grant frame carries only scalars
	ep.m.SyncEvents++
	ep.m.TicksGranted += g.Ticks
	ep.lv.observeSync(wait)
	ep.lv.addTicks(g.Ticks)
	for i := uint32(0); i < m.DataCount; i++ {
		dm, err := ep.tr.Recv(ChanData) //cosim:owns -- dm.Words is retained in the returned Grant; the board consumes it within the quantum
		if err != nil {
			return Grant{}, err
		}
		ep.m.DataRecv++
		ep.lv.incDataRecv()
		blk := RegBlock{Addr: dm.Addr, Words: dm.Words}
		switch dm.Type {
		case MTDataWrite:
			g.Writes = append(g.Writes, blk)
		case MTDataReadResp:
			g.ReadResps = append(g.ReadResps, blk)
		default:
			dm.Release()
			return Grant{}, fmt.Errorf("cosim: unexpected %v from simulator on DATA", dm.Type)
		}
	}
	for i := uint32(0); i < m.IntCount; i++ {
		im, err := ep.tr.Recv(ChanInt)
		if err != nil {
			return Grant{}, err
		}
		if im.Type != MTInterrupt {
			im.Release()
			return Grant{}, fmt.Errorf("cosim: expected interrupt on INT, got %v", im.Type)
		}
		ep.m.IntRecv++
		ep.lv.incIntRecv()
		g.Interrupts = append(g.Interrupts, im.IRQ)
		im.Release() // interrupt frame carries only scalars
	}
	return g, nil
}

// PostWrite sends a board-initiated register write to the simulated
// device. It is delivered to the simulator at the next quantum boundary.
func (ep *BoardEndpoint) PostWrite(addr uint32, words []uint32) error {
	m := Msg{Type: MTDataWrite, Addr: addr, Words: words}
	ep.dataSent++
	ep.m.DataSent++
	ep.m.BytesSent += uint64(m.WireSize())
	ep.lv.incDataSent()
	ep.lv.addBytes(uint64(m.WireSize()))
	return ep.tr.Send(ChanData, m)
}

// PostReadReq sends a split-phase read request for count words at addr;
// the response arrives in a later Grant's ReadResps (one-to-two quantum
// latency, like any posted bus bridge).
func (ep *BoardEndpoint) PostReadReq(addr, count uint32) error {
	m := Msg{Type: MTDataReadReq, Addr: addr, Count: count}
	ep.dataSent++
	ep.m.DataSent++
	ep.m.BytesSent += uint64(m.WireSize())
	ep.lv.incDataSent()
	ep.lv.addBytes(uint64(m.WireSize()))
	return ep.tr.Send(ChanData, m)
}

// Ack reports that the board finished its quantum at the given local cycle
// and software tick. It carries the count of DATA messages the board sent
// during the quantum so the simulator drains exactly those, plus the
// board's lookahead promise in grant ticks (pass NoLookahead when the
// board does not negotiate adaptive synchronization).
func (ep *BoardEndpoint) Ack(boardCycle, swTick, lookahead uint64) error {
	m := Msg{
		Type:       MTTimeAck,
		BoardCycle: boardCycle,
		SWTick:     swTick,
		Lookahead:  lookahead,
		DataCount:  ep.dataSent,
	}
	ep.dataSent = 0
	ep.m.BytesSent += uint64(m.WireSize())
	ep.lv.addBytes(uint64(m.WireSize()))
	return ep.tr.Send(ChanClock, m)
}

// FinishAck acknowledges shutdown, reporting final board time.
func (ep *BoardEndpoint) FinishAck(boardCycle, swTick uint64) error {
	defer ep.m.StopClock()
	m := Msg{Type: MTFinishAck, BoardCycle: boardCycle, SWTick: swTick}
	ep.m.BytesSent += uint64(m.WireSize())
	ep.lv.addBytes(uint64(m.WireSize()))
	return ep.tr.Send(ChanClock, m)
}
