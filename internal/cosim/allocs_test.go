package cosim

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// This file pins the steady-state allocation budgets of the wire hot path.
// Every budget is an average over testing.AllocsPerRun with pools warmed
// first: the gates catch a regression back to per-message allocation (a
// dropped Release, a pooled path reverted to make/append) while leaving
// headroom for runtime noise. Budgets are per *run* of the closure, not
// per message; each test states its per-message arithmetic.

// warmPools primes the codec pools so the measured region reuses buffers
// instead of paying the pool's first-fill allocations.
func warmPools(f func(), n int) {
	for i := 0; i < n; i++ {
		f()
	}
}

// releaseSink is a Transport bottom that consumes messages the way the
// TCP writer does: payloads are released, nothing is retained.
type releaseSink struct{ sent int }

func (s *releaseSink) Send(ch Channel, m Msg) error {
	s.sent++
	m.Release()
	return nil
}
func (s *releaseSink) Recv(ch Channel) (Msg, error)          { return Msg{}, ErrClosed }
func (s *releaseSink) TryRecv(ch Channel) (Msg, bool, error) { return Msg{}, false, nil }
func (s *releaseSink) Close() error                          { return nil }

// TestAllocsMsgRoundTrip gates the codec itself: one Encode→Decode→Release
// of a payload-carrying DATA write must reuse pooled buffers end to end.
func TestAllocsMsgRoundTrip(t *testing.T) {
	m := Msg{Type: MTDataWrite, Addr: 0x40, Words: []uint32{1, 2, 3, 4, 5, 6, 7, 8}}
	var buf bytes.Buffer
	var rd bytes.Reader
	roundTrip := func() {
		buf.Reset()
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		rd.Reset(buf.Bytes())
		got, err := Decode(&rd)
		if err != nil {
			t.Fatal(err)
		}
		got.Release()
	}
	warmPools(roundTrip, 16)
	budget := 1.0 * raceAllocSlack // steady state is 0; 1 tolerates runtime noise
	if avg := testing.AllocsPerRun(200, roundTrip); avg > budget {
		t.Errorf("Msg Encode/Decode/Release: %.2f allocs/op, budget %.1f", avg, budget)
	}
}

// TestAllocsBatchFlush gates the coalescing layer: buffering a quantum's
// DATA messages and flushing them as one MTBatch into a releasing bottom
// must reuse the pooled flush body and the pending-slice backing.
func TestAllocsBatchFlush(t *testing.T) {
	sink := &releaseSink{}
	tx := NewBatchTransport(sink)
	words := []uint32{0xaa, 0xbb, 0xcc}
	flush := func() {
		for i := 0; i < 4; i++ {
			if err := tx.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i), Words: words}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Send(ChanClock, Msg{Type: MTClockGrant, Ticks: 100}); err != nil {
			t.Fatal(err)
		}
	}
	warmPools(flush, 16)
	// 5 sends per run (4 buffered + 1 batch + 1 clock on the wire).
	budget := 2.0 * raceAllocSlack
	if avg := testing.AllocsPerRun(200, flush); avg > budget {
		t.Errorf("batch flush: %.2f allocs/run, budget %.1f", avg, budget)
	}
}

// TestAllocsSessionSendRecv gates the resilience layer's steady state over
// an in-process link: envelope bodies come from the session's ack-recycled
// freelist, decoded payloads from the codec pools. The budget is per run
// of one send + one recv + one release, with the returning ack amortized
// across the run (ack handling is asynchronous, so individual runs jitter;
// the average must stay flat).
func TestAllocsSessionSendRecv(t *testing.T) {
	sa, sb := sessionPair(DefaultSessionConfig(), nil)
	defer sa.Close()
	defer sb.Close()

	// A run is one quantum-shaped burst: 8 sends then 8 receives, as the
	// endpoints drive the link. Acks for the burst recycle envelope bodies
	// while the user goroutine blocks in Recv, so the next burst's sends
	// reuse them — strict one-message ping-pong would instead always race
	// the ack home and miss the freelist.
	const burst = 8
	words := []uint32{1, 2, 3, 4}
	step := func() {
		// Stand-in for the endpoint's per-quantum simulation work: gives
		// the asynchronous ack pipeline time to recycle envelope bodies,
		// as it has during a real run.
		time.Sleep(200 * time.Microsecond)
		for i := 0; i < burst; i++ {
			if err := sa.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i), Words: words}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < burst; i++ {
			m, err := sb.Recv(ChanData)
			if err != nil {
				t.Fatal(err)
			}
			m.Release()
		}
	}
	warmPools(step, 32)
	// Steady state measures ≲1 alloc per message (scheduling jitter in the
	// ack pipeline); the pre-pooling path cost ~6 per message.
	budget := 2.0 * burst * raceAllocSlack
	if avg := testing.AllocsPerRun(200, step); avg > budget {
		t.Errorf("session burst(%d) send/recv/release: %.2f allocs/run, budget %.1f", burst, avg, budget)
	}
}

// TestPoolHammerConcurrentSessions drives eight independent session links
// concurrently through the shared codec pools, with chaos injuring half of
// them. Run under -race this is the pooling layer's data-race detector:
// a double Release or a buffer handed to two owners shows up either as a
// race report or as a corrupted payload here.
func TestPoolHammerConcurrentSessions(t *testing.T) {
	const (
		sessions = 8
		msgs     = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			var chaos *Scenario
			if s%2 == 1 {
				sc := UniformScenario(int64(1000+s), FaultProfile{
					Drop: 0.05, Duplicate: 0.05, Reorder: 0.05, Corrupt: 0.05,
				})
				chaos = &sc
			}
			cfg := DefaultSessionConfig()
			cfg.RetransmitTimeout = 5 * time.Millisecond
			sa, sb := sessionPair(cfg, chaos)
			defer sa.Close()
			defer sb.Close()

			done := make(chan error, 1)
			go func() {
				for i := 0; i < msgs; i++ {
					m, err := RecvTimeout(sb, ChanData, 20*time.Second)
					if err != nil {
						done <- fmt.Errorf("session %d recv %d: %w", s, i, err)
						return
					}
					if m.Addr != uint32(i) || len(m.Words) != 4 || m.Words[0] != uint32(s)<<16|uint32(i) {
						done <- fmt.Errorf("session %d msg %d corrupted: %+v", s, i, m)
						return
					}
					m.Release()
				}
				done <- nil
			}()
			for i := 0; i < msgs; i++ {
				w, ref := getPooledWords(4)
				w[0], w[1], w[2], w[3] = uint32(s)<<16|uint32(i), uint32(i), ^uint32(i), 0x5a5a5a5a
				m := Msg{Type: MTDataWrite, Addr: uint32(i), Words: w}
				m.wordsRef = ref
				if err := sa.Send(ChanData, m); err != nil {
					errs <- fmt.Errorf("session %d send %d: %w", s, i, err)
					return
				}
			}
			if err := <-done; err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
