//go:build unix

package cosim

import (
	"os"
	"syscall"
)

// shmMapSupported gates the shared-memory constructors; see
// shm_map_stub.go for the fallback.
const shmMapSupported = true

// shmMapFile maps size bytes of f shared and read-write, returning the
// segment and its unmapper.
func shmMapFile(f *os.File, size int) ([]byte, func() error, error) {
	seg, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return seg, func() error { return syscall.Munmap(seg) }, nil
}
