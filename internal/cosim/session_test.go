package cosim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// sessionPair wraps both sides of an in-process link in sessions, with an
// optional chaos layer injuring each direction independently.
func sessionPair(cfg SessionConfig, chaos *Scenario) (*SessionTransport, *SessionTransport) {
	a, b := NewInProcPair(tcpInboxDepth)
	if chaos != nil {
		a = NewChaosTransport(a, *chaos)
		b = NewChaosTransport(b, chaos.WithSeed(chaos.Seed+1))
	}
	return NewSessionTransport(a, cfg), NewSessionTransport(b, cfg)
}

// recvOne pulls the next message on ch or fails the test.
func recvOne(t *testing.T, s *SessionTransport, ch Channel) Msg {
	t.Helper()
	m, err := RecvTimeout(s, ch, 10*time.Second)
	if err != nil {
		t.Fatalf("%v channel: %v", ch, err)
	}
	return m
}

// TestSessionCleanPassThrough: over a fault-free link the session is an
// invisible FIFO on every channel, in both directions.
func TestSessionCleanPassThrough(t *testing.T) {
	sa, sb := sessionPair(DefaultSessionConfig(), nil)
	defer sa.Close()
	defer sb.Close()

	if _, ok, err := sb.TryRecv(ChanData); ok || err != nil {
		t.Fatalf("TryRecv on idle link: ok=%v err=%v", ok, err)
	}
	for i := 0; i < 50; i++ {
		if err := sa.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sa.Send(ChanInt, Msg{Type: MTInterrupt, IRQ: 7}); err != nil {
		t.Fatal(err)
	}
	if err := sb.Send(ChanClock, Msg{Type: MTTimeAck, BoardCycle: 11, SWTick: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if m := recvOne(t, sb, ChanData); m.Type != MTDataWrite || m.Addr != uint32(i) {
			t.Fatalf("frame %d mangled: %+v", i, m)
		}
	}
	if m := recvOne(t, sb, ChanInt); m.IRQ != 7 {
		t.Fatalf("interrupt mangled: %+v", m)
	}
	if m := recvOne(t, sa, ChanClock); m.BoardCycle != 11 || m.SWTick != 2 {
		t.Fatalf("time ack mangled: %+v", m)
	}
	if _, err := RecvTimeout(sa, ChanData, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recvTimeout on idle channel: %v, want ErrTimeout", err)
	}
	ls := sa.LinkStats()
	if ls.Retransmits != 0 || ls.CrcDropped != 0 || ls.GapsSeen != 0 {
		t.Fatalf("clean link accumulated damage: %+v", ls)
	}
}

// TestSessionRecoversUnderChaos: with the link dropping, duplicating,
// reordering, and corrupting frames in both directions, every message is
// still delivered exactly once, in order, on every channel.
func TestSessionRecoversUnderChaos(t *testing.T) {
	cfg := DefaultSessionConfig()
	cfg.RetransmitTimeout = 15 * time.Millisecond
	chaos := UniformScenario(31337, FaultProfile{Drop: 0.1, Duplicate: 0.08, Reorder: 0.08, Corrupt: 0.06, Truncate: 0.04})
	sa, sb := sessionPair(cfg, &chaos)
	defer sa.Close()
	defer sb.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := sa.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i)}); err != nil {
			t.Fatal(err)
		}
		if err := sb.Send(ChanClock, Msg{Type: MTTimeAck, BoardCycle: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if m := recvOne(t, sb, ChanData); m.Addr != uint32(i) {
			t.Fatalf("DATA frame %d out of order: %+v", i, m)
		}
		if m := recvOne(t, sa, ChanClock); m.BoardCycle != uint64(i) {
			t.Fatalf("CLOCK frame %d out of order: %+v", i, m)
		}
	}
	la, lb := sa.LinkStats(), sb.LinkStats()
	if la.FramesInjured == 0 || lb.FramesInjured == 0 {
		t.Fatalf("chaos injected nothing: %+v / %+v", la, lb)
	}
	if la.Retransmits+lb.Retransmits == 0 {
		t.Fatalf("no retransmissions despite %d injuries", la.FramesInjured+lb.FramesInjured)
	}
}

// TestSessionDedupCorruptionAndAliens exercises the receive paths against
// a hand-driven raw peer: duplicate envelopes are dropped, CRC-failing
// envelopes are nacked, and non-session frames never reach the inbox.
func TestSessionDedupCorruptionAndAliens(t *testing.T) {
	a, b := NewInProcPair(64)
	s := NewSessionTransport(a, DefaultSessionConfig())
	defer s.Close()

	body := (&Msg{Type: MTDataWrite, Addr: 0x44, Words: []uint32{9}}).appendBody(nil)
	env := Msg{Type: MTSessionData, Seq: 1, Crc: sessionCRC(1, body), Raw: body}
	for i := 0; i < 3; i++ { // one delivery, two duplicates
		if err := b.Send(ChanData, env); err != nil {
			t.Fatal(err)
		}
	}
	bad := env
	bad.Seq = 2
	bad.Crc ^= 0xdeadbeef // corrupt: CRC no longer matches
	if err := b.Send(ChanData, bad); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(ChanData, Msg{Type: MTDataWrite, Addr: 0x99}); err != nil {
		t.Fatal(err) // alien: plain frame on a session link
	}

	if m := recvOne(t, s, ChanData); m.Addr != 0x44 {
		t.Fatalf("delivered %+v", m)
	}
	if _, err := RecvTimeout(s, ChanData, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dup/corrupt/alien leaked into the inbox: %v", err)
	}

	// The peer must have received a valid ack for seq 1 and a nack for the
	// corrupted frame; every control frame must carry a valid CRC.
	sawAck, sawNack := false, false
	for {
		m, ok, err := b.TryRecv(ChanData)
		if err != nil || !ok {
			break
		}
		switch m.Type {
		case MTSessionAck:
			if !validControl(m) {
				t.Fatalf("ack with bad CRC: %+v", m)
			}
			if m.Seq == 1 {
				sawAck = true
			}
		case MTSessionNack:
			if !validControl(m) {
				t.Fatalf("nack with bad CRC: %+v", m)
			}
			sawNack = true
		}
	}
	if !sawAck || !sawNack {
		t.Fatalf("peer control traffic incomplete: ack=%v nack=%v", sawAck, sawNack)
	}
	ls := s.LinkStats()
	if ls.DupsDropped != 2 || ls.CrcDropped == 0 || ls.AliensDropped != 1 {
		t.Fatalf("stats %+v, want DupsDropped=2 CrcDropped>0 AliensDropped=1", ls)
	}
}

// TestSessionHeartbeatDetectsDeadPeer: a silent peer is declared dead
// after HeartbeatMiss silent intervals, bounding the hang.
func TestSessionHeartbeatDetectsDeadPeer(t *testing.T) {
	a, _ := NewInProcPair(64)
	cfg := DefaultSessionConfig()
	cfg.HeartbeatInterval = 5 * time.Millisecond
	cfg.HeartbeatMiss = 3
	s := NewSessionTransport(a, cfg)
	defer s.Close()

	_, err := RecvTimeout(s, ChanClock, 5*time.Second)
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
	ls := s.LinkStats()
	if ls.HeartbeatsSent == 0 || ls.HeartbeatsMissed == 0 {
		t.Fatalf("watchdog fired without counting: %+v", ls)
	}
}

// TestSessionRedialGivesUp: when every redial attempt fails, the session
// reports a terminal error instead of hanging.
func TestSessionRedialGivesUp(t *testing.T) {
	a, _ := NewInProcPair(8)
	cfg := DefaultSessionConfig()
	cfg.Redial = func() (Transport, error) { return nil, errors.New("cable cut") }
	cfg.MaxRedials = 2
	cfg.RedialBackoff = time.Millisecond
	s := NewSessionTransport(a, cfg)
	defer s.Close()

	a.Close() // sever the inner link; the supervisor must give up redialing
	_, err := RecvTimeout(s, ChanData, 5*time.Second)
	if err == nil || errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want terminal redial failure", err)
	}
	if !strings.Contains(err.Error(), "redial failed") {
		t.Fatalf("err = %v, want redial-failure cause", err)
	}
}

// TestSessionTCPReconnectMidRun is the acceptance scenario: a full
// HW/board rendezvous over TCP survives a forced mid-run disconnect. The
// sessions redial (simulator side re-accepts, board side re-dials),
// replay unacked frames, and the run completes with identical semantics;
// the reconnect is visible in the endpoint metrics.
func TestSessionTCPReconnectMidRun(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan Transport, 1)
	go func() {
		tr, aerr := ln.Accept()
		if aerr != nil {
			close(acc)
			return
		}
		acc <- tr
	}()
	boardRaw, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hwRaw, ok := <-acc
	if !ok {
		t.Fatal("accept failed")
	}

	cfg := DefaultSessionConfig()
	cfg.RetransmitTimeout = 20 * time.Millisecond
	hwCfg := cfg
	hwCfg.Redial = ln.Reaccept()
	boardCfg := cfg
	boardCfg.Redial = Redialer(ln.Addr())
	hwS := NewSessionTransport(hwRaw, hwCfg)
	boardS := NewSessionTransport(boardRaw, boardCfg)
	defer hwS.Close()
	defer boardS.Close()

	hw := NewHWEndpoint(hwS, SyncAlternating)
	hw.AckTimeout = 10 * time.Second // fail instead of hanging if recovery breaks
	board := NewBoardEndpoint(boardS)
	result := scriptedBoard(t, board, true)

	const quanta = 20
	var echoes int
	for q := 1; q <= quanta; q++ {
		if q == quanta/2 {
			boardRaw.Close() // sever all three TCP channels mid-run
		}
		if _, err := hw.Sync(10, uint64(10*q)); err != nil {
			t.Fatalf("quantum %d: %v", q, err)
		}
		echoes += len(hw.PollData())
	}
	if err := hw.Finish(10 * quanta); err != nil {
		t.Fatal(err)
	}
	echoes += len(hw.PollData())

	r := <-result
	if r.err != nil {
		t.Fatalf("board loop: %v", r.err)
	}
	if len(r.grants) != quanta {
		t.Fatalf("board saw %d grants, want %d", len(r.grants), quanta)
	}
	if echoes != quanta {
		t.Fatalf("HW saw %d board echoes, want %d", echoes, quanta)
	}
	cycle, tick := hw.BoardTime()
	if cycle != uint64(10*quanta) || tick != quanta {
		t.Fatalf("board time %d/%d, want %d/%d", cycle, tick, 10*quanta, quanta)
	}
	link := hw.Metrics().Link
	if hwS.LinkStats().Reconnects+boardS.LinkStats().Reconnects == 0 {
		t.Fatal("disconnect was not observed by either session")
	}
	if link.Retransmits+boardS.LinkStats().Retransmits == 0 {
		t.Fatal("reconnect replayed nothing")
	}
}
