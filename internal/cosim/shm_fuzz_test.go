package cosim

import (
	"errors"
	"testing"
)

// FuzzShmRing drives the raw ring verbs with a fuzz-chosen op script —
// pushes of varying sizes and channels, pops checked against a FIFO
// model, and byte-level corruption of the data region (torn length
// prefixes, stray wrap markers) — and proves the ring never panics,
// never hangs, never reorders, and reports corruption as a terminal
// error rather than garbage silently decoded as fresh input... or at
// worst as a decode error one layer up; what it must never do is loop
// or deliver frames out of order while the ring is intact.
func FuzzShmRing(f *testing.F) {
	// Seeds: plain push/pop traffic, a wraparound-heavy script, a
	// full-ring grind, and corruption hitting a length prefix.
	f.Add([]byte{0, 10, 1, 0, 0, 60, 1, 0, 2, 5, 1, 0, 1, 0})
	f.Add([]byte{0, 255, 0, 255, 1, 0, 0, 255, 1, 0, 0, 255, 1, 0, 0, 255, 1, 0})
	f.Add([]byte{0, 200, 0, 200, 0, 200, 0, 200, 0, 200, 0, 200, 0, 200, 0, 200})
	f.Add([]byte{0, 30, 3, 1, 1, 0, 1, 0})
	f.Add([]byte{0, 30, 3, 0, 1, 0})

	f.Fuzz(func(t *testing.T, script []byte) {
		const ringBytes = 4096 // small ring: wrap and full are easy to reach
		seg := newHeapShmSegment(ringBytes)
		r, _ := segmentRings(seg, ringBytes)

		type rec struct {
			ch    Channel
			addr  uint32
			words int
		}
		var model []rec
		corrupted := false
		poisoned := false // ring reported a terminal error; verbs stay safe but unchecked
		seq := uint32(0)

		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i]%4, script[i+1]
			switch op {
			case 0, 2: // push: data write with arg words, or tiny control frame
				var m Msg
				var want rec
				ch := Channel(arg) % numChannels
				if op == 0 {
					m = Msg{Type: MTDataWrite, Addr: seq, Words: make([]uint32, int(arg)%200)}
					for j := range m.Words {
						m.Words[j] = seq + uint32(j)
					}
					want = rec{ch: ch, addr: seq, words: len(m.Words)}
				} else {
					m = Msg{Type: MTClockGrant, Ticks: uint64(arg), HWCycle: uint64(seq)}
					want = rec{ch: ch, addr: seq, words: -1}
				}
				_, _, err := r.tryPush(ch, &m)
				switch {
				case err == nil:
					if !corrupted {
						model = append(model, want)
					}
					seq++
				case errors.Is(err, errShmFull):
					// Backpressure is a valid outcome; the model is unchanged.
				default:
					t.Fatalf("tryPush: unexpected error %v", err)
				}
			case 1: // pop, checked against the model while the ring is intact
				ch, body, newTail, err := r.tryPop()
				if poisoned {
					// After a terminal error anything but a panic/hang is
					// acceptable; just keep the verbs exercised.
					if err == nil {
						r.hdr.tail.Store(newTail)
					}
					continue
				}
				if err != nil {
					if errors.Is(err, errShmEmpty) {
						if !corrupted && len(model) != 0 {
							t.Fatalf("ring empty but model holds %d records", len(model))
						}
						continue
					}
					if !corrupted {
						t.Fatalf("tryPop: terminal error on intact ring: %v", err)
					}
					poisoned = true
					continue
				}
				m, derr := decodeBody(body)
				r.hdr.tail.Store(newTail)
				if derr != nil {
					m.Release()
					if !corrupted {
						t.Fatalf("decode error on intact ring: %v", derr)
					}
					poisoned = true
					continue
				}
				if !corrupted {
					if len(model) == 0 {
						m.Release()
						t.Fatal("pop succeeded with empty model")
					}
					want := model[0]
					model = model[1:]
					if ch != want.ch {
						m.Release()
						t.Fatalf("channel %d, want %d", ch, want.ch)
					}
					if want.words >= 0 {
						if m.Type != MTDataWrite || m.Addr != want.addr || len(m.Words) != want.words {
							m.Release()
							t.Fatalf("got type=%d addr=%d words=%d, want addr=%d words=%d",
								m.Type, m.Addr, len(m.Words), want.addr, want.words)
						}
					} else if m.Type != MTClockGrant || m.HWCycle != uint64(want.addr) {
						m.Release()
						t.Fatalf("got type=%d hwcycle=%d, want clock grant %d", m.Type, m.HWCycle, want.addr)
					}
				}
				m.Release()
			case 3: // corrupt one byte of the data region (torn prefix, stray marker)
				off := shmDataOff + (int(arg)*131)%ringBytes
				seg[off] ^= 0xFF
				corrupted = true
			}
		}

		// Whatever the script did, a bounded drain must terminate: every
		// pop either yields a record, errShmEmpty, or a terminal error.
		for i := 0; i < 64; i++ {
			_, body, newTail, err := r.tryPop()
			if err != nil {
				break
			}
			if m, derr := decodeBody(body); derr == nil {
				m.Release()
			}
			r.hdr.tail.Store(newTail)
		}
	})
}
