package cosim

import "net"

// dialRaw opens one raw channel connection with an arbitrary tag byte and
// hello version, for handshake failure tests.
func dialRaw(addr string, tag byte, version uint16) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := c.Write([]byte{tag}); err != nil {
		c.Close()
		return nil, err
	}
	hello := Msg{Type: MTHello, Version: version}
	if err := hello.Encode(c); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}
