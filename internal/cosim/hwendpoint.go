package cosim

import (
	"fmt"
	"time"

	"repro/internal/hdlsim"
)

// SyncMode selects how the quantum rendezvous is scheduled in wall-clock
// time. Both modes exchange cross-traffic at quantum boundaries only, so
// both are deterministic; they differ in latency/overlap (see below).
type SyncMode int

const (
	// SyncAlternating is the reference mode: at every boundary the
	// simulator grants the board a quantum and blocks until the board's
	// time acknowledgement. HW quantum k+1 therefore observes board data
	// from quantum k: one quantum of board→HW latency, zero HW→board.
	SyncAlternating SyncMode = iota
	// SyncPipelined overlaps the two sides: the grant for quantum k is
	// sent immediately, but the simulator only waits for the *previous*
	// acknowledgement before simulating on. Board quantum k runs
	// concurrently with HW quantum k+1, cutting wall-clock time at the
	// cost of one extra quantum of board→HW latency (HW quantum k+2 sees
	// board quantum k). This mirrors the paper's concurrent intra-quantum
	// execution while remaining deterministic.
	SyncPipelined
)

// String implements fmt.Stringer.
func (m SyncMode) String() string {
	if m == SyncPipelined {
		return "pipelined"
	}
	return "alternating"
}

// HWEndpoint is the hardware-simulator side of the link. It implements
// hdlsim.DriverEndpoint, so it can be handed directly to
// Simulator.DriverSimulate.
type HWEndpoint struct {
	tr   Transport
	mode SyncMode

	// Counters of messages sent since the last grant; the next grant
	// carries them so the board drains exactly that many.
	dataSent uint32
	intSent  uint32

	// visible holds board DATA messages released to the kernel at the
	// last consumed acknowledgement.
	visible []hdlsim.DataMsg

	// outstanding acknowledgements not yet consumed (0 or 1).
	outstanding int

	lastBoardCycle uint64
	lastSWTick     uint64

	// lastLookahead is the board's promise from the most recent
	// acknowledgement: how many grant ticks can elapse before anything
	// becomes runnable board-side (see Msg.Lookahead).
	lastLookahead uint64
	// localLookahead is the device's interrupt-lookahead promise carried
	// on the next grant, set by the driver loop via SetLocalLookahead.
	localLookahead uint64

	// AckTimeout bounds every wait for board traffic (acknowledgements
	// and announced data). Zero blocks indefinitely. Set it to detect a
	// crashed or wedged board instead of hanging the simulation.
	AckTimeout time.Duration

	m  Metrics
	lv *live // optional live instruments, set by Observe
}

// NewHWEndpoint wraps a transport for the simulator side.
func NewHWEndpoint(tr Transport, mode SyncMode) *HWEndpoint {
	ep := &HWEndpoint{tr: tr, mode: mode}
	ep.m.Start()
	return ep
}

// Metrics returns the link counters (valid after the run), harvesting
// resilience/chaos counters from the transport stack.
func (ep *HWEndpoint) Metrics() *Metrics {
	ep.m.harvestLink(ep.tr)
	return &ep.m
}

// BoardTime returns the board's local cycle and software tick from the
// most recently consumed acknowledgement.
func (ep *HWEndpoint) BoardTime() (cycle, swTick uint64) {
	return ep.lastBoardCycle, ep.lastSWTick
}

// PollData implements hdlsim.DriverEndpoint: it returns the board messages
// released at the last quantum boundary. Per-cycle polling inside a
// quantum returns them on the first call and nothing afterwards.
func (ep *HWEndpoint) PollData() []hdlsim.DataMsg {
	if len(ep.visible) == 0 {
		return nil
	}
	out := ep.visible
	ep.visible = nil
	return out
}

// SendData implements hdlsim.DriverEndpoint.
func (ep *HWEndpoint) SendData(d hdlsim.DataMsg) error {
	m := Msg{Addr: d.Addr, Count: d.Count, Words: d.Words}
	switch d.Kind {
	case hdlsim.DataWrite:
		m.Type = MTDataWrite
	case hdlsim.DataReadResp:
		m.Type = MTDataReadResp
	default:
		return fmt.Errorf("cosim: simulator cannot send %v on DATA", d.Kind)
	}
	ep.dataSent++
	ep.m.DataSent++
	ep.m.BytesSent += uint64(m.WireSize())
	ep.lv.incDataSent()
	ep.lv.addBytes(uint64(m.WireSize()))
	return ep.tr.Send(ChanData, m)
}

// SendInterrupt implements hdlsim.DriverEndpoint.
func (ep *HWEndpoint) SendInterrupt(irq uint8) error {
	m := Msg{Type: MTInterrupt, IRQ: irq}
	ep.intSent++
	ep.m.IntSent++
	ep.m.BytesSent += uint64(m.WireSize())
	ep.lv.incIntSent()
	ep.lv.addBytes(uint64(m.WireSize()))
	return ep.tr.Send(ChanInt, m)
}

// sendGrant emits the CLOCK-port grant for the quantum just simulated,
// carrying the drain counts of the traffic sent during it.
func (ep *HWEndpoint) sendGrant(ticks, hwCycle uint64) error {
	grant := Msg{
		Type:      MTClockGrant,
		Ticks:     ticks,
		HWCycle:   hwCycle,
		Lookahead: ep.localLookahead,
		DataCount: ep.dataSent,
		IntCount:  ep.intSent,
	}
	ep.dataSent, ep.intSent = 0, 0
	ep.m.BytesSent += uint64(grant.WireSize())
	ep.lv.addBytes(uint64(grant.WireSize()))
	if err := ep.tr.Send(ChanClock, grant); err != nil {
		return err
	}
	ep.outstanding++
	ep.m.SyncEvents++
	ep.m.TicksGranted += ticks
	ep.lv.addTicks(ticks)
	return nil
}

// Sync implements hdlsim.DriverEndpoint: the CLOCK-port rendezvous.
func (ep *HWEndpoint) Sync(ticks, hwCycle uint64) (uint64, error) {
	if err := ep.sendGrant(ticks, hwCycle); err != nil {
		return 0, err
	}
	if ep.mode == SyncPipelined {
		// Pipelined: keep one grant in flight; on the first sync there is
		// nothing to wait for yet.
		if ep.outstanding <= 1 {
			return ep.lastBoardCycle, nil
		}
	}
	if ep.outstanding > 0 {
		if err := ep.consumeAck(); err != nil {
			return 0, err
		}
	}
	return ep.lastBoardCycle, nil
}

// consumeAck blocks for one TimeAck and drains the DATA messages it
// announces into the visible buffer.
func (ep *HWEndpoint) consumeAck() error {
	t0 := time.Now() //cosim:wallclock -- sync-wait metric measures host blocking, not simulated time
	ack, err := RecvTimeout(ep.tr, ChanClock, ep.AckTimeout)
	wait := time.Since(t0) //cosim:wallclock -- sync-wait metric measures host blocking, not simulated time
	ep.m.SyncWait += wait
	ep.lv.observeSync(wait)
	if err != nil {
		return fmt.Errorf("cosim: waiting for board acknowledgement: %w", err)
	}
	if ack.Type != MTTimeAck {
		// A stray frame on CLOCK may carry pooled payloads; recycle them
		// before surfacing the protocol error.
		ack.Release()
		return fmt.Errorf("cosim: expected time-ack on CLOCK, got %v", ack.Type)
	}
	ep.lastBoardCycle = ack.BoardCycle
	ep.lastSWTick = ack.SWTick
	ep.lastLookahead = ack.Lookahead
	ack.Release() // ack frame carries only scalars
	ep.outstanding--
	for i := uint32(0); i < ack.DataCount; i++ {
		dm, err := RecvTimeout(ep.tr, ChanData, ep.AckTimeout)
		if err != nil {
			return err
		}
		ep.m.DataRecv++
		ep.lv.incDataRecv()
		conv, err := toKernelMsg(dm)
		if err != nil {
			return err
		}
		ep.visible = append(ep.visible, conv)
	}
	return nil
}

// TrafficPending implements hdlsim.AdaptiveEndpoint: it reports whether
// the simulator emitted any DATA or INT traffic since the last grant.
// The adaptive driver loop must rendezvous at the next boundary when it
// does, whatever the negotiated lookaheads said — the a-posteriori check
// is what keeps elongation exactly equivalent to plain stepping.
func (ep *HWEndpoint) TrafficPending() bool {
	return ep.dataSent > 0 || ep.intSent > 0
}

// PeerLookahead implements hdlsim.AdaptiveEndpoint: the board's promise,
// in grant ticks, from the most recent acknowledgement. In pipelined
// mode the newest acknowledgement describes a quantum that is already
// one grant stale, so the promise cannot be trusted and the endpoint
// reports zero, disabling elongation.
func (ep *HWEndpoint) PeerLookahead() uint64 {
	if ep.mode == SyncPipelined {
		return NoLookahead
	}
	return ep.lastLookahead
}

// SetLocalLookahead implements hdlsim.AdaptiveEndpoint: it records the
// device's interrupt-lookahead promise (HDL cycles) to carry on the next
// grant.
func (ep *HWEndpoint) SetLocalLookahead(cycles uint64) {
	ep.localLookahead = cycles
}

func toKernelMsg(m Msg) (hdlsim.DataMsg, error) {
	switch m.Type {
	case MTDataWrite:
		return hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: m.Addr, Words: m.Words}, nil
	case MTDataReadReq:
		return hdlsim.DataMsg{Kind: hdlsim.DataReadReq, Addr: m.Addr, Count: m.Count}, nil
	default:
		return hdlsim.DataMsg{}, fmt.Errorf("cosim: unexpected %v from board on DATA", m.Type)
	}
}

// Finish implements hdlsim.DriverEndpoint: it drains any outstanding
// acknowledgement, tells the board the simulation is over, and waits for
// its final statistics.
func (ep *HWEndpoint) Finish(hwCycle uint64) error {
	// Stop the wall clock on every exit path so Metrics.Wall is valid
	// even when the shutdown handshake fails.
	defer ep.m.StopClock()
	for ep.outstanding > 0 {
		if err := ep.consumeAck(); err != nil {
			return err
		}
	}
	fin := Msg{Type: MTFinish, HWCycle: hwCycle}
	ep.m.BytesSent += uint64(fin.WireSize())
	ep.lv.addBytes(uint64(fin.WireSize()))
	if err := ep.tr.Send(ChanClock, fin); err != nil {
		return err
	}
	ack, err := RecvTimeout(ep.tr, ChanClock, ep.AckTimeout)
	if err != nil {
		return err
	}
	if ack.Type != MTFinishAck {
		ack.Release()
		return fmt.Errorf("cosim: expected finish-ack, got %v", ack.Type)
	}
	ep.lastBoardCycle = ack.BoardCycle
	ep.lastSWTick = ack.SWTick
	ack.Release() // finish-ack carries only scalars
	return nil
}

var _ hdlsim.DriverEndpoint = (*HWEndpoint)(nil)
