package cosim

import (
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestHarvestLinkWalksWrappers is the regression test for the
// wrapper-swallows-link-stats bug: a TraceTransport (or any decorator)
// around a SessionTransport must not zero Metrics.Link, because the
// harvest walks the Unwrap chain to the first stats-bearing layer.
func TestHarvestLinkWalksWrappers(t *testing.T) {
	a, b := NewInProcPair(8)
	sa := NewSessionTransport(a, SessionConfig{})
	sb := NewSessionTransport(b, SessionConfig{})
	defer sa.Close()
	defer sb.Close()
	sa.retransmits.Add(3)
	sa.dupsDropped.Add(2)

	var direct Metrics
	direct.harvestLink(sa)
	if direct.Link.Retransmits != 3 || direct.Link.DupsDropped != 2 {
		t.Fatalf("direct harvest lost counters: %+v", direct.Link)
	}

	traced := NewTraceTransport(sa, io.Discard)
	var one Metrics
	one.harvestLink(traced)
	if one.Link.Retransmits != 3 || one.Link.DupsDropped != 2 {
		t.Fatalf("trace-wrapped harvest lost counters: %+v", one.Link)
	}

	// Two decorator layers deep.
	var two Metrics
	two.harvestLink(NewDelayTransport(traced, 0))
	if two.Link.Retransmits != 3 || two.Link.DupsDropped != 2 {
		t.Fatalf("delay+trace-wrapped harvest lost counters: %+v", two.Link)
	}

	// A chain with no stats-bearing layer harvests nothing and leaves
	// Link zero.
	var none Metrics
	none.harvestLink(NewTraceTransport(b2t(t), io.Discard))
	if none.Link != (LinkStats{}) {
		t.Fatalf("statless chain produced counters: %+v", none.Link)
	}
}

// b2t returns a fresh plain transport for the no-stats case.
func b2t(t *testing.T) Transport {
	t.Helper()
	x, _ := NewInProcPair(1)
	return x
}

// TestEndpointObservePublishesLive runs a small co-simulation exchange
// by hand and checks that the obs registry sees rendezvous histogram
// counts and channel counters advance.
func TestEndpointObservePublishesLive(t *testing.T) {
	hwT, boardT := NewInProcPair(64)
	defer hwT.Close()
	defer boardT.Close()

	reg := obs.NewRegistry()
	hw := NewHWEndpoint(hwT, SyncAlternating)
	hw.Observe(reg)
	bep := NewBoardEndpoint(boardT)
	bep.Observe(reg)

	boardDone := make(chan error, 1)
	go func() {
		boardDone <- func() error {
			for {
				g, err := bep.WaitGrant()
				if err != nil {
					return err
				}
				if g.Finished {
					return bep.FinishAck(1, 1)
				}
				if err := bep.PostWrite(0x10, []uint32{1, 2}); err != nil {
					return err
				}
				if err := bep.Ack(g.HWCycle, 1, NoLookahead); err != nil {
					return err
				}
			}
		}()
	}()

	const quanta = 5
	for i := uint64(1); i <= quanta; i++ {
		if _, err := hw.Sync(100, i*100); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Finish(quanta * 100); err != nil {
		t.Fatal(err)
	}
	if err := <-boardDone; err != nil {
		t.Fatal(err)
	}

	hwHist := reg.Histogram(obs.Name(MetricSyncRendezvous, "side", "hw"), nil)
	if hwHist.Count() != quanta {
		t.Fatalf("hw rendezvous count = %d, want %d", hwHist.Count(), quanta)
	}
	boardHist := reg.Histogram(obs.Name(MetricSyncRendezvous, "side", "board"), nil)
	if boardHist.Count() != quanta {
		t.Fatalf("board rendezvous count = %d, want %d", boardHist.Count(), quanta)
	}
	sent := reg.Counter(obs.Name(MetricMsgs, "side", "board", "chan", "data", "dir", "sent"))
	if sent.Value() != quanta {
		t.Fatalf("board data sent = %d, want %d", sent.Value(), quanta)
	}
	recv := reg.Counter(obs.Name(MetricMsgs, "side", "hw", "chan", "data", "dir", "recv"))
	if recv.Value() != quanta {
		t.Fatalf("hw data recv = %d, want %d", recv.Value(), quanta)
	}
	if got := reg.Counter(obs.Name(MetricBytesSent, "side", "hw")).Value(); got == 0 {
		t.Fatal("hw bytes sent not published")
	}
	text := reg.String()
	if !strings.Contains(text, `cosim_sync_rendezvous_seconds_count{side="hw"} 5`) {
		t.Fatalf("exposition missing hw rendezvous count:\n%s", text)
	}
}

// TestSessionObserveIncremental checks that session resilience counters
// are visible through the registry while the session is alive, without
// any endpoint-level harvest.
func TestSessionObserveIncremental(t *testing.T) {
	a, b := NewInProcPair(8)
	sa := NewSessionTransport(a, SessionConfig{})
	sb := NewSessionTransport(b, SessionConfig{})
	defer sa.Close()
	defer sb.Close()

	reg := obs.NewRegistry()
	// Observe through a decorator: the stack walk must find the session.
	observeTransportStack(reg, NewTraceTransport(sa, io.Discard), "hw")

	sa.retransmits.Add(7)
	snap := reg.Snapshot()
	if got := snap.Counters[obs.Name("cosim_session_retransmits_total", "side", "hw")]; got != 7 {
		t.Fatalf("live retransmits = %d, want 7", got)
	}
	if err := sa.Send(ChanData, Msg{Type: MTDataWrite, Addr: 1, Words: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Recv(ChanData); err != nil {
		t.Fatal(err)
	}
	// The frame may be acked (and pruned) at any moment; just read the
	// gauge to prove it is wired and non-negative.
	name := obs.Name("cosim_session_unacked_frames", "side", "hw")
	if _, ok := reg.Snapshot().Gauges[name]; !ok {
		t.Fatalf("unacked gauge %q not registered", name)
	}
}
