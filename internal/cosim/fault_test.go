package cosim

import (
	"net"
	"testing"

	"repro/internal/hdlsim"
)

// TestGarbageOnChannelSurfacesError: a peer that writes junk bytes must
// produce a decode error on Recv, not a hang or a panic.
func TestGarbageOnChannelSurfacesError(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- tr
	}()
	// A well-formed handshake on all three channels, then garbage on DATA.
	var conns [3]net.Conn
	for ch := 0; ch < 3; ch++ {
		c, err := dialRaw(ln.Addr(), byte(ch), ProtocolVersion)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[ch] = c
	}
	hw, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	defer hw.Close()
	if _, err := conns[ChanData].Write([]byte{0xff, 0xff, 0xff, 0xff, 0x00}); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Recv(ChanData); err == nil {
		t.Fatal("garbage frame decoded successfully")
	}
}

// TestWrongMessageOnClockChannel: protocol-state errors (a data-write
// arriving on CLOCK where an ack is expected) must surface cleanly.
func TestWrongMessageOnClockChannel(t *testing.T) {
	hwT, boardT := NewInProcPair(8)
	hw := NewHWEndpoint(hwT, SyncAlternating)
	go func() {
		// Misbehaving board: answers the grant with a data-write on CLOCK.
		if _, err := boardT.Recv(ChanClock); err != nil {
			return
		}
		boardT.Send(ChanClock, Msg{Type: MTDataWrite, Addr: 1})
	}()
	if _, err := hw.Sync(10, 10); err == nil {
		t.Fatal("wrong CLOCK message type accepted as ack")
	}
	hwT.Close()
}

// TestAckAnnouncesMoreDataThanSent: a count mismatch must not deadlock
// forever when the transport closes underneath.
func TestAckAnnouncesMoreDataThanSent(t *testing.T) {
	hwT, boardT := NewInProcPair(8)
	hw := NewHWEndpoint(hwT, SyncAlternating)
	go func() {
		if _, err := boardT.Recv(ChanClock); err != nil {
			return
		}
		// Claim 2 data messages but send none, then hang up.
		boardT.Send(ChanClock, Msg{Type: MTTimeAck, BoardCycle: 1, DataCount: 2})
		boardT.Close()
	}()
	if _, err := hw.Sync(10, 10); err == nil {
		t.Fatal("missing announced data not detected")
	}
}

// TestBoardSeesFinishAfterClose: closing the link mid-wait unblocks the
// board with an error rather than hanging.
func TestBoardSeesFinishAfterClose(t *testing.T) {
	hwT, boardT := NewInProcPair(8)
	be := NewBoardEndpoint(boardT)
	errc := make(chan error, 1)
	go func() {
		_, err := be.WaitGrant()
		errc <- err
	}()
	hwT.Close()
	if err := <-errc; err == nil {
		t.Fatal("WaitGrant returned nil after close")
	}
}

// TestUnexpectedDataTypeFromSimulator: the board must reject a read
// request arriving from the simulator side (protocol direction violation).
func TestUnexpectedDataTypeFromSimulator(t *testing.T) {
	hwT, boardT := NewInProcPair(8)
	be := NewBoardEndpoint(boardT)
	go func() {
		hwT.Send(ChanData, Msg{Type: MTDataReadReq, Addr: 1, Count: 1})
		hwT.Send(ChanClock, Msg{Type: MTClockGrant, Ticks: 1, DataCount: 1})
	}()
	if _, err := be.WaitGrant(); err == nil {
		t.Fatal("direction-violating DATA message accepted")
	}
	hwT.Close()
}

// TestHWEndpointRejectsWrongOutboundKind: the simulator side can only
// send writes and read responses on DATA.
func TestHWEndpointRejectsWrongOutboundKind(t *testing.T) {
	hwT, _ := NewInProcPair(8)
	hw := NewHWEndpoint(hwT, SyncAlternating)
	err := hw.SendData(hdlsim.DataMsg{Kind: hdlsim.DataReadReq, Addr: 1, Count: 1})
	if err == nil {
		t.Fatal("simulator-side read request accepted")
	}
	hwT.Close()
}

// TestDelayTransportPreservesSemantics: the latency wrapper must not
// reorder or drop messages.
func TestDelayTransportPreservesSemantics(t *testing.T) {
	a, b := NewInProcPair(64)
	da := NewDelayTransport(a, 0) // zero delay: pure pass-through
	for i := 0; i < 20; i++ {
		if err := da.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		m, err := b.Recv(ChanData)
		if err != nil || m.Addr != uint32(i) {
			t.Fatalf("message %d: %+v %v", i, m, err)
		}
	}
	if _, ok, err := da.TryRecv(ChanData); ok || err != nil {
		t.Fatalf("TryRecv through wrapper: %v %v", ok, err)
	}
	if err := da.Close(); err != nil {
		t.Fatal(err)
	}
}
