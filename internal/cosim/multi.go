package cosim

import (
	"fmt"

	"repro/internal/hdlsim"
)

// MultiHWEndpoint extends the framework from one board to several, the
// direction of the authors' multi-processor SoC co-simulation line
// (paper refs [19],[20]): a single simulated hardware model serves
// multiple boards, each behind its own three-channel link. DATA traffic
// is routed by address window, interrupts by explicit line assignment,
// and every quantum is granted to all boards *before* any acknowledgement
// is awaited, so the boards execute their quanta concurrently in
// wall-clock while remaining deterministic in simulated time (the same
// boundary-exchange argument as the single-board pipelined mode).
//
// It implements hdlsim.DriverEndpoint, so Simulator.DriverSimulate drives
// any number of boards unchanged.
type MultiHWEndpoint struct {
	members  []*HWEndpoint
	windows  []addrWindow
	irqRoute map[uint8]int
}

type addrWindow struct {
	base, size uint32
	member     int
}

// NewMultiHWEndpoint creates an empty fan-out endpoint.
func NewMultiHWEndpoint() *MultiHWEndpoint {
	return &MultiHWEndpoint{irqRoute: make(map[uint8]int)}
}

// AddBoard registers a board link and the word-address window whose DATA
// traffic belongs to it; it returns the board's index. Windows of
// different boards must not overlap.
func (m *MultiHWEndpoint) AddBoard(ep *HWEndpoint, base, size uint32) (int, error) {
	for _, w := range m.windows {
		if base < w.base+w.size && w.base < base+size {
			return 0, fmt.Errorf("cosim: board window [%#x,+%d) overlaps board %d", base, size, w.member)
		}
	}
	idx := len(m.members)
	m.members = append(m.members, ep)
	m.windows = append(m.windows, addrWindow{base: base, size: size, member: idx})
	return idx, nil
}

// RouteIRQ assigns an interrupt line to a board.
func (m *MultiHWEndpoint) RouteIRQ(irq uint8, boardIdx int) error {
	if boardIdx < 0 || boardIdx >= len(m.members) {
		return fmt.Errorf("cosim: no board %d", boardIdx)
	}
	m.irqRoute[irq] = boardIdx
	return nil
}

// Boards returns the number of attached boards.
func (m *MultiHWEndpoint) Boards() int { return len(m.members) }

// Member returns board i's underlying endpoint (for metrics/time).
func (m *MultiHWEndpoint) Member(i int) *HWEndpoint { return m.members[i] }

func (m *MultiHWEndpoint) memberFor(addr uint32) (*HWEndpoint, error) {
	for _, w := range m.windows {
		if addr >= w.base && addr < w.base+w.size {
			return m.members[w.member], nil
		}
	}
	return nil, fmt.Errorf("cosim: no board window covers address %#x", addr)
}

// PollData implements hdlsim.DriverEndpoint: released messages from every
// board, in board order (deterministic).
func (m *MultiHWEndpoint) PollData() []hdlsim.DataMsg {
	var out []hdlsim.DataMsg
	for _, ep := range m.members {
		out = append(out, ep.PollData()...)
	}
	return out
}

// SendData implements hdlsim.DriverEndpoint, routing by address window.
func (m *MultiHWEndpoint) SendData(d hdlsim.DataMsg) error {
	ep, err := m.memberFor(d.Addr)
	if err != nil {
		return err
	}
	return ep.SendData(d)
}

// SendInterrupt implements hdlsim.DriverEndpoint, routing by line.
func (m *MultiHWEndpoint) SendInterrupt(irq uint8) error {
	idx, ok := m.irqRoute[irq]
	if !ok {
		return fmt.Errorf("cosim: interrupt line %d not routed to any board", irq)
	}
	return m.members[idx].SendInterrupt(irq)
}

// Sync implements hdlsim.DriverEndpoint: grant all boards, then collect
// all acknowledgements. It returns the slowest board's local cycle.
func (m *MultiHWEndpoint) Sync(ticks, hwCycle uint64) (uint64, error) {
	if len(m.members) == 0 {
		return hwCycle, nil
	}
	for i, ep := range m.members {
		if err := ep.sendGrant(ticks, hwCycle); err != nil {
			return 0, fmt.Errorf("cosim: board %d grant: %w", i, err)
		}
	}
	var minCycle uint64
	for i, ep := range m.members {
		if err := ep.consumeAck(); err != nil {
			return 0, fmt.Errorf("cosim: board %d ack: %w", i, err)
		}
		if i == 0 || ep.lastBoardCycle < minCycle {
			minCycle = ep.lastBoardCycle
		}
	}
	return minCycle, nil
}

// Finish implements hdlsim.DriverEndpoint.
func (m *MultiHWEndpoint) Finish(hwCycle uint64) error {
	var first error
	for i, ep := range m.members {
		if err := ep.Finish(hwCycle); err != nil && first == nil {
			first = fmt.Errorf("cosim: board %d finish: %w", i, err)
		}
	}
	return first
}

var _ hdlsim.DriverEndpoint = (*MultiHWEndpoint)(nil)
