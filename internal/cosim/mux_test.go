package cosim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestMuxListenerRoutesSessions proves the attach handshake routes each
// board to the run that expected its session ID, with several boards
// dialing concurrently.
func TestMuxListenerRoutesSessions(t *testing.T) {
	ln, err := ListenMux("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const n = 5
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Register all sessions first, then let the boards race.
	pend := make([]*PendingSession, n)
	for i := range pend {
		p, err := ln.Expect(uint64(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		pend[i] = p
	}

	var wg sync.WaitGroup
	boards := make([]Transport, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := DialTCPSession(ln.Addr(), uint64(100+i))
			if err != nil {
				t.Errorf("dial session %d: %v", 100+i, err)
				return
			}
			boards[i] = tr
			// Identify ourselves over the routed link.
			if err := tr.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(100 + i), Words: []uint32{uint32(i)}}); err != nil {
				t.Errorf("send on session %d: %v", 100+i, err)
			}
		}(i)
	}

	for i := 0; i < n; i++ {
		hw, err := pend[i].Accept(ctx)
		if err != nil {
			t.Fatalf("accept session %d: %v", 100+i, err)
		}
		defer hw.Close()
		m, err := hw.Recv(ChanData)
		if err != nil {
			t.Fatalf("recv on session %d: %v", 100+i, err)
		}
		if m.Addr != uint32(100+i) {
			t.Fatalf("session %d received a frame for session %d: misrouted", 100+i, m.Addr)
		}
	}
	wg.Wait()
	for _, b := range boards {
		if b != nil {
			b.Close()
		}
	}
	if got := ln.Rejected(); got != 0 {
		t.Fatalf("listener rejected %d connections during clean routing", got)
	}
}

// TestMuxListenerRejectsUnknownSession proves a board attaching with an
// unregistered session ID is refused with a crisp error at dial time.
func TestMuxListenerRejectsUnknownSession(t *testing.T) {
	ln, err := ListenMux("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	if _, err := DialTCPSession(ln.Addr(), 0xdead); !errors.Is(err, ErrSessionRejected) {
		t.Fatalf("dial to unknown session: got %v, want ErrSessionRejected", err)
	}
	if ln.Rejected() == 0 {
		t.Fatal("listener did not count the rejection")
	}

	// A session registered under a different ID must be unaffected.
	p, err := ln.Expect(7)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		tr, err := DialTCPSession(ln.Addr(), 7)
		if err == nil {
			tr.Close()
		}
		done <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hw, err := p.Accept(ctx)
	if err != nil {
		t.Fatalf("accept after rejection: %v", err)
	}
	hw.Close()
	if err := <-done; err != nil {
		t.Fatalf("dial of registered session: %v", err)
	}
}

// TestMuxListenerDuplicateExpect proves the same session ID cannot be
// registered twice, and can be re-registered after the first handle is
// cancelled.
func TestMuxListenerDuplicateExpect(t *testing.T) {
	ln, err := ListenMux("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	p, err := ln.Expect(42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Expect(42); !errors.Is(err, ErrSessionExists) {
		t.Fatalf("duplicate Expect: got %v, want ErrSessionExists", err)
	}
	p.Cancel()
	p2, err := ln.Expect(42)
	if err != nil {
		t.Fatalf("re-Expect after Cancel: %v", err)
	}
	p2.Cancel()
}

// TestMuxAcceptContextCancel proves an accept abandoned by its context
// withdraws the registration, so a later board dial is rejected instead
// of leaking a half-session.
func TestMuxAcceptContextCancel(t *testing.T) {
	ln, err := ListenMux("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ln.AcceptSession(ctx, 9); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled accept: got %v", err)
	}
	if _, err := DialTCPSession(ln.Addr(), 9); !errors.Is(err, ErrSessionRejected) {
		t.Fatalf("dial after cancelled accept: got %v, want ErrSessionRejected", err)
	}
}

// TestMuxEndToEndEndpoints runs a miniature grant/ack exchange over a
// mux-routed transport to prove it behaves exactly like a DialTCP link.
func TestMuxEndToEndEndpoints(t *testing.T) {
	ln, err := ListenMux("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	boardDone := make(chan error, 1)
	go func() {
		tr, err := DialTCPSession(ln.Addr(), 1)
		if err != nil {
			boardDone <- err
			return
		}
		defer tr.Close()
		// One grant in, one ack out.
		g, err := tr.Recv(ChanClock)
		if err != nil {
			boardDone <- err
			return
		}
		if g.Type != MTClockGrant || g.Ticks != 10 {
			boardDone <- errors.New("bad grant")
			return
		}
		boardDone <- tr.Send(ChanClock, Msg{Type: MTTimeAck, BoardCycle: 10})
	}()

	hw, err := ln.AcceptSession(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hw.Close()
	if err := hw.Send(ChanClock, Msg{Type: MTClockGrant, Ticks: 10}); err != nil {
		t.Fatal(err)
	}
	ack, err := hw.Recv(ChanClock)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != MTTimeAck || ack.BoardCycle != 10 {
		t.Fatalf("bad ack: %+v", ack)
	}
	if err := <-boardDone; err != nil {
		t.Fatalf("board side: %v", err)
	}
}
