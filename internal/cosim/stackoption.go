package cosim

import "time"

// StackOption mutates a StackConfig: the single layer-configuration
// vocabulary shared by BuildStack call sites, router.Run
// (router.WithStackOptions), the farm, and federation links. Options are
// applied in order, so later options win — e.g. appending
// WithDelay(0) after WithDelay(2*time.Millisecond) yields a delay-free
// stack. An option configures ONE side of a link; the peer side derives
// its configuration with StackConfig.Peer as usual.
type StackOption func(*StackConfig)

// WithDelay adds a fixed wall-clock latency to every send (see
// DelayTransport); 0 removes a previously configured delay.
func WithDelay(d time.Duration) StackOption {
	return func(c *StackConfig) { c.Delay = d }
}

// WithChaos injects the seeded fault scenario beneath the session layer
// (see ChaosTransport). Pair it with WithSession, or the injured frames
// will poison the endpoint.
func WithChaos(s Scenario) StackOption {
	return func(c *StackConfig) { c.Chaos = &s }
}

// WithoutChaos removes a previously configured fault scenario.
func WithoutChaos() StackOption {
	return func(c *StackConfig) { c.Chaos = nil }
}

// WithSession stacks the resilience layer (see SessionTransport).
func WithSession(sc SessionConfig) StackOption {
	return func(c *StackConfig) { c.Session = &sc }
}

// WithBatching stacks the wire-frame coalescing layer topmost (see
// BatchTransport). Both sides of a link must enable it together.
func WithBatching() StackOption {
	return func(c *StackConfig) { c.Batch = true }
}

// NewStackConfig folds the options over a zero StackConfig.
func NewStackConfig(opts ...StackOption) StackConfig {
	var c StackConfig
	return c.With(opts...)
}

// With returns a copy of the configuration with the options applied on
// top (later wins).
func (c StackConfig) With(opts ...StackOption) StackConfig {
	for _, o := range opts {
		o(&c)
	}
	return c
}

// BuildStackWith is BuildStack over an option list.
func BuildStackWith(base Transport, opts ...StackOption) (Transport, func() error) {
	return BuildStack(base, NewStackConfig(opts...))
}
