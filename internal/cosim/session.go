package cosim

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPeerDead is returned by session transports when the heartbeat
// watchdog declares the peer unreachable.
var ErrPeerDead = errors.New("cosim: peer heartbeat lost")

// SessionConfig tunes the resilience layer. The zero value of every field
// selects the default from DefaultSessionConfig; heartbeats are opt-in
// (HeartbeatInterval 0 disables them).
type SessionConfig struct {
	// AckEvery is the cumulative-ack cadence in delivered frames.
	AckEvery int
	// RetransmitTimeout is the Go-Back-N retransmission timeout: unacked
	// envelopes older than this are re-sent.
	RetransmitTimeout time.Duration
	// HeartbeatInterval, when positive, emits a heartbeat on CLOCK at this
	// period and watches peer traffic for liveness.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is the number of silent intervals after which the peer
	// is declared dead.
	HeartbeatMiss int
	// Redial, when set, re-establishes the underlying transport after a
	// failure (board side: DialTCP; simulator side: Listener.Accept).
	// Unacked envelopes are replayed on the new link. When nil, an inner
	// failure is fatal to the session.
	Redial func() (Transport, error)
	// MaxRedials bounds consecutive failed redial attempts per outage.
	MaxRedials int
	// RedialBackoff is the initial redial backoff; it doubles per failed
	// attempt up to RedialBackoffMax.
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
}

// DefaultSessionConfig returns the default resilience tuning.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		AckEvery:          1,
		RetransmitTimeout: 100 * time.Millisecond,
		HeartbeatMiss:     3,
		MaxRedials:        8,
		RedialBackoff:     5 * time.Millisecond,
		RedialBackoffMax:  time.Second,
	}
}

// LinkStats aggregates the resilience-layer counters of one session (and
// the fault-injection counters of a ChaosTransport beneath it, if any).
type LinkStats struct {
	Retransmits      uint64 // envelopes re-sent (RTO, nack, or replay)
	Reconnects       uint64 // successful redials
	HeartbeatsSent   uint64
	HeartbeatsMissed uint64 // silent heartbeat intervals observed
	DupsDropped      uint64 // duplicate envelopes discarded
	CrcDropped       uint64 // envelopes failing the CRC check
	GapsSeen         uint64 // out-of-order arrivals (nack triggers)
	AliensDropped    uint64 // non-session frames discarded by the session
	FramesInjured    uint64 // frames tampered with by a chaos layer below
}

// linkStatser is implemented by transports that expose resilience
// counters; endpoint Metrics harvest them after a run.
type linkStatser interface{ LinkStats() LinkStats }

// chaosStatser is implemented by ChaosTransport.
type chaosStatser interface{ ChaosStats() ChaosStats }

// seqCRC is crc32.Update(0, IEEE, seq-as-8-LE-bytes) computed without
// materializing the header slice: the byte array would escape to the heap
// on every frame, and this runs once per message on the hot path. The
// unfolded loop is the table-driven IEEE algorithm crc32.Update uses, so
// the value is bit-identical.
func seqCRC(seq uint64) uint32 {
	c := ^uint32(0)
	for i := 0; i < 64; i += 8 {
		c = crc32.IEEETable[byte(c)^byte(seq>>i)] ^ (c >> 8)
	}
	return ^c
}

// sessionCRC covers the sequence number and the raw body, so corruption
// of either is detected at the session layer.
func sessionCRC(seq uint64, body []byte) uint32 {
	return crc32.Update(seqCRC(seq), crc32.IEEETable, body)
}

// controlCRC is sessionCRC over the single-byte body {typ}, slice-free
// for the same escape reason as seqCRC.
func controlCRC(seq uint64, typ MsgType) uint32 {
	c := ^seqCRC(seq)
	c = crc32.IEEETable[byte(c)^byte(typ)] ^ (c >> 8)
	return ^c
}

// controlMsg builds an ack/nack/heartbeat frame. Control frames carry a
// CRC binding the sequence number to the frame type, so a bit-flipped
// ack cannot prune undelivered frames (or masquerade as a nack).
func controlMsg(typ MsgType, seq uint64) Msg {
	return Msg{Type: typ, Seq: seq, Crc: controlCRC(seq, typ)}
}

// validControl reports whether a received control frame is intact.
func validControl(m Msg) bool {
	return m.Crc == controlCRC(m.Seq, m.Type)
}

type pendingEnv struct {
	env    Msg
	sentAt time.Time
}

type sessionSendState struct {
	nextSeq uint64
	// maxSent is the highest envelope sequence the write loop has put on
	// the inner transport (mu-guarded). Envelopes above it are still in
	// the outbox: the nack and RTO paths must not snapshot-retransmit
	// them — a snapshot overtaking its unsent original lets the peer ack
	// the sequence and recycle the original's body while that original
	// still awaits encoding in the outbox, an aliasing race. (The redial
	// replay is exempt: the down write loop drops dequeued originals
	// unencoded, so the replay copy is the only one that reaches a wire.)
	maxSent uint64
	unacked []pendingEnv
	// bodyFree recycles envelope body buffers (mu-guarded, like unacked).
	// A body is taken at Send, lives in unacked while retransmittable, and
	// returns here when the cumulative ack prunes its envelope. The first
	// transmission may alias the buffer (outbox, in-process peer), but the
	// ack that triggers recycling can only arrive after the peer has
	// finished reading it — and after the write loop finished encoding it,
	// since only sent-once envelopes are ever retransmitted (maxSent) — so
	// reuse cannot race those readers; retransmit paths snapshot their own
	// copies (see queueRetransmit callers).
	bodyFree [][]byte
}

type sessionRecvState struct {
	lastDelivered uint64
	sinceAck      int
	lastNacked    uint64    // last sequence number a nack asked for
	nackedAt      time.Time // when it was sent (suppresses nack storms)
}

type failEvent struct {
	gen int
	err error
}

// SessionTransport decorates a Transport with per-channel sequence
// numbers, cumulative acks, Go-Back-N retransmission, duplicate
// suppression, CRC corruption detection, an optional CLOCK-channel
// heartbeat, and optional redial-with-backoff reconnection. Endpoints on
// top of it observe an unbroken FIFO stream per channel even when the
// link beneath drops, duplicates, reorders, or corrupts frames — which
// is what keeps the virtual-tick protocol deterministic across faults.
type SessionTransport struct {
	cfg SessionConfig

	// obsSide is the side label ("hw" / "board") stamped on published
	// metrics, set by the endpoint's Observe walk via setObserveSide.
	obsSide string

	mu           sync.Mutex
	inner        Transport
	gen          int
	reconnecting bool
	send         [numChannels]sessionSendState
	recvSt       [numChannels]sessionRecvState
	injuredBase  uint64 // chaos injuries accumulated from replaced inners

	inbox [numChannels]chan Msg
	// outbox decouples every sender (readLoop acks/nacks, RTO and nack
	// retransmits, user Sends) from the inner transport: one writer
	// goroutine per channel performs the actual inner.Send, so a read
	// loop can never block on a full link — the deadlock where both
	// peers' readers wait for each other's writer to drain.
	outbox [numChannels]chan Msg

	closed    chan struct{} // user called Close
	done      chan struct{} // terminal failure or close
	closeOnce sync.Once
	failOnce  sync.Once
	errMu     sync.Mutex
	err       error

	failc    chan failEvent
	lastRecv atomic.Int64 // unix nanos of last frame from the peer

	retransmits, reconnects           atomic.Uint64
	hbSent, hbMissed                  atomic.Uint64
	dupsDropped, crcDropped, gapsSeen atomic.Uint64
	aliensDropped                     atomic.Uint64
}

// NewSessionTransport wraps inner in a resilient session. Both peers must
// wrap their side: envelopes are not understood by plain endpoints.
func NewSessionTransport(inner Transport, cfg SessionConfig) *SessionTransport {
	def := DefaultSessionConfig()
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = def.AckEvery
	}
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = def.RetransmitTimeout
	}
	if cfg.HeartbeatMiss <= 0 {
		cfg.HeartbeatMiss = def.HeartbeatMiss
	}
	if cfg.MaxRedials <= 0 {
		cfg.MaxRedials = def.MaxRedials
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = def.RedialBackoff
	}
	if cfg.RedialBackoffMax < cfg.RedialBackoff {
		cfg.RedialBackoffMax = def.RedialBackoffMax
		if cfg.RedialBackoffMax < cfg.RedialBackoff {
			cfg.RedialBackoffMax = cfg.RedialBackoff
		}
	}
	s := &SessionTransport{
		cfg:    cfg,
		inner:  inner,
		closed: make(chan struct{}),
		done:   make(chan struct{}),
		failc:  make(chan failEvent, 2*int(numChannels)),
	}
	for i := range s.inbox {
		s.inbox[i] = make(chan Msg, tcpInboxDepth)
		s.outbox[i] = make(chan Msg, tcpInboxDepth)
	}
	s.lastRecv.Store(time.Now().UnixNano()) //cosim:wallclock -- liveness stamp feeds the host-side heartbeat supervisor
	for ch := Channel(0); ch < numChannels; ch++ {
		go s.readLoop(0, inner, ch)
		go s.writeLoop(ch)
	}
	go s.supervise()
	go s.rtoLoop()
	if cfg.HeartbeatInterval > 0 {
		go s.heartbeatLoop()
	}
	return s
}

// NewReconnectTransport dials the initial link via dial and wraps it in a
// session that redials (with capped exponential backoff) and replays
// unacked frames whenever the link fails.
func NewReconnectTransport(dial func() (Transport, error), cfg SessionConfig) (*SessionTransport, error) {
	tr, err := dial()
	if err != nil {
		return nil, err
	}
	cfg.Redial = dial
	return NewSessionTransport(tr, cfg), nil
}

func (s *SessionTransport) fail(err error) {
	s.failOnce.Do(func() {
		s.errMu.Lock()
		s.err = err
		s.errMu.Unlock()
		close(s.done)
	})
}

func (s *SessionTransport) sessionErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.err != nil {
		return s.err
	}
	return ErrClosed
}

// Send implements Transport: it wraps m in a sequenced, CRC-protected
// envelope, buffers it for retransmission, and queues it on the current
// inner link. While the link is down and a Redial is configured, Send
// succeeds immediately — the frame is replayed after reconnection. An
// inner-transport write error without a Redial fails the session and is
// reported by the next operation.
func (s *SessionTransport) Send(ch Channel, m Msg) error {
	if ch >= numChannels {
		return fmt.Errorf("cosim: invalid channel %d", ch)
	}
	select {
	case <-s.done:
		return s.sessionErr()
	default:
	}
	s.mu.Lock()
	st := &s.send[ch]
	var body []byte
	if n := len(st.bodyFree); n > 0 {
		body = st.bodyFree[n-1][:0]
		st.bodyFree[n-1] = nil
		st.bodyFree = st.bodyFree[:n-1]
	} else {
		// Miss (cold start, or a sender outrunning the ack pipeline):
		// pre-size for a typical envelope so appendBody pays one
		// allocation instead of a growth cascade.
		body = make([]byte, 0, 64)
	}
	body = m.appendBody(body)
	st.nextSeq++
	env := Msg{Type: MTSessionData, Seq: st.nextSeq, Crc: sessionCRC(st.nextSeq, body), Raw: body}
	st.unacked = append(st.unacked, pendingEnv{env: env, sentAt: time.Now()}) //cosim:wallclock -- RTO clock: retransmission timing is host-side link recovery
	s.mu.Unlock()
	// The payload is copied into the envelope body, so a pooled message
	// (e.g. a batch flush) can be released here — the session is its
	// terminal consumer.
	m.Release()
	select {
	case s.outbox[ch] <- env:
	case <-s.done:
		return s.sessionErr()
	}
	return nil
}

// sendControl best-effort queues an unsequenced control frame. A full
// outbox drops it: loss is covered by the retransmission timeout.
func (s *SessionTransport) sendControl(ch Channel, m Msg) {
	select {
	case s.outbox[ch] <- m:
	default:
	}
}

// queueRetransmit best-effort queues an envelope re-send, returning
// whether it was queued.
func (s *SessionTransport) queueRetransmit(ch Channel, env Msg) bool {
	select {
	case s.outbox[ch] <- env:
		s.retransmits.Add(1)
		return true
	default:
		return false // backpressure: the RTO will try again
	}
}

// writeLoop is the only goroutine that writes channel ch of the inner
// transport. Keeping writes off the read loops guarantees the session
// always drains its peer, so a full link can slow frames down but never
// deadlock the rendezvous.
func (s *SessionTransport) writeLoop(ch Channel) {
	for {
		var m Msg
		select {
		case <-s.done:
			return
		case m = <-s.outbox[ch]:
		}
		s.mu.Lock()
		inner := s.inner
		gen := s.gen
		down := s.reconnecting
		s.mu.Unlock()
		if down {
			continue // envelopes sit in unacked and are replayed on reconnect
		}
		isEnv, seq := m.Type == MTSessionData, m.Seq
		if err := inner.Send(ch, m); err != nil {
			if s.cfg.Redial == nil {
				s.fail(err)
				return
			}
			s.notifyFail(gen, err)
		} else if isEnv {
			// Record the wire high-water mark so the nack/RTO paths know
			// which envelopes have actually been sent once (see
			// sessionSendState.maxSent). Read m's fields before the send:
			// a base transport releases pooled payloads, and the peer may
			// ack the instant the frame is published.
			s.mu.Lock()
			if st := &s.send[ch]; seq > st.maxSent {
				st.maxSent = seq
			}
			s.mu.Unlock()
		}
	}
}

func (s *SessionTransport) notifyFail(gen int, err error) {
	select {
	case s.failc <- failEvent{gen: gen, err: err}:
	default:
	}
}

func (s *SessionTransport) readLoop(gen int, tr Transport, ch Channel) {
	for {
		m, err := tr.Recv(ch)
		if err != nil {
			s.notifyFail(gen, fmt.Errorf("cosim: %v channel: %w", ch, err))
			return
		}
		s.lastRecv.Store(time.Now().UnixNano()) //cosim:wallclock -- liveness stamp feeds the host-side heartbeat supervisor
		switch m.Type {
		case MTSessionData:
			if !s.handleData(ch, m) {
				return
			}
		case MTSessionAck:
			if validControl(m) {
				s.handleAck(ch, m.Seq)
			} else {
				s.crcDropped.Add(1) // loss is safe: the RTO re-acks
			}
			m.Release() // control frame: a corrupt one may carry stray payloads
		case MTSessionNack:
			if validControl(m) {
				s.handleNack(ch, m.Seq)
			} else {
				s.crcDropped.Add(1)
			}
			m.Release()
		case MTHeartbeat:
			// Liveness only; lastRecv updated above.
			m.Release()
		default:
			// Anything else is a corrupted frame that happened to decode
			// as a plain message: both peers of a session speak envelopes
			// only, so deliver nothing the CRC has not vouched for.
			m.Release()
			s.aliensDropped.Add(1)
		}
	}
}

// maybeNack requests retransmission from the next undelivered sequence
// number, suppressing repeats while one is already outstanding: a burst
// of out-of-order arrivals must not snowball into a storm of full-window
// resends.
func (s *SessionTransport) maybeNack(ch Channel) {
	s.mu.Lock()
	rs := &s.recvSt[ch]
	next := rs.lastDelivered + 1
	now := time.Now() //cosim:wallclock -- nack-storm suppression runs on the host clock
	if rs.lastNacked == next && now.Sub(rs.nackedAt) < s.cfg.RetransmitTimeout {
		s.mu.Unlock()
		return
	}
	rs.lastNacked = next
	rs.nackedAt = now
	s.mu.Unlock()
	s.sendControl(ch, controlMsg(MTSessionNack, next))
}

// handleData processes one envelope; it reports false when the session
// has failed terminally.
func (s *SessionTransport) handleData(ch Channel, env Msg) bool {
	if len(env.Raw) == 0 || sessionCRC(env.Seq, env.Raw) != env.Crc {
		env.Release()
		s.crcDropped.Add(1)
		s.maybeNack(ch)
		return true
	}
	s.mu.Lock()
	rs := &s.recvSt[ch]
	switch {
	case env.Seq == rs.lastDelivered+1:
		rs.lastDelivered = env.Seq
		rs.sinceAck++
		ackDue := rs.sinceAck >= s.cfg.AckEvery
		if ackDue {
			rs.sinceAck = 0
		}
		s.mu.Unlock()
		inner, err := decodeBody(env.Raw)
		// decodeBody copied what it needed out of the envelope, so the
		// session — the envelope's terminal consumer — releases it here.
		// Over TCP this recycles one pooled frame body per message.
		env.Release()
		if err != nil {
			s.fail(fmt.Errorf("cosim: undecodable session payload on %v: %w", ch, err))
			return false
		}
		s.deliver(ch, inner)
		if ackDue {
			s.sendControl(ch, controlMsg(MTSessionAck, env.Seq))
		}
	case env.Seq <= rs.lastDelivered:
		last := rs.lastDelivered
		s.mu.Unlock()
		env.Release()
		s.dupsDropped.Add(1)
		// Refresh the peer's ack state so it can prune its buffer.
		s.sendControl(ch, controlMsg(MTSessionAck, last))
	default:
		s.mu.Unlock()
		env.Release()
		s.gapsSeen.Add(1)
		s.maybeNack(ch)
	}
	return true
}

func (s *SessionTransport) handleAck(ch Channel, upTo uint64) {
	s.mu.Lock()
	st := &s.send[ch]
	i := 0
	for i < len(st.unacked) && st.unacked[i].env.Seq <= upTo {
		// Acked: the peer has read the body, so the buffer can be reused
		// by a future Send.
		st.bodyFree = append(st.bodyFree, st.unacked[i].env.Raw)
		i++
	}
	if i > 0 {
		tail := copy(st.unacked, st.unacked[i:])
		for j := tail; j < len(st.unacked); j++ {
			st.unacked[j] = pendingEnv{}
		}
		st.unacked = st.unacked[:tail]
	}
	s.mu.Unlock()
}

func (s *SessionTransport) handleNack(ch Channel, from uint64) {
	s.mu.Lock()
	st := &s.send[ch]
	now := time.Now() //cosim:wallclock -- RTO clock: retransmission timing is host-side link recovery
	var resend []Msg
	for i := range st.unacked {
		if st.unacked[i].env.Seq > st.maxSent {
			// Not yet on the wire: the original is still queued in the
			// outbox and will arrive in order; a snapshot here could
			// overtake it and let an ack recycle its live body.
			break
		}
		if st.unacked[i].env.Seq >= from {
			st.unacked[i].sentAt = now
			env := st.unacked[i].env
			// Snapshot the body while it is still live: a racing ack may
			// recycle the original buffer before the outbox drains this
			// copy. Retransmits are the fault path, so the copy is cheap
			// relative to what it heals.
			env.Raw = append([]byte(nil), env.Raw...)
			resend = append(resend, env)
		}
	}
	s.mu.Unlock()
	for _, env := range resend {
		if !s.queueRetransmit(ch, env) {
			break // outbox full; keep FIFO order and let the RTO retry
		}
	}
}

func (s *SessionTransport) deliver(ch Channel, m Msg) {
	select {
	case s.inbox[ch] <- m:
	case <-s.done:
	}
}

// rtoLoop re-sends unacked envelopes whose oldest member is older than
// the retransmission timeout (Go-Back-N).
func (s *SessionTransport) rtoLoop() {
	period := s.cfg.RetransmitTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period) //cosim:wallclock -- RTO scan ticker is host-side link recovery
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		now := time.Now() //cosim:wallclock -- RTO clock: retransmission timing is host-side link recovery
		for ch := Channel(0); ch < numChannels; ch++ {
			s.mu.Lock()
			st := &s.send[ch]
			var resend []Msg
			if len(st.unacked) > 0 && now.Sub(st.unacked[0].sentAt) >= s.cfg.RetransmitTimeout {
				for i := range st.unacked {
					if st.unacked[i].env.Seq > st.maxSent {
						break // still in the outbox; see handleNack
					}
					st.unacked[i].sentAt = now
					env := st.unacked[i].env
					env.Raw = append([]byte(nil), env.Raw...) // see handleNack
					resend = append(resend, env)
				}
			}
			s.mu.Unlock()
			for _, env := range resend {
				if !s.queueRetransmit(ch, env) {
					break
				}
			}
		}
	}
}

// heartbeatLoop emits CLOCK heartbeats and watches for peer silence.
func (s *SessionTransport) heartbeatLoop() {
	iv := s.cfg.HeartbeatInterval
	t := time.NewTicker(iv) //cosim:wallclock -- heartbeat ticker is host-side liveness detection
	defer t.Stop()
	var n uint64
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		}
		n++
		s.sendControl(ChanClock, controlMsg(MTHeartbeat, n))
		s.hbSent.Add(1)
		silent := time.Since(time.Unix(0, s.lastRecv.Load())) //cosim:wallclock -- heartbeat silence window is host-side liveness detection
		if silent <= iv {
			continue
		}
		s.hbMissed.Add(1)
		if silent <= time.Duration(s.cfg.HeartbeatMiss)*iv {
			continue
		}
		s.mu.Lock()
		gen := s.gen
		reconnecting := s.reconnecting
		redial := s.cfg.Redial != nil
		s.mu.Unlock()
		if reconnecting {
			continue
		}
		if !redial {
			s.fail(ErrPeerDead)
			return
		}
		s.notifyFail(gen, ErrPeerDead)
		// Re-arm; the supervisor resets lastRecv after reconnecting.
		s.lastRecv.Store(time.Now().UnixNano()) //cosim:wallclock -- liveness stamp feeds the host-side heartbeat supervisor
	}
}

// supervise owns inner-transport failure handling: without a Redial the
// first failure is terminal; with one it closes the dead link, redials
// with capped exponential backoff, replays every unacked envelope, and
// restarts the reader goroutines.
func (s *SessionTransport) supervise() {
	for {
		var ev failEvent
		select {
		case <-s.closed:
			return
		case ev = <-s.failc:
		}
		s.mu.Lock()
		if ev.gen != s.gen {
			s.mu.Unlock()
			continue // stale report from a replaced transport
		}
		if s.cfg.Redial == nil {
			s.mu.Unlock()
			s.fail(ev.err)
			return
		}
		s.gen++
		gen := s.gen
		s.reconnecting = true
		old := s.inner
		if cs, ok := old.(chaosStatser); ok {
			s.injuredBase += cs.ChaosStats().Injured()
		}
		s.mu.Unlock()
		old.Close()

		backoff := s.cfg.RedialBackoff
		var tr Transport
		attempts := 0
		for tr == nil {
			select {
			case <-s.closed:
				return
			default:
			}
			t2, err := s.cfg.Redial()
			if err == nil {
				tr = t2
				break
			}
			attempts++
			if attempts >= s.cfg.MaxRedials {
				s.fail(fmt.Errorf("cosim: redial failed after %d attempts: %w", attempts, err))
				return
			}
			select {
			case <-s.closed:
				return
			case <-time.After(backoff): //cosim:wallclock -- redial backoff paces host reconnection attempts
			}
			backoff *= 2
			if backoff > s.cfg.RedialBackoffMax {
				backoff = s.cfg.RedialBackoffMax
			}
		}
		select {
		case <-s.closed:
			tr.Close()
			return
		default:
		}

		s.mu.Lock()
		s.inner = tr
		s.reconnecting = false
		now := time.Now() //cosim:wallclock -- RTO clock: retransmission timing is host-side link recovery
		var replay [numChannels][]Msg
		for ch := range s.send {
			st := &s.send[ch]
			for i := range st.unacked {
				st.unacked[i].sentAt = now
				env := st.unacked[i].env
				env.Raw = append([]byte(nil), env.Raw...) // see handleNack
				replay[ch] = append(replay[ch], env)
			}
		}
		s.mu.Unlock()
		s.lastRecv.Store(now.UnixNano())
		s.reconnects.Add(1)
		for ch := Channel(0); ch < numChannels; ch++ {
			for _, env := range replay[ch] {
				if !s.queueRetransmit(ch, env) {
					break // the RTO replays the rest once the queue drains
				}
			}
			go s.readLoop(gen, tr, ch)
		}
	}
}

// Recv implements Transport.
func (s *SessionTransport) Recv(ch Channel) (Msg, error) {
	if ch >= numChannels {
		return Msg{}, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	select {
	case m := <-s.inbox[ch]:
		return m, nil
	case <-s.done:
		// Drain already-delivered messages before reporting failure.
		select {
		case m := <-s.inbox[ch]:
			return m, nil
		default:
			return Msg{}, s.sessionErr()
		}
	}
}

func (s *SessionTransport) recvTimeout(ch Channel, d time.Duration) (Msg, error) {
	if ch >= numChannels {
		return Msg{}, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	timer := time.NewTimer(d) //cosim:wallclock -- receive timeout bounds host I/O, not simulated time
	defer timer.Stop()
	select {
	case m := <-s.inbox[ch]:
		return m, nil
	case <-s.done:
		select {
		case m := <-s.inbox[ch]:
			return m, nil
		default:
			return Msg{}, s.sessionErr()
		}
	case <-timer.C:
		return Msg{}, ErrTimeout
	}
}

// TryRecv implements Transport.
func (s *SessionTransport) TryRecv(ch Channel) (Msg, bool, error) {
	if ch >= numChannels {
		return Msg{}, false, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	select {
	case m := <-s.inbox[ch]:
		return m, true, nil
	default:
		select {
		case <-s.done:
			return Msg{}, false, s.sessionErr()
		default:
			return Msg{}, false, nil
		}
	}
}

// Close implements Transport.
func (s *SessionTransport) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	s.fail(ErrClosed)
	s.mu.Lock()
	inner := s.inner
	s.mu.Unlock()
	return inner.Close()
}

// LinkStats implements linkStatser: a snapshot of the session's
// resilience counters, including chaos injuries from the layer below.
func (s *SessionTransport) LinkStats() LinkStats {
	ls := LinkStats{
		Retransmits:      s.retransmits.Load(),
		Reconnects:       s.reconnects.Load(),
		HeartbeatsSent:   s.hbSent.Load(),
		HeartbeatsMissed: s.hbMissed.Load(),
		DupsDropped:      s.dupsDropped.Load(),
		CrcDropped:       s.crcDropped.Load(),
		GapsSeen:         s.gapsSeen.Load(),
		AliensDropped:    s.aliensDropped.Load(),
	}
	s.mu.Lock()
	injured := s.injuredBase
	if cs, ok := s.inner.(chaosStatser); ok {
		injured += cs.ChaosStats().Injured()
	}
	s.mu.Unlock()
	ls.FramesInjured = injured
	return ls
}

// Unwrap implements Unwrapper, returning the current inner transport
// (which changes across reconnects).
func (s *SessionTransport) Unwrap() Transport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}

var _ Transport = (*SessionTransport)(nil)
var _ recvTimeouter = (*SessionTransport)(nil)
