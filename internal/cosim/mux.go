package cosim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSessionRejected is returned by DialTCPSession when the listener
// refuses the attach handshake (unknown session ID, duplicate channel,
// or version mismatch).
var ErrSessionRejected = errors.New("cosim: session rejected by listener")

// ErrSessionExists is returned by MuxListener.Expect for a session ID
// that is already registered and not yet accepted.
var ErrSessionExists = errors.New("cosim: session id already expected")

// muxHandshakeTimeout bounds the attach handshake of one connection, so
// a stalled or hostile client cannot pin listener resources forever.
const muxHandshakeTimeout = 10 * time.Second

// MuxListener is a multiplexing TCP listener: where Listener serves
// exactly one board, a MuxListener serves many concurrent boards on one
// address. Each dialing board extends the per-channel handshake with an
// attach frame naming its session ID (see DialTCPSession); the listener
// groups the three channel connections by that ID and hands the
// assembled Transport to whichever caller registered the session with
// Expect. Connections attaching to an unknown session ID are rejected
// (closed), which the dialer observes as ErrSessionRejected.
//
// This is the farm's front door: one listener, N in-flight sessions.
type MuxListener struct {
	ln net.Listener

	mu      sync.Mutex
	pending map[uint64]*PendingSession
	closed  bool

	rejected atomic.Uint64
}

// ListenMux starts a multiplexing listener on addr (e.g. "127.0.0.1:0")
// and begins accepting connections immediately.
func ListenMux(addr string) (*MuxListener, error) { return ListenMuxNet("tcp", addr) }

// ListenMuxUDS is ListenMux over a Unix-domain socket at path. The
// attach handshake is byte-identical, so DialSession("unix", ...) works
// unchanged against it.
func ListenMuxUDS(path string) (*MuxListener, error) { return ListenMuxNet("unix", path) }

// ListenMuxNet starts a multiplexing listener on an arbitrary stream
// network ("tcp", "unix").
func ListenMuxNet(network, addr string) (*MuxListener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	l := &MuxListener{ln: ln, pending: make(map[uint64]*PendingSession)}
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound address (a host:port for TCP — useful with
// port 0 — or the socket path for UDS).
func (l *MuxListener) Addr() string { return l.ln.Addr().String() }

// Network returns the listener's network ("tcp", "unix").
func (l *MuxListener) Network() string { return l.ln.Addr().Network() }

// Rejected returns the number of connections refused so far (unknown
// session ID, duplicate channel, bad handshake) — an observability hook
// for the farm's metrics.
func (l *MuxListener) Rejected() uint64 { return l.rejected.Load() }

// Close stops the listener and cancels every pending session.
// Already-accepted transports stay open.
func (l *MuxListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	pend := make([]*PendingSession, 0, len(l.pending))
	for _, p := range l.pending {
		pend = append(pend, p)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, p := range pend {
		p.Cancel()
	}
	return err
}

// Expect registers a session ID and returns its pending handle: the
// board that attaches with this ID will be routed to it. Registration
// must happen before the board dials, or the dial is rejected.
func (l *MuxListener) Expect(id uint64) (*PendingSession, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if _, dup := l.pending[id]; dup {
		return nil, fmt.Errorf("%w: %d", ErrSessionExists, id)
	}
	p := &PendingSession{l: l, id: id, ready: make(chan Transport, 1)}
	l.pending[id] = p
	return p, nil
}

// AcceptSession is Expect followed by Accept: it registers id and blocks
// until the board with that session ID has attached all three channels
// (or ctx is done). On error the registration is cancelled.
func (l *MuxListener) AcceptSession(ctx context.Context, id uint64) (Transport, error) {
	p, err := l.Expect(id)
	if err != nil {
		return nil, err
	}
	return p.Accept(ctx)
}

func (l *MuxListener) acceptLoop() {
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go l.handshake(c)
	}
}

// reject closes a connection that failed the handshake. The dialer sees
// the close as an EOF on its accept-ack read, i.e. ErrSessionRejected.
func (l *MuxListener) reject(c net.Conn) {
	l.rejected.Add(1)
	c.Close()
}

// handshake validates one inbound connection: channel tag byte, hello,
// attach; on success it acknowledges with a hello of its own and files
// the connection under its session.
func (l *MuxListener) handshake(c net.Conn) {
	_ = c.SetDeadline(time.Now().Add(muxHandshakeTimeout)) //cosim:wallclock -- handshake deadline guards the host TCP connection
	var tag [1]byte
	if _, err := c.Read(tag[:]); err != nil {
		l.reject(c)
		return
	}
	ch := Channel(tag[0])
	if ch >= numChannels {
		l.reject(c)
		return
	}
	hello, err := Decode(c)
	// Release on both arms: a well-formed hello carries only scalars, and
	// a stray frame may carry pooled payloads.
	if err != nil || hello.Type != MTHello || hello.Version != ProtocolVersion {
		hello.Release()
		l.reject(c)
		return
	}
	hello.Release()
	attach, err := Decode(c)
	if err != nil || attach.Type != MTAttach || attach.Version != ProtocolVersion {
		attach.Release()
		l.reject(c)
		return
	}
	sessionID := attach.Seq
	attach.Release() // attach frame carries only scalars

	l.mu.Lock()
	p := l.pending[sessionID]
	l.mu.Unlock()
	if p == nil {
		l.reject(c) // unknown session ID
		return
	}
	if !p.addConn(ch, c) {
		l.reject(c) // duplicate channel or session cancelled meanwhile
		return
	}
	// Accept-ack: the dialer blocks on this frame, so a rejected dial
	// fails fast instead of discovering the dead link at first use.
	ack := Msg{Type: MTHello, Version: ProtocolVersion}
	if err := ack.Encode(c); err != nil {
		p.dropConn(ch, c)
		l.reject(c)
		return
	}
	_ = c.SetDeadline(time.Time{})
	p.maybeComplete()
}

// PendingSession is one registered-but-not-yet-connected session on a
// MuxListener.
type PendingSession struct {
	l  *MuxListener
	id uint64

	mu       sync.Mutex
	conns    [numChannels]net.Conn
	seen     int
	done     bool
	canceled bool

	ready chan Transport // buffered 1; receives the assembled transport
}

// ID returns the session ID this handle was registered under.
func (p *PendingSession) ID() uint64 { return p.id }

// addConn files one handshaken connection, reporting false when the
// channel is already taken or the session is no longer pending.
func (p *PendingSession) addConn(ch Channel, c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.canceled || p.done || p.conns[ch] != nil {
		return false
	}
	p.conns[ch] = c
	p.seen++
	return true
}

// dropConn undoes addConn after a failed accept-ack write.
func (p *PendingSession) dropConn(ch Channel, c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conns[ch] == c {
		p.conns[ch] = nil
		p.seen--
	}
}

// maybeComplete assembles and publishes the transport once all three
// channels are connected. The publish happens under the session lock
// (the ready channel is buffered and has a single sender, so the send
// cannot block), which lets Cancel deterministically reclaim a
// transport nobody accepted.
func (p *PendingSession) maybeComplete() {
	p.mu.Lock()
	if p.canceled || p.done || p.seen < int(numChannels) {
		p.mu.Unlock()
		return
	}
	p.done = true
	p.ready <- newTCPTransport(p.conns)
	p.mu.Unlock()

	p.l.mu.Lock()
	delete(p.l.pending, p.id)
	p.l.mu.Unlock()
}

// Accept blocks until the session's board has attached all three
// channels, returning the assembled transport. When ctx ends first the
// registration is cancelled and any partial connections are closed.
func (p *PendingSession) Accept(ctx context.Context) (Transport, error) {
	select {
	case tr := <-p.ready:
		return tr, nil
	case <-ctx.Done():
		p.Cancel()
		return nil, ctx.Err()
	}
}

// Cancel withdraws the registration and closes any partially attached
// connections. Safe to call at any time, from any goroutine.
func (p *PendingSession) Cancel() {
	p.mu.Lock()
	if p.canceled {
		p.mu.Unlock()
		return
	}
	p.canceled = true
	if p.done {
		// Assembled but possibly unclaimed: if Accept has not taken the
		// transport yet it is still in the buffer; close it rather than
		// leak its reader goroutines. If Accept already has it, the
		// caller owns it and this select falls through.
		select {
		case tr := <-p.ready:
			tr.Close()
		default:
		}
	} else {
		for _, c := range p.conns {
			if c != nil {
				c.Close()
			}
		}
	}
	p.mu.Unlock()

	p.l.mu.Lock()
	delete(p.l.pending, p.id)
	p.l.mu.Unlock()
}

// DialTCPSession connects the board side to a MuxListener, attaching all
// three channels to the given session ID. Each channel performs the tag
// + hello handshake of DialTCP followed by an attach frame, then waits
// for the listener's accept-ack; a listener that does not know the
// session ID closes the connection instead, surfaced here as
// ErrSessionRejected.
func DialTCPSession(addr string, sessionID uint64) (Transport, error) {
	return DialSession("tcp", addr, sessionID)
}

// DialUDSSession is DialTCPSession over a Unix-domain socket path.
func DialUDSSession(path string, sessionID uint64) (Transport, error) {
	return DialSession("unix", path, sessionID)
}

// DialSession attaches all three channels to sessionID over an arbitrary
// stream network ("tcp", "unix"); see DialTCPSession.
func DialSession(network, addr string, sessionID uint64) (Transport, error) {
	var conns [numChannels]net.Conn
	closeAll := func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	for ch := Channel(0); ch < numChannels; ch++ {
		c, err := net.Dial(network, addr)
		if err != nil {
			closeAll()
			return nil, err
		}
		conns[ch] = c
		_ = c.SetDeadline(time.Now().Add(muxHandshakeTimeout)) //cosim:wallclock -- handshake deadline guards the host TCP connection
		if _, err := c.Write([]byte{byte(ch)}); err != nil {
			closeAll()
			return nil, err
		}
		hello := Msg{Type: MTHello, Version: ProtocolVersion}
		if err := hello.Encode(c); err != nil {
			closeAll()
			return nil, err
		}
		attach := Msg{Type: MTAttach, Version: ProtocolVersion, Seq: sessionID}
		if err := attach.Encode(c); err != nil {
			closeAll()
			return nil, err
		}
		ack, err := Decode(c)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("%w (session %d, %v channel)", ErrSessionRejected, sessionID, ch)
		}
		if ack.Type != MTHello || ack.Version != ProtocolVersion {
			ack.Release() // a stray frame may carry pooled payloads
			closeAll()
			return nil, fmt.Errorf("cosim: bad accept-ack %v on %v channel", ack.Type, ch)
		}
		ack.Release() // accept-ack carries only scalars
		_ = c.SetDeadline(time.Time{})
	}
	return newTCPTransport(conns), nil
}

// SessionRedialer returns a redial function for SessionConfig.Redial on
// the board side of a farm session: each call re-dials the mux listener
// and re-attaches to the same session ID.
func SessionRedialer(addr string, sessionID uint64) func() (Transport, error) {
	return SessionRedialerNet("tcp", addr, sessionID)
}

// SessionRedialerNet is SessionRedialer over an arbitrary stream network
// ("tcp", "unix").
func SessionRedialerNet(network, addr string, sessionID uint64) func() (Transport, error) {
	return func() (Transport, error) { return DialSession(network, addr, sessionID) }
}
