package cosim

import (
	"fmt"

	"repro/internal/hdlsim"
)

// ProcFederate fronts an external party — typically a board process —
// that speaks the v2 wire protocol over any transport kind. It is the
// grant-issuing side of the link (it wraps an HWEndpoint), so from the
// time manager's perspective the remote process is a federate: Exchange
// forwards inbound events onto the DATA/INT channels, Step grants the
// quantum on CLOCK and waits for the acknowledgement, and the collected
// acknowledgement traffic flows back into the federation.
//
// Because the forwarded events hit the wire in the same channel order as
// the pairwise path's mid-quantum sends (DATA/INT frames, then the CLOCK
// grant carrying their drain counts), a K=2 federation produces
// byte-identical wire traffic to Simulator.DriverSimulate over an
// HWEndpoint.
type ProcFederate struct {
	name  string
	ep    *HWEndpoint
	cur   SimTime
	begun bool     // BeginStep already sent the grant for the next Step
	out   []FedMsg // reused collection buffer
}

// NewProcFederate wraps an already-configured HWEndpoint (mode,
// AckTimeout, Observe) as a federate.
func NewProcFederate(name string, ep *HWEndpoint) *ProcFederate {
	return &ProcFederate{name: name, ep: ep}
}

// Name implements Federate.
func (f *ProcFederate) Name() string { return f.name }

// Endpoint returns the underlying grant-side endpoint (metrics, board
// time, observation).
func (f *ProcFederate) Endpoint() *HWEndpoint { return f.ep }

// Exchange implements Federate: inbound events are forwarded on the wire
// immediately (the grant that follows carries their drain counts), and
// the DATA traffic announced by the last acknowledgement is returned.
// The returned slice is reused by the next Exchange.
func (f *ProcFederate) Exchange(in []FedMsg) ([]FedMsg, error) {
	for _, m := range in {
		switch m.Kind {
		case FedWrite:
			if err := f.ep.SendData(hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: m.Addr, Words: m.Words}); err != nil {
				return nil, err
			}
		case FedReadResp:
			if err := f.ep.SendData(hdlsim.DataMsg{Kind: hdlsim.DataReadResp, Addr: m.Addr, Words: m.Words}); err != nil {
				return nil, err
			}
		case FedInt:
			if err := f.ep.SendInterrupt(m.IRQ); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("cosim: %s: wire federate cannot forward %v", f.name, m.Kind)
		}
	}
	f.out = f.out[:0]
	for _, d := range f.ep.PollData() {
		switch d.Kind {
		case hdlsim.DataWrite:
			f.out = append(f.out, FedMsg{Kind: FedWrite, Addr: d.Addr, Words: d.Words})
		case hdlsim.DataReadReq:
			f.out = append(f.out, FedMsg{Kind: FedReadReq, Addr: d.Addr, Count: d.Count})
		default:
			return nil, fmt.Errorf("cosim: %s: unexpected %v from remote party", f.name, d.Kind)
		}
	}
	return f.out, nil
}

// BeginStep implements SplitStepper: it sends the CLOCK grant without
// waiting, so the manager can launch all remote parties' quanta before
// collecting any acknowledgement (the MultiHWEndpoint overlap).
func (f *ProcFederate) BeginStep(until SimTime) error {
	if until < f.cur {
		return fmt.Errorf("cosim: %s: step backwards (%d < %d)", f.name, until, f.cur)
	}
	if err := f.ep.sendGrant(uint64(until-f.cur), uint64(until)); err != nil {
		return err
	}
	f.begun = true
	return nil
}

// Step implements Federate: grant (unless BeginStep already did) and
// wait for the remote acknowledgement, with the same pipelined-mode
// overlap as HWEndpoint.Sync.
func (f *ProcFederate) Step(until SimTime) (SimTime, error) {
	if !f.begun {
		if err := f.BeginStep(until); err != nil {
			return f.cur, err
		}
	}
	f.begun = false
	f.cur = until
	if f.ep.mode == SyncPipelined && f.ep.outstanding <= 1 {
		return f.cur, nil
	}
	if f.ep.outstanding > 0 {
		if err := f.ep.consumeAck(); err != nil {
			return f.cur, err
		}
	}
	return f.cur, nil
}

// Lookahead implements Federate: the remote party's promise from its
// most recent acknowledgement (NoLookahead in pipelined mode, where the
// promise is a quantum stale).
func (f *ProcFederate) Lookahead() uint64 { return f.ep.PeerLookahead() }

// SetGrantLookahead implements LookaheadSink: the federation's promise
// carried on the next outgoing grant.
func (f *ProcFederate) SetGrantLookahead(ticks uint64) { f.ep.SetLocalLookahead(ticks) }

// Done implements Federate: a wire party never ends the run on its own.
func (f *ProcFederate) Done() bool { return false }

// Finish implements Federate: the MTFinish/MTFinishAck shutdown
// handshake, draining any outstanding acknowledgement first.
func (f *ProcFederate) Finish(at SimTime) error { return f.ep.Finish(uint64(at)) }

// BoardTime implements BoardClock.
func (f *ProcFederate) BoardTime() (cycle, swTick uint64) { return f.ep.BoardTime() }

// Metrics returns the link counters (valid after the run).
func (f *ProcFederate) Metrics() *Metrics { return f.ep.Metrics() }

var _ Federate = (*ProcFederate)(nil)
var _ SplitStepper = (*ProcFederate)(nil)
var _ LookaheadSink = (*ProcFederate)(nil)
var _ BoardClock = (*ProcFederate)(nil)
