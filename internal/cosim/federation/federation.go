// Package federation coordinates K co-simulation federates under one
// conservative quantum clock — the N-party generalization of the
// pairwise HW/SW rendezvous (hdlsim.DriverSimulate ↔ HWEndpoint).
//
// The time manager distinguishes two party roles, mirroring the paper's
// master/slave quantum protocol:
//
//   - eager parties (device engines, cosim.SimFederate) drive the clock:
//     they step every TSync quantum and emit events as they simulate;
//   - granted parties (boards and external processes, board.Federate /
//     cosim.ProcFederate) freeze between rendezvous and advance in one
//     piece when the federation grants accumulated time.
//
// Quantum boundaries may be elided exactly as in the pairwise adaptive
// path: the decision is hdlsim.ElideBoundary with the peer lookahead
// generalized to the minimum over all granted parties and the local
// lookahead to the minimum over all eager parties, plus the a-posteriori
// no-routed-traffic check. A K=2 federation therefore makes bit-identical
// elision decisions — and, through cosim.ProcFederate, byte-identical
// wire traffic — to the pairwise path.
//
// Events are exchanged only at boundaries and routed by explicit links
// (address windows for data, line numbers for interrupts), so the whole
// schedule is a deterministic function of the configuration. The package
// is held to the strict determinism lint tier: no wall-clock, no
// unseeded randomness, no goroutines, no map iteration.
package federation

import (
	"context"
	"fmt"

	"repro/internal/cosim"
	"repro/internal/hdlsim"
)

// Party declares one federation member.
type Party struct {
	// Fed is the engine. Its Name must be unique within the federation.
	Fed cosim.Federate
	// Eager marks a clock-driving engine that steps every quantum; false
	// marks a granted party that advances only at rendezvous.
	Eager bool
}

// Link routes events from one party to another. Data events (writes,
// read requests/responses) emitted by From with an address inside
// [Base, Base+Size) are delivered to To; interrupt events on one of the
// IRQs lines likewise. A link is unidirectional — declare one per
// direction. Windows of links sharing a From must not overlap, and an
// IRQ line may appear on at most one link per From, so routing is
// unambiguous.
type Link struct {
	From, To int
	// Base/Size is the word-address window routed From→To; Size 0
	// declares an interrupt-only link.
	Base, Size uint32
	// IRQs lists the interrupt lines routed From→To.
	IRQs []uint8
}

// Config describes a federation: its parties, the event-routing
// topology, and the quantum clock. Validate rejects incoherent
// configurations with actionable errors, like router.RunConfig.Validate.
type Config struct {
	Parties []Party
	Links   []Link
	// TSync is the base quantum in grant ticks.
	TSync uint64
	// Horizon bounds the run in grant ticks.
	Horizon uint64
	// Adaptive enables lookahead-negotiated quantum elongation across
	// the whole federation (see hdlsim.ElideBoundary); a single party
	// reporting cosim.NoLookahead pins the federation to plain TSync
	// stepping.
	Adaptive bool
	// MaxQuantum caps the elongated quantum when Adaptive is set; 0
	// means 64×TSync.
	MaxQuantum uint64
	// StopEarly, when non-nil, is consulted at every rendezvous; a true
	// return ends the run at that boundary (the pairwise
	// DriverConfig.StopEarly contract).
	StopEarly func() bool
}

// Validate rejects incoherent federations up front.
func (c Config) Validate() error {
	if len(c.Parties) < 2 {
		return fmt.Errorf("federation: invalid Config: %d parties — a federation needs at least two (use router.Run for a plain pairwise session)", len(c.Parties))
	}
	if c.TSync == 0 {
		return fmt.Errorf("federation: invalid Config: TSync is 0, so the manager would never grant virtual time; set a quantum ≥ 1")
	}
	if c.Horizon == 0 {
		return fmt.Errorf("federation: invalid Config: Horizon is 0, so the run would end before any quantum; set the tick budget")
	}
	seen := make(map[string]int, len(c.Parties))
	for i, p := range c.Parties {
		if p.Fed == nil {
			return fmt.Errorf("federation: invalid Config: party %d has a nil Federate", i)
		}
		name := p.Fed.Name()
		if name == "" {
			return fmt.Errorf("federation: invalid Config: party %d has an empty name", i)
		}
		if j, dup := seen[name]; dup {
			return fmt.Errorf("federation: invalid Config: parties %d and %d share the name %q", j, i, name)
		}
		seen[name] = i
	}
	for i, l := range c.Links {
		if l.From < 0 || l.From >= len(c.Parties) || l.To < 0 || l.To >= len(c.Parties) {
			return fmt.Errorf("federation: invalid Config: link %d references party %d/%d outside [0,%d)", i, l.From, l.To, len(c.Parties))
		}
		if l.From == l.To {
			return fmt.Errorf("federation: invalid Config: link %d routes party %d to itself", i, l.From)
		}
		if l.Size == 0 && len(l.IRQs) == 0 {
			return fmt.Errorf("federation: invalid Config: link %d routes neither an address window nor an interrupt line", i)
		}
		for j := 0; j < i; j++ {
			o := c.Links[j]
			if o.From != l.From {
				continue
			}
			if l.Size > 0 && o.Size > 0 && l.Base < o.Base+o.Size && o.Base < l.Base+l.Size {
				return fmt.Errorf("federation: invalid Config: links %d and %d route overlapping windows from party %d", j, i, l.From)
			}
			for _, a := range l.IRQs {
				for _, b := range o.IRQs {
					if a == b {
						return fmt.Errorf("federation: invalid Config: links %d and %d both route IRQ %d from party %d", j, i, a, l.From)
					}
				}
			}
		}
	}
	return nil
}

// PartyStats counts one party's share of the federation schedule.
type PartyStats struct {
	Name string
	// Syncs counts rendezvous the party took part in; Elided counts
	// quantum boundaries skipped by adaptive elongation.
	Syncs, Elided uint64
	// EventsIn/EventsOut count routed events delivered to / collected
	// from the party.
	EventsIn, EventsOut uint64
	// Reached is the party's final local time.
	Reached cosim.SimTime
}

// Stats aggregates one federation run.
type Stats struct {
	// Now is the federation's final virtual time.
	Now cosim.SimTime
	// Quanta counts TSync boundaries passed; Syncs counts rendezvous;
	// Elided counts boundaries skipped by adaptive elongation
	// (Quanta = Syncs + Elided when the horizon is quantum-aligned).
	Quanta, Syncs, Elided uint64
	Parties               []PartyStats
}

// TimeManager is the hierarchical coordinator: it owns the federation's
// virtual clock and drives every federate from a single goroutine in a
// deterministic order.
type TimeManager struct {
	cfg   Config
	eager []int // party indices in config order
	lazy  []int
	inbox [][]cosim.FedMsg
	stats Stats
}

// New validates the configuration and builds a manager.
func New(cfg Config) (*TimeManager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tm := &TimeManager{cfg: cfg, inbox: make([][]cosim.FedMsg, len(cfg.Parties))}
	tm.stats.Parties = make([]PartyStats, len(cfg.Parties))
	for i, p := range cfg.Parties {
		tm.stats.Parties[i].Name = p.Fed.Name()
		if p.Eager {
			tm.eager = append(tm.eager, i)
		} else {
			tm.lazy = append(tm.lazy, i)
		}
	}
	return tm, nil
}

// Stats returns the schedule counters (complete after Run returns).
func (tm *TimeManager) Stats() Stats { return tm.stats }

// route distributes the events src emitted to their destinations'
// inboxes, by address window for data kinds and by line for interrupts.
func (tm *TimeManager) route(src int, out []cosim.FedMsg) error {
	tm.stats.Parties[src].EventsOut += uint64(len(out))
	for _, m := range out {
		dst := -1
		if m.Kind == cosim.FedInt {
			for _, l := range tm.cfg.Links {
				if l.From != src {
					continue
				}
				for _, irq := range l.IRQs {
					if irq == m.IRQ {
						dst = l.To
						break
					}
				}
				if dst >= 0 {
					break
				}
			}
			if dst < 0 {
				return fmt.Errorf("federation: no link routes IRQ %d from party %q", m.IRQ, tm.stats.Parties[src].Name)
			}
		} else {
			for _, l := range tm.cfg.Links {
				if l.From == src && l.Size > 0 && m.Addr >= l.Base && m.Addr < l.Base+l.Size {
					dst = l.To
					break
				}
			}
			if dst < 0 {
				return fmt.Errorf("federation: no link window covers address %#x from party %q", m.Addr, tm.stats.Parties[src].Name)
			}
		}
		tm.inbox[dst] = append(tm.inbox[dst], m)
	}
	return nil
}

// deliver hands party i its pending inbox (and routes anything it had
// buffered, normally nothing at delivery points).
func (tm *TimeManager) deliver(i int) error {
	in := tm.inbox[i]
	tm.stats.Parties[i].EventsIn += uint64(len(in))
	out, err := tm.cfg.Parties[i].Fed.Exchange(in)
	tm.inbox[i] = tm.inbox[i][:0]
	if err != nil {
		return fmt.Errorf("federation: party %q exchange: %w", tm.stats.Parties[i].Name, err)
	}
	return tm.route(i, out)
}

// collect routes the events party i emitted during its last step.
func (tm *TimeManager) collect(i int) error {
	out, err := tm.cfg.Parties[i].Fed.Exchange(nil)
	if err != nil {
		return fmt.Errorf("federation: party %q exchange: %w", tm.stats.Parties[i].Name, err)
	}
	return tm.route(i, out)
}

// lazyTrafficPending reports whether any routed event awaits delivery to
// a granted party — the a-posteriori check that forces a rendezvous at
// the next boundary whatever the lookahead promises said.
func (tm *TimeManager) lazyTrafficPending() bool {
	for _, i := range tm.lazy {
		if len(tm.inbox[i]) > 0 {
			return true
		}
	}
	return false
}

// minLookaheadExcept folds the parties' promises, skipping index skip
// (-1 skips none) and restricting to the given index set.
func (tm *TimeManager) minLookahead(set []int, skip int) uint64 {
	min := uint64(hdlsim.UnboundedLookahead)
	for _, i := range set {
		if i == skip {
			continue
		}
		if la := tm.cfg.Parties[i].Fed.Lookahead(); la < min {
			min = la
		}
	}
	return min
}

// grantLookahead is the promise carried to granted party j: the minimum
// over every other party.
func (tm *TimeManager) grantLookahead(j int) uint64 {
	la := tm.minLookahead(tm.eager, j)
	if l2 := tm.minLookahead(tm.lazy, j); l2 < la {
		la = l2
	}
	return la
}

// eagerStopped reports whether any clock-driving party halted itself.
func (tm *TimeManager) eagerStopped() bool {
	for _, i := range tm.eager {
		if tm.cfg.Parties[i].Fed.Done() {
			return true
		}
	}
	return false
}

// rendezvous grants every granted party the federation time up to until,
// overlapping wire parties' quanta (grants first, acknowledgements
// second, the MultiHWEndpoint schedule), routes the collected traffic,
// and folds the slowest board clock into the eager parties' stats.
func (tm *TimeManager) rendezvous(until cosim.SimTime) error {
	for _, j := range tm.lazy {
		f := tm.cfg.Parties[j].Fed
		if ls, ok := f.(cosim.LookaheadSink); ok {
			ls.SetGrantLookahead(tm.grantLookahead(j))
		}
		if err := tm.deliver(j); err != nil {
			return err
		}
		if ss, ok := f.(cosim.SplitStepper); ok {
			if err := ss.BeginStep(until); err != nil {
				return fmt.Errorf("federation: party %q grant: %w", tm.stats.Parties[j].Name, err)
			}
		}
	}
	peerCycle := uint64(until)
	haveClock := false
	for _, j := range tm.lazy {
		f := tm.cfg.Parties[j].Fed
		if _, err := f.Step(until); err != nil {
			return fmt.Errorf("federation: party %q step: %w", tm.stats.Parties[j].Name, err)
		}
		if err := tm.collect(j); err != nil {
			return err
		}
		tm.stats.Parties[j].Syncs++
		tm.stats.Parties[j].Reached = until
		if bc, ok := f.(cosim.BoardClock); ok {
			cy, _ := bc.BoardTime()
			if !haveClock || cy < peerCycle {
				peerCycle = cy
			}
			haveClock = true
		}
	}
	for _, i := range tm.eager {
		if sr, ok := tm.cfg.Parties[i].Fed.(cosim.SyncRecorder); ok {
			sr.RecordSync(peerCycle)
		}
		tm.stats.Parties[i].Syncs++
	}
	tm.stats.Syncs++
	return nil
}

// recordElision books an elided boundary on every party.
func (tm *TimeManager) recordElision() {
	for i := range tm.stats.Parties {
		tm.stats.Parties[i].Elided++
	}
	for _, i := range tm.eager {
		if sr, ok := tm.cfg.Parties[i].Fed.(cosim.SyncRecorder); ok {
			sr.RecordElision()
		}
	}
	tm.stats.Elided++
}

// Run executes the federation to its horizon (or until a clock-driving
// party halts, or StopEarly fires at a rendezvous) and finishes every
// party. It generalizes the pairwise DriverSimulate schedule: eager
// parties step every TSync quantum, boundaries are elided under the
// shared hdlsim.ElideBoundary predicate, granted parties advance in one
// piece at each rendezvous, and a final partial grant settles any
// remainder. Cancelling ctx stops the run at the next quantum boundary
// with the context's cause.
func (tm *TimeManager) Run(ctx context.Context) (Stats, error) {
	tsync := cosim.SimTime(tm.cfg.TSync)
	maxQ := hdlsim.EffectiveMaxQuantum(tm.cfg.TSync, tm.cfg.MaxQuantum)
	horizon := cosim.SimTime(tm.cfg.Horizon)
	var cur, granted, boundary cosim.SimTime
	for cur < horizon && !tm.eagerStopped() {
		if ctx != nil && ctx.Err() != nil {
			return tm.finishStats(cur), fmt.Errorf("federation: run canceled: %w", context.Cause(ctx))
		}
		target := cur + tsync
		if target > horizon {
			target = horizon
		}
		reached := target
		for _, i := range tm.eager {
			if err := tm.deliver(i); err != nil {
				return tm.finishStats(cur), err
			}
			r, err := tm.cfg.Parties[i].Fed.Step(target)
			if err != nil {
				return tm.finishStats(cur), fmt.Errorf("federation: party %q step: %w", tm.stats.Parties[i].Name, err)
			}
			if err := tm.collect(i); err != nil {
				return tm.finishStats(cur), err
			}
			if r < reached {
				reached = r
			}
		}
		cur = reached
		if cur < target {
			// A clock-driving party halted mid-quantum; the final
			// partial grant below settles the remainder.
			break
		}
		if cur-boundary >= tsync {
			tm.stats.Quanta++
			acc := uint64(cur - granted)
			stopping := tm.cfg.StopEarly != nil && tm.cfg.StopEarly()
			if tm.cfg.Adaptive && hdlsim.ElideBoundary(acc, tm.cfg.TSync, maxQ,
				tm.minLookahead(tm.lazy, -1), tm.minLookahead(tm.eager, -1),
				tm.lazyTrafficPending(), stopping) {
				boundary = cur
				tm.recordElision()
			} else {
				if err := tm.rendezvous(cur); err != nil {
					return tm.finishStats(cur), err
				}
				granted, boundary = cur, cur
				if stopping {
					break
				}
			}
		}
	}
	if cur > granted {
		if err := tm.rendezvous(cur); err != nil {
			return tm.finishStats(cur), err
		}
		granted = cur
	}
	var firstErr error
	for i, p := range tm.cfg.Parties {
		if err := p.Fed.Finish(cur); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("federation: party %q finish: %w", tm.stats.Parties[i].Name, err)
		}
	}
	return tm.finishStats(cur), firstErr
}

// finishStats stamps the final clock into the stats snapshot.
func (tm *TimeManager) finishStats(now cosim.SimTime) Stats {
	tm.stats.Now = now
	for _, i := range tm.eager {
		tm.stats.Parties[i].Reached = now
	}
	return tm.stats
}
