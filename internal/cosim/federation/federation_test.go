package federation

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cosim"
)

// fakeParty is a scripted federate for manager unit tests: an eager
// variant emits one sequenced write every emitEvery-th quantum, a lazy
// variant records what it is delivered and when.
type fakeParty struct {
	name  string
	cur   cosim.SimTime
	la    uint64
	halt  cosim.SimTime // Done once reached; 0 means never
	tsync uint64

	// producer script (eager parties)
	emitEvery uint64 // emit on every n-th quantum boundary; 0 = silent
	addr      uint32
	seq       uint32
	out       []cosim.FedMsg

	// consumer record (lazy parties)
	got      []uint32
	gotAt    []cosim.SimTime
	steps    int
	finished bool
}

func (f *fakeParty) Name() string { return f.name }

func (f *fakeParty) Step(until cosim.SimTime) (cosim.SimTime, error) {
	if f.halt != 0 && until > f.halt {
		until = f.halt
	}
	if f.emitEvery > 0 && f.tsync > 0 {
		q := uint64(until) / f.tsync
		if q > 0 && q%f.emitEvery == 0 {
			f.seq++
			f.out = append(f.out, cosim.FedMsg{Kind: cosim.FedWrite, Addr: f.addr, Words: []uint32{f.seq}})
		}
	}
	f.cur = until
	f.steps++
	return until, nil
}

func (f *fakeParty) Exchange(in []cosim.FedMsg) ([]cosim.FedMsg, error) {
	for _, m := range in {
		if len(m.Words) != 1 {
			return nil, fmt.Errorf("fake %s: malformed delivery", f.name)
		}
		f.got = append(f.got, m.Words[0])
		f.gotAt = append(f.gotAt, f.cur)
	}
	out := f.out
	f.out = nil
	return out, nil
}

func (f *fakeParty) Lookahead() uint64 { return f.la }

func (f *fakeParty) Done() bool { return f.halt != 0 && f.cur >= f.halt }

func (f *fakeParty) Finish(at cosim.SimTime) error {
	f.finished = true
	return nil
}

// TestZeroLookaheadForcesPlainStepping: adaptive elongation is a
// federation-wide negotiation — a single party promising no lookahead
// (granted or eager) pins the whole federation to plain TSync
// rendezvous, while the same topology with generous promises elides
// every quiet boundary.
func TestZeroLookaheadForcesPlainStepping(t *testing.T) {
	const tsync, quanta = 100, 10
	build := func(eagerLA, lazyLA1, lazyLA2 uint64) (*TimeManager, []*fakeParty) {
		ps := []*fakeParty{
			{name: "dev", la: eagerLA, tsync: tsync},
			{name: "b1", la: lazyLA1},
			{name: "b2", la: lazyLA2},
		}
		tm, err := New(Config{
			Parties: []Party{{Fed: ps[0], Eager: true}, {Fed: ps[1]}, {Fed: ps[2]}},
			Links:   []Link{{From: 0, To: 1, Base: 0x100, Size: 0x10}, {From: 0, To: 2, Base: 0x200, Size: 0x10}},
			TSync:   tsync, Horizon: quanta * tsync, Adaptive: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tm, ps
	}
	unbounded := cosim.UnboundedLookahead

	// Control: every party promises unbounded lookahead, no traffic —
	// every boundary is elided and one final rendezvous settles the run.
	tm, _ := build(unbounded, unbounded, unbounded)
	st, err := tm.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Elided != quanta || st.Syncs != 1 {
		t.Fatalf("generous promises: %d elided / %d syncs, want %d / 1", st.Elided, st.Syncs, quanta)
	}

	// One granted party with zero lookahead: no boundary may be elided.
	tm, _ = build(unbounded, unbounded, cosim.NoLookahead)
	if st, err = tm.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Elided != 0 || st.Syncs != quanta {
		t.Fatalf("zero-lookahead board: %d elided / %d syncs, want 0 / %d", st.Elided, st.Syncs, quanta)
	}

	// A zero-lookahead eager party pins it just the same.
	tm, _ = build(cosim.NoLookahead, unbounded, unbounded)
	if st, err = tm.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Elided != 0 || st.Syncs != quanta {
		t.Fatalf("zero-lookahead device: %d elided / %d syncs, want 0 / %d", st.Elided, st.Syncs, quanta)
	}
}

// TestSlowPartyCannotReorderEvents is the adversarial-ordering check:
// one granted party promising a huge lookahead stretches the quanta
// (elisions), another produces traffic on an irregular schedule — yet
// the consumer observes every sequence number exactly once, in emission
// order, and never before the producer's clock reached the emission
// point. Run under -race this also proves the manager needs no hidden
// synchronization: everything happens on one goroutine.
func TestSlowPartyCannotReorderEvents(t *testing.T) {
	const tsync, quanta = 100, 60
	producer := &fakeParty{name: "producer", la: cosim.UnboundedLookahead, tsync: tsync, emitEvery: 3, addr: 0x100}
	consumer := &fakeParty{name: "consumer", la: 5 * tsync}
	slow := &fakeParty{name: "slow", la: cosim.UnboundedLookahead}
	tm, err := New(Config{
		Parties: []Party{{Fed: producer, Eager: true}, {Fed: consumer}, {Fed: slow}},
		Links: []Link{
			{From: 0, To: 1, Base: 0x100, Size: 0x10},
			{From: 0, To: 2, Base: 0x200, Size: 0x10},
		},
		TSync: tsync, Horizon: quanta * tsync, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := tm.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Elided == 0 {
		t.Fatal("schedule never stretched — the test exercises nothing")
	}
	if producer.seq == 0 {
		t.Fatal("producer emitted nothing")
	}
	if len(consumer.got) != int(producer.seq) {
		t.Fatalf("consumer saw %d of %d events", len(consumer.got), producer.seq)
	}
	for i, v := range consumer.got {
		if v != uint32(i+1) {
			t.Fatalf("delivery %d carries seq %d — events reordered, lost or duplicated (%v)", i, v, consumer.got)
		}
		// Emission i+1 happened at quantum 3*(i+1); the consumer's local
		// clock at delivery (its last granted time) must never have
		// passed that point — a conservative schedule cannot deliver
		// into the consumer's past.
		if emitAt := cosim.SimTime(3 * uint64(i+1) * tsync); consumer.gotAt[i] > emitAt {
			t.Fatalf("seq %d delivered with consumer clock %d past its emission at %d", v, consumer.gotAt[i], emitAt)
		}
	}
	if !consumer.finished || !producer.finished || !slow.finished {
		t.Fatal("not every party was finished")
	}
}

// TestTrafficForcesRendezvous: however generous every promise is, routed
// traffic waiting for a granted party forces the next boundary to be a
// real rendezvous (the a-posteriori check behind elongation soundness).
func TestTrafficForcesRendezvous(t *testing.T) {
	const tsync, quanta = 100, 12
	producer := &fakeParty{name: "producer", la: cosim.UnboundedLookahead, tsync: tsync, emitEvery: 4, addr: 0x100}
	consumer := &fakeParty{name: "consumer", la: cosim.UnboundedLookahead}
	tm, err := New(Config{
		Parties: []Party{{Fed: producer, Eager: true}, {Fed: consumer}},
		Links:   []Link{{From: 0, To: 1, Base: 0x100, Size: 0x10}},
		TSync:   tsync, Horizon: quanta * tsync, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := tm.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Emissions at quanta 4, 8, 12 must each close their boundary.
	if st.Syncs < 3 {
		t.Fatalf("%d rendezvous for 3 traffic-bearing boundaries", st.Syncs)
	}
	if len(consumer.got) != 3 {
		t.Fatalf("consumer saw %d of 3 events", len(consumer.got))
	}
}

// TestEagerHaltMidQuantum: a clock-driving party stopping inside a
// quantum ends the run there, and the final partial grant settles every
// granted party at exactly the halt time.
func TestEagerHaltMidQuantum(t *testing.T) {
	const tsync = 100
	dev := &fakeParty{name: "dev", la: cosim.UnboundedLookahead, tsync: tsync, halt: 250}
	brd := &fakeParty{name: "board", la: cosim.UnboundedLookahead}
	tm, err := New(Config{
		Parties: []Party{{Fed: dev, Eager: true}, {Fed: brd}},
		Links:   []Link{{From: 0, To: 1, Base: 0, Size: 0x10}},
		TSync:   tsync, Horizon: 10 * tsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := tm.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Now != 250 {
		t.Fatalf("federation time %d, want the halt point 250", st.Now)
	}
	if brd.cur != 250 {
		t.Fatalf("granted party settled at %d, want 250", brd.cur)
	}
}

// TestUnroutedEventFails: an emitted event no link covers is a topology
// bug and must fail the run loudly, not vanish.
func TestUnroutedEventFails(t *testing.T) {
	producer := &fakeParty{name: "producer", la: cosim.UnboundedLookahead, tsync: 100, emitEvery: 1, addr: 0x900}
	consumer := &fakeParty{name: "consumer", la: cosim.UnboundedLookahead}
	tm, err := New(Config{
		Parties: []Party{{Fed: producer, Eager: true}, {Fed: consumer}},
		Links:   []Link{{From: 0, To: 1, Base: 0x100, Size: 0x10}}, // 0x900 not covered
		TSync:   100, Horizon: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.Run(context.Background()); err == nil {
		t.Fatal("unrouted event did not fail the run")
	}
}

// TestConfigValidate rejects incoherent federations with actionable
// errors.
func TestConfigValidate(t *testing.T) {
	ok := func() Config {
		a := &fakeParty{name: "a"}
		b := &fakeParty{name: "b"}
		return Config{
			Parties: []Party{{Fed: a, Eager: true}, {Fed: b}},
			Links:   []Link{{From: 0, To: 1, Base: 0, Size: 0x10, IRQs: []uint8{3}}},
			TSync:   100, Horizon: 1000,
		}
	}
	if err := ok().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"one party", func(c *Config) { c.Parties = c.Parties[:1] }},
		{"zero tsync", func(c *Config) { c.TSync = 0 }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"nil federate", func(c *Config) { c.Parties[1].Fed = nil }},
		{"duplicate name", func(c *Config) { c.Parties[1].Fed = &fakeParty{name: "a"} }},
		{"link out of range", func(c *Config) { c.Links[0].To = 7 }},
		{"self link", func(c *Config) { c.Links[0].To = 0 }},
		{"empty link", func(c *Config) { c.Links[0] = Link{From: 0, To: 1} }},
		{"overlapping windows", func(c *Config) {
			c.Links = append(c.Links, Link{From: 0, To: 1, Base: 0x8, Size: 0x10})
		}},
		{"duplicate irq", func(c *Config) {
			c.Links = append(c.Links, Link{From: 0, To: 1, Base: 0x100, Size: 0x10, IRQs: []uint8{3}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := ok()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("invalid config accepted")
			}
			if _, err := New(c); err == nil {
				t.Fatal("New accepted an invalid config")
			}
		})
	}
}
