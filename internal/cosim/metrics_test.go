package cosim

import (
	"testing"
	"time"

	"repro/internal/hdlsim"
)

// TestStopClockWithoutStart: StopClock before Start must not record a
// garbage (near-epoch) duration.
func TestStopClockWithoutStart(t *testing.T) {
	var m Metrics
	m.StopClock()
	if m.Wall != 0 {
		t.Fatalf("Wall = %v after StopClock without Start, want 0", m.Wall)
	}
	m.Start()
	time.Sleep(time.Millisecond)
	m.StopClock()
	if m.Wall <= 0 {
		t.Fatalf("Wall = %v after Start+StopClock, want > 0", m.Wall)
	}
}

// TestEndpointWallClockRecorded: both endpoints pair Start (constructor)
// with StopClock (shutdown), so Wall is valid after any complete run —
// including the HW side's early-error path.
func TestEndpointWallClockRecorded(t *testing.T) {
	hwT, boardT := NewInProcPair(64)
	hw := NewHWEndpoint(hwT, SyncAlternating)
	board := NewBoardEndpoint(boardT)
	result := scriptedBoard(t, board, false)

	for q := 1; q <= 3; q++ {
		if _, err := hw.Sync(10, uint64(10*q)); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Finish(30); err != nil {
		t.Fatal(err)
	}
	if r := <-result; r.err != nil {
		t.Fatal(r.err)
	}
	if hw.Metrics().Wall <= 0 {
		t.Fatalf("HW Wall = %v, want > 0", hw.Metrics().Wall)
	}
	if board.Metrics().Wall <= 0 {
		t.Fatalf("board Wall = %v, want > 0", board.Metrics().Wall)
	}
}

// TestHWWallClockRecordedOnError: Finish stamps Wall even when the board
// never acknowledges and the shutdown times out.
func TestHWWallClockRecordedOnError(t *testing.T) {
	hwT, _ := NewInProcPair(8)
	defer hwT.Close()
	hw := NewHWEndpoint(hwT, SyncAlternating)
	hw.AckTimeout = 10 * time.Millisecond
	if err := hw.Finish(5); err == nil {
		t.Fatal("Finish succeeded with no board attached")
	}
	if hw.Metrics().Wall <= 0 {
		t.Fatalf("Wall = %v after failed Finish, want > 0", hw.Metrics().Wall)
	}
}

// TestMetricsHarvestLink: session- and chaos-wrapped transports surface
// their counters through the endpoint metrics.
func TestMetricsHarvestLink(t *testing.T) {
	chaos := UniformScenario(99, FaultProfile{Drop: 1})
	a, b := NewInProcPair(64)
	defer b.Close()
	ct := NewChaosTransport(a, chaos)
	hw := NewHWEndpoint(ct, SyncAlternating)
	_ = hw.SendData(hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: 1, Words: []uint32{1}})
	if got := hw.Metrics().Link.FramesInjured; got == 0 {
		t.Fatalf("FramesInjured = %d after a dropped frame, want > 0", got)
	}
}
