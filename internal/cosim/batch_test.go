package cosim

import (
	"fmt"
	"testing"
)

// queueTransport is a loss-free in-memory Transport recording exactly the
// frames the batch layer emits, for asserting on the wire image.
type queueTransport struct {
	q [numChannels][]Msg
}

func (t *queueTransport) Send(ch Channel, m Msg) error {
	t.q[ch] = append(t.q[ch], m)
	return nil
}

func (t *queueTransport) Recv(ch Channel) (Msg, error) {
	if len(t.q[ch]) == 0 {
		return Msg{}, fmt.Errorf("queueTransport: empty %v", ch)
	}
	m := t.q[ch][0]
	t.q[ch] = t.q[ch][1:]
	return m, nil
}

func (t *queueTransport) TryRecv(ch Channel) (Msg, bool, error) {
	if len(t.q[ch]) == 0 {
		return Msg{}, false, nil
	}
	m, err := t.Recv(ch)
	return m, err == nil, err
}

func (t *queueTransport) Close() error { return nil }

// TestBatchCoalesce proves the headline behavior: a quantum's DATA and INT
// traffic becomes one MTBatch frame per channel when the CLOCK boundary
// message flushes, and a receiving batch layer splices the messages back
// out in order.
func TestBatchCoalesce(t *testing.T) {
	wire := &queueTransport{}
	tx := NewBatchTransport(wire)

	sent := []Msg{
		{Type: MTDataWrite, Addr: 0x10, Words: []uint32{1, 2}},
		{Type: MTDataWrite, Addr: 0x14, Words: []uint32{3}},
		{Type: MTDataReadResp, Addr: 0x20, Words: []uint32{9, 9, 9}},
	}
	for _, m := range sent {
		if err := tx.Send(ChanData, m); err != nil {
			t.Fatal(err)
		}
	}
	for irq := uint8(1); irq <= 2; irq++ {
		if err := tx.Send(ChanInt, Msg{Type: MTInterrupt, IRQ: irq}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(wire.q[ChanData]) + len(wire.q[ChanInt]); got != 0 {
		t.Fatalf("batch layer leaked %d frames before the boundary", got)
	}

	grant := Msg{Type: MTClockGrant, Ticks: 100, DataCount: 3, IntCount: 2}
	if err := tx.Send(ChanClock, grant); err != nil {
		t.Fatal(err)
	}
	if len(wire.q[ChanData]) != 1 || wire.q[ChanData][0].Type != MTBatch {
		t.Fatalf("DATA channel: want one MTBatch frame, got %+v", wire.q[ChanData])
	}
	if len(wire.q[ChanInt]) != 1 || wire.q[ChanInt][0].Type != MTBatch {
		t.Fatalf("INT channel: want one MTBatch frame, got %+v", wire.q[ChanInt])
	}
	if len(wire.q[ChanClock]) != 1 || wire.q[ChanClock][0].Type != MTClockGrant {
		t.Fatalf("CLOCK channel: want the bare grant, got %+v", wire.q[ChanClock])
	}

	rx := NewBatchTransport(wire)
	for i, want := range sent {
		got, err := rx.Recv(ChanData)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Type != want.Type || got.Addr != want.Addr || len(got.Words) != len(want.Words) {
			t.Fatalf("message %d reordered or mangled: sent %+v got %+v", i, want, got)
		}
	}
	for irq := uint8(1); irq <= 2; irq++ {
		got, err := rx.Recv(ChanInt)
		if err != nil || got.Type != MTInterrupt || got.IRQ != irq {
			t.Fatalf("INT splice: want irq %d, got %+v (%v)", irq, got, err)
		}
	}
	if g, err := rx.Recv(ChanClock); err != nil || g.Ticks != grant.Ticks {
		t.Fatalf("grant: got %+v (%v)", g, err)
	}

	st := tx.BatchStats()
	if st.Flushes != 2 || st.Batched != 5 {
		t.Fatalf("tx stats: want 2 flushes of 5 messages, got %+v", st)
	}
	if ro := rx.BatchStats(); ro.Opened != 2 {
		t.Fatalf("rx stats: want 2 opened, got %+v", ro)
	}
}

// TestBatchSingleMessageBypass: wrapping one message in a batch would only
// add bytes, so a single-entry flush sends the bare frame.
func TestBatchSingleMessageBypass(t *testing.T) {
	wire := &queueTransport{}
	tx := NewBatchTransport(wire)
	if err := tx.Send(ChanData, Msg{Type: MTDataWrite, Addr: 4, Words: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(ChanClock, Msg{Type: MTClockGrant, Ticks: 10, DataCount: 1}); err != nil {
		t.Fatal(err)
	}
	if len(wire.q[ChanData]) != 1 || wire.q[ChanData][0].Type != MTDataWrite {
		t.Fatalf("want the bare DATA frame, got %+v", wire.q[ChanData])
	}
	if st := tx.BatchStats(); st.Flushes != 0 || st.Bypassed != 2 {
		t.Fatalf("want 0 flushes / 2 bypassed (data + clock), got %+v", st)
	}
}

// TestBatchSizeCap: a flush never builds a batch larger than
// maxBatchPayload — earlier messages are flushed first, and a message too
// large to ever share a batch goes out alone, in order.
func TestBatchSizeCap(t *testing.T) {
	wire := &queueTransport{}
	tx := NewBatchTransport(wire)

	big := make([]uint32, MaxWords)
	if sz := (&Msg{Type: MTDataWrite, Words: big}).WireSize(); sz <= maxBatchPayload {
		t.Fatalf("test premise broken: MaxWords write (%d bytes) fits a batch (%d)", sz, maxBatchPayload)
	}
	if err := tx.Send(ChanData, Msg{Type: MTDataWrite, Addr: 1, Words: []uint32{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(ChanData, Msg{Type: MTDataWrite, Addr: 2, Words: []uint32{3}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(ChanData, Msg{Type: MTDataWrite, Addr: 3, Words: big}); err != nil {
		t.Fatal(err)
	}
	// Order on the wire: the two small writes as one batch (flushed to
	// make way), then the oversized write bare.
	if len(wire.q[ChanData]) != 2 {
		t.Fatalf("want batch + bare oversize, got %d frames", len(wire.q[ChanData]))
	}
	if wire.q[ChanData][0].Type != MTBatch || wire.q[ChanData][0].Count != 2 {
		t.Fatalf("first frame: want 2-message batch, got %+v", wire.q[ChanData][0].Type)
	}
	if wire.q[ChanData][1].Type != MTDataWrite || wire.q[ChanData][1].Addr != 3 {
		t.Fatalf("second frame: want the oversized bare write, got %+v", wire.q[ChanData][1].Type)
	}

	// Receiving side sees the original order.
	rx := NewBatchTransport(wire)
	for i, wantAddr := range []uint32{1, 2, 3} {
		m, err := rx.Recv(ChanData)
		if err != nil || m.Addr != wantAddr {
			t.Fatalf("message %d: want addr %d, got %+v (%v)", i, wantAddr, m, err)
		}
	}
}

// TestBatchRejectsMalformed: splitBatch fails loudly on nested batches,
// count mismatches, and truncated entries instead of poisoning the codec.
func TestBatchRejectsMalformed(t *testing.T) {
	pack := func(msgs ...Msg) []byte {
		var raw []byte
		for i := range msgs {
			at := len(raw)
			raw = append(raw, 0, 0, 0, 0)
			raw = msgs[i].appendBody(raw)
			n := len(raw) - at - 4
			raw[at] = byte(n)
			raw[at+1] = byte(n >> 8)
			raw[at+2] = byte(n >> 16)
			raw[at+3] = byte(n >> 24)
		}
		return raw
	}
	inner := Msg{Type: MTInterrupt, IRQ: 3}

	cases := []struct {
		name string
		m    Msg
	}{
		{"nested batch", Msg{Type: MTBatch, Count: 1, Raw: pack(Msg{Type: MTBatch, Count: 0})}},
		{"count mismatch", Msg{Type: MTBatch, Count: 5, Raw: pack(inner, inner)}},
		{"truncated header", Msg{Type: MTBatch, Count: 1, Raw: []byte{1, 0}}},
		{"overlong entry", Msg{Type: MTBatch, Count: 1, Raw: []byte{0xff, 0xff, 0xff, 0xff, 0x09}}},
		{"zero-length entry", Msg{Type: MTBatch, Count: 1, Raw: []byte{0, 0, 0, 0}}},
	}
	for _, tc := range cases {
		if _, err := splitBatch(tc.m, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	if got, err := splitBatch(Msg{Type: MTBatch, Count: 2, Raw: pack(inner, inner)}, nil); err != nil || len(got) != 2 {
		t.Fatalf("well-formed batch rejected: %v", err)
	}
}

// FuzzBatchRoundTrip drives fuzz-chosen message sequences through a
// sending batch layer and back through a receiving one, asserting
// order-preserving losslessness; the raw arm feeds arbitrary bytes to
// splitBatch, which must reject garbage without panicking.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{})
	f.Add([]byte{0, 0, 0, 0}, []byte{0, 0, 0, 0})
	f.Add([]byte{9}, []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, plan, raw []byte) {
		// Arm 1: splitBatch over arbitrary bytes never panics.
		if msgs, err := splitBatch(Msg{Type: MTBatch, Count: uint32(len(raw) / 8), Raw: raw}, nil); err == nil {
			for _, m := range msgs {
				if m.Type == MTBatch {
					t.Fatal("splitBatch yielded a nested batch")
				}
			}
		}

		// Arm 2: a plan-derived DATA/INT sequence survives the batch
		// layer bit-for-bit and in order.
		wire := &queueTransport{}
		tx := NewBatchTransport(wire)
		var sent []Msg
		for i, b := range plan {
			if len(sent) >= 64 {
				break
			}
			var m Msg
			var ch Channel
			switch b % 3 {
			case 0:
				ch = ChanData
				m = Msg{Type: MTDataWrite, Addr: uint32(i), Words: []uint32{uint32(b), uint32(i)}}
			case 1:
				ch = ChanData
				m = Msg{Type: MTDataReadReq, Addr: uint32(b), Count: uint32(i%7) + 1}
			case 2:
				ch = ChanInt
				m = Msg{Type: MTInterrupt, IRQ: b}
			}
			if err := tx.Send(ch, m); err != nil {
				t.Fatal(err)
			}
			sent = append(sent, m)
		}
		if err := tx.Send(ChanClock, Msg{Type: MTClockGrant, Ticks: 1}); err != nil {
			t.Fatal(err)
		}

		// Pooled-reuse aliasing detector: the first received message is held
		// live (not Released) while every later message is received and
		// Released — recycling their buffers through the codec pools. If a
		// recycled buffer aliases the held message's payload, the final check
		// catches the corruption.
		rx := NewBatchTransport(wire)
		var held Msg
		var heldWords []uint32
		for i, want := range sent {
			ch := ChanData
			if want.Type == MTInterrupt {
				ch = ChanInt
			}
			got, err := rx.Recv(ch)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if got.Type != want.Type || got.Addr != want.Addr || got.IRQ != want.IRQ ||
				got.Count != want.Count || len(got.Words) != len(want.Words) {
				t.Fatalf("message %d mangled: sent %+v got %+v", i, want, got)
			}
			for j := range want.Words {
				if got.Words[j] != want.Words[j] {
					t.Fatalf("message %d word %d: sent %x got %x", i, j, want.Words[j], got.Words[j])
				}
			}
			if i == 0 {
				held = got
				heldWords = append([]uint32(nil), got.Words...)
			} else {
				got.Release()
			}
		}
		if len(sent) > 0 {
			if !wordsEqual(held.Words, heldWords) {
				t.Fatalf("held message corrupted by pooled reuse: want %x got %x", heldWords, held.Words)
			}
			held.Release()
		}
	})
}
