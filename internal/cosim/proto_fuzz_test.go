package cosim

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame proves that arbitrary bytes never panic the decoder,
// and that anything Decode accepts re-encodes to a frame that decodes to
// the same canonical bytes (the codec is closed over its own output).
func FuzzDecodeFrame(f *testing.F) {
	seedMsgs := []Msg{
		{Type: MTHello, Version: ProtocolVersion},
		{Type: MTClockGrant, Ticks: 1000, HWCycle: 42, DataCount: 2, IntCount: 1},
		{Type: MTTimeAck, BoardCycle: 7, SWTick: 3, DataCount: 1},
		{Type: MTDataWrite, Addr: 0x10, Words: []uint32{1, 2, 3}},
		{Type: MTSessionData, Seq: 9, Crc: 0x1234, Raw: []byte{6, 5}},
		{Type: MTHeartbeat, Seq: 77},
	}
	for _, m := range seedMsgs {
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0xee})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := m.Encode(&first); err != nil {
			t.Fatalf("accepted message %+v does not re-encode: %v", m, err)
		}
		m2, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		var second bytes.Buffer
		if err := m2.Encode(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("codec not stable:\nfirst  %x\nsecond %x", first.Bytes(), second.Bytes())
		}
	})
}

// FuzzMsgRoundTrip proves encode→decode→encode is lossless for every
// message type over fuzz-chosen field values.
func FuzzMsgRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint32(0), uint32(0), uint64(0), uint64(0), uint8(0), []byte{})
	f.Add(uint8(2), uint32(3), uint32(1), uint64(1000), uint64(99), uint8(4), []byte{1, 2, 3, 4})
	f.Add(uint8(7), uint32(0x40), uint32(2), uint64(0), uint64(0), uint8(0), []byte{9, 8, 7, 6, 5, 4, 3, 2})
	f.Add(uint8(10), uint32(0xfeed), uint32(5), uint64(1<<40), uint64(12), uint8(1), []byte{7, 0, 1})
	f.Fuzz(func(t *testing.T, typ uint8, a, b uint32, u, v uint64, small uint8, blob []byte) {
		if len(blob) > maxFrameBody {
			blob = blob[:maxFrameBody]
		}
		m := Msg{Type: MTHello + MsgType(typ)%15}
		words := make([]uint32, 0, len(blob)/4)
		for i := 0; i+4 <= len(blob) && len(words) < MaxWords; i += 4 {
			words = append(words, uint32(blob[i])|uint32(blob[i+1])<<8|uint32(blob[i+2])<<16|uint32(blob[i+3])<<24)
		}
		switch m.Type {
		case MTHello:
			m.Version = uint16(a)
		case MTClockGrant:
			m.Ticks, m.HWCycle, m.DataCount, m.IntCount = u, v, a, b
		case MTTimeAck, MTFinishAck:
			m.BoardCycle, m.SWTick, m.DataCount = u, v, a
		case MTFinish:
			m.HWCycle = u
		case MTInterrupt:
			m.IRQ = small
		case MTDataWrite, MTDataReadResp:
			m.Addr, m.Words = a, words
		case MTDataReadReq:
			m.Addr, m.Count = a, b
		case MTSessionData:
			m.Seq, m.Crc, m.Raw = u, a, blob
		case MTSessionAck, MTSessionNack, MTHeartbeat:
			m.Seq, m.Crc = u, a
		case MTAttach:
			m.Version, m.Seq = uint16(a), u
		case MTBatch:
			// The inner framing is opaque to the codec; any blob must
			// round-trip. splitBatch's validation is fuzzed separately.
			m.Count, m.Raw = b%maxBatchMsgs, blob
		default:
			t.Fatalf("unmapped type %v", m.Type)
		}
		var first bytes.Buffer
		if err := m.Encode(&first); err != nil {
			t.Fatalf("encode %v: %v", m.Type, err)
		}
		if first.Len() != m.WireSize() {
			t.Fatalf("%v: WireSize %d, encoded %d", m.Type, m.WireSize(), first.Len())
		}
		got, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decode %v: %v", m.Type, err)
		}
		if got.Type != m.Type {
			t.Fatalf("type changed: sent %v got %v", m.Type, got.Type)
		}
		var second bytes.Buffer
		if err := got.Encode(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%v round trip not lossless:\nsent %x\ngot  %x", m.Type, first.Bytes(), second.Bytes())
		}

		// Pooled-reuse aliasing detector. A decoded message owns its payload
		// until Release: decoding more frames while `got` is live must not
		// scribble on its slices, and a decode after Release — which hands
		// the recycled buffer right back — must still be lossless.
		snapWords := append([]uint32(nil), got.Words...)
		snapRaw := append([]byte(nil), got.Raw...)
		held, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !wordsEqual(got.Words, snapWords) || !bytes.Equal(got.Raw, snapRaw) {
			t.Fatalf("%v: second decode aliased a live message's payload", m.Type)
		}
		held.Release()
		got.Release()
		again, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("decode into recycled buffer: %v", err)
		}
		var third bytes.Buffer
		if err := again.Encode(&third); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), third.Bytes()) {
			t.Fatalf("%v: decode into recycled buffer not lossless:\nsent %x\ngot  %x", m.Type, first.Bytes(), third.Bytes())
		}
		again.Release()
	})
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
