package cosim

import (
	"testing"

	"repro/internal/hdlsim"
)

// scriptedBoard runs a minimal board-side loop on a goroutine: per grant it
// posts one write of the grant's tick count and acknowledges.
func scriptedBoard(t *testing.T, ep *BoardEndpoint, echo bool) chan struct {
	grants []Grant
	err    error
} {
	t.Helper()
	out := make(chan struct {
		grants []Grant
		err    error
	}, 1)
	go func() {
		var grants []Grant
		var cycle, tick uint64
		for {
			g, err := ep.WaitGrant()
			if err != nil {
				out <- struct {
					grants []Grant
					err    error
				}{grants, err}
				return
			}
			if g.Finished {
				err := ep.FinishAck(cycle, tick)
				out <- struct {
					grants []Grant
					err    error
				}{grants, err}
				return
			}
			grants = append(grants, g)
			cycle += g.Ticks
			tick++
			if echo {
				if err := ep.PostWrite(0x10, []uint32{uint32(g.Ticks)}); err != nil {
					out <- struct {
						grants []Grant
						err    error
					}{grants, err}
					return
				}
			}
			if err := ep.Ack(cycle, tick, NoLookahead); err != nil {
				out <- struct {
					grants []Grant
					err    error
				}{grants, err}
				return
			}
		}
	}()
	return out
}

func runRendezvous(t *testing.T, mode SyncMode) {
	t.Helper()
	hwT, boardT := NewInProcPair(64)
	hw := NewHWEndpoint(hwT, mode)
	board := NewBoardEndpoint(boardT)
	result := scriptedBoard(t, board, true)

	// Simulate three quanta of 10 ticks with one interrupt + one write in
	// the second.
	var boardData []hdlsim.DataMsg
	for q := 0; q < 3; q++ {
		if q == 1 {
			if err := hw.SendData(hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: 0x20, Words: []uint32{42}}); err != nil {
				t.Fatal(err)
			}
			if err := hw.SendInterrupt(5); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := hw.Sync(10, uint64(10*(q+1))); err != nil {
			t.Fatal(err)
		}
		boardData = append(boardData, hw.PollData()...)
	}
	if err := hw.Finish(30); err != nil {
		t.Fatal(err)
	}
	boardData = append(boardData, hw.PollData()...)

	r := <-result
	if r.err != nil {
		t.Fatalf("board loop: %v", r.err)
	}
	if len(r.grants) != 3 {
		t.Fatalf("board saw %d grants, want 3", len(r.grants))
	}
	// The write+interrupt sent during HW quantum 2 ride grant 2.
	g := r.grants[1]
	if len(g.Writes) != 1 || g.Writes[0].Addr != 0x20 || g.Writes[0].Words[0] != 42 {
		t.Fatalf("grant 2 writes: %+v", g.Writes)
	}
	if len(g.Interrupts) != 1 || g.Interrupts[0] != 5 {
		t.Fatalf("grant 2 interrupts: %+v", g.Interrupts)
	}
	if len(r.grants[0].Writes) != 0 || len(r.grants[2].Writes) != 0 {
		t.Fatalf("stray writes on grants 1/3: %+v", r.grants)
	}
	// Board echoed one write per quantum; all three must reach HW by
	// Finish regardless of mode.
	if len(boardData) != 3 {
		t.Fatalf("%v mode: HW saw %d board writes, want 3", mode, len(boardData))
	}
	for _, d := range boardData {
		if d.Kind != hdlsim.DataWrite || d.Addr != 0x10 || d.Words[0] != 10 {
			t.Fatalf("board write mangled: %+v", d)
		}
	}
	cyc, tick := hw.BoardTime()
	if cyc != 30 || tick != 3 {
		t.Fatalf("final board time %d/%d, want 30/3", cyc, tick)
	}
	hwT.Close()
}

func TestEndpointRendezvousAlternating(t *testing.T) { runRendezvous(t, SyncAlternating) }
func TestEndpointRendezvousPipelined(t *testing.T)   { runRendezvous(t, SyncPipelined) }

func TestAlternatingLatencyIsOneQuantum(t *testing.T) {
	hwT, boardT := NewInProcPair(64)
	hw := NewHWEndpoint(hwT, SyncAlternating)
	board := NewBoardEndpoint(boardT)
	result := scriptedBoard(t, board, true)

	// After Sync of quantum 1, PollData must already hold the board's
	// quantum-1 echo (alternating waits for the ack).
	if _, err := hw.Sync(10, 10); err != nil {
		t.Fatal(err)
	}
	if got := hw.PollData(); len(got) != 1 {
		t.Fatalf("alternating: %d board msgs visible after first sync, want 1", len(got))
	}
	if err := hw.Finish(10); err != nil {
		t.Fatal(err)
	}
	<-result
	hwT.Close()
}

func TestPipelinedLatencyIsTwoQuanta(t *testing.T) {
	hwT, boardT := NewInProcPair(64)
	hw := NewHWEndpoint(hwT, SyncPipelined)
	board := NewBoardEndpoint(boardT)
	result := scriptedBoard(t, board, true)

	// Pipelined: first sync returns without waiting; no board data yet.
	if _, err := hw.Sync(10, 10); err != nil {
		t.Fatal(err)
	}
	if got := hw.PollData(); len(got) != 0 {
		t.Fatalf("pipelined: %d board msgs visible after first sync, want 0", len(got))
	}
	// Second sync consumes ack 1 → board quantum-1 data becomes visible.
	if _, err := hw.Sync(10, 20); err != nil {
		t.Fatal(err)
	}
	if got := hw.PollData(); len(got) != 1 {
		t.Fatalf("pipelined: %d board msgs visible after second sync, want 1", len(got))
	}
	if err := hw.Finish(20); err != nil {
		t.Fatal(err)
	}
	<-result
	hwT.Close()
}

func TestEndpointMetrics(t *testing.T) {
	hwT, boardT := NewInProcPair(64)
	hw := NewHWEndpoint(hwT, SyncAlternating)
	board := NewBoardEndpoint(boardT)
	result := scriptedBoard(t, board, false)

	for q := 0; q < 5; q++ {
		if _, err := hw.Sync(100, uint64(100*(q+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Finish(500); err != nil {
		t.Fatal(err)
	}
	<-result
	m := hw.Metrics()
	if m.SyncEvents != 5 || m.TicksGranted != 500 {
		t.Fatalf("metrics %+v", m)
	}
	if m.BytesSent == 0 {
		t.Fatal("no bytes counted")
	}
	hwT.Close()
}

func TestEndpointOverTCP(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err != nil {
			t.Error(err)
			close(acc)
			return
		}
		acc <- tr
	}()
	boardT, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hwT, ok := <-acc
	if !ok {
		t.Fatal("accept failed")
	}
	hw := NewHWEndpoint(hwT, SyncAlternating)
	board := NewBoardEndpoint(boardT)
	result := scriptedBoard(t, board, true)
	for q := 0; q < 10; q++ {
		if _, err := hw.Sync(7, uint64(7*(q+1))); err != nil {
			t.Fatal(err)
		}
		if got := hw.PollData(); len(got) != 1 || got[0].Words[0] != 7 {
			t.Fatalf("quantum %d: board data %+v", q, got)
		}
	}
	if err := hw.Finish(70); err != nil {
		t.Fatal(err)
	}
	r := <-result
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.grants) != 10 {
		t.Fatalf("board saw %d grants", len(r.grants))
	}
	hwT.Close()
	boardT.Close()
}

func TestBoardReadReqFlow(t *testing.T) {
	// Board posts a read request in quantum 1; HW routes it and responds
	// during quantum 2; response rides grant 3 (alternating: req visible
	// to HW after sync 1, HW answers during quantum 2, counts ride grant
	// for quantum 2... delivered with that grant).
	hwT, boardT := NewInProcPair(64)
	hw := NewHWEndpoint(hwT, SyncAlternating)
	board := NewBoardEndpoint(boardT)

	done := make(chan error, 1)
	var resps []RegBlock
	go func() {
		for {
			g, err := board.WaitGrant()
			if err != nil {
				done <- err
				return
			}
			if g.Finished {
				done <- board.FinishAck(0, 0)
				return
			}
			resps = append(resps, g.ReadResps...)
			if g.HWCycle == 10 { // first quantum: fire the read
				if err := board.PostReadReq(0x50, 2); err != nil {
					done <- err
					return
				}
			}
			if err := board.Ack(g.HWCycle, 0, NoLookahead); err != nil {
				done <- err
				return
			}
		}
	}()

	// Quantum 1: nothing from HW.
	if _, err := hw.Sync(10, 10); err != nil {
		t.Fatal(err)
	}
	// HW now sees the read request and serves it mid-"quantum 2".
	reqs := hw.PollData()
	if len(reqs) != 1 || reqs[0].Kind != hdlsim.DataReadReq || reqs[0].Count != 2 {
		t.Fatalf("HW saw %+v", reqs)
	}
	if err := hw.SendData(hdlsim.DataMsg{Kind: hdlsim.DataReadResp, Addr: 0x50, Words: []uint32{11, 22}}); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Sync(10, 20); err != nil {
		t.Fatal(err)
	}
	if err := hw.Finish(20); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 || resps[0].Addr != 0x50 || len(resps[0].Words) != 2 || resps[0].Words[1] != 22 {
		t.Fatalf("board read responses: %+v", resps)
	}
	hwT.Close()
}
