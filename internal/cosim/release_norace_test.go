//go:build !race

// Pooled-buffer release regressions: each test pins an error or fault
// path that used to drop a decoded message without returning its pooled
// payload. The checks are whitebox — they watch a specific pool wrapper
// come back through the codec pools — so they only run without the race
// detector, which randomizes sync.Pool behavior (same gating as the
// allocation budgets; see allocs_race_test.go).
package cosim

import (
	"encoding/binary"
	"errors"
	"runtime"
	"testing"
)

// pooledDataWrite round-trips a data-write through the codec so the
// result owns a words-pool buffer, and returns that buffer's wrapper.
func pooledDataWrite(t *testing.T) (Msg, *[]uint32) {
	t.Helper()
	src := Msg{Type: MTDataWrite, Addr: 0x40, Words: []uint32{1, 2, 3}}
	m, err := decodeBody(src.appendBody(nil))
	if err != nil {
		t.Fatal(err)
	}
	if m.wordsRef == nil {
		t.Fatal("decode did not draw the payload from the words pool")
	}
	return m, m.wordsRef
}

// wordsPoolContains drains up to a few entries from the words pool
// looking for the given wrapper. Single-threaded and without the race
// detector, a released wrapper is always among the first few Gets.
func wordsPoolContains(ref *[]uint32) bool {
	for i := 0; i < 8; i++ {
		if wordsPool.Get().(*[]uint32) == ref {
			return true
		}
	}
	return false
}

// TestChaosDropReleasesPayload: a frame the fault schedule drops never
// reaches the wire, so the chaos layer is its terminal consumer and must
// recycle the pooled payload instead of leaking it.
func TestChaosDropReleasesPayload(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	a, b := NewInProcPair(1)
	defer a.Close()
	_ = b
	ct := NewChaosTransport(a, UniformScenario(1, FaultProfile{Drop: 1}))
	m, ref := pooledDataWrite(t)
	if err := ct.Send(ChanData, m); err != nil {
		t.Fatal(err)
	}
	if ct.ChaosStats().Dropped != 1 {
		t.Fatal("frame was not dropped")
	}
	if !wordsPoolContains(ref) {
		t.Fatal("dropped frame's pooled words were not returned to the pool")
	}
}

// TestChaosCorruptReleasesOriginal: a corrupted frame is re-decoded into
// a damaged replacement (or lost outright if it no longer parses); either
// way the original's pooled payload must come back to the pool.
func TestChaosCorruptReleasesOriginal(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	a, b := NewInProcPair(4)
	defer a.Close()
	_ = b
	ct := NewChaosTransport(a, UniformScenario(99, FaultProfile{Corrupt: 1}))
	m, ref := pooledDataWrite(t)
	if err := ct.Send(ChanData, m); err != nil {
		t.Fatal(err)
	}
	if ct.ChaosStats().Corrupted != 1 {
		t.Fatal("frame was not corrupted")
	}
	if !wordsPoolContains(ref) {
		t.Fatal("replaced frame's pooled words were not returned to the pool")
	}
}

// errSendTransport fails every Send. Send owns its message even on
// failure, so the transport releases it before reporting the error —
// the same contract the TCP transport honors on a write error.
type errSendTransport struct{ err error }

func (e *errSendTransport) Send(ch Channel, m Msg) error       { m.Release(); return e.err }
func (e *errSendTransport) Recv(ch Channel) (Msg, error)       { return Msg{}, e.err }
func (e *errSendTransport) TryRecv(Channel) (Msg, bool, error) { return Msg{}, false, e.err }
func (e *errSendTransport) Close() error                       { return nil }

// TestBatchSendFlushErrorReleasesMsg: when the CLOCK-triggered flush
// fails, the CLOCK message itself never reaches the wire; the batch
// layer owns it and must recycle its payload before returning the error.
func TestBatchSendFlushErrorReleasesMsg(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	bt := NewBatchTransport(&errSendTransport{err: errors.New("wire down")})
	d1, _ := pooledDataWrite(t)
	d2, _ := pooledDataWrite(t)
	if err := bt.Send(ChanData, d1); err != nil {
		t.Fatal(err)
	}
	if err := bt.Send(ChanData, d2); err != nil {
		t.Fatal(err)
	}
	clk, ref := pooledDataWrite(t)
	if err := bt.Send(ChanClock, clk); err == nil {
		t.Fatal("flush over a dead transport did not error")
	}
	if !wordsPoolContains(ref) {
		t.Fatal("CLOCK message's pooled words were not returned after the flush error")
	}
}

// TestSplitBatchErrorReleasesDecodedPrefix: a batch that aborts
// mid-decode must recycle the entries it already opened.
func TestSplitBatchErrorReleasesDecodedPrefix(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	// One valid entry followed by a truncated header.
	src := Msg{Type: MTDataWrite, Addr: 4, Words: []uint32{7, 8}}
	var raw []byte
	raw = append(raw, 0, 0, 0, 0)
	raw = src.appendBody(raw)
	binary.LittleEndian.PutUint32(raw[:4], uint32(len(raw)-4))
	raw = append(raw, 0xff, 0xff) // next entry's header cut short
	batch := Msg{Type: MTBatch, Count: 2, Raw: raw}

	// Drain the pool, then seed it with a known wrapper so the entry
	// decode inside splitBatch is forced to use it.
	for i := 0; i < 64; i++ {
		wordsPool.Get()
	}
	ref := &[]uint32{}
	wordsPool.Put(ref)

	out, err := splitBatch(batch, nil)
	if err == nil {
		t.Fatal("malformed batch decoded without error")
	}
	if len(out) != 0 {
		t.Fatalf("error path returned %d entries, want 0", len(out))
	}
	if !wordsPoolContains(ref) {
		t.Fatal("decoded prefix's pooled words were not returned after the batch error")
	}
}
