package cosim

import "time"

// StackConfig selects the optional decorator layers of one side of a
// co-simulation link. The zero value is a bare link: BuildStack returns
// the base transport unchanged.
//
// A StackConfig describes ONE side. The two sides of a link must agree
// on which layers are present (a session layer on one side only
// deadlocks; chaos on one side only injures one direction), but each
// side carries its own Scenario so the two directions get independent
// fault streams — see Peer.
type StackConfig struct {
	// Delay adds a fixed wall-clock latency to every send (the paper's
	// host↔board Ethernet; see DelayTransport).
	Delay time.Duration
	// Chaos, when non-nil, injects seeded link faults beneath the
	// session layer (see ChaosTransport). Pair it with Session, or the
	// injured frames will poison the endpoint.
	Chaos *Scenario
	// Session, when non-nil, stacks the resilience layer on top (see
	// SessionTransport).
	Session *SessionConfig
	// Batch, when true, stacks the wire-frame coalescing layer topmost
	// (see BatchTransport): a quantum's DATA/INT/CLOCK messages ride in
	// one MTBatch frame per channel flush. Both sides must enable it
	// together (a batch frame is opaque to a peer without the layer).
	Batch bool
}

// Peer derives the configuration for the opposite side of the link: the
// same layers, with the chaos seed offset so the two directions draw
// independent fault streams. Build one side with cfg and the other with
// cfg.Peer().
func (c StackConfig) Peer() StackConfig {
	if c.Chaos != nil {
		sc := c.Chaos.WithSeed(c.Chaos.Seed + 0x5eed)
		c.Chaos = &sc
	}
	return c
}

// BuildStack wraps base in the configured decorator layers, encoding the
// one correct order once: delay innermost (it models the physical link),
// chaos above it (faults hit the delayed link), the resilient
// session above that (it must see — and repair — everything below), and
// the batching coalescer topmost (one batch becomes one session frame,
// so a whole quantum is retransmitted — or lost to chaos — as a unit). It
// returns the top of the stack and a close function that tears the whole
// stack down; calling it more than once is safe, and closing the top
// transport directly is equivalent (every layer forwards Close), so the
// two-value shape exists to make ownership explicit at call sites.
//
// The returned transport supports Unwrap down to base, so capability
// probes such as the endpoint link-stats harvest keep working.
func BuildStack(base Transport, cfg StackConfig) (Transport, func() error) {
	top := base
	if cfg.Delay > 0 {
		top = NewDelayTransport(top, cfg.Delay)
	}
	if cfg.Chaos != nil {
		top = NewChaosTransport(top, *cfg.Chaos)
	}
	if cfg.Session != nil {
		top = NewSessionTransport(top, *cfg.Session)
	}
	if cfg.Batch {
		top = NewBatchTransport(top)
	}
	closeTop := top
	closeFn := func() error {
		err := closeTop.Close()
		// Belt and braces: every layer forwards Close, but closing the
		// base again is idempotent and guarantees the socket dies even
		// if a future decorator forgets to forward.
		if berr := base.Close(); err == nil {
			err = berr
		}
		return err
	}
	return top, closeFn
}
