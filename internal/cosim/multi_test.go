package cosim

import (
	"testing"

	"repro/internal/hdlsim"
)

// twoBoards wires a MultiHWEndpoint to two scripted boards over in-proc
// transports.
func twoBoards(t *testing.T) (*MultiHWEndpoint, []chan struct {
	grants []Grant
	err    error
}, []Transport) {
	t.Helper()
	m := NewMultiHWEndpoint()
	var results []chan struct {
		grants []Grant
		err    error
	}
	var hwTs []Transport
	for i := 0; i < 2; i++ {
		hwT, boardT := NewInProcPair(64)
		hwTs = append(hwTs, hwT)
		ep := NewHWEndpoint(hwT, SyncAlternating)
		base := uint32(0x1000 * (i + 1))
		if _, err := m.AddBoard(ep, base, 0x100); err != nil {
			t.Fatal(err)
		}
		if err := m.RouteIRQ(uint8(10+i), i); err != nil {
			t.Fatal(err)
		}
		results = append(results, scriptedBoard(t, NewBoardEndpoint(boardT), true))
	}
	return m, results, hwTs
}

func TestMultiBoardGrantFanout(t *testing.T) {
	m, results, hwTs := twoBoards(t)
	if m.Boards() != 2 {
		t.Fatalf("boards = %d", m.Boards())
	}
	// Traffic targeted per window plus per-line interrupts.
	if err := m.SendData(hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: 0x1004, Words: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	if err := m.SendData(hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: 0x2004, Words: []uint32{2}}); err != nil {
		t.Fatal(err)
	}
	if err := m.SendInterrupt(11); err != nil {
		t.Fatal(err)
	}
	bc, err := m.Sync(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if bc != 10 {
		t.Fatalf("slowest board cycle %d, want 10", bc)
	}
	// Both boards echo one write per quantum: both visible after the sync.
	if got := m.PollData(); len(got) != 2 {
		t.Fatalf("PollData returned %d messages, want one echo per board", len(got))
	}
	if err := m.Finish(10); err != nil {
		t.Fatal(err)
	}
	for i, rc := range results {
		r := <-rc
		if r.err != nil {
			t.Fatalf("board %d: %v", i, r.err)
		}
		if len(r.grants) != 1 {
			t.Fatalf("board %d saw %d grants", i, len(r.grants))
		}
		g := r.grants[0]
		if len(g.Writes) != 1 {
			t.Fatalf("board %d writes: %+v", i, g.Writes)
		}
		wantVal := uint32(i + 1)
		if g.Writes[0].Words[0] != wantVal {
			t.Fatalf("board %d got word %d, want %d (cross-routing?)", i, g.Writes[0].Words[0], wantVal)
		}
		wantInts := 0
		if i == 1 {
			wantInts = 1
		}
		if len(g.Interrupts) != wantInts {
			t.Fatalf("board %d interrupts: %v", i, g.Interrupts)
		}
	}
	for _, tr := range hwTs {
		tr.Close()
	}
}

func TestMultiBoardRoutingErrors(t *testing.T) {
	m, results, hwTs := twoBoards(t)
	if err := m.SendData(hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: 0x9999}); err == nil {
		t.Fatal("unmapped address routed")
	}
	if err := m.SendInterrupt(42); err == nil {
		t.Fatal("unrouted interrupt accepted")
	}
	if err := m.RouteIRQ(1, 9); err == nil {
		t.Fatal("RouteIRQ to missing board accepted")
	}
	if _, err := m.AddBoard(m.Member(0), 0x1080, 0x100); err == nil {
		t.Fatal("overlapping window accepted")
	}
	if err := m.Finish(0); err != nil {
		t.Fatal(err)
	}
	for _, rc := range results {
		<-rc
	}
	for _, tr := range hwTs {
		tr.Close()
	}
}

func TestMultiBoardEmptySyncIsNoop(t *testing.T) {
	m := NewMultiHWEndpoint()
	bc, err := m.Sync(10, 42)
	if err != nil || bc != 42 {
		t.Fatalf("empty multi sync: %d %v", bc, err)
	}
	if err := m.Finish(42); err != nil {
		t.Fatal(err)
	}
	if got := m.PollData(); len(got) != 0 {
		t.Fatalf("empty multi produced data: %v", got)
	}
}

func TestMultiBoardSlowestCycleReported(t *testing.T) {
	// Boards that report different local cycles: Sync returns the minimum.
	m := NewMultiHWEndpoint()
	var hwTs []Transport
	for i := 0; i < 2; i++ {
		hwT, boardT := NewInProcPair(16)
		hwTs = append(hwTs, hwT)
		ep := NewHWEndpoint(hwT, SyncAlternating)
		if _, err := m.AddBoard(ep, uint32(0x100*(i+1)), 0x10); err != nil {
			t.Fatal(err)
		}
		mult := uint64(i + 1) // board 1 runs 2x the cycles per tick
		go func(be *BoardEndpoint, mult uint64) {
			var cy uint64
			for {
				g, err := be.WaitGrant()
				if err != nil || g.Finished {
					be.FinishAck(cy, 0)
					return
				}
				cy += g.Ticks * mult
				be.Ack(cy, 0, NoLookahead)
			}
		}(NewBoardEndpoint(boardT), mult)
	}
	bc, err := m.Sync(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bc != 100 {
		t.Fatalf("Sync reported %d, want slowest (min) 100", bc)
	}
	if err := m.Finish(100); err != nil {
		t.Fatal(err)
	}
	for _, tr := range hwTs {
		tr.Close()
	}
}
