package cosim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// NumChannels is the number of logical channels, exported for sizing
// per-channel fault-scenario tables.
const NumChannels = int(numChannels)

// FaultProfile sets independent per-frame fault probabilities for one
// channel direction. All fields are in [0,1].
type FaultProfile struct {
	Drop      float64 // frame silently discarded
	Duplicate float64 // frame sent twice
	Reorder   float64 // frame held back and sent after its successor
	Corrupt   float64 // one bit of the encoded body flipped
	Truncate  float64 // encoded body cut short
	Delay     float64 // wall-clock stall before the send
	// MaxDelay bounds the stall drawn when Delay fires (default 1ms).
	MaxDelay time.Duration
}

// Scenario is a reproducible fault-injection schedule: a seed plus one
// FaultProfile per channel. Two ChaosTransports built from the same
// Scenario injure exactly the same frame indices on each channel.
type Scenario struct {
	Seed    int64
	Profile [NumChannels]FaultProfile
}

// UniformScenario applies the same profile to all three channels.
func UniformScenario(seed int64, p FaultProfile) Scenario {
	sc := Scenario{Seed: seed}
	for i := range sc.Profile {
		sc.Profile[i] = p
	}
	return sc
}

// WithSeed returns a copy of the scenario under a different seed (used to
// give the two directions of a link independent fault streams).
func (sc Scenario) WithSeed(seed int64) Scenario {
	sc.Seed = seed
	return sc
}

// ChaosStats counts the faults a ChaosTransport injected.
type ChaosStats struct {
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Corrupted  uint64
	Truncated  uint64
	Delayed    uint64
}

// Injured is the total number of frames tampered with in any way.
func (s ChaosStats) Injured() uint64 {
	return s.Dropped + s.Duplicated + s.Reordered + s.Corrupted + s.Truncated + s.Delayed
}

type chaosLane struct {
	mu   sync.Mutex
	rng  *rand.Rand
	prof FaultProfile
	held *Msg // frame stashed by a reorder fault
}

// ChaosTransport is a deterministic, seeded fault-injection decorator for
// the send direction of a Transport: it drops, duplicates, reorders,
// delays, truncates, and bit-flips frames per channel according to a
// Scenario. A fixed number of random draws is consumed per frame, so the
// fault schedule is a pure function of (seed, channel, frame index) and
// is reproducible regardless of cross-channel timing. Wrap both peers'
// transports to injure both directions.
//
// Corruption operates on the encoded wire body: the tampered bytes are
// re-decoded, and a frame that no longer parses is lost, exactly as a
// CRC-failing frame vanishes at a real NIC. Use it beneath a
// SessionTransport, which detects and repairs every one of these faults.
type ChaosTransport struct {
	inner Transport
	lanes [numChannels]chaosLane

	dropped, duplicated, reordered atomic.Uint64
	corrupted, truncated, delayed  atomic.Uint64
}

// NewChaosTransport wraps inner with the scenario's fault schedule.
func NewChaosTransport(inner Transport, sc Scenario) *ChaosTransport {
	c := &ChaosTransport{inner: inner}
	for i := range c.lanes {
		c.lanes[i].rng = rand.New(rand.NewSource(sc.Seed ^ int64(i+1)*0x9E3779B9))
		c.lanes[i].prof = sc.Profile[i]
	}
	return c
}

// Send implements Transport, injecting faults per the scenario.
func (c *ChaosTransport) Send(ch Channel, m Msg) error {
	if ch >= numChannels {
		return fmt.Errorf("cosim: invalid channel %d", ch)
	}
	l := &c.lanes[ch]
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.prof
	// Exactly nine draws per frame, always, so the schedule depends only
	// on the frame's index within its channel.
	drop := l.rng.Float64() < p.Drop
	dup := l.rng.Float64() < p.Duplicate
	reorder := l.rng.Float64() < p.Reorder
	corrupt := l.rng.Float64() < p.Corrupt
	truncate := l.rng.Float64() < p.Truncate
	delay := l.rng.Float64() < p.Delay
	bitPos := l.rng.Float64()
	cutPos := l.rng.Float64()
	delayFrac := l.rng.Float64()

	if delay {
		c.delayed.Add(1)
		maxD := p.MaxDelay
		if maxD <= 0 {
			maxD = time.Millisecond
		}
		time.Sleep(time.Duration(delayFrac * float64(maxD))) //cosim:wallclock -- fault-injection delay models host link latency, not simulated time
	}

	out, lost := m, false
	if truncate || corrupt {
		body := m.appendBody(nil)
		if truncate {
			c.truncated.Add(1)
			body = body[:1+int(cutPos*float64(len(body)-1))]
		}
		if corrupt {
			c.corrupted.Add(1)
			bit := int(bitPos * float64(len(body)*8))
			if bit >= len(body)*8 {
				bit = len(body)*8 - 1
			}
			body[bit/8] ^= 1 << (bit % 8)
		}
		dm, err := decodeBody(body) //cosim:owns -- dm replaces m as the outbound frame; `out` aliases it and every path below queues, sends, or releases out
		if err != nil {
			lost = true // unparseable on the wire: the frame is gone
		} else {
			// The damaged copy owns fresh pooled payloads; the original's
			// go back to the pool here.
			m.Release()
			out = dm
		}
	}
	if drop {
		c.dropped.Add(1)
		lost = true
	}
	if lost {
		// The frame vanishes on the simulated wire, so this layer is its
		// terminal consumer: recycle the payloads instead of leaking them.
		out.Release()
	}

	var queue []Msg
	stashed := false
	if !lost {
		if reorder && l.held == nil {
			c.reordered.Add(1)
			// Stash an independent copy: the original's payload buffers may
			// be recycled (pooled release downstream, or a session body
			// reused after a nack-healed ack) before the held frame is
			// finally sent.
			held := clonePayloads(out)
			l.held = &held
			out.Release()
			stashed = true
		} else {
			queue = append(queue, out)
			if dup {
				c.duplicated.Add(1)
				// The duplicate gets its own payload copy so the two sends
				// can never double-release or alias one pooled buffer.
				queue = append(queue, clonePayloads(out))
			}
		}
	}
	// A held frame is released after a later frame overtakes it.
	if l.held != nil && !stashed && len(queue) > 0 {
		queue = append(queue, *l.held)
		l.held = nil
	}
	for i, q := range queue {
		if err := c.inner.Send(ch, q); err != nil {
			// Send consumed q; the frames still queued behind it are ours
			// to recycle before the error propagates.
			for _, rest := range queue[i+1:] {
				rest.Release()
			}
			return err
		}
	}
	return nil
}

// Recv implements Transport (faults are injected on the send side only).
func (c *ChaosTransport) Recv(ch Channel) (Msg, error) { return c.inner.Recv(ch) }

// TryRecv implements Transport.
func (c *ChaosTransport) TryRecv(ch Channel) (Msg, bool, error) { return c.inner.TryRecv(ch) }

func (c *ChaosTransport) recvTimeout(ch Channel, d time.Duration) (Msg, error) {
	if rt, ok := c.inner.(recvTimeouter); ok {
		return rt.recvTimeout(ch, d)
	}
	return RecvTimeout(c.inner, ch, d)
}

// Close implements Transport, flushing any frame still held by a reorder
// fault so the stream's tail is not lost.
func (c *ChaosTransport) Close() error {
	for ch := range c.lanes {
		l := &c.lanes[ch]
		l.mu.Lock()
		if l.held != nil {
			_ = c.inner.Send(Channel(ch), *l.held)
			l.held = nil
		}
		l.mu.Unlock()
	}
	return c.inner.Close()
}

// ChaosStats returns a snapshot of the injected-fault counters.
func (c *ChaosTransport) ChaosStats() ChaosStats {
	return ChaosStats{
		Dropped:    c.dropped.Load(),
		Duplicated: c.duplicated.Load(),
		Reordered:  c.reordered.Load(),
		Corrupted:  c.corrupted.Load(),
		Truncated:  c.truncated.Load(),
		Delayed:    c.delayed.Load(),
	}
}

// LinkStats implements linkStatser for chaos-without-session runs.
func (c *ChaosTransport) LinkStats() LinkStats {
	return LinkStats{FramesInjured: c.ChaosStats().Injured()}
}

// Unwrap implements Unwrapper.
func (c *ChaosTransport) Unwrap() Transport { return c.inner }

var _ Transport = (*ChaosTransport)(nil)
var _ recvTimeouter = (*ChaosTransport)(nil)
