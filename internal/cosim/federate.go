package cosim

import "fmt"

// SimTime is a point on a federation's shared virtual clock, measured in
// grant ticks — the same unit the wire protocol's MTClockGrant carries
// and the HDL simulator's cycle counter advances by. Time is absolute
// and monotonic within one federation run, starting at 0.
type SimTime uint64

// FedMsgKind discriminates the events federates exchange at quantum
// boundaries. The kinds mirror the wire protocol's DATA/INT traffic, so
// a ProcFederate can forward them byte-identically.
type FedMsgKind uint8

const (
	// FedWrite posts a register-block write into the destination's
	// address space (visible there from its next Step).
	FedWrite FedMsgKind = iota + 1
	// FedReadReq requests Count words from Addr; the destination answers
	// with a FedReadResp in a later exchange (split-phase).
	FedReadReq
	// FedReadResp completes an earlier FedReadReq.
	FedReadResp
	// FedInt raises interrupt line IRQ at the destination.
	FedInt
)

// String implements fmt.Stringer.
func (k FedMsgKind) String() string {
	switch k {
	case FedWrite:
		return "fed-write"
	case FedReadReq:
		return "fed-read-req"
	case FedReadResp:
		return "fed-read-resp"
	case FedInt:
		return "fed-int"
	default:
		return fmt.Sprintf("FedMsgKind(%d)", uint8(k))
	}
}

// FedMsg is one boundary-exchanged event between federates. Data kinds
// are routed by word address through the federation's link windows;
// FedInt is routed by interrupt line. Words follows the same ownership
// discipline as the wire protocol: the producer hands the slice over and
// must not retain it.
type FedMsg struct {
	Kind  FedMsgKind
	Addr  uint32   // word address (data kinds)
	Count uint32   // word count (FedReadReq)
	Words []uint32 // payload (FedWrite / FedReadResp)
	IRQ   uint8    // interrupt line (FedInt)
}

// Federate is one party of an N-way co-simulation: a simulation engine
// that can advance its local clock to a requested virtual time and
// exchange timestamped events with the rest of the federation at quantum
// boundaries. The three in-tree engines implement it — the HDL kernel
// (SimFederate), the virtual board (board.Federate), and an external
// process speaking the v2 wire protocol (ProcFederate) — and the
// hierarchical time manager (internal/cosim/federation) coordinates any
// mix of them under one conservative quantum clock.
//
// The contract mirrors FMI-style co-simulation units: all methods are
// called from the time manager's single goroutine, in a deterministic
// order, and a federate must never observe an event timestamped at or
// after a boundary before it has stepped up to that boundary.
type Federate interface {
	// Name identifies the federate in stats, metrics and errors.
	Name() string
	// Step advances the federate's local clock to the absolute virtual
	// time until and returns the time actually reached. reached < until
	// reports that the federate stopped early (end of workload); the
	// manager then winds the federation down at that time.
	Step(until SimTime) (reached SimTime, err error)
	// Exchange delivers inbound boundary events (visible from the next
	// Step) and returns the events this federate emitted since the
	// previous Exchange. Both directions may be empty; a nil input is a
	// pure collection call.
	Exchange(in []FedMsg) (out []FedMsg, err error)
	// Lookahead is the federate's conservative promise, in grant ticks:
	// no event will be emitted and nothing can become runnable locally
	// for at least this many ticks beyond its current time without
	// federation input. NoLookahead (0) promises nothing;
	// UnboundedLookahead means nothing is scheduled at all.
	Lookahead() uint64
	// Done reports that the federate has finished its workload and no
	// longer needs virtual time.
	Done() bool
	// Finish terminates the federate at final time at, completing any
	// protocol shutdown handshake. It is called exactly once, after the
	// last Step/Exchange.
	Finish(at SimTime) error
}

// SplitStepper is an optional Federate capability: a federate whose Step
// blocks on an external party (e.g. a wire-protocol acknowledgement) can
// split the advance so the time manager overlaps independent federates
// in wall-clock time. BeginStep launches the advance (sends the grant);
// the following Step(until) with the same bound completes it (waits for
// the acknowledgement). The pair must be equivalent to a plain Step.
type SplitStepper interface {
	BeginStep(until SimTime) error
}

// LookaheadSink is an optional Federate capability: a federate that
// forwards the federation's promise to a remote party (the grant's
// Lookahead field) implements it to receive, before each rendezvous, the
// minimum lookahead of all other federates.
type LookaheadSink interface {
	SetGrantLookahead(ticks uint64)
}

// SyncRecorder is an optional Federate capability: a federate that keeps
// the pairwise DriverStats accounting (SyncEvents / SyncsElided /
// LastBoardCy) implements it so the time manager's boundary decisions
// land in the same counters the pairwise path fills — the bit-identity
// checks compare them directly.
type SyncRecorder interface {
	RecordSync(peerCycle uint64)
	RecordElision()
}

// BoardClock is an optional Federate capability: a federate fronting a
// board-side kernel reports the board's local cycle and software tick
// from its most recent acknowledgement, so the manager can fold the
// slowest board time into the pairwise-compatible stats.
type BoardClock interface {
	BoardTime() (cycle, swTick uint64)
}
