package cosim

import (
	"fmt"

	"repro/internal/hdlsim"
)

// SimFederate adapts an hdlsim kernel to the Federate interface: the
// device engine of a federation. It drives the simulator with the same
// per-cycle stepping core as the pairwise path (hdlsim.Driver), but
// instead of a wire endpoint the kernel talks to an in-memory buffer —
// outbound DATA/INT traffic accumulates until the next Exchange, and
// inbound events delivered by Exchange become visible to the kernel at
// the first cycle of its next Step, exactly when the pairwise endpoint
// releases a quantum boundary's traffic.
type SimFederate struct {
	name string
	d    *hdlsim.Driver
	ep   *fedBufEndpoint
	cur  SimTime
}

// NewSimFederate elaborates the simulator and wraps it as a federate.
// One grant tick equals one HDL clock cycle, as in the pairwise path.
func NewSimFederate(name string, s *hdlsim.Simulator, clk *hdlsim.Clock) (*SimFederate, error) {
	ep := &fedBufEndpoint{}
	d, err := s.NewDriver(clk, ep)
	if err != nil {
		return nil, err
	}
	return &SimFederate{name: name, d: d, ep: ep}, nil
}

// Name implements Federate.
func (f *SimFederate) Name() string { return f.name }

// Step implements Federate: it runs the kernel cycle by cycle up to
// until, stopping early if the simulation halts itself.
func (f *SimFederate) Step(until SimTime) (SimTime, error) {
	for f.cur < until && !f.d.Stopped() {
		if err := f.d.Cycle(); err != nil {
			return f.cur, err
		}
		f.cur++
	}
	return f.cur, nil
}

// Exchange implements Federate: inbound events land in the kernel's
// DATA-poll buffer (visible at the next cycle), and the DATA/INT traffic
// the kernel emitted since the last call is returned. The returned slice
// is reused by the next Exchange — route it before calling again.
func (f *SimFederate) Exchange(in []FedMsg) ([]FedMsg, error) {
	if f.ep.polled {
		// The kernel consumed the previous delivery synchronously inside
		// its Step, so the backing array is free to reuse.
		f.ep.inbox = f.ep.inbox[:0]
		f.ep.polled = false
	}
	for _, m := range in {
		switch m.Kind {
		case FedWrite:
			f.ep.inbox = append(f.ep.inbox, hdlsim.DataMsg{Kind: hdlsim.DataWrite, Addr: m.Addr, Words: m.Words})
		case FedReadReq:
			f.ep.inbox = append(f.ep.inbox, hdlsim.DataMsg{Kind: hdlsim.DataReadReq, Addr: m.Addr, Count: m.Count})
		default:
			return nil, fmt.Errorf("cosim: %s: device federate cannot accept %v", f.name, m.Kind)
		}
	}
	out := f.ep.out
	f.ep.out = f.ep.outFree[:0]
	f.ep.outFree = out[:0]
	return out, nil
}

// Lookahead implements Federate via the simulator's interrupt-lookahead
// oracle (HDL cycles ≡ grant ticks).
func (f *SimFederate) Lookahead() uint64 { return f.d.InterruptLookahead() }

// Done implements Federate.
func (f *SimFederate) Done() bool { return f.d.Stopped() }

// Finish implements Federate; the kernel needs no shutdown handshake.
func (f *SimFederate) Finish(at SimTime) error { return nil }

// TrafficPending reports whether the kernel emitted traffic not yet
// collected by Exchange — the manager's a-posteriori elision check.
func (f *SimFederate) TrafficPending() bool { return len(f.ep.out) > 0 }

// RecordSync implements SyncRecorder.
func (f *SimFederate) RecordSync(peerCycle uint64) { f.d.RecordSync(peerCycle) }

// RecordElision implements SyncRecorder.
func (f *SimFederate) RecordElision() { f.d.RecordElision() }

// Stats returns the pairwise-compatible driver counters.
func (f *SimFederate) Stats() hdlsim.DriverStats { return f.d.Stats() }

// fedBufEndpoint is the in-memory hdlsim.DriverEndpoint behind a
// SimFederate: PollData releases the inbox once per delivery (matching
// HWEndpoint's once-per-quantum visibility), sends buffer into the
// outbox, and the boundary methods are never used — the time manager
// owns synchronization.
type fedBufEndpoint struct {
	inbox   []hdlsim.DataMsg
	polled  bool // inbox was released to the kernel and may be recycled
	out     []FedMsg
	outFree []FedMsg // swap buffer so Exchange reuses collected slices
}

func (ep *fedBufEndpoint) PollData() []hdlsim.DataMsg {
	if ep.polled || len(ep.inbox) == 0 {
		return nil
	}
	ep.polled = true
	return ep.inbox
}

func (ep *fedBufEndpoint) SendData(d hdlsim.DataMsg) error {
	switch d.Kind {
	case hdlsim.DataWrite:
		ep.out = append(ep.out, FedMsg{Kind: FedWrite, Addr: d.Addr, Words: d.Words})
	case hdlsim.DataReadResp:
		ep.out = append(ep.out, FedMsg{Kind: FedReadResp, Addr: d.Addr, Words: d.Words})
	default:
		return fmt.Errorf("cosim: federate device cannot send %v on DATA", d.Kind)
	}
	return nil
}

func (ep *fedBufEndpoint) SendInterrupt(irq uint8) error {
	ep.out = append(ep.out, FedMsg{Kind: FedInt, IRQ: irq})
	return nil
}

func (ep *fedBufEndpoint) Sync(ticks, hwCycle uint64) (uint64, error) {
	return 0, fmt.Errorf("cosim: federate buffer endpoint has no Sync; the time manager owns boundaries")
}

func (ep *fedBufEndpoint) Finish(hwCycle uint64) error { return nil }

var _ hdlsim.DriverEndpoint = (*fedBufEndpoint)(nil)
var _ Federate = (*SimFederate)(nil)
var _ SyncRecorder = (*SimFederate)(nil)
