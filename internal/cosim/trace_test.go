package cosim

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceTransportLogsBothDirections(t *testing.T) {
	a, b := NewInProcPair(16)
	var log bytes.Buffer
	ta := NewTraceTransport(a, &log)

	if err := ta.Send(ChanClock, Msg{Type: MTClockGrant, Ticks: 7, HWCycle: 14, DataCount: 1, IntCount: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(ChanData, Msg{Type: MTDataWrite, Addr: 0x20, Words: []uint32{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.Recv(ChanData); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(ChanInt, Msg{Type: MTInterrupt, IRQ: 5}); err != nil {
		t.Fatal(err)
	}
	if m, ok, err := ta.TryRecv(ChanInt); !ok || err != nil || m.IRQ != 5 {
		t.Fatalf("TryRecv: %+v %v %v", m, ok, err)
	}

	out := log.String()
	for _, want := range []string{
		"SEND CLOCK clock-grant ticks=7 hw=14 data=1 int=2",
		"RECV DATA  data-write addr=0x20 words=2",
		"RECV INT   interrupt irq=5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	// Every line carries a timestamp prefix.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "+") || !strings.Contains(line, "s ") {
			t.Fatalf("line without timestamp: %q", line)
		}
	}
	ta.Close()
}

func TestSummarizeAllTypes(t *testing.T) {
	msgs := []Msg{
		{Type: MTHello, Version: 1},
		{Type: MTClockGrant},
		{Type: MTTimeAck},
		{Type: MTFinish},
		{Type: MTFinishAck},
		{Type: MTInterrupt},
		{Type: MTDataWrite},
		{Type: MTDataReadReq},
		{Type: MTDataReadResp},
		{Type: MsgType(99)},
	}
	for _, m := range msgs {
		if SummarizeMsg(m) == "" {
			t.Fatalf("no summary for %v", m.Type)
		}
	}
}

func TestTracedEndpointsStillInteroperate(t *testing.T) {
	hwT, boardT := NewInProcPair(64)
	var hwLog, boardLog bytes.Buffer
	hw := NewHWEndpoint(NewTraceTransport(hwT, &hwLog), SyncAlternating)
	board := NewBoardEndpoint(NewTraceTransport(boardT, &boardLog))
	result := scriptedBoard(t, board, true)
	for q := 0; q < 3; q++ {
		if _, err := hw.Sync(10, uint64(10*(q+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Finish(30); err != nil {
		t.Fatal(err)
	}
	if r := <-result; r.err != nil {
		t.Fatal(r.err)
	}
	if !strings.Contains(hwLog.String(), "finish hw=30") {
		t.Fatalf("hw trace incomplete:\n%s", hwLog.String())
	}
	if strings.Count(boardLog.String(), "RECV CLOCK clock-grant") != 3 {
		t.Fatalf("board trace grants:\n%s", boardLog.String())
	}
	hwT.Close()
}
