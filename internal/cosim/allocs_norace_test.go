//go:build !race

package cosim

// Without the race detector the pools retain everything: budgets are
// enforced as written.
const raceAllocSlack = 1.0
