package cosim

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// maxBatchPayload bounds the concatenated inner bodies of one MTBatch so
// the batch frame — plus a session envelope's 17-byte header on top —
// still fits in maxFrameBody.
const maxBatchPayload = maxFrameBody - 64

// BatchStats is a snapshot of a BatchTransport's coalescing counters.
type BatchStats struct {
	// Flushes counts MTBatch frames sent (each replacing ≥2 sends).
	Flushes uint64
	// Batched counts messages that rode inside an MTBatch frame.
	Batched uint64
	// Bypassed counts messages sent as plain frames: CLOCK traffic and
	// flushes that held a single message (wrapping one message would
	// only add overhead).
	Bypassed uint64
	// Opened counts MTBatch frames received and spliced open.
	Opened uint64
}

// BatchTransport is the wire-frame coalescing layer of the adaptive hot
// path: DATA and INT sends are buffered and emitted as one MTBatch frame
// per channel when the quantum-boundary CLOCK message goes out, so a
// quantum costs one frame per active channel instead of one per message.
// On the receive side, MTBatch frames are spliced transparently back into
// individual messages, in order.
//
// Stack it on top of the session layer (BuildStack does): one batch then
// rides in a single sequenced/CRC'd/acknowledged MTSessionData envelope,
// so the resilience cost is also paid once per flush. Both sides of a
// link must enable batching together — a batch frame reaching a bare
// endpoint is a protocol error.
//
// The flush-on-CLOCK policy is exactly the protocol's delivery contract:
// cross-traffic is only observed at quantum boundaries, and every
// boundary is marked by a CLOCK message sent after the traffic it
// announces (grants carry DataCount/IntCount; acks carry DataCount).
type BatchTransport struct {
	inner Transport

	pend      [numChannels][]Msg // buffered sends, flushed on CLOCK traffic
	pendBytes [numChannels]int
	inbox     [numChannels][]Msg // spliced-open batches awaiting Recv
	inboxHead [numChannels]int   // consumed prefix; backing reused when drained
	scratch   []Msg              // splitBatch scratch, reused per accept

	flushes  atomic.Uint64
	batched  atomic.Uint64
	bypassed atomic.Uint64
	opened   atomic.Uint64

	side string // observability label, set by the endpoint's Observe walk
}

// NewBatchTransport wraps inner in the coalescing layer.
func NewBatchTransport(inner Transport) *BatchTransport {
	return &BatchTransport{inner: inner, side: "link"}
}

// Send implements Transport. DATA and INT messages are buffered; CLOCK
// messages flush every buffered channel, then pass through, preserving
// the boundary ordering the protocol's drain counts rely on.
func (t *BatchTransport) Send(ch Channel, m Msg) error {
	if ch == ChanClock {
		if err := t.Flush(); err != nil {
			// Send owns m; a failed flush means it never reaches the wire,
			// so its payloads go back to the pool here.
			m.Release()
			return err
		}
		t.bypassed.Add(1)
		return t.inner.Send(ch, m)
	}
	sz := m.WireSize() // frame prefix ≈ the batch's per-message length prefix
	if sz > maxBatchPayload {
		// Too large to ever share a batch: flush what's pending on this
		// channel (order!) and send it as its own frame.
		if err := t.flushChan(ch); err != nil {
			m.Release()
			return err
		}
		t.bypassed.Add(1)
		return t.inner.Send(ch, m)
	}
	if t.pendBytes[ch]+sz > maxBatchPayload {
		if err := t.flushChan(ch); err != nil {
			m.Release()
			return err
		}
	}
	t.pend[ch] = append(t.pend[ch], m)
	t.pendBytes[ch] += sz
	return nil
}

// Flush emits every buffered channel's pending messages. It is called
// automatically on CLOCK sends and on Close; call it directly only when
// driving the transport outside the grant/ack protocol.
func (t *BatchTransport) Flush() error {
	for ch := Channel(0); ch < numChannels; ch++ {
		if err := t.flushChan(ch); err != nil {
			return err
		}
	}
	return nil
}

// flushChan emits channel ch's buffer: nothing for an empty buffer, the
// bare message for a single entry, one MTBatch frame otherwise.
func (t *BatchTransport) flushChan(ch Channel) error {
	pend := t.pend[ch]
	if len(pend) == 0 {
		return nil
	}
	t.pend[ch] = t.pend[ch][:0]
	t.pendBytes[ch] = 0
	if len(pend) == 1 {
		t.bypassed.Add(1)
		m := pend[0]
		pend[0] = Msg{} // drop the buffered copy's payload references
		return t.inner.Send(ch, m)
	}
	// The flush body comes from the codec's raw pool; the batch message is
	// marked pooled, so whichever layer consumes it — the session copying
	// it into an envelope, the TCP writer encoding it, or the in-process
	// peer splicing it open — releases the buffer.
	raw, rawRef := getPooledRawCap(64 * len(pend))
	for i := range pend {
		lenAt := len(raw)
		raw = append(raw, 0, 0, 0, 0)
		raw = pend[i].appendBody(raw)
		binary.LittleEndian.PutUint32(raw[lenAt:], uint32(len(raw)-lenAt-4))
		pend[i] = Msg{} // bodies copied; drop payload references
	}
	t.flushes.Add(1)
	t.batched.Add(uint64(len(pend)))
	return t.inner.Send(ch, Msg{Type: MTBatch, Count: uint32(len(pend)), Raw: raw, rawRef: rawRef})
}

// splitBatch validates and opens one MTBatch into its inner messages,
// appending them to out (callers may pass a reused scratch slice; each
// inner message owns its payloads, so the batch body is not aliased).
func splitBatch(m Msg, out []Msg) ([]Msg, error) {
	p := m.Raw
	start := len(out)
	// A malformed batch aborts mid-decode: the entries already opened own
	// pooled payloads and must be recycled, and the caller keeps the
	// truncated slice so its scratch backing array survives.
	fail := func(err error) ([]Msg, error) {
		for i := start; i < len(out); i++ {
			out[i].Release()
		}
		return out[:start], err
	}
	for len(p) > 0 {
		if len(p) < 4 {
			return fail(fmt.Errorf("cosim: truncated batch entry header"))
		}
		n := binary.LittleEndian.Uint32(p)
		if n == 0 || int(n) > len(p)-4 {
			return fail(fmt.Errorf("cosim: implausible batch entry length %d", n))
		}
		inner, err := decodeBody(p[4 : 4+n])
		if err != nil {
			return fail(fmt.Errorf("cosim: batch entry: %w", err))
		}
		if inner.Type == MTBatch {
			inner.Release()
			return fail(fmt.Errorf("cosim: nested batch"))
		}
		out = append(out, inner)
		p = p[4+n:]
	}
	if uint32(len(out)-start) != m.Count {
		return fail(fmt.Errorf("cosim: batch count %d but %d entries", m.Count, len(out)-start))
	}
	return out, nil
}

// accept splices batch frames open; other messages pass through.
func (t *BatchTransport) accept(ch Channel, m Msg) (Msg, error) {
	if m.Type != MTBatch {
		return m, nil
	}
	inner, err := splitBatch(m, t.scratch[:0])
	t.scratch = inner[:0]
	// Every inner message copied its payload out, so the batch body — the
	// layer's wrapper — is released here, its terminal consumption point.
	m.Release()
	if err != nil {
		return Msg{}, err
	}
	t.opened.Add(1)
	t.inbox[ch] = append(t.inbox[ch], inner...)
	return t.popInbox(ch)
}

// inboxLen is the number of spliced-open messages awaiting Recv on ch.
func (t *BatchTransport) inboxLen(ch Channel) int {
	return len(t.inbox[ch]) - t.inboxHead[ch]
}

func (t *BatchTransport) popInbox(ch Channel) (Msg, error) {
	if t.inboxLen(ch) == 0 {
		return Msg{}, fmt.Errorf("cosim: empty batch on %v", ch)
	}
	m := t.inbox[ch][t.inboxHead[ch]]
	t.inbox[ch][t.inboxHead[ch]] = Msg{}
	t.inboxHead[ch]++
	if t.inboxHead[ch] == len(t.inbox[ch]) {
		// Drained: rewind so the backing array is reused instead of the
		// slice creeping forward one header per pop.
		t.inbox[ch] = t.inbox[ch][:0]
		t.inboxHead[ch] = 0
	}
	return m, nil
}

// Recv implements Transport.
func (t *BatchTransport) Recv(ch Channel) (Msg, error) {
	if t.inboxLen(ch) > 0 {
		return t.popInbox(ch)
	}
	m, err := t.inner.Recv(ch)
	if err != nil {
		return m, err
	}
	return t.accept(ch, m)
}

// TryRecv implements Transport.
func (t *BatchTransport) TryRecv(ch Channel) (Msg, bool, error) {
	if t.inboxLen(ch) > 0 {
		m, err := t.popInbox(ch)
		return m, err == nil, err
	}
	m, ok, err := t.inner.TryRecv(ch)
	if !ok || err != nil {
		return m, ok, err
	}
	m, err = t.accept(ch, m)
	return m, err == nil, err
}

// recvTimeout implements the bounded-wait capability.
func (t *BatchTransport) recvTimeout(ch Channel, d time.Duration) (Msg, error) {
	if t.inboxLen(ch) > 0 {
		return t.popInbox(ch)
	}
	m, err := RecvTimeout(t.inner, ch, d)
	if err != nil {
		return m, err
	}
	return t.accept(ch, m)
}

// Close implements Transport. Buffered unflushed messages are dropped —
// by the flush-on-CLOCK policy there are none on any orderly shutdown
// path (Finish/FinishAck are CLOCK messages).
func (t *BatchTransport) Close() error { return t.inner.Close() }

// Unwrap implements Unwrapper.
func (t *BatchTransport) Unwrap() Transport { return t.inner }

// BatchStats returns a snapshot of the coalescing counters.
func (t *BatchTransport) BatchStats() BatchStats {
	return BatchStats{
		Flushes:  t.flushes.Load(),
		Batched:  t.batched.Load(),
		Bypassed: t.bypassed.Load(),
		Opened:   t.opened.Load(),
	}
}

// BatchStatsOf walks a transport's wrapper chain and returns the first
// batch layer's counters; a stack without batching reports zeros.
func BatchStatsOf(tr Transport) BatchStats {
	for t := tr; t != nil; {
		if b, ok := t.(*BatchTransport); ok {
			return b.BatchStats()
		}
		u, ok := t.(Unwrapper)
		if !ok {
			break
		}
		t = u.Unwrap()
	}
	return BatchStats{}
}

// setObserveSide labels this layer's metrics; the endpoint Observe walk
// calls it before Observe.
func (t *BatchTransport) setObserveSide(side string) { t.side = side }

// Observe implements Instrumentable: live coalescing counters, labelled
// by side.
func (t *BatchTransport) Observe(reg *obs.Registry) {
	name := func(base string) string { return obs.Name(base, "side", t.side) }
	reg.CounterFunc(name("cosim_batch_flushes_total"), t.flushes.Load)
	reg.CounterFunc(name("cosim_batch_msgs_total"), t.batched.Load)
	reg.CounterFunc(name("cosim_batch_bypassed_total"), t.bypassed.Load)
	reg.CounterFunc(name("cosim_batch_opened_total"), t.opened.Load)
}

var (
	_ Transport      = (*BatchTransport)(nil)
	_ recvTimeouter  = (*BatchTransport)(nil)
	_ Unwrapper      = (*BatchTransport)(nil)
	_ Instrumentable = (*BatchTransport)(nil)
	_ sideSetter     = (*BatchTransport)(nil)
)
