//go:build !unix

package cosim

import "os"

// shmMapSupported gates the shared-memory constructors: without mmap the
// shm transport cannot exist, and every constructor returns
// ErrShmUnsupported so callers fall back to UDS or TCP cleanly.
const shmMapSupported = false

// shmMapFile is the unsupported-platform stub.
func shmMapFile(_ *os.File, _ int) ([]byte, func() error, error) {
	return nil, nil, ErrShmUnsupported
}
