package cosim

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceTransport wraps a Transport and writes one line per message to a
// log, timestamped with wall-clock time since creation. It is the
// protocol-level debugging aid for co-simulation sessions: with both
// sides traced, the interleaving of grants, acknowledgements, register
// traffic and interrupts can be reconstructed exactly.
//
// Format (stable, greppable):
//
//	+0.001234s SEND CLOCK clock-grant ticks=1000 hw=2000 data=3 int=1
//	+0.001250s RECV DATA  data-write addr=0x012 words=20
type TraceTransport struct {
	inner Transport
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

// NewTraceTransport wraps inner, logging to w.
func NewTraceTransport(inner Transport, w io.Writer) *TraceTransport {
	return &TraceTransport{inner: inner, w: w, start: time.Now()} //cosim:wallclock -- trace timestamps are debugging metadata, not simulated state
}

func (t *TraceTransport) log(dir string, ch Channel, m Msg) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "+%.6fs %s %-5s %s\n",
		time.Since(t.start).Seconds(), dir, ch, SummarizeMsg(m)) //cosim:wallclock -- trace timestamps are debugging metadata, not simulated state
}

// Send implements Transport.
func (t *TraceTransport) Send(ch Channel, m Msg) error {
	t.log("SEND", ch, m)
	return t.inner.Send(ch, m)
}

// Recv implements Transport.
func (t *TraceTransport) Recv(ch Channel) (Msg, error) {
	m, err := t.inner.Recv(ch)
	if err == nil {
		t.log("RECV", ch, m)
	}
	return m, err
}

// TryRecv implements Transport.
func (t *TraceTransport) TryRecv(ch Channel) (Msg, bool, error) {
	m, ok, err := t.inner.TryRecv(ch)
	if ok && err == nil {
		t.log("RECV", ch, m)
	}
	return m, ok, err
}

// Close implements Transport.
func (t *TraceTransport) Close() error { return t.inner.Close() }

// Unwrap implements Unwrapper.
func (t *TraceTransport) Unwrap() Transport { return t.inner }

// SummarizeMsg renders a message as a one-line, field-labelled summary.
func SummarizeMsg(m Msg) string {
	switch m.Type {
	case MTHello:
		return fmt.Sprintf("hello v%d", m.Version)
	case MTClockGrant:
		return fmt.Sprintf("clock-grant ticks=%d hw=%d data=%d int=%d la=%d",
			m.Ticks, m.HWCycle, m.DataCount, m.IntCount, m.Lookahead)
	case MTTimeAck:
		return fmt.Sprintf("time-ack board=%d tick=%d data=%d la=%d",
			m.BoardCycle, m.SWTick, m.DataCount, m.Lookahead)
	case MTFinish:
		return fmt.Sprintf("finish hw=%d", m.HWCycle)
	case MTFinishAck:
		return fmt.Sprintf("finish-ack board=%d tick=%d", m.BoardCycle, m.SWTick)
	case MTInterrupt:
		return fmt.Sprintf("interrupt irq=%d", m.IRQ)
	case MTDataWrite:
		return fmt.Sprintf("data-write addr=%#x words=%d", m.Addr, len(m.Words))
	case MTDataReadReq:
		return fmt.Sprintf("data-read-req addr=%#x count=%d", m.Addr, m.Count)
	case MTDataReadResp:
		return fmt.Sprintf("data-read-resp addr=%#x words=%d", m.Addr, len(m.Words))
	case MTSessionData:
		return fmt.Sprintf("session-data seq=%d crc=%08x raw=%d", m.Seq, m.Crc, len(m.Raw))
	case MTSessionAck:
		return fmt.Sprintf("session-ack seq=%d", m.Seq)
	case MTSessionNack:
		return fmt.Sprintf("session-nack seq=%d", m.Seq)
	case MTHeartbeat:
		return fmt.Sprintf("heartbeat n=%d", m.Seq)
	case MTBatch:
		return fmt.Sprintf("batch n=%d raw=%d", m.Count, len(m.Raw))
	default:
		return m.Type.String()
	}
}
