package cosim

import (
	"sync"
	"testing"
)

// exerciseTransport runs the same conformance checks against any connected
// transport pair.
func exerciseTransport(t *testing.T, a, b Transport) {
	t.Helper()

	// Per-channel FIFO order, bidirectional.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := a.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		if err := a.Send(ChanClock, Msg{Type: MTClockGrant, Ticks: 7}); err != nil {
			t.Errorf("clock send: %v", err)
		}
	}()
	for i := 0; i < 100; i++ {
		m, err := b.Recv(ChanData)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Addr != uint32(i) {
			t.Fatalf("out of order: got addr %d at position %d", m.Addr, i)
		}
	}
	g, err := b.Recv(ChanClock)
	if err != nil || g.Ticks != 7 {
		t.Fatalf("clock recv: %+v %v", g, err)
	}
	wg.Wait()

	// Channels are independent: a message on INT does not disturb DATA.
	if err := b.Send(ChanInt, Msg{Type: MTInterrupt, IRQ: 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := a.TryRecv(ChanData); ok || err != nil {
		t.Fatalf("TryRecv(DATA) = ok=%v err=%v, want empty", ok, err)
	}
	im, err := a.Recv(ChanInt)
	if err != nil || im.IRQ != 3 {
		t.Fatalf("interrupt recv: %+v %v", im, err)
	}

	// TryRecv sees an already-delivered message.
	if err := b.Send(ChanData, Msg{Type: MTDataReadReq, Addr: 9, Count: 1}); err != nil {
		t.Fatal(err)
	}
	// The message may need a moment to cross a socket; poll.
	var got bool
	for i := 0; i < 10000 && !got; i++ {
		var m Msg
		m, got, err = a.TryRecv(ChanData)
		if err != nil {
			t.Fatal(err)
		}
		if got && m.Addr != 9 {
			t.Fatalf("TryRecv delivered %+v", m)
		}
	}
	if !got {
		// Fall back to blocking receive so slow CI machines still pass.
		if _, err := a.Recv(ChanData); err != nil {
			t.Fatal(err)
		}
	}

	// Invalid channel errors.
	if err := a.Send(Channel(9), Msg{Type: MTInterrupt}); err == nil {
		t.Fatal("send on invalid channel accepted")
	}
	if _, err := a.Recv(Channel(9)); err == nil {
		t.Fatal("recv on invalid channel accepted")
	}
	if _, _, err := a.TryRecv(Channel(9)); err == nil {
		t.Fatal("tryrecv on invalid channel accepted")
	}

	// Close unblocks the peer.
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv(ChanClock)
		done <- err
	}()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if err := <-done; err == nil {
		t.Fatal("Recv returned nil error after close")
	}
}

func TestInProcTransportConformance(t *testing.T) {
	a, b := NewInProcPair(64)
	exerciseTransport(t, a, b)
}

func TestTCPTransportConformance(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var hw Transport
	accepted := make(chan error, 1)
	go func() {
		var err error
		hw, err = ln.Accept()
		accepted <- err
	}()
	board, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	exerciseTransport(t, hw, board)
}

func TestTCPHandshakeVersionMismatch(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	result := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		result <- err
	}()
	// Dial manually with a wrong version on the first channel.
	conn, err := dialRaw(ln.Addr(), 0, ProtocolVersion+1)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := <-result; err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestTCPDuplicateChannelTagRejected(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	result := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		result <- err
	}()
	c1, err := dialRaw(ln.Addr(), byte(ChanData), ProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := dialRaw(ln.Addr(), byte(ChanData), ProtocolVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := <-result; err == nil {
		t.Fatal("duplicate channel tag accepted")
	}
}

func TestInProcCloseDrainsBufferedAck(t *testing.T) {
	a, b := NewInProcPair(8)
	if err := b.Send(ChanClock, Msg{Type: MTFinishAck, BoardCycle: 5}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	// The buffered final ack must still be readable after close.
	m, err := a.Recv(ChanClock)
	if err != nil {
		t.Fatalf("buffered message lost on close: %v", err)
	}
	if m.BoardCycle != 5 {
		t.Fatalf("wrong message drained: %+v", m)
	}
}
