package cosim

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newShmPairT(t *testing.T, cfg ShmConfig) (Transport, Transport) {
	t.Helper()
	if !ShmSupported() {
		t.Skip("shm transport unsupported on this platform")
	}
	hw, board, err := NewShmPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hw.Close(); board.Close() })
	return hw, board
}

func TestShmTransportConformance(t *testing.T) {
	hw, board := newShmPairT(t, ShmConfig{})
	exerciseTransport(t, hw, board)
}

// TestShmUnsupportedProbeConsistent pins the constructor/fallback
// contract: when ShmSupported reports false, every constructor returns
// ErrShmUnsupported (and vice versa NewShmPair works where it reports
// true).
func TestShmUnsupportedProbeConsistent(t *testing.T) {
	hw, board, err := NewShmPair(ShmConfig{})
	if ShmSupported() {
		if err != nil {
			t.Fatalf("ShmSupported()=true but NewShmPair failed: %v", err)
		}
		hw.Close()
		board.Close()
		return
	}
	if !errors.Is(err, ErrShmUnsupported) {
		t.Fatalf("ShmSupported()=false but NewShmPair returned %v, want ErrShmUnsupported", err)
	}
	if _, err := CreateShm(filepath.Join(t.TempDir(), "l"), ShmConfig{}); !errors.Is(err, ErrShmUnsupported) {
		t.Fatalf("CreateShm = %v, want ErrShmUnsupported", err)
	}
	if _, err := OpenShm(filepath.Join(t.TempDir(), "l")); !errors.Is(err, ErrShmUnsupported) {
		t.Fatalf("OpenShm = %v, want ErrShmUnsupported", err)
	}
}

// TestShmWraparound drives enough large frames through a minimum-size
// ring that records must wrap past the buffer end, and checks nothing is
// lost, reordered, or corrupted.
func TestShmWraparound(t *testing.T) {
	hw, board := newShmPairT(t, ShmConfig{RingBytes: ShmMinRingBytes})
	const frames = 500
	words := make([]uint32, 1000) // ~4KB body: ~16 records per ring pass
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			for j := range words {
				words[j] = uint32(i + j)
			}
			if err := hw.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i), Words: words}); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < frames; i++ {
		m, err := board.Recv(ChanData)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Addr != uint32(i) || len(m.Words) != len(words) {
			t.Fatalf("frame %d corrupted: addr=%d words=%d", i, m.Addr, len(m.Words))
		}
		for j, w := range m.Words {
			if w != uint32(i+j) {
				t.Fatalf("frame %d word %d = %d, want %d", i, j, w, i+j)
			}
		}
		m.Release()
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if s := hw.(*ShmTransport).Stats(); s.RingWraps == 0 {
		t.Fatal("expected ring wraps with 4KB frames through a 64KB ring; got none")
	}
}

// TestShmBackpressureBlocksThenDrains fills the ring and the inbox, then
// verifies a parked sender completes once the receiver drains.
func TestShmBackpressureBlocksThenDrains(t *testing.T) {
	hw, board := newShmPairT(t, ShmConfig{RingBytes: ShmMinRingBytes, InboxDepth: 1})
	const frames = 200
	words := make([]uint32, 2000) // ~8KB per record: ring+inbox hold far fewer than 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if err := hw.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i), Words: words}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	// Give the sender time to hit the full ring and park.
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < frames; i++ {
		m, err := board.Recv(ChanData)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Addr != uint32(i) {
			t.Fatalf("recv %d: addr %d", i, m.Addr)
		}
		m.Release()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestShmCloseUnblocksParkedSender proves Close is not deadlocked by a
// sender stuck on a full ring with a full inbox.
func TestShmCloseUnblocksParkedSender(t *testing.T) {
	hw, board := newShmPairT(t, ShmConfig{RingBytes: ShmMinRingBytes, InboxDepth: 1})
	words := make([]uint32, 2000)
	sent := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 1000 && err == nil; i++ {
			err = hw.Send(ChanData, Msg{Type: MTDataWrite, Words: words})
		}
		sent <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-sent:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("parked sender returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sender still blocked after Close")
	}
	board.Close()
}

func TestShmRecvTimeout(t *testing.T) {
	hw, _ := newShmPairT(t, ShmConfig{})
	rt := hw.(interface {
		recvTimeout(Channel, time.Duration) (Msg, error)
	})
	if _, err := rt.recvTimeout(ChanData, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recvTimeout = %v, want ErrTimeout", err)
	}
}

// TestShmOversizeFrameRejected: a frame larger than half the ring can
// never fit and must fail fast instead of parking forever.
func TestShmOversizeFrameRejected(t *testing.T) {
	hw, _ := newShmPairT(t, ShmConfig{RingBytes: ShmMinRingBytes})
	err := hw.Send(ChanData, Msg{Type: MTDataWrite, Words: make([]uint32, 16384)}) // 64KB body > 32KB half-ring
	if err == nil || !strings.Contains(err.Error(), "exceeds shm ring capacity") {
		t.Fatalf("oversize send = %v, want capacity error", err)
	}
}

// TestShmFileLink exercises the two-process shape: CreateShm / OpenShm
// over one path, traffic both ways, close from the opener side.
func TestShmFileLink(t *testing.T) {
	if !ShmSupported() {
		t.Skip("shm transport unsupported on this platform")
	}
	path := filepath.Join(t.TempDir(), "link.shm")
	creator, err := CreateShm(path, ShmConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	opener, err := OpenShm(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opener.Close()
	// The mapping survives the unlink; nothing should break below.
	os.Remove(path)

	if err := creator.Send(ChanClock, Msg{Type: MTClockGrant, Ticks: 41}); err != nil {
		t.Fatal(err)
	}
	if m, err := opener.Recv(ChanClock); err != nil || m.Ticks != 41 {
		t.Fatalf("opener recv: %+v %v", m, err)
	}
	if err := opener.Send(ChanClock, Msg{Type: MTTimeAck, BoardCycle: 7}); err != nil {
		t.Fatal(err)
	}
	if m, err := creator.Recv(ChanClock); err != nil || m.BoardCycle != 7 {
		t.Fatalf("creator recv: %+v %v", m, err)
	}

	// Opener closes; creator's next receive observes the shared flag.
	opener.Close()
	if _, err := creator.Recv(ChanClock); err == nil {
		t.Fatal("creator Recv returned nil error after peer close")
	}
}

func TestShmCreateRefusesExistingPath(t *testing.T) {
	if !ShmSupported() {
		t.Skip("shm transport unsupported on this platform")
	}
	path := filepath.Join(t.TempDir(), "link.shm")
	tr, err := CreateShm(path, ShmConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := CreateShm(path, ShmConfig{}); err == nil {
		t.Fatal("CreateShm over an existing link file succeeded")
	}
}

func TestShmOpenValidatesSegment(t *testing.T) {
	if !ShmSupported() {
		t.Skip("shm transport unsupported on this platform")
	}
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad-magic")
	if err := os.WriteFile(bad, make([]byte, shmSegmentSize(ShmMinRingBytes)), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShm(bad); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("OpenShm(bad magic) = %v", err)
	}

	short := filepath.Join(dir, "truncated")
	if err := os.WriteFile(short, []byte("COSIM"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShm(short); err == nil {
		t.Fatal("OpenShm accepted a truncated segment")
	}

	// A correct header over a file too small for its declared capacity.
	lying := filepath.Join(dir, "lying-cap")
	seg := make([]byte, shmDataOff)
	initShmSegment(seg, ShmDefaultRingBytes)
	if err := os.WriteFile(lying, seg, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShm(lying); err == nil || !strings.Contains(err.Error(), "implausible ring capacity") {
		t.Fatalf("OpenShm(lying capacity) = %v", err)
	}
}

// TestShmRingCorruptLengthPoisons stamps garbage into a record's length
// prefix and checks the reader reports a terminal decode error instead of
// hanging or panicking.
func TestShmRingCorruptLengthPoisons(t *testing.T) {
	seg := newHeapShmSegment(ShmMinRingBytes)
	a, _ := segmentRings(seg, ShmMinRingBytes)
	m := Msg{Type: MTClockGrant, Ticks: 5}
	if _, _, err := a.tryPush(ChanClock, &m); err != nil {
		t.Fatal(err)
	}
	// Corrupt the length in place: larger than the published region.
	seg[shmDataOff+0] = 0xF0
	seg[shmDataOff+1] = 0xFF
	seg[shmDataOff+2] = 0x00
	seg[shmDataOff+3] = 0x00
	if _, _, _, err := a.tryPop(); err == nil || errors.Is(err, errShmEmpty) {
		t.Fatalf("tryPop on corrupt ring = %v, want terminal error", err)
	}
}

// TestShmRingFullEmptyBoundary drives the raw ring verbs to exact
// full/empty transitions.
func TestShmRingFullEmptyBoundary(t *testing.T) {
	seg := newHeapShmSegment(ShmMinRingBytes)
	r, _ := segmentRings(seg, ShmMinRingBytes)

	if _, _, _, err := r.tryPop(); !errors.Is(err, errShmEmpty) {
		t.Fatalf("fresh ring tryPop = %v, want errShmEmpty", err)
	}
	m := Msg{Type: MTDataWrite, Words: make([]uint32, 500)}
	pushed := 0
	for {
		if _, _, err := r.tryPush(ChanData, &m); err != nil {
			if !errors.Is(err, errShmFull) {
				t.Fatal(err)
			}
			break
		}
		pushed++
		if pushed > 10000 {
			t.Fatal("ring never filled")
		}
	}
	if pushed == 0 {
		t.Fatal("ring accepted nothing")
	}
	for i := 0; i < pushed; i++ {
		ch, body, newTail, err := r.tryPop()
		if err != nil {
			t.Fatalf("pop %d/%d: %v", i, pushed, err)
		}
		if ch != ChanData {
			t.Fatalf("pop %d: channel %d", i, ch)
		}
		if dm, derr := decodeBody(body); derr != nil {
			t.Fatalf("pop %d: decode: %v", i, derr)
		} else {
			dm.Release()
		}
		r.hdr.tail.Store(newTail)
	}
	if _, _, _, err := r.tryPop(); !errors.Is(err, errShmEmpty) {
		t.Fatalf("drained ring tryPop = %v, want errShmEmpty", err)
	}
	// After a full drain the ring accepts traffic again.
	if _, _, err := r.tryPush(ChanData, &m); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}
