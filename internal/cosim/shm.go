package cosim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/obs"
)

// The shared-memory transport is the zero-copy local path: both sides of
// a link map the same file and exchange frames through two lock-free
// single-producer/single-consumer ring buffers, one per direction. A
// steady-state Send encodes the message directly into the mapped region
// (the frame bytes are written exactly once, in place — no intermediate
// encode buffer, no write syscall) and a steady-state Recv decodes
// directly out of it (no read syscall, no frame copy); payloads are
// materialized into the codec's pooled buffers exactly as on every other
// transport, which is what the Send/Recv/Release ownership contract
// requires. Waiting is a futex-free busy/park hybrid: a bounded hot spin,
// a few scheduler yields, then short sleeps, so a rendezvous that arrives
// within microseconds never pays a syscall. See docs/TRANSPORTS.md.

// ErrShmUnsupported is returned by the shared-memory constructors on
// platforms without mmap support (see shm_map_stub.go). Callers selecting
// a transport at runtime should probe with ShmSupported and fall back to
// UDS or TCP.
var ErrShmUnsupported = errors.New("cosim: shared-memory transport unsupported on this platform (no mmap)")

// ShmSupported reports whether the shared-memory transport can be
// constructed on this platform.
func ShmSupported() bool { return shmMapSupported }

// Shared-memory segment layout. One file carries both directions:
//
//	offset 0    magic (u64), layout version (u32), ring capacity (u32)
//	offset 64   ring A header: head / tail / closed, one cache line each
//	offset 256  ring B header
//	offset 512  ring A data (capacity bytes)   creator → opener
//	offset 512+C ring B data (capacity bytes)  opener → creator
//
// Each ring is a power-of-two byte buffer with free-running head (writer)
// and tail (reader) indices living in the segment itself, so two
// processes mapping the file share them coherently. Records are
// length-prefixed frames, 4-byte aligned:
//
//	u32 body length | u8 channel | body (type byte + payload)
//
// A record never straddles the wrap point: when the contiguous space at
// the end of the buffer cannot hold the next record, the writer stamps a
// wrap marker (length 0xFFFFFFFF) and continues at offset 0; the reader
// skips the dead space when it meets the marker.
const (
	shmMagic      uint64 = 0x434F53494D53484D // "COSIMSHM"
	shmLayoutVer  uint32 = 1
	shmHdrAOff           = 64
	shmHdrBOff           = 256
	shmDataOff           = 512
	shmWrapMarker uint32 = 0xFFFFFFFF

	// ShmMinRingBytes / ShmDefaultRingBytes bound the per-direction ring
	// capacity. The minimum leaves room for several maximum-size frames;
	// the default comfortably holds a whole quantum's traffic.
	ShmMinRingBytes     = 1 << 16
	ShmDefaultRingBytes = 1 << 20
)

// shmWait tuning: the busy/park hybrid. A blocked side first re-polls
// the indices in a short tight loop (nanoseconds, catches an in-flight
// peer), then yields the processor many times — on a loaded or
// single-core host the peer only makes progress when we yield, so the
// yield budget, not the hot spin, must cover a rendezvous turnaround —
// and finally parks in short sleeps so an idle link does not burn a
// core indefinitely.
const (
	shmHotSpins   = 8
	shmYieldSpins = shmHotSpins + 4096
	shmParkSleep  = 50 * time.Microsecond
)

// errShmFull / errShmEmpty are the non-blocking ring verbs' backpressure
// signals; the transport's wait loops (and the fuzz harness) translate
// them into the busy/park policy.
var (
	errShmFull  = errors.New("cosim: shm ring full")
	errShmEmpty = errors.New("cosim: shm ring empty")
)

// shmRingHdr is the shared control block of one ring direction. Each
// field sits on its own cache line so the two sides' atomics do not
// false-share; the struct lives inside the mapped segment.
type shmRingHdr struct {
	head atomic.Uint64 // next byte the writer will fill (free-running)
	_    [56]byte
	tail atomic.Uint64 // next byte the reader will consume (free-running)
	_    [56]byte
	// closed is set by either side's Close; writers fail fast and the
	// reader drains what remains, then reports ErrClosed.
	closed atomic.Uint32
	_      [60]byte
}

// shmRing is one direction's view over the mapped segment.
type shmRing struct {
	hdr  *shmRingHdr
	data []byte
	size uint64 // len(data), power of two
	mask uint64
}

// shmSegmentSize returns the whole segment's byte size for one ring
// capacity.
func shmSegmentSize(ringBytes int) int { return shmDataOff + 2*ringBytes }

// shmRingAt builds the ring view for the header at hdrOff and the data
// region [dataOff, dataOff+ringBytes).
func shmRingAt(seg []byte, hdrOff, dataOff, ringBytes int) *shmRing {
	return &shmRing{
		hdr:  (*shmRingHdr)(unsafe.Pointer(&seg[hdrOff])),
		data: seg[dataOff : dataOff+ringBytes],
		size: uint64(ringBytes),
		mask: uint64(ringBytes) - 1,
	}
}

// shmRecordBytes is the aligned on-ring footprint of a body of l bytes.
func shmRecordBytes(l int) uint64 { return (uint64(l) + 5 + 3) &^ 3 }

// tryPush appends one record without blocking. It returns errShmFull
// when the reader has not yet freed enough space, the frame's wire byte
// count (body + length prefix, measured before publication — the moment
// the head advances the peer may consume, ack, and recycle the
// message's pooled body, so nothing may read m afterwards), and whether
// the record wrapped past the end of the buffer. The message is encoded
// directly into the mapped region; m's payloads are not released here
// (the caller owns that, mirroring the layered-transport contract).
func (r *shmRing) tryPush(ch Channel, m *Msg) (n int, wrapped bool, err error) {
	bodyLen := m.WireSize() - 4
	need := shmRecordBytes(bodyLen)
	if need > r.size/2 {
		return 0, false, fmt.Errorf("cosim: %d-byte frame exceeds shm ring capacity %d; raise ShmConfig.RingBytes", bodyLen, r.size)
	}
	h := r.hdr.head.Load()
	t := r.hdr.tail.Load()
	free := r.size - (h - t)
	off := h & r.mask
	contig := r.size - off
	if contig < need {
		// The record would straddle the wrap point: burn the tail of the
		// buffer with a marker and start over at offset 0. Alignment keeps
		// contig ≥ 4, so the marker always fits.
		if free < contig+need {
			return 0, false, errShmFull
		}
		binary.LittleEndian.PutUint32(r.data[off:], shmWrapMarker)
		r.writeRecord(0, ch, m, bodyLen)
		r.hdr.head.Store(h + contig + need)
		return bodyLen + 4, true, nil
	}
	if free < need {
		return 0, false, errShmFull
	}
	r.writeRecord(off, ch, m, bodyLen)
	r.hdr.head.Store(h + need)
	return bodyLen + 4, false, nil
}

// writeRecord stamps the length prefix and channel byte, then encodes the
// body in place. appendBody appends exactly WireSize()-4 bytes, so the
// three-index slice can never grow past its record.
func (r *shmRing) writeRecord(off uint64, ch Channel, m *Msg, bodyLen int) {
	binary.LittleEndian.PutUint32(r.data[off:], uint32(bodyLen))
	r.data[off+4] = byte(ch)
	o := int(off) + 5
	dst := r.data[o : o : o+bodyLen]
	if got := m.appendBody(dst); len(got) != bodyLen {
		panic(fmt.Sprintf("cosim: shm encode wrote %d bytes for a %d-byte body", len(got), bodyLen))
	}
}

// tryPop returns the next record's channel and body without blocking
// (errShmEmpty otherwise). The body slice points into the mapped region
// and is valid only until the caller advances the tail to the returned
// index — decode first, then store newTail. A torn or corrupt length
// prefix is reported as a terminal error, never a hang or a panic.
func (r *shmRing) tryPop() (ch Channel, body []byte, newTail uint64, err error) {
	for {
		t := r.hdr.tail.Load()
		h := r.hdr.head.Load()
		if t == h {
			return 0, nil, 0, errShmEmpty
		}
		off := t & r.mask
		l := binary.LittleEndian.Uint32(r.data[off:])
		if l == shmWrapMarker {
			if off == 0 {
				// A writer only stamps a marker when the record would not
				// fit before the wrap point, which can never happen at
				// offset 0 — this is corruption, and skipping it would
				// loop forever.
				return 0, nil, 0, errors.New("cosim: shm ring corrupt: wrap marker at offset 0")
			}
			// Dead space up to the wrap point; skip it and retry.
			r.hdr.tail.Store(t + (r.size - off))
			continue
		}
		rec := shmRecordBytes(int(l))
		if l == 0 || int(l) > maxFrameBody || off+rec > r.size || h-t < rec {
			return 0, nil, 0, fmt.Errorf("cosim: shm ring corrupt: implausible record length %d at offset %d", l, off)
		}
		ch = Channel(r.data[off+4])
		o := int(off) + 5
		return ch, r.data[o : o+int(l)], t + rec, nil
	}
}

// close marks the ring down; both sides observe the flag.
func (r *shmRing) close() { r.hdr.closed.Store(1) }

func (r *shmRing) isClosed() bool { return r.hdr.closed.Load() != 0 }

// ShmConfig tunes a shared-memory link. The zero value is usable.
type ShmConfig struct {
	// RingBytes is the per-direction ring capacity in bytes (rounded up
	// to a power of two, minimum ShmMinRingBytes; default
	// ShmDefaultRingBytes). A frame larger than half the ring is
	// rejected at Send.
	RingBytes int
	// InboxDepth is the per-channel decoded-message buffer depth
	// (default 4096, like the TCP transport).
	InboxDepth int
}

func (c ShmConfig) withDefaults() ShmConfig {
	if c.RingBytes <= 0 {
		c.RingBytes = ShmDefaultRingBytes
	}
	if c.RingBytes < ShmMinRingBytes {
		c.RingBytes = ShmMinRingBytes
	}
	// Round up to a power of two so index masking works.
	n := 1
	for n < c.RingBytes {
		n <<= 1
	}
	c.RingBytes = n
	if c.InboxDepth <= 0 {
		c.InboxDepth = tcpInboxDepth
	}
	return c
}

// ShmTransport is the Transport over one side of a shared-memory
// segment: a reader goroutine pumps the inbound ring into per-channel
// inboxes (so TryRecv is non-blocking and per-channel FIFO holds), and
// Send encodes straight into the outbound ring. It satisfies the pooled
// buffer ownership contract exactly like the TCP transport: Send is the
// stack's terminal consumer and releases the message's payloads once
// they are in the ring; Recv grants ownership of pooled payloads to the
// caller.
type ShmTransport struct {
	tx, rx *shmRing
	wmu    sync.Mutex // serializes writers (session acks/heartbeats ride alongside endpoint sends)
	inbox  [numChannels]chan Msg

	done     chan struct{} // local close signal: unblocks reader and Recv
	once     sync.Once
	readerWG sync.WaitGroup
	closeErr error

	emu     sync.Mutex
	readErr error

	// unmap tears the segment mapping down once every local user of it
	// has closed (the in-process pair shares one mapping).
	unmap func() error

	// Hot-path counters, published by Observe.
	framesSent atomic.Uint64
	framesRecv atomic.Uint64
	bytesSent  atomic.Uint64
	ringWraps  atomic.Uint64
	sendParks  atomic.Uint64
	recvParks  atomic.Uint64

	side string // observability label, set by the endpoint's Observe walk
}

// newShmTransport wires one side over an already-mapped segment.
func newShmTransport(tx, rx *shmRing, inboxDepth int, unmap func() error) *ShmTransport {
	t := &ShmTransport{tx: tx, rx: rx, done: make(chan struct{}), unmap: unmap}
	for i := range t.inbox {
		t.inbox[i] = make(chan Msg, inboxDepth)
	}
	t.readerWG.Add(1)
	go t.readLoop()
	return t
}

// initShmSegment stamps the layout header of a fresh (zeroed) segment.
func initShmSegment(seg []byte, ringBytes int) {
	le := binary.LittleEndian
	le.PutUint64(seg[0:], shmMagic)
	le.PutUint32(seg[8:], shmLayoutVer)
	le.PutUint32(seg[12:], uint32(ringBytes))
}

// checkShmSegment validates a mapped segment's header and returns the
// ring capacity.
func checkShmSegment(seg []byte) (int, error) {
	le := binary.LittleEndian
	if len(seg) < shmDataOff {
		return 0, fmt.Errorf("cosim: shm segment truncated (%d bytes)", len(seg))
	}
	if m := le.Uint64(seg[0:]); m != shmMagic {
		return 0, fmt.Errorf("cosim: shm segment has bad magic %#x (not a cosim shm link, or the creator has not initialized it yet)", m)
	}
	if v := le.Uint32(seg[8:]); v != shmLayoutVer {
		return 0, fmt.Errorf("cosim: shm layout version mismatch: segment %d, this binary %d", v, shmLayoutVer)
	}
	ringBytes := int(le.Uint32(seg[12:]))
	if ringBytes < ShmMinRingBytes || ringBytes&(ringBytes-1) != 0 || len(seg) < shmSegmentSize(ringBytes) {
		return 0, fmt.Errorf("cosim: shm segment declares implausible ring capacity %d for %d mapped bytes", ringBytes, len(seg))
	}
	return ringBytes, nil
}

// segmentRings builds the two directional ring views of a mapped segment.
func segmentRings(seg []byte, ringBytes int) (a, b *shmRing) {
	a = shmRingAt(seg, shmHdrAOff, shmDataOff, ringBytes)
	b = shmRingAt(seg, shmHdrBOff, shmDataOff+ringBytes, ringBytes)
	return a, b
}

// NewShmPair creates a connected in-process pair of shared-memory
// transports over a fresh anonymous temp file (unlinked immediately, so
// nothing lingers on disk); hw is handed to the hardware-simulator
// endpoint and board to the board endpoint. This is the fast local path
// router.Run uses for TransportShm. Returns ErrShmUnsupported where mmap
// is unavailable.
func NewShmPair(cfg ShmConfig) (hw, board Transport, err error) {
	cfg = cfg.withDefaults()
	if !shmMapSupported {
		return nil, nil, ErrShmUnsupported
	}
	f, err := os.CreateTemp("", "cosim-shm-*")
	if err != nil {
		return nil, nil, fmt.Errorf("cosim: shm backing file: %w", err)
	}
	// The mapping keeps the pages alive; the name can go right away.
	defer os.Remove(f.Name())
	defer f.Close()
	size := shmSegmentSize(cfg.RingBytes)
	if err := f.Truncate(int64(size)); err != nil {
		return nil, nil, fmt.Errorf("cosim: shm backing file: %w", err)
	}
	seg, unmap, err := shmMapFile(f, size)
	if err != nil {
		return nil, nil, fmt.Errorf("cosim: shm map: %w", err)
	}
	initShmSegment(seg, cfg.RingBytes)
	a, b := segmentRings(seg, cfg.RingBytes)
	// Both sides share one mapping; the second Close unmaps it.
	var users atomic.Int32
	users.Store(2)
	release := func() error {
		if users.Add(-1) == 0 {
			return unmap()
		}
		return nil
	}
	hw = newShmTransport(a, b, cfg.InboxDepth, release)
	board = newShmTransport(b, a, cfg.InboxDepth, release)
	return hw, board, nil
}

// CreateShm creates and maps the shared-memory link file at path and
// returns the creator side of the transport (its sends travel ring A).
// The peer process attaches with OpenShm once CreateShm has returned —
// the header is stamped before this function returns, so an opener never
// observes a half-initialized segment. The caller owns the file's
// lifetime; unlinking it after both sides attached is safe (mappings
// survive the unlink).
func CreateShm(path string, cfg ShmConfig) (Transport, error) {
	cfg = cfg.withDefaults()
	if !shmMapSupported {
		return nil, ErrShmUnsupported
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("cosim: shm create: %w", err)
	}
	defer f.Close()
	size := shmSegmentSize(cfg.RingBytes)
	if err := f.Truncate(int64(size)); err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("cosim: shm create: %w", err)
	}
	seg, unmap, err := shmMapFile(f, size)
	if err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("cosim: shm map: %w", err)
	}
	initShmSegment(seg, cfg.RingBytes)
	a, b := segmentRings(seg, cfg.RingBytes)
	return newShmTransport(a, b, cfg.InboxDepth, unmap), nil
}

// OpenShm maps an existing shared-memory link file created by CreateShm
// and returns the opener side of the transport (its sends travel ring
// B). The segment's magic, layout version, and ring capacity are
// validated before any frame is exchanged.
func OpenShm(path string) (Transport, error) {
	if !shmMapSupported {
		return nil, ErrShmUnsupported
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("cosim: shm open: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("cosim: shm open: %w", err)
	}
	seg, unmap, err := shmMapFile(f, int(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("cosim: shm map: %w", err)
	}
	ringBytes, err := checkShmSegment(seg)
	if err != nil {
		unmap()
		return nil, err
	}
	a, b := segmentRings(seg, ringBytes)
	return newShmTransport(b, a, ShmConfig{}.withDefaults().InboxDepth, unmap), nil
}

// localDone reports whether this side's Close has begun.
func (t *ShmTransport) localDone() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Send implements Transport: the message is framed directly into the
// outbound ring. As the stack's bottom layer this transport is the
// terminal consumer of any pooled message (a batch flush or a session
// re-encode), so it releases the buffers once they are encoded.
func (t *ShmTransport) Send(ch Channel, m Msg) error {
	if ch >= numChannels {
		return fmt.Errorf("cosim: invalid channel %d", ch)
	}
	t.wmu.Lock()
	err := t.sendLocked(ch, &m)
	t.wmu.Unlock()
	m.Release()
	return err
}

func (t *ShmTransport) sendLocked(ch Channel, m *Msg) error {
	spins := 0
	for {
		if t.tx.isClosed() || t.localDone() {
			return ErrClosed
		}
		n, wrapped, err := t.tx.tryPush(ch, m)
		if err == nil {
			if wrapped {
				t.ringWraps.Add(1)
			}
			t.framesSent.Add(1)
			// The byte count comes from tryPush, measured before the record
			// was published: once the head advances, the peer may consume,
			// ack, and recycle this message's pooled body at any instant, so
			// no send-side code may touch m's payloads after a successful
			// push.
			t.bytesSent.Add(uint64(n))
			return nil
		}
		if !errors.Is(err, errShmFull) {
			return err
		}
		// Ring full: the reader is behind. Busy/park hybrid.
		spins++
		switch {
		case spins < shmHotSpins:
		case spins < shmYieldSpins:
			runtime.Gosched()
		default:
			t.sendParks.Add(1)
			time.Sleep(shmParkSleep) //cosim:wallclock -- host-side backpressure park between ring-full polls
			spins = shmHotSpins      // keep yielding/parking, skip re-spinning hot
		}
	}
}

// readLoop is the single consumer of the inbound ring: it decodes each
// record in place and dispatches the message to its channel inbox. It
// exits — closing every inbox — when the link closes (either side) or a
// corrupt record poisons the ring.
func (t *ShmTransport) readLoop() {
	defer t.readerWG.Done()
	defer func() {
		for i := range t.inbox {
			close(t.inbox[i])
		}
	}()
	spins := 0
	for {
		ch, body, newTail, err := t.rx.tryPop()
		if err != nil {
			if !errors.Is(err, errShmEmpty) {
				t.setReadErr(err)
				return
			}
			if t.localDone() {
				return
			}
			if t.rx.isClosed() {
				// Peer closed: one final drain pass so a shutdown race
				// cannot lose the last ack, then report closure.
				if _, _, _, err := t.rx.tryPop(); errors.Is(err, errShmEmpty) {
					return
				}
				continue
			}
			spins++
			switch {
			case spins < shmHotSpins:
			case spins < shmYieldSpins:
				runtime.Gosched()
			default:
				t.recvParks.Add(1)
				time.Sleep(shmParkSleep) //cosim:wallclock -- host-side park between empty-ring polls
				spins = shmHotSpins
			}
			continue
		}
		spins = 0
		m, derr := decodeBody(body)
		// decodeBody copied the payloads into pooled buffers; the ring
		// space can be recycled now.
		t.rx.hdr.tail.Store(newTail)
		if derr != nil {
			m.Release()
			t.setReadErr(fmt.Errorf("cosim: shm decode: %w", derr))
			return
		}
		if ch >= numChannels {
			m.Release()
			t.setReadErr(fmt.Errorf("cosim: shm record on invalid channel %d", ch))
			return
		}
		t.framesRecv.Add(1)
		select {
		case t.inbox[ch] <- m:
		case <-t.done:
			m.Release()
			return
		}
	}
}

func (t *ShmTransport) setReadErr(err error) {
	t.emu.Lock()
	if t.readErr == nil {
		t.readErr = err
	}
	t.emu.Unlock()
}

func (t *ShmTransport) chanErr() error {
	t.emu.Lock()
	defer t.emu.Unlock()
	if t.readErr != nil {
		return t.readErr
	}
	return ErrClosed
}

// Recv implements Transport.
func (t *ShmTransport) Recv(ch Channel) (Msg, error) {
	if ch >= numChannels {
		return Msg{}, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	m, ok := <-t.inbox[ch]
	if !ok {
		return Msg{}, t.chanErr()
	}
	return m, nil
}

func (t *ShmTransport) recvTimeout(ch Channel, d time.Duration) (Msg, error) {
	if ch >= numChannels {
		return Msg{}, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	timer := time.NewTimer(d) //cosim:wallclock -- receive timeout bounds host I/O, not simulated time
	defer timer.Stop()
	select {
	case m, ok := <-t.inbox[ch]:
		if !ok {
			return Msg{}, t.chanErr()
		}
		return m, nil
	case <-timer.C:
		return Msg{}, ErrTimeout
	}
}

// TryRecv implements Transport.
func (t *ShmTransport) TryRecv(ch Channel) (Msg, bool, error) {
	if ch >= numChannels {
		return Msg{}, false, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	select {
	case m, ok := <-t.inbox[ch]:
		if !ok {
			return Msg{}, false, t.chanErr()
		}
		return m, true, nil
	default:
		return Msg{}, false, nil
	}
}

// Close implements Transport: both directions are marked down (the peer
// observes the flag through the shared segment), the reader goroutine is
// joined, and the mapping is released once every local user is done.
// Blocked Recv calls return ErrClosed after draining what already
// arrived.
func (t *ShmTransport) Close() error {
	t.once.Do(func() {
		t.tx.close()
		t.rx.close()
		close(t.done)
		t.readerWG.Wait()
		if t.unmap != nil {
			t.closeErr = t.unmap()
		}
	})
	return t.closeErr
}

// ShmStats is a snapshot of one side's ring counters.
type ShmStats struct {
	// FramesSent / FramesRecv count protocol frames through the rings.
	FramesSent, FramesRecv uint64
	// BytesSent counts frame bytes written into the outbound ring.
	BytesSent uint64
	// RingWraps counts outbound records that wrapped past the buffer end.
	RingWraps uint64
	// SendParks / RecvParks count times a side exhausted its busy-wait
	// budget and slept — the slow-path indicator (zero in a well-sized
	// steady state on the send side).
	SendParks, RecvParks uint64
}

// Stats snapshots the transport's counters.
func (t *ShmTransport) Stats() ShmStats {
	return ShmStats{
		FramesSent: t.framesSent.Load(),
		FramesRecv: t.framesRecv.Load(),
		BytesSent:  t.bytesSent.Load(),
		RingWraps:  t.ringWraps.Load(),
		SendParks:  t.sendParks.Load(),
		RecvParks:  t.recvParks.Load(),
	}
}

// setObserveSide implements sideSetter.
func (t *ShmTransport) setObserveSide(side string) { t.side = side }

// Observe implements Instrumentable: the endpoint Observe walk reaches
// the base of the stack and publishes the ring counters, so a scrape
// sees shm traffic and park pressure live.
func (t *ShmTransport) Observe(reg *obs.Registry) {
	side := t.side
	if side == "" {
		side = "link"
	}
	name := func(base string) string { return obs.Name(base, "side", side) }
	reg.CounterFunc(name("cosim_shm_frames_sent_total"), t.framesSent.Load)
	reg.CounterFunc(name("cosim_shm_frames_recv_total"), t.framesRecv.Load)
	reg.CounterFunc(name("cosim_shm_bytes_sent_total"), t.bytesSent.Load)
	reg.CounterFunc(name("cosim_shm_ring_wraps_total"), t.ringWraps.Load)
	reg.CounterFunc(name("cosim_shm_send_parks_total"), t.sendParks.Load)
	reg.CounterFunc(name("cosim_shm_recv_parks_total"), t.recvParks.Load)
}

// newHeapShmSegment allocates an 8-aligned in-heap segment with the same
// layout as a mapped file — the fuzz harness and ring unit tests exercise
// the ring mechanics without touching mmap, so they run on every
// platform.
func newHeapShmSegment(ringBytes int) []byte {
	words := make([]uint64, shmSegmentSize(ringBytes)/8)
	seg := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
	initShmSegment(seg, ringBytes)
	return seg
}
