package cosim

import (
	"testing"
	"time"
)

// TestBuildStackZeroConfig proves the zero config is a no-op: the base
// transport comes back unchanged.
func TestBuildStackZeroConfig(t *testing.T) {
	hw, board := NewInProcPair(4)
	defer board.Close()
	top, closeFn := BuildStack(hw, StackConfig{})
	if top != hw {
		t.Fatalf("zero config wrapped the base: %T", top)
	}
	if err := closeFn(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := top.Recv(ChanInt); err != ErrClosed {
		t.Fatalf("recv after stack close: got %v, want ErrClosed", err)
	}
}

// TestBuildStackLayerOrder proves the layering invariant the old inline
// wiring encoded by hand: session on top, chaos below it, delay below
// that, base at the bottom — walkable via Unwrap.
func TestBuildStackLayerOrder(t *testing.T) {
	hw, board := NewInProcPair(4)
	defer board.Close()
	sc := UniformScenario(1, FaultProfile{})
	sess := DefaultSessionConfig()
	top, closeFn := BuildStack(hw, StackConfig{
		Delay:   time.Microsecond,
		Chaos:   &sc,
		Session: &sess,
	})
	defer closeFn()

	if _, ok := top.(*SessionTransport); !ok {
		t.Fatalf("top of stack is %T, want *SessionTransport", top)
	}
	l2 := top.(Unwrapper).Unwrap()
	if _, ok := l2.(*ChaosTransport); !ok {
		t.Fatalf("second layer is %T, want *ChaosTransport", l2)
	}
	l3 := l2.(Unwrapper).Unwrap()
	if _, ok := l3.(*DelayTransport); !ok {
		t.Fatalf("third layer is %T, want *DelayTransport", l3)
	}
	if l4 := l3.(Unwrapper).Unwrap(); l4 != hw {
		t.Fatalf("bottom of stack is %T, want the base transport", l4)
	}
}

// TestBuildStackRoundTrip runs traffic through two full peer stacks and
// proves close is idempotent.
func TestBuildStackRoundTrip(t *testing.T) {
	hwBase, boardBase := NewInProcPair(64)
	sc := UniformScenario(7, FaultProfile{Drop: 0.2, Duplicate: 0.2})
	sess := DefaultSessionConfig()
	sess.RetransmitTimeout = 5 * time.Millisecond
	cfg := StackConfig{Chaos: &sc, Session: &sess}

	hw, hwClose := BuildStack(hwBase, cfg)
	board, boardClose := BuildStack(boardBase, cfg.Peer())

	const n = 50
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := board.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i), Words: []uint32{uint32(i)}}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		m, err := hw.Recv(ChanData)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Addr != uint32(i) {
			t.Fatalf("frame %d arrived with addr %d: chaos leaked through the session", i, m.Addr)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("send: %v", err)
	}

	for i := 0; i < 2; i++ {
		if err := hwClose(); err != nil && err != ErrClosed {
			t.Fatalf("hw close #%d: %v", i+1, err)
		}
		if err := boardClose(); err != nil && err != ErrClosed {
			t.Fatalf("board close #%d: %v", i+1, err)
		}
	}
}

// TestStackConfigPeerSeeds proves Peer offsets the chaos seed (the two
// directions must draw independent fault schedules) and leaves a
// chaos-free config untouched.
func TestStackConfigPeerSeeds(t *testing.T) {
	sc := UniformScenario(100, FaultProfile{Drop: 0.5})
	cfg := StackConfig{Chaos: &sc}
	peer := cfg.Peer()
	if peer.Chaos == nil || peer.Chaos.Seed == sc.Seed {
		t.Fatalf("Peer did not derive an independent seed: %+v", peer.Chaos)
	}
	if sc.Seed != 100 {
		t.Fatal("Peer mutated the caller's scenario")
	}
	if p := (StackConfig{}).Peer(); p.Chaos != nil {
		t.Fatal("Peer invented a chaos layer")
	}
}
