//go:build race

package cosim

// Under the race detector sync.Pool deliberately drops a fraction of
// Put calls (to shake out reuse races), so pooled paths occasionally
// fall back to fresh allocations. The gates stay enabled — a wholesale
// regression still trips them — but with slack for the dropped puts.
const raceAllocSlack = 4.0
