package cosim

import (
	"time"

	"repro/internal/obs"
)

// Metric names published by the cosim layer. Endpoint metrics carry a
// side label ("hw" or "board"); message counters add chan and dir.
const (
	// MetricSyncRendezvous is the per-quantum CLOCK rendezvous latency
	// histogram: the wall-clock time one side spent blocked waiting for
	// its peer at a quantum boundary.
	MetricSyncRendezvous = "cosim_sync_rendezvous_seconds"
	// MetricSyncEvents counts CLOCK rendezvous performed.
	MetricSyncEvents = "cosim_sync_events_total"
	// MetricTicksGranted counts virtual ticks granted (hw) / received
	// (board).
	MetricTicksGranted = "cosim_ticks_granted_total"
	// MetricMsgs counts protocol messages by side, chan (data|int) and
	// dir (sent|recv).
	MetricMsgs = "cosim_msgs_total"
	// MetricBytesSent counts wire bytes sent (frames included).
	MetricBytesSent = "cosim_bytes_sent_total"
)

// live is the optional set of hot-path instruments of one endpoint. A
// nil *live disables publication at the cost of one pointer test per
// event, so endpoints without a registry pay nothing else.
type live struct {
	syncLat   *obs.Histogram
	syncs     *obs.Counter
	ticks     *obs.Counter
	dataSent  *obs.Counter
	dataRecv  *obs.Counter
	intSent   *obs.Counter
	intRecv   *obs.Counter
	bytesSent *obs.Counter
}

func newLive(reg *obs.Registry, side string) *live {
	return &live{
		syncLat:   reg.Histogram(obs.Name(MetricSyncRendezvous, "side", side), nil),
		syncs:     reg.Counter(obs.Name(MetricSyncEvents, "side", side)),
		ticks:     reg.Counter(obs.Name(MetricTicksGranted, "side", side)),
		dataSent:  reg.Counter(obs.Name(MetricMsgs, "side", side, "chan", "data", "dir", "sent")),
		dataRecv:  reg.Counter(obs.Name(MetricMsgs, "side", side, "chan", "data", "dir", "recv")),
		intSent:   reg.Counter(obs.Name(MetricMsgs, "side", side, "chan", "int", "dir", "sent")),
		intRecv:   reg.Counter(obs.Name(MetricMsgs, "side", side, "chan", "int", "dir", "recv")),
		bytesSent: reg.Counter(obs.Name(MetricBytesSent, "side", side)),
	}
}

func (l *live) observeSync(wait time.Duration) {
	if l != nil {
		l.syncLat.ObserveDuration(wait)
		l.syncs.Inc()
	}
}

func (l *live) addTicks(n uint64) {
	if l != nil {
		l.ticks.Add(n)
	}
}

func (l *live) incDataSent() {
	if l != nil {
		l.dataSent.Inc()
	}
}

func (l *live) incDataRecv() {
	if l != nil {
		l.dataRecv.Inc()
	}
}

func (l *live) incIntSent() {
	if l != nil {
		l.intSent.Inc()
	}
}

func (l *live) incIntRecv() {
	if l != nil {
		l.intRecv.Inc()
	}
}

func (l *live) addBytes(n uint64) {
	if l != nil {
		l.bytesSent.Add(n)
	}
}

// Observe publishes the endpoint's hot-path counters and the CLOCK
// rendezvous latency histogram into reg under side="hw". Call it before
// the run starts; it is not safe to call concurrently with the run.
func (ep *HWEndpoint) Observe(reg *obs.Registry) { ep.ObserveAs(reg, "hw") }

// ObserveAs is Observe with an explicit side label — a federation
// publishes each wire party's link under its federate name, so per-party
// rendezvous latency and traffic counters stay distinguishable.
func (ep *HWEndpoint) ObserveAs(reg *obs.Registry, side string) {
	ep.lv = newLive(reg, side)
	observeTransportStack(reg, ep.tr, side)
}

// Observe publishes the endpoint's hot-path counters and the CLOCK
// rendezvous latency histogram into reg under side="board". Call it
// before the run starts; it is not safe to call concurrently with the
// run.
func (ep *BoardEndpoint) Observe(reg *obs.Registry) { ep.ObserveAs(reg, "board") }

// ObserveAs is Observe with an explicit side label (see
// HWEndpoint.ObserveAs).
func (ep *BoardEndpoint) ObserveAs(reg *obs.Registry, side string) {
	ep.lv = newLive(reg, side)
	observeTransportStack(reg, ep.tr, side)
}

// Instrumentable is the single instrumentation hook shared by endpoints,
// transport layers and the farm: anything that can publish its counters
// into a registry implements it. Endpoint Observe walks the transport
// stack (via Unwrap) and invokes it on every layer that provides it, so
// a new decorator becomes observable by implementing this interface —
// no endpoint or call-site changes.
type Instrumentable interface {
	Observe(reg *obs.Registry)
}

// sideSetter is the optional companion of Instrumentable: a layer that
// labels its metrics with the link side implements it to receive the
// side ("hw" / "board") before Observe is called.
type sideSetter interface {
	setObserveSide(side string)
}

// observeTransportStack walks the wrapper chain and publishes the
// counters of every layer that implements Instrumentable, stamping the
// side label on layers that accept one.
func observeTransportStack(reg *obs.Registry, tr Transport, side string) {
	for t := tr; t != nil; {
		if ss, ok := t.(sideSetter); ok {
			ss.setObserveSide(side)
		}
		if in, ok := t.(Instrumentable); ok {
			in.Observe(reg)
		}
		u, ok := t.(Unwrapper)
		if !ok {
			return
		}
		t = u.Unwrap()
	}
}

// setObserveSide implements sideSetter.
func (s *SessionTransport) setObserveSide(side string) { s.obsSide = side }

// Observe implements Instrumentable: it registers scrape-time readers
// over the session's resilience counters, so a scrape harvests them
// incrementally from the live atomics instead of waiting for the
// post-run Metrics harvest.
func (s *SessionTransport) Observe(reg *obs.Registry) {
	side := s.obsSide
	if side == "" {
		side = "link"
	}
	name := func(base string) string { return obs.Name(base, "side", side) }
	reg.CounterFunc(name("cosim_session_retransmits_total"), s.retransmits.Load)
	reg.CounterFunc(name("cosim_session_reconnects_total"), s.reconnects.Load)
	reg.CounterFunc(name("cosim_session_heartbeats_sent_total"), s.hbSent.Load)
	reg.CounterFunc(name("cosim_session_heartbeats_missed_total"), s.hbMissed.Load)
	reg.CounterFunc(name("cosim_session_dups_dropped_total"), s.dupsDropped.Load)
	reg.CounterFunc(name("cosim_session_crc_dropped_total"), s.crcDropped.Load)
	reg.CounterFunc(name("cosim_session_gaps_seen_total"), s.gapsSeen.Load)
	reg.CounterFunc(name("cosim_session_aliens_dropped_total"), s.aliensDropped.Load)
	reg.CounterFunc(name("cosim_session_frames_injured_total"), func() uint64 {
		return s.LinkStats().FramesInjured
	})
	reg.GaugeFunc(name("cosim_session_unacked_frames"), func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for ch := range s.send {
			n += len(s.send[ch].unacked)
		}
		return float64(n)
	})
	reg.GaugeFunc(name("cosim_session_reconnecting"), func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.reconnecting {
			return 1
		}
		return 0
	})
}
