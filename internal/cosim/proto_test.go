package cosim

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("encode %v: %v", m.Type, err)
	}
	if buf.Len() != m.WireSize() {
		t.Fatalf("%v: WireSize %d but encoded %d bytes", m.Type, m.WireSize(), buf.Len())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode %v: %v", m.Type, err)
	}
	got.disown() // drop pool bookkeeping so field-wise compares see payloads only
	return got
}

func TestProtoRoundTripAllTypes(t *testing.T) {
	msgs := []Msg{
		{Type: MTHello, Version: ProtocolVersion},
		{Type: MTClockGrant, Ticks: 5000, HWCycle: 123456789, DataCount: 3, IntCount: 2},
		{Type: MTTimeAck, BoardCycle: 99, SWTick: 42, DataCount: 7},
		{Type: MTFinish, HWCycle: 1 << 40},
		{Type: MTFinishAck, BoardCycle: 8, SWTick: 2, DataCount: 0},
		{Type: MTInterrupt, IRQ: 7},
		{Type: MTDataWrite, Addr: 0x100, Words: []uint32{1, 2, 3}},
		{Type: MTDataWrite, Addr: 0x200, Words: nil},
		{Type: MTDataReadReq, Addr: 0x300, Count: 16},
		{Type: MTDataReadResp, Addr: 0x300, Words: []uint32{0xdeadbeef}},
		{Type: MTSessionData, Seq: 42, Crc: 0xfeedface, Raw: []byte{7, 1, 2, 3}},
		{Type: MTSessionAck, Seq: 41},
		{Type: MTSessionNack, Seq: 40},
		{Type: MTHeartbeat, Seq: 1 << 33},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		// nil vs empty Words both decode to empty.
		if len(m.Words) == 0 {
			got.Words = m.Words
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("round trip %v:\nsent %+v\ngot  %+v", m.Type, m, got)
		}
	}
}

func TestProtoStreamConcatenation(t *testing.T) {
	// Multiple frames back to back decode in order (framing resync).
	var buf bytes.Buffer
	in := []Msg{
		{Type: MTInterrupt, IRQ: 1},
		{Type: MTDataWrite, Addr: 4, Words: []uint32{9, 8}},
		{Type: MTClockGrant, Ticks: 10, HWCycle: 10},
	}
	for i := range in {
		if err := in[i].Encode(&buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := range in {
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != in[i].Type {
			t.Fatalf("frame %d: type %v, want %v", i, got.Type, in[i].Type)
		}
	}
	if _, err := Decode(&buf); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

func TestProtoDataWriteProperty(t *testing.T) {
	f := func(addr uint32, words []uint32) bool {
		if len(words) > MaxWords {
			words = words[:MaxWords]
		}
		m := Msg{Type: MTDataWrite, Addr: addr, Words: words}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || got.Addr != addr || len(got.Words) != len(words) {
			return false
		}
		for i := range words {
			if got.Words[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProtoTruncatedFrames(t *testing.T) {
	m := Msg{Type: MTClockGrant, Ticks: 10, HWCycle: 20, DataCount: 1, IntCount: 1}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
}

func TestProtoGarbageRejected(t *testing.T) {
	cases := [][]byte{
		{0xff, 0xff, 0xff, 0xff},             // absurd length
		{0x00, 0x00, 0x00, 0x00},             // zero length
		{0x01, 0x00, 0x00, 0x00, 0xEE},       // unknown type
		{0x02, 0x00, 0x00, 0x00, 0x06, 0x00}, // interrupt frame too short is fine: 1 byte IRQ... actually valid
	}
	for i, raw := range cases[:3] {
		if _, err := Decode(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestProtoShortBodyFields(t *testing.T) {
	// A clock-grant body with too few bytes must error, not panic.
	body := []byte{byte(MTClockGrant), 1, 2, 3}
	var buf bytes.Buffer
	var lenPfx [4]byte
	lenPfx[0] = byte(len(body))
	buf.Write(lenPfx[:])
	buf.Write(body)
	if _, err := Decode(&buf); err == nil {
		t.Fatal("short clock-grant accepted")
	}
}

func TestProtoOversizeWordCountRejected(t *testing.T) {
	// Hand-craft a data-write claiming MaxWords+1 words.
	body := make([]byte, 0, 16)
	body = append(body, byte(MTDataWrite))
	body = append(body, 0, 0, 0, 0) // addr
	n := uint32(MaxWords + 1)
	body = append(body, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	var buf bytes.Buffer
	var lenPfx [4]byte
	lenPfx[0] = byte(len(body))
	buf.Write(lenPfx[:])
	buf.Write(body)
	if _, err := Decode(&buf); err == nil {
		t.Fatal("oversize word count accepted")
	}
}

// TestDecodeNeverPanics feeds random byte soup to the decoder: whatever
// the wire delivers, Decode must fail cleanly, never panic or hang.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", raw, r)
			}
		}()
		_, _ = Decode(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestChannelAndTypeStrings(t *testing.T) {
	if ChanData.String() != "DATA" || ChanInt.String() != "INT" || ChanClock.String() != "CLOCK" {
		t.Fatal("channel names wrong")
	}
	if Channel(9).String() == "" || MsgType(200).String() == "" {
		t.Fatal("out-of-range strings empty")
	}
	for mt := MTHello; mt <= MTAttach; mt++ {
		if mt.String() == "" {
			t.Fatalf("no name for type %d", mt)
		}
	}
}

func BenchmarkProtoEncodeDecodeDataWrite(b *testing.B) {
	m := Msg{Type: MTDataWrite, Addr: 0x40, Words: make([]uint32, 19)}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := m.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
