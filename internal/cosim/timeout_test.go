package cosim

import (
	"errors"
	"testing"
	"time"
)

func TestRecvTimeoutInProc(t *testing.T) {
	a, b := NewInProcPair(8)
	defer a.Close()
	// Nothing queued: times out.
	start := time.Now()
	if _, err := RecvTimeout(a, ChanData, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout wildly overshot")
	}
	// Queued message returned immediately.
	if err := b.Send(ChanData, Msg{Type: MTDataWrite, Addr: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := RecvTimeout(a, ChanData, time.Second)
	if err != nil || m.Addr != 9 {
		t.Fatalf("%+v %v", m, err)
	}
	// d ≤ 0 degrades to blocking Recv: verify with a queued message.
	b.Send(ChanData, Msg{Type: MTDataWrite, Addr: 10})
	if m, err := RecvTimeout(a, ChanData, 0); err != nil || m.Addr != 10 {
		t.Fatalf("%+v %v", m, err)
	}
}

func TestRecvTimeoutTCP(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err == nil {
			acc <- tr
		} else {
			close(acc)
		}
	}()
	board, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer board.Close()
	hw, ok := <-acc
	if !ok {
		t.Fatal("accept failed")
	}
	defer hw.Close()
	if _, err := RecvTimeout(hw, ChanClock, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	board.Send(ChanClock, Msg{Type: MTTimeAck, BoardCycle: 3})
	m, err := RecvTimeout(hw, ChanClock, time.Second)
	if err != nil || m.BoardCycle != 3 {
		t.Fatalf("%+v %v", m, err)
	}
}

func TestRecvTimeoutThroughWrapper(t *testing.T) {
	// DelayTransport does not implement recvTimeout; the polling fallback
	// must still honour the deadline.
	a, b := NewInProcPair(8)
	defer a.Close()
	wrapped := NewDelayTransport(a, 0)
	if _, err := RecvTimeout(wrapped, ChanInt, 15*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout via fallback", err)
	}
	b.Send(ChanInt, Msg{Type: MTInterrupt, IRQ: 4})
	m, err := RecvTimeout(wrapped, ChanInt, time.Second)
	if err != nil || m.IRQ != 4 {
		t.Fatalf("%+v %v", m, err)
	}
}

func TestHWEndpointDetectsDeadBoard(t *testing.T) {
	hwT, _ := NewInProcPair(8)
	defer hwT.Close()
	hw := NewHWEndpoint(hwT, SyncAlternating)
	hw.AckTimeout = 25 * time.Millisecond
	_, err := hw.Sync(10, 10) // board never answers
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Sync err = %v, want ErrTimeout", err)
	}
}

// TestRecvTimeoutFallbackSeesClosure: the polling fallback must surface a
// transport error raised while it is waiting, not spin until the
// deadline.
func TestRecvTimeoutFallbackSeesClosure(t *testing.T) {
	a, _ := NewInProcPair(8)
	wrapped := NewDelayTransport(a, 0) // no recvTimeout: forces the poll path
	go func() {
		time.Sleep(5 * time.Millisecond)
		a.Close()
	}()
	start := time.Now()
	_, err := RecvTimeout(wrapped, ChanData, 5*time.Second)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("fallback kept polling a closed transport")
	}
}

// TestTCPCloseRacesReadLoop: closing a tcpTransport while its reader
// goroutines are decoding inbound frames must be race-free (run under
// -race) and leave Recv returning an error, not hanging.
func TestTCPCloseRacesReadLoop(t *testing.T) {
	for round := 0; round < 20; round++ {
		ln, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		acc := make(chan Transport, 1)
		go func() {
			tr, aerr := ln.Accept()
			if aerr != nil {
				close(acc)
				return
			}
			acc <- tr
		}()
		board, err := DialTCP(ln.Addr())
		if err != nil {
			t.Fatal(err)
		}
		hw, ok := <-acc
		if !ok {
			t.Fatal("accept failed")
		}
		stop := make(chan struct{})
		go func() { // keep the read loops busy while Close lands
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if board.Send(ChanData, Msg{Type: MTDataWrite, Addr: uint32(i)}) != nil {
					return
				}
			}
		}()
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		hw.Close()
		for {
			if _, err := RecvTimeout(hw, ChanData, time.Second); err != nil {
				if errors.Is(err, ErrTimeout) {
					t.Fatal("Recv timed out instead of reporting closure")
				}
				break
			}
		}
		close(stop)
		board.Close()
		ln.Close()
	}
}
