package cosim

import (
	"errors"
	"testing"
	"time"
)

func TestRecvTimeoutInProc(t *testing.T) {
	a, b := NewInProcPair(8)
	defer a.Close()
	// Nothing queued: times out.
	start := time.Now()
	if _, err := RecvTimeout(a, ChanData, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout wildly overshot")
	}
	// Queued message returned immediately.
	if err := b.Send(ChanData, Msg{Type: MTDataWrite, Addr: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := RecvTimeout(a, ChanData, time.Second)
	if err != nil || m.Addr != 9 {
		t.Fatalf("%+v %v", m, err)
	}
	// d ≤ 0 degrades to blocking Recv: verify with a queued message.
	b.Send(ChanData, Msg{Type: MTDataWrite, Addr: 10})
	if m, err := RecvTimeout(a, ChanData, 0); err != nil || m.Addr != 10 {
		t.Fatalf("%+v %v", m, err)
	}
}

func TestRecvTimeoutTCP(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err == nil {
			acc <- tr
		} else {
			close(acc)
		}
	}()
	board, err := DialTCP(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer board.Close()
	hw, ok := <-acc
	if !ok {
		t.Fatal("accept failed")
	}
	defer hw.Close()
	if _, err := RecvTimeout(hw, ChanClock, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	board.Send(ChanClock, Msg{Type: MTTimeAck, BoardCycle: 3})
	m, err := RecvTimeout(hw, ChanClock, time.Second)
	if err != nil || m.BoardCycle != 3 {
		t.Fatalf("%+v %v", m, err)
	}
}

func TestRecvTimeoutThroughWrapper(t *testing.T) {
	// DelayTransport does not implement recvTimeout; the polling fallback
	// must still honour the deadline.
	a, b := NewInProcPair(8)
	defer a.Close()
	wrapped := NewDelayTransport(a, 0)
	if _, err := RecvTimeout(wrapped, ChanInt, 15*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout via fallback", err)
	}
	b.Send(ChanInt, Msg{Type: MTInterrupt, IRQ: 4})
	m, err := RecvTimeout(wrapped, ChanInt, time.Second)
	if err != nil || m.IRQ != 4 {
		t.Fatalf("%+v %v", m, err)
	}
}

func TestHWEndpointDetectsDeadBoard(t *testing.T) {
	hwT, _ := NewInProcPair(8)
	defer hwT.Close()
	hw := NewHWEndpoint(hwT, SyncAlternating)
	hw.AckTimeout = 25 * time.Millisecond
	_, err := hw.Sync(10, 10) // board never answers
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Sync err = %v, want ErrTimeout", err)
	}
}
