package cosim

import "time"

// Metrics aggregates link-level counters for one endpoint. All counters
// are owned by the endpoint's goroutine; read them after the run.
type Metrics struct {
	SyncEvents   uint64        // CLOCK rendezvous performed
	TicksGranted uint64        // virtual ticks granted (HW) / received (board)
	DataSent     uint64        // DATA messages sent
	DataRecv     uint64        // DATA messages received
	IntSent      uint64        // INT messages sent
	IntRecv      uint64        // INT messages received
	BytesSent    uint64        // wire bytes sent (frames included)
	SyncWait     time.Duration // wall-clock time blocked in CLOCK rendezvous
	WallStart    time.Time     // set by Start
	Wall         time.Duration // set by StopClock

	// Link holds the resilience counters (retransmits, reconnects,
	// heartbeats missed, frames injured by chaos, …) harvested from the
	// endpoint's transport when it is session- or chaos-wrapped.
	Link LinkStats
}

// Start stamps the beginning of the measured region. Both endpoint
// constructors call it, so StopClock always has a reference point.
func (m *Metrics) Start() { m.WallStart = time.Now() } //cosim:wallclock -- wall-clock run metric, reported alongside simulated time

// StopClock records the elapsed wall-clock time since Start. Without a
// prior Start it leaves Wall untouched rather than recording garbage.
func (m *Metrics) StopClock() {
	if !m.WallStart.IsZero() {
		m.Wall = time.Since(m.WallStart) //cosim:wallclock -- wall-clock run metric, reported alongside simulated time
	}
}

// harvestLink copies resilience counters from the first transport in
// the wrapper chain that exposes them. Walking through Unwrap matters:
// a TraceTransport (or any other decorator) around a SessionTransport
// must not silently zero the link counters.
func (m *Metrics) harvestLink(tr Transport) {
	for t := tr; t != nil; {
		if ls, ok := t.(linkStatser); ok {
			m.Link = ls.LinkStats()
			return
		}
		u, ok := t.(Unwrapper)
		if !ok {
			return
		}
		t = u.Unwrap()
	}
}
