package cosim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by transport operations after Close.
var ErrClosed = errors.New("cosim: transport closed")

// ErrTimeout is returned by RecvTimeout when the deadline passes with no
// message.
var ErrTimeout = errors.New("cosim: receive timed out")

// recvTimeouter is implemented by transports that support bounded waits.
type recvTimeouter interface {
	recvTimeout(ch Channel, d time.Duration) (Msg, error)
}

// RecvTimeout waits for a message on ch for at most d (d ≤ 0 blocks
// indefinitely, like Recv). It returns ErrTimeout when the deadline
// passes — the hook endpoints use to detect a dead peer instead of
// hanging a co-simulation forever.
func RecvTimeout(tr Transport, ch Channel, d time.Duration) (Msg, error) {
	if d <= 0 {
		return tr.Recv(ch)
	}
	if rt, ok := tr.(recvTimeouter); ok {
		return rt.recvTimeout(ch, d)
	}
	// Fallback for wrappers that do not expose the capability: poll.
	deadline := time.Now().Add(d) //cosim:wallclock -- receive timeout bounds host I/O, not simulated time
	for {
		m, ok, err := tr.TryRecv(ch)
		if err != nil {
			return Msg{}, err
		}
		if ok {
			return m, nil
		}
		if time.Now().After(deadline) { //cosim:wallclock -- receive timeout bounds host I/O, not simulated time
			return Msg{}, ErrTimeout
		}
		time.Sleep(50 * time.Microsecond) //cosim:wallclock -- poll backoff between host-side TryRecv attempts
	}
}

// Transport moves protocol messages across the three logical channels.
// Implementations must preserve per-channel FIFO order; no ordering is
// guaranteed *across* channels (TCP gives none), which is why the protocol
// carries explicit drain counts in grants and acks.
//
// Send may be called from the owning side's simulation goroutine; Recv and
// TryRecv from the same. A transport connects exactly two peers.
//
// # Buffer ownership
//
// Send transfers ownership of the message's payload slices (Words, Raw) to
// the transport stack: the caller must not modify or reuse them afterwards
// (an in-process transport hands the very same slices to the receiving
// peer; a serializing transport may still be reading them while Send
// returns). Conversely, a message returned by Recv/TryRecv owns its
// payloads: the receiver may keep them indefinitely, or — on the hot path —
// copy what it needs and call Msg.Release to return pooled buffers to the
// codec pools. Release must be called at most once per received message
// and only by its final consumer; a payload referenced after Release may
// be overwritten by a later decode (this aliasing is exactly what the
// pooled-reuse fuzz and allocation tests guard against). Layered
// transports (session, batch) follow the same rule internally: each layer
// releases a wrapper message once its contents are copied onward.
type Transport interface {
	// Send enqueues m on channel ch.
	Send(ch Channel, m Msg) error
	// Recv blocks until a message arrives on ch (or the transport closes).
	Recv(ch Channel) (Msg, error)
	// TryRecv returns the next message on ch if one is already available.
	TryRecv(ch Channel) (Msg, bool, error)
	// Close tears the link down; blocked Recv calls return ErrClosed or a
	// transport-specific error.
	Close() error
}

// Unwrapper is implemented by decorating transports (trace, delay,
// chaos, session) so capability probes — most importantly the
// link-stats harvest in Metrics — can walk the wrapper chain instead of
// seeing only the outermost layer.
type Unwrapper interface {
	// Unwrap returns the next transport down the stack.
	Unwrap() Transport
}

// BaseTransportName walks tr's wrapper chain to its base transport and
// names it: "inproc", "tcp", "unix", or "shm" ("unknown" for a base this
// package did not build). Results describe the link actually carrying
// frames, so callers reporting a transport kind — the router's RunResult,
// the farm's metrics — cannot drift from the configuration that built
// the stack.
func BaseTransportName(tr Transport) string {
	for {
		u, ok := tr.(Unwrapper)
		if !ok {
			break
		}
		tr = u.Unwrap()
	}
	switch t := tr.(type) {
	case *inprocTransport:
		return "inproc"
	case *tcpTransport:
		for _, c := range t.conns {
			if c != nil {
				return c.LocalAddr().Network()
			}
		}
		return "tcp"
	case *ShmTransport:
		return "shm"
	default:
		return "unknown"
	}
}

// chanPair is one direction of an in-process link.
type chanPair struct {
	ch [numChannels]chan Msg
}

// inprocTransport is the in-process Transport: three buffered Go channels
// per direction. It gives the same interface and message-granularity
// semantics as the TCP transport with ~100ns per message instead of a
// socket round trip, so deterministic experiments can sweep large
// parameter grids quickly.
type inprocTransport struct {
	send      *chanPair
	recv      *chanPair
	closeOnce *sync.Once
	closed    chan struct{}
}

// NewInProcPair creates a connected pair of in-process transports; hw is
// handed to the hardware-simulator endpoint and board to the board
// endpoint. cap is the per-channel buffer depth (≥1).
func NewInProcPair(capacity int) (hw, board Transport) {
	if capacity < 1 {
		capacity = 1
	}
	newPair := func() *chanPair {
		p := &chanPair{}
		for i := range p.ch {
			p.ch[i] = make(chan Msg, capacity)
		}
		return p
	}
	h2b, b2h := newPair(), newPair()
	once := &sync.Once{}
	closed := make(chan struct{})
	hwT := &inprocTransport{send: h2b, recv: b2h, closeOnce: once, closed: closed}
	boardT := &inprocTransport{send: b2h, recv: h2b, closeOnce: once, closed: closed}
	return hwT, boardT
}

func (t *inprocTransport) Send(ch Channel, m Msg) error {
	if ch >= numChannels {
		return fmt.Errorf("cosim: invalid channel %d", ch)
	}
	select {
	case t.send.ch[ch] <- m:
		return nil
	case <-t.closed:
		return ErrClosed
	}
}

func (t *inprocTransport) Recv(ch Channel) (Msg, error) {
	if ch >= numChannels {
		return Msg{}, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	select {
	case m := <-t.recv.ch[ch]:
		return m, nil
	case <-t.closed:
		// Drain anything already buffered before reporting closure, so a
		// shutdown race cannot lose the final ack.
		select {
		case m := <-t.recv.ch[ch]:
			return m, nil
		default:
			return Msg{}, ErrClosed
		}
	}
}

func (t *inprocTransport) recvTimeout(ch Channel, d time.Duration) (Msg, error) {
	if ch >= numChannels {
		return Msg{}, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	timer := time.NewTimer(d) //cosim:wallclock -- receive timeout bounds host I/O, not simulated time
	defer timer.Stop()
	select {
	case m := <-t.recv.ch[ch]:
		return m, nil
	case <-t.closed:
		select {
		case m := <-t.recv.ch[ch]:
			return m, nil
		default:
			return Msg{}, ErrClosed
		}
	case <-timer.C:
		return Msg{}, ErrTimeout
	}
}

func (t *inprocTransport) TryRecv(ch Channel) (Msg, bool, error) {
	if ch >= numChannels {
		return Msg{}, false, fmt.Errorf("cosim: invalid channel %d", ch)
	}
	select {
	case m := <-t.recv.ch[ch]:
		return m, true, nil
	default:
		select {
		case <-t.closed:
			return Msg{}, false, ErrClosed
		default:
			return Msg{}, false, nil
		}
	}
}

func (t *inprocTransport) Close() error {
	t.closeOnce.Do(func() { close(t.closed) })
	return nil
}
