package cosim

import "time"

// DelayTransport wraps a Transport and adds a fixed wall-clock latency to
// every Send. It emulates the paper's physical setup — host PC and SCM2x0
// board joined by Ethernet — whose per-message cost dominated their
// co-simulation overhead (their Figure 5/6 regime). Without it, loopback
// TCP on one machine is so fast relative to their link that the overhead
// curves, while preserving their shape, compress by roughly the ratio of
// the two link latencies.
//
// The delay is charged on the sender, which also models the sender-side
// socket/syscall cost the paper attributes to "the increased cost of
// communication".
type DelayTransport struct {
	inner Transport
	delay time.Duration
}

// NewDelayTransport wraps inner with a per-send latency.
func NewDelayTransport(inner Transport, delay time.Duration) *DelayTransport {
	return &DelayTransport{inner: inner, delay: delay}
}

// Send implements Transport.
func (d *DelayTransport) Send(ch Channel, m Msg) error {
	if d.delay > 0 {
		time.Sleep(d.delay) //cosim:wallclock -- DelayTransport models host link latency by real sleeping
	}
	return d.inner.Send(ch, m)
}

// Recv implements Transport.
func (d *DelayTransport) Recv(ch Channel) (Msg, error) { return d.inner.Recv(ch) }

// TryRecv implements Transport.
func (d *DelayTransport) TryRecv(ch Channel) (Msg, bool, error) { return d.inner.TryRecv(ch) }

// Close implements Transport.
func (d *DelayTransport) Close() error { return d.inner.Close() }

// Unwrap implements Unwrapper.
func (d *DelayTransport) Unwrap() Transport { return d.inner }
