package router

import (
	"errors"
	"fmt"
	"net"

	"repro/internal/board"
	"repro/internal/checksum"
	"repro/internal/cosim"
	"repro/internal/iss"
	"repro/internal/packet"
	"repro/internal/rtos"
)

// TimingModel selects how the board application's checksum cost is
// obtained.
type TimingModel int

const (
	// TimingISS executes the checksum kernel on the RV32 instruction-set
	// simulator and charges the measured cycles (the accurate model).
	TimingISS TimingModel = iota
	// TimingAnnotated charges an analytic per-packet cost (base + per-word),
	// the cheaper timing-annotation approach of the paper's refs [14,15].
	TimingAnnotated
)

// String implements fmt.Stringer.
func (m TimingModel) String() string {
	if m == TimingAnnotated {
		return "annotated"
	}
	return "iss"
}

// AppConfig parameterizes the board application.
type AppConfig struct {
	// Timing selects the software timing model.
	Timing TimingModel
	// AnnotatedBase/PerWord are the analytic costs (cycles) when Timing is
	// TimingAnnotated. The defaults approximate the ISS measurement.
	AnnotatedBase, AnnotatedPerWord uint64
	// MailboxCap bounds the DSR→application packet queue.
	MailboxCap int
	// Priority is the application thread's priority.
	Priority int
	// Engine selects which router checksum engine this board serves (its
	// device window is EngineBase(Engine) and its IRQ EngineIRQ(Engine)).
	Engine int
	// WatchdogTimeout, if non-zero, installs a watchdog with that timeout
	// (in HW ticks) which the application must keep kicking.
	WatchdogTimeout uint64
}

// DefaultAppConfig matches the experiments.
func DefaultAppConfig() AppConfig {
	return AppConfig{
		Timing:           TimingISS,
		AnnotatedBase:    60,
		AnnotatedPerWord: 9,
		MailboxCap:       64,
		Priority:         10,
		WatchdogTimeout:  0,
	}
}

// AppStats counts board-application activity.
type AppStats struct {
	Delivered uint64 // packets the DSR handed to the application
	Verified  uint64 // packets found intact
	Corrupt   uint64 // packets found corrupted
	Overruns  uint64 // RX-ring slots overwritten before the DSR drained them
	MboxDrops uint64 // DSR deliveries refused by a full mailbox
	ISSCycles uint64 // cycles spent in the checksum kernel
}

// BoardApp is the paper's "C application computing the checksum, executing
// on a SCM220 Ultimodule board running the eCos operating system" — here a
// kernel thread on the virtual board, fed by the remote device driver's
// DSR, computing the checksum on the ISS and writing the verdict back
// through the driver.
type BoardApp struct {
	cfg AppConfig
	dev *board.RemoteDev
	mb  *rtos.Mailbox
	wd  *board.Watchdog

	lastSeq uint32 // DSR-owned

	cks      iss.ChecksumRunner // persistent ISS for TimingISS verification
	wordsBuf []uint16           // reused checksum-input scratch (app-thread-owned)
	msgFree  [][]uint32         // recycled mailbox messages; DSR and app thread
	// share one kernel goroutine, so the freelist needs no locking

	stats AppStats
}

// InstallBoardApp wires the application onto a board: it attaches the
// packet ISR/DSR to IRQPacket, creates the service mailbox and spawns the
// verification thread.
func InstallBoardApp(b *board.Board, dev *board.RemoteDev, cfg AppConfig) (*BoardApp, error) {
	if cfg.MailboxCap < 1 {
		return nil, fmt.Errorf("router: mailbox capacity must be ≥ 1")
	}
	app := &BoardApp{cfg: cfg, dev: dev}
	app.mb = b.K.NewMailbox("router.rx", cfg.MailboxCap)
	if cfg.WatchdogTimeout > 0 {
		app.wd = b.NewWatchdog(cfg.WatchdogTimeout, -1)
	}

	// The ISR acknowledges the device; the DSR drains every RX slot the
	// sequence register says is new. Interrupt coalescing is handled by
	// the sequence numbers: however many IRQ packets were merged into one
	// pending latch, the DSR catches up to the newest sequence.
	b.K.AttachInterrupt(int(EngineIRQ(cfg.Engine)), nil, func() { app.drainRing() })

	b.K.CreateThread("checksum-app", cfg.Priority, func(c *rtos.ThreadCtx) {
		app.serve(c)
	})
	return app, nil
}

// Stats returns the application counters.
func (a *BoardApp) Stats() AppStats { return a.stats }

// Watchdog returns the installed watchdog (nil if none).
func (a *BoardApp) Watchdog() *board.Watchdog { return a.wd }

// drainRing runs in DSR context: it reads every new slot from the shadow
// window and queues it for the application thread. All register offsets
// are window-relative (the device window begins at the engine base).
func (a *BoardApp) drainRing() {
	newest := a.dev.PeekShadow(RegRxSeq)
	for seq := a.lastSeq + 1; seq <= newest; seq++ {
		if newest-seq >= NumSlots {
			a.stats.Overruns++ // slot already overwritten
			continue
		}
		var msg []uint32
		if n := len(a.msgFree); n > 0 {
			msg = a.msgFree[n-1][:0]
			a.msgFree[n-1] = nil
			a.msgFree = a.msgFree[:n-1]
		} else {
			msg = make([]uint32, 0, SlotWords+1)
		}
		msg = append(msg, seq)
		msg = a.dev.AppendShadowBlock(msg, SlotAddr(seq), SlotWords)
		if !a.mb.TryPut(msg) {
			a.stats.MboxDrops++
			a.msgFree = append(a.msgFree, msg)
		}
	}
	a.lastSeq = newest
}

// serve is the application thread body: receive, verify, respond.
func (a *BoardApp) serve(c *rtos.ThreadCtx) {
	for {
		msg := a.mb.Get(c)
		seq := msg[0]
		slot := msg[1:]
		nWords := slot[0]
		if int(nWords) > len(slot)-1 {
			nWords = uint32(len(slot) - 1)
		}
		// Unpack cost: one word copied per bus word.
		c.Charge(2 * uint64(nWords))
		p, _, err := packet.Decode(slot[1 : 1+nWords])
		valid := err == nil && a.verify(c, p)
		a.stats.Delivered++
		if valid {
			a.stats.Verified++
		} else {
			a.stats.Corrupt++
		}
		verdict := uint32(0)
		if valid {
			verdict = 1
		}
		// The verdict pair is allocated per packet on purpose: PostWrite may
		// keep the slice in flight across quanta, so a reused scratch here
		// would alias live wire data.
		if _, err := a.dev.Write(c, RegVerdictBase, []uint32{seq, verdict}); err != nil {
			// A closed transport here is not a bug: cancellation or peer
			// shutdown tears the link down while the board may still be
			// mid-quantum with a verdict in hand. Exit the thread and let
			// the run's own error (context cause, link teardown) surface;
			// any other write failure is still fatal.
			if errors.Is(err, cosim.ErrClosed) || errors.Is(err, net.ErrClosed) {
				return
			}
			panic(fmt.Sprintf("router: verdict write failed: %v", err))
		}
		if a.wd != nil {
			a.wd.Kick()
		}
		// msg is fully consumed (verify copies what it needs), so the
		// buffer can go back to the DSR's freelist.
		a.msgFree = append(a.msgFree, msg)
	}
}

// verify computes the checksum of p's contents and compares it with the
// stored field, charging the software cost per the configured model.
func (a *BoardApp) verify(c *rtos.ThreadCtx, p packet.Packet) bool {
	a.wordsBuf = appendChecksumInputWords(a.wordsBuf[:0], p)
	words := a.wordsBuf
	switch a.cfg.Timing {
	case TimingISS:
		cks, cycles, err := a.cks.Run(words)
		if err != nil {
			panic(fmt.Sprintf("router: ISS checksum: %v", err))
		}
		a.stats.ISSCycles += cycles
		c.Charge(cycles)
		return cks == p.Checksum
	default: // TimingAnnotated
		cost := a.cfg.AnnotatedBase + a.cfg.AnnotatedPerWord*uint64(len(words))
		c.Charge(cost)
		return checksum.InternetWords(words) == p.Checksum
	}
}

// checksumInputWords flattens the checksummed packet fields to 16-bit
// words in the same order as packet.ComputeChecksum.
func checksumInputWords(p packet.Packet) []uint16 {
	return appendChecksumInputWords(make([]uint16, 0, 4+2*len(p.Data)), p)
}

// appendChecksumInputWords is the allocation-free form: it appends the
// flattened words to dst (hot callers pass a reused scratch slice).
func appendChecksumInputWords(dst []uint16, p packet.Packet) []uint16 {
	dst = append(dst, p.Src, p.Dst, uint16(p.ID>>16), uint16(p.ID))
	for _, d := range p.Data {
		dst = append(dst, uint16(d>>16), uint16(d))
	}
	return dst
}
