// Package router implements the paper's evaluation testbench (section 6):
// a 4-port packet router modelled in the HDL simulation kernel — an
// extension of the SystemC "Multicast Helix Packet Switch" example — with
// packet producers and consumers, plus the checksum application that runs
// on the (virtual) board under the RTOS and validates every packet through
// the remote device driver.
//
// Dataflow per packet:
//
//	producer ─▶ router input FIFO ─▶ posted to board RX ring + IRQ
//	     board DSR ─▶ app mailbox ─▶ ISS checksum ─▶ verdict write
//	router driver_process ─▶ forward to output port ─▶ consumer
//	                         └─ drop (bad checksum)
//
// A packet occupies its input FIFO slot until its verdict returns, so the
// sustained FIFO occupancy grows with the synchronization interval; when
// it exceeds the FIFO capacity, newly arriving packets are dropped — the
// mechanism behind the paper's accuracy-vs-T_sync cliff (Fig. 7).
package router

// Register map of the remote checksum device, shared between the HDL
// router model (driver_in/driver_out ports) and the board application
// (remote device driver window). All values are *word offsets within one
// engine window*; a router can host several checksum engines (one per
// board), each occupying its own window of EngineStride words.
const (
	// Board→router verdict block (router's driver_in).
	RegVerdictBase = 0x000 // word 0: packet sequence number
	RegVerdictOK   = 0x001 // word 1: 1 = checksum valid, 0 = corrupt
	VerdictWords   = 2

	// Router→board window (router's driver_out): a sequence register and
	// a ring of RX slots.
	RegRxSeq = 0x010 // sequence number of the newest posted packet

	SlotBase = 0x012 // first RX slot
	// SlotWords is one slot's size: a word-count header plus the largest
	// encoded packet (3 header + 16 payload words).
	SlotWords = 20
	// NumSlots is the RX ring depth: the board must drain a packet within
	// NumSlots subsequent deliveries or it is overwritten (an overrun,
	// counted board-side).
	NumSlots = 32

	// WindowSize covers one engine's device register space.
	WindowSize = SlotBase + NumSlots*SlotWords

	// EngineStride separates consecutive engine windows.
	EngineStride = 0x400

	// IRQPacket is the interrupt line engine 0 raises per delivered
	// packet; engine e uses IRQPacket+e.
	IRQPacket = 5
)

// EngineBase returns the first word address of engine e's window.
func EngineBase(e int) uint32 { return uint32(e) * EngineStride }

// EngineIRQ returns the interrupt line of engine e.
func EngineIRQ(e int) uint8 { return uint8(IRQPacket + e) }

// SlotAddr returns the word offset (within an engine window) of the RX
// slot used by sequence number seq (sequence numbers start at 1).
func SlotAddr(seq uint32) uint32 {
	return SlotBase + (seq%NumSlots)*SlotWords
}
