package router

import (
	"context"
	"testing"
)

func TestMultiBoardCoSimSplitsLoad(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 200
	res, err := RunCoSimMulti(rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conservation != nil {
		t.Fatal(res.Conservation)
	}
	if res.Accuracy != 1.0 {
		t.Fatalf("dual-board accuracy %.3f (router %+v)", res.Accuracy, res.Router)
	}
	if len(res.Apps) != 2 {
		t.Fatalf("%d app stats", len(res.Apps))
	}
	total := res.Apps[0].Delivered + res.Apps[1].Delivered
	if total != res.Generated {
		t.Fatalf("boards delivered %d of %d", total, res.Generated)
	}
	// Round-robin assignment: the split is even.
	if res.Apps[0].Delivered != res.Apps[1].Delivered {
		t.Fatalf("uneven split: %d vs %d", res.Apps[0].Delivered, res.Apps[1].Delivered)
	}
	// Both boards advanced the same virtual time (same grants).
	if res.BoardCycles[0] != res.BoardCycles[1] || res.BoardCycles[0] == 0 {
		t.Fatalf("board times %v", res.BoardCycles)
	}
}

func TestMultiBoardMatchesSingleBoardAccuracy(t *testing.T) {
	// With verification load halved per board, the dual-board setup must
	// be at least as accurate as single-board at the same Tsync.
	mk := func(boards int, tsync uint64) float64 {
		rc := DefaultRunConfig()
		rc.TSync = tsync
		var acc float64
		if boards == 1 {
			res, err := Run(context.Background(), Transports{}, WithConfig(rc))
			if err != nil {
				t.Fatal(err)
			}
			acc = res.Accuracy
		} else {
			res, err := RunCoSimMulti(rc, boards)
			if err != nil {
				t.Fatal(err)
			}
			acc = res.Accuracy
		}
		return acc
	}
	for _, ts := range []uint64{2000, 8000} {
		single := mk(1, ts)
		dual := mk(2, ts)
		if dual < single-0.01 {
			t.Fatalf("Tsync=%d: dual-board accuracy %.3f below single %.3f", ts, dual, single)
		}
	}
}

func TestMultiBoardOneBoardDegeneratesToSingle(t *testing.T) {
	rc := DefaultRunConfig()
	rc.TB = smallTB()
	rc.TSync = 300
	single, err := Run(context.Background(), Transports{}, WithConfig(rc))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunCoSimMulti(rc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.Router != multi.Router {
		t.Fatalf("1-board multi differs from single:\n%+v\n%+v", single.Router, multi.Router)
	}
}

func TestMultiBoardValidation(t *testing.T) {
	rc := DefaultRunConfig()
	if _, err := RunCoSimMulti(rc, 0); err == nil {
		t.Fatal("0 boards accepted")
	}
}
