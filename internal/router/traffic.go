package router

import (
	"fmt"

	"repro/internal/hdlsim"
	"repro/internal/packet"
)

// Producer is the "SystemC model of the packet generator": it drives one
// router input with randomly-addressed packets at a fixed period.
type Producer struct {
	hdlsim.BaseModule
	gen       *packet.Generator
	count     int
	period    uint64
	phase     uint64
	generated uint64
	done      bool
}

// NewProducer attaches a producer to input signal in. It emits `count`
// packets, one every `period` clock cycles, starting after `phase` cycles
// (staggering producers avoids artificial burst alignment).
func NewProducer(s *hdlsim.Simulator, clk *hdlsim.Clock, in *hdlsim.Signal[*packet.Packet],
	gen *packet.Generator, count int, period, phase uint64) *Producer {
	if period == 0 {
		panic("router: producer period must be ≥ 1 cycle")
	}
	p := &Producer{BaseModule: hdlsim.BaseModule{Name: fmt.Sprintf("producer%d", gen.Generated())}, gen: gen, count: count, period: period, phase: phase}
	s.Thread(fmt.Sprintf("producer.%s", in.SignalName()), func(c *hdlsim.Ctx) {
		c.WaitCycles(clk, phase)
		for i := 0; i < count; i++ {
			c.WaitCycles(clk, period)
			pkt := gen.Next()
			in.Write(&pkt)
			p.generated++
		}
		p.done = true
	})
	return p
}

// Generated returns how many packets this producer has emitted.
func (p *Producer) Generated() uint64 { return p.generated }

// NextEmission returns the absolute clock cycle of this producer's next
// packet emission, or hdlsim.UnboundedLookahead once its quota is done.
// The schedule is closed-form (phase + k·period), so the bound is exact.
func (p *Producer) NextEmission() uint64 {
	if p.done {
		return hdlsim.UnboundedLookahead
	}
	return p.phase + (p.generated+1)*p.period
}

// Done reports whether the producer finished its quota.
func (p *Producer) Done() bool { return p.done }

// ConsumerStats counts what a consumer observed.
type ConsumerStats struct {
	Received       uint64
	IntegrityError uint64 // checksum mismatch at the consumer (must be 0)
	Misrouted      uint64 // packet arrived on the wrong output port
}

// Consumer is the "SystemC model of the packet destination": it checks
// the integrity of every packet delivered on one output port.
type Consumer struct {
	hdlsim.BaseModule
	stats ConsumerStats
}

// NewConsumer attaches a consumer to output signal out for port index
// `port`; routeOf is the router's routing function, used to detect
// misrouted deliveries.
func NewConsumer(s *hdlsim.Simulator, out *hdlsim.Signal[*packet.Packet],
	port int, routeOf func(uint16) int) *Consumer {
	c := &Consumer{BaseModule: hdlsim.BaseModule{Name: fmt.Sprintf("consumer%d", port)}}
	s.Method(fmt.Sprintf("consumer%d", port), func() {
		p := out.Read()
		if p == nil {
			return
		}
		c.stats.Received++
		if !p.Valid() {
			c.stats.IntegrityError++
		}
		if p.IsMulticast() {
			if p.PortMask()&(1<<port) == 0 {
				c.stats.Misrouted++
			}
		} else if routeOf(p.Dst) != port {
			c.stats.Misrouted++
		}
	}, out.Changed()).DontInitialize()
	return c
}

// Stats returns the consumer's counters.
func (c *Consumer) Stats() ConsumerStats { return c.stats }
