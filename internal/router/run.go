package router

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/obs"
)

// errHalfTransports rejects a Transports value with exactly one side set.
var errHalfTransports = errors.New("router: Transports must set both HW and Board (or neither, for a self-dialed link)")

// TransportKind selects how the two sides of a co-simulation run talk.
type TransportKind int

const (
	// TransportInProc uses in-process channels (fast, deterministic
	// wall-clock; identical simulated-time results to TCP).
	TransportInProc TransportKind = iota
	// TransportTCP uses real sockets over loopback, as in the paper's
	// host↔board setup.
	TransportTCP
	// TransportUDS uses a Unix-domain socket with the same framing and
	// handshake as TCP: cross-process on one host without the TCP/IP
	// stack. Unsupported on platforms without unix sockets.
	TransportUDS
	// TransportShm uses a lock-free shared-memory ring pair over an
	// mmap'd file (see cosim.ShmTransport): the zero-copy local path.
	// Unsupported where mmap is unavailable (probe cosim.ShmSupported).
	TransportShm
)

// String implements fmt.Stringer.
func (t TransportKind) String() string {
	switch t {
	case TransportTCP:
		return "tcp"
	case TransportUDS:
		return "uds"
	case TransportShm:
		return "shm"
	default:
		return "inproc"
	}
}

// baseTransportKind maps a base transport (walked through the wrapper
// chain) back to its TransportKind, so results report the link actually
// carrying frames rather than a configuration default.
func baseTransportKind(tr cosim.Transport) (TransportKind, bool) {
	switch cosim.BaseTransportName(tr) {
	case "inproc":
		return TransportInProc, true
	case "tcp":
		return TransportTCP, true
	case "unix":
		return TransportUDS, true
	case "shm":
		return TransportShm, true
	default:
		return 0, false
	}
}

// RunConfig configures one full co-simulation of the router testbench.
type RunConfig struct {
	TB        TBConfig
	TSync     uint64
	Mode      cosim.SyncMode
	Transport TransportKind
	BoardCfg  board.Config
	AppCfg    AppConfig
	// MaxCycles bounds the run; 0 derives a budget from the workload.
	MaxCycles uint64
	// LinkDelay adds a wall-clock latency per message in each direction,
	// emulating the paper's host↔board Ethernet (see cosim.DelayTransport).
	LinkDelay time.Duration
	// Chaos, when non-nil, injects seeded link faults (drop, duplicate,
	// reorder, corrupt, truncate, delay) in both directions beneath the
	// resilience layer. Pair it with Resilience or the run will fail.
	Chaos *cosim.Scenario
	// Resilience, when non-nil, wraps both sides in a
	// cosim.SessionTransport (sequence numbers, acks, retransmission),
	// making the run survive chaos faults with identical results.
	Resilience *cosim.SessionConfig
	// Obs, when non-nil, receives live metrics for the run: per-quantum
	// CLOCK rendezvous histograms and channel counters from both
	// endpoints, session resilience counters, and per-run router gauges.
	// Scrape it (see internal/obs) while the run is alive.
	Obs *obs.Registry
	// Adaptive enables lookahead-negotiated quantum elongation (see
	// hdlsim.DriverConfig.Adaptive): the board's acknowledgements and the
	// device's grants carry lookahead promises, and traffic-free TSync
	// boundaries inside both promises are skipped. Simulated-time results
	// are bit-identical; only the rendezvous count changes. Incompatible
	// with SyncPipelined (the pipelined acknowledgement is a quantum
	// stale, so its promise cannot be trusted).
	Adaptive bool
	// MaxQuantum caps the elongated quantum in clock cycles when Adaptive
	// is set; 0 means 64×TSync.
	MaxQuantum uint64
	// Batch enables wire-frame coalescing on both sides (see
	// cosim.BatchTransport): a quantum's DATA/INT messages ride in one
	// MTBatch frame per channel flush.
	Batch bool
	// Trace, when non-nil, logs every protocol message of both sides (see
	// cosim.TraceTransport).
	Trace io.Writer
	// Federation, when non-nil, routes the run through the hierarchical
	// time manager with the given N-party topology (see WithFederation);
	// nil keeps the pairwise fast path.
	Federation *FederationConfig
}

// DefaultRunConfig assembles the experiment defaults.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		TB:        DefaultTBConfig(),
		TSync:     1000,
		Mode:      cosim.SyncAlternating,
		Transport: TransportInProc,
		BoardCfg:  board.DefaultConfig(),
		AppCfg:    DefaultAppConfig(),
	}
}

// budget returns the cycle bound for the run.
func (rc RunConfig) budget() uint64 {
	if rc.MaxCycles != 0 {
		return rc.MaxCycles
	}
	return rc.TB.WorkCycles() + 8*rc.TSync + 20000
}

// RunResult collects every counter of one co-simulation run.
type RunResult struct {
	HW        hdlsim.DriverStats
	Router    Stats
	Consumers ConsumerStats
	App       AppStats
	Board     board.Stats
	Link      cosim.Metrics
	// Batch holds the HW side's wire-frame coalescing counters; all
	// zeros when Batch was off.
	Batch cosim.BatchStats

	Generated     uint64
	Accuracy      float64 // forwarded / generated
	Wall          time.Duration
	BoardCycles   uint64
	BoardSWTicks  uint64
	SimCycles     uint64
	Conservation  error // non-nil if the accounting invariant failed
	TSync         uint64
	TransportKind TransportKind
	Mode          cosim.SyncMode
}

// String formats the headline numbers.
func (r RunResult) String() string {
	return fmt.Sprintf("Tsync=%d %s/%s: N=%d acc=%.1f%% wall=%v syncs=%d",
		r.TSync, r.TransportKind, r.Mode, r.Generated, 100*r.Accuracy, r.Wall, r.HW.SyncEvents)
}

// Validate rejects incoherent configurations up front, with actionable
// errors, instead of letting them fail (or hang) mid-run. router.Run and
// farm.Farm.Submit both call it; call it directly when building configs
// programmatically.
func (rc RunConfig) Validate() error {
	if rc.TSync == 0 {
		return fmt.Errorf("router: invalid RunConfig: TSync is 0, so the simulator would never grant virtual time; set a synchronization interval ≥ 1 (DefaultRunConfig uses 1000)")
	}
	if rc.LinkDelay < 0 {
		return fmt.Errorf("router: invalid RunConfig: LinkDelay %v is negative; use 0 to disable the emulated link latency", rc.LinkDelay)
	}
	if rc.Chaos != nil && rc.Resilience == nil {
		return fmt.Errorf("router: invalid RunConfig: Chaos without Resilience — injected faults would corrupt the protocol mid-run; set Resilience (e.g. cosim.DefaultSessionConfig()) or drop Chaos")
	}
	if rc.Adaptive && rc.Mode == cosim.SyncPipelined {
		return fmt.Errorf("router: invalid RunConfig: Adaptive with SyncPipelined — the pipelined acknowledgement describes a quantum that is already granted, so its lookahead promise is stale; use SyncAlternating or drop Adaptive")
	}
	// Bound the quantum arithmetic. The derived cycle budget is
	// WorkCycles + 8×TSync + slack, and the board multiplies every
	// granted tick by CyclesPerGrantTick; a TSync large enough to wrap
	// either product would silently truncate the run instead of failing.
	const budgetSlack = 20000
	work := rc.TB.WorkCycles()
	if rc.MaxCycles == 0 {
		if work > math.MaxUint64-budgetSlack || rc.TSync > (math.MaxUint64-budgetSlack-work)/8 {
			return fmt.Errorf("router: invalid RunConfig: TSync %d overflows the derived cycle budget (WorkCycles %d + 8×TSync + %d wraps uint64); lower TSync below %d or set MaxCycles explicitly", rc.TSync, work, budgetSlack, (math.MaxUint64-budgetSlack-work)/8)
		}
	}
	if cpt := rc.BoardCfg.CyclesPerGrantTick; cpt > 1 && rc.budget() > math.MaxUint64/cpt {
		return fmt.Errorf("router: invalid RunConfig: cycle budget %d × CyclesPerGrantTick %d overflows the board's cycle accounting; lower TSync/MaxCycles or CyclesPerGrantTick", rc.budget(), cpt)
	}
	switch rc.Transport {
	case TransportInProc, TransportTCP, TransportUDS:
	case TransportShm:
		if !cosim.ShmSupported() {
			return fmt.Errorf("router: invalid RunConfig: TransportShm is unsupported on this platform (no mmap); use TransportUDS or TransportTCP")
		}
	default:
		return fmt.Errorf("router: invalid RunConfig: unknown TransportKind %d", rc.Transport)
	}
	return nil
}

// stack derives the hw-side transport-stack layers from the config; the
// board side uses its Peer().
func (rc RunConfig) stack() cosim.StackConfig {
	return cosim.StackConfig{Delay: rc.LinkDelay, Chaos: rc.Chaos, Session: rc.Resilience, Batch: rc.Batch}
}

// dialSelf establishes a private loopback TCP link between the two sides
// of one run: listen, accept on a helper goroutine, dial. Every path
// joins the accept goroutine and closes whatever it produced, so a
// failed dial can never leak an accepted transport.
func dialSelf() (hwT, boardT cosim.Transport, err error) {
	ln, err := cosim.ListenTCP("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	return acceptAndDial(ln)
}

// dialSelfUDS is dialSelf over a private Unix-domain socket in a fresh
// temp directory; the socket file is removed once both sides connected.
func dialSelfUDS() (hwT, boardT cosim.Transport, err error) {
	dir, err := os.MkdirTemp("", "cosim-uds-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	ln, err := cosim.ListenUDS(filepath.Join(dir, "s"))
	if err != nil {
		return nil, nil, err
	}
	return acceptAndDial(ln)
}

// acceptAndDial completes a self-dialed link over an open listener, which
// it always closes before returning.
func acceptAndDial(ln *cosim.Listener) (hwT, boardT cosim.Transport, err error) {
	defer ln.Close()
	type accepted struct {
		tr  cosim.Transport
		err error
	}
	acc := make(chan accepted, 1)
	go func() {
		tr, aerr := ln.Accept()
		acc <- accepted{tr, aerr}
	}()
	boardT, err = cosim.DialNet(ln.Network(), ln.Addr())
	if err != nil {
		// The accept may still have succeeded (e.g. the dial failed on
		// a later channel): unblock it, join it, and close its result.
		ln.Close()
		if a := <-acc; a.tr != nil {
			a.tr.Close()
		}
		return nil, nil, err
	}
	a := <-acc
	if a.err != nil {
		boardT.Close()
		return nil, nil, a.err
	}
	return a.tr, boardT, nil
}

// runOnTransports is the core of every Run entry point: it executes the
// testbench over the given base transports — the HDL side under
// DriverSimulate on the calling goroutine, the virtual board on a second
// goroutine. It takes ownership of both transports (they are closed by
// the time it returns) and stacks the config's decorator layers
// (LinkDelay, Chaos, Resilience, Batch) on each side with
// cosim.BuildStack. Cancelling ctx tears the stacks down, unblocking
// both sides; the context's cause becomes the returned error.
func runOnTransports(ctx context.Context, rc RunConfig, hwBase, boardBase cosim.Transport) (result RunResult, err error) {
	res := RunResult{TSync: rc.TSync, TransportKind: rc.Transport, Mode: rc.Mode}
	// Report the transport actually carrying frames, not the configured
	// default: caller-provided transports (a farm mux link, a test's
	// in-process pair) may differ from rc.Transport.
	if k, ok := baseTransportKind(hwBase); ok {
		res.TransportKind = k
	}
	if err := rc.Validate(); err != nil {
		hwBase.Close()
		boardBase.Close()
		return res, err
	}
	if rc.Obs != nil {
		// Handles are resolved once up front; a run starts and finishes
		// exactly once, so none of these belong on a struct.
		started := rc.Obs.Counter("router_runs_started_total")
		started.Inc()
		active := rc.Obs.Gauge("router_active_runs")
		active.Add(1)
		failed := rc.Obs.Counter("router_runs_failed_total")
		completed := rc.Obs.Counter("router_runs_completed_total")
		lastAccuracy := rc.Obs.Gauge("router_last_accuracy_pct")
		lastWall := rc.Obs.Gauge("router_last_wall_seconds")
		lastGenerated := rc.Obs.Gauge("router_last_generated_packets")
		lastSyncEvents := rc.Obs.Gauge("router_last_sync_events")
		lastTSync := rc.Obs.Gauge("router_last_tsync")
		defer func() {
			active.Add(-1)
			if err != nil {
				failed.Inc()
				return
			}
			completed.Inc()
			lastAccuracy.Set(100 * result.Accuracy)
			lastWall.Set(result.Wall.Seconds())
			lastGenerated.Set(float64(result.Generated))
			lastSyncEvents.Set(float64(result.HW.SyncEvents))
			lastTSync.Set(float64(result.TSync))
		}()
	}
	tb := BuildTestbench(rc.TB)
	bs, err := BuildBoardSide(rc.BoardCfg, rc.AppCfg)
	if err != nil {
		hwBase.Close()
		boardBase.Close()
		return res, err
	}

	stack := rc.stack()
	hwT, hwClose := cosim.BuildStack(hwBase, stack)
	boardT, boardClose := cosim.BuildStack(boardBase, stack.Peer())
	defer hwClose()
	defer boardClose()
	if rc.Trace != nil {
		hwT = cosim.NewTraceTransport(hwT, rc.Trace)
		boardT = cosim.NewTraceTransport(boardT, rc.Trace)
	}

	// Context cancellation tears both stacks down, which unblocks any
	// side waiting on the link with ErrClosed; the cause is reported as
	// the run error below.
	if ctx == nil {
		ctx = context.Background()
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			hwClose()
			boardClose()
		case <-watchDone:
		}
	}()
	defer func() {
		if err != nil && ctx.Err() != nil {
			err = fmt.Errorf("router: run canceled: %w", context.Cause(ctx))
		}
	}()

	hw := cosim.NewHWEndpoint(hwT, rc.Mode)
	bep := cosim.NewBoardEndpoint(boardT)
	if rc.Obs != nil {
		hw.Observe(rc.Obs)
		bep.Observe(rc.Obs)
	}
	bs.Dev.Attach(bep)

	boardDone := make(chan error, 1)
	go func() { boardDone <- bs.Board.Run(bep) }()

	start := time.Now()
	hwStats, err := tb.Sim.DriverSimulate(tb.Clk, hw, hdlsim.DriverConfig{
		TSync:       rc.TSync,
		TotalCycles: rc.budget(),
		StopEarly:   tb.Finished,
		Adaptive:    rc.Adaptive,
		MaxQuantum:  rc.MaxQuantum,
	})
	res.Wall = time.Since(start)
	if err != nil {
		hwT.Close()
		<-boardDone
		return res, fmt.Errorf("router: hw side: %w", err)
	}
	if err := <-boardDone; err != nil {
		return res, fmt.Errorf("router: board side: %w", err)
	}

	res.HW = hwStats
	res.Router = tb.Router.Stats()
	res.Consumers = tb.ConsumerTotals()
	res.App = bs.App.Stats()
	res.Board = bs.Board.Stats()
	res.Link = *hw.Metrics()
	res.Batch = cosim.BatchStatsOf(hwT)
	res.Generated = tb.Generated()
	res.SimCycles = hwStats.Cycles
	res.BoardCycles, res.BoardSWTicks = hw.BoardTime()
	if res.Generated > 0 {
		res.Accuracy = float64(res.Router.Forwarded) / float64(res.Generated)
	}
	res.Conservation = tb.CheckConservation(res.App.Overruns, res.App.MboxDrops)
	return res, nil
}

// RunLoopback executes the same HDL workload against the instant local
// verifier — the paper's "simulation without synchronization" normalizer.
func RunLoopback(tbc TBConfig) (RunResult, error) {
	res := RunResult{TSync: 0, TransportKind: TransportInProc}
	tb := BuildTestbench(tbc)
	ep := NewLoopbackEndpoint()
	budget := tbc.WorkCycles() + 20000
	start := time.Now()
	hwStats, err := tb.Sim.DriverSimulate(tb.Clk, ep, hdlsim.DriverConfig{
		// Sync is free on the loopback; a moderate interval just gives
		// StopEarly a chance to end the run at quiescence.
		TSync:       1000,
		TotalCycles: budget,
		StopEarly:   tb.Finished,
	})
	res.Wall = time.Since(start)
	if err != nil {
		return res, err
	}
	res.HW = hwStats
	res.Router = tb.Router.Stats()
	res.Consumers = tb.ConsumerTotals()
	res.Generated = tb.Generated()
	res.SimCycles = hwStats.Cycles
	if res.Generated > 0 {
		res.Accuracy = float64(res.Router.Forwarded) / float64(res.Generated)
	}
	res.Conservation = tb.CheckConservation(0, 0)
	return res, nil
}
