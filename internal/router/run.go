package router

import (
	"fmt"
	"time"

	"repro/internal/board"
	"repro/internal/cosim"
	"repro/internal/hdlsim"
	"repro/internal/obs"
)

// TransportKind selects how the two sides of a co-simulation run talk.
type TransportKind int

const (
	// TransportInProc uses in-process channels (fast, deterministic
	// wall-clock; identical simulated-time results to TCP).
	TransportInProc TransportKind = iota
	// TransportTCP uses real sockets over loopback, as in the paper's
	// host↔board setup.
	TransportTCP
)

// String implements fmt.Stringer.
func (t TransportKind) String() string {
	if t == TransportTCP {
		return "tcp"
	}
	return "inproc"
}

// RunConfig configures one full co-simulation of the router testbench.
type RunConfig struct {
	TB        TBConfig
	TSync     uint64
	Mode      cosim.SyncMode
	Transport TransportKind
	BoardCfg  board.Config
	AppCfg    AppConfig
	// MaxCycles bounds the run; 0 derives a budget from the workload.
	MaxCycles uint64
	// LinkDelay adds a wall-clock latency per message in each direction,
	// emulating the paper's host↔board Ethernet (see cosim.DelayTransport).
	LinkDelay time.Duration
	// Chaos, when non-nil, injects seeded link faults (drop, duplicate,
	// reorder, corrupt, truncate, delay) in both directions beneath the
	// resilience layer. Pair it with Resilience or the run will fail.
	Chaos *cosim.Scenario
	// Resilience, when non-nil, wraps both sides in a
	// cosim.SessionTransport (sequence numbers, acks, retransmission),
	// making the run survive chaos faults with identical results.
	Resilience *cosim.SessionConfig
	// Obs, when non-nil, receives live metrics for the run: per-quantum
	// CLOCK rendezvous histograms and channel counters from both
	// endpoints, session resilience counters, and per-run router gauges.
	// Scrape it (see internal/obs) while the run is alive.
	Obs *obs.Registry
}

// DefaultRunConfig assembles the experiment defaults.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		TB:        DefaultTBConfig(),
		TSync:     1000,
		Mode:      cosim.SyncAlternating,
		Transport: TransportInProc,
		BoardCfg:  board.DefaultConfig(),
		AppCfg:    DefaultAppConfig(),
	}
}

// budget returns the cycle bound for the run.
func (rc RunConfig) budget() uint64 {
	if rc.MaxCycles != 0 {
		return rc.MaxCycles
	}
	return rc.TB.WorkCycles() + 8*rc.TSync + 20000
}

// RunResult collects every counter of one co-simulation run.
type RunResult struct {
	HW        hdlsim.DriverStats
	Router    Stats
	Consumers ConsumerStats
	App       AppStats
	Board     board.Stats
	Link      cosim.Metrics

	Generated     uint64
	Accuracy      float64 // forwarded / generated
	Wall          time.Duration
	BoardCycles   uint64
	BoardSWTicks  uint64
	SimCycles     uint64
	Conservation  error // non-nil if the accounting invariant failed
	TSync         uint64
	TransportKind TransportKind
	Mode          cosim.SyncMode
}

// String formats the headline numbers.
func (r RunResult) String() string {
	return fmt.Sprintf("Tsync=%d %s/%s: N=%d acc=%.1f%% wall=%v syncs=%d",
		r.TSync, r.TransportKind, r.Mode, r.Generated, 100*r.Accuracy, r.Wall, r.HW.SyncEvents)
}

// Validate rejects incoherent configurations up front, with actionable
// errors, instead of letting them fail (or hang) mid-run. RunCoSim,
// RunOnTransports, and farm.Farm.Submit all call it; call it directly
// when building configs programmatically.
func (rc RunConfig) Validate() error {
	if rc.TSync == 0 {
		return fmt.Errorf("router: invalid RunConfig: TSync is 0, so the simulator would never grant virtual time; set a synchronization interval ≥ 1 (DefaultRunConfig uses 1000)")
	}
	if rc.LinkDelay < 0 {
		return fmt.Errorf("router: invalid RunConfig: LinkDelay %v is negative; use 0 to disable the emulated link latency", rc.LinkDelay)
	}
	if rc.Chaos != nil && rc.Resilience == nil {
		return fmt.Errorf("router: invalid RunConfig: Chaos without Resilience — injected faults would corrupt the protocol mid-run; set Resilience (e.g. cosim.DefaultSessionConfig()) or drop Chaos")
	}
	switch rc.Transport {
	case TransportInProc, TransportTCP:
	default:
		return fmt.Errorf("router: invalid RunConfig: unknown TransportKind %d", rc.Transport)
	}
	return nil
}

// stack derives the hw-side transport-stack layers from the config; the
// board side uses its Peer().
func (rc RunConfig) stack() cosim.StackConfig {
	return cosim.StackConfig{Delay: rc.LinkDelay, Chaos: rc.Chaos, Session: rc.Resilience}
}

// dialSelf establishes a private loopback TCP link between the two sides
// of one run: listen, accept on a helper goroutine, dial. Every path
// joins the accept goroutine and closes whatever it produced, so a
// failed dial can never leak an accepted transport.
func dialSelf() (hwT, boardT cosim.Transport, err error) {
	ln, err := cosim.ListenTCP("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type accepted struct {
		tr  cosim.Transport
		err error
	}
	acc := make(chan accepted, 1)
	go func() {
		tr, aerr := ln.Accept()
		acc <- accepted{tr, aerr}
	}()
	boardT, err = cosim.DialTCP(ln.Addr())
	if err != nil {
		// The accept may still have succeeded (e.g. the dial failed on
		// a later channel): unblock it, join it, and close its result.
		ln.Close()
		if a := <-acc; a.tr != nil {
			a.tr.Close()
		}
		return nil, nil, err
	}
	a := <-acc
	if a.err != nil {
		boardT.Close()
		return nil, nil, a.err
	}
	return a.tr, boardT, nil
}

// RunCoSim executes the full paper testbench: the HDL side under
// DriverSimulate on the calling goroutine, the virtual board on a second
// goroutine, linked by the chosen transport. It returns when the workload
// is injected and drained (or the cycle budget runs out).
func RunCoSim(rc RunConfig) (RunResult, error) {
	if err := rc.Validate(); err != nil {
		return RunResult{TSync: rc.TSync, TransportKind: rc.Transport, Mode: rc.Mode}, err
	}
	var hwT, boardT cosim.Transport
	switch rc.Transport {
	case TransportTCP:
		var err error
		hwT, boardT, err = dialSelf()
		if err != nil {
			return RunResult{TSync: rc.TSync, TransportKind: rc.Transport, Mode: rc.Mode}, err
		}
	default:
		hwT, boardT = cosim.NewInProcPair(4096)
	}
	return RunOnTransports(rc, hwT, boardT)
}

// RunOnTransports executes the testbench over caller-established base
// transports — the session-reusable entry point: RunCoSim feeds it a
// private link, while a farm feeds it transports routed through a shared
// mux listener. It takes ownership of both transports (they are closed
// by the time it returns) and stacks the config's decorator layers
// (LinkDelay, Chaos, Resilience) on each side with cosim.BuildStack.
func RunOnTransports(rc RunConfig, hwBase, boardBase cosim.Transport) (result RunResult, err error) {
	res := RunResult{TSync: rc.TSync, TransportKind: rc.Transport, Mode: rc.Mode}
	if err := rc.Validate(); err != nil {
		hwBase.Close()
		boardBase.Close()
		return res, err
	}
	if rc.Obs != nil {
		rc.Obs.Counter("router_runs_started_total").Inc()
		active := rc.Obs.Gauge("router_active_runs")
		active.Add(1)
		defer func() {
			active.Add(-1)
			if err != nil {
				rc.Obs.Counter("router_runs_failed_total").Inc()
				return
			}
			rc.Obs.Counter("router_runs_completed_total").Inc()
			rc.Obs.Gauge("router_last_accuracy_pct").Set(100 * result.Accuracy)
			rc.Obs.Gauge("router_last_wall_seconds").Set(result.Wall.Seconds())
			rc.Obs.Gauge("router_last_generated_packets").Set(float64(result.Generated))
			rc.Obs.Gauge("router_last_sync_events").Set(float64(result.HW.SyncEvents))
			rc.Obs.Gauge("router_last_tsync").Set(float64(result.TSync))
		}()
	}
	tb := BuildTestbench(rc.TB)
	bs, err := BuildBoardSide(rc.BoardCfg, rc.AppCfg)
	if err != nil {
		hwBase.Close()
		boardBase.Close()
		return res, err
	}

	stack := rc.stack()
	hwT, hwClose := cosim.BuildStack(hwBase, stack)
	boardT, boardClose := cosim.BuildStack(boardBase, stack.Peer())
	defer hwClose()
	defer boardClose()

	hw := cosim.NewHWEndpoint(hwT, rc.Mode)
	bep := cosim.NewBoardEndpoint(boardT)
	if rc.Obs != nil {
		hw.Observe(rc.Obs)
		bep.Observe(rc.Obs)
	}
	bs.Dev.Attach(bep)

	boardDone := make(chan error, 1)
	go func() { boardDone <- bs.Board.Run(bep) }()

	start := time.Now()
	hwStats, err := tb.Sim.DriverSimulate(tb.Clk, hw, hdlsim.DriverConfig{
		TSync:       rc.TSync,
		TotalCycles: rc.budget(),
		StopEarly:   tb.Finished,
	})
	res.Wall = time.Since(start)
	if err != nil {
		hwT.Close()
		<-boardDone
		return res, fmt.Errorf("router: hw side: %w", err)
	}
	if err := <-boardDone; err != nil {
		return res, fmt.Errorf("router: board side: %w", err)
	}

	res.HW = hwStats
	res.Router = tb.Router.Stats()
	res.Consumers = tb.ConsumerTotals()
	res.App = bs.App.Stats()
	res.Board = bs.Board.Stats()
	res.Link = *hw.Metrics()
	res.Generated = tb.Generated()
	res.SimCycles = hwStats.Cycles
	res.BoardCycles, res.BoardSWTicks = hw.BoardTime()
	if res.Generated > 0 {
		res.Accuracy = float64(res.Router.Forwarded) / float64(res.Generated)
	}
	res.Conservation = tb.CheckConservation(res.App.Overruns, res.App.MboxDrops)
	return res, nil
}

// RunLoopback executes the same HDL workload against the instant local
// verifier — the paper's "simulation without synchronization" normalizer.
func RunLoopback(tbc TBConfig) (RunResult, error) {
	res := RunResult{TSync: 0, TransportKind: TransportInProc}
	tb := BuildTestbench(tbc)
	ep := NewLoopbackEndpoint()
	budget := tbc.WorkCycles() + 20000
	start := time.Now()
	hwStats, err := tb.Sim.DriverSimulate(tb.Clk, ep, hdlsim.DriverConfig{
		// Sync is free on the loopback; a moderate interval just gives
		// StopEarly a chance to end the run at quiescence.
		TSync:       1000,
		TotalCycles: budget,
		StopEarly:   tb.Finished,
	})
	res.Wall = time.Since(start)
	if err != nil {
		return res, err
	}
	res.HW = hwStats
	res.Router = tb.Router.Stats()
	res.Consumers = tb.ConsumerTotals()
	res.Generated = tb.Generated()
	res.SimCycles = hwStats.Cycles
	if res.Generated > 0 {
		res.Accuracy = float64(res.Router.Forwarded) / float64(res.Generated)
	}
	res.Conservation = tb.CheckConservation(0, 0)
	return res, nil
}
